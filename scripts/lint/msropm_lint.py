#!/usr/bin/env python3
"""msropm-lint — project-specific static analysis for the msropm solver stack.

Enforces repo contracts that generic linters cannot see:

    obs-gate            obs event calls on hot paths are gate-dominated
    poll-discipline     entry-point loops poll StopToken / ResourceBudget
    determinism         no ambient randomness / wall clocks / unordered
                        iteration in solver code
    hot-path-alloc      no allocation in propagate/analyze/reduce/batch-step
    atomics-discipline  obs cells & fault gates name their memory order

Usage:
    msropm_lint.py [paths...]              lint (default: src)
    msropm_lint.py --list-rules            show rule ids + contracts
    msropm_lint.py --json out.json src     also write machine-readable report

Exit codes: 0 clean, 1 findings, 2 usage error or missing toolchain
(--backend=clang on a host without python clang.cindex/libclang).

Backends: `--backend clang` parses each TU with libclang using the compile
flags from compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS=ON);
`--backend text` uses the built-in lexer/parser; `auto` (default) prefers
clang and falls back to text.  Rule semantics are shared between backends.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from lintlib import clang_backend, report, sources, suppress  # noqa: E402
from lintlib.model import Finding, TranslationUnit  # noqa: E402
from lintlib.rules import contracts, rule_ids, run_rules  # noqa: E402
from lintlib.textparse import extract_functions  # noqa: E402

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _parse_args(argv: List[str]) -> argparse.Namespace:
    ap = argparse.ArgumentParser(
        prog='msropm-lint', add_help=True,
        description='contract-enforcing static analysis for the msropm stack')
    ap.add_argument('paths', nargs='*', default=[],
                    help='files or directories to lint (default: src)')
    ap.add_argument('--backend', choices=('auto', 'clang', 'text'),
                    default='auto',
                    help='analysis backend (auto: clang when libclang is '
                         'importable, else text)')
    ap.add_argument('--compdb', default=None, metavar='PATH',
                    help='compile_commands.json for the clang backend '
                         '(default: auto-discover under build*/)')
    ap.add_argument('--rules', default=None, metavar='LIST',
                    help='comma-separated rule ids to run (default: all)')
    ap.add_argument('--json', default=None, metavar='FILE',
                    help="write JSON report to FILE ('-' for stdout)")
    ap.add_argument('--list-rules', action='store_true',
                    help='print rule ids and the contracts they enforce')
    ap.add_argument('--show-suppressed', action='store_true',
                    help='include suppressed findings in the text report')
    ap.add_argument('--root', default=None, metavar='DIR',
                    help='repo root (default: nearest ancestor with .git)')
    return ap.parse_args(argv)


def _list_rules() -> int:
    con = contracts()
    width = max(len(r) for r in con)
    for rid in rule_ids():
        print(f'{rid.ljust(width)}  {con[rid]}')
    print(f'{"lint-suppression".ljust(width)}  suppression comments are '
          'well-formed, reasoned, and not stale (always active)')
    return EXIT_CLEAN


def _select_rules(spec) -> List[str]:
    known = rule_ids()
    if not spec:
        return known
    chosen = [r.strip() for r in spec.split(',') if r.strip()]
    for r in chosen:
        if r not in known:
            raise SystemExit2(f'unknown rule id {r!r}; '
                              f'known: {", ".join(known)}')
    return chosen


class SystemExit2(Exception):
    """Usage error -> exit 2."""


def _build_tu(backend: str, root: str, relpath: str,
              compdb: Dict[str, List[str]]) -> TranslationUnit:
    abspath = os.path.join(root, relpath)
    try:
        with open(abspath, encoding='utf-8', errors='replace') as fh:
            text = fh.read()
    except OSError as exc:
        raise SystemExit2(f'cannot read {relpath}: {exc}')
    if backend == 'clang':
        tu = clang_backend.build(abspath, relpath, text,
                                 compdb.get(relpath))
    else:
        tu = extract_functions(relpath, text)
    tu.raw_lines = text.splitlines()
    return tu


def main(argv: List[str]) -> int:
    try:
        ns = _parse_args(argv)
    except SystemExit as exc:  # argparse exits 2 on usage errors already
        return EXIT_USAGE if exc.code not in (0, None) else EXIT_CLEAN
    if ns.list_rules:
        return _list_rules()
    try:
        enabled = _select_rules(ns.rules)

        backend = ns.backend
        if backend in ('auto', 'clang'):
            ok, reason = clang_backend.available()
            if not ok:
                if backend == 'clang':
                    print(f'msropm-lint: clang backend unavailable: {reason}',
                          file=sys.stderr)
                    return EXIT_USAGE
                backend = 'text'
            else:
                backend = 'clang'

        root = os.path.abspath(ns.root) if ns.root else sources.repo_root()
        paths = ns.paths or ['src']
        files = sources.discover(root, paths)
        if not files:
            print(f'msropm-lint: no sources under {", ".join(paths)}',
                  file=sys.stderr)
            return EXIT_USAGE

        compdb: Dict[str, List[str]] = {}
        if backend == 'clang':
            db = sources.find_compdb(root, ns.compdb)
            if db:
                compdb = sources.load_compdb(db, root)

        findings: List[Finding] = []
        sup: Dict[str, suppress.FileSuppressions] = {}
        for relpath in files:
            tu = _build_tu(backend, root, relpath, compdb)
            sup[relpath] = suppress.scan_file(relpath, tu.raw_lines)
            findings.extend(run_rules(tu, enabled))

        suppress.apply(findings, sup)
        findings.extend(suppress.unused(sup))

        text = report.render_text(findings, backend, len(files),
                                  show_suppressed=ns.show_suppressed)
        sys.stdout.write(text)
        if ns.json:
            doc = report.render_json(findings, backend, len(files), enabled)
            if ns.json == '-':
                sys.stdout.write(doc)
            else:
                with open(ns.json, 'w', encoding='utf-8') as fh:
                    fh.write(doc)
        active = [f for f in findings if not f.suppressed]
        return EXIT_FINDINGS if active else EXIT_CLEAN
    except SystemExit2 as exc:
        print(f'msropm-lint: {exc}', file=sys.stderr)
        return EXIT_USAGE


if __name__ == '__main__':
    sys.exit(main(sys.argv[1:]))
