"""Human TextTable and machine JSON rendering for msropm-lint findings.

The text table mirrors the style of util::TextTable reports elsewhere in the
repo (left-aligned columns, one header row, column rule underneath).
"""

from __future__ import annotations

import json
from typing import Dict, List

from .model import Finding


def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = []
    out.append('  '.join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    out.append('  '.join('-' * widths[i] for i in range(len(headers))))
    for row in rows:
        out.append('  '.join(cell.ljust(widths[i])
                             for i, cell in enumerate(row)).rstrip())
    return '\n'.join(out)


def render_text(findings: List[Finding], backend: str, files_scanned: int,
                show_suppressed: bool = False) -> str:
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    lines: List[str] = []
    header = (f'msropm-lint: {len(active)} finding(s), '
              f'{len(suppressed)} suppressed '
              f'[backend={backend}, {files_scanned} files]')
    lines.append(header)
    if active:
        lines.append('')
        rows = [[f.rule, f'{f.file}:{f.line}', f.function or '-', f.message]
                for f in sorted(active, key=Finding.sort_key)]
        lines.append(_table(['RULE', 'LOCATION', 'FUNCTION', 'MESSAGE'], rows))
    if show_suppressed and suppressed:
        lines.append('')
        lines.append('suppressed:')
        rows = [[f.rule, f'{f.file}:{f.line}', f.suppress_reason]
                for f in sorted(suppressed, key=Finding.sort_key)]
        lines.append(_table(['RULE', 'LOCATION', 'REASON'], rows))
    return '\n'.join(lines) + '\n'


def render_json(findings: List[Finding], backend: str, files_scanned: int,
                rules: List[str]) -> str:
    doc: Dict = {
        'version': 1,
        'tool': 'msropm-lint',
        'backend': backend,
        'files_scanned': files_scanned,
        'rules': list(rules),
        'findings': [
            {
                'rule': f.rule,
                'file': f.file,
                'line': f.line,
                'col': f.col,
                'function': f.function,
                'message': f.message,
            }
            for f in sorted((f for f in findings if not f.suppressed),
                            key=Finding.sort_key)
        ],
        'suppressed': [
            {
                'rule': f.rule,
                'file': f.file,
                'line': f.line,
                'reason': f.suppress_reason,
            }
            for f in sorted((f for f in findings if f.suppressed),
                            key=Finding.sort_key)
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=False) + '\n'
