"""Shared data model for msropm-lint backends and rules.

Backends (text or clang) produce a list of TranslationUnit objects, each
holding FunctionModel entries.  Rules consume only this model, so both
backends feed the exact same rule implementations — the clang backend just
locates function boundaries more precisely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .lexer import Token


@dataclass
class Stmt:
    """One statement inside a function body.

    kind is one of:
      'if'      cond/then_body/else_body set
      'loop'    loop_kind in {for, while, do, range-for}; cond + body set
      'return'  plain return statement (tokens holds the full statement)
      'block'   bare { } scope; body set
      'other'   anything else (expressions, declarations, switch internals);
                tokens holds the statement's tokens, including any embedded
                lambda bodies / brace initializers
    """
    kind: str
    tokens: List[Token] = field(default_factory=list)
    cond: List[Token] = field(default_factory=list)
    body: List['Stmt'] = field(default_factory=list)
    else_body: List['Stmt'] = field(default_factory=list)
    loop_kind: str = ''
    line: int = 0


@dataclass
class FunctionModel:
    name: str               # base name, e.g. 'propagate'
    qualified: str          # e.g. 'Solver::propagate' (best effort)
    file: str               # repo-relative path
    line: int               # definition line (1-based)
    end_line: int
    body_tokens: List[Token] = field(default_factory=list)
    stmts: List[Stmt] = field(default_factory=list)
    # Names of local lambdas whose bodies contain the given token set are
    # resolved by rules via lambda_bodies: name -> flat token list.
    lambda_bodies: Dict[str, List[Token]] = field(default_factory=dict)
    # Parameter list tokens (between the declarator parens).
    param_tokens: List[Token] = field(default_factory=list)


@dataclass
class TranslationUnit:
    path: str                            # repo-relative
    tokens: List[Token] = field(default_factory=list)
    functions: List[FunctionModel] = field(default_factory=list)
    raw_lines: List[str] = field(default_factory=list)


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    col: int
    function: str
    message: str
    suppressed: bool = False
    suppress_reason: str = ''

    def sort_key(self):
        return (self.file, self.line, self.col, self.rule)


def walk_stmts(stmts: List[Stmt]):
    """Yield every Stmt in a statement forest, depth-first."""
    for s in stmts:
        yield s
        yield from walk_stmts(s.body)
        yield from walk_stmts(s.else_body)


def flat_tokens(stmts: List[Stmt]) -> List[Token]:
    """Every token under a statement forest (headers + bodies)."""
    out: List[Token] = []
    for s in walk_stmts(stmts):
        out.extend(s.tokens)
        out.extend(s.cond)
    return out
