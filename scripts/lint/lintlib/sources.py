"""Source discovery for msropm-lint.

Files are addressed repo-relative with forward slashes so that the path
prefixes in lintlib.config match on any host.  compile_commands.json (from
CMAKE_EXPORT_COMPILE_COMMANDS=ON, satellite of this PR) supplies per-TU
arguments to the clang backend; the text backend only needs the file list.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

_EXTS = ('.cpp', '.cc', '.cxx', '.hpp', '.h', '.hh')


def repo_root(start: Optional[str] = None) -> str:
    """Nearest ancestor containing .git, else the start directory."""
    d = os.path.abspath(start or os.getcwd())
    while True:
        if os.path.isdir(os.path.join(d, '.git')):
            return d
        parent = os.path.dirname(d)
        if parent == d:
            return os.path.abspath(start or os.getcwd())
        d = parent


def rel(root: str, path: str) -> str:
    return os.path.relpath(os.path.abspath(path), root).replace(os.sep, '/')


def discover(root: str, paths: List[str]) -> List[str]:
    """Expand files/directories into a sorted repo-relative source list."""
    out: List[str] = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            out.append(rel(root, ap))
            continue
        for dirpath, dirnames, filenames in os.walk(ap):
            dirnames[:] = sorted(d for d in dirnames
                                 if not d.startswith('.')
                                 and not d.startswith('build'))
            for fname in sorted(filenames):
                if fname.endswith(_EXTS):
                    out.append(rel(root, os.path.join(dirpath, fname)))
    seen = set()
    uniq = []
    for f in out:
        if f not in seen:
            seen.add(f)
            uniq.append(f)
    return uniq


def find_compdb(root: str, explicit: Optional[str]) -> Optional[str]:
    if explicit:
        return explicit if os.path.isfile(explicit) else None
    for cand in ('build/compile_commands.json',
                 'build-asan/compile_commands.json',
                 'build-tsan/compile_commands.json',
                 'compile_commands.json'):
        p = os.path.join(root, cand)
        if os.path.isfile(p):
            return p
    return None


def load_compdb(path: str, root: str) -> Dict[str, List[str]]:
    """file (repo-relative) -> compiler args (without -c/-o/the file)."""
    with open(path, encoding='utf-8') as fh:
        entries = json.load(fh)
    out: Dict[str, List[str]] = {}
    for e in entries:
        f = e.get('file')
        if not f:
            continue
        directory = e.get('directory', '.')
        fabs = f if os.path.isabs(f) else os.path.join(directory, f)
        key = rel(root, fabs)
        if 'arguments' in e:
            argv = list(e['arguments'])[1:]
        else:
            argv = e.get('command', '').split()[1:]
        args: List[str] = []
        skip = False
        for a in argv:
            if skip:
                skip = False
                continue
            if a in ('-c', '-o'):
                skip = a == '-o'
                continue
            if a == f or a == fabs or a.endswith(os.path.basename(f)) and \
                    a.endswith(_EXTS):
                continue
            args.append(a)
        out[key] = args
    return out
