"""Project contract configuration for msropm-lint.

Each entry grounds a rule in a documented contract — see scripts/lint/README.md
for the rule catalogue and the src/*/README sections each one cross-references.
Paths are repo-relative prefixes matched against forward-slash paths.
"""

from __future__ import annotations

import re

# ---------------------------------------------------------------------------
# obs-gate — src/obs/README.md "Overhead contract":
# obs event calls reachable from solver / phase / portfolio hot paths must be
# dominated by an obs::gate() (or metrics_enabled/tracing_enabled) check.
# ---------------------------------------------------------------------------

# Modules whose code is reachable from the three hot engines.
OBS_GATE_PATHS = ('src/sat/', 'src/phase/', 'src/portfolio/', 'src/msropm/',
                  'src/solvers/')

# Event entry points that mutate the registry / tracer per call.  Span and
# the interning calls (counter/gauge/timer/histogram) are exempt: a Span is
# self-gating by construction (captures the gate word once, inert at 0) and
# interning happens once per process at metric-struct init.
OBS_EVENT_CALLS = ('add', 'set_gauge', 'observe', 'record_time',
                   'trace_counter', 'trace_instant')

# Identifiers that, appearing in an `if` condition, mark its true-branch as
# gate-dominated.  `obs_gate` / `gate` cover the cached-load idiom
# (`const std::uint32_t obs_gate = obs::gate();`), `flags_` covers
# Span-internal code.
OBS_GATE_TOKENS = ('gate', 'metrics_enabled', 'tracing_enabled', 'obs_gate',
                   'flags_')

# ---------------------------------------------------------------------------
# poll-discipline — src/util/README.md "Cancellation / budget contract":
# long-running entry-point loops must poll StopToken / ResourceBudget /
# fault gates.  Applied to functions matching ENTRY_POINTS; loop nests whose
# bound is a literal <= POLL_TRIP_THRESHOLD are exempt.
# ---------------------------------------------------------------------------

ENTRY_POINTS = [re.compile(p) for p in (
    r'(^|::)Solver::solve_internal$',
    r'(^|::)Solver::solve_obs$',
    r'(^|::)Preprocessor::run$',
    r'(^|::)PhaseBatch::run$',
    r'(^|::)run_iterations$',
    r'(^|::)solve_tabucol$',
    r'(^|::)solve_sa_potts$',
    r'(^|::)MultiStagePottsMachine::solve_batch$',
    r'(^|::)IncrementalColoringSolver::solve_k$',
    r'(^|::)chromatic_search$',
    r'(^|::)run_portfolio\w*$',
    r'(^|::)SweepRunner::\w+$',
)]

# Direct poll markers; local lambdas whose bodies contain one of these are
# resolved per-function and their names join the set (the `stopped()` /
# `should_break()` idiom).
POLL_TOKENS = ('stop_requested', 'deadline_expired', 'budget_breach', 'fire',
               'cancelled')

POLL_TRIP_THRESHOLD = 4096  # literal loop bounds <= this never need a poll

# The rule targets loops that run ITERATION-scale work, not loops bounded by
# input size (per-replica setup, result aggregation, validation sweeps are
# O(data) per call and finish with the data).  A loop is a poll candidate
# when it is infinite (`for(;;)`, `while(true)`) or its header names an
# iteration budget:
ITER_BOUND_RE = re.compile(
    r'(iter|step|sweep|round|restart|attempt|epoch|trial|budget|conflict)',
    re.IGNORECASE)

# Callees that poll cooperatively per their own documented contracts; a loop
# that calls one of these delegates its polling (PhaseBatch::run polls every
# 32 steps, Solver::solve honors conflict/stop budgets, the portfolio drain
# path polls inside run_task).
POLLING_CALLEES = ('run', 'solve', 'solve_batch', 'solve_k', 'solve_internal',
                   'run_portfolio_batch', 'run_iterations', 'solve_tabucol',
                   'solve_sa_potts', 'solve_sa_potts_from', 'drain')

# ---------------------------------------------------------------------------
# determinism — src/portfolio/README.md "Determinism contract" and
# src/sat/README.md: result-producing code draws randomness only through
# util::Rng (seeded, split()), never reads wall clocks into results, and
# never iterates unordered containers.
# ---------------------------------------------------------------------------

# Result-producing scope: everything in src/ except the whitelist below.
DETERMINISM_PATHS = ('src/',)
# Whitelisted infrastructure: obs (trace timestamps), util (Rng itself,
# StopToken deadlines, bench provenance stamps, wall-clock helpers).
DETERMINISM_WHITELIST = ('src/obs/', 'src/util/')

BANNED_RANDOM = ('rand', 'srand', 'random_device', 'mt19937', 'mt19937_64',
                 'minstd_rand', 'minstd_rand0', 'default_random_engine',
                 'random_shuffle', 'rand_r', 'drand48', 'lrand48')
BANNED_CLOCK = ('system_clock', 'gettimeofday', 'clock_gettime', 'localtime',
                'gmtime')
UNORDERED_CONTAINERS = ('unordered_map', 'unordered_set', 'unordered_multimap',
                        'unordered_multiset')

# ---------------------------------------------------------------------------
# hot-path-alloc — src/sat/README.md "Hot path" and src/phase/README.md:
# the propagate/analyze/reduce/batch-step kernels must not allocate.
# Container growth on receivers with a visible reserve()/exact-size setup in
# the same translation unit is amortized-safe and allowed.
# ---------------------------------------------------------------------------

HOT_FUNCTIONS = [re.compile(p) for p in (
    r'(^|::)Solver::propagate$',
    r'(^|::)Solver::enqueue$',
    r'(^|::)Solver::analyze$',
    r'(^|::)Solver::lit_redundant$',
    r'(^|::)Solver::analyze_final$',
    r'(^|::)Solver::backtrack$',
    r'(^|::)Solver::pick_branch_lit$',
    r'(^|::)Solver::bump_var$',
    r'(^|::)Solver::bump_clause$',
    r'(^|::)Solver::reduce_learnts$',
    r'(^|::)Solver::garbage_collect$',
    r'(^|::)PhaseBatch::euler_step_replica$',
    r'(^|::)PhaseBatch::rk4_step_replica$',
    r'(^|::)PhaseBatch::derivative_into$',
    r'(^|::)PhaseBatch::refresh_trig$',
    r'(^|::)PhaseBatch::step$',
    r'(^|::)PhaseBatch::step_rk4$',
    r'(^|::)VarOrderHeap::\w+$',
)]

GROWTH_CALLS = ('push_back', 'emplace_back', 'resize', 'insert', 'emplace',
                'append', 'assign', 'push', 'emplace_front', 'push_front')

ALLOC_CALLS = ('malloc', 'calloc', 'realloc', 'make_unique', 'make_shared',
               'strdup')

# Local declarations of these types inside hot functions are flagged (their
# constructors may allocate).
ALLOCATING_TYPES = ('vector', 'string', 'deque', 'map', 'set', 'list',
                    'unordered_map', 'unordered_set', 'basic_string',
                    'stringstream', 'ostringstream', 'function')

# ---------------------------------------------------------------------------
# atomics-discipline — src/obs/README.md "Overhead contract" and
# src/util/README.md fault-gate contract: the thread-local metric cells,
# the gate words, and the fault/stop flags name their memory order
# explicitly; a defaulted (seq_cst) operation is a contract violation.
# ---------------------------------------------------------------------------

ATOMICS_PATHS = ('src/obs/', 'src/util/fault_injector',
                 'src/util/include/msropm/util/fault_injector',
                 'src/util/include/msropm/util/stop_token')

ATOMIC_OPS = ('load', 'store', 'fetch_add', 'fetch_sub', 'fetch_or',
              'fetch_and', 'fetch_xor', 'exchange', 'compare_exchange_weak',
              'compare_exchange_strong', 'test_and_set', 'clear', 'wait',
              'notify_one', 'notify_all')

# Ops for which a missing memory_order argument is reportable.  clear()/wait()
# etc. are listed above only so the receiver heuristics can recognize atomics.
ATOMIC_ORDERED_OPS = ('load', 'store', 'fetch_add', 'fetch_sub', 'fetch_or',
                      'fetch_and', 'fetch_xor', 'exchange',
                      'compare_exchange_weak', 'compare_exchange_strong',
                      'test_and_set')


def path_in(path: str, prefixes) -> bool:
    return any(path.startswith(p) for p in prefixes)
