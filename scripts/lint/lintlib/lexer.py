"""C++ token stream for msropm-lint.

A deliberately small lexer: it does not try to be a C++ front end, it only
needs to be exact about the things that fool regex-based linters — comments,
string/char literals (including raw strings), and line numbers. Preprocessor
directives are kept as single tokens so rule code can skip them.

Tokens are (kind, text, line, col) namedtuples. Kinds:
  'id'     identifiers and keywords
  'num'    numeric literals
  'str'    string literal (text is the *quoted* source text)
  'chr'    char literal
  'punct'  one operator/punctuator per token (longest-match)
  'pp'     a whole preprocessor directive line (including continuations)

Comments never become tokens; suppression comments are handled separately by
lintlib.suppress directly on the raw source lines.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple


class Token(NamedTuple):
    kind: str
    text: str
    line: int  # 1-based
    col: int   # 0-based


# Longest-first so '>>=' wins over '>>' wins over '>'.
_PUNCTS = [
    '<<=', '>>=', '...', '->*', '::', '->', '++', '--', '<<', '>>', '<=',
    '>=', '==', '!=', '&&', '||', '+=', '-=', '*=', '/=', '%=', '&=', '|=',
    '^=', '##',
]

_ID_RE = re.compile(r'[A-Za-z_][A-Za-z0-9_]*')
_NUM_RE = re.compile(r'''
    (?: 0[xX][0-9a-fA-F'.]+ | \.?[0-9][0-9a-fA-F'.eEpPxX+-]* )
    [uUlLfFzZ]*
''', re.VERBOSE)
_RAW_STR_RE = re.compile(r'R"([^()\\ \t\n]*)\(')


def tokenize(text: str) -> List[Token]:
    """Tokenize C++ source text. Never raises on malformed input; unknown
    bytes become single-char punct tokens."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    line = 1
    line_start = 0

    def col(pos: int) -> int:
        return pos - line_start

    def count_lines(start: int, end: int) -> None:
        nonlocal line, line_start
        seg = text[start:end]
        newlines = seg.count('\n')
        if newlines:
            line += newlines
            line_start = start + seg.rindex('\n') + 1

    while i < n:
        c = text[i]
        # -- whitespace -----------------------------------------------------
        if c in ' \t\r\v\f':
            i += 1
            continue
        if c == '\n':
            line += 1
            i += 1
            line_start = i
            continue
        # -- comments -------------------------------------------------------
        if c == '/' and i + 1 < n:
            nxt = text[i + 1]
            if nxt == '/':
                end = text.find('\n', i)
                i = n if end < 0 else end
                continue
            if nxt == '*':
                end = text.find('*/', i + 2)
                end = n if end < 0 else end + 2
                count_lines(i, end)
                i = end
                continue
        # -- preprocessor directives ---------------------------------------
        if c == '#' and (not tokens or tokens[-1].line != line):
            start = i
            while i < n:
                end = text.find('\n', i)
                if end < 0:
                    i = n
                    break
                if text[end - 1] == '\\' if end > 0 else False:
                    i = end + 1
                    continue
                i = end
                break
            tokens.append(Token('pp', text[start:i], line, col(start)))
            count_lines(start, i)
            continue
        # -- raw strings ----------------------------------------------------
        if c == 'R' and text.startswith('R"', i):
            m = _RAW_STR_RE.match(text, i)
            if m:
                delim = ')' + m.group(1) + '"'
                end = text.find(delim, m.end())
                end = n if end < 0 else end + len(delim)
                tokens.append(Token('str', text[i:end], line, col(i)))
                count_lines(i, end)
                i = end
                continue
        # -- string / char literals ----------------------------------------
        if c in '"\'':
            start = i
            i += 1
            while i < n:
                if text[i] == '\\':
                    i += 2
                    continue
                if text[i] == c:
                    i += 1
                    break
                if text[i] == '\n':  # unterminated; bail at EOL
                    break
                i += 1
            kind = 'str' if c == '"' else 'chr'
            tokens.append(Token(kind, text[start:i], line, col(start)))
            continue
        # -- identifiers ----------------------------------------------------
        m = _ID_RE.match(text, i)
        if m:
            tokens.append(Token('id', m.group(), line, col(i)))
            i = m.end()
            continue
        # -- numbers --------------------------------------------------------
        if c.isdigit() or (c == '.' and i + 1 < n and text[i + 1].isdigit()):
            m = _NUM_RE.match(text, i)
            if m:
                tokens.append(Token('num', m.group(), line, col(i)))
                i = m.end()
                continue
        # -- punctuators ----------------------------------------------------
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token('punct', p, line, col(i)))
                i += len(p)
                break
        else:
            tokens.append(Token('punct', c, line, col(i)))
            i += 1
    return tokens


def match_balanced(tokens: List[Token], open_idx: int,
                   pairs={'(': ')', '[': ']', '{': '}', '<': '>'}) -> int:
    """Index of the token closing tokens[open_idx], or len(tokens).

    '<' is only balanced against '>' when called explicitly with open '<';
    for '(', '[', '{' the angle brackets are ignored (they are operators).
    """
    opener = tokens[open_idx].text
    closer = pairs[opener]
    depth = 0
    for j in range(open_idx, len(tokens)):
        t = tokens[j].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return j
    return len(tokens)
