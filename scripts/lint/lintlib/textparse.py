"""Lexical C++ structure recovery for msropm-lint's text backend.

This is not a C++ parser.  It recovers exactly the structure the rules need:

  * function definitions (qualified name, parameter tokens, body extent),
  * a statement tree per body — if/else with condition tokens, loops with
    kind + condition, return statements, everything else opaque,
  * named local lambdas (name -> body tokens) so that rule code can resolve
    `stopped()` / `should_break()` style poll helpers.

The clang backend reuses parse_body()/find_lambdas() on the precise function
extents it gets from libclang, so rule semantics are identical either way.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .lexer import Token, match_balanced, tokenize
from .model import FunctionModel, Stmt, TranslationUnit

# Keywords that can directly precede a '(' without being a function name.
_NOT_A_FUNCTION = {
    'if', 'for', 'while', 'switch', 'catch', 'return', 'sizeof', 'alignof',
    'alignas', 'decltype', 'noexcept', 'static_assert', 'throw', 'new',
    'delete', 'co_await', 'co_return', 'co_yield', 'assert', 'defined',
    'constexpr', 'requires',
}

_SCOPE_KEYWORDS = {'namespace', 'class', 'struct', 'union', 'enum'}

_CONTROL = {'if', 'for', 'while', 'do', 'switch', 'try', 'else', 'return'}


def _skip_to_semicolon(tokens: List[Token], i: int) -> Tuple[List[Token], int]:
    """Consume one non-control statement: tokens up to and including the ';'
    that ends it at nesting level 0.  Braces opened mid-statement (lambda
    bodies, init lists) are consumed balanced as part of the statement."""
    out: List[Token] = []
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.text in '([{':
            j = match_balanced(tokens, i)
            out.extend(tokens[i:j + 1])
            i = j + 1
            continue
        if t.text in ')]}':
            # Unbalanced closer: end of enclosing block — stop without
            # consuming it so the caller sees the '}'.
            break
        out.append(t)
        i += 1
        if t.text == ';':
            break
    return out, i


def _parse_one(tokens: List[Token], i: int) -> Tuple[Optional[Stmt], int]:
    """Parse one statement starting at i.  Returns (stmt, next_index); stmt
    is None for stray ';' / '}' handled by the caller."""
    n = len(tokens)
    if i >= n:
        return None, i
    t = tokens[i]
    if t.text == ';':
        return None, i + 1
    if t.text == '{':
        body, j = parse_block(tokens, i + 1)
        return Stmt('block', body=body, line=t.line), j
    if t.kind == 'pp':
        return Stmt('other', tokens=[t], line=t.line), i + 1
    if t.kind == 'id' and t.text in ('if', 'while', 'for', 'switch'):
        kw = t.text
        j = i + 1
        if j < n and tokens[j].text == 'constexpr':  # if constexpr
            j += 1
        if j >= n or tokens[j].text != '(':
            return Stmt('other', tokens=[t], line=t.line), i + 1
        close = match_balanced(tokens, j)
        cond = tokens[j + 1:close]
        k = close + 1
        if kw == 'switch':
            body_stmt, k = _parse_one(tokens, k)
            body = [body_stmt] if body_stmt else []
            return Stmt('other', tokens=[t], cond=cond, body=body, line=t.line), k
        body, k = _parse_stmt_or_block(tokens, k)
        if kw == 'if':
            else_body: List[Stmt] = []
            if k < n and tokens[k].kind == 'id' and tokens[k].text == 'else':
                else_body, k = _parse_stmt_or_block(tokens, k + 1)
            return Stmt('if', cond=cond, body=body, else_body=else_body,
                        line=t.line), k
        loop_kind = kw
        if kw == 'for' and any(c.text == ':' for c in _depth0(cond)):
            loop_kind = 'range-for'
        return Stmt('loop', cond=cond, body=body, loop_kind=loop_kind,
                    line=t.line), k
    if t.kind == 'id' and t.text == 'do':
        body, k = _parse_stmt_or_block(tokens, i + 1)
        cond: List[Token] = []
        if k < n and tokens[k].kind == 'id' and tokens[k].text == 'while':
            if k + 1 < n and tokens[k + 1].text == '(':
                close = match_balanced(tokens, k + 1)
                cond = tokens[k + 2:close]
                k = close + 1
                if k < n and tokens[k].text == ';':
                    k += 1
        return Stmt('loop', cond=cond, body=body, loop_kind='do', line=t.line), k
    if t.kind == 'id' and t.text in ('try', 'else'):
        body, k = _parse_stmt_or_block(tokens, i + 1)
        return Stmt('block', body=body, line=t.line), k
    if t.kind == 'id' and t.text == 'catch':
        j = i + 1
        cond = []
        if j < n and tokens[j].text == '(':
            close = match_balanced(tokens, j)
            cond = tokens[j + 1:close]
            j = close + 1
        body, k = _parse_stmt_or_block(tokens, j)
        return Stmt('block', cond=cond, body=body, line=t.line), k
    if t.kind == 'id' and t.text == 'return':
        stmt_tokens, k = _skip_to_semicolon(tokens, i)
        return Stmt('return', tokens=stmt_tokens, line=t.line), k
    stmt_tokens, k = _skip_to_semicolon(tokens, i)
    if not stmt_tokens:
        return None, i + 1  # defensive: never stall
    return Stmt('other', tokens=stmt_tokens, line=t.line), k


def _parse_stmt_or_block(tokens: List[Token], i: int) -> Tuple[List[Stmt], int]:
    n = len(tokens)
    if i < n and tokens[i].text == '{':
        return parse_block(tokens, i + 1)
    stmt, k = _parse_one(tokens, i)
    return ([stmt] if stmt else []), k


def parse_block(tokens: List[Token], i: int) -> Tuple[List[Stmt], int]:
    """Parse statements until the matching '}'.  i points just past '{'."""
    stmts: List[Stmt] = []
    n = len(tokens)
    while i < n:
        if tokens[i].text == '}':
            return stmts, i + 1
        stmt, j = _parse_one(tokens, i)
        if j <= i:  # defensive: always advance
            j = i + 1
        if stmt is not None:
            stmts.append(stmt)
        i = j
    return stmts, i


def _depth0(tokens: List[Token]) -> List[Token]:
    """Tokens of a sequence visible at bracket depth 0."""
    out = []
    depth = 0
    for t in tokens:
        if t.text in '([{':
            depth += 1
        elif t.text in ')]}':
            depth -= 1
        elif depth == 0:
            out.append(t)
    return out


def find_lambdas(body_tokens: List[Token]) -> dict:
    """Map `auto name = [..](..) {...}` locals to their body token lists."""
    out = {}
    n = len(body_tokens)
    for i, t in enumerate(body_tokens):
        if t.text != '=' or i == 0:
            continue
        name_tok = body_tokens[i - 1]
        if name_tok.kind != 'id':
            continue
        j = i + 1
        if j >= n or body_tokens[j].text != '[':
            continue
        j = match_balanced(body_tokens, j) + 1  # past capture list
        if j < n and body_tokens[j].text == '(':
            j = match_balanced(body_tokens, j) + 1
        while j < n and body_tokens[j].kind == 'id' and \
                body_tokens[j].text in ('mutable', 'noexcept', 'constexpr'):
            j += 1
        if j < n and body_tokens[j].text == '->':
            while j < n and body_tokens[j].text != '{':
                j += 1
        if j < n and body_tokens[j].text == '{':
            close = match_balanced(body_tokens, j)
            out[name_tok.text] = body_tokens[j + 1:close]
    return out


def _declarator_name(tokens: List[Token], open_paren: int) -> Optional[Tuple[str, str]]:
    """(base_name, qualified_name) of the declarator whose parameter list
    opens at open_paren, or None if this '(' is not a function declarator."""
    j = open_paren - 1
    if j < 0:
        return None
    # operator overloads: treat as non-functions for lint purposes (none of
    # the rules key on them) except operator() which we skip entirely.
    parts: List[str] = []
    t = tokens[j]
    if t.kind != 'id':
        return None
    if t.text in _NOT_A_FUNCTION:
        return None
    parts.append(t.text)
    j -= 1
    # destructor ~Name
    if j >= 0 and tokens[j].text == '~':
        parts[-1] = '~' + parts[-1]
        j -= 1
    # qualification chain Name:: (possibly with template args which we skip)
    while j >= 1 and tokens[j].text == '::' and tokens[j - 1].kind == 'id':
        parts.append(tokens[j - 1].text)
        j -= 2
    base = parts[0]
    qualified = '::'.join(reversed(parts))
    return base, qualified


_BODY_INTRO_SKIP = {'const', 'noexcept', 'override', 'final', 'mutable',
                    'volatile', '&', '&&', 'try', 'requires'}


def extract_functions(path: str, text: str) -> TranslationUnit:
    tokens = tokenize(text)
    tu = TranslationUnit(path=path, tokens=tokens,
                         raw_lines=text.splitlines())
    n = len(tokens)
    i = 0
    scope_stack: List[str] = []  # class/struct names for qualification
    pending_scope: Optional[str] = None
    while i < n:
        t = tokens[i]
        if t.kind == 'id' and t.text in _SCOPE_KEYWORDS:
            # remember `class Foo` / `namespace bar` so the next '{' at this
            # level attributes members. `enum class X : int {` handled too.
            name = None
            j = i + 1
            while j < n and tokens[j].kind == 'id' and \
                    tokens[j].text in ('class', 'struct', 'final', 'alignas'):
                j += 1
            if j < n and tokens[j].kind == 'id':
                name = tokens[j].text
            pending_scope = name or ''
            i += 1
            continue
        if t.text == '{':
            scope_stack.append(pending_scope or '')
            pending_scope = None
            i += 1
            continue
        if t.text == '}':
            if scope_stack:
                scope_stack.pop()
            i += 1
            continue
        if t.text == ';' or t.text == '=':
            pending_scope = None
        if t.text == '(':
            named = _declarator_name(tokens, i)
            close = match_balanced(tokens, i)
            if named is None or close >= n:
                i += 1
                continue
            # Walk past trailing qualifiers / trailing return / ctor inits to
            # find either '{' (definition) or ';'/',' (declaration / call).
            k = close + 1
            is_def = False
            depth_guard = 0
            while k < n:
                tk = tokens[k]
                if tk.text == '{':
                    is_def = True
                    break
                if tk.text in (';', ',', ')'):
                    break
                if tk.kind == 'id' and tk.text in _BODY_INTRO_SKIP:
                    k += 1
                    continue
                if tk.text in ('&', '&&'):
                    k += 1
                    continue
                if tk.text == '->':  # trailing return type
                    k += 1
                    continue
                if tk.text == ':':   # ctor init list: consume to '{'
                    k += 1
                    while k < n and tokens[k].text != '{':
                        if tokens[k].text in '([':
                            k = match_balanced(tokens, k) + 1
                            continue
                        if tokens[k].text == ';':
                            break
                        k += 1
                    continue
                if tk.text == '(':
                    k = match_balanced(tokens, k) + 1
                    continue
                if tk.kind == 'id' or tk.text == '::' or tk.text == '<':
                    # trailing return type tokens / noexcept(expr) etc.
                    k += 1
                    continue
                break
            if not is_def:
                i = close + 1
                continue
            base, qualified = named
            if '::' not in qualified and scope_stack and scope_stack[-1]:
                qualified = scope_stack[-1] + '::' + qualified
            body_open = k
            body_close = match_balanced(tokens, body_open)
            body = tokens[body_open + 1:body_close]
            stmts, _ = parse_block(tokens[body_open + 1:body_close + 1], 0) \
                if body_close > body_open else ([], 0)
            fn = FunctionModel(
                name=base,
                qualified=qualified,
                file=path,
                line=t.line,
                end_line=tokens[body_close].line if body_close < n else t.line,
                body_tokens=body,
                stmts=stmts,
                lambda_bodies=find_lambdas(body),
                param_tokens=tokens[i + 1:close],
            )
            tu.functions.append(fn)
            i = body_close + 1
            continue
        i += 1
    return tu
