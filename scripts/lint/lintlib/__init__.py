"""msropm-lint: contract-enforcing static analysis for the msropm stack.

See scripts/lint/README.md for the rule catalogue and suppression syntax.
"""

__all__ = ['config', 'lexer', 'model', 'report', 'rules', 'sources',
           'suppress', 'textparse', 'clang_backend']
