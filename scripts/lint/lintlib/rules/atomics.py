"""atomics-discipline: obs cells and fault/stop gates name their memory
order explicitly; a defaulted (seq_cst) operation is a contract violation.

Contract (src/obs/README.md overhead contract; src/util/README.md fault-gate
contract): the thread-local metric cells, trace gate word, fault-site
counters and stop flags are performance-contracted to relaxed (or
acquire/release where a happens-before edge is required, e.g. StopToken's
trip flag).  A defaulted atomic operation silently means seq_cst — a full
fence on x86 stores and a stronger ordering everywhere — which breaks the
<= 8 ns disabled-path budgets (BM_ObsSpanOverhead, BM_FaultGateOverhead)
without failing any test until the bench gate trips.  Naming the order keeps
the choice reviewable.

Scope: the files in config.ATOMICS_PATHS.  Flagged: any
load/store/exchange/fetch_*/compare_exchange_*/test_and_set member call
whose argument list does not mention memory_order.  Not covered (keep the
operator forms out of these files): `atom = x`, `atom++`, implicit
conversions — those always mean seq_cst and have no explicit-order spelling.
"""

from __future__ import annotations

from typing import List

from .. import config
from ..lexer import match_balanced
from ..model import Finding, TranslationUnit
from .common import enclosing_function

RULE_ID = 'atomics-discipline'
CONTRACT = ('obs cells / fault gates / stop flags name their memory order '
            'explicitly — defaulted seq_cst breaks the <= 8 ns gate '
            'budgets (src/obs/README.md, src/util/README.md)')


def check(tu: TranslationUnit) -> List[Finding]:
    if not config.path_in(tu.path, config.ATOMICS_PATHS):
        return []
    findings: List[Finding] = []
    toks = tu.tokens
    for i, t in enumerate(toks):
        if t.kind != 'id' or t.text not in config.ATOMIC_ORDERED_OPS:
            continue
        if i == 0 or toks[i - 1].text not in ('.', '->'):
            continue  # not a member call (std::exchange() etc.)
        if i + 1 >= len(toks) or toks[i + 1].text != '(':
            continue
        close = match_balanced(toks, i + 1)
        args = toks[i + 2:close]
        # std::memory_order_relaxed tokenizes as one identifier; C++20's
        # std::memory_order::relaxed as `memory_order :: relaxed`.
        if any(a.kind == 'id' and a.text.startswith('memory_order')
               for a in args):
            continue
        findings.append(Finding(
            rule=RULE_ID, file=tu.path, line=t.line, col=t.col,
            function=enclosing_function(tu, t.line),
            message=(f'.{t.text}(...) with defaulted memory order (seq_cst) '
                     'on a contractually relaxed/acq-rel cell: spell the '
                     'std::memory_order_* explicitly '
                     '(src/obs/README.md overhead contract)')))
    return findings
