"""Rule registry for msropm-lint.

Every rule module exposes:
  RULE_ID     str
  CONTRACT    one-line statement of the contract it enforces
  check(tu)   -> List[Finding]  for one TranslationUnit

Register new rules here; `msropm-lint --list-rules` renders this table.
The pseudo-rule `lint-suppression` (malformed/unused suppressions) is
implemented by lintlib.suppress and is always active.
"""

from __future__ import annotations

from typing import Dict, List

from ..model import Finding, TranslationUnit
from . import atomics, determinism, hot_path_alloc, obs_gate, poll_discipline

_MODULES = (obs_gate, poll_discipline, determinism, hot_path_alloc, atomics)

RULES = {m.RULE_ID: m for m in _MODULES}


def rule_ids() -> List[str]:
    return [m.RULE_ID for m in _MODULES]


def contracts() -> Dict[str, str]:
    return {m.RULE_ID: m.CONTRACT for m in _MODULES}


def run_rules(tu: TranslationUnit, enabled) -> List[Finding]:
    findings: List[Finding] = []
    for rid in enabled:
        findings.extend(RULES[rid].check(tu))
    return findings
