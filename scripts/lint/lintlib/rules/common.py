"""Token-level helpers shared by the rule implementations."""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..lexer import Token
from ..model import FunctionModel, Stmt, TranslationUnit
from ..textparse import parse_block


def parse_token_body(tokens: List[Token]) -> List[Stmt]:
    """Parse a raw body token list (e.g. a lambda body) into a statement
    forest, reusing the function-body parser."""
    if not tokens:
        return []
    closer = Token('punct', '}', tokens[-1].line, 0)
    stmts, _ = parse_block(list(tokens) + [closer], 0)
    return stmts


def is_call(tokens: Sequence[Token], i: int) -> bool:
    """tokens[i] is an identifier directly invoked as `name(`."""
    return (tokens[i].kind == 'id' and i + 1 < len(tokens)
            and tokens[i + 1].text == '(')


def qualified_by(tokens: Sequence[Token], i: int, qualifier: str) -> bool:
    """tokens[i] is preceded by `qualifier::` (possibly itself preceded by
    more qualification, e.g. msropm::obs::add)."""
    return (i >= 2 and tokens[i - 1].text == '::'
            and tokens[i - 2].kind == 'id' and tokens[i - 2].text == qualifier)


def match_backward(tokens: Sequence[Token], close_idx: int) -> int:
    """Index of the opener matching the closer at close_idx (']' or ')')."""
    closer = tokens[close_idx].text
    opener = {']': '[', ')': '(', '}': '{'}[closer]
    depth = 0
    for j in range(close_idx, -1, -1):
        t = tokens[j].text
        if t == closer:
            depth += 1
        elif t == opener:
            depth -= 1
            if depth == 0:
                return j
    return 0


def receiver_root(tokens: Sequence[Token], dot_idx: int) -> Optional[str]:
    """Leftmost identifier of the receiver chain ending at the '.'/'->' at
    dot_idx — e.g. `watches_[(~lits[1]).index()].push_back` -> 'watches_'."""
    j = dot_idx - 1
    root: Optional[str] = None
    while j >= 0:
        t = tokens[j]
        if t.text in (']', ')'):
            j = match_backward(tokens, j) - 1
            continue
        if t.kind == 'id':
            root = t.text
            j -= 1
            if j >= 0 and tokens[j].text in ('.', '->', '::'):
                j -= 1
                continue
            break
        break
    return root


def literal_int(text: str) -> Optional[int]:
    """Parse a C++ integer literal token, or None."""
    s = text.replace("'", '').rstrip('uUlLzZ')
    try:
        return int(s, 0)
    except ValueError:
        return None


def lambda_token_ids(fn: FunctionModel) -> Set[int]:
    """Identity set of every token inside one of fn's named lambda bodies,
    so statement-level scans can skip them (they are analyzed separately
    with the gating of their call sites)."""
    out: Set[int] = set()
    for body in fn.lambda_bodies.values():
        for t in body:
            out.add(id(t))
    return out


def enclosing_function(tu: TranslationUnit, line: int) -> str:
    for fn in tu.functions:
        if fn.line <= line <= fn.end_line:
            return fn.qualified
    return ''
