"""determinism: result-producing code must be bit-reproducible.

Contract (src/portfolio/README.md "Determinism contract"; src/sat/README.md
multi-shot contract; ROADMAP serial bit-determinism across PRs 2-8): verdicts
and models are identical run-to-run and at any worker count.  That dies the
moment result-producing code consults an uncontrolled source of entropy or
an unspecified iteration order, so outside the whitelisted infrastructure
(src/obs, src/util) this rule bans:

  * libc / <random> entropy: rand(), srand(), std::random_device,
    std::mt19937 & friends — all randomness flows through util::Rng, seeded
    explicitly and forked with Rng::split(stream_id);
  * wall-clock reads: std::chrono::system_clock, gettimeofday,
    clock_gettime, localtime/gmtime (steady_clock is allowed: it is
    monotonic and only used for durations/deadlines, never results);
  * std::unordered_* containers: iteration order is
    implementation-defined — and seeded differently across libc++/libstdc++;
  * pointer-keyed std::map/std::set: ordering by address varies per run.
"""

from __future__ import annotations

from typing import List

from .. import config
from ..model import Finding, TranslationUnit
from .common import enclosing_function

RULE_ID = 'determinism'
CONTRACT = ('no rand()/random_device/wall clocks/unordered iteration/'
            'pointer-keyed ordering in result-producing code; randomness '
            'flows through util::Rng::split (src/portfolio/README.md '
            'determinism contract)')


def _pointer_key(tokens, i) -> bool:
    """tokens[i] is `map`/`set` and the first template argument (the key)
    contains a raw pointer."""
    if tokens[i].text not in ('map', 'set', 'multimap', 'multiset'):
        return False
    if i + 1 >= len(tokens) or tokens[i + 1].text != '<':
        return False
    depth = 0
    for j in range(i + 1, min(i + 40, len(tokens))):
        t = tokens[j].text
        if t == '<':
            depth += 1
        elif t == '>':
            depth -= 1
            if depth == 0:
                return False
        elif t == ',' and depth == 1:
            return False  # past the key argument
        elif t == '*' and depth == 1:
            return True
    return False


def check(tu: TranslationUnit) -> List[Finding]:
    if not config.path_in(tu.path, config.DETERMINISM_PATHS):
        return []
    if config.path_in(tu.path, config.DETERMINISM_WHITELIST):
        return []
    findings: List[Finding] = []

    def report(tok, what: str) -> None:
        findings.append(Finding(
            rule=RULE_ID, file=tu.path, line=tok.line, col=tok.col,
            function=enclosing_function(tu, tok.line), message=what))

    toks = tu.tokens
    for i, t in enumerate(toks):
        if t.kind != 'id':
            continue
        if t.text in config.BANNED_RANDOM:
            # `rand` must look like a call or a std:: type to fire, so a
            # field named e.g. `srand` in a struct literal cannot trip it.
            called = i + 1 < len(toks) and toks[i + 1].text in ('(', '<', '{')
            qualified = i >= 2 and toks[i - 1].text == '::'
            if called or qualified:
                report(t, f'`{t.text}` is banned in result-producing code: '
                          'all randomness flows through util::Rng '
                          '(seed explicitly, fork with Rng::split)')
        elif t.text in config.BANNED_CLOCK:
            report(t, f'wall-clock source `{t.text}` is banned in '
                      'result-producing code: results must be '
                      'time-invariant (steady_clock durations are fine)')
        elif t.text in config.UNORDERED_CONTAINERS:
            report(t, f'`std::{t.text}` is banned in result-producing code: '
                      'iteration order is implementation-defined; use the '
                      'ordered containers or sort extracted keys')
        elif _pointer_key(toks, i):
            report(t, 'pointer-keyed ordered container: iteration order '
                      'follows allocation addresses, which vary per run; '
                      'key by a stable id instead')
    return findings
