"""hot-path-alloc: the designated propagate/analyze/reduce/batch-step hot
functions must not allocate.

Contract (src/sat/README.md hot-path sections; PR 3/4: "scratch buffers are
members so analyze/minimize/reduce allocate nothing per conflict"; bench gate
bench_sat_arena fails when search allocations scale with learnts): functions
matching config.HOT_FUNCTIONS run per-propagation / per-conflict / per-step
and may not reach the allocator.

Flagged inside hot functions:
  * operator new / make_unique / make_shared / malloc & friends;
  * declarations of allocating locals (std::vector, std::string, ...);
  * container growth (push_back/emplace_back/resize/insert/...) on a
    receiver with NO visible capacity setup — a `recv.reserve(...)` (or
    `recv.assign(n, ...)` sizing call) anywhere in the same translation
    unit marks `recv` amortized-safe.  `auto& alias = member[...]`
    aliases resolve to the member's root name.
"""

from __future__ import annotations

from typing import List, Set

from .. import config
from ..model import Finding, FunctionModel, TranslationUnit
from .common import receiver_root

RULE_ID = 'hot-path-alloc'
CONTRACT = ('no heap allocation or unreserved container growth in the '
            'propagate/analyze/reduce/batch-step hot functions '
            '(src/sat/README.md, bench_sat_arena alloc gate)')

_SIZING_CALLS = ('reserve', 'assign', 'resize')


def _reserved_roots(tu: TranslationUnit) -> Set[str]:
    """Roots with a visible capacity setup anywhere in the TU."""
    roots: Set[str] = set()
    toks = tu.tokens
    for i, t in enumerate(toks):
        if (t.kind == 'id' and t.text in _SIZING_CALLS
                and i + 1 < len(toks) and toks[i + 1].text == '('
                and i >= 1 and toks[i - 1].text in ('.', '->')):
            root = receiver_root(toks, i - 1)
            if root:
                roots.add(root)
    return roots


def _alias_map(fn: FunctionModel) -> dict:
    """`auto& alias = expr;` -> root(expr), one level."""
    out = {}
    toks = fn.body_tokens
    for i, t in enumerate(toks):
        if (t.kind == 'id' and t.text == 'auto' and i + 2 < len(toks)
                and toks[i + 1].text == '&' and toks[i + 2].kind == 'id'
                and i + 3 < len(toks) and toks[i + 3].text == '='):
            j = i + 4
            while j < len(toks) and toks[j].kind != 'id':
                j += 1
            if j < len(toks):
                out[toks[i + 2].text] = toks[j].text
    return out


def check(tu: TranslationUnit) -> List[Finding]:
    reserved = _reserved_roots(tu)
    findings: List[Finding] = []
    for fn in tu.functions:
        if not any(p.search(fn.qualified) for p in config.HOT_FUNCTIONS):
            continue
        aliases = _alias_map(fn)
        toks = fn.body_tokens

        def report(tok, msg: str) -> None:
            findings.append(Finding(
                rule=RULE_ID, file=tu.path, line=tok.line, col=tok.col,
                function=fn.qualified, message=msg))

        for i, t in enumerate(toks):
            if t.kind != 'id':
                continue
            nxt = toks[i + 1].text if i + 1 < len(toks) else ''
            prev = toks[i - 1].text if i > 0 else ''
            if t.text == 'new' and prev != 'operator':
                report(t, 'operator new on a hot path: hot functions must '
                          'not allocate (use member scratch, see '
                          'src/sat/README.md)')
            elif t.text in config.ALLOC_CALLS and nxt == '(':
                report(t, f'{t.text}() allocates on a hot path: hot '
                          'functions must not reach the allocator')
            elif (t.text in config.ALLOCATING_TYPES and nxt == '<'
                  and prev == '::' and i >= 2 and toks[i - 2].text == 'std'):
                report(t, f'local std::{t.text} declared on a hot path: its '
                          'constructor/growth may allocate; hoist it to a '
                          'member scratch buffer')
            elif (t.text in config.GROWTH_CALLS and nxt == '('
                  and prev in ('.', '->')):
                raw = receiver_root(toks, i - 1)
                root = aliases.get(raw, raw)
                # The sizing call may be spelled through either the member
                # or a local `auto&` alias of it — accept both.
                if (root is not None and root not in reserved
                        and raw not in reserved):
                    report(t, f'{root}.{t.text}(...) may grow an unreserved '
                              'container on a hot path: reserve() it at '
                              'setup (any reserve/assign of the receiver in '
                              'this file satisfies the rule)')
    return findings
