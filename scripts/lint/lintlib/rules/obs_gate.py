"""obs-gate: obs event calls on hot-path-reachable code must be dominated by
an obs::gate() / metrics_enabled() / tracing_enabled() check.

Contract (src/obs/README.md, "Overhead contract"): every obs entry point is
internally safe to call ungated, but each ungated call pays its own gate load
on the hot path.  The codebase discipline is therefore: per-event calls
(obs::add / set_gauge / observe / record_time / trace_counter /
trace_instant) reachable from sat::Solver, phase::PhaseBatch, or portfolio
workers are grouped under ONE dominating gate check.  obs::Span construction
is exempt (self-gating by design, <= 8 ns hard-gated by BM_ObsSpanOverhead),
as are the interning calls (counter()/gauge()/timer()/histogram()), which run
once per process.

Recognized domination patterns:

    if (obs::gate() != 0) { ...events... }
    if (obs::metrics_enabled()) { ...events... }
    const auto g = obs::gate();  if (g != 0) { ... }     (cached-load idiom)
    if (obs::gate() == 0) return ...;  ...events...      (early-out dispatch)
    void helper() { ...events... }   // every call site of helper() is gated
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import config
from ..lexer import Token
from ..model import Finding, FunctionModel, Stmt, TranslationUnit
from ..textparse import find_lambdas
from .common import lambda_token_ids, parse_token_body

RULE_ID = 'obs-gate'
CONTRACT = ('per-event obs:: calls on solver/phase/portfolio paths are '
            'dominated by an obs::gate()-family check '
            '(src/obs/README.md overhead contract)')


def _is_event_call(tokens: List[Token], i: int) -> bool:
    t = tokens[i]
    if t.kind != 'id' or t.text not in config.OBS_EVENT_CALLS:
        return False
    if i + 1 >= len(tokens) or tokens[i + 1].text != '(':
        return False
    return (i >= 2 and tokens[i - 1].text == '::'
            and tokens[i - 2].text == 'obs')


def _cond_gate_state(cond: List[Token]) -> Optional[str]:
    """'on' if the condition's truth implies the gate is open, 'off' if it
    implies the gate is closed, None if the condition is gate-unrelated."""
    gate_idx = None
    for i, t in enumerate(cond):
        if t.kind == 'id' and t.text in config.OBS_GATE_TOKENS:
            gate_idx = i
            break
    if gate_idx is None:
        return None
    # `!gate...` / `!obs::gate()` — scan the few tokens before the gate
    # identifier chain for a logical not.
    j = gate_idx - 1
    while j >= 0 and cond[j].text in ('::', 'obs', 'msropm'):
        j -= 1
    negated = j >= 0 and cond[j].text == '!'
    # `gate() == 0` / `0 == gate()` — equality with zero after/before.
    texts = [t.text for t in cond]
    if '==' in texts and '0' in texts:
        negated = not negated
    if '!=' in texts and '0' in texts and negated:
        # `!(gate() != 0)` is too exotic; treat explicit != 0 as positive.
        negated = False
    return 'off' if negated else 'on'


def _body_terminates(body: List[Stmt]) -> bool:
    return any(s.kind == 'return' for s in body)


class _Scanner:
    def __init__(self, fn: FunctionModel):
        self.fn = fn
        self.skip_ids = lambda_token_ids(fn)
        self.events: List[Tuple[Token, bool]] = []   # (token, gated)
        self.calls: List[Tuple[str, bool]] = []      # (callee name, gated)

    def scan_tokens(self, tokens: List[Token], gated: bool) -> None:
        for i, t in enumerate(tokens):
            if id(t) in self.skip_ids:
                continue
            if _is_event_call(tokens, i):
                self.events.append((t, gated))
            elif (t.kind == 'id' and i + 1 < len(tokens)
                  and tokens[i + 1].text == '('
                  and (i == 0 or tokens[i - 1].text not in ('.', '->', '::'))):
                self.calls.append((t.text, gated))

    def walk(self, stmts: List[Stmt], gated: bool) -> None:
        rest_gated = gated
        for s in stmts:
            if s.kind == 'if':
                state = _cond_gate_state(s.cond)
                self.scan_tokens(s.cond, rest_gated)
                if state == 'on':
                    self.walk(s.body, True)
                    self.walk(s.else_body, rest_gated)
                elif state == 'off':
                    self.walk(s.body, rest_gated)
                    self.walk(s.else_body, True)
                    if _body_terminates(s.body):
                        rest_gated = True
                else:
                    self.walk(s.body, rest_gated)
                    self.walk(s.else_body, rest_gated)
            elif s.kind in ('loop', 'block'):
                self.scan_tokens(s.cond, rest_gated)
                self.walk(s.body, rest_gated)
            else:
                self.scan_tokens(s.tokens, rest_gated)


def check(tu: TranslationUnit) -> List[Finding]:
    if not config.path_in(tu.path, config.OBS_GATE_PATHS):
        return []

    # Analysis units: every function plus every named local lambda.  Each
    # lambda model carries its own nested-lambda map so every token is
    # scanned in exactly one unit (outer scans skip inner lambda bodies).
    units: List[FunctionModel] = list(tu.functions)
    lambda_models: Dict[str, FunctionModel] = {}
    for fn in tu.functions:
        for lname, body in fn.lambda_bodies.items():
            body = list(body)
            lambda_models[lname] = FunctionModel(
                name=lname, qualified=f'{fn.qualified}::{lname}',
                file=tu.path, line=body[0].line if body else 0,
                end_line=body[-1].line if body else 0,
                body_tokens=body, stmts=parse_token_body(body),
                lambda_bodies=find_lambdas(body))
    units.extend(lambda_models.values())

    known = {fn.name for fn in tu.functions} | set(lambda_models)
    scanners: List[_Scanner] = []
    # callee -> [(caller name, lexically gated at the call site)]
    call_sites: Dict[str, List[Tuple[str, bool]]] = {}
    for model in units:
        sc = _Scanner(model)
        sc.walk(model.stmts, False)
        scanners.append(sc)
        for name, gated in sc.calls:
            if name in known:
                call_sites.setdefault(name, []).append((model.name, gated))

    # Fixpoint over "every call site is gated": a site counts as gated when
    # it is lexically dominated by a gate check OR its caller is itself
    # fully gated (note_conflict_obs -> publish_heartbeat chains).
    gated_names: set = set()
    changed = True
    while changed:
        changed = False
        for name, sites in call_sites.items():
            if name in gated_names:
                continue
            if all(g or caller in gated_names for caller, g in sites):
                gated_names.add(name)
                changed = True

    findings: List[Finding] = []
    for sc in scanners:
        if sc.fn.name in gated_names:
            continue  # helper reachable only through gates
        for tok, gated in sc.events:
            if not gated:
                findings.append(Finding(
                    rule=RULE_ID, file=tu.path, line=tok.line, col=tok.col,
                    function=sc.fn.qualified,
                    message=(f'obs::{tok.text}(...) is not dominated by an '
                             'obs::gate()/metrics_enabled()/tracing_enabled() '
                             'check (hot-path event calls are grouped under '
                             'one gate; see src/obs/README.md)')))
    return findings
