"""poll-discipline: long-running loops in solver/preprocessor/phase entry
points must poll StopToken / ResourceBudget / fault gates.

Contract (src/util/README.md cancellation + budget contracts; PR 2/9): every
engine entry point listed in config.ENTRY_POINTS unwinds cooperatively — a
loop that can run unbounded work without consulting stop_requested()/
deadline_expired()/budget_breach()/util::fault::fire() strands cancellation
and budgets, which breaks portfolio first-winner cancellation and the
graceful-degradation ladder.

Heuristics (documented in scripts/lint/README.md):
  * only iteration-scale loops are candidates: infinite loops (`for(;;)`,
    `while(true)`) and loops whose header names an iteration budget
    (config.ITER_BOUND_RE: iter/step/sweep/round/...).  Loops bounded by
    input size (per-replica setup, aggregation) finish with the data;
  * a candidate NEST is compliant when a poll marker appears anywhere in it
    (condition or body, any depth) — polling the outermost loop covers
    per-iteration inner work;
  * `for (...; i < K; ...)` with literal K <= config.POLL_TRIP_THRESHOLD is
    exempt (bounded trip count);
  * local lambdas and same-TU functions whose bodies poll (the `stopped()` /
    `should_break()` idiom) extend the poll marker set, as do the
    config.POLLING_CALLEES (delegated polling: PhaseBatch::run,
    Solver::solve, the portfolio drain path); loops inside named local
    lambdas are checked too.
"""

from __future__ import annotations

from typing import List, Set

from .. import config
from ..lexer import Token
from ..model import Finding, Stmt, TranslationUnit, walk_stmts
from .common import literal_int, parse_token_body

RULE_ID = 'poll-discipline'
CONTRACT = ('entry-point loop nests poll StopToken/ResourceBudget/fault '
            'gates (src/util/README.md cancellation & budget contracts)')


def _poll_markers(tu: TranslationUnit, fn_lambdas) -> Set[str]:
    markers = set(config.POLL_TOKENS)
    for name, body in fn_lambdas.items():
        if any(t.kind == 'id' and t.text in config.POLL_TOKENS for t in body):
            markers.add(name)
    # Same-TU helpers that poll (transitively one level, like obs-gate).
    for fn in tu.functions:
        if any(t.kind == 'id' and t.text in config.POLL_TOKENS
               for t in fn.body_tokens):
            markers.add(fn.name)
    return markers


def _nest_tokens(loop: Stmt) -> List[Token]:
    out: List[Token] = []
    for s in walk_stmts([loop]):
        out.extend(s.cond)
        out.extend(s.tokens)
    return out


def _polls(nest: List[Token], markers: Set[str]) -> bool:
    for i, t in enumerate(nest):
        if t.kind != 'id':
            continue
        if t.text in markers:
            return True
        # Delegated polling: a *call* to a contractually polling routine.
        if (t.text in config.POLLING_CALLEES and i + 1 < len(nest)
                and nest[i + 1].text == '('):
            return True
    return False


def _is_candidate(loop: Stmt) -> bool:
    """Iteration-scale loops only: infinite, or an iteration-budget bound."""
    cond = [t for t in loop.cond if t.text != ';']
    if not cond:
        return True  # for(;;)
    if len(cond) == 1 and cond[0].text in ('true', '1'):
        return True  # while (true)
    return any(t.kind == 'id' and config.ITER_BOUND_RE.search(t.text)
               for t in loop.cond)


def _bounded_trip(cond: List[Token]) -> bool:
    for i, t in enumerate(cond):
        if t.text in ('<', '<=') and i + 1 < len(cond):
            lit = literal_int(cond[i + 1].text) \
                if cond[i + 1].kind == 'num' else None
            if lit is not None and lit <= config.POLL_TRIP_THRESHOLD:
                return True
        # `i != K` countdown styles with a small literal.
        if t.text == '!=' and i + 1 < len(cond) and cond[i + 1].kind == 'num':
            lit = literal_int(cond[i + 1].text)
            if lit is not None and lit <= config.POLL_TRIP_THRESHOLD:
                return True
    return False


def _check_loops(stmts: List[Stmt], markers: Set[str], out: List[Stmt]) -> None:
    """Collect outermost non-compliant loops."""
    for s in stmts:
        if s.kind == 'loop':
            if _polls(_nest_tokens(s), markers):
                continue  # whole nest accepted
            if not _is_candidate(s) or _bounded_trip(s.cond):
                # data-bounded / literal-bounded outer loop: inner loops may
                # still be iteration-scale
                _check_loops(s.body, markers, out)
                continue
            out.append(s)
        else:
            _check_loops(s.body, markers, out)
            _check_loops(s.else_body, markers, out)


def check(tu: TranslationUnit) -> List[Finding]:
    findings: List[Finding] = []
    for fn in tu.functions:
        if not any(p.search(fn.qualified) for p in config.ENTRY_POINTS):
            continue
        markers = _poll_markers(tu, fn.lambda_bodies)
        bad: List[Stmt] = []
        _check_loops(fn.stmts, markers, bad)
        for lname, body in fn.lambda_bodies.items():
            _check_loops(parse_token_body(list(body)), markers, bad)
        for loop in bad:
            findings.append(Finding(
                rule=RULE_ID, file=tu.path, line=loop.line, col=0,
                function=fn.qualified,
                message=(f'{loop.loop_kind} loop in entry point '
                         f'{fn.qualified} has no StopToken/ResourceBudget/'
                         'fault poll anywhere in its nest and no literal '
                         f'trip bound <= {config.POLL_TRIP_THRESHOLD}; poll '
                         'stop_requested()/budget_breach() or bound the '
                         'loop (src/util/README.md)')))
    return findings
