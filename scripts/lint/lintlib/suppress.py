"""Per-line suppression comments.

Syntax (documented in scripts/lint/README.md):

    some_code();  // msropm-lint: allow(rule-id) reason text

suppresses findings of `rule-id` on that line.  On a line of its own the
suppression applies to the next non-blank, non-comment line:

    // msropm-lint: allow(hot-path-alloc) amortized by reserve in ctor
    scratch_.push_back(x);

A reason is mandatory; a suppression without one is ignored and reported as
a `lint-suppression` finding so it cannot silently rot.  `allow(*)` is
deliberately not supported — each suppressed rule is named.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .model import Finding

_SUPPRESS_RE = re.compile(
    r'//\s*msropm-lint:\s*allow\(([A-Za-z0-9_*,\- ]*)\)\s*(.*)$')


@dataclass
class Suppression:
    rules: Tuple[str, ...]
    reason: str
    line: int          # line the comment is on
    target_line: int   # line it applies to
    used: bool = False


@dataclass
class FileSuppressions:
    path: str
    # target line -> suppressions applying there
    by_line: Dict[int, List[Suppression]] = field(default_factory=dict)
    malformed: List[Finding] = field(default_factory=list)
    entries: List[Suppression] = field(default_factory=list)


def _is_comment_or_blank(line: str) -> bool:
    s = line.strip()
    return not s or s.startswith('//') or s.startswith('/*') or s.startswith('*')


def scan_file(path: str, lines: List[str]) -> FileSuppressions:
    fs = FileSuppressions(path=path)
    for idx, raw in enumerate(lines):
        m = _SUPPRESS_RE.search(raw)
        if not m:
            continue
        lineno = idx + 1
        rules = tuple(r.strip() for r in m.group(1).split(',') if r.strip())
        reason = m.group(2).strip()
        bad = None
        if not rules:
            bad = 'allow() names no rule'
        elif '*' in rules:
            bad = 'allow(*) is not supported; name each suppressed rule'
        elif not reason:
            bad = 'suppression has no reason; append one after allow(...)'
        if bad:
            fs.malformed.append(Finding(
                rule='lint-suppression', file=path, line=lineno,
                col=raw.find('//'), function='',
                message=f'malformed suppression: {bad}'))
            continue
        target = lineno
        if _is_comment_or_blank(raw.split('//', 1)[0]):
            # Standalone comment: applies to the next real line.
            j = idx + 1
            while j < len(lines) and _is_comment_or_blank(lines[j]):
                j += 1
            target = j + 1
        sup = Suppression(rules=rules, reason=reason, line=lineno,
                          target_line=target)
        fs.by_line.setdefault(target, []).append(sup)
        fs.entries.append(sup)
    return fs


def apply(findings: List[Finding], sup: Dict[str, FileSuppressions]) -> None:
    """Mark findings covered by a suppression; flips .suppressed in place."""
    for f in findings:
        fs = sup.get(f.file)
        if fs is None:
            continue
        for s in fs.by_line.get(f.line, []):
            if f.rule in s.rules:
                f.suppressed = True
                f.suppress_reason = s.reason
                s.used = True
                break


def unused(sup: Dict[str, FileSuppressions]) -> List[Finding]:
    """lint-suppression findings for suppressions that matched nothing —
    stale suppressions are how contract rot starts, so they fail the run."""
    out: List[Finding] = []
    for fs in sup.values():
        for s in fs.entries:
            if not s.used:
                out.append(Finding(
                    rule='lint-suppression', file=fs.path, line=s.line, col=0,
                    function='',
                    message=('unused suppression for '
                             f'{", ".join(s.rules)}: nothing to allow here '
                             '(remove it or fix the rule id)')))
        out.extend(fs.malformed)
    return out
