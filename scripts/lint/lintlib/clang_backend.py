"""libclang backend: precise function identification via clang.cindex.

msropm-lint's rule semantics live in token/region analysis shared with the
text backend (lintlib.textparse), so both backends report identical findings
on identical structure.  What libclang adds when present:

  * authoritative function-definition boundaries and fully qualified names
    (namespaces + classes, template specializations) from the AST, which
    replace the text backend's best-effort declarator recovery;
  * a hard parse of each TU with the project's real compile flags from
    compile_commands.json — a file that libclang cannot parse is reported
    instead of silently half-analyzed.

The backend degrades gracefully: when `clang.cindex` or the shared library
is unavailable, available() returns (False, reason) and the driver falls
back to the text backend (or exits 2 under --backend=clang).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .model import TranslationUnit
from .textparse import extract_functions

_IMPORT_ERROR: Optional[str] = None
try:
    from clang import cindex as _cindex  # type: ignore
except Exception as exc:  # pragma: no cover - exercised only with libclang
    _cindex = None
    _IMPORT_ERROR = f'python clang.cindex unavailable: {exc}'

_index = None


def available() -> Tuple[bool, str]:
    """(usable, reason-if-not).  Creating the Index is what actually loads
    libclang.so, so probe it here rather than at first parse."""
    global _index, _IMPORT_ERROR
    if _cindex is None:
        return False, _IMPORT_ERROR or 'clang.cindex not importable'
    if _index is not None:
        return True, ''
    try:  # pragma: no cover - exercised only with libclang
        _index = _cindex.Index.create()
        return True, ''
    except Exception as exc:  # pragma: no cover
        _IMPORT_ERROR = f'libclang shared library not loadable: {exc}'
        return False, _IMPORT_ERROR


_FUNCTION_KINDS = None


def _function_kinds():  # pragma: no cover - exercised only with libclang
    global _FUNCTION_KINDS
    if _FUNCTION_KINDS is None:
        ck = _cindex.CursorKind
        _FUNCTION_KINDS = {ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                           ck.DESTRUCTOR, ck.FUNCTION_TEMPLATE,
                           ck.CONVERSION_FUNCTION}
    return _FUNCTION_KINDS


def _qualified_name(cursor) -> str:  # pragma: no cover
    parts = [cursor.spelling or cursor.displayname]
    parent = cursor.semantic_parent
    ck = _cindex.CursorKind
    while parent is not None and parent.kind in (
            ck.NAMESPACE, ck.CLASS_DECL, ck.STRUCT_DECL, ck.CLASS_TEMPLATE):
        if parent.spelling:
            parts.append(parent.spelling)
        parent = parent.semantic_parent
    return '::'.join(reversed(parts))


def build(abs_path: str, rel_path: str, text: str,
          args: Optional[List[str]]) -> TranslationUnit:  # pragma: no cover
    """Parse with libclang; structure recovery stays shared with the text
    backend so rule behavior is backend-independent."""
    tu_model = extract_functions(rel_path, text)
    ok, _ = available()
    if not ok:
        return tu_model
    clang_args = [a for a in (args or [])
                  if not a.startswith(('-f', '-W', '-O', '-g', '-march'))]
    if not any(a.startswith('-std') for a in clang_args):
        clang_args.append('-std=c++20')
    try:
        ctu = _index.parse(abs_path, args=clang_args)
    except Exception:
        return tu_model
    by_line: Dict[int, str] = {}
    for cursor in ctu.cursor.walk_preorder():
        try:
            if cursor.kind not in _function_kinds():
                continue
            if not cursor.is_definition():
                continue
            loc = cursor.location
            if loc.file is None or loc.file.name != abs_path:
                continue
            by_line[loc.line] = _qualified_name(cursor)
        except ValueError:
            continue  # unknown cursor kind from a newer libclang
    for fn in tu_model.functions:
        for delta in (0, 1, -1, 2, -2):
            q = by_line.get(fn.line + delta)
            if q:
                fn.qualified = q
                break
    return tu_model
