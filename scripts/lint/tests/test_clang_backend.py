#!/usr/bin/env python3
"""Clang-backend test for msropm-lint.

Exits 77 (ctest SKIP_RETURN_CODE) when python clang.cindex / libclang is not
available on the host — the text backend remains the enforced gate there.
With libclang present, verifies that the clang backend produces the same
clean verdict on the repo tree as the text backend and resolves qualified
function names at least as precisely.
"""

import os
import subprocess
import sys
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_LINT = os.path.join(_HERE, '..', 'msropm_lint.py')
_REPO = os.path.abspath(os.path.join(_HERE, '..', '..', '..'))

sys.path.insert(0, os.path.join(_HERE, '..'))

SKIP_RC = 77


def _libclang_usable() -> bool:
    from lintlib import clang_backend
    ok, _ = clang_backend.available()
    return ok


class ClangBackendTest(unittest.TestCase):
    def test_clang_backend_matches_text_verdict(self):
        proc_clang = subprocess.run(
            [sys.executable, _LINT, '--root', _REPO, '--backend', 'clang',
             'src'], capture_output=True, text=True)
        proc_text = subprocess.run(
            [sys.executable, _LINT, '--root', _REPO, '--backend', 'text',
             'src'], capture_output=True, text=True)
        self.assertEqual(proc_clang.returncode, proc_text.returncode,
                         proc_clang.stdout + proc_clang.stderr)
        self.assertIn('backend=clang', proc_clang.stdout)


if __name__ == '__main__':
    if not _libclang_usable():
        print('SKIP: python clang.cindex / libclang not available; '
              'msropm-lint text backend remains the enforced gate')
        sys.exit(SKIP_RC)
    unittest.main()
