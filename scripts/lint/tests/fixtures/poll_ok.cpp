// Fixture: same loop as poll_bad.cpp but suppressed — must lint clean.
#include <cstddef>

namespace msropm {

int chromatic_search(std::size_t max_iterations) {
  int acc = 0;
  // msropm-lint: allow(poll-discipline) fixture: exercising the suppression syntax
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    acc += static_cast<int>(iter);
  }
  return acc;
}

}  // namespace msropm
