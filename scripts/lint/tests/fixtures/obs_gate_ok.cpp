// Fixture: same trigger as obs_gate_bad.cpp but suppressed — must lint clean.
#include <cstdint>

namespace msropm::obs {
std::uint32_t gate();
void add(std::uint64_t id, std::uint64_t delta);
}  // namespace msropm::obs

namespace msropm::sat {
namespace obs = msropm::obs;

void note_event_ungated(std::uint64_t id) {
  // msropm-lint: allow(obs-gate) fixture: exercising the suppression syntax
  obs::add(id, 1);
}

}  // namespace msropm::sat
