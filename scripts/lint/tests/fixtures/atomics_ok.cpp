// Fixture: same trigger as atomics_bad.cpp but suppressed — must lint clean.
#include <atomic>
#include <cstdint>

namespace msropm::obs {

std::atomic<std::uint32_t> g_cell{0};

std::uint32_t read_cell() {
  return g_cell.load();  // msropm-lint: allow(atomics-discipline) fixture: exercising the suppression syntax
}

}  // namespace msropm::obs
