// Fixture: same trigger as det_bad.cpp but suppressed — must lint clean.
#include <random>

namespace msropm {

int noisy_pick(int n) {
  // msropm-lint: allow(determinism) fixture: exercising the suppression syntax
  std::mt19937 engine(12345);
  return static_cast<int>(engine() % static_cast<unsigned>(n));
}

}  // namespace msropm
