// Fixture: triggers msropm-lint rule `atomics-discipline` and nothing else.
// Staged at src/obs/ — operations on contracted atomic cells must name
// their memory order explicitly.
#include <atomic>
#include <cstdint>

namespace msropm::obs {

std::atomic<std::uint32_t> g_cell{0};

std::uint32_t read_cell() {
  return g_cell.load();  // BAD: defaulted memory order (seq_cst)
}

std::uint32_t read_cell_relaxed() {
  return g_cell.load(std::memory_order_relaxed);  // fine: explicit order
}

}  // namespace msropm::obs
