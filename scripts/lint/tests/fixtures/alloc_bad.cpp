// Fixture: triggers msropm-lint rule `hot-path-alloc` and nothing else.
// Staged at src/sat/ — Solver::propagate is a configured hot function; the
// scratch vector has no reserve()/assign() anywhere in the file.
#include <vector>

namespace msropm::sat {

struct Solver {
  void propagate();
  std::vector<int> scratch_;
};

void Solver::propagate() {
  scratch_.push_back(1);  // BAD: unreserved growth on a hot path
}

}  // namespace msropm::sat
