// Fixture: triggers msropm-lint rule `determinism` and nothing else.
// Staged at src/solvers/ — result-producing code must draw randomness
// through util::Rng, never ambient engines.
#include <random>

namespace msropm {

int noisy_pick(int n) {
  std::mt19937 engine(12345);  // BAD: ambient engine instead of util::Rng
  return static_cast<int>(engine() % static_cast<unsigned>(n));
}

}  // namespace msropm
