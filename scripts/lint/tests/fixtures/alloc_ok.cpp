// Fixture: same trigger as alloc_bad.cpp but suppressed — must lint clean.
#include <vector>

namespace msropm::sat {

struct Solver {
  void propagate();
  std::vector<int> scratch_;
};

void Solver::propagate() {
  // msropm-lint: allow(hot-path-alloc) fixture: exercising the suppression syntax
  scratch_.push_back(1);
}

}  // namespace msropm::sat
