// Fixture: triggers msropm-lint rule `obs-gate` and nothing else.
// The self-test stages this file at src/sat/ inside a scratch tree.
#include <cstdint>

namespace msropm::obs {
std::uint32_t gate();
void add(std::uint64_t id, std::uint64_t delta);
}  // namespace msropm::obs

namespace msropm::sat {
namespace obs = msropm::obs;

void note_event_ungated(std::uint64_t id) {
  obs::add(id, 1);  // BAD: per-event call with no dominating gate check
}

void note_event_gated(std::uint64_t id) {
  if (obs::gate() != 0) obs::add(id, 1);  // fine: gate-dominated
}

}  // namespace msropm::sat
