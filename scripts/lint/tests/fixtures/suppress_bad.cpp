// Fixture: triggers the always-on `lint-suppression` pseudo-rule.
#include <cstdint>

namespace msropm::sat {

std::uint64_t twice(std::uint64_t x) {
  // msropm-lint: allow(obs-gate)
  return 2 * x;  // BAD above: suppression without a reason

  // msropm-lint: allow(hot-path-alloc) stale: nothing here allocates
}  // BAD above: suppression that matches no finding

}  // namespace msropm::sat
