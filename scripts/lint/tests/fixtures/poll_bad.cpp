// Fixture: triggers msropm-lint rule `poll-discipline` and nothing else.
// Staged at src/msropm/ — `chromatic_search` is a configured entry point and
// the loop header names an iteration budget, so the nest must poll.
#include <cstddef>

namespace msropm {

int chromatic_search(std::size_t max_iterations) {
  int acc = 0;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {  // BAD: no poll
    acc += static_cast<int>(iter);
  }
  return acc;
}

}  // namespace msropm
