#!/usr/bin/env python3
"""Self-test for msropm-lint (text backend).

Each rule has a bad fixture that must trigger exactly that rule and a
suppressed variant that must lint clean.  Fixtures live in fixtures/ and are
staged into a scratch tree under the repo-relative paths each rule's scope
expects (src/sat/, src/obs/, ...).  The final test runs the tool over the
real repository tree and requires a clean exit — the lint gate itself.

Run directly (python3 test_msropm_lint.py) or via ctest (msropm_lint_test).
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_LINT = os.path.join(_HERE, '..', 'msropm_lint.py')
_FIXTURES = os.path.join(_HERE, 'fixtures')
_REPO = os.path.abspath(os.path.join(_HERE, '..', '..', '..'))

# fixture file -> (staged repo-relative path, expected rule, expect findings)
_CASES = {
    'obs_gate_bad.cpp': ('src/sat/obs_gate_bad.cpp', 'obs-gate', True),
    'obs_gate_ok.cpp': ('src/sat/obs_gate_ok.cpp', 'obs-gate', False),
    'poll_bad.cpp': ('src/msropm/poll_bad.cpp', 'poll-discipline', True),
    'poll_ok.cpp': ('src/msropm/poll_ok.cpp', 'poll-discipline', False),
    'det_bad.cpp': ('src/solvers/det_bad.cpp', 'determinism', True),
    'det_ok.cpp': ('src/solvers/det_ok.cpp', 'determinism', False),
    'alloc_bad.cpp': ('src/sat/alloc_bad.cpp', 'hot-path-alloc', True),
    'alloc_ok.cpp': ('src/sat/alloc_ok.cpp', 'hot-path-alloc', False),
    'atomics_bad.cpp': ('src/obs/atomics_bad.cpp', 'atomics-discipline', True),
    'atomics_ok.cpp': ('src/obs/atomics_ok.cpp', 'atomics-discipline', False),
    'suppress_bad.cpp': ('src/sat/suppress_bad.cpp', 'lint-suppression', True),
}


def _run_lint(args, cwd=None):
    return subprocess.run([sys.executable, _LINT] + args, cwd=cwd,
                          capture_output=True, text=True)


class FixtureTest(unittest.TestCase):
    """Stage one fixture at a time so cross-fixture noise is impossible."""

    def _lint_one(self, fixture, staged_rel):
        tmp = tempfile.mkdtemp(prefix='msropm-lint-test-')
        self.addCleanup(shutil.rmtree, tmp, ignore_errors=True)
        dst = os.path.join(tmp, staged_rel)
        os.makedirs(os.path.dirname(dst))
        shutil.copy(os.path.join(_FIXTURES, fixture), dst)
        out = os.path.join(tmp, 'report.json')
        proc = _run_lint(['--root', tmp, '--backend', 'text',
                          '--json', out, 'src'])
        with open(out, encoding='utf-8') as fh:
            return proc, json.load(fh)

    def test_fixtures(self):
        for fixture, (staged, rule, expect_findings) in _CASES.items():
            with self.subTest(fixture=fixture):
                proc, doc = self._lint_one(fixture, staged)
                rules_found = {f['rule'] for f in doc['findings']}
                if expect_findings:
                    self.assertEqual(proc.returncode, 1, proc.stdout)
                    # exactly this rule fires, nothing else
                    self.assertEqual(rules_found, {rule}, proc.stdout)
                else:
                    self.assertEqual(proc.returncode, 0, proc.stdout)
                    self.assertEqual(rules_found, set(), proc.stdout)
                    # the suppressed finding is still visible in the report
                    self.assertEqual({s['rule'] for s in doc['suppressed']},
                                     {rule}, proc.stdout)

    def test_suppress_details(self):
        proc, doc = self._lint_one('suppress_bad.cpp',
                                   'src/sat/suppress_bad.cpp')
        self.assertEqual(proc.returncode, 1)
        messages = ' | '.join(f['message'] for f in doc['findings'])
        self.assertIn('no reason', messages)
        self.assertIn('unused suppression', messages)


class CliTest(unittest.TestCase):
    def test_list_rules(self):
        proc = _run_lint(['--list-rules'])
        self.assertEqual(proc.returncode, 0)
        for rule in ('obs-gate', 'poll-discipline', 'determinism',
                     'hot-path-alloc', 'atomics-discipline',
                     'lint-suppression'):
            self.assertIn(rule, proc.stdout)

    def test_unknown_rule_is_usage_error(self):
        proc = _run_lint(['--rules', 'no-such-rule', 'src'])
        self.assertEqual(proc.returncode, 2)

    def test_missing_path_is_usage_error(self):
        tmp = tempfile.mkdtemp(prefix='msropm-lint-empty-')
        self.addCleanup(shutil.rmtree, tmp, ignore_errors=True)
        proc = _run_lint(['--root', tmp, 'src'])
        self.assertEqual(proc.returncode, 2)

    def test_clang_backend_requested_without_libclang(self):
        try:
            import clang.cindex  # noqa: F401
            self.skipTest('libclang available; exit-2 path not reachable')
        except ImportError:
            pass
        proc = _run_lint(['--backend', 'clang', 'src'], cwd=_REPO)
        self.assertEqual(proc.returncode, 2)
        self.assertIn('clang backend unavailable', proc.stderr)


class TreeCleanTest(unittest.TestCase):
    """The lint gate: the repository's own sources must lint clean."""

    def test_repo_src_is_clean(self):
        proc = _run_lint(['--root', _REPO, 'src'])
        self.assertEqual(proc.returncode, 0,
                         f'repo tree has lint findings:\n{proc.stdout}')


if __name__ == '__main__':
    unittest.main()
