#!/usr/bin/env python3
"""Compare two bench_results trees and flag perf regressions.

Inputs are directories of util::BenchJsonWriter documents
({"bench": ..., "meta": {git_rev, timestamp, compiler, build_type, obs, ...},
"rows": [{"name": ..., <metric>: <number|string>}, ...]}). The baseline is
either a second directory or a committed copy inside a git revision
(--git REV reads REV:bench_results/<file> via `git show`).

For every bench file present in BOTH trees, rows are matched by name and each
shared numeric metric is printed with its delta. Metrics are gated by
direction:

  lower-better  (regression = new > base * (1 + threshold)):
      *_ms, *_ns, *_us, alloc_*, *_words, conflicts, propagations, decisions
  higher-better (regression = new < base * (1 - threshold)):
      speedup, vs_best_single, decided
  informational (never gated): everything else, e.g. counts that describe
      the workload rather than the implementation (clauses, instances,
      workers, reps).

Timing rows below --min-time-ms in BOTH trees are informational regardless of
direction: sub-millisecond wall times are noise-dominated.

A row present in the baseline but missing from the new tree is a hard failure
(a silently dropped benchmark is how regressions hide); new rows are reported
but fine. A bench file present in only one tree is a warning, not a failure,
so trees from different commits stay comparable.

Provenance meta is printed for both sides and mismatched compiler /
build_type / obs provoke a warning (the numbers are still compared: a
cross-compiler diff is often exactly what you want to see, it is just not a
clean regression signal).

Usage:
  bench_diff.py BASE_DIR NEW_DIR [--threshold 0.10] [--min-time-ms 1.0]
  bench_diff.py NEW_DIR --git [REV]      # baseline = REV's committed copy
                                         # (default REV: HEAD)

Exit codes: 0 = no gated regression, 1 = regression or missing row,
2 = usage or schema error.
"""

import argparse
import json
import os
import subprocess
import sys

LOWER_BETTER_SUFFIXES = ("_ms", "_ns", "_us", "_words")
LOWER_BETTER_PREFIXES = ("alloc_",)
LOWER_BETTER_EXACT = {"conflicts", "propagations", "decisions"}
HIGHER_BETTER = {"speedup", "vs_best_single", "decided"}


class SchemaError(Exception):
    pass


def is_timing(metric):
    """True for wall/phase timing metrics (ms units), including names like
    wall_ms_plain where the unit sits mid-name."""
    return metric.endswith("_ms") or "_ms_" in metric or metric.startswith("ms_")


def classify(metric):
    """Return 'lower', 'higher', or 'info' for a metric name."""
    if metric in HIGHER_BETTER:
        return "higher"
    if metric in LOWER_BETTER_EXACT:
        return "lower"
    if is_timing(metric) or metric.endswith(LOWER_BETTER_SUFFIXES):
        return "lower"
    if metric.startswith(LOWER_BETTER_PREFIXES):
        return "lower"
    return "info"


def load_doc(name, text):
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as ex:
        raise SchemaError(f"{name}: not valid JSON: {ex}")
    if not isinstance(doc, dict) or "rows" not in doc or "bench" not in doc:
        raise SchemaError(f"{name}: missing 'bench'/'rows' keys")
    rows = doc["rows"]
    if not isinstance(rows, list):
        raise SchemaError(f"{name}: 'rows' is not a list")
    by_name = {}
    for row in rows:
        if not isinstance(row, dict) or "name" not in row:
            raise SchemaError(f"{name}: row without a 'name'")
        by_name[row["name"]] = row
    return doc.get("meta", {}), by_name


def read_dir_tree(path):
    if not os.path.isdir(path):
        raise SchemaError(f"{path}: not a directory")
    tree = {}
    for fname in sorted(os.listdir(path)):
        if not fname.endswith(".json"):
            continue
        with open(os.path.join(path, fname), encoding="utf-8") as f:
            tree[fname] = load_doc(os.path.join(path, fname), f.read())
    if not tree:
        raise SchemaError(f"{path}: no *.json bench files")
    return tree


def read_git_tree(rev, rel_dir):
    try:
        listing = subprocess.run(
            ["git", "ls-tree", "--name-only", rev, rel_dir + "/"],
            capture_output=True, text=True, check=True).stdout.split()
    except (subprocess.CalledProcessError, OSError) as ex:
        raise SchemaError(f"git ls-tree {rev} failed: {ex}")
    tree = {}
    for path in listing:
        if not path.endswith(".json"):
            continue
        try:
            text = subprocess.run(["git", "show", f"{rev}:{path}"],
                                  capture_output=True, text=True,
                                  check=True).stdout
        except subprocess.CalledProcessError as ex:
            raise SchemaError(f"git show {rev}:{path} failed: {ex}")
        tree[os.path.basename(path)] = load_doc(f"{rev}:{path}", text)
    if not tree:
        raise SchemaError(f"{rev}:{rel_dir}: no committed *.json bench files")
    return tree


def fmt(v):
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("dirs", nargs="+",
                        help="BASE_DIR NEW_DIR, or NEW_DIR with --git")
    parser.add_argument("--git", nargs="?", const="HEAD", default=None,
                        metavar="REV",
                        help="compare against REV's committed copy of the "
                             "results dir (default HEAD)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative regression threshold (default 0.10)")
    parser.add_argument("--min-time-ms", type=float, default=1.0,
                        help="timing rows below this in both trees are "
                             "informational (default 1.0)")
    args = parser.parse_args()

    try:
        if args.git is not None:
            if len(args.dirs) != 1:
                print("bench_diff: --git takes exactly one directory",
                      file=sys.stderr)
                sys.exit(2)
            new_dir = args.dirs[0]
            rel = os.path.relpath(new_dir)
            base_tree = read_git_tree(args.git, rel)
            new_tree = read_dir_tree(new_dir)
            base_label, new_label = f"{args.git}:{rel}", new_dir
        else:
            if len(args.dirs) != 2:
                print("bench_diff: need BASE_DIR NEW_DIR (or --git REV)",
                      file=sys.stderr)
                sys.exit(2)
            base_tree = read_dir_tree(args.dirs[0])
            new_tree = read_dir_tree(args.dirs[1])
            base_label, new_label = args.dirs[0], args.dirs[1]
    except SchemaError as ex:
        print(f"bench_diff: schema error: {ex}", file=sys.stderr)
        sys.exit(2)

    regressions = []
    compared_files = 0
    for fname in sorted(set(base_tree) | set(new_tree)):
        if fname not in base_tree:
            print(f"[{fname}] only in {new_label} — skipped")
            continue
        if fname not in new_tree:
            print(f"[{fname}] only in {base_label} — skipped")
            continue
        compared_files += 1
        base_meta, base_rows = base_tree[fname]
        new_meta, new_rows = new_tree[fname]
        print(f"== {fname} ==")
        print(f"  base: rev={base_meta.get('git_rev', '?')} "
              f"{base_meta.get('timestamp', '?')} "
              f"{base_meta.get('compiler', '?')} "
              f"{base_meta.get('build_type', '?')} obs={base_meta.get('obs', '?')}")
        print(f"  new:  rev={new_meta.get('git_rev', '?')} "
              f"{new_meta.get('timestamp', '?')} "
              f"{new_meta.get('compiler', '?')} "
              f"{new_meta.get('build_type', '?')} obs={new_meta.get('obs', '?')}")
        for key in ("compiler", "build_type", "obs"):
            if base_meta.get(key) != new_meta.get(key):
                print(f"  warning: {key} differs "
                      f"({base_meta.get(key)} vs {new_meta.get(key)}) — "
                      "not a clean A/B")

        for row_name in sorted(set(base_rows) | set(new_rows)):
            if row_name not in base_rows:
                print(f"  + {row_name}: new row")
                continue
            if row_name not in new_rows:
                print(f"  ! {row_name}: MISSING from new tree")
                regressions.append(f"{fname}:{row_name} missing")
                continue
            base_row, new_row = base_rows[row_name], new_rows[row_name]
            for metric in sorted(set(base_row) & set(new_row) - {"name"}):
                bv, nv = base_row[metric], new_row[metric]
                if not isinstance(bv, (int, float)) or isinstance(bv, bool) \
                        or not isinstance(nv, (int, float)) or isinstance(nv, bool):
                    if bv != nv:
                        print(f"    {row_name}.{metric}: {bv} -> {nv}")
                    continue
                direction = classify(metric)
                below_floor = (is_timing(metric)
                               and bv < args.min_time_ms
                               and nv < args.min_time_ms)
                delta_pct = 0.0 if bv == 0 else 100.0 * (nv - bv) / bv
                verdict = ""
                if direction != "info" and not below_floor:
                    if direction == "lower" and nv > bv * (1.0 + args.threshold):
                        verdict = "  REGRESSION"
                    elif direction == "higher" and nv < bv * (1.0 - args.threshold):
                        verdict = "  REGRESSION"
                elif below_floor:
                    direction = "info"
                print(f"    {row_name}.{metric}: {fmt(bv)} -> {fmt(nv)} "
                      f"({delta_pct:+.1f}%, {direction}){verdict}")
                if verdict:
                    regressions.append(
                        f"{fname}:{row_name}.{metric} {fmt(bv)} -> {fmt(nv)}")

    if compared_files == 0:
        print("bench_diff: no bench file present in both trees",
              file=sys.stderr)
        sys.exit(2)
    if regressions:
        print(f"bench_diff: FAIL: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        sys.exit(1)
    print(f"bench_diff: OK: {compared_files} file(s), no gated metric "
          f"regressed beyond {args.threshold:.0%}")


if __name__ == "__main__":
    main()
