#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON produced by msropm::obs.

Checks, in order:
  1. The file parses as JSON and has the Chrome trace-event shape
     ({"traceEvents": [...]}).
  2. At least --min-workers lanes named worker-* exist (thread_name metadata),
     and every worker lane contains at least one attempt:* complete span.
  3. Within every lane, complete ("X") spans obey stack discipline: any two
     are either disjoint or properly nested. RAII spans recorded from one
     thread guarantee this; a violation means events leaked across lanes.
  4. At least one sat.* solver-phase span exists somewhere (the nested
     instrumentation actually fired inside an attempt).
  5. Counter ("C") events, when present, are well-formed: the name is
     "<lane>/<counter>" where <lane> matches the emitting tid's thread_name
     and <counter> is a known heartbeat track, args.value is numeric, and
     timestamps are monotone non-decreasing per (tid, name) track.

Instant markers (win:*/cancelled/timeout) are reported but not required:
whether a race produces cancellations depends on timing and worker count.
Counter events are likewise optional by default; pass --require-counters
to demand at least one, with every active worker lane publishing its own
track (use with --metrics runs where heartbeats are expected to fire).

Usage: check_trace.py TRACE.json [--min-workers N] [--require-counters]

Exit codes: 0 = valid, 1 = validation failure, 2 = usage/parse error.
"""

import argparse
import collections
import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


# Heartbeat counter tracks the exporter may emit (the part after "<lane>/").
KNOWN_COUNTERS = {
    "sat.hb.conflicts_per_sec",
    "sat.hb.decisions_per_sec",
    "sat.hb.props_per_conflict",
    "sat.hb.learnt_live",
    "sat.hb.arena_words",
    "sat.hb.restart_interval",
    "sat.hb.avg_recent_lbd",
    "portfolio.hb.queue_depth",
    "portfolio.hb.in_flight",
    "portfolio.hb.wins",
    "portfolio.hb.timeouts",
}


def spans_properly_nested(spans):
    """Return an offending pair if two spans partially overlap, else None.

    Timestamps are µs floats rounded to 3 decimals by the exporter; tolerate
    up to 2 ns of rounding slop when classifying overlap.
    """
    eps = 0.002  # µs
    ordered = sorted(spans, key=lambda e: (e["ts"], -e.get("dur", 0.0)))
    stack = []
    for ev in ordered:
        start, end = ev["ts"], ev["ts"] + ev.get("dur", 0.0)
        while stack and start >= stack[-1][1] - eps:
            stack.pop()
        if stack and end > stack[-1][1] + eps:
            return (ev, stack[-1][2])
        stack.append((start, end, ev))
    return None


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--min-workers", type=int, default=1,
                        help="minimum number of worker-* lanes required")
    parser.add_argument("--require-counters", action="store_true",
                        help="require >=1 counter event, and one per active "
                             "worker lane (for --metrics heartbeat runs)")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as ex:
        print(f"check_trace: cannot parse {args.trace}: {ex}", file=sys.stderr)
        sys.exit(2)

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("document is not a Chrome trace ({'traceEvents': [...]})")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents is empty")

    lane_names = {}
    by_tid = collections.defaultdict(list)
    counters = []
    for ev in events:
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "thread_name":
            lane_names[ev.get("tid")] = ev.get("args", {}).get("name", "")
        elif ph in ("X", "i"):
            by_tid[ev.get("tid")].append(ev)
        elif ph == "C":
            counters.append(ev)

    # A worker lane only counts when it actually recorded events: metadata
    # alone proves set_thread_lane ran, not that the worker did any work.
    workers = {tid: name for tid, name in lane_names.items()
               if name.startswith("worker-") and by_tid.get(tid)}
    if len(workers) < args.min_workers:
        fail(f"found {len(workers)} active worker-* lanes "
             f"({sorted(workers.values())}), need {args.min_workers} — "
             "is the workload too small to occupy every worker?")

    sat_spans = 0
    attempt_spans = 0
    markers = collections.Counter()
    for tid, lane_events in sorted(by_tid.items()):
        name = lane_names.get(tid, f"tid-{tid}")
        spans = [e for e in lane_events if e["ph"] == "X"]
        for ev in lane_events:
            if ev["ph"] == "i":
                markers[ev["name"].split(":")[0]] += 1
        lane_attempts = sum(1 for e in spans
                            if e["name"].startswith("attempt:"))
        lane_sat = sum(1 for e in spans if e["name"].startswith("sat."))
        sat_spans += lane_sat
        attempt_spans += lane_attempts
        if name.startswith("worker-") and lane_attempts == 0:
            fail(f"worker lane '{name}' has no attempt:* spans")
        bad = spans_properly_nested(spans)
        if bad is not None:
            a, b = bad
            fail(f"lane '{name}': spans '{a['name']}' (ts={a['ts']}) and "
                 f"'{b['name']}' (ts={b['ts']}) partially overlap — "
                 "not properly nested")

    if attempt_spans == 0:
        fail("no attempt:* spans anywhere in the trace")
    if sat_spans == 0:
        fail("no sat.* solver-phase spans — nested instrumentation missing")

    # Counter tracks: "<lane>/<counter>" per tid, numeric value, monotone ts.
    last_ts = {}
    counter_lanes = set()
    for ev in counters:
        tid, name, ts = ev.get("tid"), ev.get("name", ""), ev.get("ts")
        lane = lane_names.get(tid)
        if lane is None:
            fail(f"counter '{name}' on tid {tid} which has no thread_name")
        prefix, sep, base = name.partition("/")
        if not sep or prefix != lane:
            fail(f"counter '{name}' on lane '{lane}': name must be "
                 f"'{lane}/<counter>'")
        if base not in KNOWN_COUNTERS:
            fail(f"counter '{name}': unknown track '{base}'")
        value = ev.get("args", {}).get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            fail(f"counter '{name}' (ts={ts}): args.value is not numeric: "
                 f"{value!r}")
        if not isinstance(ts, (int, float)):
            fail(f"counter '{name}': missing/non-numeric ts")
        key = (tid, name)
        if key in last_ts and ts < last_ts[key]:
            fail(f"counter track '{name}' (tid {tid}): timestamp {ts} goes "
                 f"backwards (previous {last_ts[key]})")
        last_ts[key] = ts
        counter_lanes.add(tid)

    if args.require_counters:
        if not counters:
            fail("--require-counters: no counter ('C') events in the trace")
        silent = sorted(name for tid, name in workers.items()
                        if tid not in counter_lanes)
        if silent:
            fail(f"--require-counters: active worker lanes without counter "
                 f"events: {silent}")

    marker_report = ", ".join(f"{k}={v}" for k, v in sorted(markers.items())) \
        or "none"
    print(f"check_trace: OK: {len(by_tid)} lanes ({len(workers)} workers), "
          f"{attempt_spans} attempt spans, {sat_spans} sat.* spans, "
          f"{len(counters)} counter events on {len(last_ts)} tracks, "
          f"markers: {marker_report}")


if __name__ == "__main__":
    main()
