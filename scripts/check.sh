#!/usr/bin/env bash
# Tier-1 verification: configure + build + full ctest run.
# Exits nonzero on the first failure.
#
# Usage:
#   scripts/check.sh                # Release build into build/
#   MSROPM_SANITIZE=ON scripts/check.sh   # ASan/UBSan build into build-asan/
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${MSROPM_SANITIZE:-OFF}"
BUILD_DIR="build"
if [ "${SANITIZE}" = "ON" ]; then
  BUILD_DIR="build-asan"
fi

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "${BUILD_DIR}" -S . -DMSROPM_SANITIZE="${SANITIZE}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
