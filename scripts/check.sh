#!/usr/bin/env bash
# Tier-1 verification: configure + build + full ctest run.
# Exits nonzero on the first failure.
#
# Base usage:
#   scripts/check.sh                        # Release build into build/
#   MSROPM_SANITIZE=ON scripts/check.sh     # ASan/UBSan build into build-asan/
#   MSROPM_SANITIZE=thread scripts/check.sh # TSan build into build-tsan/
#
# Optional presets (each runs AFTER the normal build + ctest pass; combine
# freely, e.g. CHECK_LINT=1 CHECK_BENCH=1 scripts/check.sh):
#
#   Preset             What it adds
#   ----------------   ------------------------------------------------------
#   CHECK_ASAN=1       SAT arena/GC + preprocessor + batched phase-engine
#                      tests rebuilt and rerun under ASan/UBSan (build-asan/)
#   CHECK_TSAN=1       portfolio + stop-token + arena cancellation + batched
#                      runner equivalence tests under TSan (build-tsan/)
#   CHECK_CHAOS=1      chaos suite (randomized fault schedules, budgets,
#                      deadline edges) under ASan/UBSan; fault-injected CLI
#                      matrix (real exits, never a crash); the
#                      BM_FaultGateOverhead <= 8 ns gate
#   CHECK_OBS=1        instrumented 4-worker sweep with --trace --metrics;
#                      Chrome-trace validation (check_trace.py, jq);
#                      bench_portfolio as the obs-disabled overhead gate
#   CHECK_BENCH=1      bench_sat_arena / bench_portfolio / bench_chromatic /
#                      bench_phase_batch with their hard perf + equivalence
#                      gates; all drop bench_results/*.json
#   CHECK_BENCH_DIFF=1 reruns the four result-dropping benches, then diffs
#                      bench_results/ against the copy committed at HEAD
#                      (scripts/bench_diff.py, fails on >10% regression)
#   CHECK_LINT=1       msropm-lint over src/ (scripts/lint/: obs gating,
#                      poll discipline, determinism, hot-path allocation,
#                      atomics orders) — fails on any unsuppressed finding —
#                      plus the lint self-test suite
#   CHECK_TIDY=1       run-clang-tidy with the curated .clang-tidy profile
#                      over build/compile_commands.json (skips with a notice
#                      when clang-tidy is not installed)
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${MSROPM_SANITIZE:-OFF}"
BUILD_DIR="build"
case "${SANITIZE}" in
  OFF)        ;;
  ON|address) BUILD_DIR="build-asan" ;;
  thread)     BUILD_DIR="build-tsan" ;;
  *)
    echo "error: MSROPM_SANITIZE must be OFF, ON/address, or thread (got: ${SANITIZE})" >&2
    exit 2
    ;;
esac

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "${BUILD_DIR}" -S . -DMSROPM_SANITIZE="${SANITIZE}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# SAT clause-arena tests: GC relocation + learnt reduction + cancellation is
# exactly where a use-after-free would hide, so these run under ASan/UBSan on
# demand (the sanitizer presets also enable the solver's internal
# stale-reference checks via MSROPM_SAT_CHECK_INVARIANTS).
ARENA_TESTS='sat_arena_test|sat_arena_equivalence_test|sat_solver_growth_test|sat_preprocess_test|sat_preprocess_equivalence_test|sat_incremental_test|phase_batch_test|core_batch_equivalence_test'
if [ "${CHECK_ASAN:-0}" = "1" ] && [ "${SANITIZE}" = "OFF" ]; then
  cmake -B build-asan -S . -DMSROPM_SANITIZE=ON
  cmake --build build-asan -j "${JOBS}" --target \
    sat_arena_test sat_arena_equivalence_test sat_solver_growth_test \
    sat_preprocess_test sat_preprocess_equivalence_test sat_incremental_test \
    phase_batch_test core_batch_equivalence_test
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
    -R "^(${ARENA_TESTS})\$"
fi

# Optional TSan pass over the concurrency-sensitive tests (worker pool,
# cooperative cancellation, stop-token plumbing) plus the arena tests:
# portfolio cancellation can fire mid-GC, which is where a race between the
# stop flag and clause relocation would surface.
if [ "${CHECK_TSAN:-0}" = "1" ] && [ "${SANITIZE}" != "thread" ]; then
  cmake -B build-tsan -S . -DMSROPM_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}" --target \
    portfolio_test portfolio_cancel_test util_stop_token_test \
    sat_arena_test sat_arena_equivalence_test sat_solver_growth_test \
    sat_incremental_test obs_test core_batch_equivalence_test \
    chaos_test util_fault_injector_test
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
    -R "^(portfolio_test|portfolio_cancel_test|util_stop_token_test|sat_arena_test|sat_arena_equivalence_test|sat_solver_growth_test|sat_incremental_test|obs_test|core_batch_equivalence_test|chaos_test|util_fault_injector_test)\$"
fi

# Chaos preset: the randomized fault-schedule suite is exactly where a
# mid-unwind use-after-free or leaked allocation would hide, so it runs
# under ASan/UBSan; a fixed seed matrix of fault-injected CLI runs checks
# the end-to-end behavior (real exit codes, diagnostics on stderr, never a
# crash); and BM_FaultGateOverhead enforces that the disarmed injector costs
# <= 8 ns per fault point.
if [ "${CHECK_CHAOS:-0}" = "1" ] && [ "${SANITIZE}" = "OFF" ]; then
  cmake -B build-asan -S . -DMSROPM_SANITIZE=ON
  cmake --build build-asan -j "${JOBS}" --target \
    chaos_test util_fault_injector_test graph_io_test dimacs_solver
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
    -R "^(chaos_test|util_fault_injector_test|graph_io_test)\$"
  # Fixed seed matrix through the CLI: exit 10/20/0 are legitimate verdicts
  # under chaos, 2 is a usage error we did not make, 3 would mean an escaped
  # exception, anything else (e.g. 139) a crash.
  python3 - <<'EOF'
import subprocess, sys, tempfile, os
specs = ["alloc:1", "propagate:1:3", "analyze:2", "gc:1", "pre:1",
         "all@0.05,seed=7", "all@0.2,seed=11", "stall:1,stall-ms=1"]
# 3x3 King's graph in DIMACS .col form (4-colorable; K=3 is UNSAT).
edges = [(u, v) for u in range(9) for v in range(u + 1, 9)
         if abs(u % 3 - v % 3) <= 1 and abs(u // 3 - v // 3) <= 1]
body = f"p edge 9 {len(edges)}\n" + "".join(f"e {u+1} {v+1}\n" for u, v in edges)
path = os.path.join(tempfile.mkdtemp(), "kings3.col")
with open(path, "w") as f:
    f.write(body)
for spec in specs:
    # Colors must be a power of two for the machine plan; 4 is SAT on the
    # 3x3 King's graph, 2 is UNSAT — both legitimate verdict exits.
    for args in (["4", "10", "1", "--sat"], ["2", "5", "1", "--sat", "--chromatic"]):
        cmd = ["./build-asan/dimacs_solver", path] + args + ["--fault-spec", spec]
        r = subprocess.run(cmd, capture_output=True)
        if r.returncode not in (0, 10, 20):
            sys.stderr.write(f"chaos CLI matrix: {' '.join(cmd)} exited "
                             f"{r.returncode}\n{r.stderr.decode()}\n")
            sys.exit(1)
print(f"chaos CLI matrix: {2*len(specs)} fault-injected runs, all clean exits")
EOF
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_micro_perf
  "./${BUILD_DIR}/bench_micro_perf" \
    --benchmark_filter='BM_FaultGateOverhead' --benchmark_min_time=0.05
fi

# Observability end-to-end: an instrumented 4-worker sweep must emit a valid
# Chrome trace (one lane per worker, attempt spans wrapping nested sat.*
# solver-phase spans, stack discipline within every lane — validated by
# scripts/check_trace.py), and bench_portfolio doubles as the overhead gate
# for obs-compiled-but-disabled (plus the hard verdict/speedup gates it
# always enforces).
if [ "${CHECK_OBS:-0}" = "1" ] && [ "${SANITIZE}" = "OFF" ]; then
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target \
    portfolio_sweep bench_portfolio
  # The grid has to be heavy enough that all four workers pick up attempts
  # before the cursor drains — tiny grids finish inside worker-0's first
  # drain and leave the other lanes empty.
  "./${BUILD_DIR}/portfolio_sweep" --jobs 4 --kings 20,26,30,36,40,46 \
    --kings-unsat 10,12,14 --schedule instance \
    --trace "${BUILD_DIR}/obs_trace.json" --metrics
  # --require-counters: with --metrics on, every active worker lane must
  # publish heartbeat counter tracks alongside its spans.
  python3 scripts/check_trace.py "${BUILD_DIR}/obs_trace.json" \
    --min-workers 4 --require-counters
  # jq is a second, independent parser: a trace Python accepts but jq rejects
  # would still break downstream tooling.
  if command -v jq >/dev/null 2>&1; then
    jq -e '.traceEvents | length > 0' "${BUILD_DIR}/obs_trace.json" >/dev/null
  fi
  "./${BUILD_DIR}/bench_portfolio"
fi

# Perf-regression gates: bench_sat_arena exits nonzero when construction
# allocations scale with the clause count (or search allocations with the
# learnt count); bench_portfolio exits nonzero on any verdict mismatch
# across worker counts or when the portfolio is slower than the best single
# complete strategy; bench_chromatic exits nonzero when the incremental
# chromatic sweep disagrees with the from-scratch baseline or is slower
# than it beyond a 10% noise margin; bench_phase_batch exits nonzero when
# the batched phase engine loses to the embedded pre-refactor engine at
# batch size 1 or misses 2x serial throughput at batch size 40 on every
# fabric. All emit bench_results/*.json so the numbers are tracked, not
# just the pass/fail bit.
if [ "${CHECK_BENCH:-0}" = "1" ] && [ "${SANITIZE}" = "OFF" ]; then
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target \
    bench_sat_arena bench_portfolio bench_chromatic bench_phase_batch
  "./${BUILD_DIR}/bench_sat_arena"
  "./${BUILD_DIR}/bench_portfolio"
  "./${BUILD_DIR}/bench_chromatic"
  "./${BUILD_DIR}/bench_phase_batch"
fi

# Bench regression diff: rerun the result-dropping benches (refreshing the
# working-tree bench_results/), then compare row-by-row against the copy
# committed at HEAD. bench_diff.py exits 1 when a gated metric (timings,
# allocation words, speedups, decided counts) regresses beyond 10%, and on
# any benchmark row that silently disappeared.
if [ "${CHECK_BENCH_DIFF:-0}" = "1" ] && [ "${SANITIZE}" = "OFF" ]; then
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target \
    bench_sat_arena bench_portfolio bench_chromatic bench_phase_batch
  "./${BUILD_DIR}/bench_sat_arena"
  "./${BUILD_DIR}/bench_portfolio"
  "./${BUILD_DIR}/bench_chromatic"
  "./${BUILD_DIR}/bench_phase_batch"
  python3 scripts/bench_diff.py --git HEAD bench_results --threshold 0.10
fi

# Project-contract lint gate: msropm-lint enforces the cross-cutting
# contracts generic tools can't see (obs gate domination, cooperative
# cancellation polls, determinism, hot-path allocation discipline, explicit
# atomic orders — see scripts/lint/README.md). The self-test suite runs
# first so a broken rule never silently passes the tree.
if [ "${CHECK_LINT:-0}" = "1" ]; then
  python3 scripts/lint/tests/test_msropm_lint.py
  python3 scripts/lint/msropm_lint.py src
fi

# Generic static analysis: curated .clang-tidy profile (bugprone, analyzer,
# performance, concurrency) over the compilation database the main configure
# step just exported. Advisory tooling availability: hosts without
# clang-tidy skip with a notice instead of failing the check.
if [ "${CHECK_TIDY:-0}" = "1" ]; then
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${BUILD_DIR}" -quiet "src/.*\.cpp$"
  elif command -v clang-tidy >/dev/null 2>&1; then
    find src -name '*.cpp' -print0 |
      xargs -0 clang-tidy -p "${BUILD_DIR}" --quiet
  else
    echo "CHECK_TIDY=1: clang-tidy not installed; skipping (msropm-lint" \
         "remains the enforced gate — CHECK_LINT=1)"
  fi
fi
