#!/usr/bin/env bash
# Tier-1 verification: configure + build + full ctest run.
# Exits nonzero on the first failure.
#
# Usage:
#   scripts/check.sh                        # Release build into build/
#   MSROPM_SANITIZE=ON scripts/check.sh     # ASan/UBSan build into build-asan/
#   MSROPM_SANITIZE=thread scripts/check.sh # TSan build into build-tsan/
#   CHECK_TSAN=1 scripts/check.sh           # normal run, then additionally
#                                           # build build-tsan/ and run the
#                                           # portfolio + stop-token tests
#                                           # under ThreadSanitizer
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${MSROPM_SANITIZE:-OFF}"
BUILD_DIR="build"
case "${SANITIZE}" in
  OFF)        ;;
  ON|address) BUILD_DIR="build-asan" ;;
  thread)     BUILD_DIR="build-tsan" ;;
  *)
    echo "error: MSROPM_SANITIZE must be OFF, ON/address, or thread (got: ${SANITIZE})" >&2
    exit 2
    ;;
esac

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "${BUILD_DIR}" -S . -DMSROPM_SANITIZE="${SANITIZE}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# Optional TSan pass over the concurrency-sensitive tests (worker pool,
# cooperative cancellation, stop-token plumbing).
if [ "${CHECK_TSAN:-0}" = "1" ] && [ "${SANITIZE}" != "thread" ]; then
  cmake -B build-tsan -S . -DMSROPM_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}" \
    --target portfolio_test portfolio_cancel_test util_stop_token_test
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
    -R '^(portfolio_test|portfolio_cancel_test|util_stop_token_test)$'
fi
