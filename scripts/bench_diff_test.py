#!/usr/bin/env python3
"""Unit tests for bench_diff.py: synthetic two-tree fixtures covering the
improvement / regression / below-floor / missing-row / schema-mismatch
paths, invoked as a subprocess so the exit codes under test are the real
contract (scripts/check.sh consumes them, not the internals).

Run directly (python3 scripts/bench_diff_test.py) or via ctest
(bench_diff_py_test).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_diff.py")


def make_tree(root, name, rows, meta=None, fname="bench_x.json", text=None):
    os.makedirs(root, exist_ok=True)
    path = os.path.join(root, fname)
    if text is not None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return
    doc = {
        "bench": name,
        "meta": meta or {"git_rev": "abc", "timestamp": "t",
                         "compiler": "gcc", "build_type": "Release",
                         "obs": "on"},
        "rows": rows,
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)


def run_diff(base, new, *extra):
    return subprocess.run(
        [sys.executable, SCRIPT, base, new, *extra],
        capture_output=True, text=True)


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.base = os.path.join(self.tmp.name, "base")
        self.new = os.path.join(self.tmp.name, "new")

    def tearDown(self):
        self.tmp.cleanup()

    def test_identical_trees_pass(self):
        rows = [{"name": "r", "wall_ms": 100.0, "decided": 5}]
        make_tree(self.base, "b", rows)
        make_tree(self.new, "b", rows)
        result = run_diff(self.base, self.new)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("bench_diff: OK", result.stdout)

    def test_improvement_passes(self):
        make_tree(self.base, "b", [{"name": "r", "wall_ms": 100.0}])
        make_tree(self.new, "b", [{"name": "r", "wall_ms": 50.0}])
        result = run_diff(self.base, self.new)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("-50.0%", result.stdout)

    def test_timing_regression_fails(self):
        make_tree(self.base, "b", [{"name": "r", "wall_ms": 100.0}])
        make_tree(self.new, "b", [{"name": "r", "wall_ms": 120.0}])
        result = run_diff(self.base, self.new, "--threshold", "0.10")
        self.assertEqual(result.returncode, 1)
        self.assertIn("REGRESSION", result.stdout)
        self.assertIn("regression(s)", result.stderr)

    def test_regression_within_threshold_passes(self):
        make_tree(self.base, "b", [{"name": "r", "wall_ms": 100.0}])
        make_tree(self.new, "b", [{"name": "r", "wall_ms": 108.0}])
        result = run_diff(self.base, self.new, "--threshold", "0.10")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_higher_better_regression_fails(self):
        make_tree(self.base, "b", [{"name": "r", "speedup": 2.0}])
        make_tree(self.new, "b", [{"name": "r", "speedup": 1.5}])
        result = run_diff(self.base, self.new)
        self.assertEqual(result.returncode, 1)

    def test_below_floor_timing_is_informational(self):
        # 0.1 ms -> 0.5 ms is 5x but both sit under the 1 ms noise floor.
        make_tree(self.base, "b", [{"name": "r", "wall_ms": 0.1}])
        make_tree(self.new, "b", [{"name": "r", "wall_ms": 0.5}])
        result = run_diff(self.base, self.new)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_missing_row_fails(self):
        make_tree(self.base, "b", [{"name": "kept", "wall_ms": 1.0},
                                   {"name": "dropped", "wall_ms": 1.0}])
        make_tree(self.new, "b", [{"name": "kept", "wall_ms": 1.0}])
        result = run_diff(self.base, self.new)
        self.assertEqual(result.returncode, 1)
        self.assertIn("MISSING", result.stdout)

    def test_new_row_passes(self):
        make_tree(self.base, "b", [{"name": "r", "wall_ms": 1.0}])
        make_tree(self.new, "b", [{"name": "r", "wall_ms": 1.0},
                                  {"name": "added", "wall_ms": 9.0}])
        result = run_diff(self.base, self.new)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("new row", result.stdout)

    def test_invalid_json_is_schema_error(self):
        make_tree(self.base, "b", [{"name": "r", "wall_ms": 1.0}])
        make_tree(self.new, "b", [], text="{not json")
        result = run_diff(self.base, self.new)
        self.assertEqual(result.returncode, 2)
        self.assertIn("schema error", result.stderr)

    def test_missing_rows_key_is_schema_error(self):
        make_tree(self.base, "b", [{"name": "r", "wall_ms": 1.0}])
        make_tree(self.new, "b", [], text='{"bench": "b"}')
        result = run_diff(self.base, self.new)
        self.assertEqual(result.returncode, 2)

    def test_meta_mismatch_warns_but_compares(self):
        make_tree(self.base, "b", [{"name": "r", "wall_ms": 1.0}],
                  meta={"compiler": "gcc", "build_type": "Release", "obs": "on"})
        make_tree(self.new, "b", [{"name": "r", "wall_ms": 1.0}],
                  meta={"compiler": "clang", "build_type": "Release", "obs": "on"})
        result = run_diff(self.base, self.new)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("warning: compiler differs", result.stdout)

    def test_disjoint_trees_is_usage_error(self):
        make_tree(self.base, "a", [{"name": "r"}], fname="only_a.json")
        make_tree(self.new, "b", [{"name": "r"}], fname="only_b.json")
        result = run_diff(self.base, self.new)
        self.assertEqual(result.returncode, 2)

    def test_non_numeric_metrics_never_gate(self):
        make_tree(self.base, "b", [{"name": "r", "best_single": "cdcl"}])
        make_tree(self.new, "b", [{"name": "r", "best_single": "dsatur"}])
        result = run_diff(self.base, self.new)
        self.assertEqual(result.returncode, 0, result.stderr)


if __name__ == "__main__":
    unittest.main()
