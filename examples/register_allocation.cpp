// Register allocation via interference-graph coloring -- the classic
// compiler/EDA instance of the COP the paper targets. Virtual registers
// (live ranges) are nodes; two ranges that are live simultaneously
// interfere and get an edge; a K-coloring is an assignment to K physical
// registers. Chaitin's classical formulation is exactly K-coloring, which
// the MSROPM solves natively with one multivalued spin per live range.
//
// The example synthesizes a basic-block trace with a seeded RNG, builds the
// interference graph from live-range overlaps, colors it with K = 4
// registers on the machine, and reports spill-free feasibility against the
// SAT exact answer.
//
// Run: ./build/examples/register_allocation [ranges=48] [seed=9]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "msropm/analysis/experiments.hpp"
#include "msropm/core/machine.hpp"
#include "msropm/core/runner.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"
#include "msropm/sat/coloring_encoder.hpp"
#include "msropm/solvers/dsatur.hpp"
#include "msropm/util/rng.hpp"

namespace {

struct LiveRange {
  std::size_t def = 0;   // first instruction index
  std::size_t kill = 0;  // last use (exclusive)
};

/// Synthetic basic-block trace: live ranges with bounded lifetime and at
/// most K simultaneously live (so a 4-register allocation exists).
std::vector<LiveRange> make_trace(std::size_t num_ranges, unsigned k,
                                  msropm::util::Rng& rng) {
  std::vector<LiveRange> ranges;
  std::vector<std::size_t> active_until;  // kill point per occupied register
  std::size_t t = 0;
  while (ranges.size() < num_ranges) {
    ++t;
    std::erase_if(active_until, [t](std::size_t kill) { return kill <= t; });
    if (active_until.size() < k && rng.uniform(0.0, 1.0) < 0.6) {
      const std::size_t len = 2 + rng.uniform_index(12);
      ranges.push_back({t, t + len});
      active_until.push_back(t + len);
    }
  }
  return ranges;
}

/// Fix-up pass (the "select" stage compilers run after an optimistic
/// allocation): min-conflicts descent on the conflicting ranges. Each step
/// recolors one endpoint of a conflicting edge to the color with the fewest
/// neighbor clashes; a couple of residual conflicts from the probabilistic
/// solver are resolved in a handful of steps.
std::size_t repair(const msropm::graph::Graph& g,
                   msropm::graph::Coloring& colors, unsigned k,
                   msropm::util::Rng& rng) {
  for (std::size_t step = 0; step < 64 * g.num_nodes(); ++step) {
    const auto bad = msropm::graph::conflicting_edges(g, colors);
    if (bad.empty()) break;
    const auto& e = g.edges()[bad[rng.uniform_index(bad.size())]];
    const auto v = rng.uniform_index(2) == 0 ? e.u : e.v;
    std::vector<unsigned> clashes(k, 0);
    for (const auto nb : g.neighbors(v)) ++clashes[colors[nb] % k];
    // Uniform choice among minimal-clash colors (plateau randomization
    // keeps the descent from cycling between two saturated ranges).
    unsigned min_clash = clashes[0];
    for (unsigned c = 1; c < k; ++c) min_clash = std::min(min_clash, clashes[c]);
    std::vector<unsigned> argmin;
    for (unsigned c = 0; c < k; ++c) {
      if (clashes[c] == min_clash) argmin.push_back(c);
    }
    colors[v] = static_cast<msropm::graph::Color>(
        argmin[rng.uniform_index(argmin.size())]);
  }
  return msropm::graph::count_conflicts(g, colors);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msropm;

  const std::size_t num_ranges =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 48;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 9;

  util::Rng rng(seed);
  const auto trace = make_trace(num_ranges, 4, rng);

  // Interference graph: overlapping live ranges conflict.
  graph::GraphBuilder builder(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    for (std::size_t j = i + 1; j < trace.size(); ++j) {
      const bool overlap =
          trace[i].def < trace[j].kill && trace[j].def < trace[i].kill;
      if (overlap) {
        builder.add_edge(static_cast<graph::NodeId>(i),
                         static_cast<graph::NodeId>(j));
      }
    }
  }
  const graph::Graph g = builder.build();
  std::printf("interference graph: %zu live ranges, %zu conflicts, max "
              "degree %zu\n",
              g.num_nodes(), g.num_edges(), g.max_degree());

  // Exact feasibility: interval-overlap graphs with clique number <= 4 are
  // 4-colorable; the SAT baseline confirms.
  const auto exact = sat::solve_exact_coloring(g, 4);
  std::printf("SAT: spill-free 4-register allocation %s\n",
              exact ? "exists" : "does NOT exist");

  const core::MultiStagePottsMachine machine(
      g, analysis::default_machine_config());
  core::RunnerOptions opts;
  opts.iterations = 40;
  opts.seed = seed;
  const auto summary = core::run_iterations(machine, opts);
  graph::Coloring best = summary.best_coloring();
  std::printf("MSROPM: accuracy best %.3f mean %.3f (%zu raw conflicts)\n",
              summary.best_accuracy, summary.mean_accuracy,
              graph::count_conflicts(g, best));
  const auto conflicts = repair(g, best, 4, rng);
  std::printf("after select/fix-up pass: %zu conflicts (%s)\n", conflicts,
              conflicts == 0 ? "spill-free" : "would need spills");

  const auto greedy = solvers::solve_dsatur(g);
  std::printf("DSATUR (compiler heuristic): %u registers\n",
              greedy.colors_used);

  if (conflicts == 0) {
    std::printf("\nallocation (first 16 ranges):\n");
    const char* regs[4] = {"r0", "r1", "r2", "r3"};
    for (std::size_t i = 0; i < std::min<std::size_t>(16, trace.size()); ++i) {
      std::printf("  v%-3zu [%3zu, %3zu) -> %s\n", i, trace[i].def,
                  trace[i].kill, regs[best[i]]);
    }
  }
  return conflicts == 0 ? 0 : 1;
}
