// DIMACS coloring CLI: read a standard DIMACS .col graph, 4-color it on the
// MSROPM, and compare against the DSATUR greedy and (optionally) the SAT
// exact baseline. This is the tool a downstream user points at their own
// instances.
//
// Usage:
//   dimacs_solver <graph.col> [colors=4] [iterations=40] [seed=1] [--sat]
//                 [--chromatic] [--preprocess] [--no-preprocess]
//                 [--trace FILE] [--metrics] [--metrics-json FILE]
//                 [--metrics-prom FILE] [--fault-spec SPEC]
//
// --trace records msropm::obs spans (solver phases, preprocessing passes,
// incremental rounds) and writes a Chrome trace-event JSON on exit; --metrics
// enables the obs registry and prints the merged counter/timer report — the
// sat.* counters there match the SolverStats tables below it one-for-one.
// --metrics-json / --metrics-prom additionally export the SAME snapshot as a
// JSON document / Prometheus text format (both imply --metrics). All of the
// observability outputs are emitted on EVERY exit path once the flags parsed
// — including input errors, kUnknown verdicts, and cancellations — so an
// instrumented run never silently loses its data. Repeating any of these
// flags is allowed: the last value wins (with a warning).
//
// --sat runs the exact CDCL baseline; by default it presimplifies the CNF
// through msropm::sat::Preprocessor and prints the preprocessing and search
// statistics as a table (copy-pasteable into bench notes). --no-preprocess
// solves the raw encoding instead.
//
// --chromatic runs the incremental assumption-based chromatic search
// (sat::chromatic_search) with max_k = the requested color count: one
// multi-shot solver sweeps K from the clique lower bound reusing learnt
// clauses between rounds, and the exit code reflects whether the chromatic
// number fits the palette.
//
// --fault-spec installs a util::FaultInjector schedule (grammar in
// src/util/include/msropm/util/fault_injector.hpp) for chaos drills; the
// MSROPM_FAULT environment variable does the same without touching the
// command line.
//
// Exit codes follow the DIMACS solver convention so scripted sweeps can trust
// the status: 10 = a proper K-coloring exists (found by any engine), 20 = no
// K-coloring exists (proved by the --sat CDCL baseline), 0 = unknown (no
// proper coloring found and no proof). Usage/input errors exit 2; an escaped
// exception (including std::bad_alloc) exits 3 with a diagnostic, so a
// scripted sweep can tell "crashed" from "unknown".

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <new>
#include <string>

#include "msropm/analysis/experiments.hpp"
#include "msropm/core/machine.hpp"
#include "msropm/obs/obs.hpp"
#include "msropm/core/runner.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/graph/io.hpp"
#include "msropm/sat/coloring_encoder.hpp"
#include "msropm/sat/incremental_coloring.hpp"
#include "msropm/solvers/dsatur.hpp"
#include "msropm/util/fault_injector.hpp"
#include "msropm/util/table.hpp"

namespace {

void print_sat_stats(const msropm::sat::ExactColoringOutcome& outcome) {
  using msropm::util::TextTable;
  if (const auto& pre = outcome.preprocess_stats) {
    TextTable table({"preprocess", "vars", "clauses", "literals"});
    table.add_row({"original", std::to_string(pre->original_vars),
                   std::to_string(pre->original_clauses),
                   std::to_string(pre->original_literals)});
    table.add_row({"simplified", std::to_string(pre->simplified_vars),
                   std::to_string(pre->simplified_clauses),
                   std::to_string(pre->simplified_literals)});
    std::printf("%s", table.render().c_str());
    TextTable detail({"technique", "removed"});
    detail.add_row({"unit_fixed", std::to_string(pre->unit_fixed)});
    detail.add_row({"pure_fixed", std::to_string(pre->pure_fixed)});
    detail.add_row({"tautologies", std::to_string(pre->tautologies)});
    detail.add_row({"duplicates", std::to_string(pre->duplicate_clauses)});
    detail.add_row({"subsumed", std::to_string(pre->subsumed)});
    detail.add_row({"strengthened", std::to_string(pre->strengthened)});
    detail.add_row({"blocked", std::to_string(pre->blocked)});
    detail.add_row({"bve_eliminated", std::to_string(pre->eliminated_vars)});
    std::printf("%s", detail.render().c_str());
    std::printf("preprocess: %.1f%% of clauses removed in %zu rounds, %.4f s\n",
                100.0 * pre->clause_reduction(), pre->rounds, pre->seconds);
  }
  const auto& s = outcome.solver_stats;
  TextTable search({"search", "decisions", "propagations", "conflicts",
                    "restarts", "learnts"});
  search.add_row({"cdcl", std::to_string(s.decisions),
                  std::to_string(s.propagations), std::to_string(s.conflicts),
                  std::to_string(s.restarts), std::to_string(s.learnt_clauses)});
  std::printf("%s", search.render().c_str());
  // Hot-path counters of the watcher/heap design: how often a satisfied
  // blocker skipped the clause dereference, how many propagations came from
  // implicit binaries (no arena traffic at all), and how many decisions the
  // VSIDS order heap served (0 on conflict-free runs — the heap only
  // engages once conflict analysis starts bumping activities).
  TextTable hot({"hot_path", "blocker_skips", "binary_propagations",
                 "heap_decisions"});
  hot.add_row({"cdcl", std::to_string(s.blocker_skips),
               std::to_string(s.binary_propagations),
               std::to_string(s.heap_decisions)});
  std::printf("%s", hot.render().c_str());
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file << content;
  return static_cast<bool>(file.flush());
}

int run_solver_cli(int argc, char** argv) {
  using namespace msropm;

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <graph.col> [colors=4] [iterations=40] [seed=1] "
                 "[--sat] [--chromatic] [--preprocess] [--no-preprocess] "
                 "[--trace FILE] [--metrics] [--metrics-json FILE] "
                 "[--metrics-prom FILE] [--fault-spec SPEC]\n",
                 argv[0]);
    return 2;
  }
  if (!util::fault::configure_from_env()) {
    std::fprintf(stderr, "error: malformed MSROPM_FAULT spec\n");
    return 2;
  }
  const std::string path = argv[1];
  unsigned colors = 4;
  std::size_t iterations = 40;
  std::uint64_t seed = 1;
  bool run_sat = false;
  bool run_chromatic = false;
  bool preprocess = true;
  bool metrics = false;
  std::string trace_path;
  std::string metrics_json_path;
  std::string metrics_prom_path;
  // Repeated observability flags are idempotent: the last value wins, with
  // one warning per flag.
  int seen_metrics = 0, seen_trace = 0, seen_json = 0, seen_prom = 0;
  const auto note_repeat = [](const char* flag, int& seen) {
    if (++seen == 2) {
      std::fprintf(stderr, "warning: %s given more than once; last value wins\n",
                   flag);
    }
  };
  int positional = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sat") == 0) {
      run_sat = true;
    } else if (std::strcmp(argv[i], "--chromatic") == 0) {
      run_chromatic = true;
    } else if (std::strcmp(argv[i], "--preprocess") == 0) {
      preprocess = true;
    } else if (std::strcmp(argv[i], "--no-preprocess") == 0) {
      preprocess = false;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      note_repeat("--metrics", seen_metrics);
      metrics = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace needs a file path\n");
        return 2;
      }
      note_repeat("--trace", seen_trace);
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--metrics-json needs a file path\n");
        return 2;
      }
      note_repeat("--metrics-json", seen_json);
      metrics_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-prom") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--metrics-prom needs a file path\n");
        return 2;
      }
      note_repeat("--metrics-prom", seen_prom);
      metrics_prom_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-spec") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--fault-spec needs a spec string\n");
        return 2;
      }
      if (!util::fault::configure(argv[++i])) {
        std::fprintf(stderr, "error: malformed --fault-spec '%s'\n", argv[i]);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "unrecognized flag: %s\n", argv[i]);
      return 2;
    } else if (positional == 0) {
      colors = static_cast<unsigned>(std::atoi(argv[i]));
      ++positional;
    } else if (positional == 1) {
      iterations = static_cast<std::size_t>(std::atoll(argv[i]));
      ++positional;
    } else if (positional == 2) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[i]));
      ++positional;
    } else {
      std::fprintf(stderr, "unrecognized argument: %s\n", argv[i]);
      return 2;
    }
  }

  // The exposition flags imply --metrics: a file request without the
  // registry would always export an empty snapshot.
  metrics = metrics || !metrics_json_path.empty() || !metrics_prom_path.empty();
  if (metrics) obs::set_metrics_enabled(true);
  if (!trace_path.empty()) {
    obs::set_tracing_enabled(true);
    obs::set_thread_lane("main");
  }
  if ((!metrics_json_path.empty() || !metrics_prom_path.empty()) &&
      !obs::metrics_enabled()) {
    std::fprintf(stderr,
                 "--metrics-json/--metrics-prom need observability compiled "
                 "in (this binary was built with MSROPM_OBS=OFF)\n");
    return 2;
  }

  // Every exit from here on goes through finish(): an instrumented run emits
  // the metrics report, the machine-readable exports, and the trace on ALL
  // paths — input errors and kUnknown included — and all three read one
  // snapshot, so the report and the exports always agree.
  const auto finish = [&](int status) -> int {
    if (metrics) {
      const obs::MetricsSnapshot snap = obs::snapshot_metrics();
      std::printf("%s", obs::render_metrics_report(snap).c_str());
      if (!metrics_json_path.empty() &&
          !write_text_file(metrics_json_path, obs::export_metrics_json(snap))) {
        std::fprintf(stderr, "metrics: could not write %s\n",
                     metrics_json_path.c_str());
        status = 2;
      }
      if (!metrics_prom_path.empty() &&
          !write_text_file(metrics_prom_path,
                           obs::export_metrics_prometheus(snap))) {
        std::fprintf(stderr, "metrics: could not write %s\n",
                     metrics_prom_path.c_str());
        status = 2;
      }
    }
    if (!trace_path.empty()) {
      if (obs::write_chrome_trace(trace_path)) {
        std::printf("trace: wrote %s (open in Perfetto or chrome://tracing)\n",
                    trace_path.c_str());
      } else {
        std::fprintf(stderr,
                     "trace: could not write %s (I/O error, or msropm built "
                     "with MSROPM_OBS=OFF)\n",
                     trace_path.c_str());
        status = 2;
      }
    }
    return status;
  };

  graph::Graph g;
  try {
    g = graph::read_dimacs_file(path);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error reading %s: %s\n", path.c_str(), ex.what());
    return finish(2);
  }
  std::printf("%s: %zu nodes, %zu edges, max degree %zu\n", path.c_str(),
              g.num_nodes(), g.num_edges(), g.max_degree());

  if (!core::valid_color_count(colors)) {
    std::fprintf(stderr,
                 "error: the multi-stage SHIL plan needs a power-of-two "
                 "color count in [2, 128], got %u\n",
                 colors);
    return finish(2);
  }

  core::MsropmConfig config = analysis::default_machine_config();
  config.num_colors = colors;
  const core::MultiStagePottsMachine machine(g, config);
  core::RunnerOptions opts;
  opts.iterations = iterations;
  opts.seed = seed;
  const auto summary = core::run_iterations(machine, opts);
  const auto& best = summary.best_coloring();
  std::printf("MSROPM (K=%u, %zu iterations, %.0f ns each): accuracy best "
              "%.4f mean %.4f, conflicts %zu\n",
              colors, iterations, config.total_time_s() * 1e9,
              summary.best_accuracy, summary.mean_accuracy,
              graph::count_conflicts(g, best));

  const auto greedy = solvers::solve_dsatur(g);
  std::printf("DSATUR greedy: %u colors (proper)\n", greedy.colors_used);

  // DIMACS-convention status: 10 = SAT (proper coloring in hand), 20 = UNSAT
  // (CDCL proof), 0 = unknown. The MSROPM and DSATUR colorings are SAT
  // witnesses; only the exact baseline can prove UNSAT.
  int status = 0;
  if (graph::count_conflicts(g, best) == 0) status = 10;
  if (greedy.colors_used <= colors) status = 10;

  if (run_sat) {
    sat::SolverOptions solver_options = sat::exact_coloring_solver_options();
    solver_options.presimplify = preprocess;
    const auto outcome =
        sat::solve_exact_coloring_detailed(g, colors, {}, solver_options);
    const char* answer = "UNKNOWN (conflict limit hit)";
    if (outcome.result == sat::SolveResult::kSat) {
      answer = "exists";
      status = 10;
    } else if (outcome.result == sat::SolveResult::kUnsat) {
      answer = "does NOT exist";
      status = 20;
    }
    std::printf("SAT (%s): %u-coloring %s\n",
                preprocess ? "preprocessed" : "raw encoding", colors, answer);
    print_sat_stats(outcome);
  }

  if (run_chromatic) {
    sat::ChromaticSearchOptions chromatic_options;
    chromatic_options.presimplify = preprocess;
    const auto outcome = sat::chromatic_search(g, colors, chromatic_options);
    if (outcome.chromatic) {
      std::printf("chromatic number: %u (bounds [%u, %u], %zu incremental "
                  "solves)\n",
                  *outcome.chromatic, outcome.lower_bound, outcome.upper_bound,
                  outcome.solve_calls);
      status = 10;
    } else if (!outcome.incomplete) {
      std::printf("chromatic number: > %u (clique lower bound %u)\n", colors,
                  outcome.lower_bound);
      status = 20;
    } else {
      std::printf("chromatic number: unknown (search %s)\n",
                  outcome.cancelled ? "cancelled" : "hit its conflict budget");
      status = 0;
    }
    const auto& s = outcome.stats;
    util::TextTable sweep({"chromatic_sweep", "solves", "decisions",
                           "conflicts", "learnts", "propagations"});
    sweep.add_row({"incremental", std::to_string(outcome.solve_calls),
                   std::to_string(s.decisions), std::to_string(s.conflicts),
                   std::to_string(s.learnt_clauses),
                   std::to_string(s.propagations)});
    std::printf("%s", sweep.render().c_str());
  }

  return finish(status);
}

}  // namespace

// Last line of defense: nothing below the CLI should let an exception
// escape, but if one does (or the process genuinely runs out of memory), a
// diagnostic plus a distinct exit code beats std::terminate. 3 is disjoint
// from the DIMACS statuses (10/20/0) and usage errors (2).
int main(int argc, char** argv) {
  try {
    return run_solver_cli(argc, argv);
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "fatal: out of memory\n");
    return 3;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "fatal: unhandled exception: %s\n", ex.what());
    return 3;
  } catch (...) {
    std::fprintf(stderr, "fatal: unhandled non-standard exception\n");
    return 3;
  }
}
