// DIMACS coloring CLI: read a standard DIMACS .col graph, 4-color it on the
// MSROPM, and compare against the DSATUR greedy and (optionally) the SAT
// exact baseline. This is the tool a downstream user points at their own
// instances.
//
// Usage:
//   dimacs_solver <graph.col> [colors=4] [iterations=40] [seed=1] [--sat]
//
// Exit code 0 when the best coloring is proper, 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "msropm/analysis/experiments.hpp"
#include "msropm/core/machine.hpp"
#include "msropm/core/runner.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/graph/io.hpp"
#include "msropm/sat/coloring_encoder.hpp"
#include "msropm/solvers/dsatur.hpp"

int main(int argc, char** argv) {
  using namespace msropm;

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <graph.col> [colors=4] [iterations=40] [seed=1] "
                 "[--sat]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  unsigned colors = 4;
  std::size_t iterations = 40;
  std::uint64_t seed = 1;
  bool run_sat = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sat") == 0) {
      run_sat = true;
    } else if (i == 2) {
      colors = static_cast<unsigned>(std::atoi(argv[i]));
    } else if (i == 3) {
      iterations = static_cast<std::size_t>(std::atoll(argv[i]));
    } else if (i == 4) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[i]));
    }
  }

  graph::Graph g;
  try {
    g = graph::read_dimacs_file(path);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error reading %s: %s\n", path.c_str(), ex.what());
    return 2;
  }
  std::printf("%s: %zu nodes, %zu edges, max degree %zu\n", path.c_str(),
              g.num_nodes(), g.num_edges(), g.max_degree());

  if (!core::valid_color_count(colors)) {
    std::fprintf(stderr,
                 "error: the multi-stage SHIL plan needs a power-of-two "
                 "color count in [2, 128], got %u\n",
                 colors);
    return 2;
  }

  core::MsropmConfig config = analysis::default_machine_config();
  config.num_colors = colors;
  const core::MultiStagePottsMachine machine(g, config);
  core::RunnerOptions opts;
  opts.iterations = iterations;
  opts.seed = seed;
  const auto summary = core::run_iterations(machine, opts);
  const auto& best = summary.best_coloring();
  std::printf("MSROPM (K=%u, %zu iterations, %.0f ns each): accuracy best "
              "%.4f mean %.4f, conflicts %zu\n",
              colors, iterations, config.total_time_s() * 1e9,
              summary.best_accuracy, summary.mean_accuracy,
              graph::count_conflicts(g, best));

  const auto greedy = solvers::solve_dsatur(g);
  std::printf("DSATUR greedy: %u colors (proper)\n", greedy.colors_used);

  if (run_sat) {
    const auto exact = sat::solve_exact_coloring(g, colors);
    std::printf("SAT: %u-coloring %s\n", colors,
                exact ? "exists" : "does NOT exist");
  }
  return graph::count_conflicts(g, best) == 0 ? 0 : 1;
}
