// Portfolio sweep CLI: run the msropm::portfolio solver portfolio over a grid
// of K-coloring instances (King's graphs and/or DIMACS .col files) on a
// worker pool, and print the per-instance winner/verdict/time/quality report.
//
// Usage:
//   portfolio_sweep [--kings S1,S2,...] [--colors K] [--kings-unsat S1,S2,...]
//                   [--dimacs graph.col]... [--jobs N] [--timeout-ms T]
//                   [--strategies dsatur,cdcl,cdcl-pre,cdcl-inc,tabucol,sa,
//                    msropm[:N]]
//                   [--seed S] [--schedule strategy|instance] [--csv]
//
//   --kings        side lengths of King's-graph instances colored with
//                  --colors (default grid: 10,14,18,22,26,30 at K=4)
//   --kings-unsat  side lengths added as K=3 instances; King's graphs contain
//                  4-cliques, so these are UNSAT and exercise the CDCL proof
//                  path of the portfolio
//   --jobs         worker threads (default 1; 1 = fully deterministic)
//   --timeout-ms   wall-clock cap per strategy attempt (default 0 = none;
//                  breaks strict determinism, see src/portfolio/README.md)
//   --strategies   comma list; a kind may repeat (each slot gets its own
//                  seed stream). "msropm" runs the paper's machine as a
//                  strategy (best-of-40 batched Monte-Carlo iterations;
//                  "msropm:N" overrides the iteration budget), so the report
//                  compares machine rows against the SAT-side strategies on
//                  the same instances
//   --schedule     queue order: "strategy" (cheap probes first, default) or
//                  "instance" (all strategies of an instance race)
//   --csv          emit the report as CSV instead of an aligned table
//   --trace FILE   record msropm::obs spans and write a Chrome trace-event
//                  JSON (open in Perfetto / chrome://tracing; one lane per
//                  worker with attempt + solver-phase spans and heartbeat
//                  counter tracks)
//   --metrics      enable the msropm::obs metrics registry and print the
//                  merged counter/timer report after the sweep (plus the
//                  cancellation-latency summary line)
//   --metrics-json FILE  export the same snapshot as a JSON document
//   --metrics-prom FILE  export the same snapshot in Prometheus text format
//                  (both imply --metrics)
//   --fault-spec SPEC    install a util::FaultInjector schedule (grammar in
//                  fault_injector.hpp) — chaos drills; MSROPM_FAULT in the
//                  environment does the same
//   --budget-mb M / --budget-conflicts C / --budget-props P   per-attempt
//                  ResourceBudget caps (0 = unlimited); a breach ends that
//                  attempt with its LimitReason in the report's limit column
//   --no-degrade   skip the post-drain DSATUR/tabucol best-effort ladder for
//                  unknown instances
//
// The observability outputs are emitted on every exit path once the flags
// parsed — instance-loading errors and undecided sweeps included — and
// repeating any observability flag keeps the last value (with a warning).
//
// Exit code: 0 when every instance reached a definitive verdict (colored or
// UNSAT), 1 when any stayed unknown, 2 on usage errors, 3 when an exception
// (including std::bad_alloc) escaped the sweep.

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <limits>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "msropm/obs/obs.hpp"
#include "msropm/portfolio/portfolio.hpp"
#include "msropm/portfolio/sweep.hpp"
#include "msropm/util/fault_injector.hpp"
#include "msropm/util/strings.hpp"

namespace {

using namespace msropm;

/// Parse "10,14,18" into side lengths; rejects junk and trailing garbage.
bool parse_size_list(const char* arg, std::vector<std::size_t>& out) {
  const auto tokens = util::split(arg, ',', /*skip_empty=*/false);
  if (tokens.empty()) return false;
  for (const std::string& token : tokens) {
    const auto value = util::parse_int(util::trim(token));
    if (!value || *value < 1) return false;
    out.push_back(static_cast<std::size_t>(*value));
  }
  return true;
}

/// Parse one strategy token: a kind name, optionally with an "msropm:N"
/// iteration budget (the machine's best-of-N count).
bool parse_strategy_token(const std::string& token,
                          portfolio::StrategyConfig& out) {
  std::string name = token;
  std::optional<long long> budget;
  if (const auto colon = token.find(':'); colon != std::string::npos) {
    name = token.substr(0, colon);
    budget = util::parse_int(util::trim(token.substr(colon + 1)));
    if (!budget || *budget < 1) return false;
  }
  const auto kind = portfolio::strategy_from_string(util::trim(name));
  if (!kind) return false;
  if (budget && *kind != portfolio::StrategyKind::kMsropm) return false;
  out.kind = *kind;
  if (budget) out.msropm_iterations = static_cast<std::size_t>(*budget);
  return true;
}

bool parse_strategy_list(const char* arg,
                         std::vector<portfolio::StrategyConfig>& out) {
  const auto tokens = util::split(arg, ',', /*skip_empty=*/false);
  if (tokens.empty()) return false;
  for (const std::string& token : tokens) {
    portfolio::StrategyConfig config;
    if (!parse_strategy_token(token, config)) {
      std::fprintf(stderr, "unknown strategy: '%s'\n", token.c_str());
      return false;
    }
    out.push_back(config);
  }
  return true;
}

/// Parse a numeric flag value in [lo, hi]; rejects trailing garbage.
std::optional<long long> parse_flag_int(const char* value, long long lo,
                                        long long hi) {
  if (value == nullptr) return std::nullopt;
  const auto parsed = util::parse_int(util::trim(value));
  if (!parsed || *parsed < lo || *parsed > hi) return std::nullopt;
  return parsed;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--kings S1,S2,...] [--colors K] "
               "[--kings-unsat S1,S2,...] [--dimacs graph.col]... [--jobs N] "
               "[--timeout-ms T] [--strategies "
               "dsatur,cdcl,cdcl-pre,cdcl-inc,tabucol,sa,msropm[:N]] "
               "[--seed S] [--schedule strategy|instance] [--csv] "
               "[--trace FILE] [--metrics] [--metrics-json FILE] "
               "[--metrics-prom FILE] [--fault-spec SPEC] [--budget-mb M] "
               "[--budget-conflicts C] [--budget-props P] [--no-degrade]\n",
               argv0);
  return 2;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file << content;
  return static_cast<bool>(file.flush());
}

int run_sweep_cli(int argc, char** argv) {
  std::vector<std::size_t> kings_sides;
  std::vector<std::size_t> unsat_sides;
  std::vector<std::string> dimacs_paths;
  unsigned colors = 4;
  portfolio::SweepOptions options;
  std::vector<portfolio::StrategyConfig> strategies;
  bool csv = false;
  bool metrics = false;
  std::string trace_path;
  std::string metrics_json_path;
  std::string metrics_prom_path;
  int seen_metrics = 0, seen_trace = 0, seen_json = 0, seen_prom = 0;
  const auto note_repeat = [](const char* flag, int& seen) {
    if (++seen == 2) {
      std::fprintf(stderr, "warning: %s given more than once; last value wins\n",
                   flag);
    }
  };

  // Environment first so an explicit --fault-spec wins over MSROPM_FAULT.
  if (!util::fault::configure_from_env()) {
    std::fprintf(stderr, "error: malformed MSROPM_FAULT spec\n");
    return 2;
  }

  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--kings") == 0) {
      const char* v = need_value("--kings");
      if (!v || !parse_size_list(v, kings_sides)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--kings-unsat") == 0) {
      const char* v = need_value("--kings-unsat");
      if (!v || !parse_size_list(v, unsat_sides)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--colors") == 0) {
      const auto v = parse_flag_int(need_value("--colors"), 2, 255);
      if (!v) {
        std::fprintf(stderr, "--colors must be an integer in [2, 255]\n");
        return 2;
      }
      colors = static_cast<unsigned>(*v);
    } else if (std::strcmp(argv[i], "--dimacs") == 0) {
      const char* v = need_value("--dimacs");
      if (!v) return usage(argv[0]);
      dimacs_paths.emplace_back(v);
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      const auto v = parse_flag_int(need_value("--jobs"), 1, 4096);
      if (!v) return usage(argv[0]);
      options.portfolio.num_workers = static_cast<std::size_t>(*v);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      const auto v = parse_flag_int(need_value("--timeout-ms"), 0,
                                    std::numeric_limits<long long>::max());
      if (!v) return usage(argv[0]);
      options.portfolio.timeout_ms = static_cast<std::uint64_t>(*v);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const auto v = parse_flag_int(need_value("--seed"), 0,
                                    std::numeric_limits<long long>::max());
      if (!v) return usage(argv[0]);
      options.portfolio.master_seed = static_cast<std::uint64_t>(*v);
    } else if (std::strcmp(argv[i], "--strategies") == 0) {
      const char* v = need_value("--strategies");
      if (!v || !parse_strategy_list(v, strategies)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--schedule") == 0) {
      const char* v = need_value("--schedule");
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "strategy") == 0) {
        options.schedule = portfolio::Schedule::kStrategyMajor;
      } else if (std::strcmp(v, "instance") == 0) {
        options.schedule = portfolio::Schedule::kInstanceMajor;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      const char* v = need_value("--trace");
      if (!v) return usage(argv[0]);
      note_repeat("--trace", seen_trace);
      trace_path = v;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      note_repeat("--metrics", seen_metrics);
      metrics = true;
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      const char* v = need_value("--metrics-json");
      if (!v) return usage(argv[0]);
      note_repeat("--metrics-json", seen_json);
      metrics_json_path = v;
    } else if (std::strcmp(argv[i], "--metrics-prom") == 0) {
      const char* v = need_value("--metrics-prom");
      if (!v) return usage(argv[0]);
      note_repeat("--metrics-prom", seen_prom);
      metrics_prom_path = v;
    } else if (std::strcmp(argv[i], "--fault-spec") == 0) {
      const char* v = need_value("--fault-spec");
      if (!v) return usage(argv[0]);
      if (!util::fault::configure(v)) {
        std::fprintf(stderr, "error: malformed --fault-spec '%s'\n", v);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--budget-mb") == 0) {
      const auto v = parse_flag_int(need_value("--budget-mb"), 0,
                                    std::numeric_limits<long long>::max() >> 20);
      if (!v) return usage(argv[0]);
      options.portfolio.budget.max_memory_bytes =
          static_cast<std::uint64_t>(*v) << 20;
    } else if (std::strcmp(argv[i], "--budget-conflicts") == 0) {
      const auto v = parse_flag_int(need_value("--budget-conflicts"), 0,
                                    std::numeric_limits<long long>::max());
      if (!v) return usage(argv[0]);
      options.portfolio.budget.max_conflicts = static_cast<std::uint64_t>(*v);
    } else if (std::strcmp(argv[i], "--budget-props") == 0) {
      const auto v = parse_flag_int(need_value("--budget-props"), 0,
                                    std::numeric_limits<long long>::max());
      if (!v) return usage(argv[0]);
      options.portfolio.budget.max_propagations =
          static_cast<std::uint64_t>(*v);
    } else if (std::strcmp(argv[i], "--no-degrade") == 0) {
      options.portfolio.degrade = false;
    } else {
      std::fprintf(stderr, "unrecognized argument: %s\n", argv[i]);
      return usage(argv[0]);
    }
  }
  if (!strategies.empty()) options.portfolio.strategies = std::move(strategies);
  if (kings_sides.empty() && unsat_sides.empty() && dimacs_paths.empty()) {
    kings_sides = {10, 14, 18, 22, 26, 30};
  }

  // Enable observability BEFORE instance construction so even an instance
  // that fails to load leaves a report behind (via finish below).
  metrics = metrics || !metrics_json_path.empty() || !metrics_prom_path.empty();
  if (metrics) msropm::obs::set_metrics_enabled(true);
  if (!trace_path.empty()) {
    msropm::obs::set_tracing_enabled(true);
    msropm::obs::set_thread_lane("main");
  }
  if ((!metrics_json_path.empty() || !metrics_prom_path.empty()) &&
      !msropm::obs::metrics_enabled()) {
    std::fprintf(stderr,
                 "--metrics-json/--metrics-prom need observability compiled "
                 "in (this binary was built with MSROPM_OBS=OFF)\n");
    return 2;
  }

  // One snapshot feeds the report, both exports, and the cancellation
  // summary, so every surface agrees; runs on every exit path from here on.
  const auto finish = [&](int status) -> int {
    if (metrics) {
      const msropm::obs::MetricsSnapshot snap = msropm::obs::snapshot_metrics();
      std::printf("%s", msropm::obs::render_metrics_report(snap).c_str());
      if (const auto* lat = snap.find_histogram("portfolio.cancel_latency_us");
          lat != nullptr && lat->count > 0) {
        std::printf(
            "cancellation latency: %llu cancelled, p50 %.0f us, p99 %.0f us\n",
            static_cast<unsigned long long>(lat->count), lat->percentile(50.0),
            lat->percentile(99.0));
      }
      if (!metrics_json_path.empty() &&
          !write_text_file(metrics_json_path,
                           msropm::obs::export_metrics_json(snap))) {
        std::fprintf(stderr, "metrics: could not write %s\n",
                     metrics_json_path.c_str());
        status = 2;
      }
      if (!metrics_prom_path.empty() &&
          !write_text_file(metrics_prom_path,
                           msropm::obs::export_metrics_prometheus(snap))) {
        std::fprintf(stderr, "metrics: could not write %s\n",
                     metrics_prom_path.c_str());
        status = 2;
      }
    }
    if (!trace_path.empty()) {
      if (msropm::obs::write_chrome_trace(trace_path)) {
        std::printf("trace: wrote %s (open in Perfetto or chrome://tracing)\n",
                    trace_path.c_str());
      } else {
        std::fprintf(stderr,
                     "trace: could not write %s (I/O error, or msropm built "
                     "with MSROPM_OBS=OFF)\n",
                     trace_path.c_str());
        status = 2;
      }
    }
    return status;
  };

  std::vector<portfolio::InstanceSpec> instances;
  for (const std::size_t side : kings_sides) {
    instances.push_back(portfolio::kings_instance(side, colors));
  }
  for (const std::size_t side : unsat_sides) {
    instances.push_back(portfolio::kings_instance(side, 3));
  }
  for (const std::string& path : dimacs_paths) {
    try {
      instances.push_back(portfolio::dimacs_instance(path, colors));
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error reading %s: %s\n", path.c_str(), ex.what());
      return finish(2);
    }
  }

  const portfolio::SweepRunner runner(options);
  const portfolio::SweepResult result = runner.run(instances);
  const auto table = runner.report(instances, result);
  std::printf("%s", csv ? table.render_csv().c_str() : table.render().c_str());
  const auto summary = runner.strategy_summary(result);
  std::printf("%s",
              csv ? summary.render_csv().c_str() : summary.render().c_str());
  std::printf(
      "sweep: %zu/%zu instances decided in %.2f ms (%zu workers, %zu "
      "strategies, seed %llu)\n",
      result.decided(), instances.size(), result.wall_ms,
      options.portfolio.num_workers, options.portfolio.strategies.size(),
      static_cast<unsigned long long>(options.portfolio.master_seed));

  return finish(result.decided() == instances.size() ? 0 : 1);
}

}  // namespace

// Nothing below the CLI should let an exception escape, but if one does —
// or the process genuinely runs out of memory — a diagnostic plus exit code
// 3 (disjoint from 0/1/2) beats std::terminate for scripted sweeps.
int main(int argc, char** argv) {
  try {
    return run_sweep_cli(argc, argv);
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "fatal: out of memory\n");
    return 3;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "fatal: unhandled exception: %s\n", ex.what());
    return 3;
  } catch (...) {
    std::fprintf(stderr, "fatal: unhandled non-standard exception\n");
    return 3;
  }
}
