// Waveform dump: run the circuit-level (transistor-behavioural) MSROPM on a
// small 4-coloring problem and dump the simulated ROSC waveforms across the
// five control steps of Fig. 3:
//
//   a) couplings ON          (stage-1 self-anneal)
//   b) SHIL 1 ON             (2-phase binarization -> partition readout)
//   c) SHIL & couplings OFF  (phase re-randomization; P_EN/SHIL_SEL latched)
//   d) couplings ON          (stage-2 anneal within each partition)
//   e) SHIL 1 / SHIL 2 ON    (4-phase stability)
//
// Output: an ASCII oscillogram on stdout and waveforms.csv with every
// probed output sample (plot time_ns vs vout_* to recreate Fig. 3).
//
// Run: ./build/examples/waveform_dump [out.csv]

#include <cstdio>
#include <fstream>
#include <string>

#include "msropm/circuit/waveform.hpp"
#include "msropm/core/circuit_machine.hpp"
#include "msropm/graph/builders.hpp"
#include "msropm/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace msropm;

  const char* csv_path = argc > 1 ? argv[1] : "waveforms.csv";

  // A 2x3 King's graph: small enough that the RK4 transient of every stage
  // voltage stays fast, structured enough to show both SHIL groups.
  const auto g = graph::kings_graph(2, 3);
  core::CircuitMsropmConfig config;  // paper defaults: 1.3 GHz, 60 ns
  const core::CircuitMsropm machine(g, config);

  // Probe all six oscillators; keep every 20th RK4 step (20 ps resolution).
  circuit::WaveformRecorder recorder({0, 1, 2, 3, 4, 5}, 20);

  util::Rng rng(5);
  const auto result = machine.solve(
      rng,
      [](const char* label, const circuit::RoscFabric& fabric) {
        std::printf("t = %5.1f ns : %s\n", fabric.time() * 1e9, label);
      },
      std::ref(recorder));

  std::printf("\nstage-1 bits: ");
  for (auto b : result.stage1_bits) std::printf("%d", static_cast<int>(b));
  std::printf("\ncolors:       ");
  for (auto c : result.colors) std::printf("%d", static_cast<int>(c));
  std::printf("\n\nASCII oscillogram (last %zu samples):\n",
              recorder.samples().size());
  std::printf("%s\n", recorder.render_ascii(110).c_str());

  std::ofstream csv(csv_path);
  csv << recorder.to_csv();
  std::string vcd_path = csv_path;
  const auto dot = vcd_path.rfind('.');
  vcd_path = (dot == std::string::npos ? vcd_path : vcd_path.substr(0, dot)) +
             ".vcd";
  std::ofstream vcd(vcd_path);
  vcd << recorder.to_vcd();
  std::printf("full waveforms written to %s (%zu samples) and %s (GTKWave)\n",
              csv_path, recorder.samples().size(), vcd_path.c_str());
  return 0;
}
