// Map coloring: 4-color a real planar map (the 48 contiguous US states) on
// the MSROPM -- the classic COP the paper's introduction motivates ("graph
// coloring ... natively require[s] multivalued spins").
//
// The state adjacency graph is planar, so the four-color theorem guarantees
// a proper 4-coloring; the example shows the machine finding one and prints
// the result as a per-state color table plus the energy/accuracy metrics.
//
// Run: ./build/examples/map_coloring [iterations] [seed]

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "msropm/analysis/experiments.hpp"
#include "msropm/core/machine.hpp"
#include "msropm/core/runner.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"
#include "msropm/model/potts.hpp"
#include "msropm/sat/coloring_encoder.hpp"

namespace {

constexpr std::array<std::string_view, 48> kStates{
    "AL", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "ID", "IL", "IN",
    "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT",
    "NE", "NV", "NH", "NJ", "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA",
    "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY"};

// Land borders of the 48 contiguous states (pairs of indices into kStates).
constexpr std::array<std::array<int, 2>, 105> kBorders{{
    {0, 8},  {0, 21},  {0, 39},  {0, 7},   {1, 3},   {1, 25}, {1, 41},
    {1, 28}, {2, 15},  {2, 21},  {2, 22},  {2, 33},  {2, 39}, {2, 40},
    {3, 25}, {3, 34},  {4, 13},  {4, 24},  {4, 28},  {4, 41}, {4, 47},
    {5, 18}, {5, 29},  {5, 36},  {6, 17},  {6, 27},  {6, 35}, {7, 8},
    {8, 30}, {8, 37},  {8, 39},  {9, 23},  {9, 25},  {9, 34}, {9, 41},
    {9, 44}, {9, 46},  {10, 11}, {10, 12}, {10, 14}, {10, 22}, {10, 46},
    {11, 14}, {11, 19}, {11, 32}, {12, 20}, {12, 22}, {12, 24}, {12, 38},
    {12, 46}, {13, 22}, {13, 24}, {13, 33}, {14, 22}, {14, 32}, {14, 39},
    {14, 43}, {14, 45}, {15, 21}, {15, 40}, {16, 26}, {17, 35}, {17, 43},
    {17, 45}, {18, 26}, {18, 29}, {18, 36}, {18, 42}, {19, 32}, {19, 46},
    {20, 31}, {20, 38}, {20, 46}, {21, 39}, {22, 24}, {22, 33}, {22, 39},
    {23, 31}, {23, 38}, {23, 47}, {24, 38}, {24, 47}, {25, 34}, {25, 41},
    {26, 42}, {27, 29}, {27, 35}, {28, 33}, {28, 40}, {28, 41}, {29, 35},
    {29, 42}, {30, 37}, {30, 39}, {30, 43}, {31, 38}, {32, 35}, {32, 45},
    {33, 40}, {34, 44}, {35, 45}, {38, 47}, {39, 43}, {41, 47}, {43, 45},
}};

constexpr std::array<std::string_view, 4> kColorNames{"red", "green", "blue",
                                                      "yellow"};

}  // namespace

int main(int argc, char** argv) {
  using namespace msropm;

  const std::size_t iterations =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 40;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;

  graph::GraphBuilder builder(kStates.size());
  for (const auto& [u, v] : kBorders) {
    builder.add_edge(static_cast<graph::NodeId>(u),
                     static_cast<graph::NodeId>(v));
  }
  const graph::Graph g = builder.build();
  std::printf("US state adjacency: %zu states, %zu borders\n", g.num_nodes(),
              g.num_edges());

  // The SAT baseline proves 4-colorability (four-color theorem in action).
  const auto exact = sat::solve_exact_coloring(g, 4);
  std::printf("SAT: 4-coloring %s\n", exact ? "exists" : "does NOT exist");

  const core::MultiStagePottsMachine machine(
      g, analysis::default_machine_config());
  core::RunnerOptions opts;
  opts.iterations = iterations;
  opts.seed = seed;
  const auto summary = core::run_iterations(machine, opts);

  const graph::Coloring& best = summary.best_coloring();
  std::printf("MSROPM best of %zu: accuracy %.3f (%zu conflicts), Potts "
              "energy %.0f\n",
              iterations, summary.best_accuracy,
              graph::count_conflicts(g, best),
              model::PottsModel(g, 4, 1.0).energy(
                  model::potts_from_coloring(best)));

  std::printf("\n%-6s %-8s   %-6s %-8s   %-6s %-8s\n", "state", "color",
              "state", "color", "state", "color");
  for (std::size_t i = 0; i < kStates.size(); i += 3) {
    for (std::size_t j = i; j < i + 3 && j < kStates.size(); ++j) {
      std::printf("%-6s %-8s   ", std::string(kStates[j]).c_str(),
                  std::string(kColorNames[best[j]]).c_str());
    }
    std::printf("\n");
  }

  // Highlight any remaining conflicts (quasi-optimum runs).
  for (const auto eid : graph::conflicting_edges(g, best)) {
    const auto& e = g.edges()[eid];
    std::printf("conflict: %s - %s\n", std::string(kStates[e.u]).c_str(),
                std::string(kStates[e.v]).c_str());
  }
  return 0;
}
