// Quickstart: 4-color the paper's 49-node King's graph with the MSROPM.
//
// Demonstrates the minimal end-to-end flow:
//   1. build a problem graph,
//   2. construct a MultiStagePottsMachine with the paper's configuration,
//   3. run best-of-40 iterations (the paper's protocol),
//   4. validate the best coloring and compare against the exact SAT baseline.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "msropm/analysis/experiments.hpp"
#include "msropm/core/machine.hpp"
#include "msropm/core/runner.hpp"
#include "msropm/graph/builders.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/sat/coloring_encoder.hpp"

int main() {
  using namespace msropm;

  // The paper's smallest benchmark: a 7x7 King's graph (49 nodes, 8 edges
  // per interior node), 4-chromatic, so a perfect 4-coloring exists.
  const graph::Graph g = graph::kings_graph_square(7);
  std::printf("problem: King's graph, %zu nodes, %zu edges\n", g.num_nodes(),
              g.num_edges());

  // Paper configuration: 1.3 GHz oscillators, 60 ns schedule
  // (5 init + 20 anneal + 5 SHIL + 5 reinit + 20 anneal + 5 SHIL), K = 4.
  const core::MsropmConfig config = analysis::default_machine_config();
  const core::MultiStagePottsMachine machine(g, config);
  std::printf("machine: K=%u colors in %u stages, %.0f ns per run\n",
              config.num_colors, config.num_stages(),
              config.total_time_s() * 1e9);

  // Best-of-40 protocol (Sec. 4): probabilistic solver, keep the best run.
  core::RunnerOptions opts;
  opts.iterations = 40;
  opts.seed = 42;
  const core::RunSummary summary = core::run_iterations(machine, opts);

  std::printf("accuracy: best %.3f  mean %.3f  worst %.3f  exact %zu/40\n",
              summary.best_accuracy, summary.mean_accuracy,
              summary.worst_accuracy, summary.exact_solutions);

  // Validate the best coloring explicitly.
  const graph::Coloring& best = summary.best_coloring();
  const auto conflicts = graph::count_conflicts(g, best);
  std::printf("best coloring: %zu conflicting edges of %zu\n", conflicts,
              g.num_edges());

  // The paper normalizes against a generic SAT solver's exact solution.
  const auto exact = sat::solve_exact_coloring(g, 4);
  std::printf("SAT baseline: %s\n",
              exact ? "4-coloring exists (accuracy denominator = all edges)"
                    : "no 4-coloring (unexpected for a King's graph)");
  return conflicts == 0 ? 0 : 1;
}
