// Max-K-cut on the MSROPM -- the other Potts-native COP the paper names
// ("graph coloring or max-K-cut", Sec. 1). Unlike coloring, max-K-cut is
// interesting precisely when the graph is NOT K-partitionable without
// monochromatic edges: the objective is to maximize cut edges, and the
// machine's best coloring *is* its best K-cut (satisfied edge = cut edge).
//
// The example cuts a dense random graph (chromatic number >> 4, so no
// perfect 4-cut exists), compares against the uniform-random expectation
// m*(1 - 1/K) -- the classic baseline every sensible heuristic must beat --
// and against software SA.
//
// Run: ./build/examples/max_kcut [nodes=120] [p=0.3] [seed=5]

#include <cstdio>
#include <cstdlib>

#include "msropm/analysis/experiments.hpp"
#include "msropm/core/machine.hpp"
#include "msropm/core/runner.hpp"
#include "msropm/graph/builders.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/model/maxcut.hpp"
#include "msropm/solvers/sa_potts.hpp"
#include "msropm/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace msropm;

  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 120;
  const double p = argc > 2 ? std::atof(argv[2]) : 0.3;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 5;

  util::Rng graph_rng(seed);
  const auto g = graph::erdos_renyi(n, p, graph_rng);
  std::printf("problem: max-4-cut on G(%zu, %.2f): %zu edges\n", n, p,
              g.num_edges());
  const double random_baseline = model::kcut_random_expectation(g, 4);
  std::printf("uniform random 4-partition expectation: %.0f cut edges\n",
              random_baseline);

  const core::MultiStagePottsMachine machine(
      g, analysis::default_machine_config());
  core::RunnerOptions opts;
  opts.iterations = 40;
  opts.seed = seed;
  const auto summary = core::run_iterations(machine, opts);
  const model::KCutAssignment parts(summary.best_coloring().begin(),
                                    summary.best_coloring().end());
  const std::size_t machine_cut = model::kcut_value(g, parts);

  util::Rng sa_rng(seed + 1);
  solvers::SaPottsOptions sa_opts;
  const auto sa = solvers::solve_sa_potts(g, sa_opts, sa_rng);
  const model::KCutAssignment sa_parts(sa.colors.begin(), sa.colors.end());
  const std::size_t sa_cut = model::kcut_value(g, sa_parts);

  std::printf("\n%-28s %-10s %-12s\n", "solver", "cut", "vs random");
  std::printf("%-28s %-10zu %+.1f%%\n", "MSROPM (best of 40, 60 ns)",
              machine_cut,
              100.0 * (static_cast<double>(machine_cut) - random_baseline) /
                  random_baseline);
  std::printf("%-28s %-10zu %+.1f%%\n", "simulated annealing (sw)", sa_cut,
              100.0 * (static_cast<double>(sa_cut) - random_baseline) /
                  random_baseline);
  std::printf("\n(every satisfied coloring edge is a cut edge: the Potts\n"
              "machine solves max-K-cut and K-coloring with the same flow)\n");
  return machine_cut > static_cast<std::size_t>(random_baseline) ? 0 : 1;
}
