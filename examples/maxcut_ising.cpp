// Max-cut as a single-stage Ising run: the MSROPM's stage 1 *is* an
// oscillator Ising machine (Sec. 2.1 / Fig. 1). With K = 2 the machine does
// one anneal + one SHIL binarization and the readout bits form a max-cut
// bipartition -- the COP solved by the ROIM/RTWOIM rows of Table 2.
//
// The example cuts a 20x20 King's graph, compares against the simulated-
// annealing baseline (the accuracy reference used by [9]) and prints the
// Ising energies (Eq. 1) of both assignments.
//
// Run: ./build/examples/maxcut_ising [iterations] [seed]

#include <cstdio>
#include <cstdlib>

#include "msropm/analysis/experiments.hpp"
#include "msropm/core/machine.hpp"
#include "msropm/graph/builders.hpp"
#include "msropm/model/ising.hpp"
#include "msropm/model/maxcut.hpp"
#include "msropm/solvers/maxcut_sa.hpp"
#include "msropm/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace msropm;

  const int iterations = argc > 1 ? std::atoi(argv[1]) : 20;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 11;

  const graph::Graph g = graph::kings_graph_square(20);
  std::printf("problem: max-cut on a %zu-node King's graph (%zu edges)\n",
              g.num_nodes(), g.num_edges());

  // K = 2 collapses the multi-stage machine to a single-stage Ising solve.
  core::MsropmConfig config = analysis::default_machine_config();
  config.num_colors = 2;
  const core::MultiStagePottsMachine machine(g, config);
  std::printf("machine: %u stage(s), %.0f ns per run\n", config.num_stages(),
              config.total_time_s() * 1e9);

  std::size_t best_cut = 0;
  model::CutAssignment best_sides;
  util::Rng rng(seed);
  for (int it = 0; it < iterations; ++it) {
    const auto result = machine.solve(rng);
    const auto sides = result.stage1_cut();
    const std::size_t cut = model::cut_value(g, sides);
    if (cut > best_cut) {
      best_cut = cut;
      best_sides = sides;
    }
  }

  // Baseline: simulated annealing (the reference used by the RTWOIM paper).
  util::Rng sa_rng(seed + 1);
  solvers::MaxCutSaOptions sa_opts;
  const auto sa = solvers::solve_maxcut_sa(g, sa_opts, sa_rng);

  const model::IsingModel ising(g, -1.0);  // anti-ferromagnetic couplings
  std::printf("MSROPM best of %d: cut %zu  (Ising energy %.0f)\n", iterations,
              best_cut, ising.energy(model::spins_from_cut(best_sides)));
  std::printf("SA baseline:       cut %zu  (Ising energy %.0f)\n", sa.cut,
              ising.energy(model::spins_from_cut(sa.sides)));
  std::printf("accuracy vs SA: %.3f\n",
              static_cast<double>(best_cut) / static_cast<double>(sa.cut));
  return 0;
}
