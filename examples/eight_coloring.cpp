// Extension (paper Sec. 5): K = 8 coloring in three stages.
//
// "The proposed MSROPM can be extended to solve COPs with more spin-values"
// -- each extra stage adds one bit per oscillator: stage k splits every
// current group with a SHIL shifted by pi * sum(b_j / 2^j), ending with
// 2^m equally spaced lock phases. This example runs the 3-stage machine on
// a graph that actually needs 8 colors (it contains K8 cliques) and shows
// the per-stage cut progression.
//
// Run: ./build/examples/eight_coloring [iterations] [seed]

#include <cstdio>
#include <cstdlib>

#include "msropm/analysis/experiments.hpp"
#include "msropm/core/machine.hpp"
#include "msropm/core/runner.hpp"
#include "msropm/graph/builders.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/sat/coloring_encoder.hpp"
#include "msropm/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace msropm;

  const std::size_t iterations =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 24;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 3;

  // K8-in-a-ring: 8 cliques of 8 nodes chained into a cycle. Chromatic
  // number exactly 8 (each clique forces all 8 colors).
  graph::GraphBuilder builder(64);
  for (int c = 0; c < 8; ++c) {
    for (int i = 0; i < 8; ++i) {
      for (int j = i + 1; j < 8; ++j) {
        builder.add_edge(static_cast<graph::NodeId>(8 * c + i),
                         static_cast<graph::NodeId>(8 * c + j));
      }
    }
    // One bridge edge to the next clique.
    builder.add_edge(static_cast<graph::NodeId>(8 * c),
                     static_cast<graph::NodeId>(8 * ((c + 1) % 8) + 1));
  }
  const graph::Graph g = builder.build();
  std::printf("problem: 8 chained K8 cliques, %zu nodes, %zu edges\n",
              g.num_nodes(), g.num_edges());

  const auto exact = sat::solve_exact_coloring(g, 8);
  std::printf("SAT: 8-coloring %s\n", exact ? "exists" : "does NOT exist");

  core::MsropmConfig config = analysis::default_machine_config();
  config.num_colors = 8;  // 3 stages, 8 lock phases (45 deg apart)
  const core::MultiStagePottsMachine machine(g, config);
  std::printf("machine: %u stages, %.0f ns per run, lock phases every %.1f deg\n",
              config.num_stages(), config.total_time_s() * 1e9,
              360.0 / config.num_colors);

  core::RunnerOptions opts;
  opts.iterations = iterations;
  opts.seed = seed;
  const auto summary = core::run_iterations(machine, opts);

  std::printf("accuracy: best %.3f  mean %.3f  worst %.3f\n",
              summary.best_accuracy, summary.mean_accuracy,
              summary.worst_accuracy);

  // Per-stage cut progression of the best iteration: each stage should cut
  // a sizeable fraction of the edges still active in its groups.
  const auto& best = summary.iterations[summary.best_index].result;
  for (std::size_t s = 0; s < best.stages.size(); ++s) {
    const auto& st = best.stages[s];
    std::printf("stage %zu: cut %zu of %zu active edges (worst lock residual "
                "%.3f rad)\n",
                s + 1, st.cut_edges, st.active_edges, st.max_lock_residual);
  }
  std::printf("colors used: %zu of 8\n",
              graph::colors_used(summary.best_coloring()));
  return 0;
}
