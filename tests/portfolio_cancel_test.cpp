// Cancellation stress test for the portfolio engine: many tiny instances,
// instance-major schedule (maximum intra-instance racing), several worker
// counts and seeds. Verdicts must always match the serial reference and
// every published coloring must verify — under ASan/TSan this doubles as the
// no-use-after-cancel / no-data-race check for the StopToken plumbing
// (scripts/check.sh CHECK_TSAN=1 runs exactly these tests under TSan).
#include <gtest/gtest.h>

#include <vector>

#include "msropm/graph/builders.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/portfolio/portfolio.hpp"
#include "msropm/portfolio/sweep.hpp"

namespace {

using namespace msropm;
using portfolio::Schedule;
using portfolio::Verdict;

/// ~40 tiny mixed instances: SAT King's graphs, UNSAT K=3 rows, odd cycles
/// (3-chromatic) and complete graphs right at/over the palette size.
std::vector<portfolio::InstanceSpec> stress_grid() {
  std::vector<portfolio::InstanceSpec> instances;
  for (std::size_t side = 3; side <= 10; ++side) {
    instances.push_back(portfolio::kings_instance(side, 4));   // SAT
    instances.push_back(portfolio::kings_instance(side, 3));   // UNSAT
  }
  for (std::size_t n = 5; n <= 15; n += 2) {
    portfolio::InstanceSpec odd_cycle;
    odd_cycle.name = "cycle_";
    odd_cycle.name += std::to_string(n);
    odd_cycle.name += "_K3";
    odd_cycle.graph = graph::cycle_graph(n);
    odd_cycle.num_colors = 3;  // SAT: odd cycles are 3-chromatic
    instances.push_back(odd_cycle);

    portfolio::InstanceSpec clique;
    clique.name = "K";
    clique.name += std::to_string((n + 1) / 2);
    clique.name += "_K4";
    clique.graph = graph::complete_graph((n + 1) / 2);
    clique.num_colors = 4;  // SAT for n<=4 nodes, UNSAT beyond
    instances.push_back(clique);
  }
  return instances;
}

/// Small budgets keep single runs fast; the point is scheduling churn, not
/// search depth.
portfolio::PortfolioOptions stress_options(std::size_t workers,
                                           std::uint64_t seed) {
  portfolio::PortfolioOptions options;
  for (auto& strategy : options.strategies) {
    strategy.tabu_iterations = 2000;
    strategy.sa_sweeps = 60;
  }
  options.num_workers = workers;
  options.master_seed = seed;
  return options;
}

TEST(PortfolioCancelStress, RacingVerdictsMatchSerialAcrossSeedsAndWorkers) {
  const auto instances = stress_grid();
  for (const std::uint64_t seed : {1ull, 99ull}) {
    portfolio::SweepOptions serial;
    serial.portfolio = stress_options(1, seed);
    serial.schedule = Schedule::kInstanceMajor;
    const auto reference = portfolio::SweepRunner(serial).run(instances);
    // Tiny instances + complete strategies: everything must be decided.
    EXPECT_EQ(reference.decided(), instances.size());

    for (const std::size_t workers : {2, 4, 8}) {
      portfolio::SweepOptions racing;
      racing.portfolio = stress_options(workers, seed);
      racing.schedule = Schedule::kInstanceMajor;
      const auto result = portfolio::SweepRunner(racing).run(instances);
      ASSERT_EQ(result.instances.size(), reference.instances.size());
      for (std::size_t i = 0; i < result.instances.size(); ++i) {
        const auto& got = result.instances[i];
        const auto& want = reference.instances[i];
        EXPECT_EQ(got.verdict, want.verdict)
            << instances[i].name << " seed " << seed << " workers " << workers;
        if (got.verdict == Verdict::kColored) {
          ASSERT_TRUE(got.coloring.has_value()) << instances[i].name;
          EXPECT_TRUE(graph::is_proper_coloring(
              instances[i].graph, *got.coloring, instances[i].num_colors))
              << instances[i].name;
        } else {
          EXPECT_FALSE(got.coloring.has_value()) << instances[i].name;
        }
      }
    }
  }
}

TEST(PortfolioCancelStress, RepeatedRacingRunsStayConsistent) {
  // Hammer the same racing configuration repeatedly: losers are cancelled
  // mid-run on every pass, and the winning verdict must never wobble.
  const auto instances = stress_grid();
  portfolio::SweepOptions racing;
  racing.portfolio = stress_options(4, 7);
  racing.schedule = Schedule::kInstanceMajor;
  const portfolio::SweepRunner runner(racing);
  std::vector<Verdict> first_verdicts;
  for (int round = 0; round < 3; ++round) {
    const auto result = runner.run(instances);
    if (round == 0) {
      for (const auto& r : result.instances) first_verdicts.push_back(r.verdict);
      continue;
    }
    for (std::size_t i = 0; i < result.instances.size(); ++i) {
      EXPECT_EQ(result.instances[i].verdict, first_verdicts[i])
          << instances[i].name << " round " << round;
    }
  }
}

}  // namespace
