// Tests for the shared experiment fixtures.
#include "msropm/analysis/experiments.hpp"

#include <gtest/gtest.h>

#include "msropm/core/shil_plan.hpp"
#include "msropm/sat/coloring_encoder.hpp"

namespace {

using namespace msropm;

TEST(PaperProblems, FourInstancesWithTable1Sizes) {
  const auto problems = analysis::paper_problems();
  ASSERT_EQ(problems.size(), 4u);
  EXPECT_EQ(problems[0].nodes, 49u);
  EXPECT_EQ(problems[1].nodes, 400u);
  EXPECT_EQ(problems[2].nodes, 1024u);
  EXPECT_EQ(problems[3].nodes, 2116u);
  for (const auto& p : problems) {
    EXPECT_EQ(p.side * p.side, p.nodes);
    const auto g = analysis::build_paper_graph(p);
    EXPECT_EQ(g.num_nodes(), p.nodes);
    EXPECT_EQ(g.max_degree(), 8u) << "all edges active, 8 edges per node";
  }
}

TEST(DefaultConfig, MatchesPaperDesignPoint) {
  const auto cfg = analysis::default_machine_config();
  EXPECT_EQ(cfg.num_colors, 4u);
  EXPECT_EQ(cfg.num_stages(), 2u);
  EXPECT_DOUBLE_EQ(cfg.network.natural_frequency_hz, 1.3e9);
  EXPECT_EQ(cfg.network.shil_order, 2u);
  EXPECT_NEAR(cfg.total_time_s(), 60e-9, 1e-15);
}

TEST(DefaultConfig, PhysicallySensibleGains) {
  const auto cfg = analysis::default_machine_config();
  // SHIL must dominate coupling for clean discretization, and the anneal
  // window must cover several coupling time constants.
  EXPECT_GT(cfg.network.shil_gain, cfg.network.coupling_gain);
  EXPECT_GT(cfg.schedule.anneal_s * cfg.network.coupling_gain, 5.0);
  // Integration step resolves the fastest dynamics.
  EXPECT_LT(cfg.network.dt * cfg.network.shil_gain, 0.1);
}

TEST(ConfigForColors, GeneralizesStages) {
  EXPECT_EQ(analysis::machine_config_for_colors(8).num_stages(), 3u);
  EXPECT_EQ(analysis::machine_config_for_colors(2).num_stages(), 1u);
  EXPECT_THROW((void)analysis::machine_config_for_colors(5), std::invalid_argument);
}

TEST(MaxcutAccuracy, Normalization) {
  EXPECT_DOUBLE_EQ(analysis::maxcut_accuracy(90, 100), 0.9);
  EXPECT_DOUBLE_EQ(analysis::maxcut_accuracy(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(analysis::maxcut_accuracy(5, 0), 1.0);
}


TEST(PaperProblems, GraphsMatchTable1Exactly) {
  // Node counts, edge counts and the 8-edges-per-interior-node property of
  // "King's graph topology graphs ... with all edges active" (Sec. 4.1).
  for (const auto& p : analysis::paper_problems()) {
    const auto g = analysis::build_paper_graph(p);
    EXPECT_EQ(g.num_nodes(), p.nodes);
    EXPECT_EQ(g.num_nodes(), p.side * p.side);
    const std::size_t s = p.side;
    EXPECT_EQ(g.num_edges(), s * (s - 1) + (s - 1) * s + 2 * (s - 1) * (s - 1));
    EXPECT_EQ(g.max_degree(), 8u);
  }
}

TEST(PaperProblems, SmallestInstanceIsFourChromatic) {
  // The accuracy denominator assumes a perfect 4-coloring exists (it does:
  // King's graphs are 4-chromatic) and that 3 colors do NOT suffice.
  const auto g = analysis::build_paper_graph(analysis::paper_problems()[0]);
  EXPECT_TRUE(sat::solve_exact_coloring(g, 4).has_value());
  EXPECT_FALSE(sat::solve_exact_coloring(g, 3).has_value());
}

TEST(ConfigForColors, TotalTimeFollowsScheduleFormula) {
  // init + m*(anneal + lock) + (m-1)*reinit; 60 ns for K = 4 and 90 ns for
  // K = 8 at the paper's windows (5/20/5/5 ns).
  for (const unsigned k : {2u, 4u, 8u, 16u}) {
    const auto c = analysis::machine_config_for_colors(k);
    const unsigned m = c.num_stages();
    const auto& s = c.schedule;
    EXPECT_DOUBLE_EQ(c.total_time_s(),
                     s.init_s + m * (s.anneal_s + s.discretize_s) +
                         (m - 1) * s.reinit_s);
  }
  EXPECT_NEAR(analysis::machine_config_for_colors(4).total_time_s(), 60e-9,
              1e-12);
  EXPECT_NEAR(analysis::machine_config_for_colors(8).total_time_s(), 90e-9,
              1e-12);
}

TEST(MaxcutAccuracy, EdgeCases) {
  EXPECT_DOUBLE_EQ(analysis::maxcut_accuracy(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(analysis::maxcut_accuracy(100, 100), 1.0);
  // Heuristic references can be beaten; accuracy may exceed 1.
  EXPECT_GT(analysis::maxcut_accuracy(110, 100), 1.0);
}

}  // namespace
