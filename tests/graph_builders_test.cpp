// Tests for graph generators, with the King's-graph structure (the paper's
// benchmark topology) checked in detail.
#include "msropm/graph/builders.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/util/rng.hpp"

namespace {

using namespace msropm::graph;

// King's graph edge count: horizontal r*(c-1) + vertical (r-1)*c
// + diagonals 2*(r-1)*(c-1).
std::size_t kings_edges(std::size_t r, std::size_t c) {
  return r * (c - 1) + (r - 1) * c + 2 * (r - 1) * (c - 1);
}

class KingsGraphSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(KingsGraphSweep, NodeAndEdgeCounts) {
  const auto [r, c] = GetParam();
  const Graph g = kings_graph(r, c);
  EXPECT_EQ(g.num_nodes(), r * c);
  EXPECT_EQ(g.num_edges(), kings_edges(r, c));
}

TEST_P(KingsGraphSweep, InteriorNodesHaveDegree8) {
  const auto [r, c] = GetParam();
  if (r < 3 || c < 3) GTEST_SKIP();
  const Graph g = kings_graph(r, c);
  for (std::size_t i = 1; i + 1 < r; ++i) {
    for (std::size_t j = 1; j + 1 < c; ++j) {
      EXPECT_EQ(g.degree(static_cast<NodeId>(i * c + j)), 8u);
    }
  }
  // Corners have degree 3.
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(static_cast<NodeId>(c - 1)), 3u);
  EXPECT_EQ(g.degree(static_cast<NodeId>(r * c - 1)), 3u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KingsGraphSweep,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{2, 2},
                                           std::pair<std::size_t, std::size_t>{3, 3},
                                           std::pair<std::size_t, std::size_t>{3, 5},
                                           std::pair<std::size_t, std::size_t>{7, 7},
                                           std::pair<std::size_t, std::size_t>{20, 20},
                                           std::pair<std::size_t, std::size_t>{5, 2}));

TEST(KingsGraph, PaperInstanceSizes) {
  // The four Table-1 instances: "all edges active (8 edges per node)".
  EXPECT_EQ(kings_graph_square(7).num_nodes(), 49u);
  EXPECT_EQ(kings_graph_square(7).num_edges(), 156u);
  EXPECT_EQ(kings_graph_square(20).num_nodes(), 400u);
  EXPECT_EQ(kings_graph_square(20).num_edges(), 1482u);
  EXPECT_EQ(kings_graph_square(32).num_nodes(), 1024u);
  EXPECT_EQ(kings_graph_square(32).num_edges(), 3906u);
  EXPECT_EQ(kings_graph_square(46).num_nodes(), 2116u);
  EXPECT_EQ(kings_graph_square(46).num_edges(), 8190u);
}

TEST(KingsGraph, TwoByTwoIsK4) {
  EXPECT_EQ(kings_graph(2, 2), complete_graph(4));
}

TEST(KingsGraph, RejectsEmpty) {
  EXPECT_THROW(kings_graph(0, 4), std::invalid_argument);
  EXPECT_THROW(kings_graph(4, 0), std::invalid_argument);
}

TEST(GridGraph, CountsAndBipartite) {
  const Graph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3u + 2u * 4u);  // 17
  EXPECT_TRUE(g.is_bipartite());
}

TEST(CycleGraph, Structure) {
  const Graph g = cycle_graph(5);
  EXPECT_EQ(g.num_edges(), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_THROW(cycle_graph(2), std::invalid_argument);
}

TEST(PathGraph, Structure) {
  const Graph g = path_graph(4);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(path_graph(1).num_edges(), 0u);
  EXPECT_THROW(path_graph(0), std::invalid_argument);
}

TEST(CompleteGraph, Counts) {
  const Graph g = complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
  EXPECT_EQ(complete_graph(0).num_nodes(), 0u);
  EXPECT_EQ(complete_graph(1).num_edges(), 0u);
}

TEST(CompleteBipartite, Counts) {
  const Graph g = complete_bipartite_graph(3, 4);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_TRUE(g.is_bipartite());
  EXPECT_FALSE(g.has_edge(0, 1));  // same side
  EXPECT_TRUE(g.has_edge(0, 3));
}

TEST(ErdosRenyi, DeterministicForSeed) {
  msropm::util::Rng r1(5);
  msropm::util::Rng r2(5);
  EXPECT_EQ(erdos_renyi(30, 0.2, r1), erdos_renyi(30, 0.2, r2));
}

TEST(ErdosRenyi, EdgeDensityNearP) {
  msropm::util::Rng rng(11);
  const std::size_t n = 120;
  const Graph g = erdos_renyi(n, 0.25, rng);
  const double max_edges = static_cast<double>(n * (n - 1)) / 2.0;
  const double density = static_cast<double>(g.num_edges()) / max_edges;
  EXPECT_NEAR(density, 0.25, 0.03);
}

TEST(ErdosRenyi, DegenerateP) {
  msropm::util::Rng rng(1);
  EXPECT_EQ(erdos_renyi(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi(10, 1.0, rng).num_edges(), 45u);
  EXPECT_THROW(erdos_renyi(10, 1.5, rng), std::invalid_argument);
}

TEST(TriangulatedGrid, EdgeCountIsGridPlusDiagonals) {
  msropm::util::Rng rng(3);
  const std::size_t r = 5;
  const std::size_t c = 6;
  const Graph g = triangulated_grid(r, c, rng);
  // grid edges + one diagonal per unit square.
  const std::size_t expected =
      r * (c - 1) + (r - 1) * c + (r - 1) * (c - 1);
  EXPECT_EQ(g.num_edges(), expected);
  EXPECT_THROW(triangulated_grid(1, 5, rng), std::invalid_argument);
}

TEST(TriangulatedGrid, MaxDegreeBoundedByPlanarity) {
  msropm::util::Rng rng(9);
  const Graph g = triangulated_grid(8, 8, rng);
  // Grid + diagonals: max degree 8 (4 grid + up to 4 diagonal).
  EXPECT_LE(g.max_degree(), 8u);
}

TEST(StarGraph, Structure) {
  const Graph g = star_graph(6);
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_TRUE(g.is_bipartite());
}

TEST(WheelGraph, Structure) {
  const Graph g = wheel_graph(6);  // hub + C5
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(g.degree(0), 5u);
  for (NodeId v = 1; v < 6; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_THROW(wheel_graph(3), std::invalid_argument);
}


TEST(HexLattice, DegreeAtMostThree) {
  const auto g = hex_lattice(6, 8);
  EXPECT_EQ(g.num_nodes(), 48u);
  for (NodeId v = 0; v < 48; ++v) EXPECT_LE(g.degree(v), 3u);
}

TEST(HexLattice, IsBipartiteLikeHoneycomb) {
  // The honeycomb lattice is bipartite (all cycles have length 6).
  EXPECT_TRUE(hex_lattice(5, 7).is_bipartite());
  EXPECT_TRUE(hex_lattice(8, 8).is_bipartite());
}

TEST(HexLattice, EdgeCountFormula) {
  // Horizontal: rows*(cols-1). Vertical: pairs (r, c) with r+1 < rows and
  // (r+c) even.
  const std::size_t rows = 4, cols = 5;
  const auto g = hex_lattice(rows, cols);
  std::size_t expect = rows * (cols - 1);
  for (std::size_t r = 0; r + 1 < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if ((r + c) % 2 == 0) ++expect;
    }
  }
  EXPECT_EQ(g.num_edges(), expect);
}

TEST(HexLattice, RejectsEmpty) {
  EXPECT_THROW((void)hex_lattice(0, 5), std::invalid_argument);
  EXPECT_THROW((void)hex_lattice(5, 0), std::invalid_argument);
}

}  // namespace
