// Tests for coloring bookkeeping and the paper's accuracy metric.
#include "msropm/graph/coloring.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/graph/builders.hpp"

namespace {

using namespace msropm::graph;

TEST(Conflicts, CountsMonochromaticEdges) {
  const Graph g = path_graph(4);
  EXPECT_EQ(count_conflicts(g, {0, 0, 0, 0}), 3u);
  EXPECT_EQ(count_conflicts(g, {0, 1, 0, 1}), 0u);
  EXPECT_EQ(count_conflicts(g, {0, 0, 1, 1}), 2u);
}

TEST(Conflicts, SizeMismatchThrows) {
  const Graph g = path_graph(3);
  EXPECT_THROW((void)count_conflicts(g, {0, 1}), std::invalid_argument);
}

TEST(Accuracy, MatchesSatisfiedFraction) {
  const Graph g = cycle_graph(4);
  EXPECT_DOUBLE_EQ(coloring_accuracy(g, {0, 1, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(coloring_accuracy(g, {0, 0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(coloring_accuracy(g, {0, 0, 1, 1}), 0.5);
}

TEST(Accuracy, EdgelessGraphIsPerfect) {
  const Graph g(3);
  EXPECT_DOUBLE_EQ(coloring_accuracy(g, {0, 0, 0}), 1.0);
}

TEST(ProperColoring, ValidatesRangeAndConflicts) {
  const Graph g = cycle_graph(3);
  EXPECT_TRUE(is_proper_coloring(g, {0, 1, 2}, 3));
  EXPECT_FALSE(is_proper_coloring(g, {0, 1, 1}, 3));   // conflict
  EXPECT_FALSE(is_proper_coloring(g, {0, 1, 3}, 3));   // out of palette
  EXPECT_FALSE(is_proper_coloring(g, {0, 1}, 3));      // wrong size
}

TEST(ColorsUsed, CountsDistinct) {
  EXPECT_EQ(colors_used({0, 0, 0}), 1u);
  EXPECT_EQ(colors_used({0, 1, 2, 1}), 3u);
  EXPECT_EQ(colors_used({}), 0u);
}

TEST(ConflictingEdges, ReturnsIds) {
  const Graph g = path_graph(4);  // edges 0:01 1:12 2:23
  const auto bad = conflicting_edges(g, {0, 0, 1, 1});
  ASSERT_EQ(bad.size(), 2u);
  EXPECT_EQ(bad[0], 0u);
  EXPECT_EQ(bad[1], 2u);
}

TEST(SatisfiedEdges, ComplementOfConflicts) {
  const Graph g = kings_graph(3, 3);
  const Coloring c = kings_graph_pattern_coloring(3, 3);
  EXPECT_EQ(count_satisfied_edges(g, c) + count_conflicts(g, c), g.num_edges());
}

class PatternColoringSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PatternColoringSweep, PatternIsProper4Coloring) {
  const std::size_t side = GetParam();
  const Graph g = kings_graph_square(side);
  const Coloring c = kings_graph_pattern_coloring(side, side);
  EXPECT_TRUE(is_proper_coloring(g, c, 4))
      << "King's graphs are 4-chromatic; the 2x2 block pattern must be proper";
  EXPECT_DOUBLE_EQ(coloring_accuracy(g, c), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sides, PatternColoringSweep,
                         ::testing::Values(2, 3, 4, 5, 7, 10, 20, 32, 46));

TEST(PatternColoring, RectangularAlsoProper) {
  const Graph g = kings_graph(3, 8);
  EXPECT_TRUE(is_proper_coloring(g, kings_graph_pattern_coloring(3, 8), 4));
}

TEST(PatternColoring, UsesFourColorsWhenBigEnough) {
  const auto c = kings_graph_pattern_coloring(4, 4);
  EXPECT_EQ(colors_used(c), 4u);
}

}  // namespace
