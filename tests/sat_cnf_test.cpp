// Tests for CNF representation and DIMACS CNF I/O.
#include "msropm/sat/cnf.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace msropm::sat;

TEST(Lit, PackingAndPolarity) {
  const Lit a = pos(3);
  EXPECT_EQ(a.var(), 3u);
  EXPECT_FALSE(a.negated());
  const Lit b = ~a;
  EXPECT_EQ(b.var(), 3u);
  EXPECT_TRUE(b.negated());
  EXPECT_EQ(~b, a);
  EXPECT_NE(a, b);
}

TEST(Lit, DimacsIntegers) {
  EXPECT_EQ(pos(0).to_dimacs(), 1);
  EXPECT_EQ(neg(0).to_dimacs(), -1);
  EXPECT_EQ(pos(41).to_dimacs(), 42);
  EXPECT_EQ(neg(41).to_dimacs(), -42);
}

TEST(Cnf, NewVarGrows) {
  Cnf cnf;
  EXPECT_EQ(cnf.num_vars(), 0u);
  EXPECT_EQ(cnf.new_var(), 0u);
  EXPECT_EQ(cnf.new_var(), 1u);
  EXPECT_EQ(cnf.num_vars(), 2u);
}

TEST(Cnf, AddClauseValidatesRange) {
  Cnf cnf(2);
  cnf.add_binary(pos(0), neg(1));
  EXPECT_EQ(cnf.num_clauses(), 1u);
  EXPECT_THROW(cnf.add_unit(pos(2)), std::invalid_argument);
}

TEST(Cnf, SatisfiedBy) {
  Cnf cnf(2);
  cnf.add_binary(pos(0), pos(1));
  cnf.add_unit(neg(0));
  EXPECT_TRUE(cnf.satisfied_by({0, 1}));
  EXPECT_FALSE(cnf.satisfied_by({0, 0}));
  EXPECT_FALSE(cnf.satisfied_by({1, 1}));
  EXPECT_THROW((void)cnf.satisfied_by({0}), std::invalid_argument);
}

TEST(Cnf, EmptyClauseUnsatisfiable) {
  Cnf cnf(1);
  cnf.add_clause({});
  EXPECT_FALSE(cnf.satisfied_by({0}));
  EXPECT_FALSE(cnf.satisfied_by({1}));
}

TEST(DimacsCnf, ParsesStandardFormat) {
  const Cnf cnf = read_dimacs_cnf_string(
      "c example\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n");
  EXPECT_EQ(cnf.num_vars(), 3u);
  EXPECT_EQ(cnf.num_clauses(), 2u);
  EXPECT_EQ(cnf.clauses()[0][0], pos(0));
  EXPECT_EQ(cnf.clauses()[0][1], neg(1));
}

TEST(DimacsCnf, MultiLineClause) {
  const Cnf cnf = read_dimacs_cnf_string(
      "p cnf 3 1\n"
      "1 2\n"
      "3 0\n");
  EXPECT_EQ(cnf.num_clauses(), 1u);
  EXPECT_EQ(cnf.clauses()[0].size(), 3u);
}

TEST(DimacsCnf, RejectsMalformed) {
  EXPECT_THROW(read_dimacs_cnf_string(""), std::runtime_error);
  EXPECT_THROW(read_dimacs_cnf_string("1 0\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_cnf_string("p cnf 1 1\n2 0\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_cnf_string("p cnf 1 1\n1\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_cnf_string("p cnf x 1\n"), std::runtime_error);
}

TEST(DimacsCnf, AcceptsSatlibPercentEofMarker) {
  // SATLIB benchmark files end with a "%" line followed by a stray "0" (and
  // sometimes trailing garbage); everything after the marker is ignored.
  const Cnf cnf = read_dimacs_cnf_string(
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n"
      "%\n"
      "0\n"
      "\n");
  EXPECT_EQ(cnf.num_vars(), 3u);
  EXPECT_EQ(cnf.num_clauses(), 2u);
}

TEST(DimacsCnf, PercentMarkerMidLineStopsParsing) {
  const Cnf cnf = read_dimacs_cnf_string(
      "p cnf 2 1\n"
      "1 2 0 %\n"
      "this is not DIMACS at all\n");
  EXPECT_EQ(cnf.num_clauses(), 1u);
}

TEST(DimacsCnf, RejectsClauseCountMismatch) {
  // Fewer clauses than declared.
  EXPECT_THROW(read_dimacs_cnf_string("p cnf 2 3\n1 2 0\n"), std::runtime_error);
  // More clauses than declared.
  EXPECT_THROW(read_dimacs_cnf_string("p cnf 2 1\n1 0\n2 0\n"),
               std::runtime_error);
  // Clauses hidden behind the EOF marker do not count.
  EXPECT_THROW(read_dimacs_cnf_string("p cnf 2 2\n1 0\n%\n2 0\n"),
               std::runtime_error);
}

TEST(Cnf, AddClauseMovesRvalueStorage) {
  Cnf cnf(3);
  Clause c{pos(0), neg(1), pos(2)};
  const Lit* storage = c.data();
  cnf.add_clause(std::move(c));
  // The literal buffer must have been moved, not copied.
  EXPECT_EQ(cnf.clauses()[0].data(), storage);
  // Range validation still applies on the move path.
  Clause bad{pos(7)};
  EXPECT_THROW(cnf.add_clause(std::move(bad)), std::invalid_argument);
}

TEST(DimacsCnf, RoundTrip) {
  Cnf cnf(4);
  cnf.add_ternary(pos(0), neg(2), pos(3));
  cnf.add_unit(neg(1));
  const auto text = write_dimacs_cnf_string(cnf);
  const Cnf parsed = read_dimacs_cnf_string(text);
  EXPECT_EQ(parsed.num_vars(), cnf.num_vars());
  ASSERT_EQ(parsed.num_clauses(), cnf.num_clauses());
  for (std::size_t i = 0; i < cnf.num_clauses(); ++i) {
    EXPECT_EQ(parsed.clauses()[i], cnf.clauses()[i]);
  }
}

}  // namespace
