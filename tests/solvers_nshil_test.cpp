// Tests for the single-stage N-SHIL ROPM baseline (paper ref. [14]).
#include "msropm/solvers/nshil_ropm.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "msropm/analysis/experiments.hpp"
#include "msropm/graph/builders.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using solvers::NShilRopm;
using solvers::NShilRopmConfig;

NShilRopmConfig quick_config(unsigned colors) {
  NShilRopmConfig cfg;
  cfg.num_colors = colors;
  cfg.network = analysis::default_machine_config().network;
  return cfg;
}

TEST(NShilRopm, ProducesInRangeColors) {
  const auto g = graph::kings_graph(4, 4);
  NShilRopm machine(g, quick_config(4));
  util::Rng rng(1);
  const auto r = machine.solve(rng);
  EXPECT_EQ(r.colors.size(), 16u);
  for (auto c : r.colors) EXPECT_LT(c, 4);
}

TEST(NShilRopm, LockResidualSmall) {
  const auto g = graph::kings_graph(4, 4);
  NShilRopm machine(g, quick_config(4));
  util::Rng rng(2);
  const auto r = machine.solve(rng);
  EXPECT_LT(r.max_lock_residual, 0.5);
}

TEST(NShilRopm, ThreeColoringMode) {
  // The ICCAD'24 machine solves 3-coloring with 3rd-order SHIL.
  const auto g = graph::cycle_graph(9);  // 3-chromatic
  NShilRopm machine(g, quick_config(3));
  double best = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed);
    best = std::max(best, graph::coloring_accuracy(g, machine.solve(rng).colors));
  }
  EXPECT_GE(best, 0.85);
}

TEST(NShilRopm, SolvesBipartiteWith2Shil) {
  const auto g = graph::complete_bipartite_graph(5, 5);
  NShilRopm machine(g, quick_config(2));
  double best = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    util::Rng rng(seed);
    best = std::max(best, graph::coloring_accuracy(g, machine.solve(rng).colors));
  }
  EXPECT_DOUBLE_EQ(best, 1.0);
}

TEST(NShilRopm, ReasonableQualityOn4Coloring) {
  const auto g = graph::kings_graph_square(5);
  NShilRopm machine(g, quick_config(4));
  double best = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed);
    best = std::max(best, graph::coloring_accuracy(g, machine.solve(rng).colors));
  }
  EXPECT_GE(best, 0.8);
}

TEST(NShilRopm, TotalTimeSingleStage) {
  const auto cfg = quick_config(4);
  EXPECT_NEAR(cfg.total_time_s(), 30e-9, 1e-15);
}

TEST(NShilRopm, RejectsDegenerateColorCount) {
  const auto g = graph::path_graph(2);
  NShilRopmConfig bad = quick_config(1);
  EXPECT_THROW(NShilRopm(g, bad), std::invalid_argument);
}

TEST(NShilRopm, ConfigOverridesNetworkOrder) {
  const auto g = graph::path_graph(2);
  NShilRopm machine(g, quick_config(3));
  EXPECT_EQ(machine.config().network.shil_order, 3u);
}

}  // namespace
