// End-to-end tests of the phase-domain MSROPM.
#include "msropm/core/machine.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "msropm/analysis/experiments.hpp"
#include "msropm/graph/builders.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using core::MsropmConfig;
using core::MsropmResult;
using core::MultiStagePottsMachine;

MsropmConfig fast_config(unsigned colors = 4) {
  auto cfg = analysis::machine_config_for_colors(colors);
  return cfg;
}

TEST(Machine, RejectsInvalidConfig) {
  const auto g = graph::path_graph(2);
  MsropmConfig bad = fast_config();
  bad.num_colors = 3;
  EXPECT_THROW(MultiStagePottsMachine(g, bad), std::invalid_argument);
  bad = fast_config();
  bad.schedule.anneal_s = 0.0;
  EXPECT_THROW(MultiStagePottsMachine(g, bad), std::invalid_argument);
}

TEST(Machine, ResultShape) {
  const auto g = graph::kings_graph(3, 3);
  MultiStagePottsMachine machine(g, fast_config());
  util::Rng rng(1);
  const MsropmResult r = machine.solve(rng);
  EXPECT_EQ(r.colors.size(), 9u);
  ASSERT_EQ(r.stages.size(), 2u);
  EXPECT_EQ(r.stages[0].bits.size(), 9u);
  EXPECT_EQ(r.stages[0].active_edges, g.num_edges());
  EXPECT_NEAR(r.total_time_s, 60e-9, 1e-15);
  for (auto c : r.colors) EXPECT_LT(c, 4);
}

TEST(Machine, Stage2OnlySeesUncutEdges) {
  const auto g = graph::kings_graph(4, 4);
  MultiStagePottsMachine machine(g, fast_config());
  util::Rng rng(2);
  const auto r = machine.solve(rng);
  EXPECT_EQ(r.stages[1].active_edges,
            r.stages[0].active_edges - r.stages[0].cut_edges);
}

TEST(Machine, AccuracyEqualsEdgesCutInSomeStage) {
  // An edge is properly colored iff some stage cut it: final conflicts are
  // exactly the edges never cut. This ties the divide-and-color algebra to
  // the coloring metric.
  const auto g = graph::kings_graph(4, 4);
  MultiStagePottsMachine machine(g, fast_config());
  util::Rng rng(3);
  const auto r = machine.solve(rng);
  const std::size_t cut_total = r.stages[0].cut_edges + r.stages[1].cut_edges;
  EXPECT_EQ(graph::count_satisfied_edges(g, r.colors), cut_total);
}

TEST(Machine, BitsDetermineColors) {
  const auto g = graph::kings_graph(3, 3);
  MultiStagePottsMachine machine(g, fast_config());
  util::Rng rng(4);
  const auto r = machine.solve(rng);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const core::StageBits bits{r.stages[0].bits[i], r.stages[1].bits[i]};
    EXPECT_EQ(r.colors[i], core::color_from_bits(bits));
  }
}

TEST(Machine, LockResidualSmallAfterDiscretization) {
  const auto g = graph::kings_graph(4, 4);
  MultiStagePottsMachine machine(g, fast_config());
  util::Rng rng(5);
  const auto r = machine.solve(rng);
  for (const auto& stage : r.stages) {
    EXPECT_LT(stage.max_lock_residual, 0.5)
        << "SHIL must binarize phases by readout time";
  }
}

TEST(Machine, DeterministicForSeed) {
  const auto g = graph::kings_graph(4, 4);
  MultiStagePottsMachine machine(g, fast_config());
  util::Rng rng1(42);
  util::Rng rng2(42);
  const auto r1 = machine.solve(rng1);
  const auto r2 = machine.solve(rng2);
  EXPECT_EQ(r1.colors, r2.colors);
  EXPECT_EQ(r1.stages[0].cut_edges, r2.stages[0].cut_edges);
}

TEST(Machine, DifferentSeedsExploreDifferentSolutions) {
  // The probabilistic-computation property (paper Sec. 4): iterations from
  // different initial conditions land on different solutions.
  const auto g = graph::kings_graph(5, 5);
  MultiStagePottsMachine machine(g, fast_config());
  std::set<graph::Coloring> distinct;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    util::Rng rng(seed);
    distinct.insert(machine.solve(rng).colors);
  }
  EXPECT_GE(distinct.size(), 3u);
}

TEST(Machine, SolvesBipartiteGraphPerfectly) {
  // A bipartite graph is 2-colorable; a 4-color MSROPM should satisfy every
  // edge in nearly every run (stage 1 alone can cut everything).
  const auto g = graph::complete_bipartite_graph(6, 6);
  MultiStagePottsMachine machine(g, fast_config());
  double best = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    util::Rng rng(seed);
    best = std::max(best, graph::coloring_accuracy(g, machine.solve(rng).colors));
  }
  EXPECT_DOUBLE_EQ(best, 1.0);
}

TEST(Machine, TwoColorModeIsMaxCut) {
  // K = 2 runs a single stage: a pure oscillator Ising machine.
  const auto g = graph::cycle_graph(8);
  MultiStagePottsMachine machine(g, fast_config(2));
  util::Rng rng(7);
  const auto r = machine.solve(rng);
  EXPECT_EQ(r.stages.size(), 1u);
  EXPECT_NEAR(r.total_time_s, 30e-9, 1e-15);
  // Even cycle: the machine should find the perfect alternating cut often.
  double best = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    util::Rng r2(seed);
    best = std::max(best, graph::coloring_accuracy(g, machine.solve(r2).colors));
  }
  EXPECT_DOUBLE_EQ(best, 1.0);
}

TEST(Machine, EightColorExtension) {
  // The paper's extension path: K = 8 via 3 stages (Sec. 3.1/5).
  const auto g = graph::complete_graph(8);  // needs exactly 8 colors
  MultiStagePottsMachine machine(g, fast_config(8));
  double best = 0.0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    util::Rng rng(seed);
    const auto r = machine.solve(rng);
    EXPECT_EQ(r.stages.size(), 3u);
    best = std::max(best, graph::coloring_accuracy(g, r.colors));
  }
  EXPECT_GE(best, 0.9) << "8 oscillators should spread over 8 phases";
}

TEST(Machine, StageObserverSequence) {
  const auto g = graph::kings_graph(3, 3);
  MultiStagePottsMachine machine(g, fast_config());
  util::Rng rng(9);
  std::vector<std::string> events;
  (void)machine.solve(rng, [&events](unsigned stage, const char* label,
                                     const phase::PhaseNetwork&) {
    events.push_back(std::to_string(stage) + ":" + label);
  });
  const std::vector<std::string> expected{
      "0:init",   "1:anneal", "1:lock", "1:reinit",
      "2:anneal", "2:lock"};
  EXPECT_EQ(events, expected);
}

TEST(Machine, Stage1CutAccessor) {
  const auto g = graph::kings_graph(3, 3);
  MultiStagePottsMachine machine(g, fast_config());
  util::Rng rng(10);
  const auto r = machine.solve(rng);
  const auto cut = r.stage1_cut();
  ASSERT_EQ(cut.size(), 9u);
  EXPECT_EQ(model::cut_value(g, cut), r.stages[0].cut_edges);
}

TEST(Machine, HighAccuracyOnSmallPaperInstance) {
  const auto g = graph::kings_graph_square(7);
  MultiStagePottsMachine machine(g, fast_config());
  double best = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed);
    best = std::max(best, graph::coloring_accuracy(g, machine.solve(rng).colors));
  }
  EXPECT_GE(best, 0.95) << "49-node instance must reach near-exact accuracy";
}

}  // namespace
