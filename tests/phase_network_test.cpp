// Tests for the phase-domain oscillator network: gradient-flow correctness,
// coupling behaviour, SHIL binarization, masks and integrators.
#include "msropm/phase/network.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "msropm/graph/builders.hpp"
#include "msropm/model/ising.hpp"
#include "msropm/phase/lock.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using phase::angular_distance;
using phase::PhaseNetwork;
using phase::wrap_angle;

constexpr double kPi = std::numbers::pi;

phase::NetworkParams quiet_params() {
  phase::NetworkParams p;
  p.coupling_gain = 8.0e8;
  p.shil_gain = 1.6e9;
  p.noise_stddev = 0.0;  // deterministic unless a test wants jitter
  p.dt = 1.0e-11;
  return p;
}

TEST(WrapAngle, MapsIntoPrincipalRange) {
  EXPECT_NEAR(wrap_angle(0.0), 0.0, 1e-15);
  EXPECT_NEAR(wrap_angle(2.0 * kPi), 0.0, 1e-12);
  EXPECT_NEAR(wrap_angle(-kPi / 2), 1.5 * kPi, 1e-12);
  EXPECT_NEAR(wrap_angle(5.0 * kPi), kPi, 1e-12);
}

TEST(AngularDistance, ShortestArc) {
  EXPECT_NEAR(angular_distance(0.0, kPi / 2), kPi / 2, 1e-12);
  EXPECT_NEAR(angular_distance(0.1, 2.0 * kPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(angular_distance(kPi, -kPi), 0.0, 1e-12);
}

TEST(GainRamp, PiecewiseLinearEnvelope) {
  const phase::GainRamp ramp{0.2, 0.6};
  EXPECT_DOUBLE_EQ(ramp.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ramp.value(0.2), 0.0);
  EXPECT_NEAR(ramp.value(0.4), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(ramp.value(0.6), 1.0);
  EXPECT_DOUBLE_EQ(ramp.value(1.0), 1.0);
}

TEST(PhaseNetwork, TwoAntiferromagneticOscillatorsAntiAlign) {
  const auto g = graph::path_graph(2);
  PhaseNetwork net(g, quiet_params());
  net.set_uniform_coupling(-1.0);  // B2B inverter
  net.set_couplings_active(true);
  net.set_phases({0.0, 0.7});
  util::Rng rng(1);
  net.run(20e-9, rng);
  const auto& th = net.phases();
  EXPECT_NEAR(angular_distance(th[0], th[1]), kPi, 0.02)
      << "negative coupling must push ROSCs out of phase (paper Fig. 1)";
}

TEST(PhaseNetwork, FerromagneticCouplingAligns) {
  const auto g = graph::path_graph(2);
  PhaseNetwork net(g, quiet_params());
  net.set_uniform_coupling(+1.0);
  net.set_couplings_active(true);
  net.set_phases({0.0, 2.0});
  util::Rng rng(1);
  net.run(20e-9, rng);
  const auto& th = net.phases();
  EXPECT_NEAR(angular_distance(th[0], th[1]), 0.0, 0.02);
}

TEST(PhaseNetwork, DerivativeIsNegativeEnergyGradient) {
  // Finite-difference check of theta_dot = -Kc * dE/dtheta on a frustrated
  // graph with mixed couplings.
  const auto g = graph::cycle_graph(5);
  auto params = quiet_params();
  PhaseNetwork net(g, params);
  net.set_edge_couplings({-1.0, 0.5, -0.7, 1.0, -0.3});
  net.set_couplings_active(true);
  std::vector<double> theta{0.3, 1.7, 4.0, 2.2, 5.5};
  net.set_phases(theta);

  model::IsingModel ising(g, {-1.0, 0.5, -0.7, 1.0, -0.3});
  const double h = 1e-7;
  std::vector<double> dtheta;
  net.derivative(theta, dtheta);
  for (std::size_t i = 0; i < theta.size(); ++i) {
    auto plus = theta;
    auto minus = theta;
    plus[i] += h;
    minus[i] -= h;
    const double grad =
        (ising.phase_energy(plus) - ising.phase_energy(minus)) / (2.0 * h);
    EXPECT_NEAR(dtheta[i], -params.coupling_gain * grad,
                1e-4 * params.coupling_gain)
        << "node " << i;
  }
}

TEST(PhaseNetwork, EnergyDescendsWithoutNoise) {
  const auto g = graph::kings_graph(4, 4);
  PhaseNetwork net(g, quiet_params());
  net.set_couplings_active(true);
  util::Rng rng(3);
  net.randomize_phases(rng);
  double prev = net.coupling_energy();
  for (int window = 0; window < 10; ++window) {
    net.run(1e-9, rng);
    const double now = net.coupling_energy();
    EXPECT_LE(now, prev + 1e-6) << "gradient flow must not increase energy";
    prev = now;
  }
}

TEST(PhaseNetwork, ShilBinarizesToPsiLobes) {
  const auto g = graph::Graph(4);  // no couplings, SHIL only
  auto params = quiet_params();
  PhaseNetwork net(g, params);
  net.set_couplings_active(false);
  net.set_shil_active(true);
  net.set_uniform_shil_phase(0.0);
  net.set_phases({0.3, 2.9, 3.6, 6.0});
  util::Rng rng(5);
  net.run(10e-9, rng);
  for (double th : net.phases()) {
    EXPECT_LT(phase::lock_residual(th, 0.0, 2), 0.01)
        << "order-2 SHIL must lock at {0, pi}";
  }
  // Initial phases closer to 0 go to 0; closer to pi go to pi.
  EXPECT_NEAR(angular_distance(net.phases()[0], 0.0), 0.0, 0.01);
  EXPECT_NEAR(angular_distance(net.phases()[1], kPi), 0.0, 0.01);
  EXPECT_NEAR(angular_distance(net.phases()[2], kPi), 0.0, 0.01);
  EXPECT_NEAR(angular_distance(net.phases()[3], 0.0), 0.0, 0.01);
}

class ShilPhaseShiftSweep : public ::testing::TestWithParam<double> {};

TEST_P(ShilPhaseShiftSweep, LockPointsFollowPsi) {
  // The paper's key mechanism (Fig. 2d): the binarized lobes track the SHIL
  // phase. SHIL 2 (psi = pi/2) locks at 90/270 deg.
  const double psi = GetParam();
  const auto g = graph::Graph(8);
  PhaseNetwork net(g, quiet_params());
  net.set_shil_active(true);
  net.set_uniform_shil_phase(psi);
  util::Rng rng(7);
  net.randomize_phases(rng);
  net.run(10e-9, rng);
  for (double th : net.phases()) {
    EXPECT_LT(phase::lock_residual(th, psi, 2), 0.01) << "psi = " << psi;
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, ShilPhaseShiftSweep,
                         ::testing::Values(0.0, kPi / 4, kPi / 2, 0.9, kPi,
                                           1.5 * kPi));

class ShilOrderSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShilOrderSweep, OrderNShilLocksAtNPoints) {
  // Higher-order SHIL (the ICCAD'24 ROPM mechanism) pins at N spots.
  const unsigned order = GetParam();
  const auto g = graph::Graph(16);
  auto params = quiet_params();
  params.shil_order = order;
  PhaseNetwork net(g, params);
  net.set_shil_active(true);
  net.set_uniform_shil_phase(0.0);
  util::Rng rng(11);
  net.randomize_phases(rng);
  net.run(20e-9, rng);
  for (double th : net.phases()) {
    EXPECT_LT(phase::lock_residual(th, 0.0, order), 0.02) << "order " << order;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, ShilOrderSweep, ::testing::Values(2u, 3u, 4u, 8u));

TEST(PhaseNetwork, EdgeMaskDisablesInteraction) {
  const auto g = graph::path_graph(2);
  PhaseNetwork net(g, quiet_params());
  net.set_couplings_active(true);
  net.set_edge_mask({0});
  net.set_phases({0.0, 1.0});
  util::Rng rng(1);
  net.run(10e-9, rng);
  EXPECT_NEAR(net.phases()[0], 0.0, 1e-9);
  EXPECT_NEAR(net.phases()[1], 1.0, 1e-9);
}

TEST(PhaseNetwork, GlobalCouplingSwitch) {
  const auto g = graph::path_graph(2);
  PhaseNetwork net(g, quiet_params());
  net.set_couplings_active(false);
  net.set_phases({0.0, 1.0});
  util::Rng rng(1);
  net.run(5e-9, rng);
  EXPECT_NEAR(net.phases()[1], 1.0, 1e-9);
}

TEST(PhaseNetwork, DetuneAdvancesPhase) {
  const auto g = graph::Graph(1);
  PhaseNetwork net(g, quiet_params());
  net.set_couplings_active(false);
  net.set_detune({2.0 * kPi * 1e8});  // 100 MHz offset
  net.set_phases({0.0});
  util::Rng rng(1);
  net.run(10e-9, rng);
  EXPECT_NEAR(net.phases()[0], 2.0 * kPi * 1e8 * 10e-9, 1e-3);
}

TEST(PhaseNetwork, NoiseAccumulatesDiffusively) {
  const auto g = graph::Graph(256);
  auto params = quiet_params();
  params.noise_stddev = 2.0e3;
  PhaseNetwork net(g, params);
  net.set_couplings_active(false);
  net.set_phases(std::vector<double>(256, 0.0));
  util::Rng rng(13);
  const double duration = 10e-9;
  net.run(duration, rng);
  double var = 0.0;
  for (double th : net.phases()) var += th * th;
  var /= 256.0;
  const double expected = params.noise_stddev * params.noise_stddev * duration;
  EXPECT_NEAR(var, expected, expected * 0.35);
}

TEST(PhaseNetwork, Rk4MatchesEulerInSmoothRegime) {
  const auto g = graph::cycle_graph(6);
  auto params = quiet_params();
  params.dt = 1e-12;
  PhaseNetwork euler(g, params);
  PhaseNetwork rk4(g, params);
  std::vector<double> init{0.1, 1.0, 2.5, 4.0, 5.0, 0.7};
  euler.set_phases(init);
  rk4.set_phases(init);
  euler.set_couplings_active(true);
  rk4.set_couplings_active(true);
  util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    euler.step(rng);  // zero noise -> plain explicit Euler
    rk4.step_rk4();
  }
  for (std::size_t i = 0; i < init.size(); ++i) {
    EXPECT_NEAR(euler.phases()[i], rk4.phases()[i], 5e-3);
  }
}

TEST(PhaseNetwork, ShilLevelScalesPinning) {
  const auto g = graph::Graph(1);
  PhaseNetwork net(g, quiet_params());
  net.set_shil_active(true);
  net.set_uniform_shil_phase(0.0);
  net.set_phases({0.5});
  net.set_shil_level(0.0);
  util::Rng rng(1);
  net.run(5e-9, rng);
  EXPECT_NEAR(net.phases()[0], 0.5, 1e-9) << "zero level = no SHIL force";
  net.set_shil_level(1.0);
  net.run(5e-9, rng);
  EXPECT_LT(phase::lock_residual(net.phases()[0], 0.0, 2), 0.01);
}

TEST(PhaseNetwork, RunObserverSeesMonotoneTime) {
  const auto g = graph::Graph(2);
  PhaseNetwork net(g, quiet_params());
  util::Rng rng(1);
  double last = 0.0;
  std::size_t calls = 0;
  net.run(1e-10, rng, nullptr, [&](double t, const PhaseNetwork&) {
    EXPECT_GT(t, last);
    last = t;
    ++calls;
  });
  EXPECT_EQ(calls, 10u);  // 1e-10 / 1e-11
}

TEST(PhaseNetwork, ValidatesInputSizes) {
  const auto g = graph::path_graph(3);
  PhaseNetwork net(g, quiet_params());
  EXPECT_THROW(net.set_phases({0.0}), std::invalid_argument);
  EXPECT_THROW(net.set_edge_mask({1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(net.set_shil_phases({0.0}), std::invalid_argument);
  EXPECT_THROW(net.set_edge_couplings({1.0}), std::invalid_argument);
  EXPECT_THROW(net.set_detune({0.0}), std::invalid_argument);
  EXPECT_THROW(net.set_shil_enable({1}), std::invalid_argument);
}

TEST(PhaseNetwork, PerOscillatorShilEnable) {
  const auto g = graph::Graph(2);
  PhaseNetwork net(g, quiet_params());
  net.set_shil_active(true);
  net.set_uniform_shil_phase(0.0);
  net.set_shil_enable({1, 0});
  net.set_phases({0.8, 0.8});
  util::Rng rng(1);
  net.run(10e-9, rng);
  EXPECT_LT(phase::lock_residual(net.phases()[0], 0.0, 2), 0.01);
  EXPECT_NEAR(net.phases()[1], 0.8, 1e-9);
}

}  // namespace
