// Tests for the SA max-cut solver and the best-known reference generator.
#include "msropm/solvers/maxcut_sa.hpp"

#include <gtest/gtest.h>

#include "msropm/graph/builders.hpp"
#include "msropm/model/maxcut.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using solvers::best_known_maxcut;
using solvers::MaxCutSaOptions;
using solvers::solve_maxcut_sa;

struct OptimumCase {
  const char* name;
  graph::Graph graph;
};

class SaReachesOptimum : public ::testing::TestWithParam<OptimumCase> {};

TEST_P(SaReachesOptimum, MatchesBruteForce) {
  const auto& g = GetParam().graph;
  const auto [optimal, _] = model::max_cut_bruteforce(g);
  util::Rng rng(7);
  const auto result = best_known_maxcut(g, 5, rng);
  EXPECT_EQ(result.cut, optimal) << GetParam().name;
  EXPECT_EQ(model::cut_value(g, result.sides), result.cut);
}

INSTANTIATE_TEST_SUITE_P(
    SmallGraphs, SaReachesOptimum,
    ::testing::Values(OptimumCase{"C4", graph::cycle_graph(4)},
                      OptimumCase{"C5", graph::cycle_graph(5)},
                      OptimumCase{"K5", graph::complete_graph(5)},
                      OptimumCase{"K33", graph::complete_bipartite_graph(3, 3)},
                      OptimumCase{"kings33", graph::kings_graph(3, 3)},
                      OptimumCase{"grid34", graph::grid_graph(3, 4)},
                      OptimumCase{"petersenish", graph::wheel_graph(8)}),
    [](const auto& info) { return info.param.name; });

TEST(MaxCutSa, BipartiteGraphsFullyCut) {
  const auto g = graph::grid_graph(5, 5);
  util::Rng rng(3);
  const auto result = solve_maxcut_sa(g, MaxCutSaOptions{}, rng);
  EXPECT_EQ(result.cut, g.num_edges());
}

TEST(MaxCutSa, MoreRestartsNeverWorse) {
  const auto g = graph::kings_graph(6, 6);
  util::Rng rng1(5);
  util::Rng rng2(5);
  const auto one = best_known_maxcut(g, 1, rng1);
  const auto many = best_known_maxcut(g, 8, rng2);
  EXPECT_GE(many.cut, one.cut);
}

TEST(MaxCutSa, EmptyGraph) {
  const graph::Graph g(0);
  util::Rng rng(1);
  const auto result = solve_maxcut_sa(g, MaxCutSaOptions{}, rng);
  EXPECT_EQ(result.cut, 0u);
  EXPECT_TRUE(result.sides.empty());
}

TEST(MaxCutSa, SingleNode) {
  const auto g = graph::path_graph(1);
  util::Rng rng(1);
  const auto result = solve_maxcut_sa(g, MaxCutSaOptions{}, rng);
  EXPECT_EQ(result.cut, 0u);
  EXPECT_EQ(result.sides.size(), 1u);
}

TEST(MaxCutSa, Validation) {
  const auto g = graph::path_graph(3);
  util::Rng rng(1);
  MaxCutSaOptions bad;
  bad.t_end = 10.0;
  EXPECT_THROW(solve_maxcut_sa(g, bad, rng), std::invalid_argument);
}

TEST(MaxCutSa, KingsGraphReferenceCutValue) {
  // The 7x7 King's graph row-alternating bipartition cuts 114 of 156 edges;
  // that bipartition comes from the optimal 4-coloring, so the SA reference
  // must reach at least 114 (it equals the optimum found by our tuning run).
  const auto g = graph::kings_graph_square(7);
  util::Rng rng(11);
  const auto result = best_known_maxcut(g, 10, rng);
  EXPECT_GE(result.cut, 114u);
}

}  // namespace
