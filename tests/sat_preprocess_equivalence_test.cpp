// Randomized equivalence harness for the preprocessor: on hundreds of random
// 3-CNFs (spanning under-constrained, threshold, and over-constrained
// densities), preprocessing must preserve the SAT/UNSAT verdict, and every
// model reconstructed through the Remapper must satisfy the ORIGINAL formula.
#include <gtest/gtest.h>

#include "msropm/sat/cnf.hpp"
#include "msropm/sat/preprocess.hpp"
#include "msropm/sat/solver.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm::sat;

Cnf random_3cnf(msropm::util::Rng& rng, std::size_t vars, std::size_t clauses) {
  Cnf cnf(vars);
  for (std::size_t c = 0; c < clauses; ++c) {
    Clause clause;
    // Independent draws on purpose: duplicate literals and var-repeats
    // exercise the normalizer's duplicate/tautology handling.
    while (clause.size() < 3) {
      const auto v = static_cast<Var>(rng.uniform_index(vars));
      clause.push_back(Lit(v, rng.bernoulli(0.5)));
    }
    cnf.add_clause(clause);
  }
  return cnf;
}

void check_equivalence(const Cnf& cnf, const PreprocessOptions& options,
                       const std::string& label) {
  Solver plain(cnf);
  const SolveResult expected = plain.solve();
  ASSERT_NE(expected, SolveResult::kUnknown) << label;

  const PreprocessResult pre = preprocess(cnf, options);
  if (pre.unsat) {
    EXPECT_EQ(expected, SolveResult::kUnsat)
        << label << ": preprocessing proved UNSAT on a satisfiable formula";
    return;
  }
  Solver simplified(pre.cnf());
  const SolveResult got = simplified.solve();
  ASSERT_EQ(got, expected) << label << ": verdict changed by preprocessing";
  if (got == SolveResult::kSat) {
    const auto model = pre.remapper.reconstruct(simplified.model());
    ASSERT_EQ(model.size(), cnf.num_vars()) << label;
    EXPECT_TRUE(cnf.satisfied_by(model))
        << label << ": reconstructed model violates the original formula";
  }

  // The integrated path must agree as well.
  SolverOptions solver_options;
  solver_options.presimplify = true;
  solver_options.preprocess = options;
  Solver integrated(cnf, solver_options);
  ASSERT_EQ(integrated.solve(), expected) << label << " (integrated)";
  if (expected == SolveResult::kSat) {
    EXPECT_TRUE(cnf.satisfied_by(integrated.model())) << label << " (integrated)";
  }
}

TEST(PreprocessEquivalence, RandomThreeCnfFullPipeline) {
  msropm::util::Rng rng(20260730);
  int trials = 0;
  for (const double ratio : {1.5, 3.0, 4.26, 6.0, 9.0}) {
    for (int t = 0; t < 45; ++t) {
      const std::size_t vars = 12 + rng.uniform_index(28);  // 12..39
      const auto clauses =
          static_cast<std::size_t>(ratio * static_cast<double>(vars)) + 1;
      const Cnf cnf = random_3cnf(rng, vars, clauses);
      check_equivalence(cnf, PreprocessOptions{},
                        "ratio=" + std::to_string(ratio) +
                            " trial=" + std::to_string(t));
      ++trials;
    }
  }
  EXPECT_GE(trials, 200) << "harness must cover 200+ formulas";
}

TEST(PreprocessEquivalence, EachTechniqueInIsolation) {
  // Narrow options isolate bugs to a single technique when this fails.
  struct Config {
    const char* name;
    PreprocessOptions options;
  };
  std::vector<Config> configs;
  {
    PreprocessOptions base;
    base.unit_propagation = base.pure_literals = base.subsumption =
        base.self_subsumption = base.blocked_clauses =
            base.variable_elimination = false;
    Config up{"up", base};
    up.options.unit_propagation = true;
    Config pure{"pure", base};
    pure.options.pure_literals = true;
    Config sub{"subsume", base};
    sub.options.subsumption = sub.options.self_subsumption = true;
    Config bce{"bce", base};
    bce.options.blocked_clauses = true;
    Config bve{"bve", base};
    bve.options.variable_elimination = true;
    configs = {up, pure, sub, bce, bve};
  }
  msropm::util::Rng rng(99);
  for (const auto& config : configs) {
    for (int t = 0; t < 12; ++t) {
      const std::size_t vars = 10 + rng.uniform_index(15);
      const Cnf cnf = random_3cnf(rng, vars, 4 * vars);
      check_equivalence(cnf, config.options,
                        std::string(config.name) + " trial=" + std::to_string(t));
    }
  }
}

TEST(PreprocessEquivalence, GenerousBveGrowth) {
  // A nonzero growth cap exercises eliminations that temporarily enlarge the
  // clause database.
  PreprocessOptions options;
  options.bve_clause_growth = 8;
  options.bve_max_occurrences = 40;
  msropm::util::Rng rng(7);
  for (int t = 0; t < 25; ++t) {
    const std::size_t vars = 10 + rng.uniform_index(20);
    const Cnf cnf = random_3cnf(rng, vars, 3 * vars + rng.uniform_index(vars));
    check_equivalence(cnf, options, "growth trial=" + std::to_string(t));
  }
}

TEST(PreprocessEquivalence, MixedClauseLengths) {
  // Mixed unit/binary/long clauses hit the unit queue and strengthening
  // paths harder than uniform 3-CNF.
  msropm::util::Rng rng(4242);
  for (int t = 0; t < 40; ++t) {
    const std::size_t vars = 8 + rng.uniform_index(16);
    Cnf cnf(vars);
    const std::size_t clauses = 3 * vars;
    for (std::size_t c = 0; c < clauses; ++c) {
      const std::size_t len = 1 + rng.uniform_index(5);
      Clause clause;
      while (clause.size() < len) {
        const auto v = static_cast<Var>(rng.uniform_index(vars));
        clause.push_back(Lit(v, rng.bernoulli(0.5)));
      }
      cnf.add_clause(clause);
    }
    check_equivalence(cnf, PreprocessOptions{},
                      "mixed trial=" + std::to_string(t));
  }
}

}  // namespace
