// Tests for the phase trajectory recorder.
#include "msropm/phase/trajectory.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/graph/builders.hpp"
#include "msropm/phase/network.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using phase::PhaseNetwork;
using phase::TrajectoryRecorder;

phase::NetworkParams test_params() {
  phase::NetworkParams p;
  p.noise_stddev = 0.0;
  p.dt = 1e-11;
  return p;
}

TEST(TrajectoryRecorder, RejectsZeroStride) {
  EXPECT_THROW(TrajectoryRecorder(0), std::invalid_argument);
}

TEST(TrajectoryRecorder, RecordsEveryStep) {
  const auto g = graph::path_graph(2);
  PhaseNetwork net(g, test_params());
  TrajectoryRecorder rec(1);
  util::Rng rng(1);
  net.run(1e-10, rng, nullptr, std::ref(rec));
  EXPECT_EQ(rec.samples().size(), 10u);
  EXPECT_EQ(rec.samples().front().phases.size(), 2u);
}

TEST(TrajectoryRecorder, StrideSubsamples) {
  const auto g = graph::path_graph(2);
  PhaseNetwork net(g, test_params());
  TrajectoryRecorder rec(5);
  util::Rng rng(1);
  net.run(1e-10, rng, nullptr, std::ref(rec));
  EXPECT_EQ(rec.samples().size(), 2u);
}

TEST(TrajectoryRecorder, TimeOffsetsStageBoundaries) {
  const auto g = graph::path_graph(2);
  PhaseNetwork net(g, test_params());
  TrajectoryRecorder rec(1);
  util::Rng rng(1);
  net.run(5e-11, rng, nullptr, std::ref(rec));
  rec.set_time_offset(5e-11);
  net.run(5e-11, rng, nullptr, std::ref(rec));
  ASSERT_EQ(rec.samples().size(), 10u);
  for (std::size_t i = 1; i < rec.samples().size(); ++i) {
    EXPECT_GT(rec.samples()[i].time_s, rec.samples()[i - 1].time_s);
  }
  EXPECT_NEAR(rec.samples().back().time_s, 1e-10, 1e-13);
}

TEST(TrajectoryRecorder, RecordsCouplingEnergy) {
  const auto g = graph::path_graph(2);
  PhaseNetwork net(g, test_params());
  net.set_phases({0.0, 3.14159});
  net.set_couplings_active(true);
  TrajectoryRecorder rec(1);
  util::Rng rng(1);
  net.run(2e-11, rng, nullptr, std::ref(rec));
  // AF edge, anti-phase: energy ~ -1.
  EXPECT_NEAR(rec.samples().back().coupling_energy, -1.0, 1e-3);
}

TEST(TrajectoryRecorder, CsvFormat) {
  const auto g = graph::path_graph(2);
  PhaseNetwork net(g, test_params());
  TrajectoryRecorder rec(1);
  util::Rng rng(1);
  net.run(3e-11, rng, nullptr, std::ref(rec));
  const auto csv = rec.to_csv();
  EXPECT_NE(csv.find("time_ns,coupling_energy,phase_0_deg,phase_1_deg"),
            std::string::npos);
  std::size_t lines = 0;
  for (char ch : csv) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4u);  // header + 3 samples
}

TEST(TrajectoryRecorder, ClearResets) {
  const auto g = graph::path_graph(2);
  PhaseNetwork net(g, test_params());
  TrajectoryRecorder rec(1);
  util::Rng rng(1);
  net.run(2e-11, rng, nullptr, std::ref(rec));
  rec.clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.time_offset(), 0.0);
}

}  // namespace
