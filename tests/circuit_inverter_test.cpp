// Tests for the behavioural inverter model.
#include "msropm/circuit/inverter.hpp"

#include <gtest/gtest.h>

namespace {

using namespace msropm::circuit;

TEST(InverterVtc, InvertsRails) {
  const InverterParams p;
  EXPECT_NEAR(inverter_vtc(0.0, p), p.vdd, 0.01);
  EXPECT_NEAR(inverter_vtc(p.vdd, p), 0.0, 0.01);
}

TEST(InverterVtc, MonotonicallyDecreasing) {
  const InverterParams p;
  double prev = inverter_vtc(0.0, p);
  for (double vin = 0.05; vin <= 1.0; vin += 0.05) {
    const double out = inverter_vtc(vin, p);
    EXPECT_LT(out, prev);
    prev = out;
  }
}

TEST(InverterVtc, ThresholdIsMidpoint) {
  const InverterParams p;
  EXPECT_NEAR(inverter_vtc(p.threshold, p), p.vdd / 2, 1e-9);
}

TEST(InverterVtc, SkewedThresholdModels4to1Sizing) {
  // The paper sizes PMOS:NMOS 4:1, pushing the switching point above VDD/2.
  const InverterParams p;
  EXPECT_GT(p.threshold, p.vdd / 2);
}

TEST(InverterDvdt, DrivesTowardTarget) {
  const InverterParams p;
  // Input low -> target high; below-target output must rise.
  EXPECT_GT(inverter_dvdt(0.0, 0.2, p), 0.0);
  // Input high -> target low; above-target output must fall.
  EXPECT_LT(inverter_dvdt(p.vdd, 0.8, p), 0.0);
  // At the target, derivative vanishes.
  EXPECT_NEAR(inverter_dvdt(0.0, inverter_vtc(0.0, p), p), 0.0, 1e-9);
}

TEST(RingFrequencyEstimate, ScalesInverselyWithStagesAndTau) {
  InverterParams p;
  p.tau = 3e-11;
  const double f11 = estimate_ring_frequency(p, 11);
  const double f5 = estimate_ring_frequency(p, 5);
  EXPECT_GT(f5, f11);
  p.tau = 6e-11;
  EXPECT_NEAR(estimate_ring_frequency(p, 11), f11 / 2, f11 * 0.01);
}

TEST(Calibration, HitsRequestedFrequencyEstimate) {
  const auto p = calibrate_for_frequency(1.3e9, 11);
  EXPECT_NEAR(estimate_ring_frequency(p, 11), 1.3e9, 1.3e9 * 1e-6);
  EXPECT_GT(p.tau, 0.0);
}

}  // namespace
