// Tests for the simulate-and-refine calibration path: measured ring
// frequency, tau refinement, and the REF lock-offset calibration that
// paper_defaults() performs. These guard the zero-detuning property the
// SHIL capture depends on (lock range must exceed residual detuning).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "msropm/circuit/fabric.hpp"
#include "msropm/circuit/rosc.hpp"
#include "msropm/graph/graph.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using circuit::calibrate_for_frequency;
using circuit::calibrate_for_frequency_simulated;
using circuit::estimate_ring_frequency;
using circuit::FabricParams;
using circuit::InverterParams;
using circuit::measure_ring_frequency;

constexpr double kPi = std::numbers::pi;

TEST(MeasureRingFrequency, AgreesWithAnalyticEstimateWithinPercents) {
  const InverterParams p = calibrate_for_frequency(1.3e9, 11);
  const double measured = measure_ring_frequency(p, 11);
  const double estimated = estimate_ring_frequency(p, 11);
  EXPECT_NEAR(measured / estimated, 1.0, 0.03);
}

TEST(MeasureRingFrequency, ScalesInverselyWithTau) {
  InverterParams p = calibrate_for_frequency(1.3e9, 11);
  const double f1 = measure_ring_frequency(p, 11);
  p.tau *= 2.0;
  const double f2 = measure_ring_frequency(p, 11);
  EXPECT_NEAR(f1 / f2, 2.0, 0.05);
}

TEST(MeasureRingFrequency, MoreStagesOscillateSlower) {
  const InverterParams p = calibrate_for_frequency(1.3e9, 11);
  EXPECT_GT(measure_ring_frequency(p, 7), measure_ring_frequency(p, 11));
  EXPECT_GT(measure_ring_frequency(p, 11), measure_ring_frequency(p, 15));
}

TEST(CalibrateSimulated, HitsTargetWithinTightTolerance) {
  for (const double target : {1.0e9, 1.3e9, 2.0e9}) {
    InverterParams seed = calibrate_for_frequency(target, 11);
    const InverterParams refined =
        calibrate_for_frequency_simulated(target, 11, seed);
    const double achieved = measure_ring_frequency(refined, 11);
    EXPECT_NEAR(achieved / target, 1.0, 2e-3) << "target " << target;
  }
}

TEST(PaperDefaults, RingFreeRunsAtHalfShilFrequency) {
  const auto p = FabricParams::paper_defaults();
  const double f = measure_ring_frequency(p.inverter, p.stages, p.dt);
  EXPECT_NEAR(f, p.shil_frequency_hz / 2.0, p.shil_frequency_hz / 2.0 * 2e-3);
}

TEST(PaperDefaults, ReferenceOffsetPutsLockLobesOnZeroAndPi) {
  // A single oscillator under SHIL 1 must read ~0 or ~pi through the
  // calibrated REF; this is the Sec. 3.3 "REF edges at the lock phases".
  const graph::Graph g(4);
  circuit::RoscFabric fabric(g, FabricParams::paper_defaults());
  util::Rng rng(31);
  fabric.randomize(rng);
  fabric.run(6e-9);
  fabric.set_shil_enabled(true);
  fabric.run(10e-9);
  for (std::size_t o = 0; o < 4; ++o) {
    double residual = std::fmod(fabric.phase(o), kPi);
    residual = std::min(residual, kPi - residual);
    EXPECT_LT(residual, 0.15) << "osc " << o;
  }
}

TEST(PaperDefaults, IsCachedAndConsistent) {
  const auto a = FabricParams::paper_defaults();
  const auto b = FabricParams::paper_defaults();
  EXPECT_DOUBLE_EQ(a.inverter.tau, b.inverter.tau);
  EXPECT_DOUBLE_EQ(a.reference_offset_s, b.reference_offset_s);
  EXPECT_GE(a.reference_offset_s, 0.0);
  EXPECT_LT(a.reference_offset_s, a.reference_period_s);
}

TEST(ShilLockOffset, Shil2LocksQuarterPeriodFromShil1) {
  // Two single-oscillator fabrics differing only in SHIL_SEL: the locked
  // phases must sit pi/2 apart (Fig. 2d).
  const graph::Graph g(1);
  const auto params = FabricParams::paper_defaults();
  circuit::RoscFabric f1(g, params);
  circuit::RoscFabric f2(g, params);
  f1.run(6e-9);
  f2.run(6e-9);
  f1.set_shil_select_uniform(0);
  f2.set_shil_select_uniform(1);
  f1.set_shil_enabled(true);
  f2.set_shil_enabled(true);
  f1.run(12e-9);
  f2.run(12e-9);
  double delta = std::fmod(f2.phase(0) - f1.phase(0) + 4.0 * kPi, kPi);
  delta = std::min(delta, kPi - delta);
  EXPECT_NEAR(delta, kPi / 2.0, 0.15);
}

}  // namespace
