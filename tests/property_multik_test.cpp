// Parameterized property suites across color counts, random instances and
// engines: the structural invariants of the multi-stage plan must hold for
// every K = 2^m, every seed, and both physics backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "msropm/analysis/experiments.hpp"
#include "msropm/core/circuit_machine.hpp"
#include "msropm/core/machine.hpp"
#include "msropm/core/shil_plan.hpp"
#include "msropm/graph/builders.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/sat/coloring_encoder.hpp"
#include "msropm/solvers/dsatur.hpp"
#include "msropm/solvers/tabucol.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;

// ---------------------------------------------------------------------------
// Invariants across color counts K = 2^m.
// ---------------------------------------------------------------------------

class ColorCountSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ColorCountSweep, MachineInvariantsHoldForEveryK) {
  const unsigned k = GetParam();
  const auto g = graph::kings_graph_square(5);
  core::MsropmConfig config = analysis::default_machine_config();
  config.num_colors = k;
  const core::MultiStagePottsMachine machine(g, config);
  util::Rng rng(1000 + k);
  const auto r = machine.solve(rng);

  // Stage count and schedule length follow the plan.
  ASSERT_EQ(r.stages.size(), core::stages_for_colors(k));
  EXPECT_DOUBLE_EQ(r.total_time_s, config.total_time_s());

  // Every color is in range; the color of node i is exactly the composition
  // of its per-stage readout bits.
  ASSERT_EQ(r.colors.size(), g.num_nodes());
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_LT(r.colors[i], k);
    core::StageBits bits;
    for (const auto& st : r.stages) bits.push_back(st.bits[i]);
    EXPECT_EQ(r.colors[i], core::color_from_bits(bits)) << "node " << i;
  }

  // Monotone partition refinement: once an edge is cut at stage s, its
  // endpoints' colors differ (disjoint color subtrees).
  for (std::size_t s = 0; s < r.stages.size(); ++s) {
    for (const auto& e : g.edges()) {
      bool cut_before_or_at_s = false;
      for (std::size_t t = 0; t <= s; ++t) {
        if (r.stages[t].bits[e.u] != r.stages[t].bits[e.v]) {
          cut_before_or_at_s = true;
          break;
        }
      }
      if (cut_before_or_at_s) {
        EXPECT_NE(r.colors[e.u], r.colors[e.v]);
      }
    }
  }
}

TEST_P(ColorCountSweep, ActiveEdgeCountsShrinkMonotonically) {
  const unsigned k = GetParam();
  const auto g = graph::kings_graph_square(5);
  core::MsropmConfig config = analysis::default_machine_config();
  config.num_colors = k;
  const core::MultiStagePottsMachine machine(g, config);
  util::Rng rng(2000 + k);
  const auto r = machine.solve(rng);
  std::size_t prev_active = g.num_edges();
  for (const auto& st : r.stages) {
    EXPECT_LE(st.active_edges, prev_active);
    EXPECT_LE(st.cut_edges, st.active_edges);
    prev_active = st.active_edges - st.cut_edges;
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, ColorCountSweep,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

// ---------------------------------------------------------------------------
// SHIL plan: the K lock phases are exactly the K-th roots of unity.
// ---------------------------------------------------------------------------

class ShilPlanSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShilPlanSweep, FinalPhasesAreEquallySpaced) {
  const unsigned k = GetParam();
  const unsigned m = core::stages_for_colors(k);
  std::set<int> phase_slots;
  for (std::uint32_t pattern = 0; pattern < k; ++pattern) {
    core::StageBits bits(m);
    for (unsigned j = 0; j < m; ++j) {
      bits[j] = static_cast<std::uint8_t>((pattern >> j) & 1u);
    }
    const double theta = core::final_phase_from_bits(bits);
    const double slot = theta / (2.0 * 3.14159265358979323846 /
                                 static_cast<double>(k));
    const auto idx = static_cast<int>(std::lround(slot));
    EXPECT_NEAR(slot, idx, 1e-9) << "phase not on the K-grid";
    phase_slots.insert(((idx % static_cast<int>(k)) + static_cast<int>(k)) %
                       static_cast<int>(k));
  }
  EXPECT_EQ(phase_slots.size(), k) << "bit patterns must cover all K phases";
}

TEST_P(ShilPlanSweep, ColorBitsBijection) {
  const unsigned k = GetParam();
  const unsigned m = core::stages_for_colors(k);
  std::set<std::uint8_t> colors;
  for (std::uint32_t pattern = 0; pattern < k; ++pattern) {
    core::StageBits bits(m);
    for (unsigned j = 0; j < m; ++j) {
      bits[j] = static_cast<std::uint8_t>((pattern >> j) & 1u);
    }
    const auto color = core::color_from_bits(bits);
    EXPECT_LT(color, k);
    colors.insert(color);
    EXPECT_EQ(core::bits_from_color(color, m), bits);
  }
  EXPECT_EQ(colors.size(), k);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, ShilPlanSweep,
                         ::testing::Values(2u, 4u, 8u, 16u, 64u, 128u));

// ---------------------------------------------------------------------------
// Planted-instance fuzzing: generated 4-colorable graphs must be solved
// exactly by the SAT baseline and properly by the heuristic baselines.
// ---------------------------------------------------------------------------

graph::Graph planted_four_colorable(std::size_t n, double p, util::Rng& rng) {
  // Random 4-partition; keep only cross-partition edges of an ER draw.
  std::vector<unsigned> part(n);
  for (auto& x : part) x = static_cast<unsigned>(rng.uniform_index(4));
  graph::GraphBuilder builder(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (part[u] != part[v] && rng.uniform(0.0, 1.0) < p) {
        builder.add_edge(static_cast<graph::NodeId>(u),
                         static_cast<graph::NodeId>(v));
      }
    }
  }
  return builder.build();
}

class PlantedInstanceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlantedInstanceSweep, SatSolvesPlantedInstancesExactly) {
  util::Rng rng(GetParam());
  const auto g = planted_four_colorable(40, 0.3, rng);
  const auto coloring = sat::solve_exact_coloring(g, 4);
  ASSERT_TRUE(coloring.has_value());
  EXPECT_TRUE(graph::is_proper_coloring(g, *coloring, 4));
}

TEST_P(PlantedInstanceSweep, TabucolReachesProperColoring) {
  util::Rng rng(GetParam() + 17);
  const auto g = planted_four_colorable(40, 0.25, rng);
  solvers::TabucolOptions opts;
  const auto r = solvers::solve_tabucol(g, opts, rng);
  EXPECT_TRUE(graph::is_proper_coloring(g, r.colors, 4));
}

TEST_P(PlantedInstanceSweep, DsaturUsesBoundedColors) {
  util::Rng rng(GetParam() + 31);
  const auto g = planted_four_colorable(50, 0.2, rng);
  const auto r = solvers::solve_dsatur(g);
  EXPECT_TRUE(graph::is_proper_coloring(g, r.colors, r.colors_used));
  // Greedy bound: at most max_degree + 1 colors.
  EXPECT_LE(r.colors_used, g.max_degree() + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlantedInstanceSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------------
// Cross-engine agreement: phase-domain and circuit-level machines satisfy
// the same structural invariants on the same instance.
// ---------------------------------------------------------------------------

class CrossEngineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossEngineSweep, CircuitMachineMatchesPlanInvariants) {
  const auto g = graph::kings_graph(2, 3);
  core::CircuitMsropmConfig config;
  config.schedule.init_s = 3e-9;
  config.schedule.anneal_s = 8e-9;
  config.schedule.discretize_s = 4e-9;
  config.schedule.reinit_s = 3e-9;
  const core::CircuitMsropm machine(g, config);
  util::Rng rng(GetParam());
  const auto r = machine.solve(rng);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    ASSERT_LT(r.colors[i], 4);
    // Group A (bit 0) must use colors {0, 2}; group B colors {1, 3}.
    EXPECT_EQ(r.colors[i] % 2, r.stage1_bits[i]) << "node " << i;
  }
  for (const auto& e : g.edges()) {
    if (r.stage1_bits[e.u] != r.stage1_bits[e.v]) {
      EXPECT_NE(r.colors[e.u], r.colors[e.v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngineSweep,
                         ::testing::Values(3u, 9u, 27u, 81u));

// ---------------------------------------------------------------------------
// Process variation: moderate frequency mismatch must not break the plan
// invariants (colors still compose from bits), only degrade accuracy.
// ---------------------------------------------------------------------------

class MismatchSweep : public ::testing::TestWithParam<double> {};

TEST_P(MismatchSweep, InvariantsSurviveFrequencyMismatch) {
  const double sigma_hz = GetParam();
  const auto g = graph::kings_graph_square(5);
  core::MsropmConfig config = analysis::default_machine_config();
  config.network.frequency_mismatch_stddev_hz = sigma_hz;
  const core::MultiStagePottsMachine machine(g, config);
  util::Rng rng(77);
  const auto r = machine.solve(rng);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    ASSERT_LT(r.colors[i], 4);
    core::StageBits bits{r.stages[0].bits[i], r.stages[1].bits[i]};
    EXPECT_EQ(r.colors[i], core::color_from_bits(bits));
  }
  // Within-lock-range mismatch keeps quality near nominal.
  if (sigma_hz <= 10e6) {
    EXPECT_GE(graph::coloring_accuracy(g, r.colors), 0.85);
  }
}

INSTANTIATE_TEST_SUITE_P(SigmaHz, MismatchSweep,
                         ::testing::Values(0.0, 1e6, 10e6, 100e6));

}  // namespace
