// Tests for the solver portfolio and the batch sweep engine: strategy
// plumbing, fixed-seed determinism, verdict identity across worker counts,
// UNSAT proofs, timeouts, and the report table.
#include "msropm/portfolio/portfolio.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "msropm/graph/builders.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/portfolio/sweep.hpp"

namespace {

using namespace msropm;
using portfolio::PortfolioOptions;
using portfolio::PortfolioResult;
using portfolio::Schedule;
using portfolio::StrategyKind;
using portfolio::Verdict;

std::vector<portfolio::InstanceSpec> small_grid() {
  std::vector<portfolio::InstanceSpec> instances;
  for (const std::size_t side : {5, 7, 9, 11}) {
    instances.push_back(portfolio::kings_instance(side, 4));
  }
  for (const std::size_t side : {4, 6, 8}) {
    instances.push_back(portfolio::kings_instance(side, 3));  // UNSAT
  }
  return instances;
}

TEST(Portfolio, StrategyNamesRoundTrip) {
  for (const auto kind :
       {StrategyKind::kDsatur, StrategyKind::kCdcl,
        StrategyKind::kCdclPresimplify, StrategyKind::kCdclIncremental,
        StrategyKind::kTabucol, StrategyKind::kSaPotts}) {
    const auto parsed = portfolio::strategy_from_string(portfolio::to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(portfolio::strategy_from_string("minisat").has_value());
}

TEST(Portfolio, IncrementalStrategyDecidesBothVerdicts) {
  // cdcl-inc (opt-in, not in the default lineup) sweeps K incrementally:
  // SAT instances must come back with a verified proper coloring — using
  // the MINIMAL palette — and UNSAT instances with a proof (chromatic above
  // the requested K: on a King's graph the 4-clique refutes K=3 from the
  // clique bound alone).
  PortfolioOptions options;
  options.strategies.assign(1, portfolio::StrategyConfig{});
  options.strategies[0].kind = StrategyKind::kCdclIncremental;

  const auto g = graph::kings_graph_square(7);
  const PortfolioResult sat_result = portfolio::solve_portfolio(g, 6, options);
  EXPECT_EQ(sat_result.verdict, Verdict::kColored);
  ASSERT_TRUE(sat_result.coloring.has_value());
  // The sweep finds the chromatic number (4), not just any 6-coloring.
  EXPECT_TRUE(graph::is_proper_coloring(g, *sat_result.coloring, 4));

  const PortfolioResult unsat_result =
      portfolio::solve_portfolio(g, 3, options);
  EXPECT_EQ(unsat_result.verdict, Verdict::kUnsat);
  EXPECT_FALSE(unsat_result.coloring.has_value());
}

TEST(Portfolio, DefaultLineupCoversEveryKindCheapestFirst) {
  const auto strategies = portfolio::default_strategies();
  ASSERT_EQ(strategies.size(), 5u);
  EXPECT_EQ(strategies.front().kind, StrategyKind::kDsatur);
}

TEST(Portfolio, SolvesSatisfiableInstance) {
  const auto g = graph::kings_graph_square(8);
  const PortfolioResult result = portfolio::solve_portfolio(g, 4);
  EXPECT_EQ(result.verdict, Verdict::kColored);
  ASSERT_TRUE(result.coloring.has_value());
  EXPECT_TRUE(graph::is_proper_coloring(g, *result.coloring, 4));
  ASSERT_GE(result.winner, 0);
  EXPECT_LT(result.winner, 5);
}

TEST(Portfolio, ProvesUnsatInstance) {
  // King's graphs contain 4-cliques: no 3-coloring exists, and only the
  // CDCL strategies can prove that.
  const auto g = graph::kings_graph_square(6);
  const PortfolioResult result = portfolio::solve_portfolio(g, 3);
  EXPECT_EQ(result.verdict, Verdict::kUnsat);
  EXPECT_FALSE(result.coloring.has_value());
  ASSERT_GE(result.winner, 0);
  const auto winner_kind =
      portfolio::default_strategies()[static_cast<std::size_t>(result.winner)].kind;
  EXPECT_TRUE(winner_kind == StrategyKind::kCdcl ||
              winner_kind == StrategyKind::kCdclPresimplify);
}

TEST(Portfolio, ValidatesArguments) {
  const auto g = graph::kings_graph_square(4);
  PortfolioOptions options;
  options.strategies.clear();
  EXPECT_THROW((void)portfolio::solve_portfolio(g, 4, options),
               std::invalid_argument);
  EXPECT_THROW((void)portfolio::solve_portfolio(g, 1), std::invalid_argument);
  std::vector<portfolio::PortfolioJob> jobs(1);  // null graph
  EXPECT_THROW((void)portfolio::run_portfolio_batch(jobs, PortfolioOptions{}),
               std::invalid_argument);
}

TEST(Portfolio, SerialRunsAreDeterministic) {
  const auto instances = small_grid();
  portfolio::SweepOptions options;
  options.portfolio.master_seed = 1234;
  const portfolio::SweepRunner runner(options);
  const auto first = runner.run(instances);
  const auto second = runner.run(instances);
  ASSERT_EQ(first.instances.size(), second.instances.size());
  for (std::size_t i = 0; i < first.instances.size(); ++i) {
    const PortfolioResult& a = first.instances[i];
    const PortfolioResult& b = second.instances[i];
    EXPECT_EQ(a.verdict, b.verdict) << instances[i].name;
    EXPECT_EQ(a.winner, b.winner) << instances[i].name;
    EXPECT_EQ(a.coloring, b.coloring) << instances[i].name;
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t s = 0; s < a.outcomes.size(); ++s) {
      EXPECT_EQ(a.outcomes[s].ran, b.outcomes[s].ran);
      EXPECT_EQ(a.outcomes[s].verdict, b.outcomes[s].verdict);
      EXPECT_EQ(a.outcomes[s].conflicts, b.outcomes[s].conflicts);
    }
  }
}

TEST(Portfolio, VerdictsIdenticalAtAnyWorkerCount) {
  const auto instances = small_grid();
  portfolio::SweepOptions serial_options;
  const auto reference =
      portfolio::SweepRunner(serial_options).run(instances);
  for (const std::size_t workers : {2, 4}) {
    for (const auto schedule :
         {Schedule::kStrategyMajor, Schedule::kInstanceMajor}) {
      portfolio::SweepOptions options;
      options.portfolio.num_workers = workers;
      options.schedule = schedule;
      const auto result = portfolio::SweepRunner(options).run(instances);
      ASSERT_EQ(result.instances.size(), reference.instances.size());
      for (std::size_t i = 0; i < result.instances.size(); ++i) {
        EXPECT_EQ(result.instances[i].verdict, reference.instances[i].verdict)
            << instances[i].name << " at " << workers << " workers";
        if (result.instances[i].verdict == Verdict::kColored) {
          ASSERT_TRUE(result.instances[i].coloring.has_value());
          EXPECT_TRUE(graph::is_proper_coloring(instances[i].graph,
                                                *result.instances[i].coloring,
                                                instances[i].num_colors));
        }
      }
    }
  }
}

TEST(Portfolio, HeuristicOnlyLineupCannotDecideUnsat) {
  const auto g = graph::kings_graph_square(5);
  PortfolioOptions options;
  options.strategies.clear();
  for (const auto kind :
       {StrategyKind::kDsatur, StrategyKind::kTabucol, StrategyKind::kSaPotts}) {
    portfolio::StrategyConfig config;
    config.kind = kind;
    config.tabu_iterations = 500;
    config.sa_sweeps = 50;
    options.strategies.push_back(config);
  }
  const PortfolioResult result = portfolio::solve_portfolio(g, 3, options);
  EXPECT_EQ(result.verdict, Verdict::kUnknown);
  EXPECT_EQ(result.winner, -1);
  for (const auto& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.ran);
    EXPECT_EQ(outcome.verdict, Verdict::kUnknown);
    EXPECT_GT(outcome.conflicts, 0u);
  }
}

TEST(Portfolio, TimeoutCancelsBudgetBoundStrategies) {
  // Only budget-heavy heuristics on an infeasible palette: without the
  // timeout this would grind for a very long time; with it, both strategies
  // must come back cancelled and the verdict stays unknown.
  const auto g = graph::kings_graph_square(32);
  PortfolioOptions options;
  options.strategies.clear();
  for (const auto kind : {StrategyKind::kTabucol, StrategyKind::kSaPotts}) {
    portfolio::StrategyConfig config;
    config.kind = kind;
    config.tabu_iterations = 2000000000;
    config.sa_sweeps = 2000000000;
    options.strategies.push_back(config);
  }
  options.timeout_ms = 30;
  const PortfolioResult result = portfolio::solve_portfolio(g, 3, options);
  EXPECT_EQ(result.verdict, Verdict::kUnknown);
  for (const auto& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.ran);
    EXPECT_TRUE(outcome.cancelled);
  }
}

TEST(Portfolio, DuplicatedSlotsBothRunOnUndecidableInstance) {
  // Two identically-configured tabucol slots are legal; each draws its own
  // RNG stream from the master seed (stream id = slot index), and on an
  // instance neither can decide, both must run to completion and report.
  const auto g = graph::kings_graph_square(5);
  PortfolioOptions options;
  options.strategies.clear();
  for (int copy = 0; copy < 2; ++copy) {
    portfolio::StrategyConfig config;
    config.kind = StrategyKind::kTabucol;
    config.tabu_iterations = 300;
    options.strategies.push_back(config);
  }
  const PortfolioResult result = portfolio::solve_portfolio(g, 3, options);
  EXPECT_EQ(result.verdict, Verdict::kUnknown);
  ASSERT_EQ(result.outcomes.size(), 2u);
  for (const auto& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.ran);
    EXPECT_GT(outcome.conflicts, 0u);
  }
}

TEST(Sweep, ReportTableHasOneRowPerInstance) {
  const auto instances = small_grid();
  const portfolio::SweepRunner runner;
  const auto result = runner.run(instances);
  EXPECT_EQ(result.decided(), instances.size());
  const auto table = runner.report(instances, result);
  EXPECT_EQ(table.rows(), instances.size());
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("kings_5x5_K4"), std::string::npos);
  EXPECT_NE(rendered.find("UNSAT"), std::string::npos);
  EXPECT_NE(rendered.find("dsatur"), std::string::npos);
}

TEST(Sweep, KingsInstanceSpecIsWellFormed) {
  const auto spec = portfolio::kings_instance(7, 4);
  EXPECT_EQ(spec.name, "kings_7x7_K4");
  EXPECT_EQ(spec.graph.num_nodes(), 49u);
  EXPECT_EQ(spec.num_colors, 4u);
}

}  // namespace
