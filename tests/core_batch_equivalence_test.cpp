// THE batched-solve equivalence gate: a MultiStagePottsMachine::solve_batch
// of R replicas must be bit-identical to R serial solve() calls consuming the
// same per-replica RNG streams -- final colorings, per-stage bits/cuts/
// residuals, AND the full phase vectors at every stage boundary. Exercised
// across R in {1, 3, 40}, with and without jitter/mismatch, and for both
// integrators. Also gates core::run_iterations: summaries are invariant to
// batch_size and thread count, and the stop token truncates to a clean
// completed prefix.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "msropm/core/machine.hpp"
#include "msropm/core/runner.hpp"
#include "msropm/graph/builders.hpp"
#include "msropm/util/rng.hpp"
#include "msropm/util/stop_token.hpp"

namespace {

using namespace msropm;
using core::MsropmConfig;
using core::MsropmResult;
using core::MultiStagePottsMachine;

MsropmConfig machine_config(double noise, double mismatch_hz,
                            phase::Integrator integrator) {
  MsropmConfig config;
  config.num_colors = 4;
  config.schedule = core::StageSchedule::paper_default();
  config.network.coupling_gain = 8.0e8;
  config.network.shil_gain = 1.6e9;
  config.network.shil_order = 2;
  config.network.noise_stddev = noise;
  config.network.frequency_mismatch_stddev_hz = mismatch_hz;
  config.network.dt = 2.0e-11;
  config.network.integrator = integrator;
  config.shil_ramp = phase::GainRamp{0.0, 0.5};
  config.couplings_during_lock = true;
  return config;
}

/// Stage-boundary phase snapshots keyed by (stage, label) in callback order.
using Snapshots = std::vector<std::pair<std::string, std::vector<double>>>;

void expect_results_identical(const MsropmResult& a, const MsropmResult& b,
                              std::size_t replica) {
  ASSERT_EQ(a.colors.size(), b.colors.size());
  for (std::size_t i = 0; i < a.colors.size(); ++i) {
    ASSERT_EQ(a.colors[i], b.colors[i]) << "replica " << replica << " node " << i;
  }
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    ASSERT_EQ(a.stages[s].bits, b.stages[s].bits) << "replica " << replica;
    ASSERT_EQ(a.stages[s].active_edges, b.stages[s].active_edges);
    ASSERT_EQ(a.stages[s].cut_edges, b.stages[s].cut_edges);
    // Bit-exact, not approximate: the batch path must run the identical
    // instruction sequence per replica.
    ASSERT_EQ(a.stages[s].max_lock_residual, b.stages[s].max_lock_residual)
        << "replica " << replica << " stage " << s;
  }
  ASSERT_EQ(a.total_time_s, b.total_time_s);
}

void expect_batch_equals_serial(std::size_t replicas, double noise,
                                double mismatch_hz,
                                phase::Integrator integrator,
                                std::uint64_t seed) {
  const auto g = graph::kings_graph_square(7);  // the paper's 49-node fabric
  const MultiStagePottsMachine machine(
      g, machine_config(noise, mismatch_hz, integrator));

  // Serial reference: R independent solve() calls, each capturing the phase
  // vector at every stage boundary.
  std::vector<MsropmResult> serial_results;
  std::vector<Snapshots> serial_snaps(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    util::Rng rng(seed + 17 * r);
    Snapshots& snaps = serial_snaps[r];
    serial_results.push_back(machine.solve(
        rng, [&snaps](unsigned stage, const char* label,
                      const phase::PhaseNetwork& net) {
          snaps.emplace_back(std::to_string(stage) + ":" + label, net.phases());
        }));
  }

  // Batched run over the same streams.
  std::vector<util::Rng> rngs;
  for (std::size_t r = 0; r < replicas; ++r) rngs.emplace_back(seed + 17 * r);
  std::vector<Snapshots> batch_snaps(replicas);
  const std::vector<MsropmResult> batch_results = machine.solve_batch(
      rngs, [&batch_snaps](unsigned stage, const char* label,
                           const phase::PhaseBatch& batch) {
        for (std::size_t r = 0; r < batch.num_replicas(); ++r) {
          const auto theta = batch.phases(r);
          batch_snaps[r].emplace_back(
              std::to_string(stage) + ":" + label,
              std::vector<double>(theta.begin(), theta.end()));
        }
      });

  ASSERT_EQ(batch_results.size(), replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    expect_results_identical(serial_results[r], batch_results[r], r);
    ASSERT_EQ(serial_snaps[r].size(), batch_snaps[r].size());
    for (std::size_t k = 0; k < serial_snaps[r].size(); ++k) {
      ASSERT_EQ(serial_snaps[r][k].first, batch_snaps[r][k].first);
      const auto& ref = serial_snaps[r][k].second;
      const auto& got = batch_snaps[r][k].second;
      ASSERT_EQ(ref.size(), got.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(ref[i], got[i]) << "replica " << r << " boundary "
                                  << serial_snaps[r][k].first << " node " << i;
      }
    }
  }
}

TEST(BatchEquivalence, BatchOfOneNoiseEuler) {
  expect_batch_equals_serial(1, 2.0e3, 0.0, phase::Integrator::kEulerMaruyama,
                             101);
}

TEST(BatchEquivalence, BatchOfThreeNoiseEuler) {
  expect_batch_equals_serial(3, 2.0e3, 0.0, phase::Integrator::kEulerMaruyama,
                             202);
}

TEST(BatchEquivalence, BatchOfFortyNoiseEuler) {
  expect_batch_equals_serial(40, 2.0e3, 0.0, phase::Integrator::kEulerMaruyama,
                             303);
}

TEST(BatchEquivalence, BatchOfThreeNoiselessEuler) {
  expect_batch_equals_serial(3, 0.0, 0.0, phase::Integrator::kEulerMaruyama,
                             404);
}

TEST(BatchEquivalence, BatchOfThreeMismatchEuler) {
  // Mismatch draws detune from each replica's stream BEFORE the initial
  // phases; the batch path must preserve that consumption order.
  expect_batch_equals_serial(3, 2.0e3, 2.0e6,
                             phase::Integrator::kEulerMaruyama, 505);
}

TEST(BatchEquivalence, BatchOfThreeNoiseRk4) {
  expect_batch_equals_serial(3, 2.0e3, 0.0, phase::Integrator::kRk4, 606);
}

TEST(BatchEquivalence, BatchOfThreeNoiselessRk4) {
  expect_batch_equals_serial(3, 0.0, 0.0, phase::Integrator::kRk4, 707);
}

// --- run_iterations invariance ---------------------------------------------

core::RunSummary run_with(const MultiStagePottsMachine& machine,
                          std::size_t batch_size, std::size_t threads) {
  core::RunnerOptions options;
  options.iterations = 12;
  options.seed = 99;
  options.batch_size = batch_size;
  options.num_threads = threads;
  return core::run_iterations(machine, options);
}

void expect_summaries_identical(const core::RunSummary& a,
                                const core::RunSummary& b) {
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    ASSERT_EQ(a.iterations[i].result.colors, b.iterations[i].result.colors);
    ASSERT_EQ(a.iterations[i].coloring_accuracy,
              b.iterations[i].coloring_accuracy);
    ASSERT_EQ(a.iterations[i].stage1_cut, b.iterations[i].stage1_cut);
  }
  ASSERT_EQ(a.best_index, b.best_index);
  ASSERT_EQ(a.best_accuracy, b.best_accuracy);
  ASSERT_EQ(a.mean_accuracy, b.mean_accuracy);
  ASSERT_EQ(a.worst_accuracy, b.worst_accuracy);
  ASSERT_EQ(a.exact_solutions, b.exact_solutions);
  ASSERT_EQ(a.completed, b.completed);
}

TEST(BatchEquivalence, RunIterationsInvariantToBatchSizeAndThreads) {
  const auto g = graph::kings_graph_square(5);
  const MultiStagePottsMachine machine(
      g, machine_config(2.0e3, 0.0, phase::Integrator::kEulerMaruyama));
  const core::RunSummary reference = run_with(machine, 1, 1);
  EXPECT_EQ(reference.completed, 12u);
  EXPECT_FALSE(reference.cancelled);
  expect_summaries_identical(reference, run_with(machine, 5, 1));
  expect_summaries_identical(reference, run_with(machine, 12, 1));
  expect_summaries_identical(reference, run_with(machine, 64, 1));
  expect_summaries_identical(reference, run_with(machine, 4, 3));
}

TEST(BatchEquivalence, RunIterationsStopTokenTruncatesToPrefix) {
  const auto g = graph::kings_graph_square(5);
  const MultiStagePottsMachine machine(
      g, machine_config(2.0e3, 0.0, phase::Integrator::kEulerMaruyama));

  // Pre-tripped token: no iteration may run.
  util::StopSource source;
  source.request_stop();
  core::RunnerOptions options;
  options.iterations = 12;
  options.seed = 99;
  options.batch_size = 4;
  options.num_threads = 1;
  options.stop = source.token();
  const core::RunSummary none = core::run_iterations(machine, options);
  EXPECT_EQ(none.completed, 0u);
  EXPECT_TRUE(none.cancelled);
  EXPECT_TRUE(none.iterations.empty());
  EXPECT_EQ(none.mean_accuracy, 0.0);

  // An already-expired deadline behaves the same way.
  options.stop = util::StopToken::at_deadline(util::StopToken::Clock::now());
  const core::RunSummary expired = core::run_iterations(machine, options);
  EXPECT_EQ(expired.completed, 0u);
  EXPECT_TRUE(expired.cancelled);

  // An inert token completes everything; completed iterations match the
  // uncancelled reference prefix (iterations are keyed by (seed, index)).
  options.stop = util::StopToken();
  const core::RunSummary all = core::run_iterations(machine, options);
  EXPECT_EQ(all.completed, 12u);
  EXPECT_FALSE(all.cancelled);
  expect_summaries_identical(all, run_with(machine, 4, 1));
}

}  // namespace
