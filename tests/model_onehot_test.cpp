// Tests for the one-hot Ising expansion of coloring (paper Eq. 5).
#include "msropm/model/onehot.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/graph/builders.hpp"
#include "msropm/model/potts.hpp"

namespace {

using namespace msropm;
using model::OneHotColoringModel;

TEST(OneHot, SpinCountIsNTimesK) {
  const auto g = graph::kings_graph_square(7);
  const OneHotColoringModel m(g, 4);
  // The paper's point: n*N binary spins vs n Potts spins.
  EXPECT_EQ(m.num_binary_spins(), 49u * 4u);
}

TEST(OneHot, EncodeDecodeRoundTrip) {
  const auto g = graph::cycle_graph(5);
  const OneHotColoringModel m(g, 3);
  const graph::Coloring colors{0, 1, 2, 1, 2};
  const auto s = m.encode(colors);
  const auto decoded = m.decode(s);
  EXPECT_TRUE(decoded.valid_one_hot);
  EXPECT_EQ(decoded.colors, colors);
}

TEST(OneHot, EncodeRejectsOutOfRange) {
  const auto g = graph::path_graph(2);
  const OneHotColoringModel m(g, 3);
  EXPECT_THROW(m.encode({0, 3}), std::invalid_argument);
  EXPECT_THROW(m.encode({0}), std::invalid_argument);
}

TEST(OneHot, ProperColoringHasZeroEnergy) {
  const auto g = graph::kings_graph_square(4);
  const OneHotColoringModel m(g, 4);
  const auto proper = graph::kings_graph_pattern_coloring(4, 4);
  EXPECT_DOUBLE_EQ(m.energy(m.encode(proper)), 0.0);
}

TEST(OneHot, ConflictCostsMatchPottsEnergy) {
  // For valid one-hot encodings, Eq. 5's edge term equals the Potts energy.
  const auto g = graph::cycle_graph(5);
  const OneHotColoringModel onehot(g, 3);
  const model::PottsModel potts(g, 3, 1.0);
  const graph::Coloring colors{0, 0, 1, 2, 2};  // two conflicts (0-1, 3-4)
  EXPECT_DOUBLE_EQ(onehot.energy(onehot.encode(colors)),
                   potts.energy(model::potts_from_coloring(colors)));
}

TEST(OneHot, ConstraintTermPenalizesNonOneHot) {
  const auto g = graph::path_graph(2);
  const OneHotColoringModel m(g, 3);
  std::vector<std::uint8_t> s(6, 0);
  // Node 0 has zero colors set: (1-0)^2 = 1; node 1 likewise.
  EXPECT_DOUBLE_EQ(m.energy(s), 2.0);
  // Node 0 with two colors set: (1-2)^2 = 1; node 1 one-hot on color 2,
  // which conflicts with neither of node 0's set colors.
  s[0] = 1;
  s[1] = 1;
  s[5] = 1;
  EXPECT_DOUBLE_EQ(m.energy(s), 1.0);
}

TEST(OneHot, DecodeFlagsInvalidRows) {
  const auto g = graph::path_graph(2);
  const OneHotColoringModel m(g, 3);
  std::vector<std::uint8_t> s(6, 0);
  s[0] = 1;  // node 0: one color
  // node 1: none
  const auto decoded = m.decode(s);
  EXPECT_FALSE(decoded.valid_one_hot);
  EXPECT_EQ(decoded.colors[0], 0);
}

TEST(OneHot, QuadraticTermBlowup) {
  const auto g = graph::kings_graph_square(7);
  const OneHotColoringModel m(g, 4);
  // Per node C(4,2)=6 one-hot couplings + per edge 4 conflict couplings.
  EXPECT_EQ(m.num_quadratic_terms(), 49u * 6u + 156u * 4u);
  // Contrast: the Potts machine needs exactly one coupling per edge (156).
  EXPECT_GT(m.num_quadratic_terms(), g.num_edges() * 5);
}

TEST(OneHot, PenaltyWeightScales) {
  const auto g = graph::path_graph(2);
  const OneHotColoringModel m(g, 2, 3.0);
  const graph::Coloring conflict{0, 0};
  EXPECT_DOUBLE_EQ(m.energy(m.encode(conflict)), 3.0);
}

TEST(OneHot, RejectsTooFewColors) {
  const auto g = graph::path_graph(2);
  EXPECT_THROW(OneHotColoringModel(g, 1), std::invalid_argument);
}

}  // namespace
