// Tests for the batched SoA phase engine: replica isolation, bit-identity
// against the batch-of-one facade (PhaseNetwork), CSR derivative correctness,
// energy identities, and argument validation. The full machine-level
// equivalence gate lives in core_batch_equivalence_test.cpp.
#include "msropm/phase/batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "msropm/graph/builders.hpp"
#include "msropm/phase/network.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using phase::GainRamp;
using phase::Integrator;
using phase::NetworkParams;
using phase::PhaseBatch;
using phase::PhaseNetwork;

constexpr double kPi = std::numbers::pi;

NetworkParams tuned_params(double noise = 2.0e3) {
  NetworkParams p;
  p.coupling_gain = 8.0e8;
  p.shil_gain = 1.6e9;
  p.noise_stddev = noise;
  p.dt = 2.0e-11;
  return p;
}

/// Give replica r of the batch (and a paired serial network) a diverged
/// state: phases, mask, SHIL setup and detune all keyed off the replica id.
void configure_replica(PhaseBatch& batch, std::size_t r, PhaseNetwork& net,
                       std::uint64_t seed) {
  util::Rng rng_batch(seed);
  util::Rng rng_serial(seed);
  batch.randomize_phases(r, rng_batch);
  net.randomize_phases(rng_serial);

  const std::size_t m = batch.graph().num_edges();
  std::vector<std::uint8_t> mask(m, 1);
  for (std::size_t e = r % 3; e < m; e += 3) mask[e] = 0;
  batch.set_edge_mask(r, mask);
  net.set_edge_mask(mask);

  batch.set_uniform_coupling(r, -1.0);
  net.set_uniform_coupling(-1.0);
  batch.set_couplings_active(r, true);
  net.set_couplings_active(true);

  std::vector<double> psi(batch.size());
  for (std::size_t i = 0; i < psi.size(); ++i) {
    psi[i] = (i + r) % 2 == 0 ? 0.0 : kPi / 2;
  }
  batch.set_shil_phases(r, psi);
  net.set_shil_phases(psi);
  batch.set_shil_active(r, true);
  net.set_shil_active(true);
  batch.set_shil_level(r, 0.5 + 0.1 * static_cast<double>(r % 4));
  net.set_shil_level(0.5 + 0.1 * static_cast<double>(r % 4));

  std::vector<double> detune(batch.size());
  for (std::size_t i = 0; i < detune.size(); ++i) {
    detune[i] = 1.0e6 * static_cast<double>((i + r) % 5);
  }
  batch.set_detune(r, detune);
  net.set_detune(detune);
}

/// Batch-of-R stepping must be bit-identical to R independent batch-of-one
/// networks consuming the same per-replica RNG streams — for Euler (with
/// noise), for RK4, and through a ramped run() window.
void expect_batch_matches_serial(std::size_t replicas, Integrator integrator,
                                 double noise) {
  const auto g = graph::kings_graph_square(5);
  NetworkParams params = tuned_params(noise);
  params.integrator = integrator;

  PhaseBatch batch(g, params, replicas);
  std::vector<PhaseNetwork> serial;
  serial.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) serial.emplace_back(g, params);

  for (std::size_t r = 0; r < replicas; ++r) {
    configure_replica(batch, r, serial[r], /*seed=*/1000 + 7 * r);
  }

  std::vector<util::Rng> batch_rngs, serial_rngs;
  for (std::size_t r = 0; r < replicas; ++r) {
    batch_rngs.emplace_back(42 + r);
    serial_rngs.emplace_back(42 + r);
  }

  // Raw steps.
  for (int s = 0; s < 25; ++s) {
    batch.step(batch_rngs);
    for (std::size_t r = 0; r < replicas; ++r) serial[r].step(serial_rngs[r]);
  }
  for (std::size_t r = 0; r < replicas; ++r) {
    const auto theta = batch.phases(r);
    const auto& ref = serial[r].phases();
    for (std::size_t i = 0; i < theta.size(); ++i) {
      ASSERT_EQ(theta[i], ref[i]) << "replica " << r << " node " << i;
    }
  }

  // A ramped run() window (exercises the integrator dispatch + SHIL ramp).
  const GainRamp ramp{0.0, 0.5};
  const double duration = 40.0 * params.dt;
  batch.run(duration, batch_rngs, &ramp);
  for (std::size_t r = 0; r < replicas; ++r) {
    serial[r].run(duration, serial_rngs[r], &ramp);
  }
  for (std::size_t r = 0; r < replicas; ++r) {
    const auto theta = batch.phases(r);
    const auto& ref = serial[r].phases();
    for (std::size_t i = 0; i < theta.size(); ++i) {
      ASSERT_EQ(theta[i], ref[i]) << "replica " << r << " node " << i;
    }
    ASSERT_EQ(batch.coupling_energy(r), serial[r].coupling_energy());
    ASSERT_EQ(batch.shil_energy(r), serial[r].shil_energy());
  }
}

TEST(PhaseBatch, BatchOfOneMatchesFacadeEuler) {
  expect_batch_matches_serial(1, Integrator::kEulerMaruyama, 2.0e3);
}

TEST(PhaseBatch, BatchOfThreeMatchesSerialEuler) {
  expect_batch_matches_serial(3, Integrator::kEulerMaruyama, 2.0e3);
}

TEST(PhaseBatch, BatchOfFortyMatchesSerialEuler) {
  expect_batch_matches_serial(40, Integrator::kEulerMaruyama, 2.0e3);
}

TEST(PhaseBatch, BatchOfThreeMatchesSerialRk4NoiseFree) {
  expect_batch_matches_serial(3, Integrator::kRk4, 0.0);
}

TEST(PhaseBatch, BatchOfThreeMatchesSerialRk4WithNoise) {
  // RK4 drift + Euler-Maruyama noise: the noise draws must still line up
  // per replica.
  expect_batch_matches_serial(3, Integrator::kRk4, 2.0e3);
}

TEST(PhaseBatch, DerivativeIsNegativeEnergyGradient) {
  // dtheta_i = -dE/dtheta_i (scaled by the gains folded into E): check the
  // CSR gather against a central finite difference of coupling_energy.
  const auto g = graph::kings_graph_square(3);
  NetworkParams params = tuned_params(0.0);
  PhaseBatch batch(g, params, 2);
  util::Rng rng(7);
  const std::size_t r = 1;  // non-zero replica: exercises slice offsets
  batch.randomize_phases(r, rng);
  batch.set_uniform_coupling(r, -1.0);
  batch.set_couplings_active(r, true);

  std::vector<double> theta(batch.phases(r).begin(), batch.phases(r).end());
  std::vector<double> dtheta(theta.size());
  batch.derivative(r, theta, dtheta);

  const double h = 1e-6;
  for (std::size_t i = 0; i < theta.size(); ++i) {
    std::vector<double> plus = theta, minus = theta;
    plus[i] += h;
    minus[i] -= h;
    batch.set_phases(r, plus);
    const double e_plus = batch.coupling_energy(r);
    batch.set_phases(r, minus);
    const double e_minus = batch.coupling_energy(r);
    const double grad = (e_plus - e_minus) / (2.0 * h);
    // coupling_energy omits the Kc scale; derivative applies it.
    EXPECT_NEAR(dtheta[i], -params.coupling_gain * grad,
                1e-4 * params.coupling_gain);
    batch.set_phases(r, theta);
  }
}

TEST(PhaseBatch, ReplicaStateIsIsolated) {
  // Mutating replica 0 must not disturb replica 1's trajectory.
  const auto g = graph::kings_graph_square(4);
  PhaseBatch batch(g, tuned_params(0.0), 2);
  util::Rng rng(3);
  batch.randomize_phases(0, rng);
  batch.randomize_phases(1, rng);
  batch.set_uniform_coupling(0, -1.0);
  batch.set_uniform_coupling(1, -1.0);
  batch.set_couplings_active(0, true);
  batch.set_couplings_active(1, true);

  const std::vector<double> before(batch.phases(1).begin(),
                                   batch.phases(1).end());
  std::vector<util::Rng> rngs{util::Rng(1), util::Rng(2)};
  batch.step(rngs);
  const std::vector<double> after(batch.phases(1).begin(),
                                  batch.phases(1).end());

  // Re-run replica 1 alone from the same state; replica 0 gets a different
  // mask/coupling setup this time.
  PhaseBatch redo(g, tuned_params(0.0), 2);
  redo.set_phases(1, before);
  redo.set_uniform_coupling(1, -1.0);
  redo.set_couplings_active(1, true);
  redo.disable_all_edges(0);
  redo.set_shil_active(0, true);
  redo.set_uniform_shil_phase(0, 1.0);
  std::vector<util::Rng> redo_rngs{util::Rng(99), util::Rng(2)};
  redo.step(redo_rngs);
  const auto redo_after = redo.phases(1);
  for (std::size_t i = 0; i < redo_after.size(); ++i) {
    EXPECT_EQ(redo_after[i], after[i]);
  }
}

TEST(PhaseBatch, ValidatesArguments) {
  const auto g = graph::kings_graph_square(3);
  PhaseBatch batch(g, tuned_params(), 2);
  EXPECT_THROW(batch.set_phases(0, std::vector<double>(3)),
               std::invalid_argument);
  EXPECT_THROW(batch.set_edge_mask(
                   0, std::vector<std::uint8_t>(g.num_edges() + 1, 1)),
               std::invalid_argument);
  EXPECT_THROW(batch.set_shil_phases(1, std::vector<double>(1)),
               std::invalid_argument);
  EXPECT_THROW(batch.set_detune(0, std::vector<double>(2)),
               std::invalid_argument);
  std::vector<util::Rng> wrong(1, util::Rng(1));
  EXPECT_THROW(batch.step(wrong), std::invalid_argument);
  EXPECT_THROW(PhaseBatch(g, tuned_params(), 0), std::invalid_argument);
}

}  // namespace
