// Tests for Hamming-distance analysis (Fig. 5c machinery).
#include "msropm/analysis/hamming.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace msropm;
using analysis::hamming_distance;
using analysis::hamming_distance_invariant;
using analysis::pairwise_hamming;
using analysis::pairwise_hamming_invariant;

TEST(Hamming, BasicDistances) {
  EXPECT_DOUBLE_EQ(hamming_distance({0, 1, 2, 3}, {0, 1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(hamming_distance({0, 0, 0, 0}, {1, 1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(hamming_distance({0, 1, 0, 1}, {0, 1, 1, 1}), 0.25);
}

TEST(Hamming, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(hamming_distance({}, {}), 0.0);
}

TEST(Hamming, SizeMismatchThrows) {
  EXPECT_THROW((void)hamming_distance({0}, {0, 1}), std::invalid_argument);
  EXPECT_THROW((void)hamming_distance_invariant({0}, {0, 1}, 2), std::invalid_argument);
}

TEST(HammingInvariant, RelabelingIsDistanceZero) {
  // Swapping color labels does not change the partition.
  const graph::Coloring a{0, 1, 2, 3, 0, 1};
  const graph::Coloring b{3, 2, 1, 0, 3, 2};
  EXPECT_DOUBLE_EQ(hamming_distance_invariant(a, b, 4), 0.0);
  EXPECT_GT(hamming_distance(a, b), 0.0);
}

TEST(HammingInvariant, NeverExceedsRaw) {
  const graph::Coloring a{0, 1, 2, 3, 2, 1, 0, 0};
  const graph::Coloring b{1, 1, 0, 3, 2, 2, 0, 3};
  EXPECT_LE(hamming_distance_invariant(a, b, 4), hamming_distance(a, b));
}

TEST(HammingInvariant, GenuinelyDifferentPartitions) {
  // {01}{23} vs {02}{13} partitions differ under every relabeling.
  const graph::Coloring a{0, 0, 1, 1};
  const graph::Coloring b{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(hamming_distance_invariant(a, b, 2), 0.5);
}

TEST(HammingInvariant, RejectsTooManyColors) {
  EXPECT_THROW((void)hamming_distance_invariant({0}, {0}, 9), std::invalid_argument);
  EXPECT_THROW((void)hamming_distance_invariant({0}, {0}, 0), std::invalid_argument);
}

TEST(PairwiseHamming, CountAndValues) {
  const std::vector<graph::Coloring> sols{{0, 0}, {0, 1}, {1, 1}};
  const auto d = pairwise_hamming(sols);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 0.5);  // {00} vs {01}
  EXPECT_DOUBLE_EQ(d[1], 1.0);  // {00} vs {11}
  EXPECT_DOUBLE_EQ(d[2], 0.5);  // {01} vs {11}
}

TEST(PairwiseHamming, SingleSolutionGivesNoPairs) {
  EXPECT_TRUE(pairwise_hamming({{0, 1}}).empty());
  EXPECT_TRUE(pairwise_hamming({}).empty());
}

TEST(PairwiseHammingInvariant, AllPairsBounded) {
  const std::vector<graph::Coloring> sols{
      {0, 1, 2, 3}, {3, 2, 1, 0}, {0, 0, 1, 1}, {2, 2, 3, 3}};
  const auto raw = pairwise_hamming(sols);
  const auto inv = pairwise_hamming_invariant(sols, 4);
  ASSERT_EQ(raw.size(), inv.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_LE(inv[i], raw[i]);
    EXPECT_GE(inv[i], 0.0);
  }
  // Solutions 0/1 and 2/3 are relabelings of each other.
  EXPECT_DOUBLE_EQ(inv[0], 0.0);
  EXPECT_DOUBLE_EQ(inv[5], 0.0);
}

}  // namespace
