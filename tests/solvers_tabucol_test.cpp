// Tests for Tabucol.
#include "msropm/solvers/tabucol.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/graph/builders.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using solvers::solve_tabucol;
using solvers::TabucolOptions;

TEST(Tabucol, SolvesKingsGraph4Coloring) {
  const auto g = graph::kings_graph_square(6);
  TabucolOptions opts;
  opts.num_colors = 4;
  util::Rng rng(1);
  const auto result = solve_tabucol(g, opts, rng);
  EXPECT_EQ(result.conflicts, 0u);
  EXPECT_TRUE(graph::is_proper_coloring(g, result.colors, 4));
}

TEST(Tabucol, SolvesOddCycleWith3Colors) {
  const auto g = graph::cycle_graph(9);
  TabucolOptions opts;
  opts.num_colors = 3;
  util::Rng rng(2);
  const auto result = solve_tabucol(g, opts, rng);
  EXPECT_EQ(result.conflicts, 0u);
}

TEST(Tabucol, InfeasiblePaletteKeepsBestEffort) {
  const auto g = graph::complete_graph(6);
  TabucolOptions opts;
  opts.num_colors = 3;
  opts.max_iterations = 2000;
  util::Rng rng(3);
  const auto result = solve_tabucol(g, opts, rng);
  // K6 with 3 colors: best possible leaves 3 conflicts (3 pairs).
  EXPECT_GE(result.conflicts, 3u);
  EXPECT_EQ(result.conflicts, graph::count_conflicts(g, result.colors));
}

TEST(Tabucol, StopsEarlyWhenProper) {
  const auto g = graph::path_graph(10);
  TabucolOptions opts;
  opts.num_colors = 2;
  opts.max_iterations = 100000;
  util::Rng rng(4);
  const auto result = solve_tabucol(g, opts, rng);
  EXPECT_EQ(result.conflicts, 0u);
  EXPECT_LT(result.iterations_used, 1000u);
}

TEST(Tabucol, ReportsIterationBudgetUse) {
  const auto g = graph::complete_graph(8);
  TabucolOptions opts;
  opts.num_colors = 4;
  opts.max_iterations = 50;
  util::Rng rng(5);
  const auto result = solve_tabucol(g, opts, rng);
  EXPECT_LE(result.iterations_used, 50u);
}

TEST(Tabucol, Validation) {
  const auto g = graph::path_graph(3);
  util::Rng rng(6);
  TabucolOptions bad;
  bad.num_colors = 1;
  EXPECT_THROW(solve_tabucol(g, bad, rng), std::invalid_argument);
}

TEST(Tabucol, EmptyGraph) {
  const graph::Graph g(0);
  util::Rng rng(7);
  const auto result = solve_tabucol(g, TabucolOptions{}, rng);
  EXPECT_TRUE(result.colors.empty());
  EXPECT_EQ(result.conflicts, 0u);
}

TEST(Tabucol, PreStoppedTokenReturnsImmediately) {
  const auto g = graph::kings_graph_square(8);
  TabucolOptions opts;
  opts.num_colors = 4;
  opts.max_iterations = 1000000;
  util::StopSource source;
  source.request_stop();
  opts.stop = source.token();
  util::Rng rng(4);
  const auto result = solve_tabucol(g, opts, rng);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.iterations_used, 0u);
  EXPECT_EQ(result.colors.size(), g.num_nodes());
}

TEST(Tabucol, DeadlineTokenStopsInfeasibleSearch) {
  // K4 is not 3-colorable, so without the deadline this would burn the whole
  // huge budget; the poll every 64 iterations must cut it short.
  const auto g = graph::complete_graph(4);
  TabucolOptions opts;
  opts.num_colors = 3;
  opts.max_iterations = 50000000;
  opts.stop = util::StopToken::at_deadline(
      util::StopToken::Clock::now() + std::chrono::milliseconds(5));
  util::Rng rng(5);
  const auto result = solve_tabucol(g, opts, rng);
  EXPECT_TRUE(result.cancelled);
  EXPECT_LT(result.iterations_used, opts.max_iterations);
}

TEST(Tabucol, InertTokenLeavesSearchUntouched) {
  const auto g = graph::kings_graph_square(6);
  TabucolOptions opts;
  opts.num_colors = 4;
  util::Rng rng(1);
  const auto result = solve_tabucol(g, opts, rng);
  EXPECT_FALSE(result.cancelled);
  EXPECT_EQ(result.conflicts, 0u);
}

TEST(Tabucol, LargePaperInstanceSolvable) {
  // Software baseline on the 400-node paper instance.
  const auto g = graph::kings_graph_square(20);
  TabucolOptions opts;
  opts.num_colors = 4;
  opts.max_iterations = 60000;
  util::Rng rng(8);
  const auto result = solve_tabucol(g, opts, rng);
  EXPECT_EQ(result.conflicts, 0u);
}

}  // namespace
