// Tests for the simulated-annealing Potts solver.
#include "msropm/solvers/sa_potts.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/graph/builders.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using solvers::SaPottsOptions;
using solvers::solve_sa_potts;
using solvers::solve_sa_potts_from;

TEST(SaPotts, SolvesSmallKingsGraphExactly) {
  const auto g = graph::kings_graph_square(5);
  SaPottsOptions opts;
  opts.num_colors = 4;
  util::Rng rng(1);
  const auto result = solve_sa_potts(g, opts, rng);
  EXPECT_EQ(result.conflicts, 0u);
  EXPECT_TRUE(graph::is_proper_coloring(g, result.colors, 4));
}

TEST(SaPotts, SolvesBipartiteWithTwoColors) {
  const auto g = graph::complete_bipartite_graph(5, 5);
  SaPottsOptions opts;
  opts.num_colors = 2;
  util::Rng rng(2);
  const auto result = solve_sa_potts(g, opts, rng);
  EXPECT_EQ(result.conflicts, 0u);
}

TEST(SaPotts, ReportedConflictsMatchRecount) {
  const auto g = graph::kings_graph(6, 6);
  SaPottsOptions opts;
  opts.sweeps = 10;  // deliberately under-annealed
  util::Rng rng(3);
  const auto result = solve_sa_potts(g, opts, rng);
  EXPECT_EQ(result.conflicts, graph::count_conflicts(g, result.colors));
}

TEST(SaPotts, InfeasiblePaletteLeavesConflicts) {
  const auto g = graph::complete_graph(6);  // needs 6 colors
  SaPottsOptions opts;
  opts.num_colors = 4;
  util::Rng rng(4);
  const auto result = solve_sa_potts(g, opts, rng);
  EXPECT_GE(result.conflicts, 1u);
}

TEST(SaPotts, MoveCountersPopulated) {
  const auto g = graph::kings_graph(4, 4);
  SaPottsOptions opts;
  opts.sweeps = 20;
  util::Rng rng(5);
  const auto result = solve_sa_potts(g, opts, rng);
  EXPECT_EQ(result.proposed_moves, 20u * g.num_nodes());
  EXPECT_GT(result.accepted_moves, 0u);
  EXPECT_LE(result.accepted_moves, result.proposed_moves);
}

TEST(SaPotts, FromInitialRespectsStart) {
  const auto g = graph::kings_graph_square(4);
  const auto proper = graph::kings_graph_pattern_coloring(4, 4);
  SaPottsOptions opts;
  opts.t_start = 0.05;  // cold: the proper start should survive
  opts.t_end = 0.02;
  opts.sweeps = 5;
  util::Rng rng(6);
  const auto result = solve_sa_potts_from(g, proper, opts, rng);
  EXPECT_EQ(result.conflicts, 0u);
}

TEST(SaPotts, Validation) {
  const auto g = graph::path_graph(3);
  util::Rng rng(7);
  SaPottsOptions bad;
  bad.num_colors = 1;
  EXPECT_THROW(solve_sa_potts(g, bad, rng), std::invalid_argument);
  bad = SaPottsOptions{};
  bad.t_end = 5.0;  // > t_start
  EXPECT_THROW(solve_sa_potts(g, bad, rng), std::invalid_argument);
  EXPECT_THROW(solve_sa_potts_from(g, {0, 1}, SaPottsOptions{}, rng),
               std::invalid_argument);
}

TEST(SaPotts, EmptyGraph) {
  const graph::Graph g(0);
  util::Rng rng(8);
  const auto result = solve_sa_potts(g, SaPottsOptions{}, rng);
  EXPECT_TRUE(result.colors.empty());
  EXPECT_EQ(result.conflicts, 0u);
}

TEST(SaPotts, PreStoppedTokenReturnsImmediately) {
  const auto g = graph::kings_graph_square(8);
  SaPottsOptions opts;
  opts.num_colors = 4;
  opts.sweeps = 100000;
  util::StopSource source;
  source.request_stop();
  opts.stop = source.token();
  util::Rng rng(6);
  const auto result = solve_sa_potts(g, opts, rng);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.proposed_moves, 0u);
  EXPECT_EQ(result.colors.size(), g.num_nodes());
}

TEST(SaPotts, DeadlineTokenStopsLongAnneal) {
  const auto g = graph::kings_graph_square(20);
  SaPottsOptions opts;
  opts.num_colors = 4;
  opts.sweeps = 100000000;  // would run for hours without the deadline
  opts.stop = util::StopToken::at_deadline(
      util::StopToken::Clock::now() + std::chrono::milliseconds(5));
  util::Rng rng(7);
  const auto result = solve_sa_potts(g, opts, rng);
  EXPECT_TRUE(result.cancelled);
  EXPECT_LT(result.proposed_moves, opts.sweeps * g.num_nodes());
}

TEST(SaPotts, InertTokenLeavesAnnealUntouched) {
  const auto g = graph::kings_graph_square(5);
  SaPottsOptions opts;
  opts.num_colors = 4;
  util::Rng rng(1);
  const auto result = solve_sa_potts(g, opts, rng);
  EXPECT_FALSE(result.cancelled);
}

TEST(SaPotts, DeterministicForSeed) {
  const auto g = graph::kings_graph(5, 5);
  SaPottsOptions opts;
  util::Rng rng1(99);
  util::Rng rng2(99);
  EXPECT_EQ(solve_sa_potts(g, opts, rng1).colors,
            solve_sa_potts(g, opts, rng2).colors);
}

}  // namespace
