// Heartbeat no-perturbation contract: enabling observability (metrics,
// tracing, any heartbeat cadence) must not change a single bit of the search
// trajectory. The reference run solves with obs fully off; instrumented runs
// at heartbeat_interval 1, 7, and 0 (conflict cadence disabled, restart /
// final samples only) must reproduce the identical verdict, model, and every
// SolverStats field. Also checks that the heartbeat actually publishes:
// gauges set, counter-track events in the lane, and the three search
// histograms populated once per conflict.

#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <vector>

#include "msropm/graph/builders.hpp"
#include "msropm/obs/obs.hpp"
#include "msropm/sat/coloring_encoder.hpp"
#include "msropm/sat/solver.hpp"

namespace obs = msropm::obs;
namespace sat = msropm::sat;

namespace {

struct RunResult {
  sat::SolveResult verdict;
  std::vector<std::uint8_t> model;
  sat::SolverStats stats;
};

// K=3 on a King's graph containing 4-cliques is UNSAT and, with symmetry
// breaking off, refutes only through genuine search (conflicts, restarts,
// learnt clauses) — the workload the heartbeat instruments.
sat::Cnf hard_unsat_cnf() {
  const auto g = msropm::graph::kings_graph(6, 6);
  return sat::encode_coloring(g, 3, {.symmetry_breaking = false}).cnf;
}

// A satisfiable sibling so the model comparison is non-trivial.
sat::Cnf sat_cnf() {
  const auto g = msropm::graph::kings_graph(5, 5);
  return sat::encode_coloring(g, 4, {.symmetry_breaking = false}).cnf;
}

RunResult run(const sat::Cnf& cnf, std::uint64_t heartbeat_interval) {
  sat::SolverOptions opts;
  opts.heartbeat_interval = heartbeat_interval;
  sat::Solver solver(cnf, opts);
  RunResult r;
  r.verdict = solver.solve();
  if (r.verdict == sat::SolveResult::kSat) r.model = solver.model();
  r.stats = solver.stats();
  return r;
}

void expect_same_trajectory(const RunResult& a, const RunResult& b,
                            const char* label) {
  EXPECT_EQ(a.verdict, b.verdict) << label;
  EXPECT_EQ(a.model, b.model) << label;
  EXPECT_EQ(a.stats.decisions, b.stats.decisions) << label;
  EXPECT_EQ(a.stats.propagations, b.stats.propagations) << label;
  EXPECT_EQ(a.stats.conflicts, b.stats.conflicts) << label;
  EXPECT_EQ(a.stats.restarts, b.stats.restarts) << label;
  EXPECT_EQ(a.stats.learnt_clauses, b.stats.learnt_clauses) << label;
  EXPECT_EQ(a.stats.removed_learnts, b.stats.removed_learnts) << label;
  EXPECT_EQ(a.stats.blocker_skips, b.stats.blocker_skips) << label;
  EXPECT_EQ(a.stats.binary_propagations, b.stats.binary_propagations) << label;
  EXPECT_EQ(a.stats.heap_decisions, b.stats.heap_decisions) << label;
  EXPECT_EQ(a.stats.gc_runs, b.stats.gc_runs) << label;
  EXPECT_EQ(a.stats.gc_freed_words, b.stats.gc_freed_words) << label;
  EXPECT_EQ(a.stats.arena_alloc_words, b.stats.arena_alloc_words) << label;
  EXPECT_EQ(a.stats.arena_peak_words, b.stats.arena_peak_words) << label;
}

class SatHeartbeatTest : public ::testing::Test {
 protected:
  void SetUp() override { disable_and_reset(); }
  void TearDown() override { disable_and_reset(); }
  static void disable_and_reset() {
    obs::set_metrics_enabled(false);
    obs::set_tracing_enabled(false);
    obs::reset();
  }
};

}  // namespace

TEST_F(SatHeartbeatTest, HeartbeatDoesNotPerturbSearch) {
  const auto unsat = hard_unsat_cnf();
  const auto satisfiable = sat_cnf();

  for (const auto* cnf : {&unsat, &satisfiable}) {
    disable_and_reset();
    const RunResult reference = run(*cnf, 1024);  // obs off: default cadence
    // Only the UNSAT refutation is guaranteed to search; the satisfiable
    // sibling may color without a single conflict, which still exercises
    // the model-equality half of the contract.
    if (cnf == &unsat) ASSERT_GT(reference.stats.conflicts, 0u);

    obs::set_metrics_enabled(true);
    obs::set_tracing_enabled(true);
    obs::set_thread_lane("hb-determinism");
    expect_same_trajectory(reference, run(*cnf, 1), "interval=1");
    expect_same_trajectory(reference, run(*cnf, 7), "interval=7");
    expect_same_trajectory(reference, run(*cnf, 0), "interval=0");
    disable_and_reset();
  }
}

// Publication checks need a live obs backend; in MSROPM_OBS_DISABLED builds
// only the no-perturbation contract above is meaningful (and trivially holds).
#if !defined(MSROPM_OBS_DISABLED)

TEST_F(SatHeartbeatTest, HeartbeatPublishesGaugesAndCounterTracks) {
  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(true);
  obs::set_thread_lane("hb-publish");
  const auto cnf = hard_unsat_cnf();
  const RunResult r = run(cnf, 1);  // sample at every conflict
  ASSERT_EQ(r.verdict, sat::SolveResult::kUnsat);
  ASSERT_GT(r.stats.conflicts, 1u);

  const auto snap = obs::snapshot_metrics();
  // The final guaranteed sample leaves the cumulative-style gauges at their
  // end-of-solve values; rate gauges depend on wall time so only existence
  // is checked for them via the export surface.
  EXPECT_GE(snap.gauge_value("sat.hb.restart_interval"), 1.0);
  EXPECT_GE(snap.gauge_value("sat.hb.avg_recent_lbd"), 0.0);
  bool has_cps = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "sat.hb.conflicts_per_sec") has_cps = true;
    (void)value;
  }
  EXPECT_TRUE(has_cps);

  // Counter-track samples land in the solving thread's lane — one sample of
  // every sat.hb.* track per heartbeat.
  const auto lanes = obs::snapshot_trace();
  const obs::LaneSnapshot* lane = nullptr;
  for (const auto& l : lanes) {
    if (l.name == "hb-publish") lane = &l;
  }
  ASSERT_NE(lane, nullptr);
  std::uint64_t hb_samples = 0;
  for (const auto& ev : lane->events) {
    if (ev.is_counter == 0) continue;
    EXPECT_EQ(std::string_view(ev.name).substr(0, 7), "sat.hb.");
    ++hb_samples;
  }
  // At least one heartbeat (7 tracks) fired beyond the final sample.
  EXPECT_GE(hb_samples, 14u);
}

TEST_F(SatHeartbeatTest, SearchHistogramsRecordOncePerConflict) {
  obs::set_metrics_enabled(true);
  const auto cnf = hard_unsat_cnf();
  const RunResult r = run(cnf, 1024);
  ASSERT_GT(r.stats.conflicts, 0u);

  const auto snap = obs::snapshot_metrics();
  for (const char* name : {"sat.lbd", "sat.learnt_len",
                           "sat.trail_depth_at_conflict"}) {
    const auto* hist = snap.find_histogram(name);
    ASSERT_NE(hist, nullptr) << name;
    // One observation per learnt clause; the final conflict at decision
    // level 0 (the refutation) terminates before learning, so counts track
    // conflicts without necessarily equalling them.
    EXPECT_GT(hist->count, 0u) << name;
    EXPECT_LE(hist->count, r.stats.conflicts) << name;
  }
  const auto* lbd = snap.find_histogram("sat.lbd");
  const auto* len = snap.find_histogram("sat.learnt_len");
  const auto* depth = snap.find_histogram("sat.trail_depth_at_conflict");
  EXPECT_EQ(lbd->count, len->count);
  EXPECT_EQ(lbd->count, depth->count);
  // LBD counts decision levels among the learnt literals: never above the
  // clause length, and the mean trail depth at conflict dominates both.
  EXPECT_LE(lbd->sum, len->sum);
  EXPECT_GE(depth->mean(), 1.0);
}

#endif  // !MSROPM_OBS_DISABLED
