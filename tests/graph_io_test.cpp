// Tests for DIMACS .col I/O.
#include "msropm/graph/io.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/graph/builders.hpp"

namespace {

using namespace msropm::graph;

TEST(DimacsIo, ParsesMinimalInstance) {
  const Graph g = read_dimacs_string(
      "c a comment\n"
      "p edge 3 2\n"
      "e 1 2\n"
      "e 2 3\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(DimacsIo, AcceptsColVariantAndBlankLines) {
  const Graph g = read_dimacs_string(
      "\n"
      "p col 2 1\n"
      "\n"
      "e 1 2\n");
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(DimacsIo, CollapsesDuplicateEdges) {
  const Graph g = read_dimacs_string(
      "p edge 2 2\n"
      "e 1 2\n"
      "e 2 1\n");
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(DimacsIo, RejectsMissingHeader) {
  EXPECT_THROW(read_dimacs_string("e 1 2\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_string(""), std::runtime_error);
}

TEST(DimacsIo, RejectsDuplicateHeader) {
  EXPECT_THROW(read_dimacs_string("p edge 2 0\np edge 2 0\n"), std::runtime_error);
}

TEST(DimacsIo, RejectsMalformedRecords) {
  EXPECT_THROW(read_dimacs_string("p edge 2\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_string("p edge 2 1\ne 1\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_string("p edge 2 1\ne 1 x\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_string("p edge 2 1\nq 1 2\n"), std::runtime_error);
}

TEST(DimacsIo, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(read_dimacs_string("p edge 2 1\ne 1 3\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_string("p edge 2 1\ne 0 1\n"), std::runtime_error);
}

TEST(DimacsIo, RejectsSelfLoop) {
  EXPECT_THROW(read_dimacs_string("p edge 2 1\ne 1 1\n"), std::runtime_error);
}

TEST(DimacsIo, RejectsMoreEdgesThanDeclared) {
  EXPECT_THROW(read_dimacs_string("p edge 3 1\ne 1 2\ne 2 3\n"),
               std::runtime_error);
}

// An instance that lists every edge twice is legal (records >= declared,
// distinct edges <= declared) — the published-corpus quirk the truncation
// check must not break.
TEST(DimacsIo, AcceptsDoubleListedEdges) {
  const Graph g = read_dimacs_string(
      "p edge 3 2\n"
      "e 1 2\ne 2 1\n"
      "e 2 3\ne 3 2\n");
  EXPECT_EQ(g.num_edges(), 2u);
}

// A file cut off mid-stream has fewer edge records than the header promised;
// it must be rejected, not returned as a silently smaller graph.
TEST(DimacsIo, RejectsTruncatedEdgeList) {
  EXPECT_THROW(read_dimacs_string("p edge 4 3\ne 1 2\ne 2 3\n"),
               std::runtime_error);
  // Header only, every edge missing.
  EXPECT_THROW(read_dimacs_string("p edge 4 3\n"), std::runtime_error);
}

// Headers that would drive multi-gigabyte allocations (or overflow the
// NodeId type / long long parsing) are malformed input, not requests.
TEST(DimacsIo, RejectsOversizedDeclarations) {
  EXPECT_THROW(read_dimacs_string("p edge 999999999999999 1\ne 1 2\n"),
               std::runtime_error);
  EXPECT_THROW(read_dimacs_string("p edge 3 999999999999999\ne 1 2\n"),
               std::runtime_error);
  // Past long long entirely: from_chars overflow must surface as a parse
  // error with a line number, not wrap around.
  EXPECT_THROW(
      read_dimacs_string("p edge 99999999999999999999999999 1\ne 1 2\n"),
      std::runtime_error);
  EXPECT_THROW(read_dimacs_string("p edge -1 0\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_string("p edge 3 -1\n"), std::runtime_error);
}

// Endpoint tokens that overflow the parser are bad endpoints, not node 2^64-k.
TEST(DimacsIo, RejectsOverflowingEndpoints) {
  EXPECT_THROW(
      read_dimacs_string("p edge 3 1\ne 1 99999999999999999999999999\n"),
      std::runtime_error);
}

TEST(DimacsIo, RoundTripPreservesGraph) {
  const Graph original = kings_graph(4, 5);
  const auto text = write_dimacs_string(original, "kings 4x5");
  const Graph parsed = read_dimacs_string(text);
  EXPECT_EQ(parsed, original);
}

TEST(DimacsIo, WriteContainsHeaderAndComment) {
  const Graph g = cycle_graph(3);
  const auto text = write_dimacs_string(g, "triangle");
  EXPECT_NE(text.find("c triangle"), std::string::npos);
  EXPECT_NE(text.find("p edge 3 3"), std::string::npos);
  EXPECT_NE(text.find("e 1 2"), std::string::npos);
}

TEST(DimacsIo, FileRoundTrip) {
  const Graph original = kings_graph_square(5);
  const std::string path = ::testing::TempDir() + "/kings5.col";
  write_dimacs_file(path, original);
  EXPECT_EQ(read_dimacs_file(path), original);
}

TEST(DimacsIo, MissingFileThrows) {
  EXPECT_THROW(read_dimacs_file("/nonexistent/definitely/missing.col"),
               std::runtime_error);
}

}  // namespace
