// Tests for histogram, table rendering and string utilities.
#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/util/histogram.hpp"
#include "msropm/util/strings.hpp"
#include "msropm/util/table.hpp"

namespace {

using msropm::util::Histogram;
using msropm::util::TextTable;

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bin 0
  h.add(0.3);   // bin 1
  h.add(0.55);  // bin 2
  h.add(0.9);   // bin 3
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(5.0);
  h.add(1.0);  // exactly hi clamps to last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
}

TEST(Histogram, BinGeometry) {
  Histogram h(0.0, 2.0, 4);
  const auto [lo, hi] = h.bin_range(1);
  EXPECT_DOUBLE_EQ(lo, 0.5);
  EXPECT_DOUBLE_EQ(hi, 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 0.75);
  EXPECT_THROW((void)h.bin_range(4), std::out_of_range);
}

TEST(Histogram, ModeAndMax) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.75);
  h.add(0.8);
  h.add(0.2);
  EXPECT_EQ(h.max_count(), 2u);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, AsciiRenderHasOneRowPerBin) {
  Histogram h(0.0, 1.0, 5);
  h.add(0.5);
  const auto art = h.render_ascii(10);
  std::size_t rows = 0;
  for (char ch : art) {
    if (ch == '\n') ++rows;
  }
  EXPECT_EQ(rows, 5u);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const auto out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, CsvQuotesSpecials) {
  TextTable t({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"with\"quote", "x"});
  const auto csv = t.render_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Format, Doubles) {
  EXPECT_EQ(msropm::util::format_double(3.14159, 2), "3.14");
  EXPECT_EQ(msropm::util::format_double(1.0, 0), "1");
}

TEST(Format, Scientific) {
  const auto s = msropm::util::format_sci(4.95e29, 2);
  EXPECT_NE(s.find("4.95e+29"), std::string::npos);
}

TEST(Format, PowerExpression) {
  EXPECT_EQ(msropm::util::format_pow(4, 2116), "4^2116");
}

TEST(Strings, SplitBasic) {
  const auto parts = msropm::util::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepEmpty) {
  const auto parts = msropm::util::split("a,,b", ',', /*skip_empty=*/false);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWhitespace) {
  const auto parts = msropm::util::split_ws("  p edge\t49   156 ");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "p");
  EXPECT_EQ(parts[3], "156");
}

TEST(Strings, Trim) {
  EXPECT_EQ(msropm::util::trim("  hi \t"), "hi");
  EXPECT_EQ(msropm::util::trim(""), "");
  EXPECT_EQ(msropm::util::trim(" \n "), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(msropm::util::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(msropm::util::join({}, ","), "");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(msropm::util::parse_int("42").value(), 42);
  EXPECT_EQ(msropm::util::parse_int(" -7 ").value(), -7);
  EXPECT_FALSE(msropm::util::parse_int("4x").has_value());
  EXPECT_FALSE(msropm::util::parse_int("").has_value());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(msropm::util::parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(msropm::util::parse_double("1e3").value(), 1000.0);
  EXPECT_FALSE(msropm::util::parse_double("abc").has_value());
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(msropm::util::starts_with("p edge", "p "));
  EXPECT_FALSE(msropm::util::starts_with("e 1 2", "p"));
}

}  // namespace
