// Tests for the DFF/REF phase-readout block (paper Fig. 4c).
#include "msropm/circuit/readout.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/circuit/fabric.hpp"
#include "msropm/graph/builders.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using circuit::PhaseReadout;
using circuit::ReferenceSignal;

constexpr double kT = 1.0 / 1.3e9;  // reference period

TEST(ReferenceSignal, WindowTiming) {
  const ReferenceSignal ref{kT, 0.25, 0.25};
  EXPECT_FALSE(ref.high(0.0));
  EXPECT_TRUE(ref.high(0.30 * kT));
  EXPECT_FALSE(ref.high(0.55 * kT));
  // Periodicity.
  EXPECT_TRUE(ref.high(5 * kT + 0.3 * kT));
}

TEST(ReferenceSignal, WrapAroundWindow) {
  const ReferenceSignal ref{kT, 0.9, 0.25};
  EXPECT_TRUE(ref.high(0.95 * kT));
  EXPECT_TRUE(ref.high(0.05 * kT));  // wraps past the period boundary
  EXPECT_FALSE(ref.high(0.5 * kT));
}

TEST(PhaseReadout, WindowsTileThePeriod) {
  const PhaseReadout readout(1, 4, kT);
  // Any instant must see exactly one reference high.
  for (double f = 0.001; f < 1.0; f += 0.01) {
    int high = 0;
    for (const auto& ref : readout.references()) {
      if (ref.high(f * kT)) ++high;
    }
    EXPECT_EQ(high, 1) << "fraction " << f;
  }
}

TEST(PhaseReadout, BucketsMatchLockPhases) {
  PhaseReadout readout(4, 4, kT);
  // A rising edge exactly at lock phase k (delay k/4 of the period) must
  // land in bucket k.
  for (unsigned k = 0; k < 4; ++k) {
    readout.capture(k, (10.0 + k / 4.0) * kT);
    EXPECT_EQ(readout.bucket(k), k);
  }
}

TEST(PhaseReadout, ToleratesJitterWithinHalfWindow) {
  PhaseReadout readout(2, 4, kT);
  readout.capture(0, 10.0 * kT + 0.10 * kT);   // +36 deg of bucket 0
  readout.capture(1, 10.0 * kT - 0.10 * kT);   // -36 deg of bucket 0
  EXPECT_EQ(readout.bucket(0), 0u);
  EXPECT_EQ(readout.bucket(1), 0u);
}

TEST(PhaseReadout, BinaryResolution) {
  PhaseReadout readout(2, 2, kT);
  readout.capture(0, 10.0 * kT);         // 0 deg
  readout.capture(1, 10.5 * kT);         // 180 deg
  EXPECT_EQ(readout.bucket(0), 0u);
  EXPECT_EQ(readout.bucket(1), 1u);
}

TEST(PhaseReadout, DffOutputsOneHot) {
  PhaseReadout readout(1, 4, kT);
  readout.capture(0, 10.25 * kT);
  const auto dffs = readout.dff_outputs(0);
  ASSERT_EQ(dffs.size(), 4u);
  EXPECT_EQ(dffs[0], 0);
  EXPECT_EQ(dffs[1], 1);
  EXPECT_EQ(dffs[2], 0);
  EXPECT_EQ(dffs[3], 0);
}

TEST(PhaseReadout, UncapturedStateIsReported) {
  PhaseReadout readout(2, 4, kT);
  EXPECT_FALSE(readout.captured(0));
  EXPECT_THROW((void)readout.bucket(0), std::logic_error);
  EXPECT_THROW(readout.buckets(), std::logic_error);
  readout.capture(0, kT);
  EXPECT_TRUE(readout.captured(0));
  const auto dffs = readout.dff_outputs(1);
  for (auto d : dffs) EXPECT_EQ(d, 0);
}

TEST(PhaseReadout, Validation) {
  EXPECT_THROW(PhaseReadout(1, 1, kT), std::invalid_argument);
  EXPECT_THROW(PhaseReadout(1, 4, 0.0), std::invalid_argument);
  PhaseReadout readout(1, 4, kT);
  EXPECT_THROW(readout.capture(5, 0.0), std::out_of_range);
  EXPECT_THROW((void)readout.bucket(5), std::out_of_range);
}

TEST(PhaseReadout, CaptureAllFromFabric) {
  const auto g = graph::Graph(3);
  circuit::RoscFabric fabric(g, circuit::FabricParams::paper_defaults());
  util::Rng rng(3);
  fabric.randomize(rng);
  fabric.run(6e-9);
  PhaseReadout readout(3, 4, fabric.params().reference_period_s);
  readout.capture_all(fabric);
  const auto buckets = readout.buckets();
  ASSERT_EQ(buckets.size(), 3u);
  for (auto b : buckets) EXPECT_LT(b, 4);
}

}  // namespace
