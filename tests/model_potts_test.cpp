// Tests for the Potts model (paper Eq. 3 / Eq. 4).
#include "msropm/model/potts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "msropm/graph/builders.hpp"

namespace {

using namespace msropm;
using model::PottsModel;
using model::PottsSpin;

TEST(PottsModel, EnergyCountsSameStatePairs) {
  const auto g = graph::path_graph(3);
  const PottsModel m(g, 4, 1.0);
  EXPECT_DOUBLE_EQ(m.energy({0, 0, 0}), 2.0);
  EXPECT_DOUBLE_EQ(m.energy({0, 1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(m.energy({2, 2, 1}), 1.0);
}

TEST(PottsModel, RejectsBadStates) {
  const auto g = graph::path_graph(2);
  EXPECT_THROW(PottsModel(g, 1), std::invalid_argument);
  const PottsModel m(g, 3);
  EXPECT_THROW((void)m.energy({0, 3}), std::invalid_argument);
  EXPECT_THROW((void)m.energy({0}), std::invalid_argument);
}

TEST(PottsModel, ColorableGroundEnergyIsZero) {
  const auto g = graph::kings_graph_square(4);
  const PottsModel m(g, 4);
  const auto pattern = graph::kings_graph_pattern_coloring(4, 4);
  EXPECT_DOUBLE_EQ(m.energy(model::potts_from_coloring(pattern)),
                   m.colorable_ground_energy());
}

TEST(PottsModel, VectorEnergyAtIdealPhases) {
  // Two adjacent spins with the same state sit in-phase: contributes +J.
  const auto g = graph::path_graph(2);
  const PottsModel m(g, 4, 1.0);
  EXPECT_NEAR(m.vector_energy({0.0, 0.0}), 1.0, 1e-12);
  // Opposite phases: cos(pi) = -1.
  EXPECT_NEAR(m.vector_energy({0.0, std::numbers::pi}), -1.0, 1e-12);
  // Orthogonal (adjacent different colors in 4-Potts): 0.
  EXPECT_NEAR(m.vector_energy({0.0, std::numbers::pi / 2}), 0.0, 1e-12);
}

TEST(PottsModel, SearchSpaceMatchesPaperTable1) {
  // Table 1 reports search spaces 4^49, 4^400, 4^1024, 4^2116.
  const auto g49 = graph::kings_graph_square(7);
  const PottsModel m(g49, 4);
  EXPECT_NEAR(m.search_space_log10(), 49.0 * std::log10(4.0), 1e-9);
  const auto g2116 = graph::kings_graph_square(46);
  const PottsModel m2(g2116, 4);
  EXPECT_NEAR(m2.search_space_log10(), 2116.0 * std::log10(4.0), 1e-9);
  // 4^2116 overflows double; the log form stays finite.
  EXPECT_TRUE(std::isinf(m2.search_space_size()));
  EXPECT_FALSE(std::isinf(m2.search_space_log10()));
}

class PhaseQuantizationSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PhaseQuantizationSweep, RoundTripsAllSpins) {
  const unsigned n = GetParam();
  for (unsigned s = 0; s < n; ++s) {
    const double theta = model::phase_from_potts(static_cast<PottsSpin>(s), n);
    EXPECT_EQ(model::potts_from_phase(theta, n), s);
  }
}

TEST_P(PhaseQuantizationSweep, NearestQuantizationWithinHalfSlot) {
  const unsigned n = GetParam();
  const double slot = 2.0 * std::numbers::pi / n;
  for (unsigned s = 0; s < n; ++s) {
    const double theta = model::phase_from_potts(static_cast<PottsSpin>(s), n);
    EXPECT_EQ(model::potts_from_phase(theta + 0.49 * slot, n), s);
    EXPECT_EQ(model::potts_from_phase(theta - 0.49 * slot, n), s);
  }
}

TEST_P(PhaseQuantizationSweep, HandlesWrappedAngles) {
  const unsigned n = GetParam();
  EXPECT_EQ(model::potts_from_phase(2.0 * std::numbers::pi, n), 0);
  EXPECT_EQ(model::potts_from_phase(-2.0 * std::numbers::pi, n), 0);
  EXPECT_EQ(model::potts_from_phase(4.0 * std::numbers::pi + 0.01, n), 0);
}

INSTANTIATE_TEST_SUITE_P(Orders, PhaseQuantizationSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 8u, 16u));

TEST(PhaseQuantization, RejectsBadOrders) {
  EXPECT_THROW((void)model::potts_from_phase(0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)model::phase_from_potts(3, 3), std::invalid_argument);
}

TEST(ColoringConversion, Identity) {
  const graph::Coloring c{0, 1, 2, 3};
  const auto spins = model::potts_from_coloring(c);
  EXPECT_EQ(model::coloring_from_potts(spins), c);
}

TEST(PottsModel, PerEdgeCouplings) {
  const auto g = graph::path_graph(3);
  const PottsModel m(g, 3, std::vector<double>{2.0, 5.0});
  EXPECT_DOUBLE_EQ(m.energy({1, 1, 1}), 7.0);
  EXPECT_DOUBLE_EQ(m.energy({1, 1, 0}), 2.0);
  EXPECT_THROW(PottsModel(g, 3, std::vector<double>{1.0}), std::invalid_argument);
}

}  // namespace
