// Tests for msropm::obs: exact cross-thread counter merging, span nesting
// and lane attribution, ring-buffer drop behavior, Chrome trace-event export
// (parsed with a minimal JSON validator — no external deps), the overhead
// gate's disabled-is-noop contract, and the SolverStats-façade identity
// (registry counters == struct fields after a solve). ObsConcurrent.* runs
// writers against snapshots and is the CHECK_TSAN=1 target.

#include "msropm/obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "msropm/graph/builders.hpp"
#include "msropm/sat/coloring_encoder.hpp"
#include "msropm/sat/solver.hpp"

namespace obs = msropm::obs;

#if defined(MSROPM_OBS_DISABLED)

TEST(ObsDisabledBuild, EverythingIsANoop) {
  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(true);
  const obs::MetricId c = obs::counter("noop.counter");
  obs::add(c, 7);
  {
    obs::Span span("noop.span");
    span.arg("k", 1);
  }
  EXPECT_EQ(obs::gate(), 0u);
  EXPECT_TRUE(obs::snapshot_metrics().counters.empty());
  EXPECT_TRUE(obs::snapshot_trace().empty());
  EXPECT_FALSE(obs::write_chrome_trace("/tmp/obs_disabled_trace.json"));
}

#else

namespace {

/// Minimal recursive-descent JSON parser: validates syntax only (the test
/// needs "this file parses as JSON", not a DOM). Returns false on any
/// violation.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_metrics_enabled(false);
    obs::set_tracing_enabled(false);
    obs::reset();
  }
  void TearDown() override {
    obs::set_metrics_enabled(false);
    obs::set_tracing_enabled(false);
    obs::reset();
  }
};

using ObsConcurrent = ObsTest;

const obs::LaneSnapshot* find_lane(const std::vector<obs::LaneSnapshot>& lanes,
                                   const std::string& name) {
  for (const auto& lane : lanes) {
    if (lane.name == name) return &lane;
  }
  return nullptr;
}

/// Complete events of one lane must obey stack discipline: any two spans are
/// either disjoint or properly nested (RAII scopes in one thread guarantee
/// it; crossing would mean events leaked into the wrong lane).
bool spans_properly_nested(const obs::LaneSnapshot& lane) {
  std::vector<const obs::TraceEvent*> spans;
  for (const auto& ev : lane.events) {
    if (ev.dur_ns >= 0) spans.push_back(&ev);
  }
  for (std::size_t a = 0; a < spans.size(); ++a) {
    for (std::size_t b = a + 1; b < spans.size(); ++b) {
      const auto a0 = spans[a]->start_ns, a1 = a0 + spans[a]->dur_ns;
      const auto b0 = spans[b]->start_ns, b1 = b0 + spans[b]->dur_ns;
      const bool disjoint = a1 <= b0 || b1 <= a0;
      const bool a_in_b = b0 <= a0 && a1 <= b1;
      const bool b_in_a = a0 <= b0 && b1 <= a1;
      if (!disjoint && !a_in_b && !b_in_a) return false;
    }
  }
  return true;
}

}  // namespace

TEST_F(ObsTest, CountersMergeExactlyAcrossThreads) {
  obs::set_metrics_enabled(true);
  const obs::MetricId c = obs::counter("test.merge");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 10000;
  constexpr std::uint64_t kDelta = 3;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c]() {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) obs::add(c, kDelta);
    });
  }
  // Main thread contributes through the live-cells path; the workers (joined
  // before the snapshot) land in the retired accumulators. Both must merge.
  for (std::uint64_t i = 0; i < kAddsPerThread; ++i) obs::add(c, kDelta);
  for (auto& t : threads) t.join();

  const auto snap = obs::snapshot_metrics();
  EXPECT_EQ(snap.counter_value("test.merge"),
            (kThreads + 1) * kAddsPerThread * kDelta);
}

TEST_F(ObsTest, DisabledMetricsRecordNothing) {
  const obs::MetricId c = obs::counter("test.disabled");
  const obs::MetricId t = obs::timer("test.disabled_timer");
  obs::add(c, 42);
  obs::record_time(t, 1000);
  {
    obs::Span span("test.disabled_span", t);
    span.arg("k", 1);
  }
  const auto snap = obs::snapshot_metrics();
  EXPECT_EQ(snap.counter_value("test.disabled"), 0u);
  const auto* timer = snap.find_timer("test.disabled_timer");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->stats.count(), 0u);
  EXPECT_TRUE(obs::snapshot_trace().empty());
}

TEST_F(ObsTest, TimerPercentilesFromRecordedDurations) {
  obs::set_metrics_enabled(true);
  const obs::MetricId t = obs::timer("test.timer");
  for (int i = 1; i <= 100; ++i) obs::record_time(t, i * 1000);
  const auto snap = obs::snapshot_metrics();
  const auto* timer = snap.find_timer("test.timer");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->stats.count(), 100u);
  EXPECT_DOUBLE_EQ(timer->stats.min(), 1000.0);
  EXPECT_DOUBLE_EQ(timer->stats.max(), 100000.0);
  EXPECT_NEAR(timer->samples.percentile(50.0), 50500.0, 1.0);
  EXPECT_NEAR(timer->samples.percentile(99.0), 99010.0, 1.0);
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  obs::set_metrics_enabled(true);
  const obs::MetricId g = obs::gauge("test.gauge");
  obs::set_gauge(g, 1.5);
  obs::set_gauge(g, 7.25);
  const auto snap = obs::snapshot_metrics();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "test.gauge");
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 7.25);
}

TEST_F(ObsTest, SpansNestAndStayInTheirLane) {
  obs::set_tracing_enabled(true);
  obs::set_thread_lane("main-test");
  {
    obs::Span outer("outer");
    {
      obs::Span inner("inner");
      obs::Span innermost("innermost");
    }
    obs::Span sibling("sibling");
  }
  std::thread worker([]() {
    obs::set_thread_lane("worker-test");
    obs::Span span("worker-span");
  });
  worker.join();

  const auto lanes = obs::snapshot_trace();
  const auto* main_lane = find_lane(lanes, "main-test");
  const auto* worker_lane = find_lane(lanes, "worker-test");
  ASSERT_NE(main_lane, nullptr);
  ASSERT_NE(worker_lane, nullptr);

  ASSERT_EQ(main_lane->events.size(), 4u);
  EXPECT_TRUE(spans_properly_nested(*main_lane));
  // Events are recorded at span END, so innermost closes first.
  EXPECT_STREQ(main_lane->events[0].name, "innermost");
  EXPECT_STREQ(main_lane->events[1].name, "inner");
  EXPECT_STREQ(main_lane->events[2].name, "sibling");
  EXPECT_STREQ(main_lane->events[3].name, "outer");
  // Containment: inner within outer, innermost within inner.
  const auto& outer_ev = main_lane->events[3];
  const auto& inner_ev = main_lane->events[1];
  EXPECT_GE(inner_ev.start_ns, outer_ev.start_ns);
  EXPECT_LE(inner_ev.start_ns + inner_ev.dur_ns, outer_ev.start_ns + outer_ev.dur_ns);

  // The worker's span must not leak into the main lane (and vice versa).
  ASSERT_EQ(worker_lane->events.size(), 1u);
  EXPECT_STREQ(worker_lane->events[0].name, "worker-span");
}

TEST_F(ObsTest, SpanArgsAndInstantMarkersRecorded) {
  obs::set_tracing_enabled(true);
  obs::set_thread_lane("args-test");
  {
    obs::Span span("spanned", obs::kNoMetric);
    span.arg("alpha", 11);
    span.arg("beta", 22);
  }
  obs::trace_instant("marker", "gamma", 33);
  const auto lanes = obs::snapshot_trace();
  const auto* lane = find_lane(lanes, "args-test");
  ASSERT_NE(lane, nullptr);
  ASSERT_EQ(lane->events.size(), 2u);
  const auto& span_ev = lane->events[0];
  EXPECT_EQ(span_ev.num_args, 2);
  EXPECT_STREQ(span_ev.arg_keys[0], "alpha");
  EXPECT_EQ(span_ev.arg_vals[0], 11u);
  EXPECT_STREQ(span_ev.arg_keys[1], "beta");
  EXPECT_EQ(span_ev.arg_vals[1], 22u);
  const auto& marker = lane->events[1];
  EXPECT_LT(marker.dur_ns, 0);  // instant
  EXPECT_STREQ(marker.arg_keys[0], "gamma");
}

TEST_F(ObsTest, RingDropsOldestAndKeepsOrder) {
  obs::set_tracing_enabled(true);
  obs::set_thread_lane("ring-test");
  constexpr std::uint64_t kExtra = 100;
  for (std::uint64_t i = 0; i < obs::kTraceLaneCapacity + kExtra; ++i) {
    obs::trace_instant("tick", "i", i);
  }
  const auto lanes = obs::snapshot_trace();
  const auto* lane = find_lane(lanes, "ring-test");
  ASSERT_NE(lane, nullptr);
  EXPECT_EQ(lane->events.size(), obs::kTraceLaneCapacity);
  EXPECT_EQ(lane->dropped, kExtra);
  // Oldest kExtra events overwritten; survivors start at kExtra, in order.
  ASSERT_FALSE(lane->events.empty());
  EXPECT_EQ(lane->events.front().arg_vals[0], kExtra);
  EXPECT_EQ(lane->events.back().arg_vals[0],
            obs::kTraceLaneCapacity + kExtra - 1);
  for (std::size_t i = 1; i < lane->events.size(); ++i) {
    EXPECT_EQ(lane->events[i].arg_vals[0], lane->events[i - 1].arg_vals[0] + 1);
  }
}

TEST_F(ObsTest, ChromeTraceExportIsValidJson) {
  obs::set_tracing_enabled(true);
  obs::set_thread_lane("export-test");
  {
    obs::Span span("export-span");
    span.arg("k", 4);
  }
  obs::trace_instant("export-marker");
  const std::string path = ::testing::TempDir() + "/msropm_obs_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  EXPECT_TRUE(JsonValidator(text).valid()) << "exported trace is not valid JSON";
  // Chrome trace-event essentials: the event array, a thread_name metadata
  // record for the lane, a complete event, and an instant event.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"export-test\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"export-span\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, SolverCountersMatchStructFacade) {
  namespace sat = msropm::sat;
  obs::set_metrics_enabled(true);
  // A K=3 coloring of a King's graph is UNSAT (it contains 4-cliques), so
  // the solve is guaranteed to generate conflicts, learnts, and heap
  // decisions — every façade field the registry mirrors. Symmetry breaking
  // must stay off: pinning a 4-clique into 3 colors refutes at ingestion
  // with zero search.
  const auto g = msropm::graph::kings_graph(6, 6);
  const auto enc = sat::encode_coloring(g, 3, {.symmetry_breaking = false});
  sat::Solver solver(enc.cnf, {});
  EXPECT_EQ(solver.solve(), sat::SolveResult::kUnsat);

  const auto snap = obs::snapshot_metrics();
  const auto& s = solver.stats();
  EXPECT_EQ(snap.counter_value("sat.decisions"), s.decisions);
  EXPECT_EQ(snap.counter_value("sat.propagations"), s.propagations);
  EXPECT_EQ(snap.counter_value("sat.conflicts"), s.conflicts);
  EXPECT_EQ(snap.counter_value("sat.restarts"), s.restarts);
  EXPECT_EQ(snap.counter_value("sat.learnt_clauses"), s.learnt_clauses);
  EXPECT_EQ(snap.counter_value("sat.removed_learnts"), s.removed_learnts);
  EXPECT_EQ(snap.counter_value("sat.blocker_skips"), s.blocker_skips);
  EXPECT_EQ(snap.counter_value("sat.binary_propagations"), s.binary_propagations);
  EXPECT_EQ(snap.counter_value("sat.heap_decisions"), s.heap_decisions);
  EXPECT_GT(s.conflicts, 0u);  // the instance actually exercised the search
}

TEST_F(ObsTest, SolverPhaseSpansNestWithinSolve) {
  namespace sat = msropm::sat;
  obs::set_tracing_enabled(true);
  obs::set_thread_lane("solver-test");
  const auto g = msropm::graph::kings_graph(5, 5);
  const auto enc = sat::encode_coloring(g, 3, {.symmetry_breaking = false});
  sat::Solver solver(enc.cnf, {});
  (void)solver.solve();

  const auto lanes = obs::snapshot_trace();
  const auto* lane = find_lane(lanes, "solver-test");
  ASSERT_NE(lane, nullptr);
  const obs::TraceEvent* solve_ev = nullptr;
  std::size_t propagate_count = 0;
  for (const auto& ev : lane->events) {
    if (std::string_view(ev.name) == "sat.solve") solve_ev = &ev;
    if (std::string_view(ev.name) == "sat.propagate") ++propagate_count;
  }
  ASSERT_NE(solve_ev, nullptr);
  EXPECT_GT(propagate_count, 0u);
  EXPECT_TRUE(spans_properly_nested(*lane));
  // Every propagate span sits inside the solve span.
  for (const auto& ev : lane->events) {
    if (std::string_view(ev.name) != "sat.propagate") continue;
    EXPECT_GE(ev.start_ns, solve_ev->start_ns);
    EXPECT_LE(ev.start_ns + ev.dur_ns, solve_ev->start_ns + solve_ev->dur_ns);
  }
}

TEST_F(ObsConcurrent, RecordingRacesSnapshotsCleanly) {
  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(true);
  const obs::MetricId c = obs::counter("test.concurrent");
  const obs::MetricId t = obs::timer("test.concurrent_timer");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIters = 2000;

  std::atomic<bool> stop_snapshots{false};
  std::thread snapshotter([&]() {
    // Race point-in-time reads against the writers; TSan is the oracle.
    while (!stop_snapshots.load(std::memory_order_relaxed)) {
      (void)obs::snapshot_metrics();
      (void)obs::snapshot_trace();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w]() {
      obs::set_thread_lane("concurrent-" + std::to_string(w));
      for (std::uint64_t i = 0; i < kIters; ++i) {
        obs::Span span("concurrent-span", t);
        span.arg("i", i);
        obs::add(c, 1);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop_snapshots.store(true, std::memory_order_relaxed);
  snapshotter.join();

  const auto snap = obs::snapshot_metrics();
  EXPECT_EQ(snap.counter_value("test.concurrent"), kThreads * kIters);
  const auto* timer = snap.find_timer("test.concurrent_timer");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->stats.count(), kThreads * kIters);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  // Log buckets: bucket 0 holds only value 0; bucket b holds
  // [2^(b-1), 2^b - 1]. The top bucket (64) absorbs everything from 2^63 up,
  // including UINT64_MAX without overflowing the 1<<64 shift.
  using H = obs::HistogramSnapshot;
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(1), 1u);
  EXPECT_EQ(H::bucket_of(2), 2u);
  EXPECT_EQ(H::bucket_of(3), 2u);
  EXPECT_EQ(H::bucket_of(4), 3u);
  EXPECT_EQ(H::bucket_of(7), 3u);
  EXPECT_EQ(H::bucket_of(8), 4u);
  EXPECT_EQ(H::bucket_of(1023), 10u);
  EXPECT_EQ(H::bucket_of(1024), 11u);
  EXPECT_EQ(H::bucket_of(~0ull), 64u);
  for (unsigned b = 0; b < obs::kHistogramBuckets; ++b) {
    EXPECT_EQ(H::bucket_of(H::bucket_lo(b)), b);
    EXPECT_EQ(H::bucket_of(H::bucket_hi(b)), b);
    EXPECT_LE(H::bucket_lo(b), H::bucket_hi(b));
  }
  EXPECT_EQ(H::bucket_hi(64), ~0ull);
}

TEST_F(ObsTest, HistogramObserveAndPercentiles) {
  obs::set_metrics_enabled(true);
  const obs::MetricId h = obs::histogram("test.hist");
  for (std::uint64_t v = 1; v <= 100; ++v) obs::observe(h, v);
  const auto snap = obs::snapshot_metrics();
  const auto* hist = snap.find_histogram("test.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 100u);
  EXPECT_EQ(hist->sum, 5050u);
  EXPECT_DOUBLE_EQ(hist->mean(), 50.5);
  // Bucket resolution is a power of two, so percentiles are approximate:
  // p50 of 1..100 lands in bucket [32..63], p99 in [64..127].
  EXPECT_GE(hist->percentile(50.0), 32.0);
  EXPECT_LE(hist->percentile(50.0), 63.0);
  EXPECT_GE(hist->percentile(99.0), 64.0);
  EXPECT_LE(hist->percentile(99.0), 127.0);
  EXPECT_LE(hist->percentile(0.0), hist->percentile(100.0));
}

TEST_F(ObsTest, HistogramsMergeExactlyAcrossThreads) {
  obs::set_metrics_enabled(true);
  const obs::MetricId h = obs::histogram("test.hist_merge");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h]() {
      for (std::uint64_t i = 0; i < kPerThread; ++i) obs::observe(h, i % 512);
    });
  }
  // Main thread records through live cells; joined workers land in the
  // retired accumulators. Counts and sums must both merge exactly.
  for (std::uint64_t i = 0; i < kPerThread; ++i) obs::observe(h, i % 512);
  for (auto& t : threads) t.join();

  const auto snap = obs::snapshot_metrics();
  const auto* hist = snap.find_histogram("test.hist_merge");
  ASSERT_NE(hist, nullptr);
  const std::uint64_t total = (kThreads + 1) * kPerThread;
  EXPECT_EQ(hist->count, total);
  // Each thread contributes sum(i % 512 for i in 0..4999).
  std::uint64_t per_thread_sum = 0;
  for (std::uint64_t i = 0; i < kPerThread; ++i) per_thread_sum += i % 512;
  EXPECT_EQ(hist->sum, (kThreads + 1) * per_thread_sum);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t n : hist->buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, total);
}

TEST_F(ObsTest, DisabledHistogramRecordsNothing) {
  const obs::MetricId h = obs::histogram("test.hist_disabled");
  obs::observe(h, 42);
  const auto snap = obs::snapshot_metrics();
  const auto* hist = snap.find_histogram("test.hist_disabled");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 0u);
  EXPECT_EQ(hist->sum, 0u);
}

TEST_F(ObsTest, CounterTrackEventsRecorded) {
  obs::set_tracing_enabled(true);
  obs::set_thread_lane("counter-test");
  obs::trace_counter("test.track", 1.5);
  obs::trace_counter("test.track", 3.25);
  const auto lanes = obs::snapshot_trace();
  const auto* lane = find_lane(lanes, "counter-test");
  ASSERT_NE(lane, nullptr);
  ASSERT_EQ(lane->events.size(), 2u);
  EXPECT_EQ(lane->events[0].is_counter, 1);
  EXPECT_DOUBLE_EQ(lane->events[0].counter_value(), 1.5);
  EXPECT_DOUBLE_EQ(lane->events[1].counter_value(), 3.25);
  // Counter samples are points on a track, not spans.
  EXPECT_LT(lane->events[0].dur_ns, 0);
  EXPECT_LE(lane->events[0].start_ns, lane->events[1].start_ns);
}

TEST_F(ObsTest, CounterTracksExportAsLanePrefixedCEvents) {
  obs::set_tracing_enabled(true);
  obs::set_thread_lane("hb-lane");
  obs::trace_counter("test.rate", 7.0);
  {
    obs::Span span("around-counter");
    obs::trace_counter("test.rate", 9.0);
  }
  const std::string path = ::testing::TempDir() + "/msropm_obs_counters.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::remove(path.c_str());

  EXPECT_TRUE(JsonValidator(text).valid());
  // Counter events use ph "C" and prefix the lane so Perfetto renders one
  // track per worker lane instead of merging same-named counters.
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"hb-lane/test.rate\""), std::string::npos);
  EXPECT_NE(text.find("\"value\":7"), std::string::npos);
  EXPECT_NE(text.find("\"value\":9"), std::string::npos);
}

TEST_F(ObsTest, JsonExportIsValidAndComplete) {
  obs::set_metrics_enabled(true);
  obs::add(obs::counter("test.c"), 5);
  obs::set_gauge(obs::gauge("test.g"), 2.5);
  obs::record_time(obs::timer("test.t"), 1000);
  obs::observe(obs::histogram("test.h"), 17);
  const auto snap = obs::snapshot_metrics();
  const std::string json = obs::export_metrics_json(snap);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.c\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"test.h\""), std::string::npos);
}

namespace {

/// Minimal Prometheus text-format line checker. Validates just enough to
/// catch exporter bugs: every sample line is `name{labels} value` with a
/// parseable value, histogram `le` buckets are cumulative and end at +Inf ==
/// _count, and every `# TYPE` names a metric that actually appears.
struct PromParser {
  struct Sample {
    std::string name;
    std::string labels;  // raw text between braces, may be empty
    double value = 0.0;
  };
  std::vector<Sample> samples;
  std::vector<std::pair<std::string, std::string>> types;  // (metric, type)
  std::string error;

  bool parse(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream ls(line.substr(7));
        std::string metric, type;
        if (!(ls >> metric >> type)) return set_error("bad TYPE line: " + line);
        types.emplace_back(metric, type);
        continue;
      }
      if (line[0] == '#') continue;  // HELP or comment
      Sample s;
      std::size_t name_end = line.find_first_of("{ ");
      if (name_end == std::string::npos) return set_error("no value: " + line);
      s.name = line.substr(0, name_end);
      std::size_t value_start = name_end;
      if (line[name_end] == '{') {
        const std::size_t close = line.find('}', name_end);
        if (close == std::string::npos) return set_error("unclosed {: " + line);
        s.labels = line.substr(name_end + 1, close - name_end - 1);
        value_start = close + 1;
      }
      try {
        s.value = std::stod(line.substr(value_start));
      } catch (const std::exception&) {
        return set_error("unparseable value: " + line);
      }
      for (char ch : s.name) {
        if (!(std::isalnum(static_cast<unsigned char>(ch)) || ch == '_')) {
          return set_error("invalid metric name char: " + line);
        }
      }
      samples.push_back(std::move(s));
    }
    return true;
  }

  bool set_error(std::string msg) {
    error = std::move(msg);
    return false;
  }

  double value_of(const std::string& name, const std::string& labels = "") const {
    for (const auto& s : samples) {
      if (s.name == name && s.labels == labels) return s.value;
    }
    return -1.0;
  }
};

}  // namespace

TEST_F(ObsTest, PrometheusExportWellFormed) {
  obs::set_metrics_enabled(true);
  obs::add(obs::counter("test.requests"), 5);
  obs::set_gauge(obs::gauge("test.depth"), 2.5);
  obs::record_time(obs::timer("test.latency"), 1000);
  for (std::uint64_t v : {1ull, 3ull, 3ull, 40ull}) {
    obs::observe(obs::histogram("test.sizes"), v);
  }
  const auto snap = obs::snapshot_metrics();
  const std::string prom = obs::export_metrics_prometheus(snap);

  PromParser p;
  ASSERT_TRUE(p.parse(prom)) << p.error << "\n" << prom;

  // Counter: msropm_ prefix, dots sanitized, _total suffix, right value.
  EXPECT_DOUBLE_EQ(p.value_of("msropm_test_requests_total"), 5.0);
  EXPECT_DOUBLE_EQ(p.value_of("msropm_test_depth"), 2.5);
  // Timer renders as a summary with count and quantiles.
  EXPECT_DOUBLE_EQ(p.value_of("msropm_test_latency_ns_count"), 1.0);

  // Histogram: cumulative le buckets ending in +Inf == _count.
  double prev = 0.0;
  bool saw_inf = false;
  for (const auto& s : p.samples) {
    if (s.name != "msropm_test_sizes_bucket") continue;
    EXPECT_GE(s.value, prev) << "buckets must be cumulative";
    prev = s.value;
    if (s.labels.find("+Inf") != std::string::npos) saw_inf = true;
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_DOUBLE_EQ(prev, 4.0);  // final cumulative == total observations
  EXPECT_DOUBLE_EQ(p.value_of("msropm_test_sizes_count"), 4.0);
  EXPECT_DOUBLE_EQ(p.value_of("msropm_test_sizes_sum"), 47.0);

  // Every TYPE declaration names a metric family that appears in samples.
  for (const auto& [metric, type] : p.types) {
    bool found = false;
    for (const auto& s : p.samples) {
      if (s.name == metric || s.name.rfind(metric + "_", 0) == 0) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "TYPE for absent metric: " << metric;
    EXPECT_TRUE(type == "counter" || type == "gauge" || type == "summary" ||
                type == "histogram")
        << type;
  }
}

#endif  // MSROPM_OBS_DISABLED
