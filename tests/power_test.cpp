// Tests for the activity-based power model against the paper's Table 1.
#include "msropm/power/power_model.hpp"

#include <gtest/gtest.h>

#include "msropm/graph/builders.hpp"

namespace {

using namespace msropm;
using power::ActivityProfile;
using power::PowerModel;
using power::TechnologyParams;

struct Table1Row {
  std::size_t side;
  std::size_t nodes;
  double paper_mw;
  double tolerance_frac;
};

class Table1PowerSweep : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1PowerSweep, ReproducesPaperPowerWithinTolerance) {
  const auto& row = GetParam();
  const auto g = graph::kings_graph_square(row.side);
  ASSERT_EQ(g.num_nodes(), row.nodes);
  const PowerModel model;
  const double p_mw =
      model.average_power_w(g.num_nodes(), g.num_edges()) * 1e3;
  EXPECT_NEAR(p_mw, row.paper_mw, row.paper_mw * row.tolerance_frac)
      << "paper reports " << row.paper_mw << " mW";
}

// 49- and 2116-node rows calibrate the constants (tight tolerance); the 400-
// and 1024-node rows are predictions (tolerance ~10%).
INSTANTIATE_TEST_SUITE_P(PaperRows, Table1PowerSweep,
                         ::testing::Values(Table1Row{7, 49, 9.4, 0.03},
                                           Table1Row{20, 400, 60.3, 0.10},
                                           Table1Row{32, 1024, 146.1, 0.10},
                                           Table1Row{46, 2116, 283.4, 0.03}));

TEST(PowerModel, ScalesLinearlyWithNodes) {
  const PowerModel model;
  // Per-node marginal power is constant: P(2n) - P(n) ~ P(3n) - P(2n).
  const auto g1 = graph::kings_graph_square(10);
  const auto g2 = graph::kings_graph_square(20);
  const auto g3 = graph::kings_graph_square(30);
  const double p1 = model.average_power_w(g1.num_nodes(), g1.num_edges());
  const double p2 = model.average_power_w(g2.num_nodes(), g2.num_edges());
  const double p3 = model.average_power_w(g3.num_nodes(), g3.num_edges());
  const double slope12 = (p2 - p1) / static_cast<double>(g2.num_nodes() - g1.num_nodes());
  const double slope23 = (p3 - p2) / static_cast<double>(g3.num_nodes() - g2.num_nodes());
  EXPECT_NEAR(slope12, slope23, slope12 * 0.05);
  EXPECT_GT(p2, p1);
  EXPECT_GT(p3, p2);
}

TEST(PowerModel, ComponentPowersPositive) {
  const PowerModel model;
  EXPECT_GT(model.rosc_power_w(), 0.0);
  EXPECT_GT(model.b2b_power_w(), 0.0);
  EXPECT_GT(model.readout_power_w(), 0.0);
  EXPECT_GT(model.shil_injector_power_w(), 0.0);
  // ROSC (11 stages) dominates a single B2B.
  EXPECT_GT(model.rosc_power_w(), model.b2b_power_w());
}

TEST(PowerModel, FixedOverheadIsIntercept) {
  TechnologyParams tech;
  const PowerModel model(tech);
  EXPECT_NEAR(model.average_power_w(0, 0), tech.p_fixed_w, 1e-12);
}

TEST(PowerModel, ActivityDutiesScalePower) {
  const PowerModel model;
  ActivityProfile idle{};
  idle.coupling_duty = 0.0;
  idle.shil_duty = 0.0;
  ActivityProfile nominal{};
  const double p_idle = model.average_power_w(100, 400, idle);
  const double p_nominal = model.average_power_w(100, 400, nominal);
  EXPECT_LT(p_idle, p_nominal);
}

TEST(PowerModel, EffectiveEdgeActivity) {
  ActivityProfile a{};
  a.coupling_duty = 1.0;
  a.stage1_coupling_share = 0.5;
  a.stage2_active_edge_fraction = 0.5;
  EXPECT_NEAR(a.effective_edge_activity(), 0.75, 1e-12);
  a.stage2_active_edge_fraction = 1.0;
  EXPECT_NEAR(a.effective_edge_activity(), 1.0, 1e-12);
}

TEST(PowerModel, EnergyPerRunIsPowerTimesTime) {
  const PowerModel model;
  const auto g = graph::kings_graph_square(7);
  const double p = model.average_power_w(g.num_nodes(), g.num_edges());
  const double e = model.energy_per_run_j(g.num_nodes(), g.num_edges(), 60e-9);
  EXPECT_NEAR(e, p * 60e-9, 1e-15);
  // 49-node run: order nanojoules (9.4 mW * 60 ns ~ 0.56 nJ).
  EXPECT_NEAR(e, 0.56e-9, 0.1e-9);
}

TEST(PowerModel, HigherFrequencyCostsMore) {
  TechnologyParams fast;
  fast.f0_hz = 7.0e9;  // the ICCAD'24 ROPM frequency
  const PowerModel model_fast(fast);
  const PowerModel model_slow;
  EXPECT_GT(model_fast.rosc_power_w(), model_slow.rosc_power_w() * 5.0);
}

}  // namespace
