// Tests for the cooperative StopSource/StopToken cancellation primitive.
#include "msropm/util/stop_token.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace {

using msropm::util::StopSource;
using msropm::util::StopToken;

TEST(StopToken, DefaultTokenNeverStops) {
  const StopToken token;
  EXPECT_FALSE(token.stop_possible());
  EXPECT_FALSE(token.stop_requested());
}

TEST(StopToken, SourceFlagReachesAllTokens) {
  StopSource source;
  const StopToken a = source.token();
  const StopToken b = source.token();
  EXPECT_TRUE(a.stop_possible());
  EXPECT_FALSE(a.stop_requested());
  EXPECT_FALSE(source.stop_requested());
  source.request_stop();
  EXPECT_TRUE(source.stop_requested());
  EXPECT_TRUE(a.stop_requested());
  EXPECT_TRUE(b.stop_requested());
}

TEST(StopToken, RequestStopIsIdempotent) {
  StopSource source;
  source.request_stop();
  source.request_stop();
  EXPECT_TRUE(source.token().stop_requested());
}

TEST(StopToken, TokensOutliveTheSource) {
  StopToken token;
  {
    StopSource source;
    token = source.token();
    source.request_stop();
  }
  EXPECT_TRUE(token.stop_requested());
}

TEST(StopToken, PastDeadlineStops) {
  const auto past = StopToken::Clock::now() - std::chrono::milliseconds(1);
  const StopToken token = StopToken::at_deadline(past);
  EXPECT_TRUE(token.stop_possible());
  EXPECT_TRUE(token.stop_requested());
}

TEST(StopToken, FutureDeadlineDoesNotStopYet) {
  const auto future = StopToken::Clock::now() + std::chrono::hours(1);
  const StopToken token = StopToken::at_deadline(future);
  EXPECT_TRUE(token.stop_possible());
  EXPECT_FALSE(token.stop_requested());
}

TEST(StopToken, SourceWithDeadlineStopsOnEitherSignal) {
  StopSource source;
  const auto future = StopToken::Clock::now() + std::chrono::hours(1);
  const StopToken token = source.token_with_deadline(future);
  EXPECT_FALSE(token.stop_requested());
  source.request_stop();
  EXPECT_TRUE(token.stop_requested());

  StopSource quiet;
  const auto past = StopToken::Clock::now() - std::chrono::milliseconds(1);
  EXPECT_TRUE(quiet.token_with_deadline(past).stop_requested());
}

TEST(StopToken, StopIsVisibleAcrossThreads) {
  StopSource source;
  const StopToken token = source.token();
  std::thread requester([&source]() { source.request_stop(); });
  requester.join();
  EXPECT_TRUE(token.stop_requested());
}

TEST(StopToken, CopiesShareTheFlag) {
  StopSource source;
  const StopToken original = source.token();
  const StopToken copy = original;  // NOLINT(performance-unnecessary-copy-initialization)
  source.request_stop();
  EXPECT_TRUE(copy.stop_requested());
}

TEST(StopToken, FlagTripTimeRecordsWhenStopWasRequested) {
  StopSource source;
  const StopToken token = source.token();
  EXPECT_FALSE(token.flag_trip_time().has_value());

  const auto before = StopToken::Clock::now();
  source.request_stop();
  const auto after = StopToken::Clock::now();

  const auto trip = token.flag_trip_time();
  ASSERT_TRUE(trip.has_value());
  EXPECT_GE(*trip, before);
  EXPECT_LE(*trip, after);
}

TEST(StopToken, FlagTripTimeIsFirstRequestOnly) {
  StopSource source;
  const StopToken token = source.token();
  source.request_stop();
  const auto first = token.flag_trip_time();
  ASSERT_TRUE(first.has_value());
  source.request_stop();  // idempotent: must not move the stamp
  EXPECT_EQ(token.flag_trip_time(), first);
}

TEST(StopToken, DeadlineExpiryIsNotAFlagTrip) {
  // A timeout and a sibling-cancel must stay distinguishable: the deadline
  // stops the token but leaves the flag untripped, and vice versa.
  const auto past = StopToken::Clock::now() - std::chrono::milliseconds(1);
  const StopToken timed_out = StopToken::at_deadline(past);
  EXPECT_TRUE(timed_out.stop_requested());
  EXPECT_TRUE(timed_out.deadline_expired());
  EXPECT_FALSE(timed_out.flag_trip_time().has_value());

  StopSource source;
  const auto future = StopToken::Clock::now() + std::chrono::hours(1);
  const StopToken cancelled = source.token_with_deadline(future);
  source.request_stop();
  EXPECT_TRUE(cancelled.stop_requested());
  EXPECT_FALSE(cancelled.deadline_expired());
  EXPECT_TRUE(cancelled.flag_trip_time().has_value());
}

TEST(StopToken, TripTimeVisibleAcrossThreads) {
  StopSource source;
  const StopToken token = source.token();
  std::thread requester([&source]() { source.request_stop(); });
  requester.join();
  ASSERT_TRUE(token.flag_trip_time().has_value());
  EXPECT_LE(*token.flag_trip_time(), StopToken::Clock::now());
}

}  // namespace
