// Tests for the exact branch-and-bound max-cut solver.
#include "msropm/solvers/maxcut_bb.hpp"

#include <gtest/gtest.h>

#include "msropm/graph/builders.hpp"
#include "msropm/model/maxcut.hpp"
#include "msropm/solvers/maxcut_sa.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using solvers::MaxCutBbOptions;
using solvers::solve_maxcut_bb;

TEST(MaxCutBb, EmptyAndEdgelessGraphs) {
  const auto r0 = solve_maxcut_bb(graph::Graph(0));
  EXPECT_EQ(r0.cut, 0u);
  EXPECT_TRUE(r0.optimal);
  const auto r1 = solve_maxcut_bb(graph::Graph(5));
  EXPECT_EQ(r1.cut, 0u);
  EXPECT_TRUE(r1.optimal);
}

TEST(MaxCutBb, BipartiteGraphsCutEverything) {
  // Bipartite: max cut = all edges.
  const auto g = graph::complete_bipartite_graph(5, 6);
  const auto r = solve_maxcut_bb(g);
  EXPECT_TRUE(r.optimal);
  EXPECT_EQ(r.cut, 30u);
  EXPECT_EQ(model::cut_value(g, r.sides), 30u);
}

TEST(MaxCutBb, OddCycleLeavesOneEdge) {
  const auto g = graph::cycle_graph(9);
  const auto r = solve_maxcut_bb(g);
  EXPECT_TRUE(r.optimal);
  EXPECT_EQ(r.cut, 8u);
}

TEST(MaxCutBb, CompleteGraphFormula) {
  // Max cut of K_n is floor(n/2)*ceil(n/2).
  for (std::size_t n : {4u, 5u, 6u, 7u, 8u}) {
    const auto r = solve_maxcut_bb(graph::complete_graph(n));
    EXPECT_TRUE(r.optimal);
    EXPECT_EQ(r.cut, (n / 2) * ((n + 1) / 2)) << "K" << n;
  }
}

class MaxCutBbRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxCutBbRandomSweep, MatchesBruteforceOnRandomGraphs) {
  util::Rng rng(GetParam());
  const auto g = graph::erdos_renyi(12, 0.4, rng);
  const auto bb = solve_maxcut_bb(g);
  const auto [exact, sides] = model::max_cut_bruteforce(g);
  (void)sides;
  EXPECT_TRUE(bb.optimal);
  EXPECT_EQ(bb.cut, exact);
  EXPECT_EQ(model::cut_value(g, bb.sides), bb.cut);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxCutBbRandomSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(MaxCutBb, KingsGraph25NodesCertified) {
  // The lattice reference the Fig. 5b normalization wants: exact cut on a
  // 5x5 King's graph. The pattern coloring implies a bipartition cutting
  // all vertical+horizontal... just certify optimality and sanity bounds.
  const auto g = graph::kings_graph_square(5);
  const auto r = solve_maxcut_bb(g);
  EXPECT_TRUE(r.optimal);
  EXPECT_GE(r.cut, g.num_edges() * 2 / 3);
  EXPECT_LE(r.cut, g.num_edges());
  // SA with the default budget should find the same value on this size.
  util::Rng rng(3);
  const auto sa = solvers::solve_maxcut_sa(g, {}, rng);
  EXPECT_EQ(sa.cut, r.cut);
}

TEST(MaxCutBb, NodeLimitDegradesGracefully) {
  util::Rng rng(9);
  const auto g = graph::erdos_renyi(20, 0.5, rng);
  MaxCutBbOptions opts;
  opts.node_limit = 10;
  const auto r = solve_maxcut_bb(g, opts);
  EXPECT_FALSE(r.optimal);
  // Warm-started incumbent is still a valid assignment.
  EXPECT_EQ(model::cut_value(g, r.sides), r.cut);
  EXPECT_GT(r.cut, 0u);
}

}  // namespace
