// Unit tests for the CNF preprocessor: per-technique behavior, stats, and
// model reconstruction through the Remapper.
#include "msropm/sat/preprocess.hpp"

#include <gtest/gtest.h>

#include "msropm/graph/builders.hpp"
#include "msropm/sat/coloring_encoder.hpp"
#include "msropm/sat/solver.hpp"

namespace {

using namespace msropm::sat;

PreprocessOptions only(bool up = false, bool pure = false, bool sub = false,
                       bool selfsub = false, bool bce = false, bool bve = false) {
  PreprocessOptions o;
  o.unit_propagation = up;
  o.pure_literals = pure;
  o.subsumption = sub;
  o.self_subsumption = selfsub;
  o.blocked_clauses = bce;
  o.variable_elimination = bve;
  return o;
}

TEST(Preprocess, EmptyFormula) {
  Cnf cnf(4);
  const auto r = preprocess(cnf);
  EXPECT_FALSE(r.unsat);
  EXPECT_EQ(r.cnf().num_clauses(), 0u);
  EXPECT_EQ(r.stats.simplified_vars, 0u);
  // All four variables are unconstrained; reconstruction must still produce
  // a full-size model.
  const auto model = r.remapper.reconstruct({});
  EXPECT_EQ(model.size(), 4u);
}

TEST(Preprocess, EmptyClauseIsUnsat) {
  Cnf cnf(2);
  cnf.add_clause({});
  const auto r = preprocess(cnf);
  EXPECT_TRUE(r.unsat);
}

TEST(Preprocess, TautologyAndDuplicateRemoval) {
  Cnf cnf(3);
  cnf.add_binary(pos(0), neg(0));          // tautology
  cnf.add_ternary(pos(0), pos(1), pos(2));
  cnf.add_ternary(pos(2), pos(1), pos(0));  // duplicate (different order)
  cnf.add_clause({pos(1), pos(1), pos(2)});  // duplicate literal collapses
  const auto r = preprocess(cnf, only());
  EXPECT_EQ(r.stats.tautologies, 1u);
  EXPECT_EQ(r.stats.duplicate_clauses, 1u);
  EXPECT_EQ(r.cnf().num_clauses(), 2u);
}

TEST(Preprocess, UnitPropagationToFixpoint) {
  // x0; x0 -> x1; x1 -> x2: everything fixed, no clauses left.
  Cnf cnf(3);
  cnf.add_unit(pos(0));
  cnf.add_binary(neg(0), pos(1));
  cnf.add_binary(neg(1), pos(2));
  const auto r = preprocess(cnf, only(/*up=*/true));
  EXPECT_FALSE(r.unsat);
  EXPECT_EQ(r.cnf().num_clauses(), 0u);
  EXPECT_EQ(r.stats.unit_fixed, 3u);
  const auto model = r.remapper.reconstruct({});
  ASSERT_EQ(model.size(), 3u);
  EXPECT_TRUE(cnf.satisfied_by(model));
  EXPECT_EQ(model[0], 1);
  EXPECT_EQ(model[1], 1);
  EXPECT_EQ(model[2], 1);
}

TEST(Preprocess, UnitConflictIsUnsat) {
  Cnf cnf(2);
  cnf.add_unit(pos(0));
  cnf.add_binary(neg(0), pos(1));
  cnf.add_unit(neg(1));
  const auto r = preprocess(cnf, only(/*up=*/true));
  EXPECT_TRUE(r.unsat);
}

TEST(Preprocess, PureLiteralElimination) {
  // x0 appears only positively; removing its clauses makes x1 pure too
  // (cascade), leaving nothing.
  Cnf cnf(3);
  cnf.add_binary(pos(0), pos(1));
  cnf.add_binary(pos(0), neg(1));
  cnf.add_binary(pos(0), pos(2));
  const auto r = preprocess(cnf, only(false, /*pure=*/true));
  EXPECT_EQ(r.cnf().num_clauses(), 0u);
  EXPECT_GE(r.stats.pure_fixed, 1u);
  const auto model = r.remapper.reconstruct({});
  EXPECT_TRUE(cnf.satisfied_by(model));
  EXPECT_EQ(model[0], 1) << "pure literal must be set to its polarity";
}

TEST(Preprocess, PureLiteralBothPolaritiesUntouched) {
  Cnf cnf(2);
  cnf.add_binary(pos(0), pos(1));
  cnf.add_binary(neg(0), neg(1));
  const auto r = preprocess(cnf, only(false, /*pure=*/true));
  EXPECT_EQ(r.cnf().num_clauses(), 2u);
  EXPECT_EQ(r.stats.pure_fixed, 0u);
}

TEST(Preprocess, SubsumptionRemovesSuperset) {
  Cnf cnf(3);
  cnf.add_binary(pos(0), pos(1));
  cnf.add_ternary(pos(0), pos(1), pos(2));  // subsumed by the binary
  const auto r = preprocess(cnf, only(false, false, /*sub=*/true));
  EXPECT_EQ(r.cnf().num_clauses(), 1u);
  EXPECT_EQ(r.stats.subsumed, 1u);
}

TEST(Preprocess, SelfSubsumptionStrengthens) {
  // (x0 | x1) and (~x0 | x1 | x2): resolving on x0 gives (x1 | x2) which
  // subsumes the second clause -> drop ~x0 from it.
  Cnf cnf(3);
  cnf.add_binary(pos(0), pos(1));
  cnf.add_ternary(neg(0), pos(1), pos(2));
  const auto r =
      preprocess(cnf, only(false, false, /*sub=*/true, /*selfsub=*/true));
  EXPECT_GE(r.stats.strengthened, 1u);
  const Cnf simplified = r.cnf();  // named: range-for over a temporary dangles
  for (const auto& c : simplified.clauses()) EXPECT_LE(c.size(), 2u);
}

TEST(Preprocess, BlockedClauseEliminationOnAmoLadder) {
  // Direct one-node 3-coloring: ALO + 3 AMO clauses. Every AMO clause is
  // blocked (all resolvents with the ALO clause are tautological).
  Cnf cnf(3);
  cnf.add_ternary(pos(0), pos(1), pos(2));
  cnf.add_binary(neg(0), neg(1));
  cnf.add_binary(neg(0), neg(2));
  cnf.add_binary(neg(1), neg(2));
  const auto r = preprocess(cnf, only(false, false, false, false, /*bce=*/true));
  EXPECT_GE(r.stats.blocked, 3u);
  // A model of the simplified formula that sets several colors must be
  // repaired by the reconstruction stack to satisfy the AMO clauses.
  Solver s(r.cnf());
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  const auto model = r.remapper.reconstruct(s.model());
  EXPECT_TRUE(cnf.satisfied_by(model));
}

TEST(Preprocess, BveEliminatesChainVariable) {
  // x0 -> x1 -> x2 chain written as implications: the middle variable has one
  // positive and one negative occurrence and resolves away.
  Cnf cnf(3);
  cnf.add_binary(neg(0), pos(1));
  cnf.add_binary(neg(1), pos(2));
  const auto r =
      preprocess(cnf, only(false, false, false, false, false, /*bve=*/true));
  EXPECT_GE(r.stats.eliminated_vars, 1u);
  // The resolvent (~x0 | x2) must survive.
  Solver s(r.cnf());
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  const auto model = r.remapper.reconstruct(s.model());
  EXPECT_TRUE(cnf.satisfied_by(model));
}

TEST(Remapper, BveReconstructionFlipsOnlyWhenForced) {
  // Hand-built scenario: x1 was eliminated from (x0 | x1) and (~x1 | x2);
  // the positive side {(x0 | x1)} sits on the stack, x0 -> 0 and x2 -> 1 in
  // the simplified space.
  Remapper remapper(3);
  remapper.push(Remapper::Kind::kEliminated, pos(1));
  const Clause stored{pos(0), pos(1)};
  remapper.push_clause(stored.data(), stored.size());
  remapper.set_map({0, Remapper::kUnmapped, 1}, 2);

  // x0 false leaves (x0 | x1) unsatisfied: reconstruction must flip x1 on.
  const auto forced = remapper.reconstruct({0, 1});
  EXPECT_EQ(forced[0], 0);
  EXPECT_EQ(forced[1], 1) << "stored side unsatisfied -> eliminated var flips";
  EXPECT_EQ(forced[2], 1);

  // x0 true satisfies the stored side: x1 stays at its default (false), which
  // is what keeps the negative side (~x1 | x2) satisfied for free.
  const auto relaxed = remapper.reconstruct({1, 0});
  EXPECT_EQ(relaxed[0], 1);
  EXPECT_EQ(relaxed[1], 0);
  EXPECT_EQ(relaxed[2], 0);
}

TEST(Remapper, BlockedClauseReconstruction) {
  // Clause (x0 | x1) was removed as blocked on x0; a model with both mapped
  // vars false must be repaired by setting the blocking literal true.
  Remapper remapper(2);
  remapper.push(Remapper::Kind::kBlocked, pos(0));
  const Clause blocked{pos(0), pos(1)};
  remapper.push_clause(blocked.data(), blocked.size());
  remapper.set_map({0, 1}, 2);
  const auto repaired = remapper.reconstruct({0, 0});
  EXPECT_EQ(repaired[0], 1);
  const auto untouched = remapper.reconstruct({0, 1});
  EXPECT_EQ(untouched[0], 0) << "satisfied blocked clause must not flip";
}

TEST(Preprocess, BveRespectsGrowthCap) {
  // A variable with 3 positive and 3 negative occurrences over disjoint
  // literals yields 9 resolvents > 6 originals: elimination must be skipped
  // with the default zero growth cap.
  Cnf cnf(7);
  for (Var v = 1; v <= 3; ++v) cnf.add_binary(pos(0), pos(v));
  for (Var v = 4; v <= 6; ++v) cnf.add_binary(neg(0), pos(v));
  const auto r =
      preprocess(cnf, only(false, false, false, false, false, /*bve=*/true));
  EXPECT_EQ(r.stats.eliminated_vars, 0u);
  EXPECT_EQ(r.cnf().num_clauses(), 6u);
}

TEST(Preprocess, VariableCompaction) {
  // Fix x1 by unit propagation; remaining vars must be densely renumbered.
  Cnf cnf(4);
  cnf.add_unit(pos(1));
  cnf.add_binary(pos(0), pos(3));
  const auto r = preprocess(cnf, only(/*up=*/true));
  EXPECT_EQ(r.stats.simplified_vars, 2u);
  EXPECT_EQ(r.cnf().num_vars(), 2u);
  EXPECT_TRUE(r.remapper.map(0).has_value());
  EXPECT_FALSE(r.remapper.map(1).has_value()) << "fixed var must be unmapped";
  EXPECT_FALSE(r.remapper.map(2).has_value()) << "unconstrained var unmapped";
  EXPECT_TRUE(r.remapper.map(3).has_value());
}

TEST(Preprocess, StatsAccounting) {
  Cnf cnf(4);
  cnf.add_unit(pos(0));
  cnf.add_ternary(pos(1), pos(2), pos(3));
  const auto r = preprocess(cnf);
  EXPECT_EQ(r.stats.original_vars, 4u);
  EXPECT_EQ(r.stats.original_clauses, 2u);
  EXPECT_EQ(r.stats.original_literals, 4u);
  EXPECT_GE(r.stats.rounds, 1u);
  EXPECT_GE(r.stats.seconds, 0.0);
  EXPECT_GT(r.stats.clause_reduction(), 0.0);
}

TEST(Preprocess, RunIsSingleUse) {
  Cnf cnf(1);
  Preprocessor p(cnf);
  (void)p.run();
  EXPECT_THROW((void)p.run(), std::logic_error);
}

TEST(Preprocess, ReconstructRejectsWrongModelSize) {
  Cnf cnf(2);
  cnf.add_binary(pos(0), pos(1));
  const auto r = preprocess(cnf);
  EXPECT_THROW((void)r.remapper.reconstruct(std::vector<std::uint8_t>(17)),
               std::invalid_argument);
}

TEST(Preprocess, KingsGraphColoringRemovesOverTwentyPercent) {
  const auto g = msropm::graph::kings_graph_square(16);
  const auto enc = encode_coloring(g, 4);
  const auto r =
      preprocess(enc.cnf, exact_coloring_solver_options().preprocess);
  EXPECT_FALSE(r.unsat);
  EXPECT_GE(r.stats.clause_reduction(), 0.20)
      << "BCE must strip the at-most-one ladders";
  Solver s(r.cnf());
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  const auto model = r.remapper.reconstruct(s.model());
  EXPECT_TRUE(enc.cnf.satisfied_by(model));
}

TEST(SolverPresimplify, ModelInOriginalSpace) {
  const auto g = msropm::graph::kings_graph_square(8);
  const auto enc = encode_coloring(g, 4);
  SolverOptions options;
  options.presimplify = true;
  Solver s(enc.cnf, options);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model().size(), enc.cnf.num_vars());
  EXPECT_TRUE(enc.cnf.satisfied_by(s.model()));
  ASSERT_TRUE(s.preprocess_stats().has_value());
  EXPECT_GT(s.preprocess_stats()->clause_reduction(), 0.0);
}

TEST(SolverPresimplify, UnsatDetectedDuringPreprocessing) {
  Cnf cnf(1);
  cnf.add_unit(pos(0));
  cnf.add_unit(neg(0));
  SolverOptions options;
  options.presimplify = true;
  Solver s(cnf, options);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(SolverPresimplify, AssumptionsRejected) {
  Cnf cnf(2);
  cnf.add_binary(pos(0), pos(1));
  SolverOptions options;
  options.presimplify = true;
  Solver s(cnf, options);
  EXPECT_THROW((void)s.solve({pos(0)}), std::logic_error);
  // Precondition failures do not consume the single shot: a retry without
  // assumptions must run normally.
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

}  // namespace
