// Tests for the coupled-ROSC fabric: B2B anti-phase coupling, SHIL locking,
// control surface and waveform capture.
#include "msropm/circuit/fabric.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "msropm/circuit/waveform.hpp"
#include "msropm/graph/builders.hpp"
#include "msropm/phase/network.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using circuit::FabricParams;
using circuit::RoscFabric;
using circuit::WaveformRecorder;
using phase::angular_distance;

constexpr double kPi = std::numbers::pi;

TEST(FabricParams, PaperDefaultsNear1p3GHz) {
  const auto p = FabricParams::paper_defaults();
  EXPECT_EQ(p.stages, 11u);
  EXPECT_NEAR(circuit::estimate_ring_frequency(p.inverter, p.stages), 1.3e9,
              1.3e9 * 0.01);
  EXPECT_DOUBLE_EQ(p.shil_frequency_hz, 2.6e9);  // 2nd order SHIL
}

TEST(Fabric, AllOscillatorsRunFreely) {
  const auto g = graph::Graph(3);
  RoscFabric fabric(g, FabricParams::paper_defaults());
  fabric.run(8e-9);
  for (std::size_t o = 0; o < 3; ++o) {
    EXPECT_GT(fabric.measured_frequency(o), 0.9e9);
    EXPECT_LT(fabric.measured_frequency(o), 1.8e9);
  }
}

TEST(Fabric, B2BCouplingDrivesAntiPhase) {
  // Two coupled ROSCs with inverting (B2B) coupling settle out of phase
  // (paper Fig. 1).
  const auto g = graph::path_graph(2);
  auto params = FabricParams::paper_defaults();
  RoscFabric fabric(g, params);
  util::Rng rng(5);
  fabric.randomize(rng);
  fabric.set_couplings_enabled(true);
  fabric.run(25e-9);
  const double diff =
      angular_distance(fabric.phase(0), fabric.phase(1));
  EXPECT_NEAR(diff, kPi, 0.6)
      << "phases " << fabric.phase(0) << " vs " << fabric.phase(1);
}

TEST(Fabric, ShilBinarizesPhases) {
  // Uncoupled oscillators under SHIL 1 end near 0 or 180 deg of the
  // reference; the two-lobe structure is the paper's binarization.
  const auto g = graph::Graph(6);
  RoscFabric fabric(g, FabricParams::paper_defaults());
  util::Rng rng(7);
  fabric.randomize(rng);
  fabric.run(6e-9);  // free-run first so detectors lock to real edges
  fabric.set_shil_select_uniform(0);
  fabric.set_shil_enabled(true);
  fabric.run(14e-9);
  for (std::size_t o = 0; o < 6; ++o) {
    const double ph = fabric.phase(o);
    const double to_zero = angular_distance(ph, 0.0);
    const double to_pi = angular_distance(ph, kPi);
    EXPECT_LT(std::min(to_zero, to_pi), 0.5)
        << "osc " << o << " phase " << ph;
  }
}

TEST(Fabric, Shil2ShiftsLockLobesByQuarterPeriod) {
  // SHIL 2 = 2f wave delayed by half its period. Lock lobes move 90 deg.
  const auto g = graph::Graph(8);
  RoscFabric f1(g, FabricParams::paper_defaults());
  RoscFabric f2(g, FabricParams::paper_defaults());
  util::Rng rng(11);
  f1.randomize(rng);
  util::Rng rng2(11);
  f2.randomize(rng2);
  f1.run(6e-9);
  f2.run(6e-9);
  f1.set_shil_select_uniform(0);
  f2.set_shil_select_uniform(1);
  f1.set_shil_enabled(true);
  f2.set_shil_enabled(true);
  f1.run(14e-9);
  f2.run(14e-9);
  // Average lobe position of f2 sits 90 deg away from f1's lobes.
  for (std::size_t o = 0; o < 8; ++o) {
    const double p1 = f1.phase(o);
    const double p2 = f2.phase(o);
    const double lobe1 = std::min(angular_distance(p1, 0.0),
                                  angular_distance(p1, kPi));
    const double lobe2 = std::min(angular_distance(p2, kPi / 2),
                                  angular_distance(p2, 1.5 * kPi));
    EXPECT_LT(lobe1, 0.6) << "SHIL1 osc " << o;
    EXPECT_LT(lobe2, 0.6) << "SHIL2 osc " << o;
  }
}

TEST(Fabric, ShilWaveTiming) {
  const auto g = graph::Graph(2);
  RoscFabric fabric(g, FabricParams::paper_defaults());
  const double period = 1.0 / 2.6e9;
  fabric.set_shil_select({0, 1});
  // Osc 0 (SHIL 1): high in the first half of the 2f period.
  EXPECT_DOUBLE_EQ(fabric.shil_wave(0, 0.1 * period), 1.0);
  EXPECT_DOUBLE_EQ(fabric.shil_wave(0, 0.6 * period), 0.0);
  // Osc 1 (SHIL 2): delayed by half the 2f period.
  EXPECT_DOUBLE_EQ(fabric.shil_wave(1, 0.1 * period), 0.0);
  EXPECT_DOUBLE_EQ(fabric.shil_wave(1, 0.6 * period), 1.0);
}

TEST(Fabric, DisabledOscillatorParksAtResetPattern) {
  // L_EN off: the ring parks at the alternating rail pattern (a gated ring
  // holds definite logic levels) and stops oscillating; others keep running.
  const auto g = graph::Graph(2);
  RoscFabric fabric(g, FabricParams::paper_defaults());
  util::Rng rng(3);
  fabric.randomize(rng);
  fabric.set_oscillator_enable(1, false);
  fabric.run(5e-9);
  const double vdd = fabric.params().inverter.vdd;
  EXPECT_NEAR(fabric.output(1), vdd, 0.05);      // stage 0 parks high
  EXPECT_NEAR(fabric.voltage(1, 1), 0.0, 0.05);  // stage 1 parks low
  EXPECT_GT(fabric.measured_frequency(0), 1.0e9);  // osc 0 still alive
  // Parked ring produces no further rising edges: frequency measured from
  // its (at most one) startup crossing stays far from the running rings.
  const double f1 = fabric.measured_frequency(1);
  EXPECT_TRUE(f1 == 0.0 || f1 < 0.5e9) << f1;
}

TEST(Fabric, GlobalEnableParksEverything) {
  const auto g = graph::Graph(2);
  RoscFabric fabric(g, FabricParams::paper_defaults());
  fabric.set_global_enable(false);
  fabric.run(5e-9);
  const double vdd = fabric.params().inverter.vdd;
  for (std::size_t o = 0; o < 2; ++o) {
    for (std::size_t s = 0; s < 11; ++s) {
      const double target = (s % 2 == 0) ? vdd : 0.0;
      EXPECT_NEAR(fabric.voltage(o, s), target, 0.05);
    }
  }
}

TEST(Fabric, EdgeEnableMaskGatesCoupling) {
  const auto g = graph::path_graph(2);
  auto params = FabricParams::paper_defaults();
  params.coupling_strength = 0.5;  // exaggerate for a clear signal
  RoscFabric coupled(g, params);
  RoscFabric gated(g, params);
  util::Rng rng(13);
  coupled.randomize(rng);
  util::Rng rng2(13);
  gated.randomize(rng2);
  coupled.set_couplings_enabled(true);
  gated.set_couplings_enabled(true);
  gated.set_edge_enable({0});
  coupled.run(20e-9);
  gated.run(20e-9);
  const double coupled_diff = angular_distance(coupled.phase(0), coupled.phase(1));
  EXPECT_NEAR(coupled_diff, kPi, 0.6);
  // The gated pair keeps whatever offset startup gave it; it must NOT be
  // reliably anti-phase. Just verify both rings still oscillate.
  EXPECT_GT(gated.measured_frequency(0), 0.5e9);
  EXPECT_GT(gated.measured_frequency(1), 0.5e9);
}

TEST(Fabric, StaggeredStartupDecorrelatesPhases) {
  const auto g = graph::Graph(6);
  RoscFabric fabric(g, FabricParams::paper_defaults());
  util::Rng rng(17);
  fabric.stagger_startup(rng, 3e-9);
  fabric.run(10e-9);
  // Phases should not all coincide.
  double spread = 0.0;
  for (std::size_t o = 1; o < 6; ++o) {
    spread = std::max(spread, angular_distance(fabric.phase(0), fabric.phase(o)));
  }
  EXPECT_GT(spread, 0.3);
}

TEST(Fabric, ValidatesArguments) {
  const auto g = graph::path_graph(2);
  RoscFabric fabric(g, FabricParams::paper_defaults());
  EXPECT_THROW((void)fabric.voltage(2, 0), std::out_of_range);
  EXPECT_THROW((void)fabric.voltage(0, 11), std::out_of_range);
  EXPECT_THROW((void)fabric.output(5), std::out_of_range);
  EXPECT_THROW(fabric.set_oscillator_enable(9, true), std::out_of_range);
  EXPECT_THROW(fabric.set_edge_enable({1, 1}), std::invalid_argument);
  EXPECT_THROW(fabric.set_shil_select({0}), std::invalid_argument);
  auto bad = FabricParams::paper_defaults();
  bad.stages = 4;
  EXPECT_THROW(RoscFabric(g, bad), std::invalid_argument);
}

TEST(WaveformRecorderTest, CapturesSamplesAndControls) {
  const auto g = graph::Graph(2);
  RoscFabric fabric(g, FabricParams::paper_defaults());
  WaveformRecorder rec({0, 1}, 10);
  fabric.run(1e-9, std::ref(rec));
  EXPECT_EQ(rec.samples().size(), 100u);
  EXPECT_EQ(rec.samples().front().outputs.size(), 2u);
  EXPECT_EQ(rec.samples().front().shil_on, 0);
  const auto csv = rec.to_csv();
  EXPECT_NE(csv.find("time_ns,couplings_on,shil_on,vout_0,vout_1"),
            std::string::npos);
}

TEST(WaveformRecorderTest, AsciiRendersRows) {
  const auto g = graph::Graph(1);
  RoscFabric fabric(g, FabricParams::paper_defaults());
  WaveformRecorder rec({0}, 1);
  fabric.run(2e-9, std::ref(rec));
  const auto art = rec.render_ascii(40);
  EXPECT_NE(art.find("osc0"), std::string::npos);
  EXPECT_NE(art.find("shil"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);
}

TEST(WaveformRecorderTest, Validation) {
  EXPECT_THROW(WaveformRecorder({}, 1), std::invalid_argument);
  EXPECT_THROW(WaveformRecorder({0}, 0), std::invalid_argument);
}


TEST(WaveformRecorderTest, VcdDumpStructure) {
  const auto g = graph::Graph(2);
  RoscFabric fabric(g, FabricParams::paper_defaults());
  WaveformRecorder rec({0, 1}, 10);
  fabric.run(1e-9, std::ref(rec));
  const std::string vcd = rec.to_vcd();
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var real 64 ! vout_0 $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var real 64 \" vout_1 $end"), std::string::npos);
  EXPECT_NE(vcd.find("couplings_on"), std::string::npos);
  EXPECT_NE(vcd.find("shil_on"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  EXPECT_NE(vcd.find("#"), std::string::npos);
}

TEST(WaveformRecorderTest, VcdEmitsOnChangeOnly) {
  // Constant control signals must appear exactly once (in $dumpvars).
  const auto g = graph::Graph(1);
  RoscFabric fabric(g, FabricParams::paper_defaults());
  WaveformRecorder rec({0}, 5);
  fabric.run(0.5e-9, std::ref(rec));
  const std::string vcd = rec.to_vcd();
  std::size_t cpl_changes = 0;
  for (std::size_t pos = 0; (pos = vcd.find("\n0\"", pos)) != std::string::npos;
       ++pos) {
    ++cpl_changes;
  }
  EXPECT_EQ(cpl_changes, 1u);  // couplings stay off -> single initial dump
}

}  // namespace
