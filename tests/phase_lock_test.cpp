// Tests for lock-residual diagnostics.
#include "msropm/phase/lock.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <stdexcept>

namespace {

using namespace msropm::phase;

constexpr double kPi = std::numbers::pi;

TEST(LockResidual, ZeroAtLockPoints) {
  EXPECT_NEAR(lock_residual(0.0, 0.0, 2), 0.0, 1e-12);
  EXPECT_NEAR(lock_residual(kPi, 0.0, 2), 0.0, 1e-12);
  EXPECT_NEAR(lock_residual(kPi / 2, kPi / 2, 2), 0.0, 1e-12);
  EXPECT_NEAR(lock_residual(1.5 * kPi, kPi / 2, 2), 0.0, 1e-12);
}

TEST(LockResidual, MaximalBetweenLockPoints) {
  // Midway between 0 and pi for order 2: residual pi/2.
  EXPECT_NEAR(lock_residual(kPi / 2, 0.0, 2), kPi / 2, 1e-12);
  // Order 4: lock spacing pi/2, max residual pi/4.
  EXPECT_NEAR(lock_residual(kPi / 4, 0.0, 4), kPi / 4, 1e-12);
}

TEST(LockResidual, HandlesWrappedInputs) {
  EXPECT_NEAR(lock_residual(2.0 * kPi + 0.1, 0.0, 2), 0.1, 1e-12);
  EXPECT_NEAR(lock_residual(-0.1, 0.0, 2), 0.1, 1e-12);
}

TEST(LockResidual, OrderOneLocksSinglePoint) {
  EXPECT_NEAR(lock_residual(kPi, 0.0, 1), kPi, 1e-12);
  EXPECT_NEAR(lock_residual(0.0, 0.0, 1), 0.0, 1e-12);
}

TEST(LockResidual, RejectsOrderZero) {
  EXPECT_THROW((void)lock_residual(0.0, 0.0, 0), std::invalid_argument);
  EXPECT_THROW((void)nearest_lock_index(0.0, 0.0, 0), std::invalid_argument);
}

TEST(LockResiduals, VectorForm) {
  const std::vector<double> phases{0.0, kPi + 0.05, kPi / 2};
  const std::vector<double> psi{0.0, 0.0, 0.0};
  const auto r = lock_residuals(phases, psi, 2);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_NEAR(r[0], 0.0, 1e-12);
  EXPECT_NEAR(r[1], 0.05, 1e-12);
  EXPECT_NEAR(r[2], kPi / 2, 1e-12);
  EXPECT_THROW(lock_residuals(phases, {0.0}, 2), std::invalid_argument);
}

TEST(LockedFraction, CountsWithinTolerance) {
  const std::vector<double> phases{0.0, 0.02, kPi / 2, kPi};
  const std::vector<double> psi(4, 0.0);
  EXPECT_DOUBLE_EQ(locked_fraction(phases, psi, 2, 0.05), 0.75);
  EXPECT_DOUBLE_EQ(locked_fraction(phases, psi, 2, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(locked_fraction({}, {}, 2, 0.1), 1.0);
}

TEST(MaxLockResidual, PicksWorst) {
  const std::vector<double> phases{0.0, 0.3, kPi};
  const std::vector<double> psi(3, 0.0);
  EXPECT_NEAR(max_lock_residual(phases, psi, 2), 0.3, 1e-12);
}

TEST(NearestLockIndex, Order2Lobes) {
  EXPECT_EQ(nearest_lock_index(0.1, 0.0, 2), 0u);
  EXPECT_EQ(nearest_lock_index(kPi - 0.1, 0.0, 2), 1u);
  EXPECT_EQ(nearest_lock_index(kPi + 0.4, 0.0, 2), 1u);
  EXPECT_EQ(nearest_lock_index(2.0 * kPi - 0.1, 0.0, 2), 0u);
}

TEST(NearestLockIndex, ShiftedPsi) {
  // SHIL 2 lobes at 90/270 deg.
  EXPECT_EQ(nearest_lock_index(kPi / 2 + 0.05, kPi / 2, 2), 0u);
  EXPECT_EQ(nearest_lock_index(1.5 * kPi, kPi / 2, 2), 1u);
}

TEST(NearestLockIndex, Order4Quadrants) {
  for (unsigned k = 0; k < 4; ++k) {
    const double theta = k * kPi / 2 + 0.05;
    EXPECT_EQ(nearest_lock_index(theta, 0.0, 4), k);
  }
}

}  // namespace
