// Tests for the multi-shot assumption-based solver contract and the
// incremental chromatic search built on top of it:
//   - repeated solve() / solve(assumptions) calls share learnt clauses and
//     never leak an UNSAT-under-assumptions verdict into later calls;
//   - failed-assumption cores are subsets of the assumptions and re-solving
//     under just the core stays UNSAT;
//   - presimplify + assumptions compose through frozen variables (the bug
//     this PR removes was a std::logic_error on exactly this combination);
//   - IncrementalColoringSolver / chromatic_search agree with the
//     fresh-solver-per-K baseline at every K, +/- presimplify, +/- symmetry
//     breaking, on fixed and randomized graphs;
//   - StopToken cancellation lands cleanly between incremental calls.
#include "msropm/sat/incremental_coloring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "msropm/graph/builders.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/sat/solver.hpp"
#include "msropm/util/rng.hpp"
#include "msropm/util/stop_token.hpp"

namespace {

using namespace msropm;
using namespace msropm::sat;

Cnf random_3sat(util::Rng& rng, std::size_t vars, std::size_t clauses) {
  Cnf cnf(vars);
  for (std::size_t c = 0; c < clauses; ++c) {
    Clause clause;
    while (clause.size() < 3) {
      clause.push_back(
          Lit(static_cast<Var>(rng.uniform_index(vars)), rng.bernoulli(0.5)));
    }
    cnf.add_clause(std::move(clause));
  }
  return cnf;
}

bool assignment_satisfies(const std::vector<std::uint8_t>& model, Lit l) {
  return (model[l.var()] != 0) != l.negated();
}

graph::Graph petersen() {
  graph::GraphBuilder b(10);
  for (int i = 0; i < 5; ++i) {
    b.add_edge(i, (i + 1) % 5);
    b.add_edge(5 + i, 5 + (i + 2) % 5);
    b.add_edge(i, 5 + i);
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Multi-shot solver contract.
// ---------------------------------------------------------------------------

TEST(MultiShot, LearntClausesSurviveAcrossCalls) {
  // PHP(4,3) forced SAT-adjacent: use a satisfiable hard-ish formula — an
  // under-constrained random 3-SAT — and check the learnt counter is
  // cumulative (nothing is thrown away between calls).
  util::Rng rng(7);
  const Cnf cnf = random_3sat(rng, 60, 240);
  Solver s(cnf);
  const SolveResult first = s.solve();
  ASSERT_NE(first, SolveResult::kUnknown);
  const std::uint64_t learnts_after_first = s.stats().learnt_clauses;
  EXPECT_EQ(s.solve(), first);
  EXPECT_GE(s.stats().learnt_clauses, learnts_after_first);
}

TEST(MultiShot, SecondCallIsCheaperWithSharedLearnts) {
  // An UNSAT pigeonhole solved twice: the second refutation may reuse every
  // learnt clause of the first, so it must not be more expensive in
  // conflicts than the first run.
  const int pigeons = 6;
  const int holes = 5;
  Cnf cnf(static_cast<std::size_t>(pigeons * holes));
  auto var = [holes](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(pos(var(p, h)));
    cnf.add_clause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.add_binary(neg(var(p1, h)), neg(var(p2, h)));
      }
    }
  }
  Solver s(cnf);
  ASSERT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_TRUE(s.formula_unsat());
  const std::uint64_t conflicts_first = s.stats().conflicts;
  ASSERT_EQ(s.solve(), SolveResult::kUnsat);
  const std::uint64_t conflicts_second = s.stats().conflicts - conflicts_first;
  EXPECT_LE(conflicts_second, conflicts_first);
}

TEST(MultiShot, PerCallConflictBudgetMakesProgress) {
  // conflict_limit is per call; learnt clauses persist, so repeatedly
  // calling solve() with a tiny budget must eventually refute PHP(4,3).
  const int pigeons = 4;
  const int holes = 3;
  Cnf cnf(static_cast<std::size_t>(pigeons * holes));
  auto var = [holes](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(pos(var(p, h)));
    cnf.add_clause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.add_binary(neg(var(p1, h)), neg(var(p2, h)));
      }
    }
  }
  SolverOptions options;
  options.conflict_limit = 2;
  Solver s(cnf, options);
  SolveResult result = SolveResult::kUnknown;
  int calls = 0;
  while (result == SolveResult::kUnknown && calls < 200) {
    result = s.solve();
    ++calls;
  }
  EXPECT_EQ(result, SolveResult::kUnsat);
  EXPECT_GT(calls, 1) << "budget of 2 conflicts cannot finish in one call";
}

TEST(MultiShot, AssumptionSequenceEnumeratesModels) {
  // (x0 | x1), alternating assumptions on one solver steer the model.
  Cnf cnf(2);
  cnf.add_binary(pos(0), pos(1));
  Solver s(cnf);
  ASSERT_EQ(s.solve({neg(0)}), SolveResult::kSat);
  EXPECT_EQ(s.model()[0], 0);
  EXPECT_EQ(s.model()[1], 1);
  ASSERT_EQ(s.solve({neg(1)}), SolveResult::kSat);
  EXPECT_EQ(s.model()[0], 1);
  EXPECT_EQ(s.model()[1], 0);
  EXPECT_EQ(s.solve({neg(0), neg(1)}), SolveResult::kUnsat);
  EXPECT_FALSE(s.formula_unsat());
  ASSERT_EQ(s.solve({pos(0), pos(1)}), SolveResult::kSat);
}

TEST(MultiShot, FailedCoreIsSubsetAndStillUnsat) {
  // x2 is irrelevant; the core of {x2, x0, x1} against (~x0 | ~x1) + units
  // must only involve the genuinely conflicting assumptions, and re-solving
  // under the core alone must stay UNSAT.
  Cnf cnf(3);
  cnf.add_binary(neg(0), neg(1));
  Solver s(cnf);
  const std::vector<Lit> assumptions{pos(2), pos(0), pos(1)};
  ASSERT_EQ(s.solve(assumptions), SolveResult::kUnsat);
  const std::vector<Lit> core = s.failed_assumptions();
  ASSERT_FALSE(core.empty());
  for (const Lit l : core) {
    EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
              assumptions.end())
        << "core literal is not one of the assumptions";
  }
  EXPECT_EQ(std::find(core.begin(), core.end(), pos(2)), core.end())
      << "irrelevant assumption pulled into the core";
  EXPECT_EQ(s.solve(core), SolveResult::kUnsat);
  EXPECT_EQ(s.solve({pos(2)}), SolveResult::kSat);
}

TEST(MultiShot, ContradictoryAssumptionPairYieldsCore) {
  Cnf cnf(2);
  cnf.add_binary(pos(0), pos(1));
  Solver s(cnf);
  ASSERT_EQ(s.solve({pos(0), neg(0)}), SolveResult::kUnsat);
  EXPECT_FALSE(s.failed_assumptions().empty());
  EXPECT_FALSE(s.formula_unsat());
}

TEST(MultiShot, OutOfRangeAssumptionThrows) {
  Cnf cnf(2);
  cnf.add_binary(pos(0), pos(1));
  Solver s(cnf);
  EXPECT_THROW((void)s.solve({pos(7)}), std::invalid_argument);
}

TEST(MultiShot, RandomEquivalenceWithFreshSolverPerQuery) {
  // One incremental solver answering a stream of assumption queries must
  // agree with a fresh solver per query, and SAT models must satisfy the
  // formula AND the assumptions.
  util::Rng rng(2025);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t vars = 40;
    const Cnf cnf = random_3sat(rng, vars, 150 + 10 * trial);
    Solver incremental(cnf);
    for (int query = 0; query < 12; ++query) {
      std::vector<Lit> assumptions;
      const std::size_t count = rng.uniform_index(5);
      for (std::size_t i = 0; i < count; ++i) {
        assumptions.push_back(Lit(static_cast<Var>(rng.uniform_index(vars)),
                                  rng.bernoulli(0.5)));
      }
      const SolveResult got = incremental.solve(assumptions);
      Solver fresh(cnf);
      const SolveResult expected = fresh.solve(assumptions);
      ASSERT_EQ(got, expected)
          << "trial " << trial << " query " << query;
      if (got == SolveResult::kSat) {
        EXPECT_TRUE(cnf.satisfied_by(incremental.model()));
        for (const Lit a : assumptions) {
          EXPECT_TRUE(assignment_satisfies(incremental.model(), a));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Assumptions + presimplify (frozen variables).
// ---------------------------------------------------------------------------

TEST(FrozenAssumptions, NonFrozenVariableThrows) {
  Cnf cnf(3);
  cnf.add_ternary(pos(0), pos(1), pos(2));
  cnf.add_binary(neg(0), pos(1));
  SolverOptions options;
  options.presimplify = true;
  Solver s(cnf, options);
  EXPECT_THROW((void)s.solve({pos(0)}), std::invalid_argument);
}

TEST(FrozenAssumptions, PresimplifyEquivalenceOnRandomFormulas) {
  // The headline fix: solve(assumptions) with presimplify on. Freeze the
  // assumed variables and compare every verdict against a plain fresh
  // solver; SAT models must satisfy the ORIGINAL formula + assumptions.
  util::Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t vars = 40;
    const Cnf cnf = random_3sat(rng, vars, 140 + 12 * trial);
    // Freeze a fixed band of variables and only assume inside it.
    SolverOptions options;
    options.presimplify = true;
    for (Var v = 0; v < 8; ++v) options.preprocess.frozen.push_back(v);
    Solver incremental(cnf, options);
    for (int query = 0; query < 10; ++query) {
      std::vector<Lit> assumptions;
      const std::size_t count = rng.uniform_index(4);
      for (std::size_t i = 0; i < count; ++i) {
        assumptions.push_back(
            Lit(static_cast<Var>(rng.uniform_index(8)), rng.bernoulli(0.5)));
      }
      const SolveResult got = incremental.solve(assumptions);
      Solver fresh(cnf);
      const SolveResult expected = fresh.solve(assumptions);
      ASSERT_EQ(got, expected) << "trial " << trial << " query " << query;
      if (got == SolveResult::kSat) {
        EXPECT_TRUE(cnf.satisfied_by(incremental.model()))
            << "reconstructed model violates the original formula";
        for (const Lit a : assumptions) {
          EXPECT_TRUE(assignment_satisfies(incremental.model(), a))
              << "reconstructed model violates an assumption";
        }
      } else if (got == SolveResult::kUnsat && !incremental.formula_unsat()) {
        // Core sanity under presimplify: subset of assumptions, still UNSAT.
        const std::vector<Lit> core = incremental.failed_assumptions();
        for (const Lit l : core) {
          EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
                    assumptions.end());
        }
        EXPECT_EQ(incremental.solve(core), SolveResult::kUnsat);
      }
    }
  }
}

TEST(FrozenAssumptions, UnitFixedFrozenVariableChecksAssumption) {
  // x0 is forced true by a unit clause; presimplify fixes it even though it
  // is frozen (the value is implied). A matching assumption is vacuous, a
  // contradicting one is UNSAT with core {~x0}.
  Cnf cnf(3);
  cnf.add_unit(pos(0));
  cnf.add_ternary(pos(0), pos(1), pos(2));
  cnf.add_binary(neg(1), pos(2));
  SolverOptions options;
  options.presimplify = true;
  options.preprocess.frozen.push_back(0);
  Solver s(cnf, options);
  EXPECT_EQ(s.solve({pos(0)}), SolveResult::kSat);
  EXPECT_EQ(s.model()[0], 1);
  EXPECT_EQ(s.solve({neg(0)}), SolveResult::kUnsat);
  ASSERT_EQ(s.failed_assumptions().size(), 1u);
  EXPECT_EQ(s.failed_assumptions()[0], neg(0));
  EXPECT_FALSE(s.formula_unsat());
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(FrozenAssumptions, UnconstrainedFrozenVariableHonorsAssumption) {
  // x2 appears in no clause: after presimplify it is unconstrained, and the
  // reconstructed model must still honor an assumption on it.
  Cnf cnf(3);
  cnf.add_binary(pos(0), pos(1));
  SolverOptions options;
  options.presimplify = true;
  options.preprocess.frozen.push_back(2);
  Solver s(cnf, options);
  ASSERT_EQ(s.solve({pos(2)}), SolveResult::kSat);
  EXPECT_EQ(s.model()[2], 1);
  ASSERT_EQ(s.solve({neg(2)}), SolveResult::kSat);
  EXPECT_EQ(s.model()[2], 0);
  EXPECT_EQ(s.solve({pos(2), neg(2)}), SolveResult::kUnsat);
  EXPECT_EQ(s.failed_assumptions().size(), 2u);
}

TEST(FrozenAssumptions, FrozenVariableSurvivesPureLiteralElimination) {
  // x0 occurs only positively; un-frozen it would be pure-fixed to true and
  // an assumption ~x0 would be unanswerable. Frozen, it must stay in the
  // formula and both polarities must work.
  Cnf cnf(3);
  cnf.add_ternary(pos(0), pos(1), pos(2));
  cnf.add_binary(pos(0), neg(1));
  SolverOptions options;
  options.presimplify = true;
  options.preprocess.frozen.push_back(0);
  Solver s(cnf, options);
  ASSERT_EQ(s.solve({neg(0)}), SolveResult::kSat);
  EXPECT_EQ(s.model()[0], 0);
  EXPECT_TRUE(cnf.satisfied_by(s.model()));
  ASSERT_EQ(s.solve({pos(0)}), SolveResult::kSat);
  EXPECT_EQ(s.model()[0], 1);
  EXPECT_TRUE(cnf.satisfied_by(s.model()));
}

// ---------------------------------------------------------------------------
// Incremental chromatic search.
// ---------------------------------------------------------------------------

struct SweepCase {
  const char* name;
  graph::Graph graph;
  unsigned max_colors;
};

class IncrementalSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(IncrementalSweep, MatchesFreshSolverAtEveryK) {
  const auto& param = GetParam();
  for (const bool presimplify : {false, true}) {
    for (const bool symmetry : {false, true}) {
      IncrementalColoringOptions options;
      options.min_colors = 2;
      options.symmetry_breaking = symmetry;
      options.solver =
          presimplify ? exact_coloring_solver_options() : SolverOptions{};
      options.solver.presimplify = presimplify;
      IncrementalColoringSolver inc(param.graph, param.max_colors, options);
      for (unsigned k = 2; k <= param.max_colors; ++k) {
        const SolveResult got = inc.solve_k(k);
        const auto fresh = solve_exact_coloring(
            param.graph, k, {.symmetry_breaking = symmetry},
            presimplify ? exact_coloring_solver_options() : SolverOptions{});
        const SolveResult expected =
            fresh ? SolveResult::kSat : SolveResult::kUnsat;
        ASSERT_EQ(got, expected)
            << param.name << " K=" << k << " presimplify=" << presimplify
            << " symmetry=" << symmetry;
        if (got == SolveResult::kSat) {
          // solve_k already tripwires properness; double-check palette here.
          EXPECT_TRUE(
              graph::is_proper_coloring(param.graph, inc.coloring(), k));
        } else {
          // Failed core sanity: the core mentions only selector literals
          // that were actually assumed (or the base formula is refuted).
          if (!inc.formula_unsat()) {
            EXPECT_FALSE(inc.failed_assumptions().empty())
                << param.name << " K=" << k;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, IncrementalSweep,
    ::testing::Values(
        SweepCase{"petersen", petersen(), 5},
        SweepCase{"kings5", graph::kings_graph_square(5), 6},
        SweepCase{"oddcycle", graph::cycle_graph(7), 4},
        SweepCase{"k5", graph::complete_graph(5), 6},
        SweepCase{"wheel6", graph::wheel_graph(6), 5},
        SweepCase{"bipartite", graph::complete_bipartite_graph(4, 5), 4}),
    [](const auto& info) { return info.param.name; });

TEST(IncrementalSweep, RandomGraphsMatchFreshSweep) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 6; ++trial) {
    const auto g = graph::erdos_renyi(18, 0.2 + 0.08 * trial, rng);
    IncrementalColoringOptions options;
    options.min_colors = 2;
    options.solver.presimplify = (trial % 2) == 0;
    IncrementalColoringSolver inc(g, 6, options);
    for (unsigned k = 2; k <= 6; ++k) {
      const auto fresh = solve_exact_coloring(g, k);
      const SolveResult expected =
          fresh ? SolveResult::kSat : SolveResult::kUnsat;
      ASSERT_EQ(inc.solve_k(k), expected) << "trial " << trial << " K=" << k;
    }
  }
}

TEST(IncrementalSweep, SolveKOutsidePaletteThrows) {
  const auto g = petersen();
  IncrementalColoringOptions options;
  options.min_colors = 3;
  IncrementalColoringSolver inc(g, 5, options);
  EXPECT_THROW((void)inc.solve_k(2), std::invalid_argument);
  EXPECT_THROW((void)inc.solve_k(6), std::invalid_argument);
  EXPECT_EQ(inc.solve_k(3), SolveResult::kSat);
}

TEST(IncrementalSweep, StopTokenBetweenCallsReturnsUnknown) {
  const auto g = graph::kings_graph_square(6);
  IncrementalColoringOptions options;
  options.min_colors = 2;
  util::StopSource source;
  options.solver.stop = source.token();
  IncrementalColoringSolver inc(g, 5, options);
  EXPECT_EQ(inc.solve_k(3), SolveResult::kUnsat);  // omega = 4
  source.request_stop();
  EXPECT_EQ(inc.solve_k(4), SolveResult::kUnknown);
  EXPECT_TRUE(inc.cancelled());
  EXPECT_EQ(inc.solve_calls(), 2u);
}

TEST(ChromaticSearch, IncrementalAgreesWithFromScratch) {
  util::Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = graph::erdos_renyi(16, 0.25 + 0.1 * trial, rng);
    ChromaticSearchOptions incremental;
    ChromaticSearchOptions scratch;
    scratch.incremental = false;
    const auto a = chromatic_search(g, 8, incremental);
    const auto b = chromatic_search(g, 8, scratch);
    ASSERT_EQ(a.chromatic, b.chromatic) << "trial " << trial;
    if (a.chromatic) {
      EXPECT_TRUE(graph::is_proper_coloring(g, a.coloring, *a.chromatic));
      EXPECT_TRUE(graph::is_proper_coloring(g, b.coloring, *b.chromatic));
    }
  }
}

TEST(ChromaticSearch, KingsSweepReusesLearntClauses) {
  // Without the clique seed the incremental sweep passes through the hard
  // UNSAT K=3 round; the single multi-shot solver must keep those learnt
  // clauses on the books when K=4 succeeds (the reuse the bench measures).
  const auto g = graph::kings_graph_square(8);
  IncrementalColoringOptions options;
  options.min_colors = 2;
  // With symmetry breaking the pinned clique refutes K < 4 by implied units
  // alone (zero conflicts); disable it so the UNSAT rounds genuinely search.
  options.symmetry_breaking = false;
  IncrementalColoringSolver inc(g, 5, options);
  EXPECT_EQ(inc.solve_k(2), SolveResult::kUnsat);
  EXPECT_EQ(inc.solve_k(3), SolveResult::kUnsat);
  const std::uint64_t learnts_before_sat = inc.stats().learnt_clauses;
  EXPECT_GT(learnts_before_sat, 0u);
  EXPECT_EQ(inc.solve_k(4), SolveResult::kSat);
  EXPECT_GE(inc.stats().learnt_clauses, learnts_before_sat);
  EXPECT_TRUE(graph::is_proper_coloring(g, inc.coloring(), 4));
}

TEST(ChromaticSearch, CancelledSearchReportsCancelled) {
  const auto g = graph::kings_graph_square(10);
  ChromaticSearchOptions options;
  options.stop = util::StopToken::at_deadline(util::StopToken::Clock::now());
  const auto outcome = chromatic_search(g, 8, options);
  EXPECT_FALSE(outcome.chromatic.has_value());
  EXPECT_TRUE(outcome.incomplete);
  EXPECT_TRUE(outcome.cancelled);
}

}  // namespace
