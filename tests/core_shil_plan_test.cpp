// Tests for the multi-stage SHIL phase plan (paper Sec. 3.1/3.2, Fig. 2).
#include "msropm/core/shil_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>
#include <stdexcept>
#include <vector>

namespace {

using namespace msropm::core;

constexpr double kPi = std::numbers::pi;

TEST(ColorCount, Validity) {
  EXPECT_TRUE(valid_color_count(2));
  EXPECT_TRUE(valid_color_count(4));
  EXPECT_TRUE(valid_color_count(8));
  EXPECT_TRUE(valid_color_count(128));
  EXPECT_FALSE(valid_color_count(0));
  EXPECT_FALSE(valid_color_count(1));
  EXPECT_FALSE(valid_color_count(3));
  EXPECT_FALSE(valid_color_count(6));
  EXPECT_FALSE(valid_color_count(256));
}

TEST(StagesForColors, Log2) {
  EXPECT_EQ(stages_for_colors(2), 1u);
  EXPECT_EQ(stages_for_colors(4), 2u);
  EXPECT_EQ(stages_for_colors(8), 3u);
  EXPECT_EQ(stages_for_colors(16), 4u);
  EXPECT_THROW((void)stages_for_colors(3), std::invalid_argument);
  EXPECT_THROW((void)stages_for_colors(0), std::invalid_argument);
}

TEST(ShilPhase, PaperTwoStagePlan) {
  // Stage 1: everyone gets SHIL 1 (psi = 0).
  EXPECT_DOUBLE_EQ(shil_phase_for_bits({}), 0.0);
  // Stage 2: the 0-degree group keeps SHIL 1; the 180-degree group gets
  // SHIL 2 at psi = pi/2 (locks 90/270 deg, paper Fig. 2d).
  EXPECT_DOUBLE_EQ(shil_phase_for_bits({0}), 0.0);
  EXPECT_DOUBLE_EQ(shil_phase_for_bits({1}), kPi / 2);
}

TEST(ShilPhase, ThreeStagePlanDistinctOffsets) {
  std::set<double> offsets;
  for (std::uint8_t b1 : {0, 1}) {
    for (std::uint8_t b2 : {0, 1}) {
      offsets.insert(shil_phase_for_bits({b1, b2}));
    }
  }
  EXPECT_EQ(offsets.size(), 4u);
  EXPECT_TRUE(offsets.count(0.0));
  EXPECT_TRUE(offsets.count(kPi / 4));
  EXPECT_TRUE(offsets.count(kPi / 2));
  EXPECT_TRUE(offsets.count(3 * kPi / 4));
}

TEST(ShilPhase, RejectsNonBits) {
  EXPECT_THROW((void)shil_phase_for_bits({2}), std::invalid_argument);
}

TEST(GroupFromBits, BinaryPacking) {
  EXPECT_EQ(group_from_bits({}), 0u);
  EXPECT_EQ(group_from_bits({1}), 1u);
  EXPECT_EQ(group_from_bits({0, 1}), 2u);
  EXPECT_EQ(group_from_bits({1, 1}), 3u);
  EXPECT_EQ(group_from_bits({1, 0, 1}), 5u);
}

TEST(FinalPhase, TwoStageProducesQuadraturePhases) {
  // The four (b1, b2) patterns must land on 0, 90, 180, 270 deg.
  std::set<int> quadrants;
  for (std::uint8_t b1 : {0, 1}) {
    for (std::uint8_t b2 : {0, 1}) {
      const double theta = final_phase_from_bits({b1, b2});
      const double slot = theta / (kPi / 2);
      const int q = static_cast<int>(std::lround(slot)) % 4;
      EXPECT_NEAR(slot, std::lround(slot), 1e-9);
      quadrants.insert(q);
    }
  }
  EXPECT_EQ(quadrants.size(), 4u);
}

class ColorBijectionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ColorBijectionSweep, ColorFromBitsIsBijective) {
  const unsigned m = GetParam();
  const unsigned k = 1u << m;
  std::set<std::uint8_t> colors;
  for (std::uint32_t pattern = 0; pattern < k; ++pattern) {
    StageBits bits(m);
    for (unsigned j = 0; j < m; ++j) {
      bits[j] = static_cast<std::uint8_t>((pattern >> j) & 1u);
    }
    colors.insert(color_from_bits(bits));
  }
  EXPECT_EQ(colors.size(), k) << "every bit pattern must map to a unique color";
  EXPECT_EQ(*colors.rbegin(), k - 1);
}

TEST_P(ColorBijectionSweep, BitsFromColorInverts) {
  const unsigned m = GetParam();
  const unsigned k = 1u << m;
  for (unsigned c = 0; c < k; ++c) {
    const auto bits = bits_from_color(static_cast<std::uint8_t>(c), m);
    EXPECT_EQ(color_from_bits(bits), c);
    EXPECT_EQ(bits.size(), m);
  }
}

INSTANTIATE_TEST_SUITE_P(Stages, ColorBijectionSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(ColorFromBits, AdjacentFinalPhasesAreEquallySpaced) {
  // After m stages, colors sorted by final phase are exactly 2pi/2^m apart:
  // the defining property of the vector Potts spin set (Eq. 4).
  const unsigned m = 3;
  const unsigned k = 1u << m;
  std::vector<double> phases;
  for (std::uint32_t pattern = 0; pattern < k; ++pattern) {
    StageBits bits(m);
    for (unsigned j = 0; j < m; ++j) {
      bits[j] = static_cast<std::uint8_t>((pattern >> j) & 1u);
    }
    phases.push_back(final_phase_from_bits(bits));
  }
  std::sort(phases.begin(), phases.end());
  for (std::size_t i = 1; i < phases.size(); ++i) {
    EXPECT_NEAR(phases[i] - phases[i - 1], 2.0 * kPi / k, 1e-9);
  }
}

TEST(ColorFromBits, Validation) {
  EXPECT_THROW((void)color_from_bits({}), std::invalid_argument);
  EXPECT_THROW(bits_from_color(4, 2), std::invalid_argument);
  EXPECT_THROW(bits_from_color(0, 0), std::invalid_argument);
  EXPECT_THROW((void)final_phase_from_bits({}), std::invalid_argument);
}

}  // namespace
