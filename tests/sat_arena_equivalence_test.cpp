// Equivalence harness for the CDCL solver against the embedded pre-arena
// reference implementation (`reference::Solver`, the PR 1/2 solver minus
// presimplify/cancellation plumbing). Both solvers run over hundreds of
// random CNFs with a learnt cap small enough to force many learnt-DB
// reductions and arena GCs.
//
// Determinism contract (recalibrated for the watcher/heap overhaul): the
// production solver's search legally diverges from the reference on
// propagation order (implicit binaries propagate before long clauses) and
// learnt-DB composition (binary learnts are implicit and unreducible), so
// step counts and concrete models are no longer bit-matched against the
// reference. What stays HARD-GATED on every formula:
//   - verdict identity with the reference solver (SAT/UNSAT/UNKNOWN-limit),
//   - any SAT model must satisfy the original formula,
//   - run-to-run bit-determinism: two runs of the production solver produce
//     identical stats and identical models,
//   - clause_refs_clean() (no stale watcher/reason/learnt refs after GC).
// Step-identity with the reference (decision/propagation/conflict counts)
// is measured and REPORTED via a summary, not asserted.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "msropm/sat/cnf.hpp"
#include "msropm/sat/preprocess.hpp"
#include "msropm/sat/solver.hpp"
#include "msropm/util/rng.hpp"
#include "msropm/util/stop_token.hpp"

namespace reference {

using namespace msropm::sat;

struct Stats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_clauses = 0;
  std::uint64_t removed_learnts = 0;
};

/// Verbatim pre-arena solver: per-clause std::vector<Lit> storage, integer
/// clause indices, tombstone deletion with lazy watch-list cleanup. Kept as
/// the behavioral oracle for the arena port.
class Solver {
 public:
  explicit Solver(const Cnf& cnf, SolverOptions options = {})
      : options_(options) {
    setup_arrays(cnf.num_vars());
    clauses_.reserve(cnf.num_clauses());
    for (const Clause& c : cnf.clauses()) {
      ingest_clause(Clause(c));
      if (!ok_) return;
    }
  }

  [[nodiscard]] SolveResult solve() {
    if (!ok_) return SolveResult::kUnsat;
    if (propagate() != kNoReason) {
      ok_ = false;
      return SolveResult::kUnsat;
    }
    std::vector<Lit> learnt;
    std::size_t learnt_cap = options_.learnt_cap;
    std::uint64_t until_restart = options_.restart_base * luby(stats_.restarts);
    for (;;) {
      const std::uint32_t conflict = propagate();
      if (conflict != kNoReason) {
        ++stats_.conflicts;
        if (trail_lim_.empty()) {
          ok_ = false;
          return SolveResult::kUnsat;
        }
        std::uint32_t bt_level = 0;
        analyze(conflict, learnt, bt_level);
        backtrack(bt_level);
        if (learnt.size() == 1) {
          enqueue(learnt[0], kNoReason);
        } else {
          clauses_.push_back(InternalClause{learnt, clause_inc_, true, false});
          const auto ci = static_cast<std::uint32_t>(clauses_.size() - 1);
          attach_clause(ci);
          learnt_indices_.push_back(ci);
          ++stats_.learnt_clauses;
          enqueue(learnt[0], ci);
        }
        decay_activities();
        if (options_.conflict_limit != 0 &&
            stats_.conflicts >= options_.conflict_limit) {
          return SolveResult::kUnknown;
        }
        if (until_restart > 0) --until_restart;
      } else {
        if (until_restart == 0) {
          ++stats_.restarts;
          backtrack(0);
          until_restart = options_.restart_base * luby(stats_.restarts);
        }
        if (learnt_indices_.size() >= learnt_cap) {
          reduce_learnts();
          learnt_cap += learnt_cap / 2;
        }
        const auto next = pick_branch_lit();
        if (!next) {
          model_.assign(num_vars_, 0);
          for (Var v = 0; v < num_vars_; ++v) {
            model_[v] = assigns_[v] == LBool::kTrue ? 1 : 0;
          }
          backtrack(0);
          return SolveResult::kSat;
        }
        ++stats_.decisions;
        trail_lim_.push_back(trail_.size());
        enqueue(*next, kNoReason);
      }
    }
  }

  [[nodiscard]] const std::vector<std::uint8_t>& model() const { return model_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  enum class LBool : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };
  static constexpr std::uint32_t kNoReason = ~std::uint32_t{0};

  struct InternalClause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
    bool deleted = false;
  };

  void setup_arrays(std::size_t num_vars) {
    num_vars_ = num_vars;
    watches_.assign(2 * num_vars, {});
    assigns_.assign(num_vars, LBool::kUndef);
    polarity_.assign(num_vars, options_.default_polarity ? 1 : 0);
    level_.assign(num_vars, 0);
    reason_.assign(num_vars, kNoReason);
    activity_.assign(num_vars, 0.0);
    seen_.assign(num_vars, 0);
  }

  void ingest_clause(Clause&& lits) {
    if (!ok_) return;
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
      if (lits[i].var() == lits[i + 1].var()) return;  // tautology
    }
    if (lits.empty()) {
      ok_ = false;
      return;
    }
    if (lits.size() == 1) {
      if (value(lits[0]) == LBool::kFalse) {
        ok_ = false;
        return;
      }
      if (value(lits[0]) == LBool::kUndef) enqueue(lits[0], kNoReason);
      return;
    }
    for (Lit l : lits) activity_[l.var()] += 1.0;
    clauses_.push_back(InternalClause{std::move(lits), 0.0, false, false});
    attach_clause(static_cast<std::uint32_t>(clauses_.size() - 1));
  }

  [[nodiscard]] LBool value(Lit l) const {
    const LBool v = assigns_[l.var()];
    if (v == LBool::kUndef) return LBool::kUndef;
    const bool b = (v == LBool::kTrue) != l.negated();
    return b ? LBool::kTrue : LBool::kFalse;
  }

  void attach_clause(std::uint32_t ci) {
    const auto& lits = clauses_[ci].lits;
    watches_[(~lits[0]).index()].push_back(ci);
    watches_[(~lits[1]).index()].push_back(ci);
  }

  void enqueue(Lit l, std::uint32_t reason) {
    assigns_[l.var()] = l.negated() ? LBool::kFalse : LBool::kTrue;
    level_[l.var()] = static_cast<std::uint32_t>(trail_lim_.size());
    reason_[l.var()] = reason;
    trail_.push_back(l);
  }

  [[nodiscard]] std::uint32_t propagate() {
    while (qhead_ < trail_.size()) {
      const Lit p = trail_[qhead_++];
      ++stats_.propagations;
      auto& watch_list = watches_[p.index()];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < watch_list.size(); ++i) {
        const std::uint32_t ci = watch_list[i];
        InternalClause& c = clauses_[ci];
        if (c.deleted) continue;  // lazily dropped from watch lists
        auto& lits = c.lits;
        const Lit false_lit = ~p;
        if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
        if (value(lits[0]) == LBool::kTrue) {
          watch_list[keep++] = ci;
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < lits.size(); ++k) {
          if (value(lits[k]) != LBool::kFalse) {
            std::swap(lits[1], lits[k]);
            watches_[(~lits[1]).index()].push_back(ci);
            moved = true;
            break;
          }
        }
        if (moved) continue;
        watch_list[keep++] = ci;
        if (value(lits[0]) == LBool::kFalse) {
          for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
            watch_list[keep++] = watch_list[j];
          }
          watch_list.resize(keep);
          qhead_ = trail_.size();
          return ci;
        }
        enqueue(lits[0], ci);
      }
      watch_list.resize(keep);
    }
    return kNoReason;
  }

  [[nodiscard]] bool lit_redundant(Lit l, std::uint32_t abstract_levels) {
    std::vector<Lit> stack{l};
    std::vector<Var> to_clear;
    while (!stack.empty()) {
      const Lit cur = stack.back();
      stack.pop_back();
      const std::uint32_t r = reason_[cur.var()];
      if (r == kNoReason) {
        for (Var v : to_clear) seen_[v] = 0;
        return false;
      }
      for (Lit q : clauses_[r].lits) {
        if (q.var() == cur.var() || seen_[q.var()] || level_[q.var()] == 0) continue;
        const std::uint32_t lvl_mask = 1u << (level_[q.var()] & 31u);
        if (reason_[q.var()] == kNoReason || (lvl_mask & abstract_levels) == 0) {
          for (Var v : to_clear) seen_[v] = 0;
          return false;
        }
        seen_[q.var()] = 1;
        to_clear.push_back(q.var());
        stack.push_back(q);
      }
    }
    for (Var v : to_clear) seen_[v] = 0;
    return true;
  }

  void analyze(std::uint32_t conflict, std::vector<Lit>& learnt_out,
               std::uint32_t& backtrack_level) {
    learnt_out.clear();
    learnt_out.push_back(Lit{});
    const auto current_level = static_cast<std::uint32_t>(trail_lim_.size());
    int counter = 0;
    Lit p{};
    bool have_p = false;
    std::uint32_t reason_clause = conflict;
    std::size_t trail_index = trail_.size();
    std::vector<Var> cleanup;
    for (;;) {
      InternalClause& c = clauses_[reason_clause];
      if (c.learnt) bump_clause(c);
      for (Lit q : c.lits) {
        if (have_p && q.var() == p.var()) continue;
        if (!seen_[q.var()] && level_[q.var()] > 0) {
          seen_[q.var()] = 1;
          cleanup.push_back(q.var());
          bump_var(q.var());
          if (level_[q.var()] >= current_level) {
            ++counter;
          } else {
            learnt_out.push_back(q);
          }
        }
      }
      do {
        --trail_index;
      } while (!seen_[trail_[trail_index].var()]);
      p = trail_[trail_index];
      have_p = true;
      seen_[p.var()] = 0;
      --counter;
      if (counter == 0) break;
      reason_clause = reason_[p.var()];
    }
    learnt_out[0] = ~p;

    std::uint32_t abstract_levels = 0;
    for (std::size_t i = 1; i < learnt_out.size(); ++i) {
      abstract_levels |= 1u << (level_[learnt_out[i].var()] & 31u);
    }
    std::size_t kept = 1;
    for (std::size_t i = 1; i < learnt_out.size(); ++i) {
      const Lit l = learnt_out[i];
      if (reason_[l.var()] == kNoReason || !lit_redundant(l, abstract_levels)) {
        learnt_out[kept++] = l;
      }
    }
    learnt_out.resize(kept);

    if (learnt_out.size() == 1) {
      backtrack_level = 0;
    } else {
      std::size_t max_i = 1;
      for (std::size_t i = 2; i < learnt_out.size(); ++i) {
        if (level_[learnt_out[i].var()] > level_[learnt_out[max_i].var()]) max_i = i;
      }
      std::swap(learnt_out[1], learnt_out[max_i]);
      backtrack_level = level_[learnt_out[1].var()];
    }
    for (Var v : cleanup) seen_[v] = 0;
  }

  void backtrack(std::uint32_t target_level) {
    if (trail_lim_.size() <= target_level) return;
    const std::size_t bound = trail_lim_[target_level];
    for (std::size_t i = trail_.size(); i > bound; --i) {
      const Var v = trail_[i - 1].var();
      polarity_[v] = assigns_[v] == LBool::kTrue ? 1 : 0;
      assigns_[v] = LBool::kUndef;
      reason_[v] = kNoReason;
    }
    trail_.resize(bound);
    trail_lim_.resize(target_level);
    qhead_ = bound;
  }

  [[nodiscard]] std::optional<Lit> pick_branch_lit() {
    Var best = 0;
    double best_activity = -1.0;
    bool found = false;
    for (Var v = 0; v < num_vars_; ++v) {
      if (assigns_[v] == LBool::kUndef && activity_[v] > best_activity) {
        best = v;
        best_activity = activity_[v];
        found = true;
      }
    }
    if (!found) return std::nullopt;
    return Lit(best, polarity_[best] == 0);
  }

  void bump_var(Var v) {
    activity_[v] += var_inc_;
    if (activity_[v] > 1e100) {
      for (double& a : activity_) a *= 1e-100;
      var_inc_ *= 1e-100;
    }
  }

  void bump_clause(InternalClause& c) {
    c.activity += clause_inc_;
    if (c.activity > 1e20) {
      for (std::uint32_t ci : learnt_indices_) clauses_[ci].activity *= 1e-20;
      clause_inc_ *= 1e-20;
    }
  }

  void decay_activities() {
    var_inc_ /= options_.activity_decay;
    clause_inc_ /= 0.999;
  }

  void reduce_learnts() {
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t ci : learnt_indices_) {
      if (clauses_[ci].deleted) continue;
      candidates.push_back(ci);
    }
    std::sort(candidates.begin(), candidates.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                return clauses_[a].activity < clauses_[b].activity;
              });
    std::vector<std::uint8_t> is_reason(clauses_.size(), 0);
    for (Lit l : trail_) {
      if (reason_[l.var()] != kNoReason) is_reason[reason_[l.var()]] = 1;
    }
    std::size_t removed = 0;
    for (std::size_t i = 0; i < candidates.size() / 2; ++i) {
      InternalClause& c = clauses_[candidates[i]];
      if (is_reason[candidates[i]] || c.lits.size() <= 2) continue;
      c.deleted = true;
      c.lits.clear();
      c.lits.shrink_to_fit();
      ++removed;
    }
    stats_.removed_learnts += removed;
    learnt_indices_.erase(
        std::remove_if(learnt_indices_.begin(), learnt_indices_.end(),
                       [this](std::uint32_t ci) { return clauses_[ci].deleted; }),
        learnt_indices_.end());
  }

  [[nodiscard]] static std::uint64_t luby(std::uint64_t i) {
    std::uint64_t size = 1;
    std::uint64_t seq = 0;
    while (size < i + 1) {
      ++seq;
      size = 2 * size + 1;
    }
    while (size - 1 != i) {
      size = (size - 1) / 2;
      --seq;
      i %= size;
    }
    return std::uint64_t{1} << seq;
  }

  std::size_t num_vars_ = 0;
  std::vector<InternalClause> clauses_;
  std::vector<std::vector<std::uint32_t>> watches_;
  std::vector<LBool> assigns_;
  std::vector<std::uint8_t> polarity_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> reason_;
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<std::uint8_t> seen_;
  std::vector<std::uint32_t> learnt_indices_;
  bool ok_ = true;
  SolverOptions options_;
  Stats stats_;
  std::vector<std::uint8_t> model_;
};

}  // namespace reference

namespace {

using namespace msropm::sat;

Cnf random_cnf(msropm::util::Rng& rng, std::size_t vars, std::size_t clauses,
               std::size_t max_len) {
  Cnf cnf(vars);
  for (std::size_t c = 0; c < clauses; ++c) {
    const std::size_t len = max_len == 3 ? 3 : 1 + rng.uniform_index(max_len);
    Clause clause;
    while (clause.size() < len) {
      const auto v = static_cast<Var>(rng.uniform_index(vars));
      clause.push_back(Lit(v, rng.bernoulli(0.5)));
    }
    cnf.add_clause(std::move(clause));
  }
  return cnf;
}

/// Options that force frequent learnt-DB reductions (and therefore GCs):
/// the default 4096 cap would never trip on test-sized formulas.
SolverOptions stress_options() {
  SolverOptions options;
  options.learnt_cap = 20;
  options.restart_base = 16;
  return options;
}

/// Hard gate: two runs of the production solver must agree bit-for-bit.
void expect_run_to_run_identical(const SolverStats& a, const SolverStats& b,
                                 const std::string& label) {
  EXPECT_EQ(a.decisions, b.decisions) << label;
  EXPECT_EQ(a.propagations, b.propagations) << label;
  EXPECT_EQ(a.conflicts, b.conflicts) << label;
  EXPECT_EQ(a.restarts, b.restarts) << label;
  EXPECT_EQ(a.learnt_clauses, b.learnt_clauses) << label;
  EXPECT_EQ(a.removed_learnts, b.removed_learnts) << label;
  EXPECT_EQ(a.blocker_skips, b.blocker_skips) << label;
  EXPECT_EQ(a.binary_propagations, b.binary_propagations) << label;
  EXPECT_EQ(a.heap_decisions, b.heap_decisions) << label;
}

/// Reported (not asserted) step-identity bookkeeping vs the reference.
struct StepDivergence {
  int trials = 0;
  int step_identical = 0;

  void note(const SolverStats& got, const reference::Stats& want) {
    ++trials;
    if (got.decisions == want.decisions &&
        got.propagations == want.propagations &&
        got.conflicts == want.conflicts && got.restarts == want.restarts) {
      ++step_identical;
    }
  }
  void report(const char* name) const {
    // Search steps legally diverge (binaries-first propagation, implicit
    // binary learnts); the count is recorded so trend shifts are visible.
    std::printf("[ STEPS    ] %s: %d/%d trials step-identical to the "
                "pre-watcher reference (informational)\n",
                name, step_identical, trials);
  }
};

void check_identity(const Cnf& cnf, const SolverOptions& options,
                    const std::string& label, std::uint64_t* gc_total = nullptr,
                    StepDivergence* steps = nullptr) {
  reference::Solver ref(cnf, options);
  const SolveResult expected = ref.solve();

  Solver arena_solver(cnf, options);
  const SolveResult got = arena_solver.solve();
  ASSERT_EQ(got, expected) << label << ": verdict diverged from pre-arena solver";
  if (expected == SolveResult::kSat) {
    EXPECT_TRUE(cnf.satisfied_by(arena_solver.model()))
        << label << ": model does not satisfy the formula";
  }
  EXPECT_TRUE(arena_solver.clause_refs_clean()) << label;

  // Run-to-run bit-determinism: a second solve over the same inputs must
  // replay the exact same search.
  Solver rerun(cnf, options);
  ASSERT_EQ(rerun.solve(), got) << label << ": rerun verdict diverged";
  expect_run_to_run_identical(arena_solver.stats(), rerun.stats(), label);
  if (got == SolveResult::kSat) {
    EXPECT_EQ(arena_solver.model(), rerun.model())
        << label << ": rerun model diverged";
  }

  if (steps != nullptr) steps->note(arena_solver.stats(), ref.stats());
  if (gc_total != nullptr) *gc_total += arena_solver.stats().gc_runs;
}

TEST(ArenaEquivalence, RandomizedVerdictModelAndDeterminism) {
  msropm::util::Rng rng(20260730);
  int trials = 0;
  std::uint64_t gc_total = 0;
  StepDivergence steps;
  for (const double ratio : {1.5, 3.0, 4.26, 6.0, 9.0}) {
    for (int t = 0; t < 35; ++t) {
      const std::size_t vars = 12 + rng.uniform_index(28);  // 12..39
      const auto clauses =
          static_cast<std::size_t>(ratio * static_cast<double>(vars)) + 1;
      const Cnf cnf = random_cnf(rng, vars, clauses, 3);
      check_identity(cnf, stress_options(),
                     "3cnf ratio=" + std::to_string(ratio) +
                         " trial=" + std::to_string(t),
                     &gc_total, &steps);
      ++trials;
    }
  }
  for (int t = 0; t < 40; ++t) {  // mixed clause lengths incl. units
    const std::size_t vars = 8 + rng.uniform_index(16);
    const Cnf cnf = random_cnf(rng, vars, 3 * vars, 5);
    check_identity(cnf, stress_options(), "mixed trial=" + std::to_string(t),
                   &gc_total, &steps);
    ++trials;
  }
  for (int t = 0; t < 10; ++t) {
    // Near-threshold instances big enough (>=110 vars) to go through
    // hundreds of conflicts, many learnt-DB reductions, and several arena
    // GCs — the determinism gates must hold across all of them.
    const std::size_t vars = 110 + rng.uniform_index(30);
    const auto clauses =
        static_cast<std::size_t>(4.26 * static_cast<double>(vars)) + 1;
    const Cnf cnf = random_cnf(rng, vars, clauses, 3);
    check_identity(cnf, stress_options(), "gc trial=" + std::to_string(t),
                   &gc_total, &steps);
    ++trials;
  }
  EXPECT_GE(trials, 200) << "harness must cover 200+ formulas";
  EXPECT_GT(gc_total, 0u)
      << "stress options must actually exercise the arena GC";
  steps.report("randomized");
}

TEST(ArenaEquivalence, DefaultOptionsIdentity) {
  // The default learnt cap rarely trips on small formulas: this covers the
  // no-reduction/no-GC path explicitly.
  msropm::util::Rng rng(77);
  for (int t = 0; t < 30; ++t) {
    const std::size_t vars = 12 + rng.uniform_index(24);
    const Cnf cnf = random_cnf(rng, vars, 4 * vars + 1, 3);
    check_identity(cnf, SolverOptions{}, "default trial=" + std::to_string(t));
  }
}

TEST(ArenaEquivalence, ConflictLimitSoundnessAndDeterminism) {
  // Under a conflict limit the two solvers may legally disagree on WHETHER
  // the limit was hit (their trajectories differ), so verdict identity is
  // only required when both runs completed; a definitive answer must never
  // contradict the reference's definitive answer, any model must satisfy
  // the formula, and reruns must be bit-identical.
  msropm::util::Rng rng(13);
  for (int t = 0; t < 20; ++t) {
    const std::size_t vars = 30 + rng.uniform_index(20);
    const Cnf cnf = random_cnf(rng, vars, 5 * vars, 3);
    SolverOptions options = stress_options();
    options.conflict_limit = 40 + 10 * static_cast<std::uint64_t>(t);
    const std::string label = "climit trial=" + std::to_string(t);

    reference::Solver ref(cnf, options);
    const SolveResult expected = ref.solve();

    Solver solver(cnf, options);
    const SolveResult got = solver.solve();
    if (got != SolveResult::kUnknown && expected != SolveResult::kUnknown) {
      ASSERT_EQ(got, expected) << label << ": definitive verdicts contradict";
    }
    if (got == SolveResult::kSat) {
      EXPECT_TRUE(cnf.satisfied_by(solver.model())) << label;
    }
    EXPECT_TRUE(solver.clause_refs_clean()) << label;

    Solver rerun(cnf, options);
    ASSERT_EQ(rerun.solve(), got) << label << ": rerun verdict diverged";
    expect_run_to_run_identical(solver.stats(), rerun.stats(), label);
  }
}

TEST(ArenaEquivalence, PresimplifyIdentity) {
  // With presimplify the solver adopts the preprocessor's output arena
  // wholesale (binaries becoming implicit watchers); its verdict must match
  // the reference solver run on the materialized simplified formula, any
  // model must satisfy the ORIGINAL formula after Remapper reconstruction,
  // and a rerun must replay the search bit-for-bit.
  msropm::util::Rng rng(4242);
  for (int t = 0; t < 60; ++t) {
    const std::size_t vars = 12 + rng.uniform_index(24);
    const Cnf cnf = random_cnf(rng, vars, 4 * vars, t % 2 == 0 ? 3 : 5);
    const std::string label = "presimplify trial=" + std::to_string(t);

    const PreprocessResult pre = preprocess(cnf, PreprocessOptions{});
    SolverOptions options = stress_options();
    options.presimplify = true;
    Solver integrated(cnf, options);
    const SolveResult got = integrated.solve();

    if (pre.unsat) {
      EXPECT_EQ(got, SolveResult::kUnsat) << label;
      continue;
    }
    reference::Solver ref(pre.cnf(), options);
    const SolveResult expected = ref.solve();
    ASSERT_EQ(got, expected) << label;
    EXPECT_TRUE(integrated.clause_refs_clean()) << label;
    if (expected == SolveResult::kSat) {
      EXPECT_TRUE(cnf.satisfied_by(integrated.model()))
          << label << ": reconstructed model does not satisfy the original";
    }

    Solver rerun(cnf, options);
    ASSERT_EQ(rerun.solve(), got) << label << ": rerun verdict diverged";
    expect_run_to_run_identical(integrated.stats(), rerun.stats(), label);
    if (got == SolveResult::kSat) {
      EXPECT_EQ(integrated.model(), rerun.model())
          << label << ": rerun model diverged";
    }
  }
}

TEST(ArenaEquivalence, CancellationIsCleanAtAnyPoint) {
  // Deadline tokens fire at arbitrary points of the search — including
  // inside construction, between reductions, and right around arena GCs.
  // Whatever the timing, the solver must either finish with the reference
  // verdict or report a clean cancelled kUnknown; the ASan/TSan presets run
  // this same test to catch any use-after-free in the GC path.
  msropm::util::Rng rng(99);
  const std::size_t vars = 170;  // threshold density: deadlines land mid-search
  const Cnf cnf = random_cnf(rng, vars, static_cast<std::size_t>(4.26 * vars), 3);
  const SolveResult expected = [&] {
    reference::Solver ref(cnf, stress_options());
    return ref.solve();
  }();

  int cancelled_runs = 0;
  for (int micros : {0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000}) {
    SolverOptions options = stress_options();
    options.stop = msropm::util::StopToken::at_deadline(
        std::chrono::steady_clock::now() + std::chrono::microseconds(micros));
    Solver solver(cnf, options);
    const SolveResult got = solver.solve();
    if (solver.cancelled()) {
      EXPECT_EQ(got, SolveResult::kUnknown);
      ++cancelled_runs;
    } else {
      EXPECT_EQ(got, expected);
    }
    EXPECT_TRUE(solver.clause_refs_clean());
  }
  EXPECT_GT(cancelled_runs, 0) << "at least the 0us deadline must cancel";
}

TEST(ArenaEquivalence, PreFiredTokenCancelsBeforeIngestion) {
  msropm::util::Rng rng(5);
  const Cnf cnf = random_cnf(rng, 20, 80, 3);
  msropm::util::StopSource source;
  source.request_stop();
  SolverOptions options;
  options.stop = source.token();
  Solver solver(cnf, options);
  EXPECT_EQ(solver.solve(), SolveResult::kUnknown);
  EXPECT_TRUE(solver.cancelled());
}

}  // namespace
