// Tests for running statistics, sample sets and correlation.
#include "msropm/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "msropm/util/rng.hpp"

namespace {

using msropm::util::pearson_correlation;
using msropm::util::RunningStats;
using msropm::util::SampleSet;

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesBessel) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  msropm::util::Rng rng(5);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(10.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
}

TEST(SampleSet, PercentileClampsOutOfRange) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(-10), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(200), 2.0);
}

TEST(SampleSet, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW((void)s.percentile(50), std::domain_error);
  EXPECT_THROW((void)s.min(), std::domain_error);
  EXPECT_THROW((void)s.max(), std::domain_error);
  EXPECT_THROW((void)s.mean(), std::domain_error);
  EXPECT_THROW((void)s.stddev(), std::domain_error);
}

TEST(SampleSet, MinMaxMean) {
  SampleSet s;
  for (double x : {5.0, -1.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.mean(), 7.0 / 3.0, 1e-12);
}

TEST(SampleSet, SortedCacheInvalidatedByAdd) {
  // Interleave queries and adds: the cached sorted view must be rebuilt after
  // every add, never served stale.
  SampleSet s;
  s.add(30.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 20.0);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  s.add(20.0);  // lands between the cached extremes
  EXPECT_DOUBLE_EQ(s.percentile(50), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 30.0);
  s.add(5.0);  // new minimum after a min() query
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 5.0);
  s.add(40.0);  // new maximum after a max() query
  EXPECT_DOUBLE_EQ(s.max(), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 20.0);
}

TEST(SampleSet, RepeatedQueriesStayConsistent) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(static_cast<double>(i));
  // Back-to-back queries hit the cached sorted view; all must agree.
  for (int pass = 0; pass < 3; ++pass) {
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_DOUBLE_EQ(s.median(), 50.5);
    EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
  }
}

TEST(Correlation, PerfectPositive) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson_correlation(x, y), -1.0, 1e-12);
}

TEST(Correlation, ZeroVarianceGivesZero) {
  std::vector<double> x{1, 1, 1};
  std::vector<double> y{1, 2, 3};
  EXPECT_EQ(pearson_correlation(x, y), 0.0);
}

TEST(Correlation, MismatchedSizesGiveZero) {
  std::vector<double> x{1, 2};
  std::vector<double> y{1, 2, 3};
  EXPECT_EQ(pearson_correlation(x, y), 0.0);
  EXPECT_EQ(pearson_correlation({}, {}), 0.0);
}

TEST(Correlation, IndependentSeriesNearZero) {
  msropm::util::Rng rng(77);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
  }
  EXPECT_NEAR(pearson_correlation(x, y), 0.0, 0.03);
}

}  // namespace
