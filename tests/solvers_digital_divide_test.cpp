// Tests for the digital divide-and-conquer baseline (CPM-style).
#include "msropm/solvers/digital_divide.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/graph/builders.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using solvers::DigitalDivideOptions;
using solvers::solve_digital_divide;

TEST(DigitalDivide, SolvesKingsGraphWell) {
  const auto g = graph::kings_graph_square(6);
  DigitalDivideOptions opts;
  util::Rng rng(1);
  const auto result = solve_digital_divide(g, opts, rng);
  EXPECT_GE(graph::coloring_accuracy(g, result.colors), 0.95);
  EXPECT_EQ(result.colors.size(), 36u);
}

TEST(DigitalDivide, StageCountMatchesColors) {
  const auto g = graph::kings_graph(4, 4);
  util::Rng rng(2);
  DigitalDivideOptions opts4;
  opts4.num_colors = 4;
  EXPECT_EQ(solve_digital_divide(g, opts4, rng).stages, 2u);
  DigitalDivideOptions opts8;
  opts8.num_colors = 8;
  EXPECT_EQ(solve_digital_divide(g, opts8, rng).stages, 3u);
}

TEST(DigitalDivide, RemapCountsSubProblems) {
  // 2-stage flow: 1 full-graph solve + 2 partition solves = 3 remaps.
  const auto g = graph::kings_graph(4, 4);
  DigitalDivideOptions opts;
  util::Rng rng(3);
  const auto result = solve_digital_divide(g, opts, rng);
  EXPECT_EQ(result.remap_operations, 3u);
}

TEST(DigitalDivide, TransfersGrowWithProblemSize) {
  // The von-Neumann overhead the MSROPM's compute-in-memory avoids.
  util::Rng rng(4);
  DigitalDivideOptions opts;
  const auto small = solve_digital_divide(graph::kings_graph_square(5), opts, rng);
  const auto large = solve_digital_divide(graph::kings_graph_square(15), opts, rng);
  EXPECT_GT(small.bytes_transferred, 0u);
  EXPECT_GT(large.bytes_transferred, small.bytes_transferred * 5);
}

TEST(DigitalDivide, ColorsWithinPalette) {
  const auto g = graph::kings_graph(5, 5);
  DigitalDivideOptions opts;
  opts.num_colors = 4;
  util::Rng rng(5);
  const auto result = solve_digital_divide(g, opts, rng);
  for (auto c : result.colors) EXPECT_LT(c, 4);
}

TEST(DigitalDivide, RejectsNonPowerOfTwo) {
  const auto g = graph::path_graph(3);
  DigitalDivideOptions bad;
  bad.num_colors = 6;
  util::Rng rng(6);
  EXPECT_THROW(solve_digital_divide(g, bad, rng), std::invalid_argument);
}

TEST(DigitalDivide, BipartitePerfect) {
  const auto g = graph::grid_graph(6, 6);
  DigitalDivideOptions opts;
  util::Rng rng(7);
  const auto result = solve_digital_divide(g, opts, rng);
  EXPECT_DOUBLE_EQ(graph::coloring_accuracy(g, result.colors), 1.0);
}

}  // namespace
