// Tests for the circuit-backend MSROPM (waveform-level validation).
#include "msropm/core/circuit_machine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "msropm/graph/builders.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using core::CircuitMsropm;
using core::CircuitMsropmConfig;

CircuitMsropmConfig quick_config() {
  CircuitMsropmConfig cfg;
  // Shorter-than-paper windows keep the RK4 transient affordable in tests;
  // the bench uses the full 60 ns schedule.
  cfg.schedule.init_s = 3e-9;
  cfg.schedule.anneal_s = 8e-9;
  cfg.schedule.discretize_s = 4e-9;
  cfg.schedule.reinit_s = 3e-9;
  return cfg;
}

TEST(CircuitMachine, RejectsInvalidSchedule) {
  const auto g = graph::path_graph(2);
  CircuitMsropmConfig bad = quick_config();
  bad.schedule.init_s = 0.0;
  EXPECT_THROW(CircuitMsropm(g, bad), std::invalid_argument);
}

TEST(CircuitMachine, ProducesFourColorAssignment) {
  const auto g = graph::kings_graph(2, 2);  // K4
  CircuitMsropm machine(g, quick_config());
  util::Rng rng(3);
  const auto r = machine.solve(rng);
  EXPECT_EQ(r.colors.size(), 4u);
  for (auto c : r.colors) EXPECT_LT(c, 4);
  EXPECT_EQ(r.stage1_bits.size(), 4u);
  EXPECT_EQ(r.final_phases.size(), 4u);
}

TEST(CircuitMachine, Stage1CutMatchesBits) {
  const auto g = graph::kings_graph(2, 3);
  CircuitMsropm machine(g, quick_config());
  util::Rng rng(5);
  const auto r = machine.solve(rng);
  std::size_t cut = 0;
  for (const auto& e : g.edges()) {
    if (r.stage1_bits[e.u] != r.stage1_bits[e.v]) ++cut;
  }
  EXPECT_EQ(cut, r.stage1_cut);
}

TEST(CircuitMachine, ColorsConsistentWithStage1Partition) {
  // Group-A oscillators (SHIL 1) must land on colors {0, 2}; group B
  // (SHIL 2) on {1, 3} -- the disjoint phase sets of Fig. 2(e).
  const auto g = graph::kings_graph(2, 3);
  CircuitMsropm machine(g, quick_config());
  util::Rng rng(7);
  const auto r = machine.solve(rng);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    if (r.stage1_bits[i] == 0) {
      EXPECT_TRUE(r.colors[i] == 0 || r.colors[i] == 2) << "osc " << i;
    } else {
      EXPECT_TRUE(r.colors[i] == 1 || r.colors[i] == 3) << "osc " << i;
    }
  }
}

TEST(CircuitMachine, CrossCutEdgesAlwaysProper) {
  // Edges cut at stage 1 connect disjoint color sets: never a conflict.
  const auto g = graph::kings_graph(3, 3);
  CircuitMsropm machine(g, quick_config());
  util::Rng rng(11);
  const auto r = machine.solve(rng);
  for (const auto& e : g.edges()) {
    if (r.stage1_bits[e.u] != r.stage1_bits[e.v]) {
      EXPECT_NE(r.colors[e.u], r.colors[e.v]);
    }
  }
}

TEST(CircuitMachine, ObserverSeesControlSequence) {
  const auto g = graph::path_graph(2);
  CircuitMsropm machine(g, quick_config());
  util::Rng rng(13);
  std::vector<std::string> events;
  (void)machine.solve(rng, [&events](const char* label,
                                     const circuit::RoscFabric&) {
    events.emplace_back(label);
  });
  const std::vector<std::string> expected{
      "init",          "stage1_anneal", "stage1_shil", "reinit",
      "stage2_anneal", "stage2_shil",   "done"};
  EXPECT_EQ(events, expected);
}

TEST(CircuitMachine, ReasonableQualityOnTinyProblem) {
  // Best of a few runs on K4 (2x2 King's graph, 4-chromatic): the circuit
  // engine should satisfy most edges; exactness is asserted statistically in
  // the bench, not here (RK4 transients are expensive).
  const auto g = graph::kings_graph(2, 2);
  CircuitMsropm machine(g, quick_config());
  double best = 0.0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Rng rng(seed);
    const auto r = machine.solve(rng);
    best = std::max(best, graph::coloring_accuracy(g, r.colors));
  }
  EXPECT_GE(best, 0.8);
}


TEST(CircuitMachine, DeadOscillatorReportedAndIsolated) {
  // Failure injection: one defective cell. The run must complete, report
  // the dead cell, and still color the surviving sub-graph sensibly.
  const auto g = graph::kings_graph(3, 3);
  auto cfg = quick_config();
  cfg.disabled_oscillators = {4};  // center cell (highest degree)
  CircuitMsropm machine(g, cfg);
  util::Rng rng(17);
  const auto r = machine.solve(rng);
  ASSERT_EQ(r.dead_oscillators, std::vector<std::size_t>{4});
  EXPECT_EQ(r.colors[4], 0);  // dead cells latch color 0 by convention
  // Live-live edges only: quality should not collapse.
  std::size_t live_edges = 0;
  std::size_t live_proper = 0;
  for (const auto& e : g.edges()) {
    if (e.u == 4 || e.v == 4) continue;
    ++live_edges;
    if (r.colors[e.u] != r.colors[e.v]) ++live_proper;
  }
  ASSERT_GT(live_edges, 0u);
  EXPECT_GE(static_cast<double>(live_proper) / live_edges, 0.5);
}

TEST(CircuitMachine, AllOscillatorsDeadStillTerminates) {
  const auto g = graph::path_graph(2);
  auto cfg = quick_config();
  cfg.disabled_oscillators = {0, 1};
  CircuitMsropm machine(g, cfg);
  util::Rng rng(3);
  const auto r = machine.solve(rng);
  EXPECT_EQ(r.dead_oscillators.size(), 2u);
  EXPECT_EQ(r.colors, graph::Coloring({0, 0}));
}

TEST(CircuitMachine, DisabledOscillatorOutOfRangeThrows) {
  const auto g = graph::path_graph(2);
  auto cfg = quick_config();
  cfg.disabled_oscillators = {7};
  CircuitMsropm machine(g, cfg);
  util::Rng rng(3);
  EXPECT_THROW((void)machine.solve(rng), std::out_of_range);
}

}  // namespace
