// Cross-module integration tests: the full reproduction pipeline on the
// 49-node paper instance, engine cross-validation and baseline agreement.
#include <gtest/gtest.h>

#include <algorithm>

#include "msropm/analysis/experiments.hpp"
#include "msropm/analysis/hamming.hpp"
#include "msropm/core/circuit_machine.hpp"
#include "msropm/core/runner.hpp"
#include "msropm/graph/builders.hpp"
#include "msropm/sat/coloring_encoder.hpp"
#include "msropm/solvers/maxcut_sa.hpp"
#include "msropm/solvers/sa_potts.hpp"
#include "msropm/util/stats.hpp"

namespace {

using namespace msropm;

class PaperPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new graph::Graph(graph::kings_graph_square(7));
    auto machine = new core::MultiStagePottsMachine(
        *graph_, analysis::default_machine_config());
    core::RunnerOptions opts;
    opts.iterations = 40;  // the paper's protocol
    opts.seed = 7;
    summary_ = new core::RunSummary(core::run_iterations(*machine, opts));
    machine_ = machine;
  }
  static void TearDownTestSuite() {
    delete summary_;
    delete machine_;
    delete graph_;
    summary_ = nullptr;
    machine_ = nullptr;
    graph_ = nullptr;
  }

  static graph::Graph* graph_;
  static core::MultiStagePottsMachine* machine_;
  static core::RunSummary* summary_;
};

graph::Graph* PaperPipeline::graph_ = nullptr;
core::MultiStagePottsMachine* PaperPipeline::machine_ = nullptr;
core::RunSummary* PaperPipeline::summary_ = nullptr;

TEST_F(PaperPipeline, SatBaselineCertifiesExactSolutionExists) {
  // "Exact solutions of the problems are computed using a generic SAT
  //  solver, which serves as the baseline" (Sec. 4).
  const auto exact = sat::solve_exact_coloring(*graph_, 4);
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(graph::coloring_accuracy(*graph_, *exact), 1.0);
}

TEST_F(PaperPipeline, ReachesExactSolutionWithin40Iterations) {
  // Paper: the 49-node problem reaches 100% accuracy 6 times in 40 runs.
  EXPECT_GE(summary_->exact_solutions, 1u);
  EXPECT_DOUBLE_EQ(summary_->best_accuracy, 1.0);
}

TEST_F(PaperPipeline, AverageAccuracyNear98Percent) {
  // Paper: average 98%, worst observed 92%.
  EXPECT_GE(summary_->mean_accuracy, 0.95);
  EXPECT_GE(summary_->worst_accuracy, 0.90);
}

TEST_F(PaperPipeline, Stage1AccuracyCorrelatesWithFinal) {
  // Fig. 5(b) discussion: "1st stage accuracy has, in general, positive
  // correlation with the final 4-coloring accuracy".
  const double corr = util::pearson_correlation(summary_->stage1_cut_series(),
                                                summary_->accuracy_series());
  EXPECT_GT(corr, 0.2);
}

TEST_F(PaperPipeline, SolutionsAreDiverse) {
  // Fig. 5(c): solutions with similar accuracy are significantly different.
  std::vector<graph::Coloring> solutions;
  for (const auto& it : summary_->iterations) {
    solutions.push_back(it.result.colors);
  }
  const auto distances = analysis::pairwise_hamming(solutions);
  util::SampleSet set;
  for (double d : distances) set.add(d);
  EXPECT_GT(set.mean(), 0.3);
  EXPECT_LT(set.mean(), 0.9);
}

TEST_F(PaperPipeline, Stage1CutsNearBestKnownMaxcut) {
  util::Rng rng(99);
  const auto ref = solvers::best_known_maxcut(*graph_, 10, rng);
  const auto cuts = summary_->stage1_cut_series();
  const double best_cut = *std::max_element(cuts.begin(), cuts.end());
  EXPECT_GE(best_cut / static_cast<double>(ref.cut), 0.9);
}

TEST(EngineCrossValidation, PhaseAndCircuitAgreeOnBehaviour) {
  // Both engines implement the same architecture; on a tiny instance both
  // must produce 4-partitions whose cross-cut edges are properly colored and
  // with comparable stage-1 cut quality.
  const auto g = graph::kings_graph(2, 3);

  core::MultiStagePottsMachine phase_machine(
      g, analysis::default_machine_config());
  util::Rng rng1(3);
  const auto phase_result = phase_machine.solve(rng1);

  core::CircuitMsropmConfig circuit_cfg;
  circuit_cfg.schedule.init_s = 3e-9;
  circuit_cfg.schedule.anneal_s = 8e-9;
  circuit_cfg.schedule.discretize_s = 4e-9;
  circuit_cfg.schedule.reinit_s = 3e-9;
  core::CircuitMsropm circuit_machine(g, circuit_cfg);
  util::Rng rng2(3);
  const auto circuit_result = circuit_machine.solve(rng2);

  // Architectural invariant in both: stage-1-cut edges are conflict-free.
  for (const auto& e : g.edges()) {
    if (phase_result.stages[0].bits[e.u] != phase_result.stages[0].bits[e.v]) {
      EXPECT_NE(phase_result.colors[e.u], phase_result.colors[e.v]);
    }
    if (circuit_result.stage1_bits[e.u] != circuit_result.stage1_bits[e.v]) {
      EXPECT_NE(circuit_result.colors[e.u], circuit_result.colors[e.v]);
    }
  }
}

TEST(BaselineAgreement, AllSolversReachProperColoringOnEasyInstance) {
  const auto g = graph::kings_graph_square(5);
  util::Rng rng(17);

  const auto sat_coloring = sat::solve_exact_coloring(g, 4);
  ASSERT_TRUE(sat_coloring.has_value());

  solvers::SaPottsOptions sa_opts;
  const auto sa = solvers::solve_sa_potts(g, sa_opts, rng);
  EXPECT_EQ(sa.conflicts, 0u);

  core::MultiStagePottsMachine machine(g, analysis::default_machine_config());
  core::RunnerOptions ropts;
  ropts.iterations = 20;
  ropts.seed = 23;
  const auto summary = core::run_iterations(machine, ropts);
  EXPECT_DOUBLE_EQ(summary.best_accuracy, 1.0)
      << "the MSROPM must match software baselines on a 25-node instance";
}

TEST(DivideAndColorInvariant, UncutEdgesAreExactlyTheConflicts) {
  // Whole-pipeline check of the divide-and-color algebra on a mid-size run.
  const auto g = graph::kings_graph_square(10);
  core::MultiStagePottsMachine machine(g, analysis::default_machine_config());
  util::Rng rng(29);
  const auto r = machine.solve(rng);
  std::size_t uncut = 0;
  for (const auto& e : g.edges()) {
    const bool cut1 = r.stages[0].bits[e.u] != r.stages[0].bits[e.v];
    const bool cut2 = r.stages[1].bits[e.u] != r.stages[1].bits[e.v];
    if (!cut1 && !cut2) ++uncut;
  }
  EXPECT_EQ(graph::count_conflicts(g, r.colors), uncut);
}

}  // namespace
