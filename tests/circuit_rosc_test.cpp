// Tests for the standalone ring oscillator and edge-phase detection.
#include "msropm/circuit/rosc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "msropm/util/rng.hpp"

namespace {

using namespace msropm::circuit;

TEST(RingOscillator, RejectsEvenOrTinyRings) {
  const InverterParams p;
  EXPECT_THROW(RingOscillator(4, p), std::invalid_argument);
  EXPECT_THROW(RingOscillator(1, p), std::invalid_argument);
  EXPECT_NO_THROW(RingOscillator(3, p));
  EXPECT_NO_THROW(RingOscillator(11, p));
}

TEST(RingOscillator, OscillatesRailToRail) {
  auto params = calibrate_for_frequency(1.3e9, 11);
  RingOscillator osc(11, params);
  const double dt = 1e-12;
  double vmin = 1.0;
  double vmax = 0.0;
  // Skip startup transient, then observe two periods.
  for (int i = 0; i < 3000; ++i) osc.step_rk4(dt);
  for (int i = 0; i < 2000; ++i) {
    osc.step_rk4(dt);
    vmin = std::min(vmin, osc.output());
    vmax = std::max(vmax, osc.output());
  }
  EXPECT_LT(vmin, 0.15 * params.vdd);
  EXPECT_GT(vmax, 0.85 * params.vdd);
}

TEST(RingOscillator, FrequencyNearPaperTarget) {
  // 11-stage ring calibrated for the paper's 1.3 GHz; the behavioural model
  // must land within 25% (tests measure, benches report the exact value).
  auto params = calibrate_for_frequency(1.3e9, 11);
  RingOscillator osc(11, params);
  EdgePhaseDetector det(params.vdd / 2);
  const double dt = 1e-12;
  double t = 0.0;
  for (int i = 0; i < 12000; ++i) {
    osc.step_rk4(dt);
    t += dt;
    det.observe(t, osc.output());
  }
  ASSERT_TRUE(det.has_period());
  EXPECT_NEAR(det.frequency(), 1.3e9, 1.3e9 * 0.25);
}

TEST(RingOscillator, MoreStagesOscillateSlower) {
  const InverterParams p = calibrate_for_frequency(1.3e9, 11);
  auto measure = [&p](unsigned stages) {
    RingOscillator osc(stages, p);
    EdgePhaseDetector det(p.vdd / 2);
    double t = 0.0;
    for (int i = 0; i < 20000; ++i) {
      osc.step_rk4(1e-12);
      t += 1e-12;
      det.observe(t, osc.output());
    }
    return det.frequency();
  };
  EXPECT_GT(measure(5), measure(11));
}

TEST(RingOscillator, RandomizeSetsVoltagesInRails) {
  msropm::util::Rng rng(3);
  RingOscillator osc(11, InverterParams{});
  osc.randomize(rng);
  for (double v : osc.voltages()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RingOscillator, SetVoltagesValidatesSize) {
  RingOscillator osc(3, InverterParams{});
  EXPECT_THROW(osc.set_voltages({0.1, 0.2}), std::invalid_argument);
  osc.set_voltages({0.1, 0.2, 0.3});
  EXPECT_DOUBLE_EQ(osc.voltages()[2], 0.3);
}

TEST(EdgePhaseDetector, DetectsRisingCrossings) {
  EdgePhaseDetector det(0.5);
  // Triangle wave crossing up at t=1, down at t=3, up at t=5.
  det.observe(0.0, 0.0);
  det.observe(1.0, 0.5);
  det.observe(2.0, 1.0);
  det.observe(3.0, 0.5);  // falling crossing: ignored
  det.observe(4.0, 0.0);
  det.observe(5.0, 0.5);
  det.observe(6.0, 1.0);
  ASSERT_TRUE(det.has_period());
  EXPECT_NEAR(det.period(), 4.0, 1e-9);
  EXPECT_NEAR(det.last_crossing(), 5.0, 1e-9);
}

TEST(EdgePhaseDetector, InterpolatesCrossingInstant) {
  EdgePhaseDetector det(0.5);
  det.observe(0.0, 0.0);
  det.observe(1.0, 1.0);  // crosses 0.5 at t = 0.5
  EXPECT_NEAR(det.last_crossing(), 0.5, 1e-9);
}

TEST(EdgePhaseDetector, PhaseVsReference) {
  EdgePhaseDetector det(0.5);
  det.observe(0.9, 0.0);
  det.observe(1.1, 1.0);  // rising edge at t = 1.0
  det.observe(1.9, 0.0);
  det.observe(2.1, 1.0);  // rising edge at t = 2.0, period 1
  // Reference period 1.0: edges at integer times -> phase 0.
  EXPECT_NEAR(det.phase_vs_reference(2.5, 1.0), 0.0, 0.05);
  // Reference period 4.0: edge at t=2 = half the reference period -> pi.
  EXPECT_NEAR(det.phase_vs_reference(2.5, 4.0), std::numbers::pi, 0.05);
}

}  // namespace
