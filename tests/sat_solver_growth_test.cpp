// Regression test for the clause-database growth bug: the pre-arena solver
// tombstoned reduced learnts (deleted = true) but never reclaimed their
// storage or purged stale watch-list references, so on conflict-heavy solves
// the clause vector and every watch list grew monotonically with the number
// of learnt clauses ever created. With the ClauseArena + compacting GC the
// buffer must plateau: its high-water mark stays far below the lifetime
// allocation, and no watch/reason entry may ever reference a freed clause.
#include <gtest/gtest.h>

#include "msropm/sat/cnf.hpp"
#include "msropm/sat/solver.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm::sat;

/// Threshold-density random 3-SAT (ratio 4.26, 170 vars): these take
/// thousands of conflicts to refute, which made the old clause DB grow
/// without bound once learnts were "removed".
Cnf conflict_heavy_cnf(std::uint64_t seed) {
  msropm::util::Rng rng(seed);
  const std::size_t vars = 170;
  const auto clauses = static_cast<std::size_t>(4.26 * static_cast<double>(vars));
  Cnf cnf(vars);
  for (std::size_t c = 0; c < clauses; ++c) {
    Clause clause;
    while (clause.size() < 3) {
      const auto v = static_cast<Var>(rng.uniform_index(vars));
      clause.push_back(Lit(v, rng.bernoulli(0.5)));
    }
    cnf.add_clause(std::move(clause));
  }
  return cnf;
}

SolverOptions reduction_heavy_options() {
  SolverOptions options;
  options.learnt_cap = 64;  // force many reduce_learnts() rounds
  return options;
}

TEST(ClauseDbGrowth, GcReclaimsDeletedLearnts) {
  const Cnf cnf = conflict_heavy_cnf(2);
  Solver solver(cnf, reduction_heavy_options());
  EXPECT_EQ(solver.solve(), SolveResult::kUnsat);
  const SolverStats& stats = solver.stats();

  // The run must actually be conflict-heavy and reduction-heavy, otherwise
  // the assertions below are vacuous (seed 2 refutes in ~6.6k conflicts).
  ASSERT_GT(stats.conflicts, 1000u);
  ASSERT_GT(stats.removed_learnts, 500u);
  ASSERT_GE(stats.gc_runs, 2u);
  EXPECT_GT(stats.gc_freed_words, 0u);

  // The actual fix: memory for deleted learnts is reclaimed. The old design
  // kept every word ever allocated live in the buffer (peak == lifetime
  // allocation, ratio 1.0); with the compacting GC the high-water mark must
  // stay well below the lifetime allocation (measured ~0.43 on this seed).
  EXPECT_LT(stats.arena_peak_words, (3 * stats.arena_alloc_words) / 5)
      << "peak=" << stats.arena_peak_words
      << " lifetime alloc=" << stats.arena_alloc_words;

  // And the final buffer must have shrunk back below the peak.
  EXPECT_LE(solver.arena_used_words(), stats.arena_peak_words);
}

TEST(ClauseDbGrowth, PeakGrowsSublinearlyInConflicts) {
  // Checkpoint comparison: quadrupling the conflict budget must quadruple
  // the lifetime allocation (learnts keep being created) but NOT the peak
  // buffer size — the live set is bounded by the learnt cap, not by the
  // number of learnts ever created. The old tombstone design had
  // peak ~ lifetime allocation, i.e. ratio ~1.
  const Cnf cnf = conflict_heavy_cnf(2);

  SolverOptions small = reduction_heavy_options();
  small.conflict_limit = 1000;
  Solver first(cnf, small);
  ASSERT_EQ(first.solve(), SolveResult::kUnknown);

  SolverOptions large = reduction_heavy_options();
  large.conflict_limit = 4000;
  Solver second(cnf, large);
  const SolveResult r = second.solve();
  ASSERT_TRUE(r == SolveResult::kUnknown || r == SolveResult::kUnsat);
  ASSERT_GT(second.stats().conflicts, 3500u);

  const double alloc_growth =
      static_cast<double>(second.stats().arena_alloc_words) /
      static_cast<double>(first.stats().arena_alloc_words);
  const double peak_growth =
      static_cast<double>(second.stats().arena_peak_words) /
      static_cast<double>(first.stats().arena_peak_words);
  EXPECT_GT(alloc_growth, 2.5) << "expected ~4x more learnt words allocated";
  // The live set is bounded by the (geometrically growing) learnt cap, so
  // peak growth lags allocation growth; the old tombstone design had
  // peak_growth == alloc_growth. Measured: peak x2.5 vs alloc x3.3.
  EXPECT_LT(peak_growth, 0.85 * alloc_growth)
      << "peak must grow sublinearly vs lifetime allocation (peak_growth="
      << peak_growth << ", alloc_growth=" << alloc_growth << ")";
  EXPECT_LT(second.stats().arena_peak_words,
            (3 * second.stats().arena_alloc_words) / 5);
}

TEST(ClauseDbGrowth, BinaryWatchersSurviveGc) {
  // Implicit binary clauses live only in the watch lists (no arena record),
  // so a compacting GC must pass them through untouched: after GC-heavy
  // solves of binary-rich formulas, clause_refs_clean() must still hold
  // (it validates that binary watchers carry in-range literals and that
  // every long watcher's blocker is a literal of its clause), and solving
  // again must reproduce the exact same search — a corrupted or dropped
  // binary watcher would change propagation.
  msropm::util::Rng rng(17);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t vars = 60 + 10 * static_cast<std::size_t>(trial);
    Cnf cnf(vars);
    // ~60% binary / 40% ternary mix keeps real conflict work while making
    // binary watchers the bulk of every watch list.
    for (std::size_t c = 0; c < 6 * vars; ++c) {
      const std::size_t len = c % 5 < 3 ? 2 : 3;
      Clause clause;
      while (clause.size() < len) {
        const auto v = static_cast<Var>(rng.uniform_index(vars));
        clause.push_back(Lit(v, rng.bernoulli(0.5)));
      }
      cnf.add_clause(std::move(clause));
    }
    SolverOptions options = reduction_heavy_options();
    options.learnt_cap = 24;
    options.conflict_limit = 3000;

    Solver first(cnf, options);
    const SolveResult verdict = first.solve();
    EXPECT_TRUE(first.clause_refs_clean()) << "trial=" << trial;

    Solver second(cnf, options);
    EXPECT_EQ(second.solve(), verdict) << "trial=" << trial;
    EXPECT_EQ(second.stats().decisions, first.stats().decisions)
        << "trial=" << trial;
    EXPECT_EQ(second.stats().binary_propagations,
              first.stats().binary_propagations)
        << "trial=" << trial;
    if (verdict == SolveResult::kSat) {
      EXPECT_TRUE(cnf.satisfied_by(first.model())) << "trial=" << trial;
      EXPECT_EQ(first.model(), second.model()) << "trial=" << trial;
    }
  }
}

TEST(ClauseDbGrowth, NoStaleReferencesAfterReductions) {
  // The satellite invariant, checked from the outside on several seeds: after
  // a solve full of reduce_learnts() rounds and GCs, no watch list, reason
  // slot, or learnt-list entry references a deleted/freed clause. (Debug and
  // sanitizer builds additionally abort inside reduce_learnts() itself if
  // the invariant is ever violated mid-search.)
  for (std::uint64_t seed = 3; seed < 8; ++seed) {
    const Cnf cnf = conflict_heavy_cnf(seed);
    SolverOptions options = reduction_heavy_options();
    options.conflict_limit = 2500;
    Solver solver(cnf, options);
    (void)solver.solve();
    EXPECT_GT(solver.stats().removed_learnts, 0u) << "seed=" << seed;
    EXPECT_TRUE(solver.clause_refs_clean()) << "seed=" << seed;
  }
}

}  // namespace
