// Tests for the CSR graph core.
#include "msropm/graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/graph/builders.hpp"

namespace {

using msropm::graph::Graph;
using msropm::graph::GraphBuilder;
using msropm::graph::NodeId;

TEST(GraphBuilder, RejectsSelfLoops) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
}

TEST(GraphBuilder, RejectsOutOfRange) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(b.add_edge(5, 0), std::invalid_argument);
}

TEST(GraphBuilder, IgnoresDuplicates) {
  GraphBuilder b(3);
  EXPECT_TRUE(b.add_edge(0, 1));
  EXPECT_FALSE(b.add_edge(0, 1));
  EXPECT_FALSE(b.add_edge(1, 0));  // same undirected edge
  EXPECT_EQ(b.num_edges(), 1u);
}

TEST(Graph, EmptyGraph) {
  const Graph g(0);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, IsolatedNodes) {
  const Graph g = GraphBuilder(5).build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_TRUE(g.neighbors(3).empty());
}

TEST(Graph, AdjacencyIsSortedAndSymmetric) {
  GraphBuilder b(4);
  b.add_edge(2, 0);
  b.add_edge(0, 3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
  for (NodeId v : {1u, 2u, 3u}) {
    ASSERT_EQ(g.neighbors(v).size(), 1u);
    EXPECT_EQ(g.neighbors(v)[0], 0u);
  }
}

TEST(Graph, EdgeListCanonical) {
  GraphBuilder b(4);
  b.add_edge(3, 1);
  b.add_edge(2, 0);
  const Graph g = b.build();
  for (const auto& e : g.edges()) {
    EXPECT_LT(e.u, e.v);
  }
  // Lexicographic order.
  EXPECT_EQ(g.edges()[0].u, 0u);
  EXPECT_EQ(g.edges()[1].u, 1u);
}

TEST(Graph, HasEdge) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph g = b.build();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(0, 99));
}

TEST(Graph, DegreesAndAverages) {
  const Graph g = msropm::graph::star_graph(5);
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0 * 4.0 / 5.0);
}

TEST(Graph, NeighborsOutOfRangeThrows) {
  const Graph g = GraphBuilder(2).build();
  EXPECT_THROW((void)g.neighbors(2), std::out_of_range);
  EXPECT_THROW((void)g.degree(7), std::out_of_range);
}

TEST(Graph, ConnectedComponentsSingle) {
  const Graph g = msropm::graph::cycle_graph(6);
  const auto [comp, count] = g.connected_components();
  EXPECT_EQ(count, 1u);
  for (auto c : comp) EXPECT_EQ(c, 0u);
}

TEST(Graph, ConnectedComponentsMultiple) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  // 4, 5 isolated
  const Graph g = b.build();
  const auto [comp, count] = g.connected_components();
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[5]);
}

TEST(Graph, BipartiteDetection) {
  EXPECT_TRUE(msropm::graph::cycle_graph(4).is_bipartite());
  EXPECT_FALSE(msropm::graph::cycle_graph(5).is_bipartite());
  EXPECT_TRUE(msropm::graph::path_graph(7).is_bipartite());
  EXPECT_TRUE(msropm::graph::complete_bipartite_graph(3, 4).is_bipartite());
  EXPECT_FALSE(msropm::graph::complete_graph(3).is_bipartite());
  EXPECT_TRUE(msropm::graph::grid_graph(4, 5).is_bipartite());
  EXPECT_FALSE(msropm::graph::kings_graph(3, 3).is_bipartite());
}

TEST(Graph, EqualityComparesStructure) {
  GraphBuilder b1(3);
  b1.add_edge(0, 1);
  GraphBuilder b2(3);
  b2.add_edge(1, 0);
  EXPECT_EQ(b1.build(), b2.build());
  GraphBuilder b3(3);
  b3.add_edge(0, 2);
  EXPECT_FALSE(b1.build() == b3.build());
}

}  // namespace
