// Unit tests for util::FaultInjector: spec grammar, counted and
// probabilistic fire schedules, determinism, and the armed()/disarm()
// lifecycle. The engine-level behavior under injected faults lives in
// tests/chaos_test.cpp; this file pins down the injector itself.
#include "msropm/util/fault_injector.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using msropm::util::FaultSite;
namespace fault = msropm::util::fault;

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm(); }
  void TearDown() override { fault::disarm(); }
};

TEST_F(FaultInjectorTest, DisarmedByDefault) {
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::fire(FaultSite::kPropagate));
  // An unarmed fire() must not even count the arrival — that is the
  // zero-overhead contract.
  EXPECT_EQ(fault::arrivals(FaultSite::kPropagate), 0u);
  EXPECT_EQ(fault::describe(), "");
}

TEST_F(FaultInjectorTest, EmptySpecDisarms) {
  ASSERT_TRUE(fault::configure("propagate:1"));
  EXPECT_TRUE(fault::armed());
  ASSERT_TRUE(fault::configure(""));
  EXPECT_FALSE(fault::armed());
}

TEST_F(FaultInjectorTest, MalformedSpecsRejectAndDisarm) {
  const std::vector<std::string> bad = {
      "bogus:1",       // unknown site
      "propagate",     // missing count
      "propagate:0",   // counted mode is 1-based
      "propagate:-2",  // negative count
      "propagate:1:0", // zero period
      "propagate:1:2:3",  // too many fields
      "alloc@1.5",     // probability out of range
      "alloc@-0.1",
      "alloc@x",
      "seed=-1",
      "stall-ms=abc",
  };
  for (const std::string& spec : bad) {
    ASSERT_TRUE(fault::configure("gc:1"));  // arm first...
    EXPECT_FALSE(fault::configure(spec)) << spec;
    EXPECT_FALSE(fault::armed()) << spec;  // ...reject must also disarm
  }
}

TEST_F(FaultInjectorTest, CountedFiresExactlyOnNthArrival) {
  ASSERT_TRUE(fault::configure("analyze:3"));
  EXPECT_FALSE(fault::fire(FaultSite::kAnalyze));
  EXPECT_FALSE(fault::fire(FaultSite::kAnalyze));
  EXPECT_TRUE(fault::fire(FaultSite::kAnalyze));
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fault::fire(FaultSite::kAnalyze));
  EXPECT_EQ(fault::hits(FaultSite::kAnalyze), 1u);
  EXPECT_EQ(fault::arrivals(FaultSite::kAnalyze), 13u);
  // Other sites are untouched by an analyze-only schedule.
  EXPECT_FALSE(fault::fire(FaultSite::kGc));
}

TEST_F(FaultInjectorTest, PeriodicFiresOnNthThenEveryMth) {
  ASSERT_TRUE(fault::configure("gc:2:3"));
  std::vector<int> fired_at;
  for (int arrival = 1; arrival <= 12; ++arrival) {
    if (fault::fire(FaultSite::kGc)) fired_at.push_back(arrival);
  }
  EXPECT_EQ(fired_at, (std::vector<int>{2, 5, 8, 11}));
}

TEST_F(FaultInjectorTest, AllAppliesToEverySite) {
  ASSERT_TRUE(fault::configure("all:1"));
  for (std::size_t i = 0; i < msropm::util::kNumFaultSites; ++i) {
    const auto site = static_cast<FaultSite>(i);
    EXPECT_TRUE(fault::fire(site)) << msropm::util::to_string(site);
    EXPECT_FALSE(fault::fire(site)) << msropm::util::to_string(site);
  }
}

TEST_F(FaultInjectorTest, ProbabilisticModeIsSeedDeterministic) {
  const auto run_schedule = [](const std::string& spec) {
    EXPECT_TRUE(fault::configure(spec));
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) fires.push_back(fault::fire(FaultSite::kPropagate));
    return fires;
  };
  const auto a = run_schedule("propagate@0.3,seed=5");
  const auto b = run_schedule("propagate@0.3,seed=5");
  const auto c = run_schedule("propagate@0.3,seed=6");
  EXPECT_EQ(a, b);  // same seed, same arrivals -> identical schedule
  EXPECT_NE(a, c);  // a different seed reshuffles it
  std::size_t count = 0;
  for (const bool f : a) count += f ? 1 : 0;
  EXPECT_GT(count, 0u);    // p=0.3 over 200 arrivals fires...
  EXPECT_LT(count, 200u);  // ...but not always
}

TEST_F(FaultInjectorTest, ConfigureResetsCountersAndStallDefaults) {
  ASSERT_TRUE(fault::configure("stall:1,stall-ms=7"));
  EXPECT_EQ(fault::stall_ms(), 7u);
  EXPECT_TRUE(fault::fire(FaultSite::kWorkerStall));
  EXPECT_EQ(fault::hits(FaultSite::kWorkerStall), 1u);
  // Reconfiguring starts a fresh schedule: counters zeroed, defaults back.
  ASSERT_TRUE(fault::configure("stall:1"));
  EXPECT_EQ(fault::stall_ms(), 20u);
  EXPECT_EQ(fault::arrivals(FaultSite::kWorkerStall), 0u);
  EXPECT_EQ(fault::hits(FaultSite::kWorkerStall), 0u);
}

TEST_F(FaultInjectorTest, DescribeEchoesTheAcceptedSpec) {
  ASSERT_TRUE(fault::configure(" gc:1 , seed=3 "));
  EXPECT_EQ(fault::describe(), "gc:1 , seed=3");
  fault::disarm();
  EXPECT_EQ(fault::describe(), "");
}

TEST_F(FaultInjectorTest, SettingsOnlySpecStaysDisarmed) {
  // seed=/stall-ms= alone configure nothing that can fire; arming anyway
  // would put every fault point on the should_fire() slow path for nothing.
  ASSERT_TRUE(fault::configure("seed=9,stall-ms=5"));
  EXPECT_FALSE(fault::armed());
}

}  // namespace
