// Chaos suite: randomized fault schedules, resource budgets, and deadline
// edge cases across the solver stack (ISSUE: resource governance PR).
//
// The contract under test (src/util/README.md):
//   1. No fault schedule or budget may crash an engine or corrupt its state.
//   2. Faults and budgets only DEGRADE results — a definitive verdict under
//      chaos always matches the fault-free baseline; degradation is always
//      kUnknown with a LimitReason, never a flipped answer.
//   3. A breached/injected engine stays usable: disarm (or simply call
//      again) and it makes progress on the same formula.
//   4. With no faults configured and no budget set, trajectories are
//      bit-identical to a build that never heard of the governance layer.
//
// The randomized sections run >= 200 distinct schedules over a King's-graph
// + random-3SAT corpus; the deterministic sections pin down each unwind
// boundary (GC entry, preprocessor pass, batch step, worker attempt).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "msropm/graph/builders.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/phase/batch.hpp"
#include "msropm/portfolio/portfolio.hpp"
#include "msropm/sat/cnf.hpp"
#include "msropm/sat/coloring_encoder.hpp"
#include "msropm/sat/solver.hpp"
#include "msropm/util/fault_injector.hpp"
#include "msropm/util/resource_budget.hpp"
#include "msropm/util/rng.hpp"
#include "msropm/util/stop_token.hpp"

namespace {

using namespace msropm;
using sat::Cnf;
using sat::Lit;
using sat::SolveResult;
using sat::Var;
using util::LimitReason;

// The injector is process-global; every test must leave it disarmed or the
// rest of the binary inherits its schedule.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { util::fault::disarm(); }
  void TearDown() override { util::fault::disarm(); }
};

Cnf random_3sat(std::uint64_t seed, std::size_t vars, std::size_t clauses) {
  util::Rng rng(seed);
  Cnf cnf(vars);
  for (std::size_t c = 0; c < clauses; ++c) {
    sat::Clause clause;
    while (clause.size() < 3) {
      const auto v = static_cast<Var>(rng.uniform_index(vars));
      clause.push_back(Lit(v, rng.bernoulli(0.5)));
    }
    cnf.add_clause(std::move(clause));
  }
  return cnf;
}

SolveResult baseline_of(const Cnf& cnf, bool presimplify = false) {
  sat::SolverOptions options;
  options.presimplify = presimplify;
  sat::Solver solver(cnf, options);
  return solver.solve();
}

// A conflict-RICH instance: King's-graph encodings are decided by pure
// propagation (zero conflicts, a handful of decisions), which never reaches
// the per-conflict budget polls — budgets bound work, they do not suppress
// an answer the solver already found. G(30, 0.5) at K=6 is UNSAT with a
// ~40-conflict proof, so every conflict-cadence governance path runs.
graph::Graph dense_random_graph() {
  util::Rng rng(42);
  return graph::erdos_renyi(30, 0.5, rng);
}

Cnf conflict_rich_unsat_cnf() {
  return sat::encode_coloring(dense_random_graph(), 6).cnf;
}

// --- randomized fault schedules over the CNF corpus -----------------------

TEST_F(ChaosTest, SolverSurvivesTwoHundredFaultSchedules) {
  // Corpus: near-threshold random 3-SAT plus both polarities of the King's
  // coloring encoding (kings_4x4 is 4-colorable; its 4-cliques make K=3
  // UNSAT).
  std::vector<Cnf> corpus;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    corpus.push_back(random_3sat(s, 30, 126));
  }
  const auto kings = graph::kings_graph_square(4);
  corpus.push_back(sat::encode_coloring(kings, 4).cnf);
  corpus.push_back(sat::encode_coloring(kings, 3).cnf);
  corpus.push_back(conflict_rich_unsat_cnf());

  std::vector<SolveResult> baseline;
  for (const Cnf& cnf : corpus) baseline.push_back(baseline_of(cnf));

  constexpr int kSchedules = 200;
  const char* kSites[] = {"alloc", "propagate", "analyze", "gc", "pre"};
  std::uint64_t total_fires = 0;
  int degraded = 0;
  for (int s = 1; s <= kSchedules; ++s) {
    std::string spec;
    switch (s % 4) {
      case 0:  // every site, probabilistic, schedule-specific seed
        spec = "all@0.01,seed=" + std::to_string(s);
        break;
      case 1:  // one counted site, varying arrival index
        spec = std::string(kSites[s % 5]) + ":" + std::to_string(1 + s % 7);
        break;
      case 2:  // periodic propagate kills
        spec = "propagate:" + std::to_string(1 + s % 5) + ":" +
               std::to_string(2 + s % 9);
        break;
      default:  // aggressive arena-allocation failures
        spec = "alloc@0.05,seed=" + std::to_string(s);
        break;
    }
    ASSERT_TRUE(util::fault::configure(spec)) << spec;

    const std::size_t item = static_cast<std::size_t>(s) % corpus.size();
    sat::SolverOptions options;
    options.presimplify = (s % 2) == 0;  // exercise the `pre` site too
    sat::Solver solver(corpus[item], options);
    const SolveResult result = solver.solve();

    // Contract 2: a fault may only degrade to kUnknown (with the injected
    // reason), never flip a verdict.
    if (result != SolveResult::kUnknown) {
      EXPECT_EQ(result, baseline[item]) << "verdict flip under spec " << spec;
    } else {
      EXPECT_EQ(solver.stats().limit_reason, LimitReason::kInjected)
          << "unknown without an injected reason under spec " << spec;
    }
    total_fires += util::fault::hits(util::FaultSite::kArenaAlloc) +
                   util::fault::hits(util::FaultSite::kPropagate) +
                   util::fault::hits(util::FaultSite::kAnalyze) +
                   util::fault::hits(util::FaultSite::kGc) +
                   util::fault::hits(util::FaultSite::kPreprocessPass);
    if (result == SolveResult::kUnknown) ++degraded;

    // Contract 3 (spot-checked): disarm and call the SAME solver again. A
    // search-time injection recovers to the baseline verdict; only a
    // construction-time arena fault (incomplete clause DB) may stay
    // kUnknown/kInjected — and must keep saying so rather than guessing.
    if (s % 10 == 0) {
      util::fault::disarm();
      const SolveResult again = solver.solve();
      if (again != baseline[item]) {
        EXPECT_EQ(again, SolveResult::kUnknown);
        EXPECT_EQ(solver.stats().limit_reason, LimitReason::kInjected);
      }
    }
    util::fault::disarm();
  }
  // The schedules must have actually hit fault points, and some of them must
  // have actually degraded a solve — otherwise this suite tests nothing.
  EXPECT_GT(total_fires, 0u);
  EXPECT_GT(degraded, 0);
  EXPECT_LT(degraded, kSchedules);  // and plenty survive their schedule
}

// --- bit-identity when governance is configured but inert -----------------

TEST_F(ChaosTest, ArmedButNeverFiringScheduleIsBitIdentical) {
  const Cnf cnf = random_3sat(7, 40, 170);
  sat::Solver clean(cnf);
  const SolveResult clean_result = clean.solve();

  // Armed gate, but the billionth arrival never comes: the arrival counters
  // tick, the search must not notice.
  ASSERT_TRUE(util::fault::configure("all:1000000000"));
  sat::Solver armed(cnf);
  const SolveResult armed_result = armed.solve();
  EXPECT_EQ(armed_result, clean_result);
  EXPECT_EQ(armed.stats().decisions, clean.stats().decisions);
  EXPECT_EQ(armed.stats().propagations, clean.stats().propagations);
  EXPECT_EQ(armed.stats().conflicts, clean.stats().conflicts);
  EXPECT_GT(util::fault::arrivals(util::FaultSite::kPropagate), 0u);

  // Configured-then-disarmed == never configured.
  util::fault::disarm();
  sat::Solver disarmed(cnf);
  EXPECT_EQ(disarmed.solve(), clean_result);
  EXPECT_EQ(disarmed.stats().decisions, clean.stats().decisions);
  EXPECT_EQ(disarmed.stats().conflicts, clean.stats().conflicts);
}

TEST_F(ChaosTest, UnlimitedAndHugeBudgetsAreBitIdentical) {
  const Cnf cnf = random_3sat(11, 40, 170);
  sat::Solver unlimited(cnf);
  const SolveResult expected = unlimited.solve();

  sat::SolverOptions options;
  options.budget.max_memory_bytes = ~std::uint64_t{0} / 2;
  options.budget.max_conflicts = ~std::uint64_t{0} / 2;
  options.budget.max_propagations = ~std::uint64_t{0} / 2;
  sat::Solver capped(cnf, options);
  EXPECT_EQ(capped.solve(), expected);
  EXPECT_EQ(capped.stats().decisions, unlimited.stats().decisions);
  EXPECT_EQ(capped.stats().propagations, unlimited.stats().propagations);
  EXPECT_EQ(capped.stats().conflicts, unlimited.stats().conflicts);
  EXPECT_EQ(capped.stats().limit_reason, LimitReason::kNone);
}

// --- resource budgets ------------------------------------------------------

TEST_F(ChaosTest, ConflictBudgetBreachesThenRecoversMultiShot) {
  const Cnf cnf = conflict_rich_unsat_cnf();
  sat::SolverOptions options;
  options.budget.max_conflicts = 5;
  sat::Solver solver(cnf, options);

  // The per-call budget trips, the solver reports why, and repeated calls
  // keep the learnt clauses — so the SAME breached solver eventually
  // finishes the proof 5 conflicts at a time.
  SolveResult result = solver.solve();
  ASSERT_EQ(result, SolveResult::kUnknown);
  EXPECT_EQ(solver.stats().limit_reason, LimitReason::kConflicts);
  int calls = 1;
  while (result == SolveResult::kUnknown && calls < 5000) {
    result = solver.solve();
    ++calls;
  }
  EXPECT_EQ(result, SolveResult::kUnsat);
  EXPECT_EQ(solver.stats().limit_reason, LimitReason::kNone);
  EXPECT_GT(calls, 1);
}

TEST_F(ChaosTest, PropagationBudgetReportsItsReason) {
  const Cnf cnf = conflict_rich_unsat_cnf();
  sat::SolverOptions options;
  options.budget.max_propagations = 1;
  sat::Solver solver(cnf, options);
  ASSERT_EQ(solver.solve(), SolveResult::kUnknown);
  EXPECT_EQ(solver.stats().limit_reason, LimitReason::kPropagations);
}

TEST_F(ChaosTest, MemoryBudgetTooSmallForFormulaStaysBreached) {
  const Cnf cnf = random_3sat(3, 30, 126);
  sat::SolverOptions options;
  options.budget.max_memory_bytes = 64;  // the formula alone exceeds this
  sat::Solver solver(cnf, options);
  EXPECT_EQ(solver.solve(), SolveResult::kUnknown);
  EXPECT_EQ(solver.stats().limit_reason, LimitReason::kMemory);
  // Construction-time breach: the clause DB is incomplete forever, so every
  // call must keep reporting kMemory instead of answering from half a
  // formula.
  EXPECT_EQ(solver.solve(), SolveResult::kUnknown);
  EXPECT_EQ(solver.stats().limit_reason, LimitReason::kMemory);
}

// --- StopToken deadline edge cases ----------------------------------------

TEST_F(ChaosTest, DeadlineExpiredAtSolveEntry) {
  const Cnf cnf = random_3sat(5, 30, 126);
  sat::SolverOptions options;
  options.stop = util::StopToken::at_deadline(
      util::StopToken::Clock::now() - std::chrono::milliseconds(1));
  sat::Solver solver(cnf, options);
  EXPECT_EQ(solver.solve(), SolveResult::kUnknown);
  EXPECT_TRUE(solver.cancelled());
  EXPECT_EQ(solver.stats().limit_reason, LimitReason::kDeadline);
  // Still expired on the next call; still a clean kUnknown, not a crash.
  EXPECT_EQ(solver.solve(), SolveResult::kUnknown);
  EXPECT_EQ(solver.stats().limit_reason, LimitReason::kDeadline);
}

TEST_F(ChaosTest, DeadlineTrippingMidSearchWithFrequentGc) {
  // Big enough that 2 ms never finishes it; a tiny learnt cap forces a
  // reduce_learnts()/GC cycle every ~20 conflicts, so the deadline is
  // overwhelmingly observed at the GC-adjacent polls. Either way the
  // contract holds: kUnknown + kDeadline, never a crash or a flip.
  const Cnf cnf = random_3sat(17, 200, 860);
  sat::SolverOptions options;
  options.learnt_cap = 20;
  options.restart_base = 16;
  options.stop = util::StopToken::at_deadline(
      util::StopToken::Clock::now() + std::chrono::milliseconds(2));
  sat::Solver solver(cnf, options);
  const SolveResult result = solver.solve();
  if (result == SolveResult::kUnknown) {
    EXPECT_TRUE(solver.cancelled());
    EXPECT_EQ(solver.stats().limit_reason, LimitReason::kDeadline);
  } else {
    EXPECT_EQ(result, baseline_of(cnf));  // finished inside 2 ms: fine too
  }
}

TEST_F(ChaosTest, GcFaultUnwindLeavesSolverReusable) {
  const Cnf cnf = conflict_rich_unsat_cnf();
  sat::SolverOptions options;
  options.learnt_cap = 8;  // make reduce_learnts() trigger early
  options.restart_base = 16;
  ASSERT_TRUE(util::fault::configure("gc:1"));
  sat::Solver solver(cnf, options);
  const SolveResult faulted = solver.solve();
  ASSERT_GT(util::fault::hits(util::FaultSite::kGc), 0u)
      << "reduce_learnts was never reached; the test instance is too easy";
  EXPECT_EQ(faulted, SolveResult::kUnknown);
  EXPECT_EQ(solver.stats().limit_reason, LimitReason::kInjected);
  // The unwind happened at the reduction boundary: watch lists, trail, and
  // learnt DB are all consistent, so the same solver finishes the proof
  // once the schedule is gone.
  util::fault::disarm();
  EXPECT_EQ(solver.solve(), SolveResult::kUnsat);
  EXPECT_EQ(solver.stats().limit_reason, LimitReason::kNone);
}

// --- preprocessor: interruption degrades, never corrupts -------------------

TEST_F(ChaosTest, PreprocessorFaultDegradesToSoundPartialSimplification) {
  // A `pre` fault stops simplification at a pass boundary. Every pass keeps
  // the formula equisatisfiable, so the solver continues on the partial
  // result and must still reach the exact baseline verdict.
  const auto kings = graph::kings_graph_square(4);
  for (const unsigned k : {4u, 3u}) {
    const auto enc = sat::encode_coloring(kings, k);
    const SolveResult expected = baseline_of(enc.cnf);
    ASSERT_TRUE(util::fault::configure("pre:1"));
    sat::SolverOptions options;
    options.presimplify = true;
    sat::Solver solver(enc.cnf, options);
    EXPECT_EQ(solver.solve(), expected) << "K=" << k;
    ASSERT_TRUE(solver.preprocess_stats().has_value());
    EXPECT_EQ(solver.preprocess_stats()->limit, LimitReason::kInjected);
    util::fault::disarm();
  }
}

// --- phase engine: stop token + step faults --------------------------------

TEST_F(ChaosTest, PhaseBatchStopBeforeFirstStepLeavesStateUntouched) {
  const auto g = graph::kings_graph_square(3);
  phase::NetworkParams params;
  phase::PhaseBatch batch(g, params, 2);
  std::vector<util::Rng> rngs{util::Rng(1), util::Rng(2)};
  for (std::size_t r = 0; r < 2; ++r) batch.randomize_phases(r, rngs[r]);
  const std::vector<double> before = batch.theta_flat();

  util::StopSource source;
  source.request_stop();
  const util::StopToken token = source.token();
  EXPECT_FALSE(batch.run(5e-10, rngs, nullptr, {}, &token));
  EXPECT_EQ(batch.theta_flat(), before);  // zero steps taken

  // Cancellation between windows: the batch object is fully reusable.
  EXPECT_TRUE(batch.run(5e-10, rngs));
  EXPECT_NE(batch.theta_flat(), before);
}

TEST_F(ChaosTest, PhaseBatchNeverFiringTokenIsBitIdentical) {
  const auto g = graph::kings_graph_square(3);
  phase::NetworkParams params;
  phase::PhaseBatch plain(g, params, 1);
  phase::PhaseBatch tokened(g, params, 1);
  std::vector<util::Rng> rngs_a{util::Rng(9)};
  std::vector<util::Rng> rngs_b{util::Rng(9)};
  plain.randomize_phases(0, rngs_a[0]);
  tokened.randomize_phases(0, rngs_b[0]);

  util::StopSource source;  // never fires
  const util::StopToken token = source.token();
  EXPECT_TRUE(plain.run(2e-9, rngs_a));
  EXPECT_TRUE(tokened.run(2e-9, rngs_b, nullptr, {}, &token));
  EXPECT_EQ(plain.theta_flat(), tokened.theta_flat());
}

TEST_F(ChaosTest, PhaseBatchStepFaultEndsWindowEarlyAndRestoresLevels) {
  const auto g = graph::kings_graph_square(3);
  phase::NetworkParams params;
  phase::PhaseBatch batch(g, params, 1);
  std::vector<util::Rng> rngs{util::Rng(4)};
  batch.randomize_phases(0, rngs[0]);
  batch.set_shil_level(0, 0.75);

  ASSERT_TRUE(util::fault::configure("step:2"));
  phase::GainRamp ramp;  // a ramp scales levels mid-window; they must restore
  EXPECT_FALSE(batch.run(2e-9, rngs, &ramp, {}, nullptr));
  EXPECT_DOUBLE_EQ(batch.shil_level(0), 0.75);

  util::fault::disarm();
  EXPECT_TRUE(batch.run(2e-9, rngs));
  for (const double theta : batch.phases(0)) EXPECT_TRUE(std::isfinite(theta));
}

// --- portfolio: retries, stalls, degradation ladder, terminal status -------

std::vector<portfolio::StrategyConfig> cdcl_only_lineup() {
  std::vector<portfolio::StrategyConfig> lineup(2);
  lineup[0].kind = portfolio::StrategyKind::kCdcl;
  lineup[1].kind = portfolio::StrategyKind::kCdclPresimplify;
  return lineup;
}

TEST_F(ChaosTest, PortfolioChaosSchedulesKeepVerdictsSoundAndTerminal) {
  const auto sat_graph = graph::kings_graph_square(5);    // 4-colorable
  const auto unsat_graph = graph::kings_graph_square(4);  // K=3 UNSAT
  std::vector<portfolio::PortfolioJob> jobs(2);
  jobs[0].graph = &sat_graph;
  jobs[0].num_colors = 4;
  jobs[1].graph = &unsat_graph;
  jobs[1].num_colors = 3;

  portfolio::PortfolioOptions options;
  options.strategies = cdcl_only_lineup();
  options.retry_backoff_ms = 0;  // keep 40 schedules fast
  const auto clean =
      portfolio::run_portfolio_batch(jobs, options);
  ASSERT_EQ(clean[0].verdict, portfolio::Verdict::kColored);
  ASSERT_EQ(clean[1].verdict, portfolio::Verdict::kUnsat);

  for (int s = 1; s <= 40; ++s) {
    const std::string spec = (s % 2) == 0
                                 ? "all@0.02,seed=" + std::to_string(s)
                                 : "propagate:1:" + std::to_string(1 + s % 6);
    ASSERT_TRUE(util::fault::configure(spec)) << spec;
    const auto chaotic = portfolio::run_portfolio_batch(jobs, options);
    for (std::size_t i = 0; i < chaotic.size(); ++i) {
      const portfolio::PortfolioResult& r = chaotic[i];
      // No verdict flips, ever.
      if (r.verdict != portfolio::Verdict::kUnknown) {
        EXPECT_EQ(r.verdict, clean[i].verdict) << spec << " job " << i;
      }
      // Terminal-status guarantee: unknown rows carry the degradation
      // ladder's best-effort coloring (graded in [0,1]) and, when the end
      // was an injected kill on every attempt, the limit that caused it.
      EXPECT_TRUE(r.terminal()) << spec << " job " << i;
      if (r.verdict == portfolio::Verdict::kUnknown) {
        ASSERT_TRUE(r.best_effort.has_value()) << spec << " job " << i;
        EXPECT_GE(r.best_effort_quality, 0.0);
        EXPECT_LE(r.best_effort_quality, 1.0);
      }
    }
    util::fault::disarm();
  }
}

TEST_F(ChaosTest, InjectedAttemptIsRetriedAndSucceeds) {
  const auto g = graph::kings_graph_square(4);
  std::vector<portfolio::PortfolioJob> jobs(1);
  jobs[0].graph = &g;
  jobs[0].num_colors = 4;

  portfolio::PortfolioOptions options;
  options.strategies.assign(1, portfolio::StrategyConfig{});
  options.strategies[0].kind = portfolio::StrategyKind::kCdcl;
  options.retry_backoff_ms = 0;
  // Fires exactly once, at the first propagate round: the first attempt is
  // killed, the watchdog retries, the retry runs fault-free and wins.
  ASSERT_TRUE(util::fault::configure("propagate:1"));
  const auto results = portfolio::run_portfolio_batch(jobs, options);
  EXPECT_EQ(results[0].verdict, portfolio::Verdict::kColored);
  ASSERT_EQ(results[0].outcomes.size(), 1u);
  EXPECT_GE(results[0].outcomes[0].retries, 1u);
}

TEST_F(ChaosTest, WorkerStallOnlyDelaysTheAttempt) {
  const auto g = graph::kings_graph_square(4);
  std::vector<portfolio::PortfolioJob> jobs(1);
  jobs[0].graph = &g;
  jobs[0].num_colors = 4;

  portfolio::PortfolioOptions options;
  options.strategies = cdcl_only_lineup();
  ASSERT_TRUE(util::fault::configure("stall:1,stall-ms=1"));
  const auto results = portfolio::run_portfolio_batch(jobs, options);
  EXPECT_EQ(results[0].verdict, portfolio::Verdict::kColored);
  EXPECT_GT(util::fault::hits(util::FaultSite::kWorkerStall), 0u);
}

TEST_F(ChaosTest, ExhaustedBudgetTriggersDegradationLadder) {
  // UNSAT at K=6 with a conflict-heavy proof: under a 1-propagation budget
  // the CDCL attempt breaches at its first conflict poll instead of
  // finishing, which is exactly the "exact solver exhausted" ladder input.
  const auto g = dense_random_graph();
  std::vector<portfolio::PortfolioJob> jobs(1);
  jobs[0].graph = &g;
  jobs[0].num_colors = 6;

  portfolio::PortfolioOptions options;
  options.strategies.assign(1, portfolio::StrategyConfig{});
  options.strategies[0].kind = portfolio::StrategyKind::kCdcl;
  options.budget.max_propagations = 1;  // every CDCL attempt breaches
  const auto results = portfolio::run_portfolio_batch(jobs, options);
  ASSERT_EQ(results[0].verdict, portfolio::Verdict::kUnknown);
  EXPECT_EQ(results[0].limit, LimitReason::kPropagations);
  ASSERT_TRUE(results[0].best_effort.has_value());
  // The instance is not 6-colorable, so the best-effort coloring cannot be
  // proper — the ladder must still grade it honestly.
  EXPECT_GE(results[0].best_effort_quality, 0.0);
  EXPECT_LT(results[0].best_effort_quality, 1.0);
  EXPECT_TRUE(results[0].terminal());

  // degrade=false keeps the annotated-unknown path: terminal through the
  // limit reason alone, no best-effort coloring.
  options.degrade = false;
  const auto bare = portfolio::run_portfolio_batch(jobs, options);
  ASSERT_EQ(bare[0].verdict, portfolio::Verdict::kUnknown);
  EXPECT_FALSE(bare[0].best_effort.has_value());
  EXPECT_EQ(bare[0].limit, LimitReason::kPropagations);
  EXPECT_TRUE(bare[0].terminal());
}

}  // namespace
