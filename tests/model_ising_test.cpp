// Tests for the Ising model (paper Eq. 1 / Eq. 2).
#include "msropm/model/ising.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "msropm/graph/builders.hpp"

namespace {

using namespace msropm;
using model::IsingModel;
using model::Spin;

TEST(IsingModel, UniformCouplingEnergy) {
  const auto g = graph::path_graph(3);  // edges 01, 12
  const IsingModel m(g, -1.0);          // anti-ferromagnetic
  // Aligned spins: E = -sum J s s = -(-1)(1) * 2 = +2.
  EXPECT_DOUBLE_EQ(m.energy({1, 1, 1}), 2.0);
  // Alternating: both products -1 -> E = -(-1)(-1)*2 = -2.
  EXPECT_DOUBLE_EQ(m.energy({1, -1, 1}), -2.0);
}

TEST(IsingModel, FerromagneticSignFlips) {
  const auto g = graph::path_graph(2);
  const IsingModel m(g, +1.0);
  EXPECT_DOUBLE_EQ(m.energy({1, 1}), -1.0);
  EXPECT_DOUBLE_EQ(m.energy({1, -1}), 1.0);
}

TEST(IsingModel, PerEdgeCouplings) {
  const auto g = graph::path_graph(3);
  const IsingModel m(g, std::vector<double>{-2.0, 3.0});
  // E = -(-2)(s0 s1) - 3(s1 s2)
  EXPECT_DOUBLE_EQ(m.energy({1, 1, 1}), 2.0 - 3.0);
  EXPECT_THROW(IsingModel(g, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(IsingModel, PhaseEnergyMatchesDiscreteAtLockPhases) {
  const auto g = graph::kings_graph(3, 3);
  const IsingModel m(g, -1.0);
  const std::vector<Spin> spins{1, -1, 1, -1, 1, -1, 1, -1, 1};
  std::vector<double> phases(spins.size());
  for (std::size_t i = 0; i < spins.size(); ++i) {
    phases[i] = model::phase_from_spin(spins[i]);
  }
  EXPECT_NEAR(m.phase_energy(phases), m.energy(spins), 1e-12);
}

TEST(IsingModel, PhaseEnergyContinuous) {
  const auto g = graph::path_graph(2);
  const IsingModel m(g, -1.0);
  // E(theta) = cos(d). Quarter turn -> 0.
  EXPECT_NEAR(m.phase_energy({0.0, std::numbers::pi / 2}), 0.0, 1e-12);
  EXPECT_NEAR(m.phase_energy({0.0, std::numbers::pi}), -1.0, 1e-12);
}

TEST(IsingModel, MaskedEnergySkipsEdges) {
  const auto g = graph::path_graph(3);
  const IsingModel m(g, -1.0);
  const std::vector<double> phases{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(m.phase_energy_masked(phases, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(m.phase_energy_masked(phases, {0, 0}), 0.0);
  EXPECT_THROW((void)m.phase_energy_masked(phases, {1}), std::invalid_argument);
}

TEST(IsingModel, SizeMismatchThrows) {
  const auto g = graph::path_graph(3);
  const IsingModel m(g);
  EXPECT_THROW((void)m.energy({1, 1}), std::invalid_argument);
  EXPECT_THROW((void)m.phase_energy({0.0}), std::invalid_argument);
}

TEST(IsingModel, AntiferromagneticBound) {
  const auto g = graph::cycle_graph(4);
  const IsingModel m(g, -1.0);
  EXPECT_DOUBLE_EQ(m.antiferromagnetic_bound(), -4.0);
  // C4 is bipartite: the bound is attained.
  EXPECT_DOUBLE_EQ(m.energy({1, -1, 1, -1}), -4.0);
}

TEST(IsingModel, OddCycleFrustration) {
  // C3 with AF coupling cannot reach -m: best is -1 (one violated edge).
  const auto g = graph::cycle_graph(3);
  const IsingModel m(g, -1.0);
  double best = 1e9;
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<Spin> s(3);
    for (int i = 0; i < 3; ++i) s[i] = (bits >> i) & 1 ? 1 : -1;
    best = std::min(best, m.energy(s));
  }
  EXPECT_DOUBLE_EQ(best, -1.0);
}

TEST(SpinPhase, Conversions) {
  EXPECT_EQ(model::spin_from_phase(0.0), 1);
  EXPECT_EQ(model::spin_from_phase(std::numbers::pi), -1);
  EXPECT_EQ(model::spin_from_phase(0.4), 1);
  EXPECT_EQ(model::spin_from_phase(2.0), -1);  // cos(2) < 0
  EXPECT_DOUBLE_EQ(model::phase_from_spin(1), 0.0);
  EXPECT_DOUBLE_EQ(model::phase_from_spin(-1), std::numbers::pi);
}

TEST(SpinPhase, VectorConversionRoundTrip) {
  const std::vector<Spin> spins{1, -1, -1, 1};
  std::vector<double> phases;
  for (Spin s : spins) phases.push_back(model::phase_from_spin(s));
  EXPECT_EQ(model::spins_from_phases(phases), spins);
}

}  // namespace
