// Tests for the coloring CNF encoder and the exact-coloring baseline.
#include "msropm/sat/coloring_encoder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/graph/builders.hpp"
#include "msropm/sat/incremental_coloring.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using namespace msropm::sat;

graph::Graph petersen() {
  graph::GraphBuilder b(10);
  // Outer C5, inner pentagram, spokes.
  for (int i = 0; i < 5; ++i) {
    b.add_edge(i, (i + 1) % 5);
    b.add_edge(5 + i, 5 + (i + 2) % 5);
    b.add_edge(i, 5 + i);
  }
  return b.build();
}

TEST(Encoder, VariableLayout) {
  const auto g = graph::path_graph(3);
  const auto enc = encode_coloring(g, 4, {.symmetry_breaking = false});
  EXPECT_EQ(enc.cnf.num_vars(), 12u);
  EXPECT_EQ(enc.var_of(2, 3), 11u);
  // ALO n + AMO n*C(4,2) + edges m*4 clauses.
  EXPECT_EQ(enc.cnf.num_clauses(), 3u + 3u * 6u + 2u * 4u);
}

TEST(Encoder, SymmetryBreakingAddsUnits) {
  const auto g = graph::complete_graph(4);
  const auto plain = encode_coloring(g, 4, {.symmetry_breaking = false});
  const auto broken = encode_coloring(g, 4, {.symmetry_breaking = true});
  EXPECT_EQ(broken.cnf.num_clauses(), plain.cnf.num_clauses() + 4u);
}

TEST(GreedyClique, FindsK4InKingsGraph) {
  const auto g = graph::kings_graph(3, 3);
  const auto clique = greedy_clique(g);
  EXPECT_GE(clique.size(), 4u);
  for (std::size_t i = 0; i < clique.size(); ++i) {
    for (std::size_t j = i + 1; j < clique.size(); ++j) {
      EXPECT_TRUE(g.has_edge(clique[i], clique[j]));
    }
  }
}

struct ColoringCase {
  const char* name;
  graph::Graph graph;
  unsigned colors;
  bool expect_colorable;
};

class ExactColoringSweep : public ::testing::TestWithParam<ColoringCase> {};

TEST_P(ExactColoringSweep, MatchesKnownColorability) {
  const auto& param = GetParam();
  const auto coloring = solve_exact_coloring(param.graph, param.colors);
  EXPECT_EQ(coloring.has_value(), param.expect_colorable) << param.name;
  if (coloring) {
    EXPECT_TRUE(graph::is_proper_coloring(param.graph, *coloring, param.colors))
        << param.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KnownGraphs, ExactColoringSweep,
    ::testing::Values(
        ColoringCase{"triangle2", graph::cycle_graph(3), 2, false},
        ColoringCase{"triangle3", graph::cycle_graph(3), 3, true},
        ColoringCase{"evencycle2", graph::cycle_graph(8), 2, true},
        ColoringCase{"oddcycle2", graph::cycle_graph(7), 2, false},
        ColoringCase{"oddcycle3", graph::cycle_graph(7), 3, true},
        ColoringCase{"k4_3", graph::complete_graph(4), 3, false},
        ColoringCase{"k4_4", graph::complete_graph(4), 4, true},
        ColoringCase{"k5_4", graph::complete_graph(5), 4, false},
        ColoringCase{"petersen3", petersen(), 3, true},
        ColoringCase{"bipartite2", graph::complete_bipartite_graph(4, 5), 2, true},
        ColoringCase{"kings55_3", graph::kings_graph_square(5), 3, false},
        ColoringCase{"kings55_4", graph::kings_graph_square(5), 4, true},
        ColoringCase{"wheel6_4", graph::wheel_graph(6), 4, true},
        ColoringCase{"wheel6_3", graph::wheel_graph(6), 3, false}),
    [](const auto& info) { return info.param.name; });

TEST(ExactColoring, PaperInstance49NodeIsExactly4Chromatic) {
  // The accuracy baseline of the paper: a proper 4-coloring of the 49-node
  // King's graph exists (all edges satisfiable), and 3 colors do not suffice.
  const auto g = graph::kings_graph_square(7);
  const auto coloring4 = solve_exact_coloring(g, 4);
  ASSERT_TRUE(coloring4.has_value());
  EXPECT_TRUE(graph::is_proper_coloring(g, *coloring4, 4));
  EXPECT_FALSE(solve_exact_coloring(g, 3).has_value());
}

TEST(ExactColoring, MediumKingsGraphSolvesQuickly) {
  const auto g = graph::kings_graph_square(20);  // the 400-node instance
  const auto coloring = solve_exact_coloring(g, 4);
  ASSERT_TRUE(coloring.has_value());
  EXPECT_TRUE(graph::is_proper_coloring(g, *coloring, 4));
}

TEST(ExactColoring, SymmetryBreakingPreservesSatisfiability) {
  const auto g = petersen();
  const auto with = solve_exact_coloring(g, 3, {.symmetry_breaking = true});
  const auto without = solve_exact_coloring(g, 3, {.symmetry_breaking = false});
  EXPECT_TRUE(with.has_value());
  EXPECT_TRUE(without.has_value());
}

TEST(ChromaticNumber, KnownValues) {
  EXPECT_EQ(chromatic_number(graph::Graph(3)), 1u);
  EXPECT_EQ(chromatic_number(graph::path_graph(5)), 2u);
  EXPECT_EQ(chromatic_number(graph::cycle_graph(5)), 3u);
  EXPECT_EQ(chromatic_number(graph::complete_graph(5)), 5u);
  EXPECT_EQ(chromatic_number(graph::kings_graph_square(4)), 4u);
  EXPECT_EQ(chromatic_number(petersen()), 3u);
  EXPECT_EQ(chromatic_number(graph::wheel_graph(6)), 4u);  // odd outer cycle
  EXPECT_EQ(chromatic_number(graph::wheel_graph(7)), 3u);  // even outer cycle
}

TEST(ChromaticNumber, RespectsMaxK) {
  EXPECT_FALSE(chromatic_number(graph::complete_graph(6), 4).has_value());
}

TEST(ChromaticNumber, EarlyReturnsRespectMaxK) {
  // The pre-fix implementation returned 1 for every edgeless graph, even
  // with max_k == 0. Every early return must respect the bound.
  EXPECT_EQ(chromatic_number(graph::Graph(0), 0), 0u);  // chi = 0 <= 0
  EXPECT_FALSE(chromatic_number(graph::Graph(3), 0).has_value());
  EXPECT_EQ(chromatic_number(graph::Graph(3), 1), 1u);
  // Graphs with edges need >= 2 colors; max_k = 1 must be nullopt without
  // any solver call (clique lower bound).
  EXPECT_FALSE(chromatic_number(graph::path_graph(4), 1).has_value());
}

TEST(ChromaticNumber, SeededAtCliqueLowerBound) {
  // The greedy clique of a King's graph is a K4, so the sweep must start at
  // K = 4: exactly one SAT query, no wasted UNSAT solves below omega.
  const auto outcome = chromatic_search(graph::kings_graph_square(6), 8);
  ASSERT_TRUE(outcome.chromatic.has_value());
  EXPECT_EQ(*outcome.chromatic, 4u);
  EXPECT_EQ(outcome.lower_bound, 4u);
  EXPECT_EQ(outcome.solve_calls, 1u);
  EXPECT_TRUE(graph::is_proper_coloring(graph::kings_graph_square(6),
                                        outcome.coloring, 4));
}

TEST(Decode, ThrowsWhenNoColorVariableTrue) {
  // An all-false model violates the at-least-one clauses; decode must
  // refuse instead of silently inventing color 0.
  const auto g = graph::path_graph(2);
  const auto enc = encode_coloring(g, 2, {.symmetry_breaking = false});
  const std::vector<std::uint8_t> bogus(enc.cnf.num_vars(), 0);
  EXPECT_THROW((void)enc.decode(bogus), std::logic_error);
}

TEST(ExactColoring, RandomPlanarInstancesAre4Colorable) {
  // The paper frames the workload as planar 4-coloring; triangulated grids
  // are planar, so the four-color theorem guarantees a solution.
  msropm::util::Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = graph::triangulated_grid(5, 5, rng);
    const auto coloring = solve_exact_coloring(g, 4);
    ASSERT_TRUE(coloring.has_value()) << "trial " << trial;
    EXPECT_TRUE(graph::is_proper_coloring(g, *coloring, 4));
  }
}

}  // namespace
