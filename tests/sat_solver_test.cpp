// Tests for the CDCL solver.
#include "msropm/sat/solver.hpp"

#include <gtest/gtest.h>

#include "msropm/util/rng.hpp"

namespace {

using namespace msropm::sat;

TEST(Solver, TrivialSat) {
  Cnf cnf(1);
  cnf.add_unit(pos(0));
  Solver s(cnf);
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model()[0], 1);
}

TEST(Solver, TrivialUnsat) {
  Cnf cnf(1);
  cnf.add_unit(pos(0));
  cnf.add_unit(neg(0));
  Solver s(cnf);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, EmptyClauseUnsat) {
  Cnf cnf(2);
  cnf.add_clause({});
  Solver s(cnf);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, EmptyFormulaSat) {
  Cnf cnf(3);
  Solver s(cnf);
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model().size(), 3u);
}

TEST(Solver, UnitPropagationChain) {
  // x0, x0->x1, x1->x2, x2->x3 as implications.
  Cnf cnf(4);
  cnf.add_unit(pos(0));
  cnf.add_binary(neg(0), pos(1));
  cnf.add_binary(neg(1), pos(2));
  cnf.add_binary(neg(2), pos(3));
  Solver s(cnf);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(s.model()[i], 1);
  EXPECT_EQ(s.stats().decisions, 0u) << "pure propagation needs no decisions";
}

TEST(Solver, TautologicalClauseIgnored) {
  Cnf cnf(2);
  cnf.add_binary(pos(0), neg(0));
  cnf.add_unit(pos(1));
  Solver s(cnf);
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(Solver, DuplicateLiteralsCollapsed) {
  Cnf cnf(1);
  cnf.add_clause({pos(0), pos(0), pos(0)});
  Solver s(cnf);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model()[0], 1);
}

TEST(Solver, XorChainSat) {
  // (a xor b) encoded as CNF; chained parity constraints are classic CDCL
  // exercise material.
  Cnf cnf(6);
  auto add_xor = [&cnf](Var a, Var b, Var c) {
    // c = a xor b
    cnf.add_ternary(neg(a), neg(b), neg(c));
    cnf.add_ternary(pos(a), pos(b), neg(c));
    cnf.add_ternary(pos(a), neg(b), pos(c));
    cnf.add_ternary(neg(a), pos(b), pos(c));
  };
  add_xor(0, 1, 2);
  add_xor(2, 3, 4);
  cnf.add_unit(pos(4));
  cnf.add_unit(pos(0));
  Solver s(cnf);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  const auto& m = s.model();
  EXPECT_EQ(m[2], m[0] ^ m[1]);
  EXPECT_EQ(m[4], m[2] ^ m[3]);
  EXPECT_EQ(m[4], 1);
}

TEST(Solver, PigeonholeUnsat) {
  // PHP(4 pigeons, 3 holes): UNSAT, requires real conflict analysis.
  const int pigeons = 4;
  const int holes = 3;
  Cnf cnf(static_cast<std::size_t>(pigeons * holes));
  auto var = [holes](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(pos(var(p, h)));
    cnf.add_clause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.add_binary(neg(var(p1, h)), neg(var(p2, h)));
      }
    }
  }
  Solver s(cnf);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Solver, PigeonholeLargerUnsat) {
  const int pigeons = 7;
  const int holes = 6;
  Cnf cnf(static_cast<std::size_t>(pigeons * holes));
  auto var = [holes](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(pos(var(p, h)));
    cnf.add_clause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.add_binary(neg(var(p1, h)), neg(var(p2, h)));
      }
    }
  }
  Solver s(cnf);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().learnt_clauses, 0u);
}

TEST(Solver, ModelSatisfiesRandom3Sat) {
  // Random under-constrained 3-SAT instances must come back SAT with a
  // model the CNF checker accepts.
  msropm::util::Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t vars = 30;
    const std::size_t clauses = 90;  // ratio 3.0 < threshold 4.26
    Cnf cnf(vars);
    for (std::size_t c = 0; c < clauses; ++c) {
      Clause clause;
      while (clause.size() < 3) {
        const auto v = static_cast<Var>(rng.uniform_index(vars));
        const Lit l(v, rng.bernoulli(0.5));
        clause.push_back(l);
      }
      cnf.add_clause(clause);
    }
    Solver s(cnf);
    const auto result = s.solve();
    if (result == SolveResult::kSat) {
      EXPECT_TRUE(cnf.satisfied_by(s.model())) << "trial " << trial;
    }
    // Over-constrained trials may be UNSAT; both results must terminate.
    EXPECT_NE(result, SolveResult::kUnknown);
  }
}

TEST(Solver, AssumptionsRestrictModels) {
  Cnf cnf(2);
  cnf.add_binary(pos(0), pos(1));
  Solver s1(cnf);
  ASSERT_EQ(s1.solve({neg(0)}), SolveResult::kSat);
  EXPECT_EQ(s1.model()[0], 0);
  EXPECT_EQ(s1.model()[1], 1);
}

TEST(Solver, ConflictingAssumptionsUnsat) {
  Cnf cnf(1);
  cnf.add_unit(pos(0));
  Solver s(cnf);
  EXPECT_EQ(s.solve({neg(0)}), SolveResult::kUnsat);
}

TEST(Solver, ConflictLimitReturnsUnknown) {
  // A hard pigeonhole with a conflict budget of 1 cannot finish.
  const int pigeons = 8;
  const int holes = 7;
  Cnf cnf(static_cast<std::size_t>(pigeons * holes));
  auto var = [holes](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(pos(var(p, h)));
    cnf.add_clause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.add_binary(neg(var(p1, h)), neg(var(p2, h)));
      }
    }
  }
  SolverOptions opts;
  opts.conflict_limit = 1;
  Solver s(cnf, opts);
  EXPECT_EQ(s.solve(), SolveResult::kUnknown);
}

TEST(Solver, SecondSolveRepeatsVerdict) {
  // Multi-shot contract: the solver backtracks to root between calls, so a
  // repeated query returns the same verdict and a valid model, not stale
  // state.
  Cnf cnf(1);
  cnf.add_unit(pos(0));
  Solver s(cnf);
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model()[0], 1);
}

TEST(Solver, SolveAfterAssumptionConflictRecovers) {
  // The old implementation asserted assumptions as level-0 units, so an
  // assumption conflict set the formula-UNSAT flag and poisoned the solver
  // (guarded by a single-shot throw). Assumptions are decisions now: the
  // UNSAT-under-assumptions verdict must not leak into later calls.
  Cnf cnf(1);
  cnf.add_unit(pos(0));
  Solver s(cnf);
  EXPECT_EQ(s.solve({neg(0)}), SolveResult::kUnsat);
  EXPECT_FALSE(s.formula_unsat());
  ASSERT_EQ(s.failed_assumptions().size(), 1u);
  EXPECT_EQ(s.failed_assumptions()[0], neg(0));
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model()[0], 1);
  EXPECT_EQ(s.solve({pos(0)}), SolveResult::kSat);
}

TEST(Solver, PreStoppedTokenReturnsUnknown) {
  // A satisfiable formula must not claim SAT when cancellation interrupted
  // clause ingestion: the clause DB may be partial.
  Cnf cnf(50);
  msropm::util::Rng rng(3);
  for (int c = 0; c < 150; ++c) {
    Clause clause;
    while (clause.size() < 3) {
      clause.push_back(Lit(static_cast<Var>(rng.uniform_index(50)),
                           rng.bernoulli(0.5)));
    }
    cnf.add_clause(clause);
  }
  msropm::util::StopSource source;
  source.request_stop();
  SolverOptions options;
  options.stop = source.token();
  Solver solver(cnf, options);
  EXPECT_EQ(solver.solve(), SolveResult::kUnknown);
  EXPECT_TRUE(solver.cancelled());
}

TEST(Solver, DerivedUnsatOutranksLaterCancellation) {
  // UNSAT derived during construction refutes the formula no matter what
  // happens afterwards, so a stop request arriving before solve() must not
  // downgrade the answer to kUnknown. (A token stopped before construction
  // preempts ingestion entirely and yields kUnknown instead — see
  // PreStoppedTokenReturnsUnknown.)
  Cnf cnf(1);
  cnf.add_unit(pos(0));
  cnf.add_unit(neg(0));
  msropm::util::StopSource source;
  SolverOptions options;
  options.stop = source.token();
  Solver solver(cnf, options);
  source.request_stop();
  EXPECT_EQ(solver.solve(), SolveResult::kUnsat);
}

TEST(Solver, PreStoppedTokenWithPresimplifyReturnsUnknown) {
  Cnf cnf(3);
  cnf.add_clause({pos(0), pos(1)});
  cnf.add_clause({neg(1), pos(2)});
  msropm::util::StopSource source;
  source.request_stop();
  SolverOptions options;
  options.presimplify = true;
  options.stop = source.token();
  Solver solver(cnf, options);
  EXPECT_EQ(solver.solve(), SolveResult::kUnknown);
  EXPECT_TRUE(solver.cancelled());
}

TEST(Solver, DeadlineTokenInterruptsSearch) {
  // Hard random 3-SAT near the phase transition with an already-expired
  // deadline: the first in-search poll must abort with kUnknown.
  msropm::util::Rng rng(11);
  Cnf cnf(120);
  for (int c = 0; c < 510; ++c) {
    Clause clause;
    while (clause.size() < 3) {
      clause.push_back(Lit(static_cast<Var>(rng.uniform_index(120)),
                           rng.bernoulli(0.5)));
    }
    cnf.add_clause(clause);
  }
  SolverOptions options;
  options.stop = msropm::util::StopToken::at_deadline(
      msropm::util::StopToken::Clock::now());
  Solver solver(cnf, options);
  EXPECT_EQ(solver.solve(), SolveResult::kUnknown);
  EXPECT_TRUE(solver.cancelled());
}

TEST(Solver, InertTokenDoesNotDisturbSearch) {
  Cnf cnf(2);
  cnf.add_clause({pos(0), pos(1)});
  cnf.add_clause({neg(0), pos(1)});
  SolverOptions options;  // default-constructed stop token
  Solver solver(cnf, options);
  EXPECT_EQ(solver.solve(), SolveResult::kSat);
  EXPECT_FALSE(solver.cancelled());
}

TEST(SolveCnfHelper, ReturnsModelOrNullopt) {
  Cnf sat(1);
  sat.add_unit(pos(0));
  const auto model = solve_cnf(sat);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ((*model)[0], 1);

  Cnf unsat(1);
  unsat.add_unit(pos(0));
  unsat.add_unit(neg(0));
  EXPECT_FALSE(solve_cnf(unsat).has_value());
}

}  // namespace
