// Tests for the best-of-N iteration runner.
#include "msropm/core/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "msropm/analysis/experiments.hpp"
#include "msropm/graph/builders.hpp"

namespace {

using namespace msropm;
using core::MultiStagePottsMachine;
using core::RunnerOptions;
using core::run_iterations;

MultiStagePottsMachine small_machine(const graph::Graph& g) {
  return MultiStagePottsMachine(g, analysis::default_machine_config());
}

TEST(Runner, ProducesRequestedIterations) {
  const auto g = graph::kings_graph(4, 4);
  const auto machine = small_machine(g);
  RunnerOptions opts;
  opts.iterations = 8;
  opts.seed = 3;
  const auto summary = run_iterations(machine, opts);
  EXPECT_EQ(summary.iterations.size(), 8u);
  EXPECT_EQ(summary.accuracy_series().size(), 8u);
  EXPECT_EQ(summary.stage1_cut_series().size(), 8u);
}

TEST(Runner, SummaryStatisticsConsistent) {
  const auto g = graph::kings_graph(5, 5);
  const auto machine = small_machine(g);
  RunnerOptions opts;
  opts.iterations = 12;
  opts.seed = 5;
  const auto summary = run_iterations(machine, opts);
  const auto series = summary.accuracy_series();
  EXPECT_DOUBLE_EQ(summary.best_accuracy,
                   *std::max_element(series.begin(), series.end()));
  EXPECT_DOUBLE_EQ(summary.worst_accuracy,
                   *std::min_element(series.begin(), series.end()));
  double total = 0.0;
  for (double a : series) total += a;
  EXPECT_NEAR(summary.mean_accuracy, total / series.size(), 1e-12);
  EXPECT_DOUBLE_EQ(series[summary.best_index], summary.best_accuracy);
  std::size_t exact = 0;
  for (double a : series) exact += (a >= 1.0) ? 1 : 0;
  EXPECT_EQ(summary.exact_solutions, exact);
}

TEST(Runner, DeterministicAcrossThreadCounts) {
  // Per-iteration RNG streams are keyed on (seed, index), so scheduling
  // cannot change results.
  const auto g = graph::kings_graph(4, 4);
  const auto machine = small_machine(g);
  RunnerOptions serial;
  serial.iterations = 6;
  serial.seed = 11;
  serial.num_threads = 1;
  RunnerOptions parallel = serial;
  parallel.num_threads = 4;
  const auto s1 = run_iterations(machine, serial);
  const auto s2 = run_iterations(machine, parallel);
  EXPECT_EQ(s1.accuracy_series(), s2.accuracy_series());
  EXPECT_EQ(s1.best_index, s2.best_index);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(s1.iterations[i].result.colors, s2.iterations[i].result.colors);
  }
}

TEST(Runner, DifferentSeedsGiveDifferentSeries) {
  const auto g = graph::kings_graph(5, 5);
  const auto machine = small_machine(g);
  RunnerOptions a;
  a.iterations = 6;
  a.seed = 1;
  RunnerOptions b = a;
  b.seed = 2;
  EXPECT_NE(run_iterations(machine, a).accuracy_series(),
            run_iterations(machine, b).accuracy_series());
}

TEST(Runner, BestColoringMatchesBestIndex) {
  const auto g = graph::kings_graph(4, 4);
  const auto machine = small_machine(g);
  RunnerOptions opts;
  opts.iterations = 5;
  opts.seed = 9;
  const auto summary = run_iterations(machine, opts);
  EXPECT_DOUBLE_EQ(graph::coloring_accuracy(g, summary.best_coloring()),
                   summary.best_accuracy);
}

TEST(Runner, Stage1CutRecorded) {
  const auto g = graph::kings_graph(4, 4);
  const auto machine = small_machine(g);
  RunnerOptions opts;
  opts.iterations = 4;
  opts.seed = 13;
  const auto summary = run_iterations(machine, opts);
  for (const auto& it : summary.iterations) {
    EXPECT_GT(it.stage1_cut, 0u);
    EXPECT_LE(it.stage1_cut, g.num_edges());
    EXPECT_EQ(it.stage1_cut, it.result.stages.front().cut_edges);
  }
}

TEST(Runner, PaperIterationCountDefault) {
  RunnerOptions opts;
  EXPECT_EQ(opts.iterations, 40u) << "the paper runs 40 iterations";
}

}  // namespace
