// VarOrderHeap unit tests: the indexed max-heap backing VSIDS decisions.
// Pinned properties: max-activity-first pop order with smallest-index tie
// break, the contains-all-unassigned invariant under assign/unassign cycles
// (what the solver relies on after backtracking), and key updates staying
// correct across a VSIDS-style rescale (multiplying every activity by the
// same positive constant must not perturb the extraction order).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "msropm/sat/order_heap.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm::sat;

std::vector<Var> drain(VarOrderHeap& heap) {
  std::vector<Var> order;
  while (!heap.empty()) order.push_back(heap.pop());
  return order;
}

TEST(VarOrderHeap, PopsInActivityOrderWithIndexTieBreak) {
  std::vector<double> activity = {1.0, 5.0, 3.0, 5.0, 0.0, 2.0};
  VarOrderHeap heap(&activity);
  heap.build(activity.size());
  EXPECT_EQ(heap.size(), activity.size());
  // 5.0 twice: the smaller index (1) must surface before 3.
  EXPECT_EQ(drain(heap), (std::vector<Var>{1, 3, 2, 5, 0, 4}));
}

TEST(VarOrderHeap, InsertIsIdempotentAndPopRemoves) {
  std::vector<double> activity = {2.0, 1.0, 3.0};
  VarOrderHeap heap(&activity);
  heap.build(activity.size());
  heap.insert(0);  // already present: must not duplicate
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_EQ(heap.pop(), 2u);
  EXPECT_FALSE(heap.contains(2));
  EXPECT_TRUE(heap.contains(0));
  heap.insert(2);
  EXPECT_TRUE(heap.contains(2));
  EXPECT_EQ(heap.pop(), 2u);
}

TEST(VarOrderHeap, ContainsAllUnassignedInvariantUnderAssignCycles) {
  // Simulate the solver's usage: pop = decide (assign), propagation assigns
  // more vars without touching the heap (lazy), backtrack re-inserts. After
  // every backtrack, every unassigned var must be in the heap.
  msropm::util::Rng rng(7);
  const std::size_t n = 64;
  std::vector<double> activity(n);
  for (auto& a : activity) a = static_cast<double>(rng.uniform_index(10));
  VarOrderHeap heap(&activity);
  heap.build(n);
  std::vector<std::uint8_t> assigned(n, 0);

  for (int round = 0; round < 50; ++round) {
    // Decide + "propagate" a random batch.
    std::vector<Var> trail;
    for (int d = 0; d < 12 && !heap.empty(); ++d) {
      const Var v = heap.pop();
      if (assigned[v]) continue;  // lazy skip, like pick_branch_lit
      assigned[v] = 1;
      trail.push_back(v);
      const Var w = static_cast<Var>(rng.uniform_index(n));
      if (!assigned[w]) {  // propagation assigns without heap removal
        assigned[w] = 1;
        trail.push_back(w);
      }
    }
    // Bump a few vars mid-round (conflict analysis analogue).
    for (int b = 0; b < 4; ++b) {
      const Var v = static_cast<Var>(rng.uniform_index(n));
      activity[v] += 1.0;
      heap.update(v);
    }
    // Backtrack: unassign the whole trail, re-inserting each var.
    for (const Var v : trail) {
      assigned[v] = 0;
      heap.insert(v);
    }
    for (Var v = 0; v < n; ++v) {
      if (!assigned[v]) {
        EXPECT_TRUE(heap.contains(v)) << "round=" << round << " var=" << v;
      }
    }
  }
}

TEST(VarOrderHeap, UpdateAfterIncreaseAndDecrease) {
  std::vector<double> activity = {4.0, 3.0, 2.0, 1.0};
  VarOrderHeap heap(&activity);
  heap.build(activity.size());
  // Increase-key: var 3 jumps to the top.
  activity[3] = 10.0;
  heap.update(3);
  EXPECT_EQ(heap.pop(), 3u);
  // Decrease-key: var 0 sinks below 1 and 2.
  activity[0] = 0.5;
  heap.update(0);
  EXPECT_EQ(drain(heap), (std::vector<Var>{1, 2, 0}));
}

TEST(VarOrderHeap, RescalePreservesOrderAndUpdatesStayCorrect) {
  // VSIDS rescale multiplies every activity (and the increment) by 1e-100.
  // Relative order is preserved, so the heap must stay consistent without a
  // rebuild — and subsequent bumps + update() must keep working.
  msropm::util::Rng rng(11);
  const std::size_t n = 40;
  std::vector<double> activity(n);
  for (auto& a : activity) a = 1e95 + 1e90 * static_cast<double>(rng.uniform_index(1000));
  VarOrderHeap heap(&activity);
  heap.build(n);

  // Pop a few, rescale everything, bump-and-update a few, then drain: the
  // result must match a reference sort of the final activities.
  for (int i = 0; i < 5; ++i) (void)heap.pop();
  for (auto& a : activity) a *= 1e-100;
  for (int b = 0; b < 10; ++b) {
    const Var v = static_cast<Var>(rng.uniform_index(n));
    activity[v] += 1.0;  // post-rescale var_inc analogue
    heap.update(v);
  }
  std::vector<Var> rest = drain(heap);
  std::vector<Var> expected = rest;
  std::sort(expected.begin(), expected.end(), [&](Var a, Var b) {
    if (activity[a] != activity[b]) return activity[a] > activity[b];
    return a < b;
  });
  EXPECT_EQ(rest, expected);
}

TEST(VarOrderHeap, BuildOnEmptyAndSingleton) {
  std::vector<double> activity;
  VarOrderHeap heap(&activity);
  heap.build(0);
  EXPECT_TRUE(heap.empty());
  activity = {1.5};
  heap.build(1);
  EXPECT_EQ(heap.pop(), 0u);
  EXPECT_TRUE(heap.empty());
}

}  // namespace
