// Tests for the xoshiro256** RNG wrapper.
#include "msropm/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>
#include <vector>

namespace {

using msropm::util::Rng;
using msropm::util::splitmix64;

TEST(SplitMix64, AdvancesStateAndMixes) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  // Must produce non-degenerate output.
  std::set<std::uint64_t> values;
  for (int i = 0; i < 64; ++i) values.insert(r());
  EXPECT_GT(values.size(), 60u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-2.5, 7.5);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Rng, UniformIndexStaysBelowBound) {
  Rng r(5);
  for (std::uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 500; ++i) {
      ASSERT_LT(r.uniform_index(n), n);
    }
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng r(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexApproximatelyUnbiased) {
  Rng r(17);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_index(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(19);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng r(23);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng r(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, BernoulliProbability) {
  Rng r(31);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng r(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, UniformPhaseRange) {
  Rng r(41);
  for (int i = 0; i < 5000; ++i) {
    const double p = r.uniform_phase();
    ASSERT_GE(p, 0.0);
    ASSERT_LT(p, 2.0 * std::numbers::pi);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleChangesOrder) {
  Rng r(47);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto original = v;
  r.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(53);
  Rng child = a.split();
  // Child stream differs from parent continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == child()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, StreamSplitIsPureAndReproducible) {
  const Rng master(91);
  Rng a = master.split(7);
  Rng b = master.split(7);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a(), b());
  }
  // Deriving a stream does not advance the master.
  EXPECT_EQ(master.state(), Rng(91).state());
}

TEST(Rng, StreamSplitOrderIndependent) {
  // Workers may derive their streams in any order; stream i must not depend
  // on which streams were derived before it.
  const Rng master(17);
  Rng forward_first = master.split(0);
  Rng backward_2 = master.split(2);
  Rng backward_1 = master.split(1);
  Rng backward_0 = master.split(0);
  Rng forward_second = master.split(1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(forward_first(), backward_0());
    ASSERT_EQ(forward_second(), backward_1());
  }
  (void)backward_2;
}

TEST(Rng, DistinctStreamsDiverge) {
  const Rng master(5);
  std::set<std::uint64_t> first_draws;
  for (std::uint64_t stream = 0; stream < 64; ++stream) {
    Rng child = master.split(stream);
    first_draws.insert(child());
  }
  EXPECT_EQ(first_draws.size(), 64u);
  // Adjacent streams are decorrelated, not shifted copies.
  Rng s0 = master.split(0);
  Rng s1 = master.split(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (s0() == s1()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, StreamSplitDependsOnMasterSeed) {
  Rng from_seed_1 = Rng(1).split(3);
  Rng from_seed_2 = Rng(2).split(3);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (from_seed_1() == from_seed_2()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, MeanAndSupportStable) {
  Rng r(GetParam());
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.025) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 2ull, 42ull, 1337ull,
                                           0xdeadbeefull, ~0ull));

}  // namespace
