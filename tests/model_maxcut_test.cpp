// Tests for max-cut bookkeeping and the Ising correspondence.
#include "msropm/model/maxcut.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/graph/builders.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using model::CutAssignment;

TEST(CutValue, Basics) {
  const auto g = graph::cycle_graph(4);
  EXPECT_EQ(model::cut_value(g, {0, 1, 0, 1}), 4u);
  EXPECT_EQ(model::cut_value(g, {0, 0, 0, 0}), 0u);
  EXPECT_EQ(model::cut_value(g, {0, 0, 1, 1}), 2u);
  EXPECT_THROW((void)model::cut_value(g, {0, 1}), std::invalid_argument);
}

TEST(CutValueMasked, RespectsMask) {
  const auto g = graph::path_graph(3);
  const CutAssignment sides{0, 1, 0};
  EXPECT_EQ(model::cut_value_masked(g, sides, {1, 1}), 2u);
  EXPECT_EQ(model::cut_value_masked(g, sides, {1, 0}), 1u);
  EXPECT_EQ(model::cut_value_masked(g, sides, {0, 0}), 0u);
  EXPECT_THROW((void)model::cut_value_masked(g, sides, {1}), std::invalid_argument);
}

struct BruteForceCase {
  const char* name;
  graph::Graph graph;
  std::size_t expected_cut;
};

class BruteForceSweep : public ::testing::TestWithParam<BruteForceCase> {};

TEST_P(BruteForceSweep, FindsKnownOptimum) {
  const auto& param = GetParam();
  const auto [cut, sides] = model::max_cut_bruteforce(param.graph);
  EXPECT_EQ(cut, param.expected_cut) << param.name;
  EXPECT_EQ(model::cut_value(param.graph, sides), cut);
}

INSTANTIATE_TEST_SUITE_P(
    KnownGraphs, BruteForceSweep,
    ::testing::Values(
        // Bipartite graphs: max cut = all edges.
        BruteForceCase{"C4", graph::cycle_graph(4), 4},
        BruteForceCase{"P5", graph::path_graph(5), 4},
        BruteForceCase{"K33", graph::complete_bipartite_graph(3, 3), 9},
        BruteForceCase{"grid23", graph::grid_graph(2, 3), 7},
        // Odd cycle: n - 1.
        BruteForceCase{"C5", graph::cycle_graph(5), 4},
        BruteForceCase{"C7", graph::cycle_graph(7), 6},
        // Complete graphs: floor(n^2/4).
        BruteForceCase{"K4", graph::complete_graph(4), 4},
        BruteForceCase{"K5", graph::complete_graph(5), 6},
        BruteForceCase{"K6", graph::complete_graph(6), 9},
        // 3x3 King's graph: row-alternating split cuts vertical+diagonals.
        BruteForceCase{"kings33", graph::kings_graph(3, 3), 14}),
    [](const auto& info) { return info.param.name; });

TEST(BruteForce, RejectsLargeGraphs) {
  EXPECT_THROW(model::max_cut_bruteforce(graph::path_graph(27)),
               std::invalid_argument);
}

TEST(BruteForce, EmptyAndTrivial) {
  const auto [cut0, sides0] = model::max_cut_bruteforce(graph::Graph(0));
  EXPECT_EQ(cut0, 0u);
  EXPECT_TRUE(sides0.empty());
  const auto [cut1, sides1] = model::max_cut_bruteforce(graph::path_graph(1));
  EXPECT_EQ(cut1, 0u);
  EXPECT_EQ(sides1.size(), 1u);
}

TEST(SpinCutConversion, RoundTrip) {
  const CutAssignment sides{0, 1, 1, 0};
  const auto spins = model::spins_from_cut(sides);
  EXPECT_EQ(model::cut_from_spins(spins), sides);
  EXPECT_EQ(spins[0], 1);
  EXPECT_EQ(spins[1], -1);
}

TEST(IsingCutIdentity, EnergyMatchesCut) {
  const auto g = graph::kings_graph(3, 4);
  const model::IsingModel m(g, -1.0);
  CutAssignment sides(g.num_nodes());
  for (std::size_t i = 0; i < sides.size(); ++i) sides[i] = (i * 7 % 3) & 1;
  const auto spins = model::spins_from_cut(sides);
  const std::size_t cut = model::cut_value(g, sides);
  EXPECT_DOUBLE_EQ(m.energy(spins), model::ising_energy_of_cut(g, cut));
  EXPECT_EQ(model::cut_from_ising_energy(g, m.energy(spins)), cut);
}


// --- max-K-cut ------------------------------------------------------------

TEST(KCut, ValueCountsCrossPartEdges) {
  const auto g = graph::cycle_graph(6);
  model::KCutAssignment parts{0, 1, 2, 0, 1, 2};
  EXPECT_EQ(model::kcut_value(g, parts), 6u);  // proper 3-coloring cuts all
  parts = {0, 0, 0, 0, 0, 0};
  EXPECT_EQ(model::kcut_value(g, parts), 0u);
  EXPECT_THROW((void)model::kcut_value(g, {0, 1}), std::invalid_argument);
}

TEST(KCut, BruteforceK4OnK4CutsEverything) {
  const auto g = graph::complete_graph(4);
  const auto [cut, parts] = model::max_kcut_bruteforce(g, 4);
  EXPECT_EQ(cut, 6u);  // all-distinct labels cut every edge
  EXPECT_EQ(model::kcut_value(g, parts), cut);
}

TEST(KCut, BruteforceK2MatchesMaxCut) {
  util::Rng rng(5);
  const auto g = graph::erdos_renyi(10, 0.4, rng);
  const auto [cut2, parts2] = model::max_kcut_bruteforce(g, 2);
  const auto [cut, sides] = model::max_cut_bruteforce(g);
  EXPECT_EQ(cut2, cut);
  (void)parts2;
  (void)sides;
}

TEST(KCut, RandomExpectationBoundsHold) {
  const auto g = graph::kings_graph_square(3);
  const double expectation = model::kcut_random_expectation(g, 4);
  EXPECT_DOUBLE_EQ(expectation, g.num_edges() * 0.75);
  const auto [best, parts] = model::max_kcut_bruteforce(g, 4);
  (void)parts;
  EXPECT_GE(static_cast<double>(best), expectation);
}

TEST(KCut, BruteforceRejectsLargeInstances) {
  const auto g = graph::kings_graph_square(5);
  EXPECT_THROW((void)model::max_kcut_bruteforce(g, 4), std::invalid_argument);
  EXPECT_THROW((void)model::max_kcut_bruteforce(graph::path_graph(3), 9),
               std::invalid_argument);
}

}  // namespace
