// Tests for the MSROPM stage schedule.
#include "msropm/core/schedule.hpp"

#include <gtest/gtest.h>

namespace {

using msropm::core::StageSchedule;

TEST(Schedule, PaperDefaultIs60ns) {
  const auto s = StageSchedule::paper_default();
  // 5 init + 2*(20 anneal + 5 lock) + 1*5 reinit = 60 ns (paper Sec. 4.1).
  EXPECT_NEAR(s.total_time_s(2), 60e-9, 1e-15);
}

TEST(Schedule, SingleStageIs30ns) {
  const auto s = StageSchedule::paper_default();
  EXPECT_NEAR(s.total_time_s(1), 30e-9, 1e-15);
}

TEST(Schedule, ThreeStageExtension) {
  // 8-coloring: one more anneal+lock window plus one more reinit.
  const auto s = StageSchedule::paper_default();
  EXPECT_NEAR(s.total_time_s(3), 90e-9, 1e-15);
}

TEST(Schedule, ZeroStages) {
  EXPECT_DOUBLE_EQ(StageSchedule::paper_default().total_time_s(0), 0.0);
}

TEST(Schedule, TotalIsIndependentOfProblemSize) {
  // The constant-time property: nothing in the schedule depends on n.
  const auto s = StageSchedule::paper_default();
  const double t = s.total_time_s(2);
  EXPECT_DOUBLE_EQ(t, s.total_time_s(2));
}

TEST(Schedule, Validity) {
  StageSchedule s;
  EXPECT_TRUE(s.valid());
  s.anneal_s = 0.0;
  EXPECT_FALSE(s.valid());
  s = StageSchedule{};
  s.init_s = -1e-9;
  EXPECT_FALSE(s.valid());
}

TEST(Schedule, CustomDurations) {
  StageSchedule s;
  s.init_s = 1e-9;
  s.anneal_s = 2e-9;
  s.discretize_s = 3e-9;
  s.reinit_s = 4e-9;
  // 1 + 3*(2+3) + 2*4 = 24 ns.
  EXPECT_NEAR(s.total_time_s(3), 24e-9, 1e-15);
}

}  // namespace
