// Tests for DSATUR.
#include "msropm/solvers/dsatur.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/graph/builders.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using solvers::solve_dsatur;
using solvers::solve_dsatur_bounded;

TEST(Dsatur, AlwaysProperUnbounded) {
  msropm::util::Rng rng(3);
  const auto graphs = {graph::kings_graph_square(6), graph::cycle_graph(7),
                       graph::complete_graph(5),
                       graph::erdos_renyi(40, 0.3, rng)};
  for (const auto& g : graphs) {
    const auto result = solve_dsatur(g);
    EXPECT_TRUE(graph::is_proper_coloring(g, result.colors, result.colors_used));
  }
}

TEST(Dsatur, BipartiteUsesTwoColors) {
  const auto g = graph::complete_bipartite_graph(4, 6);
  const auto result = solve_dsatur(g);
  EXPECT_EQ(result.colors_used, 2u);
}

TEST(Dsatur, CompleteGraphUsesN) {
  const auto result = solve_dsatur(graph::complete_graph(7));
  EXPECT_EQ(result.colors_used, 7u);
}

TEST(Dsatur, EvenCycleTwoOddCycleThree) {
  EXPECT_EQ(solve_dsatur(graph::cycle_graph(8)).colors_used, 2u);
  EXPECT_EQ(solve_dsatur(graph::cycle_graph(9)).colors_used, 3u);
}

TEST(Dsatur, KingsGraphWithinFive) {
  // DSATUR is not guaranteed optimal, but King's graphs color greedily well.
  const auto result = solve_dsatur(graph::kings_graph_square(8));
  EXPECT_LE(result.colors_used, 5u);
  EXPECT_GE(result.colors_used, 4u);
}

TEST(Dsatur, EmptyAndSingleton) {
  const auto empty = solve_dsatur(graph::Graph(0));
  EXPECT_TRUE(empty.colors.empty());
  const auto lone = solve_dsatur(graph::path_graph(1));
  EXPECT_EQ(lone.colors_used, 1u);
}

TEST(DsaturBounded, RespectsPalette) {
  const auto g = graph::complete_graph(8);
  const auto result = solve_dsatur_bounded(g, 4);
  EXPECT_EQ(result.colors_used, 4u);
  for (auto c : result.colors) EXPECT_LT(c, 4);
  // Quality: with 4 colors on K8 the best grouping is pairs: 4 conflicts.
  EXPECT_LE(graph::count_conflicts(g, result.colors), 6u);
}

TEST(DsaturBounded, FeasiblePaletteStillProper) {
  const auto g = graph::kings_graph_square(5);
  const auto result = solve_dsatur_bounded(g, 4);
  EXPECT_TRUE(graph::is_proper_coloring(g, result.colors, 4));
}

TEST(DsaturBounded, Validation) {
  EXPECT_THROW(solve_dsatur_bounded(graph::path_graph(2), 0),
               std::invalid_argument);
}

}  // namespace
