// Tests for problem-to-fabric mapping (L_EN problem mapping, Sec. 3.3).
#include "msropm/core/fabric_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "msropm/analysis/experiments.hpp"
#include "msropm/core/machine.hpp"
#include "msropm/graph/builders.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;
using core::embed_guest;
using core::FabricMapping;
using core::map_cells;
using core::map_window;
using core::PhysicalFabric;

TEST(PhysicalFabric, TopologyIsKingsGraph) {
  const PhysicalFabric fabric(4, 5);
  EXPECT_EQ(fabric.num_cells(), 20u);
  EXPECT_EQ(fabric.topology(), graph::kings_graph(4, 5));
}

TEST(PhysicalFabric, CellPositionRoundTrip) {
  const PhysicalFabric fabric(6, 7);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 7; ++c) {
      const auto id = fabric.cell(r, c);
      EXPECT_EQ(fabric.position(id), std::make_pair(r, c));
    }
  }
  EXPECT_THROW((void)fabric.cell(6, 0), std::out_of_range);
  EXPECT_THROW((void)fabric.position(42), std::out_of_range);
}

TEST(PhysicalFabric, RejectsEmpty) {
  EXPECT_THROW(PhysicalFabric(0, 3), std::invalid_argument);
  EXPECT_THROW(PhysicalFabric(3, 0), std::invalid_argument);
}

TEST(MapWindow, WindowRealizesSmallerKingsGraph) {
  // The paper's benchmark mapping: a 7x7 instance on the 46x46 array.
  const PhysicalFabric fabric(10, 10);
  const auto m = map_window(fabric, 7, 7);
  EXPECT_EQ(m.active_graph(), graph::kings_graph_square(7));
  EXPECT_DOUBLE_EQ(m.utilization(), 0.49);
}

TEST(MapWindow, FullWindowUsesWholeFabric) {
  const PhysicalFabric fabric(5, 5);
  const auto m = map_window(fabric, 5, 5);
  EXPECT_EQ(m.active_graph(), fabric.topology());
  EXPECT_DOUBLE_EQ(m.utilization(), 1.0);
  EXPECT_TRUE(std::all_of(m.cell_enable().begin(), m.cell_enable().end(),
                          [](std::uint8_t b) { return b == 1; }));
}

TEST(MapWindow, RejectsOversizedWindow) {
  const PhysicalFabric fabric(4, 4);
  EXPECT_THROW((void)map_window(fabric, 5, 3), std::invalid_argument);
}

TEST(MapCells, DisabledCellsHaveNoCouplings) {
  // Checkerboard subset of a 4x4 fabric: diagonal couplings remain between
  // enabled cells; couplings touching disabled cells are gated.
  const PhysicalFabric fabric(4, 4);
  std::vector<graph::NodeId> cells;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      if ((r + c) % 2 == 0) cells.push_back(fabric.cell(r, c));
    }
  }
  const auto m = map_cells(fabric, cells);
  const auto edges = fabric.topology().edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const bool u_on = m.cell_enable()[edges[e].u];
    const bool v_on = m.cell_enable()[edges[e].v];
    EXPECT_EQ(m.edge_enable()[e] == 1, u_on && v_on);
  }
}

TEST(MapCells, RejectsDuplicatesAndOutOfRange) {
  const PhysicalFabric fabric(3, 3);
  EXPECT_THROW((void)map_cells(fabric, {0, 0}), std::invalid_argument);
  EXPECT_THROW((void)map_cells(fabric, {99}), std::invalid_argument);
}

TEST(Lift, RoundTripsGuestColors) {
  const PhysicalFabric fabric(4, 4);
  const auto m = map_window(fabric, 2, 2);
  const graph::Coloring guest{0, 1, 2, 3};
  const auto lifted = m.lift(guest);
  ASSERT_EQ(lifted.size(), 16u);
  for (std::size_t i = 0; i < m.num_guest_nodes(); ++i) {
    EXPECT_EQ(lifted[m.guest_to_cell()[i]], guest[i]);
  }
  const std::size_t unused =
      static_cast<std::size_t>(std::count(lifted.begin(), lifted.end(), 0xFF));
  EXPECT_EQ(unused, 12u);
  EXPECT_THROW((void)m.lift({0, 1}), std::invalid_argument);
}

TEST(EmbedGuest, CycleEmbeds) {
  const PhysicalFabric fabric(5, 5);
  const auto guest = graph::cycle_graph(8);
  const auto m = embed_guest(fabric, guest);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->active_graph(), guest);
}

TEST(EmbedGuest, GridEmbeds) {
  const PhysicalFabric fabric(6, 6);
  const auto guest = graph::grid_graph(4, 4);
  const auto m = embed_guest(fabric, guest);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->active_graph(), guest);
}

TEST(EmbedGuest, K4Embeds) {
  // K4 = a 2x2 King's block.
  const PhysicalFabric fabric(4, 4);
  const auto m = embed_guest(fabric, graph::complete_graph(4));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->active_graph().num_edges(), 6u);
}

TEST(EmbedGuest, K5Rejected) {
  // The King's graph's max clique is 4: K5 cannot embed on any fabric.
  const PhysicalFabric fabric(8, 8);
  EXPECT_FALSE(embed_guest(fabric, graph::complete_graph(5)).has_value());
}

TEST(EmbedGuest, TooManyNodesRejected) {
  const PhysicalFabric fabric(2, 2);
  EXPECT_FALSE(embed_guest(fabric, graph::path_graph(5)).has_value());
}

TEST(EmbedGuest, NonGuestCouplingsAreGated) {
  // Embedding a path may place nodes on diagonally adjacent cells; the
  // physical couplings that are not path edges must be disabled.
  const PhysicalFabric fabric(4, 4);
  const auto guest = graph::path_graph(6);
  const auto m = embed_guest(fabric, guest);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->active_graph(), guest);  // exactly the guest, nothing extra
  const std::size_t enabled = static_cast<std::size_t>(std::count(
      m->edge_enable().begin(), m->edge_enable().end(), std::uint8_t{1}));
  EXPECT_EQ(enabled, guest.num_edges());
}

TEST(EmbedGuest, MachineSolvesOnMappedSubFabric) {
  // End-to-end failure-injection-style check: a problem mapped onto a larger
  // fabric (many oscillators held off) solves identically to the same graph
  // standalone -- disabled cells cannot influence the solution.
  const PhysicalFabric fabric(10, 10);
  const auto m = map_window(fabric, 4, 4);
  const auto reference = graph::kings_graph_square(4);
  core::MultiStagePottsMachine mapped(m.active_graph(),
                                      analysis::default_machine_config());
  core::MultiStagePottsMachine standalone(reference,
                                          analysis::default_machine_config());
  util::Rng rng_a(21);
  util::Rng rng_b(21);
  const auto ra = mapped.solve(rng_a);
  const auto rb = standalone.solve(rng_b);
  EXPECT_EQ(ra.colors, rb.colors);  // identical graph + seed => identical run
  const auto lifted = m.lift(ra.colors);
  EXPECT_EQ(lifted.size(), 100u);
}

}  // namespace
