// Property-style parameterized sweeps over the design-parameter space the
// paper calls out in Sec. 2.3/3.3: coupling strength, SHIL strength, noise
// and schedule length. These assert the qualitative invariants; the
// ablation benches print the quantitative curves.
#include <gtest/gtest.h>

#include <algorithm>

#include "msropm/analysis/experiments.hpp"
#include "msropm/core/runner.hpp"
#include "msropm/graph/builders.hpp"
#include "msropm/phase/lock.hpp"
#include "msropm/phase/network.hpp"
#include "msropm/util/rng.hpp"

namespace {

using namespace msropm;

double best_accuracy_with(core::MsropmConfig cfg, const graph::Graph& g,
                          std::size_t iterations = 10, std::uint64_t seed = 3) {
  core::MultiStagePottsMachine machine(g, cfg);
  core::RunnerOptions opts;
  opts.iterations = iterations;
  opts.seed = seed;
  return core::run_iterations(machine, opts).best_accuracy;
}

// --- SHIL strength: "SHIL injection below a certain level of strength
// cannot discretize the ROSC phases" (Sec. 2.3) --------------------------

class ShilStrengthSweep : public ::testing::TestWithParam<double> {};

TEST_P(ShilStrengthSweep, StrongEnoughShilAlwaysDiscretizes) {
  const double gain = GetParam();
  const auto g = graph::kings_graph(4, 4);
  auto params = analysis::default_machine_config().network;
  params.shil_gain = gain;
  phase::PhaseNetwork net(g, params);
  net.set_couplings_active(true);
  net.set_shil_active(true);
  net.set_uniform_shil_phase(0.0);
  util::Rng rng(5);
  net.randomize_phases(rng);
  net.run(20e-9, rng);
  const std::vector<double> psi(g.num_nodes(), 0.0);
  const double residual = phase::max_lock_residual(net.phases(), psi, 2);
  if (gain >= 1.0e9) {
    EXPECT_LT(residual, 0.25) << "gain " << gain;
  }
}

INSTANTIATE_TEST_SUITE_P(Gains, ShilStrengthSweep,
                         ::testing::Values(1.0e9, 1.6e9, 2.5e9, 4.0e9));

TEST(ShilStrength, TooWeakFailsToDiscretize) {
  const auto g = graph::kings_graph(4, 4);
  auto params = analysis::default_machine_config().network;
  params.shil_gain = 2.0e7;  // far below the coupling gain
  phase::PhaseNetwork net(g, params);
  net.set_couplings_active(true);
  net.set_shil_active(true);
  net.set_uniform_shil_phase(0.0);
  util::Rng rng(5);
  net.randomize_phases(rng);
  net.run(20e-9, rng);
  const std::vector<double> psi(g.num_nodes(), 0.0);
  EXPECT_GT(phase::max_lock_residual(net.phases(), psi, 2), 0.3)
      << "a SHIL much weaker than the coupling cannot pin the phases";
}

// --- Coupling strength: solution quality needs a window -------------------

class CouplingStrengthSweep : public ::testing::TestWithParam<double> {};

TEST_P(CouplingStrengthSweep, WorkingWindowKeepsQuality) {
  const double gain = GetParam();
  const auto g = graph::kings_graph_square(5);
  auto cfg = analysis::default_machine_config();
  cfg.network.coupling_gain = gain;
  const double best = best_accuracy_with(cfg, g);
  EXPECT_GE(best, 0.85) << "coupling gain " << gain;
}

INSTANTIATE_TEST_SUITE_P(Gains, CouplingStrengthSweep,
                         ::testing::Values(4.0e8, 8.0e8, 1.2e9));

TEST(CouplingStrength, TooWeakDegradesQuality) {
  const auto g = graph::kings_graph_square(5);
  auto cfg = analysis::default_machine_config();
  cfg.network.coupling_gain = 5.0e6;  // phases barely interact in 20 ns
  const double weak = best_accuracy_with(cfg, g);
  cfg = analysis::default_machine_config();
  const double nominal = best_accuracy_with(cfg, g);
  EXPECT_LT(weak, nominal);
  EXPECT_LT(weak, 0.9);
}

// --- Noise: moderate jitter anneals, heavy jitter destroys ----------------

class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, ModerateJitterPreservesQuality) {
  const auto g = graph::kings_graph_square(5);
  auto cfg = analysis::default_machine_config();
  cfg.network.noise_stddev = GetParam();
  EXPECT_GE(best_accuracy_with(cfg, g), 0.85)
      << "noise " << GetParam() << " rad/sqrt(s)";
}

INSTANTIATE_TEST_SUITE_P(Levels, NoiseSweep,
                         ::testing::Values(0.0, 1.0e3, 2.0e3, 4.0e3));

TEST(NoiseSweepExtreme, HeavyJitterDegrades) {
  const auto g = graph::kings_graph_square(5);
  auto cfg = analysis::default_machine_config();
  cfg.network.noise_stddev = 1.0e5;  // phase diffuses ~ pi per ns
  const double noisy = best_accuracy_with(cfg, g);
  EXPECT_LT(noisy, 0.95);
}

// --- Schedule: longer annealing never hurts on average ------------------

class AnnealLengthSweep : public ::testing::TestWithParam<double> {};

TEST_P(AnnealLengthSweep, PaperLengthIsSufficient) {
  const auto g = graph::kings_graph_square(5);
  auto cfg = analysis::default_machine_config();
  cfg.schedule.anneal_s = GetParam();
  EXPECT_GE(best_accuracy_with(cfg, g), 0.85)
      << "anneal " << GetParam() * 1e9 << " ns";
}

INSTANTIATE_TEST_SUITE_P(Durations, AnnealLengthSweep,
                         ::testing::Values(10e-9, 20e-9, 40e-9));

TEST(AnnealLength, FarTooShortDegrades) {
  const auto g = graph::kings_graph_square(6);
  auto cfg = analysis::default_machine_config();
  cfg.schedule.anneal_s = 0.3e-9;  // well under one coupling time constant
  const double rushed = best_accuracy_with(cfg, g);
  cfg = analysis::default_machine_config();
  const double nominal = best_accuracy_with(cfg, g);
  EXPECT_LE(rushed, nominal);
}

// --- Solution invariants over random problem instances --------------------

class RandomInstanceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomInstanceSweep, MachineInvariantsHoldOnPlanarInstances) {
  util::Rng grng(GetParam());
  const auto g = graph::triangulated_grid(5, 5, grng);
  core::MultiStagePottsMachine machine(g, analysis::default_machine_config());
  util::Rng rng(GetParam() + 1000);
  const auto r = machine.solve(rng);
  // Invariant 1: colors in palette.
  for (auto c : r.colors) EXPECT_LT(c, 4);
  // Invariant 2: stage-2 active edges = stage-1 uncut edges.
  EXPECT_EQ(r.stages[1].active_edges,
            r.stages[0].active_edges - r.stages[0].cut_edges);
  // Invariant 3: satisfied edges = edges cut in some stage.
  EXPECT_EQ(graph::count_satisfied_edges(g, r.colors),
            r.stages[0].cut_edges + r.stages[1].cut_edges);
  // Invariant 4: cross-stage-1-cut edges are never conflicts.
  for (const auto& e : g.edges()) {
    if (r.stages[0].bits[e.u] != r.stages[0].bits[e.v]) {
      EXPECT_NE(r.colors[e.u], r.colors[e.v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull,
                                           7ull, 8ull));

}  // namespace
