// Tests for partition support (P_EN masking, induced subgraphs, merging).
#include "msropm/graph/partition.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "msropm/graph/builders.hpp"
#include "msropm/graph/coloring.hpp"

namespace {

using namespace msropm::graph;

TEST(PartitionMask, IntraEdgesStayOn) {
  const Graph g = path_graph(4);  // edges 01,12,23
  const std::vector<std::uint8_t> labels{0, 0, 1, 1};
  const auto mask = intra_partition_edge_mask(g, labels);
  ASSERT_EQ(mask.size(), 3u);
  EXPECT_EQ(mask[0], 1);  // 0-1 same side
  EXPECT_EQ(mask[1], 0);  // 1-2 cut
  EXPECT_EQ(mask[2], 1);  // 2-3 same side
}

TEST(PartitionMask, SizeMismatchThrows) {
  const Graph g = path_graph(3);
  EXPECT_THROW(intra_partition_edge_mask(g, {0, 1}), std::invalid_argument);
  EXPECT_THROW((void)cut_size(g, {0}), std::invalid_argument);
}

TEST(CutSize, CountsCrossingEdges) {
  const Graph g = complete_graph(4);
  EXPECT_EQ(cut_size(g, {0, 0, 1, 1}), 4u);
  EXPECT_EQ(cut_size(g, {0, 0, 0, 0}), 0u);
  EXPECT_EQ(cut_size(g, {0, 1, 1, 1}), 3u);
}

TEST(SplitByLabels, ProducesInducedSubgraphs) {
  const Graph g = cycle_graph(6);
  const std::vector<std::uint8_t> labels{0, 0, 0, 1, 1, 1};
  const auto parts = split_by_labels(g, labels, 2);
  ASSERT_EQ(parts.size(), 2u);
  // Each side keeps its 2 internal path edges; 2 edges crossed.
  EXPECT_EQ(parts[0].graph.num_nodes(), 3u);
  EXPECT_EQ(parts[0].graph.num_edges(), 2u);
  EXPECT_EQ(parts[1].graph.num_edges(), 2u);
  EXPECT_EQ(parts[0].to_original.size(), 3u);
  EXPECT_EQ(parts[0].to_original[0], 0u);
  EXPECT_EQ(parts[1].to_original[0], 3u);
}

TEST(SplitByLabels, EmptyPartitionAllowed) {
  const Graph g = path_graph(3);
  const auto parts = split_by_labels(g, {0, 0, 0}, 2);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].graph.num_nodes(), 3u);
  EXPECT_EQ(parts[1].graph.num_nodes(), 0u);
}

TEST(SplitByLabels, LabelOutOfRangeThrows) {
  const Graph g = path_graph(3);
  EXPECT_THROW(split_by_labels(g, {0, 2, 0}, 2), std::invalid_argument);
}

TEST(SplitMergeRoundTrip, RecoversAssignment) {
  const Graph g = kings_graph(4, 4);
  // Split by column parity.
  std::vector<std::uint8_t> labels(16);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) labels[r * 4 + c] = c % 2;
  }
  const auto parts = split_by_labels(g, labels, 2);
  // Assign each part a constant value and merge.
  std::vector<std::vector<std::uint8_t>> vals(2);
  vals[0].assign(parts[0].graph.num_nodes(), 7);
  vals[1].assign(parts[1].graph.num_nodes(), 9);
  const auto merged = merge_labels(16, parts, vals);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(merged[i], labels[i] == 0 ? 7 : 9);
  }
}

TEST(MergeLabels, DetectsUncoveredNodes) {
  const Graph g = path_graph(4);
  auto parts = split_by_labels(g, {0, 0, 1, 1}, 2);
  parts[1].to_original.pop_back();  // corrupt coverage
  std::vector<std::vector<std::uint8_t>> vals{{1, 1}, {2}};
  EXPECT_THROW(merge_labels(4, parts, vals), std::invalid_argument);
}

TEST(MergeLabels, SizeMismatchThrows) {
  const Graph g = path_graph(2);
  const auto parts = split_by_labels(g, {0, 1}, 2);
  std::vector<std::vector<std::uint8_t>> vals{{1}, {2, 3}};
  EXPECT_THROW(merge_labels(2, parts, vals), std::invalid_argument);
}

TEST(Partition, MaskAndSplitConsistent) {
  // Edges cut by the mask = edges that vanish from the induced subgraphs.
  const Graph g = kings_graph(3, 3);
  const std::vector<std::uint8_t> labels{0, 1, 0, 1, 0, 1, 0, 1, 0};
  const auto mask = intra_partition_edge_mask(g, labels);
  std::size_t kept = 0;
  for (auto m : mask) kept += m;
  const auto parts = split_by_labels(g, labels, 2);
  EXPECT_EQ(parts[0].graph.num_edges() + parts[1].graph.num_edges(), kept);
  EXPECT_EQ(kept + cut_size(g, labels), g.num_edges());
}

}  // namespace
