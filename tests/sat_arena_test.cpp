// Unit tests for the flat clause arena: record layout, flag handling,
// activity storage, in-place shrinking, waste accounting, and relocation
// (the GC building block).
#include "msropm/sat/arena.hpp"

#include <gtest/gtest.h>

namespace {

using namespace msropm::sat;

TEST(ClauseArena, AllocStoresLitsInOrder) {
  ClauseArena arena;
  const Clause c{pos(3), neg(1), pos(7)};
  const ClauseRef r = arena.alloc(c, /*learnt=*/false);
  ASSERT_EQ(arena.size(r), 3u);
  EXPECT_EQ(arena.lits(r)[0], pos(3));
  EXPECT_EQ(arena.lits(r)[1], neg(1));
  EXPECT_EQ(arena.lits(r)[2], pos(7));
  EXPECT_FALSE(arena.learnt(r));
  EXPECT_FALSE(arena.deleted(r));
  EXPECT_FALSE(arena.marked(r));
}

TEST(ClauseArena, RefsAreStableAcrossGrowth) {
  ClauseArena arena;
  std::vector<ClauseRef> refs;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    const Clause c{pos(i), neg(i + 1), pos(i + 2)};
    refs.push_back(arena.alloc(c, i % 2 == 0));
  }
  for (std::uint32_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(arena.size(refs[i]), 3u);
    EXPECT_EQ(arena.lits(refs[i])[0], pos(i));
    EXPECT_EQ(arena.lits(refs[i])[2], pos(i + 2));
    EXPECT_EQ(arena.learnt(refs[i]), i % 2 == 0);
  }
}

TEST(ClauseArena, LearntActivityRoundTripsAsDouble) {
  ClauseArena arena;
  const Clause c{pos(0), pos(1)};
  const ClauseRef r = arena.alloc(c, /*learnt=*/true);
  EXPECT_EQ(arena.activity(r), 0.0);
  // Full double precision must survive (clause activities are compared, so
  // narrowing to float would change reduce_learnts decisions).
  const double a = 1.0 + 1e-15;
  arena.set_activity(r, a);
  EXPECT_EQ(arena.activity(r), a);
  // The activity slot must not clobber the literals.
  EXPECT_EQ(arena.lits(r)[0], pos(0));
  EXPECT_EQ(arena.lits(r)[1], pos(1));
}

TEST(ClauseArena, FreeMarksDeletedAndAccountsWaste) {
  ClauseArena arena;
  const Clause c{pos(0), pos(1), pos(2)};
  const ClauseRef r = arena.alloc(c, /*learnt=*/false);
  EXPECT_EQ(arena.wasted_words(), 0u);
  arena.free_clause(r);
  EXPECT_TRUE(arena.deleted(r));
  EXPECT_EQ(arena.wasted_words(), 4u);  // header + 3 lits
  // Literals stay readable until GC (lazy watch cleanup may still look).
  EXPECT_EQ(arena.lits(r)[1], pos(1));
}

TEST(ClauseArena, RemoveLitShiftsAndShrinks) {
  ClauseArena arena;
  const Clause c{pos(0), pos(2), pos(4), pos(6)};
  const ClauseRef r = arena.alloc(c, /*learnt=*/false);
  arena.remove_lit(r, pos(2));
  ASSERT_EQ(arena.size(r), 3u);
  EXPECT_EQ(arena.lits(r)[0], pos(0));
  EXPECT_EQ(arena.lits(r)[1], pos(4));
  EXPECT_EQ(arena.lits(r)[2], pos(6));
  EXPECT_EQ(arena.wasted_words(), 1u);
}

TEST(ClauseArena, MarkBitIsIndependentOfOtherFlags) {
  ClauseArena arena;
  const Clause c{pos(0), pos(1)};
  const ClauseRef r = arena.alloc(c, /*learnt=*/true);
  arena.set_activity(r, 3.5);
  arena.set_mark(r, true);
  EXPECT_TRUE(arena.marked(r));
  EXPECT_TRUE(arena.learnt(r));
  EXPECT_FALSE(arena.deleted(r));
  EXPECT_EQ(arena.size(r), 2u);
  EXPECT_EQ(arena.activity(r), 3.5);
  arena.set_mark(r, false);
  EXPECT_FALSE(arena.marked(r));
}

TEST(ClauseArena, RelocCopiesLiveRecord) {
  ClauseArena from;
  const Clause c{pos(5), neg(6), pos(7)};
  const ClauseRef r = from.alloc(c, /*learnt=*/true);
  from.set_activity(r, 42.0);

  ClauseArena to;
  const ClauseRef nr = from.reloc(r, to);
  ASSERT_EQ(to.size(nr), 3u);
  EXPECT_EQ(to.lits(nr)[0], pos(5));
  EXPECT_EQ(to.lits(nr)[1], neg(6));
  EXPECT_EQ(to.lits(nr)[2], pos(7));
  EXPECT_TRUE(to.learnt(nr));
  EXPECT_EQ(to.activity(nr), 42.0);
}

TEST(ClauseArena, RelocForwardsSecondHolderToSameCopy) {
  ClauseArena from;
  const Clause a{pos(0), pos(1)};
  const Clause b{pos(2), pos(3)};
  const ClauseRef ra = from.alloc(a, false);
  const ClauseRef rb = from.alloc(b, false);

  ClauseArena to;
  // Two watch entries + a reason slot all relocate the same record; they
  // must converge on one copy.
  const ClauseRef na1 = from.reloc(ra, to);
  const ClauseRef nb = from.reloc(rb, to);
  const ClauseRef na2 = from.reloc(ra, to);
  const ClauseRef na3 = from.reloc(ra, to);
  EXPECT_EQ(na1, na2);
  EXPECT_EQ(na1, na3);
  EXPECT_NE(na1, nb);
  EXPECT_EQ(to.lits(nb)[0], pos(2));
  // Exactly two records were copied.
  EXPECT_EQ(to.used_words(), 2 * (1 + 2));
}

TEST(ClauseArena, GcDropsDeletedRecords) {
  ClauseArena from;
  std::vector<ClauseRef> live;
  for (std::uint32_t i = 0; i < 100; ++i) {
    const Clause c{pos(i), neg(i + 1), pos(i + 2)};
    const ClauseRef r = from.alloc(c, false);
    if (i % 2 == 0) {
      live.push_back(r);
    } else {
      from.free_clause(r);
    }
  }
  ClauseArena to;
  for (ClauseRef& r : live) r = from.reloc(r, to);
  EXPECT_EQ(to.used_words(), 50 * 4u);
  EXPECT_EQ(to.wasted_words(), 0u);
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(to.lits(live[i])[0], pos(2 * i));
  }
}

TEST(ClauseArena, AllocWordCounterCarriesAcrossGc) {
  ClauseArena from;
  const Clause c{pos(0), pos(1), pos(2)};
  (void)from.alloc(c, false);
  const ClauseRef dead = from.alloc(c, false);
  from.free_clause(dead);
  const std::size_t lifetime = from.alloc_words();
  EXPECT_EQ(lifetime, 8u);

  ClauseArena to;
  ClauseRef survivor = 0;
  (void)(survivor = from.reloc(survivor, to));
  to.carry_alloc_stats_from(from);
  // Relocation is a move, not a fresh allocation: the lifetime counter must
  // not double-count the surviving clause.
  EXPECT_EQ(to.alloc_words(), lifetime);
  EXPECT_LT(to.used_words(), from.used_words());
}

}  // namespace
