#pragma once
// VarOrderHeap: indexed binary max-heap over variables keyed by their VSIDS
// activity (MiniSat `Heap<VarOrderLt>` style). pick_branch_lit() pops the
// maximum-activity variable in O(log V) instead of the old O(V) linear scan
// per decision; assigned variables are skipped lazily at pop time and
// re-inserted when backtracking unassigns them.
//
// The heap reads activities through a pointer to the solver's activity
// vector, so bump_var only has to sift the bumped variable up. A VSIDS
// rescale (every activity multiplied by the same positive constant) only
// ever weakens strict orderings into equalities (underflow can collapse
// tiny keys to the same value), which the heap structure tolerates, so no
// rebuild is needed. Ties present when an element is sifted break toward
// the smaller variable index; ties *created later* by rescale underflow may
// surface in whatever order the pre-rescale structure left them (MiniSat
// behaves the same way). Either way the order is a deterministic function
// of the operation history, so run-to-run bit-determinism holds.

#include <cstdint>
#include <vector>

#include "msropm/sat/cnf.hpp"

namespace msropm::sat {

class VarOrderHeap {
 public:
  VarOrderHeap() = default;
  explicit VarOrderHeap(const std::vector<double>* activity)
      : activity_(activity) {}

  void set_activity(const std::vector<double>* activity) noexcept {
    activity_ = activity;
  }

  /// Heapify variables 0..num_vars-1 (replaces any previous content).
  void build(std::size_t num_vars) {
    heap_.resize(num_vars);
    pos_.assign(num_vars, kAbsent);
    for (std::size_t v = 0; v < num_vars; ++v) {
      heap_[v] = static_cast<Var>(v);
      pos_[v] = static_cast<std::uint32_t>(v);
    }
    if (heap_.empty()) return;
    for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] bool contains(Var v) const noexcept {
    return v < pos_.size() && pos_[v] != kAbsent;
  }

  /// Insert v (no-op if already present).
  void insert(Var v) {
    if (contains(v)) return;
    if (v >= pos_.size()) pos_.resize(v + 1, kAbsent);
    pos_[v] = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(v);
    sift_up(heap_.size() - 1);
  }

  /// Remove and return the maximum-activity variable.
  Var pop() {
    const Var top = heap_[0];
    pos_[top] = kAbsent;
    const Var last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty() && last != top) {
      heap_[0] = last;
      pos_[last] = 0;
      sift_down(0);
    }
    return top;
  }

  /// Restore the heap property around v after its activity changed in either
  /// direction (a VSIDS bump only increases it, but rescales and tests may
  /// lower keys too). No-op when v is not in the heap.
  void update(Var v) {
    if (!contains(v)) return;
    const std::size_t i = pos_[v];
    sift_up(i);
    sift_down(pos_[v]);
  }

  void clear() noexcept {
    heap_.clear();
    pos_.assign(pos_.size(), kAbsent);
  }

 private:
  static constexpr std::uint32_t kAbsent = ~std::uint32_t{0};

  /// Max-heap order: higher activity first, smaller index on ties.
  [[nodiscard]] bool before(Var a, Var b) const noexcept {
    const double aa = (*activity_)[a];
    const double ab = (*activity_)[b];
    if (aa != ab) return aa > ab;
    return a < b;
  }

  void sift_up(std::size_t i) {
    const Var v = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(v, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i]] = static_cast<std::uint32_t>(i);
      i = parent;
    }
    heap_[i] = v;
    pos_[v] = static_cast<std::uint32_t>(i);
  }

  void sift_down(std::size_t i) {
    const Var v = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], v)) break;
      heap_[i] = heap_[child];
      pos_[heap_[i]] = static_cast<std::uint32_t>(i);
      i = child;
    }
    heap_[i] = v;
    pos_[v] = static_cast<std::uint32_t>(i);
  }

  const std::vector<double>* activity_ = nullptr;
  std::vector<Var> heap_;
  std::vector<std::uint32_t> pos_;  // var -> heap index, kAbsent if not present
};

}  // namespace msropm::sat
