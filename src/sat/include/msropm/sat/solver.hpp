#pragma once
// CDCL SAT solver: two-watched-literal propagation with blocking literals
// and inlined binary clauses, 1-UIP conflict-driven clause learning, VSIDS
// variable activity on an indexed max-heap with phase saving, Luby restarts,
// activity-based learnt-clause reduction, and MiniSat-style incremental
// solving (multi-shot solve(assumptions) with failed-assumption cores;
// learnt clauses, activities and phases survive across calls).
//
// It is the "generic SAT solver" baseline of the paper, used to compute the
// exact colorings against which MSROPM accuracy is normalized. The King's
// graph 4-coloring instances (up to 2116 nodes = 8464 variables) solve in
// milliseconds.
//
// The clause database lives in a flat ClauseArena (arena.hpp): one uint32
// buffer holds every clause of length >= 3, watch lists hold
// Watcher{ClauseRef, blocker} entries (watcher.hpp), and learnt-clause
// reduction is followed by a compacting garbage collection that rewrites
// live clauses into a fresh buffer and remaps every holder. Binary clauses
// never touch the arena at all: they live implicitly in the watch lists
// (the other literal inline in the watcher), propagate without a single
// clause dereference, and are invisible to GC. On the paper's coloring
// encodings (~90% binary edge clauses) this removes the arena from most
// propagation traffic entirely.

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "msropm/sat/arena.hpp"
#include "msropm/sat/cnf.hpp"
#include "msropm/sat/order_heap.hpp"
#include "msropm/sat/preprocess.hpp"
#include "msropm/sat/watcher.hpp"
#include "msropm/util/resource_budget.hpp"
#include "msropm/util/stop_token.hpp"

namespace msropm::sat {

enum class SolveResult : std::uint8_t { kSat, kUnsat, kUnknown };

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_clauses = 0;
  std::uint64_t removed_learnts = 0;
  // Hot-path counters for the watcher/heap overhaul.
  std::uint64_t blocker_skips = 0;        ///< satisfied-blocker watch visits
                                          ///< that skipped the arena deref
  std::uint64_t binary_propagations = 0;  ///< enqueues from implicit binaries
  std::uint64_t heap_decisions = 0;       ///< decisions served by VarOrderHeap
  // Clause-arena accounting (all in 4-byte words).
  std::uint64_t gc_runs = 0;           ///< compacting garbage collections
  std::uint64_t gc_freed_words = 0;    ///< words reclaimed across all GCs
  std::uint64_t arena_alloc_words = 0; ///< lifetime words handed to clauses
  std::uint64_t arena_peak_words = 0;  ///< high-water mark of the live buffer
  /// Why the LAST solve() call returned kUnknown (kNone for definitive
  /// results and for plain sibling-cancellation): which ResourceBudget limit
  /// breached, kDeadline for an expired StopToken deadline, or kInjected for
  /// a FaultInjector trip. Reset at every solve() entry.
  util::LimitReason limit_reason = util::LimitReason::kNone;
};

struct SolverOptions {
  /// Give up after this many conflicts PER solve() call (0 = unlimited).
  std::uint64_t conflict_limit = 0;
  /// Base interval (conflicts) of the Luby restart sequence.
  std::uint64_t restart_base = 64;
  /// Multiplicative VSIDS decay applied after each conflict.
  double activity_decay = 0.95;
  /// Initial cap on learnt clauses before reduction (grows geometrically).
  std::size_t learnt_cap = 4096;
  /// Default polarity for first-time decisions (false mirrors MiniSat).
  bool default_polarity = false;
  /// Run the clause-database preprocessor (preprocess.hpp) before search.
  /// model() stays in the original variable space: the solver reconstructs
  /// it through the Remapper. Compatible with assumptions as long as every
  /// assumed variable is listed in preprocess.frozen (the solver maps
  /// assumptions through the Remapper; see solve(assumptions)).
  bool presimplify = false;
  /// Technique selection and caps for presimplify.
  PreprocessOptions preprocess = {};
  /// Per-call resource budget (memory / conflicts / propagations; wall time
  /// rides the stop token's deadline). A breach returns kUnknown with
  /// stats().limit_reason set; the solver stays usable for the next call.
  /// The default (unlimited) budget leaves the search path untouched.
  util::ResourceBudget budget = {};
  /// Cooperative cancellation: polled during clause ingestion and every few
  /// dozen decisions/conflicts of the search. When it fires, solve() returns
  /// kUnknown and cancelled() turns true. The default token never fires.
  /// When presimplify is set the token is also forwarded to the preprocessor
  /// (unless preprocess.stop already carries one).
  util::StopToken stop = {};
  /// Observability heartbeat cadence: when the obs gate is open, publish a
  /// progress sample (conflicts/sec, decisions/sec, props/conflict, learnt-DB
  /// occupancy, restart interval, recent avg LBD) every this many conflicts,
  /// plus at every restart and learnt reduction. 0 disables the conflict
  /// cadence (restart/reduction samples still fire). The heartbeat reads
  /// search state but never writes it: trajectories are bit-identical with
  /// observability enabled, disabled, or compiled out.
  std::uint64_t heartbeat_interval = 1024;
};

/// Multi-shot, assumption-complete CDCL solver (MiniSat incremental style).
///
/// solve() / solve(assumptions) may be called any number of times on one
/// Solver. Between calls the solver backtracks to the root level but KEEPS
/// everything worth keeping: learnt clauses (arena records and implicit
/// binary watchers), variable activities, saved phases, and the restart/
/// reduction cadence — which is the whole point of incremental solving.
///
/// Assumptions are asserted as decision levels 1..N (never as permanent
/// units), so an UNSAT-under-assumptions verdict does not poison the solver:
/// the next call simply re-solves under different assumptions. After such a
/// verdict failed_assumptions() holds a subset of the assumptions whose
/// conjunction with the formula is unsatisfiable (MiniSat's analyzeFinal);
/// formula_unsat() distinguishes "the formula itself is refuted" from
/// "these assumptions are".
///
/// With presimplify on, assumptions compose through the Remapper: every
/// assumed variable must be listed in options.preprocess.frozen (frozen vars
/// are exempt from the non-implied transformations — pure literals, BCE
/// blocking literals, BVE). Assumptions on surviving vars are translated to
/// the simplified space; assumptions on unit-fixed vars are checked against
/// the implied value; assumptions on vars the simplified formula no longer
/// constrains are honored by pinning the reconstructed model. Assuming a
/// non-frozen variable throws std::invalid_argument.
class Solver {
 public:
  explicit Solver(const Cnf& cnf, SolverOptions options = {});

  // Non-copyable, non-movable: order_heap_ holds a pointer to activity_, so
  // a compiler-generated copy/move would leave the new heap reading the old
  // solver's activities (dangling once it is destroyed). Construct in place.
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;
  Solver(Solver&&) = delete;
  Solver& operator=(Solver&&) = delete;

  /// Run the search. kSat fills model(); kUnknown when conflict_limit was
  /// hit for this call or options.stop fired. Callable repeatedly.
  [[nodiscard]] SolveResult solve();

  /// Solve under assumptions. kUnsat means the formula is unsatisfiable
  /// together with the assumptions — consult failed_assumptions() /
  /// formula_unsat() to tell which. Callable repeatedly; learnt clauses are
  /// shared across calls. Throws std::invalid_argument for an assumption on
  /// an out-of-range variable, or (with presimplify) on a variable that was
  /// not frozen.
  [[nodiscard]] SolveResult solve(const std::vector<Lit>& assumptions);

  /// After solve(assumptions) returned kUnsat: the subset of the assumptions
  /// that conflict analysis found responsible, in the original variable
  /// space. Empty when the formula itself is UNSAT (see formula_unsat()).
  [[nodiscard]] const std::vector<Lit>& failed_assumptions() const noexcept {
    return failed_assumptions_;
  }

  /// True once the formula has been refuted WITHOUT assumptions: every
  /// subsequent solve() call returns kUnsat no matter the assumptions.
  [[nodiscard]] bool formula_unsat() const noexcept { return !ok_; }

  /// Model indexed by var (0/1), always in the ORIGINAL variable space even
  /// when presimplify rewrote the formula. Valid after a solve() that
  /// returned kSat, until the next solve() call.
  [[nodiscard]] const std::vector<std::uint8_t>& model() const noexcept {
    return model_;
  }

  [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }

  /// True when options.stop interrupted construction or search; the
  /// corresponding solve() returned (or will return) kUnknown.
  [[nodiscard]] bool cancelled() const noexcept { return cancelled_; }

  /// Preprocessing breakdown; engaged only when options.presimplify was set.
  [[nodiscard]] const std::optional<PreprocessStats>& preprocess_stats()
      const noexcept {
    return preprocess_stats_;
  }

  /// Watcher-integrity invariant: no watch list, reason slot, or learnt-list
  /// entry references a deleted or out-of-bounds arena record; every long
  /// watcher's blocker is a literal of its clause; every binary watcher's
  /// inline literal is in range (binary watchers have no arena record and
  /// must survive GC untouched). Holds between any two solver steps outside
  /// propagate()/reduce_learnts() internals; asserted after every
  /// reduce_learnts() in debug builds and checked post-solve by the growth
  /// regression test.
  [[nodiscard]] bool clause_refs_clean() const noexcept;

  /// Words currently occupied by the clause arena (live + not-yet-collected).
  [[nodiscard]] std::size_t arena_used_words() const noexcept {
    return arena_.used_words();
  }

 private:
  enum class LBool : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };
  using BinaryClause = std::pair<Lit, Lit>;

  void setup_arrays(std::size_t num_vars);
  /// Add one problem clause; stored long (>= 3 lits) clauses are appended to
  /// `stored`, binary clauses to `binaries` — both for deferred,
  /// exactly-reserved watch construction.
  void ingest_clause(Clause&& lits, std::vector<ClauseRef>& stored,
                     std::vector<BinaryClause>& binaries);
  void init_from(const Cnf& cnf);
  /// Count every watcher (two per long clause, two per binary) in a
  /// literal-occurrence pass, reserve each watch list exactly once, then
  /// attach binaries first and long clauses after: ingestion allocates per
  /// non-empty literal list, never per clause, and no watch list reallocates
  /// mid-ingest.
  void build_watches(const std::vector<ClauseRef>& refs,
                     const std::vector<BinaryClause>& binaries);
  /// Presimplify fast path: take ownership of the preprocessor's output
  /// arena and build watch lists straight over its refs — no literal is
  /// copied and no per-clause allocation happens. Binary clauses in the
  /// output become implicit watchers and their arena records are freed (a
  /// compacting GC reclaims the words when they dominate the buffer, which
  /// on coloring encodings they do).
  void adopt_arena(std::size_t num_vars, ClauseArena&& arena,
                   std::vector<ClauseRef>&& refs);

  [[nodiscard]] LBool value(Lit l) const noexcept {
    const LBool v = assigns_[l.var()];
    if (v == LBool::kUndef) return LBool::kUndef;
    const bool b = (v == LBool::kTrue) != l.negated();
    return b ? LBool::kTrue : LBool::kFalse;
  }

  void attach_clause(ClauseRef cr);
  void attach_binary(Lit a, Lit b);
  void enqueue(Lit l, Reason reason);
  /// Returns the conflict: Reason::none() when propagation completed,
  /// Reason::clause(cref) for a long-clause conflict, or a binary-tagged
  /// Reason whose two literals propagate() left in bin_conflict_.
  [[nodiscard]] Reason propagate();
  void analyze(Reason conflict, std::vector<Lit>& learnt_out,
               std::uint32_t& backtrack_level);
  void backtrack(std::uint32_t level);
  /// Translate caller assumptions into the internal (possibly simplified)
  /// space: fills assumptions_/assumption_origins_/model_overrides_. Returns
  /// false when an assumption contradicts a preprocessing-implied fixed
  /// value — an immediate UNSAT with that assumption as the core.
  [[nodiscard]] bool map_assumptions(const std::vector<Lit>& assumptions);
  /// The actual CDCL search behind solve(assumptions); the public entry is a
  /// thin dispatcher so fully-disabled observability costs one branch per
  /// solve() call, not per search step.
  [[nodiscard]] SolveResult solve_internal(const std::vector<Lit>& assumptions);
  /// Instrumented path: wraps solve_internal in an obs span annotated with
  /// the call's conflict/restart deltas and republishes the SolverStats
  /// deltas as msropm::obs registry counters (the struct stays the façade —
  /// both views always agree).
  [[nodiscard]] SolveResult solve_obs(const std::vector<Lit>& assumptions);
  /// MiniSat analyzeFinal: starting from falsified assumption p (internal
  /// space), walk the trail backwards through reasons and collect the
  /// assumption decisions that imply ~p. Fills failed_assumptions_ with the
  /// corresponding ORIGINAL-space assumption literals.
  void analyze_final(Lit p);
  /// Original-space assumption behind an internal assumption literal.
  [[nodiscard]] Lit origin_of_assumption(Lit internal) const;
  /// Heapify the full variable set and switch pick_branch_lit to the heap.
  /// Called at the first conflict: before any conflict the activities are
  /// the static ingest occurrence counts (VSIDS only bumps in analyze), so
  /// the pre-heap linear scan provably picks the same decisions — and on
  /// zero-conflict instances (the paper's King's encodings) the heap's
  /// O(V log V) churn is never paid at all.
  void activate_heap();
  /// Observability-only conflict bookkeeping (called when the obs gate is
  /// open): records the learnt clause's LBD/length and the conflict trail
  /// depth into obs histograms, accumulates the recent-LBD window, and
  /// publishes a heartbeat every options_.heartbeat_interval conflicts.
  /// Reads search state, writes only hb_* members — never the search.
  void note_conflict_obs(const std::vector<Lit>& learnt, std::size_t trail_depth);
  /// Publish one heartbeat sample as obs gauges + trace counter-track events
  /// and reset the rate window.
  void publish_heartbeat();
  [[nodiscard]] std::optional<Lit> pick_branch_lit();
  void bump_var(Var v);
  void bump_clause(ClauseRef cr);
  void decay_activities();
  void reduce_learnts();
  /// Drop every deleted ref from every watch list (order-preserving; binary
  /// watchers are never deleted). Runs after each reduce_learnts so the
  /// stale-reference invariant holds eagerly instead of decaying lazily
  /// through propagate().
  void purge_watches();
  /// Compacting GC: rewrite live clauses into a fresh arena and remap watch
  /// lists, reason slots, and the learnt list through forwarding refs.
  /// Implicit binaries hold no refs, so they are untouched — shrinking GC
  /// work by exactly the binary fraction of the database.
  void garbage_collect();
  void note_arena_peak() noexcept;
  [[nodiscard]] static std::uint64_t luby(std::uint64_t i) noexcept;
  [[nodiscard]] bool lit_redundant(Lit l, std::uint32_t abstract_levels);

  std::size_t num_vars_;
  ClauseArena arena_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index
  std::vector<LBool> assigns_;
  std::vector<std::uint8_t> polarity_;  // saved phase per var
  std::vector<std::uint32_t> level_;
  std::vector<Reason> reason_;
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::vector<double> activity_;
  VarOrderHeap order_heap_{&activity_};  // VSIDS decision order, O(log V) pops
  bool heap_active_ = false;  // heap engages at the first conflict
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<std::uint8_t> seen_;
  std::vector<ClauseRef> learnt_refs_;  // long learnts only; binaries are implicit
  std::size_t learnt_binaries_ = 0;     // implicit learnt binaries ever attached
  std::array<Lit, 2> bin_conflict_{};   // lits of a binary conflict (propagate)
  // Scratch buffers reused across calls so the search hot path (analyze /
  // minimize / reduce) performs no per-conflict heap allocations.
  Clause ingest_scratch_;
  std::vector<Var> analyze_cleanup_;
  std::vector<Lit> minimize_stack_;
  std::vector<Var> minimize_clear_;
  std::vector<ClauseRef> reduce_candidates_;
  // Per-call assumption state (internal space + aligned original literals).
  std::vector<Lit> assumptions_;
  std::vector<Lit> assumption_origins_;
  std::vector<std::pair<Var, bool>> model_overrides_;  // unconstrained frozen
  std::vector<Lit> failed_assumptions_;  // original space, set on kUnsat
  // Heartbeat window state (observability only — nothing below is ever read
  // by the search, so mutating it cannot perturb the trajectory).
  std::int64_t hb_last_ns_ = 0;          // wall clock at last sample
  std::uint64_t hb_last_conflicts_ = 0;  // rate-window baselines
  std::uint64_t hb_last_decisions_ = 0;
  std::uint64_t hb_last_propagations_ = 0;
  std::uint64_t hb_lbd_sum_ = 0;         // recent-LBD window (reset per sample)
  std::uint64_t hb_lbd_count_ = 0;
  std::uint64_t hb_conflicts_since_ = 0; // conflicts since last sample
  std::uint64_t hb_restart_interval_ = 0;  // current Luby restart target
  std::vector<std::uint32_t> lbd_scratch_;  // LBD distinct-level scratch
  std::size_t learnt_cap_ = 0;  // reduction threshold, persists across calls
  bool ok_ = true;          // false once a top-level conflict is derived
  bool db_incomplete_ = false;  // cancelled during ingest: SAT never provable
  bool cancelled_ = false;      // last call was interrupted by options_.stop
  // Resource-governance state. attached_watchers_ counts every live watcher
  // ever attached minus purges (8 bytes each in the accounting model);
  // memory_model_bytes() = arena words * 4 + watchers * 8. db_limit_ records
  // a breach that happened during CONSTRUCTION (ingest/presimplify) so every
  // subsequent solve() reports it. The per-call fields are set at solve entry.
  std::uint64_t attached_watchers_ = 0;
  util::LimitReason db_limit_ = util::LimitReason::kNone;
  std::uint64_t prop_budget_ = 0;  // per-call: stats_.propagations cap
  bool budget_active_ = false;     // hoisted limited() for the hot path
  [[nodiscard]] std::uint64_t memory_model_bytes() const noexcept {
    return (static_cast<std::uint64_t>(arena_.used_words())) * 4 +
           attached_watchers_ * 8;
  }
  /// kNone, or the first budget limit currently breached. Cheap enough for
  /// the conflict branch; callers gate on budget_active_.
  [[nodiscard]] util::LimitReason budget_breach() const noexcept;
  SolverOptions options_;
  SolverStats stats_;
  std::vector<std::uint8_t> model_;
  std::optional<Remapper> remapper_;  // set when presimplify ran
  std::optional<PreprocessStats> preprocess_stats_;
};

/// Convenience wrapper: solve a CNF and return the model if SAT.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> solve_cnf(
    const Cnf& cnf, SolverOptions options = {});

}  // namespace msropm::sat
