#pragma once
// Watcher + Reason: the hot-path types of the two-watched-literal scheme
// (MiniSat 2.2 / cryptominisat `vec<Watched>` style).
//
// Watcher (8 bytes) — one entry of a watch list:
//   cref     ClauseRef of the watched LONG (>= 3 literals) clause, or
//            kBinaryWatcher for an implicit binary clause that has NO arena
//            record at all.
//   blocker  For a long clause: some literal of the clause (initially the
//            other watched literal, refreshed opportunistically during
//            propagation). If the blocker is already true the clause is
//            satisfied and the visit skips the arena dereference entirely —
//            on coloring encodings this is the common case.
//            For a binary watcher in the list of literal p: the OTHER
//            literal q of the clause (~p \/ q); the whole clause is encoded
//            in the watch entry, so binary propagation never touches the
//            arena, original binary clauses need no arena record at all,
//            and GC never sees them.
//
// Binary and long watchers share one list per literal on purpose: each
// propagated literal then walks a single contiguous array (one cache line
// stream) instead of two separate list structures. Binaries are attached
// first, so the is_binary() branch is almost perfectly predicted.
//
// Reason: why a variable was assigned. Tagged 8-byte union over
//   - none      (decision / top-level unit)
//   - clause    (a ClauseRef whose lits[0] is the asserted literal)
//   - binary    (the OTHER literal of an implicit binary clause; for the
//                assertion of q by (~p \/ q) that is ~p, the false literal)
// Reason slots must be remapped on GC only in the clause case; binary
// reasons are immune to clause-database relocation, which is what lets
// implicit binaries skip GC work entirely.

#include <cstdint>

#include "msropm/sat/arena.hpp"
#include "msropm/sat/cnf.hpp"

namespace msropm::sat {

/// Sentinel cref tagging an implicit binary watcher. Distinct from
/// kNullClauseRef; the arena's overflow guard aborts long before real refs
/// could reach either sentinel.
inline constexpr ClauseRef kBinaryWatcher = kNullClauseRef - 1;

struct Watcher {
  ClauseRef cref = kNullClauseRef;
  Lit blocker{};

  [[nodiscard]] bool is_binary() const noexcept { return cref == kBinaryWatcher; }

  [[nodiscard]] static Watcher binary(Lit other) noexcept {
    return Watcher{kBinaryWatcher, other};
  }
  [[nodiscard]] static Watcher clause(ClauseRef cr, Lit blocker) noexcept {
    return Watcher{cr, blocker};
  }

  friend bool operator==(Watcher, Watcher) = default;
};

class Reason {
 public:
  constexpr Reason() = default;

  [[nodiscard]] static Reason none() noexcept { return Reason{}; }
  [[nodiscard]] static Reason clause(ClauseRef cr) noexcept {
    Reason r;
    r.cref_ = cr;
    return r;
  }
  [[nodiscard]] static Reason binary(Lit other) noexcept {
    Reason r;
    r.cref_ = kBinaryTag;
    r.other_ = other;
    return r;
  }

  [[nodiscard]] bool is_none() const noexcept { return cref_ == kNullClauseRef; }
  [[nodiscard]] bool is_binary() const noexcept { return cref_ == kBinaryTag; }
  [[nodiscard]] bool is_clause() const noexcept {
    return cref_ != kNullClauseRef && cref_ != kBinaryTag;
  }

  /// Valid only when is_clause().
  [[nodiscard]] ClauseRef cref() const noexcept { return cref_; }
  /// GC remap hook; callers must only use it when is_clause().
  void set_cref(ClauseRef cr) noexcept { cref_ = cr; }
  /// The other (false) literal of the implicit binary clause; only binary.
  [[nodiscard]] Lit other() const noexcept { return other_; }

  friend bool operator==(Reason, Reason) = default;

 private:
  /// Distinct from kNullClauseRef; the arena's overflow guard aborts long
  /// before real refs could reach either sentinel.
  static constexpr ClauseRef kBinaryTag = kNullClauseRef - 1;

  ClauseRef cref_ = kNullClauseRef;
  Lit other_{};
};

}  // namespace msropm::sat
