#pragma once
// Flat clause arena (MiniSat/cryptominisat ClauseAllocator style).
//
// Clauses live as [header | activity? | lits...] records inside one
// contiguous uint32_t buffer and are addressed by a 32-bit ClauseRef (the
// word offset of the header). This kills the per-clause std::vector<Lit>
// allocations of the old InternalClause/PClause designs and makes the whole
// clause database one cache-friendly allocation that both the preprocessor
// and the CDCL solver share.
//
// Header word layout (bit 0 = LSB):
//   bit 0        deleted      clause was logically removed (space is wasted
//                             until the next garbage collection)
//   bit 1        learnt       record carries a 2-word double activity slot
//   bit 2        relocated    record was moved by GC; the word after the
//                             header holds the forwarding ClauseRef
//   bit 3        mark         scratch bit (reason-locking during learnt-DB
//                             reduction); callers must clear it after use
//   bits 4..31   size         number of literals (max 2^28 - 1)
//
// Lifetime rules for ClauseRefs:
//   - A ref stays valid (and stable) until the arena that produced it is
//     garbage-collected or destroyed. GC moves live records into a fresh
//     buffer, so every holder (watch lists, reason slots, learnt lists,
//     occurrence lists) must be remapped through reloc() in the same pass.
//   - free_clause() only marks the record deleted; the words are reclaimed
//     by the next GC. Reading lits of a deleted record is still safe until
//     then (propagation may race ahead of lazy watch cleanup), but a deleted
//     record must never be relocated.
//   - reloc() on an already-moved record returns the forwarding ref, so
//     multi-holder remaps (two watch entries + a reason + the learnt list
//     pointing at one clause) converge on a single copy.

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "msropm/sat/cnf.hpp"

// Arena-integrity checks (double-free, relocating a deleted record, reading
// a relocated header) stay alive in sanitizer builds, which compile with
// NDEBUG but exist exactly to catch this class of bug: a "freed" record
// still lives inside the arena vector, so ASan alone cannot see a
// use-after-free through a stale ClauseRef.
#if !defined(NDEBUG) || defined(MSROPM_SAT_CHECK_INVARIANTS)
#define MSROPM_SAT_ARENA_CHECK(cond, what)                               \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "FATAL: ClauseArena invariant violated: %s\n", \
                   what);                                                \
      std::abort();                                                      \
    }                                                                    \
  } while (false)
#else
#define MSROPM_SAT_ARENA_CHECK(cond, what) ((void)0)
#endif

namespace msropm::sat {

/// Word offset of a clause header inside a ClauseArena buffer.
using ClauseRef = std::uint32_t;

/// Sentinel: "no clause" (also the solver's "no reason" marker).
inline constexpr ClauseRef kNullClauseRef = ~ClauseRef{0};

class ClauseArena {
 public:
  ClauseArena() = default;
  explicit ClauseArena(std::size_t reserve_words) { data_.reserve(reserve_words); }

  /// Append a clause record; returns its ref. `learnt` reserves the activity
  /// slot (initialized to 0.0). Literal order is preserved.
  ClauseRef alloc(const Lit* lits, std::size_t n, bool learnt) {
    assert(n < (std::size_t{1} << 28));
    const std::size_t need = 1 + (learnt ? kActivityWords : 0) + n;
    // Hard (always-on) overflow guard: refs are 32-bit word offsets, so a
    // buffer past kNullClauseRef words would silently wrap new refs onto
    // old clauses. Corruption must be a loud abort, not garbage literals.
    if (data_.size() >= static_cast<std::size_t>(kNullClauseRef) - need) {
      std::fprintf(stderr,
                   "FATAL: ClauseArena overflow (%zu words in use); 32-bit "
                   "ClauseRef space exhausted\n",
                   data_.size());
      std::abort();
    }
    const auto ref = static_cast<ClauseRef>(data_.size());
    grow(need);
    data_[ref] = (static_cast<std::uint32_t>(n) << kSizeShift) |
                 (learnt ? kLearntBit : 0u);
    if (learnt) {
      const double zero = 0.0;
      std::memcpy(&data_[ref + 1], &zero, sizeof zero);
    }
    std::uint32_t* out = &data_[ref + 1 + (learnt ? kActivityWords : 0)];
    for (std::size_t i = 0; i < n; ++i) out[i] = lits[i].index();
    alloc_words_ += need;
    return ref;
  }
  ClauseRef alloc(const Clause& c, bool learnt) {
    return alloc(c.data(), c.size(), learnt);
  }

  [[nodiscard]] std::size_t size(ClauseRef r) const noexcept {
    return data_[r] >> kSizeShift;
  }
  [[nodiscard]] bool learnt(ClauseRef r) const noexcept {
    return (data_[r] & kLearntBit) != 0;
  }
  [[nodiscard]] bool deleted(ClauseRef r) const noexcept {
    return (data_[r] & kDeletedBit) != 0;
  }
  [[nodiscard]] bool marked(ClauseRef r) const noexcept {
    return (data_[r] & kMarkBit) != 0;
  }
  void set_mark(ClauseRef r, bool on) noexcept {
    if (on) {
      data_[r] |= kMarkBit;
    } else {
      data_[r] &= ~kMarkBit;
    }
  }

  [[nodiscard]] Lit* lits(ClauseRef r) noexcept {
    // Lit is a single uint32_t (static_assert below); reinterpreting buffer
    // words as Lit objects is the standard SAT-solver flat-arena idiom.
    return reinterpret_cast<Lit*>(&data_[lits_offset(r)]);
  }
  [[nodiscard]] const Lit* lits(ClauseRef r) const noexcept {
    return reinterpret_cast<const Lit*>(&data_[lits_offset(r)]);
  }

  [[nodiscard]] double activity(ClauseRef r) const noexcept {
    assert(learnt(r));
    double a;
    std::memcpy(&a, &data_[r + 1], sizeof a);
    return a;
  }
  void set_activity(ClauseRef r, double a) noexcept {
    assert(learnt(r));
    std::memcpy(&data_[r + 1], &a, sizeof a);
  }

  /// Logically delete the record; its words count as wasted until GC.
  void free_clause(ClauseRef r) noexcept {
    MSROPM_SAT_ARENA_CHECK(!deleted(r), "double free of a clause record");
    data_[r] |= kDeletedBit;
    wasted_ += record_words(r);
  }

  /// Remove one occurrence of `l`, preserving the order of the remaining
  /// literals (preprocessor clauses are kept sorted). One word goes to waste.
  void remove_lit(ClauseRef r, Lit l) noexcept {
    Lit* ls = lits(r);
    const std::size_t n = size(r);
    for (std::size_t i = 0; i < n; ++i) {
      if (ls[i] == l) {
        for (std::size_t k = i + 1; k < n; ++k) ls[k - 1] = ls[k];
        data_[r] = (data_[r] & kFlagsMask) |
                   (static_cast<std::uint32_t>(n - 1) << kSizeShift);
        ++wasted_;
        return;
      }
    }
    assert(false && "remove_lit: literal not in clause");
  }

  /// Copy a live record into `to` (or chase the forwarding ref if some other
  /// holder already moved it) and return the new ref. Marks the old record
  /// relocated. Activity and flags travel with the clause; the scratch mark
  /// bit does not.
  [[nodiscard]] ClauseRef reloc(ClauseRef r, ClauseArena& to) {
    if ((data_[r] & kRelocatedBit) != 0) return data_[r + 1];
    MSROPM_SAT_ARENA_CHECK(!deleted(r), "relocating a deleted clause record");
    const bool is_learnt = learnt(r);
    const ClauseRef nr = to.alloc(lits(r), size(r), is_learnt);
    if (is_learnt) to.set_activity(nr, activity(r));
    data_[r] |= kRelocatedBit;
    data_[r + 1] = nr;  // activity slot / first literal becomes the forward ref
    return nr;
  }

  /// Words currently occupied by records (live + deleted, pre-GC).
  [[nodiscard]] std::size_t used_words() const noexcept { return data_.size(); }
  /// Words occupied by deleted records and shrunken-away literals.
  [[nodiscard]] std::size_t wasted_words() const noexcept { return wasted_; }
  /// Lifetime words handed out by alloc() (monotone; carried across GC by
  /// carry_alloc_stats_from so relocation does not count as new allocation).
  [[nodiscard]] std::size_t alloc_words() const noexcept { return alloc_words_; }

  /// Transfer the lifetime-allocation counter from the pre-GC arena: the
  /// reloc() copies this arena received are moves, not fresh allocations.
  void carry_alloc_stats_from(const ClauseArena& from) noexcept {
    alloc_words_ = from.alloc_words_;
  }

  void clear() noexcept {
    data_.clear();
    wasted_ = 0;
    alloc_words_ = 0;
  }

 private:
  static constexpr std::uint32_t kDeletedBit = 1u << 0;
  static constexpr std::uint32_t kLearntBit = 1u << 1;
  static constexpr std::uint32_t kRelocatedBit = 1u << 2;
  static constexpr std::uint32_t kMarkBit = 1u << 3;
  static constexpr std::uint32_t kSizeShift = 4;
  static constexpr std::uint32_t kFlagsMask = (1u << kSizeShift) - 1;
  static constexpr std::size_t kActivityWords = sizeof(double) / sizeof(std::uint32_t);

  static_assert(sizeof(Lit) == sizeof(std::uint32_t),
                "ClauseArena stores Lit objects directly in its word buffer");

  [[nodiscard]] std::size_t lits_offset(ClauseRef r) const noexcept {
    return r + 1 + (learnt(r) ? kActivityWords : 0);
  }
  [[nodiscard]] std::size_t record_words(ClauseRef r) const noexcept {
    return 1 + (learnt(r) ? kActivityWords : 0) + size(r);
  }

  void grow(std::size_t need) {
    const std::size_t want = data_.size() + need;
    if (want > data_.capacity()) {
      // Explicit doubling keeps arena growth at O(log total) allocations
      // regardless of the standard library's resize policy.
      std::size_t cap = data_.capacity() < 1024 ? 1024 : data_.capacity();
      while (cap < want) cap *= 2;
      data_.reserve(cap);
    }
    data_.resize(want);
  }

  std::vector<std::uint32_t> data_;
  std::size_t wasted_ = 0;
  std::size_t alloc_words_ = 0;
};

}  // namespace msropm::sat
