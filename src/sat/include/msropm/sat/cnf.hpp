#pragma once
// CNF formula representation and DIMACS-CNF I/O.
//
// The paper uses "a generic SAT solver" to compute the exact 4-colorings that
// serve as the accuracy baseline (Sec. 4). This module plus solver.hpp is
// that generic SAT solver, built from scratch.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace msropm::sat {

using Var = std::uint32_t;

/// Literal: variable with polarity, packed as 2*var + (negated ? 1 : 0).
class Lit {
 public:
  Lit() = default;
  Lit(Var v, bool negated) : x_(2 * v + (negated ? 1u : 0u)) {}

  [[nodiscard]] static Lit from_index(std::uint32_t idx) {
    Lit l;
    l.x_ = idx;
    return l;
  }

  [[nodiscard]] Var var() const noexcept { return x_ >> 1; }
  [[nodiscard]] bool negated() const noexcept { return (x_ & 1u) != 0; }
  [[nodiscard]] Lit operator~() const noexcept { return from_index(x_ ^ 1u); }
  [[nodiscard]] std::uint32_t index() const noexcept { return x_; }

  /// DIMACS integer: +v+1 for positive, -(v+1) for negative.
  [[nodiscard]] int to_dimacs() const noexcept {
    const int v = static_cast<int>(var()) + 1;
    return negated() ? -v : v;
  }

  friend bool operator==(Lit, Lit) = default;
  friend auto operator<=>(Lit a, Lit b) { return a.x_ <=> b.x_; }

 private:
  std::uint32_t x_ = 0;
};

/// Positive literal of variable v.
[[nodiscard]] inline Lit pos(Var v) { return Lit(v, false); }
/// Negative literal of variable v.
[[nodiscard]] inline Lit neg(Var v) { return Lit(v, true); }

using Clause = std::vector<Lit>;

/// A CNF formula: a clause list over num_vars variables.
class Cnf {
 public:
  Cnf() = default;
  explicit Cnf(std::size_t num_vars) : num_vars_(num_vars) {}

  /// Allocate a fresh variable, returning its id.
  Var new_var() { return static_cast<Var>(num_vars_++); }

  /// Add a clause; empty clauses are legal (formula trivially UNSAT).
  /// The rvalue overload moves the literal storage in (bulk producers like
  /// the DIMACS parser and the coloring encoder pass std::move and never
  /// copy a clause); braced-init-list calls bind to it too.
  void add_clause(const Clause& clause);
  void add_clause(Clause&& clause);
  void add_unit(Lit a) { add_clause({a}); }
  void add_binary(Lit a, Lit b) { add_clause({a, b}); }
  void add_ternary(Lit a, Lit b, Lit c) { add_clause({a, b, c}); }

  [[nodiscard]] std::size_t num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] std::size_t num_clauses() const noexcept { return clauses_.size(); }
  [[nodiscard]] const std::vector<Clause>& clauses() const noexcept { return clauses_; }

  /// Move the clause list out (leaves this Cnf with no clauses). Lets bulk
  /// consumers (the solver's presimplify path) avoid re-copying every clause.
  [[nodiscard]] std::vector<Clause> release_clauses() noexcept {
    return std::move(clauses_);
  }

  /// Check a full assignment (indexed by var, true/false) against all clauses.
  [[nodiscard]] bool satisfied_by(const std::vector<std::uint8_t>& assignment) const;

 private:
  std::size_t num_vars_ = 0;
  std::vector<Clause> clauses_;
};

/// DIMACS CNF ("p cnf V C" + clause lines terminated by 0). Readers accept
/// the conventional SATLIB `%` end-of-file marker (everything after it is
/// ignored) and validate the declared clause count against the clauses
/// actually read, throwing std::runtime_error on mismatch.
[[nodiscard]] Cnf read_dimacs_cnf(std::istream& in);
[[nodiscard]] Cnf read_dimacs_cnf_string(const std::string& content);
void write_dimacs_cnf(std::ostream& out, const Cnf& cnf);
[[nodiscard]] std::string write_dimacs_cnf_string(const Cnf& cnf);

}  // namespace msropm::sat
