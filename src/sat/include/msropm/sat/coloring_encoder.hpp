#pragma once
// K-coloring -> CNF encoding and the exact-coloring baseline used by the
// paper's accuracy metric ("Exact solutions of the problems are computed
// using a generic SAT solver, which serves as the baseline", Sec. 4).
//
// Encoding (direct encoding, one boolean x_{v,c} per node/color):
//   - at-least-one color per node:      (x_v0 | x_v1 | ... | x_v,K-1)
//   - at-most-one color per node:       (~x_vc | ~x_vc') for c < c'
//   - edge constraint per edge/color:   (~x_uc | ~x_vc)
// plus optional symmetry breaking that pins the colors of one maximal clique.

#include <optional>
#include <vector>

#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"
#include "msropm/sat/cnf.hpp"
#include "msropm/sat/solver.hpp"

namespace msropm::sat {

struct ColoringEncoding {
  Cnf cnf;
  std::size_t num_nodes = 0;
  unsigned num_colors = 0;

  /// Variable for "node v has color c".
  [[nodiscard]] Var var_of(graph::NodeId v, unsigned c) const {
    return static_cast<Var>(v * num_colors + c);
  }

  /// Decode a SAT model into a coloring (first set color wins; at-most-one
  /// clauses guarantee uniqueness in real models). Throws std::logic_error
  /// when some node has NO true color variable — such a model violates the
  /// at-least-one clauses, i.e. it is not a model of this encoding, and
  /// silently assigning color 0 would mask the solver bug as a
  /// plausible-looking (but invalid) coloring.
  [[nodiscard]] graph::Coloring decode(const std::vector<std::uint8_t>& model) const;
};

struct ColoringEncodeOptions {
  /// Greedily find a clique and pre-assign its colors (prunes the color
  /// permutation symmetry; sound because clique nodes must all differ).
  bool symmetry_breaking = true;
};

/// Build the CNF for "g is K-colorable".
[[nodiscard]] ColoringEncoding encode_coloring(const graph::Graph& g,
                                               unsigned num_colors,
                                               ColoringEncodeOptions options = {});

/// Default solver configuration for the exact baseline: clause-database
/// preprocessing on (the direct encoding's at-most-one ladders are blocked
/// clauses, so presimplify strips >20% of the clauses before search).
[[nodiscard]] SolverOptions exact_coloring_solver_options();

/// Solve for an exact proper K-coloring. nullopt when the graph is not
/// K-colorable (or the conflict limit was hit).
[[nodiscard]] std::optional<graph::Coloring> solve_exact_coloring(
    const graph::Graph& g, unsigned num_colors,
    ColoringEncodeOptions encode_options = {},
    SolverOptions solver_options = exact_coloring_solver_options());

/// Full outcome of an exact-coloring query, including the preprocessing and
/// search statistics (for benches and the dimacs_solver CLI).
struct ExactColoringOutcome {
  SolveResult result = SolveResult::kUnknown;
  std::optional<graph::Coloring> coloring;  ///< set when result == kSat
  SolverStats solver_stats;
  std::optional<PreprocessStats> preprocess_stats;  ///< set when presimplify ran
};

[[nodiscard]] ExactColoringOutcome solve_exact_coloring_detailed(
    const graph::Graph& g, unsigned num_colors,
    ColoringEncodeOptions encode_options = {},
    SolverOptions solver_options = exact_coloring_solver_options());

/// Chromatic number, nullopt when it exceeds max_k (every early return
/// respects the bound: an edgeless graph with max_k == 0 is nullopt). The
/// search is seeded at the greedy-clique lower bound, capped at a greedy
/// upper bound, and runs incrementally — one solver, one encoding, colors
/// switched off per K via assumptions (see incremental_coloring.hpp, where
/// chromatic_search exposes the knobs and statistics).
[[nodiscard]] std::optional<unsigned> chromatic_number(const graph::Graph& g,
                                                       unsigned max_k = 8);

/// Greedy maximal clique (by degree order); used for symmetry breaking and
/// as a chromatic-number lower bound.
[[nodiscard]] std::vector<graph::NodeId> greedy_clique(const graph::Graph& g);

}  // namespace msropm::sat
