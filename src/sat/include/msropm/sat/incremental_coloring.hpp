#pragma once
// Incremental assumption-based chromatic search.
//
// The chromatic-number sweep is the headline SAT workload of the paper's
// baseline: decide K-colorability for K = lb, lb+1, ... until SAT. The old
// implementation re-encoded and re-solved from scratch at every K, throwing
// away every learnt clause. IncrementalColoringSolver instead encodes ONE
// formula with the largest palette and switches colors off per query through
// per-color activation literals:
//
//   - the direct encoding (coloring_encoder.hpp) is built once for
//     max_colors colors;
//   - every color c in [min_colors, max_colors) gets a selector variable
//     s_c ("color c is enabled") and one activation clause per node,
//     (~x_{v,c} | s_c), i.e. x_{v,c} -> s_c;
//   - "is the graph k-colorable?" is then one incremental solver call under
//     the assumptions { s_c : c < k } ∪ { ~s_c : c >= k }: assuming ~s_c
//     unit-propagates every x_{v,c} to false, which disables color c without
//     touching the clause database.
//
// Because the formula never changes, the solver keeps its learnt clauses,
// variable activities and saved phases across the whole sweep (the
// multi-shot Solver contract) — the UNSAT rounds below the chromatic number
// prime the SAT round instead of being discarded. Selector variables are
// frozen through the preprocessor, so the tuned presimplify profile composes
// with the assumptions instead of throwing (the bug this subsystem fixes).
//
// Colors below min_colors can never be switched off and get neither a
// selector nor activation clauses: a caller that knows a clique lower bound
// (chromatic_search seeds at the greedy-clique size) pays zero activation
// overhead for the colors every query keeps enabled.

#include <cstddef>
#include <optional>
#include <vector>

#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"
#include "msropm/sat/coloring_encoder.hpp"
#include "msropm/sat/solver.hpp"
#include "msropm/util/stop_token.hpp"

namespace msropm::sat {

struct IncrementalColoringOptions {
  /// Colors below this bound are always enabled (no selector variable, no
  /// activation clauses). solve_k(k) requires min_colors <= k <= max_colors.
  unsigned min_colors = 1;
  /// Pin a greedy clique's colors (same knob as ColoringEncodeOptions).
  bool symmetry_breaking = true;
  /// Solver profile for the whole sweep. When presimplify is on, the
  /// selector variables are frozen automatically so assumptions stay sound.
  SolverOptions solver = exact_coloring_solver_options();
};

/// One encoding, one solver, many K queries. The graph must outlive this
/// object (it is consulted to verify decoded colorings).
class IncrementalColoringSolver {
 public:
  IncrementalColoringSolver(const graph::Graph& g, unsigned max_colors,
                            IncrementalColoringOptions options = {});

  /// Decide k-colorability (min_colors <= k <= max_colors) as one
  /// incremental solve under color-activation assumptions. kSat fills
  /// coloring() with a verified proper coloring using colors < k; kUnknown
  /// means the stop token fired or the per-call conflict limit was hit (the
  /// solver stays usable — call again). Throws std::invalid_argument for a
  /// k outside [min_colors, max_colors].
  [[nodiscard]] SolveResult solve_k(unsigned k);

  /// Proper coloring found by the last kSat solve_k call.
  [[nodiscard]] const graph::Coloring& coloring() const noexcept {
    return coloring_;
  }

  /// Cumulative solver statistics across every solve_k call — conflicts,
  /// learnt clauses (which persist between calls), propagations, ...
  [[nodiscard]] const SolverStats& stats() const noexcept;
  [[nodiscard]] const std::optional<PreprocessStats>& preprocess_stats()
      const noexcept;
  /// True when the last solve_k was interrupted by the stop token.
  [[nodiscard]] bool cancelled() const noexcept;
  /// True once the base formula (full palette) is refuted: every further
  /// solve_k is kUnsat, i.e. the graph is not even max_colors-colorable.
  [[nodiscard]] bool formula_unsat() const noexcept;
  /// Failed-assumption core of the last kUnsat solve_k (selector literals).
  [[nodiscard]] const std::vector<Lit>& failed_assumptions() const noexcept;

  [[nodiscard]] unsigned max_colors() const noexcept { return max_colors_; }
  [[nodiscard]] unsigned min_colors() const noexcept { return min_colors_; }
  [[nodiscard]] std::size_t solve_calls() const noexcept { return solve_calls_; }

 private:
  const graph::Graph* g_;
  unsigned max_colors_;
  unsigned min_colors_;
  ColoringEncoding enc_;
  std::vector<Var> selectors_;  // s_c for c in [min_colors_, max_colors_)
  std::vector<Lit> assumptions_;  // per-call scratch
  graph::Coloring coloring_;
  std::size_t solve_calls_ = 0;
  // optional<> only for deferred construction (the CNF must be built first);
  // engaged for the object's whole life after the constructor.
  std::optional<Solver> solver_;
};

/// Knobs for chromatic_search (chromatic_number uses the defaults).
struct ChromaticSearchOptions {
  /// false: fresh encoding + solver per K (the from-scratch baseline the
  /// equivalence tests and bench_chromatic compare against).
  bool incremental = true;
  bool symmetry_breaking = true;
  /// Tuned presimplify profile (exact_coloring_solver_options) when true,
  /// plain CDCL when false.
  bool presimplify = true;
  /// Per-K conflict budget (0 = unlimited); kUnknown aborts the search.
  std::uint64_t conflict_limit = 0;
  /// Per-solve resource budget, forwarded to every solver the sweep builds.
  /// A breach ends the search incomplete with `limit` set in the outcome.
  util::ResourceBudget budget = {};
  /// Cooperative cancellation, polled inside every solve.
  util::StopToken stop = {};
};

struct ChromaticSearchOutcome {
  /// The chromatic number; nullopt when it exceeds max_k or the search was
  /// cancelled (check `cancelled` to tell the two apart).
  std::optional<unsigned> chromatic;
  /// Proper witness coloring with *chromatic colors; empty otherwise.
  graph::Coloring coloring;
  /// Greedy-clique lower bound the sweep started at (0 for trivial graphs).
  unsigned lower_bound = 0;
  /// Greedy-coloring upper bound capping the sweep (and the encoded palette).
  unsigned upper_bound = 0;
  /// SAT queries actually issued (0 when the bounds decided alone).
  std::size_t solve_calls = 0;
  /// True when some solve returned kUnknown (stop token or conflict budget):
  /// `chromatic == nullopt && !incomplete` is then a PROOF that the
  /// chromatic number exceeds max_k; with incomplete set it proves nothing.
  bool incomplete = false;
  /// True when specifically the stop token ended the search.
  bool cancelled = false;
  /// Why the search went incomplete (kNone when it completed or only the
  /// legacy conflict_limit/representability caps applied): mirrors the
  /// interrupted solver's SolverStats::limit_reason.
  util::LimitReason limit = util::LimitReason::kNone;
  /// Solver statistics, summed over every solver the search constructed:
  /// the minimal-palette probe plus one multi-shot solver per 2-color chunk
  /// in incremental mode, or the per-K fresh solvers in from-scratch mode
  /// (arena_peak_words is the max, not the sum).
  SolverStats stats;
};

/// Chromatic number by SAT sweep, seeded at the greedy-clique lower bound
/// and capped at a greedy-coloring upper bound. Incremental by default.
[[nodiscard]] ChromaticSearchOutcome chromatic_search(
    const graph::Graph& g, unsigned max_k, ChromaticSearchOptions options = {});

}  // namespace msropm::sat
