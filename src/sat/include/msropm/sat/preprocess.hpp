#pragma once
// CNF preprocessing (pre-search simplification) for the CDCL solver.
//
// The preprocessor rewrites a Cnf into an equisatisfiable, smaller formula
// before search: unit propagation to fixpoint, pure-literal elimination,
// tautology and duplicate-clause removal, subsumption and self-subsuming
// resolution (occurrence lists + 64-bit clause signatures), blocked-clause
// elimination (which strips the at-most-one ladders of direct coloring
// encodings), and bounded variable elimination with clause- and
// literal-growth caps.
//
// The working clause database lives in a flat ClauseArena (arena.hpp): each
// clause is a [header | lits...] record addressed by ClauseRef, occurrence
// lists index a small POD side table, and no per-clause vector is ever
// allocated. The simplified output is again an arena (compacted variables,
// garbage-free — compact() doubles as the post-presimplify GC), which the
// solver adopts wholesale so preprocessor output moves into the search
// without re-allocating or copying any literal.
//
// Every clause or variable removal that is *not* model-preserving pushes an
// entry onto the Remapper's reconstruction stack (MiniSat/cryptominisat
// elimination-stack style). Replaying the stack in reverse turns any model of
// the simplified formula into a model of the original formula, so callers
// always see models in the original variable space.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "msropm/sat/arena.hpp"
#include "msropm/sat/cnf.hpp"
#include "msropm/util/resource_budget.hpp"
#include "msropm/util/stop_token.hpp"

namespace msropm::sat {

struct PreprocessOptions {
  bool unit_propagation = true;
  bool pure_literals = true;
  bool subsumption = true;
  bool self_subsumption = true;
  bool blocked_clauses = true;
  bool variable_elimination = true;
  /// Frozen variables (original variable space): assumption-safe. A frozen
  /// variable is never pure-literal-fixed, never BVE-eliminated, and never
  /// the blocking literal of an eliminated blocked clause — the three
  /// transformations whose model reconstruction may pick or flip a
  /// variable's value behind the solver's back. Unit propagation may still
  /// fix a frozen variable (the value is then IMPLIED by the formula, and
  /// Solver::solve(assumptions) checks assumptions against it). Freeze every
  /// variable you will later pass to solve(assumptions).
  std::vector<Var> frozen;
  /// BVE may add at most this many clauses beyond what it removes.
  std::size_t bve_clause_growth = 0;
  /// Skip BVE for variables with more total occurrences than this.
  std::size_t bve_max_occurrences = 24;
  /// Skip subsumption/BCE pivots whose occurrence list exceeds this length.
  std::size_t occurrence_scan_limit = 4096;
  /// Maximum simplification rounds (each round runs every enabled technique).
  std::size_t max_rounds = 12;
  /// Cooperative cancellation, polled between technique passes. Every pass
  /// leaves the formula equisatisfiable, so an interrupted run still returns
  /// a sound (just less simplified) result.
  util::StopToken stop = {};
  /// Resource budget, checked between technique passes like `stop`. Only
  /// max_memory_bytes applies here (the working arena, 4 bytes per word);
  /// a breach ends simplification early with stats.limit = kMemory and the
  /// usual sound partial result. Solver::presimplify forwards its own
  /// memory cap when this one is unset.
  util::ResourceBudget budget = {};
};

struct PreprocessStats {
  std::size_t original_vars = 0;
  std::size_t original_clauses = 0;
  std::size_t original_literals = 0;
  std::size_t simplified_vars = 0;
  std::size_t simplified_clauses = 0;
  std::size_t simplified_literals = 0;
  std::size_t unit_fixed = 0;         ///< vars fixed by unit propagation
  std::size_t pure_fixed = 0;         ///< vars fixed by pure-literal elimination
  std::size_t tautologies = 0;        ///< tautological clauses dropped at load
  std::size_t duplicate_clauses = 0;  ///< exact duplicate clauses dropped
  std::size_t subsumed = 0;           ///< clauses removed by subsumption
  std::size_t strengthened = 0;       ///< literals removed by self-subsumption
  std::size_t blocked = 0;            ///< clauses removed as blocked
  std::size_t eliminated_vars = 0;    ///< vars removed by BVE
  std::size_t rounds = 0;
  double seconds = 0.0;
  /// Why simplification stopped early (kNone when it ran to fixpoint or the
  /// round cap): kMemory for a budget breach, kDeadline/kNone for a stop
  /// trip, kInjected for a FaultInjector `pre` fire. The partial result is
  /// sound either way.
  util::LimitReason limit = util::LimitReason::kNone;

  /// Fraction of original clauses removed (0 when the input was empty).
  [[nodiscard]] double clause_reduction() const noexcept {
    if (original_clauses == 0) return 0.0;
    return 1.0 - static_cast<double>(simplified_clauses) /
                     static_cast<double>(original_clauses);
  }
};

/// Maps models of the simplified formula back to the original variable space.
///
/// Holds (a) the dense original-var -> simplified-var index map and (b) the
/// chronological stack of eliminations. reconstruct() replays the stack in
/// reverse, so each entry's clauses only mention variables whose final value
/// is already known when the entry is processed.
///
/// Entry clauses are stored in one flat literal pool (offset/length spans)
/// instead of per-entry vectors: on coloring encodings BCE alone pushes tens
/// of thousands of clauses here, and the pool turns those into zero
/// per-clause allocations.
class Remapper {
 public:
  static constexpr std::uint32_t kUnmapped = ~std::uint32_t{0};

  enum class Kind : std::uint8_t {
    kUnit,        ///< lit was a top-level unit: set it true
    kPure,        ///< lit was pure: set it true
    kBlocked,     ///< the entry's clause was blocked on lit: set lit true if unsat
    kEliminated,  ///< var(lit) was BVE-eliminated; clauses hold the lit side
  };

  /// What preprocessing did to an original variable — the fact the solver
  /// needs to decide whether (and how) an assumption on it is sound.
  enum class VarDisposition : std::uint8_t {
    kMapped,         ///< survives into the simplified formula (see map())
    kFixedImplied,   ///< fixed by unit propagation: value IMPLIED by the
                     ///< formula, so assumptions can be checked against it
    kFixedChoice,    ///< fixed by pure-literal elimination: a satisfiability-
                     ///< preserving CHOICE, not an implication (never happens
                     ///< to frozen variables)
    kEliminated,     ///< BVE-removed: reconstruction owns its value (never
                     ///< happens to frozen variables)
    kUnconstrained,  ///< no live occurrence: any value extends any model
  };

  Remapper() = default;
  explicit Remapper(std::size_t original_vars) : original_vars_(original_vars) {}

  [[nodiscard]] std::size_t original_num_vars() const noexcept {
    return original_vars_;
  }
  [[nodiscard]] std::size_t simplified_num_vars() const noexcept {
    return simplified_vars_;
  }

  /// Simplified index of an original variable; nullopt when the variable was
  /// fixed, eliminated, or unconstrained.
  [[nodiscard]] std::optional<Var> map(Var original) const;

  /// Original variable behind a simplified index (inverse of map()); used to
  /// translate failed-assumption cores back to the caller's space.
  [[nodiscard]] Var original_of(Var simplified) const {
    return inverse_[simplified];
  }

  [[nodiscard]] VarDisposition disposition(Var original) const {
    return original < dispositions_.size() ? dispositions_[original]
                                           : VarDisposition::kUnconstrained;
  }
  /// Fixed value of a kFixedImplied / kFixedChoice variable.
  [[nodiscard]] bool fixed_value(Var original) const {
    return fixed_value_[original] != 0;
  }
  /// True when the variable was in PreprocessOptions::frozen.
  [[nodiscard]] bool frozen(Var original) const {
    return original < frozen_.size() && frozen_[original] != 0;
  }

  /// Extend a model of the simplified formula to a model of the original
  /// formula. Unconstrained variables default to false. `overrides` pins
  /// original-space variables (assumptions on unconstrained frozen vars)
  /// BEFORE the elimination stack is replayed, so blocked/eliminated-clause
  /// repairs see the final values.
  [[nodiscard]] std::vector<std::uint8_t> reconstruct(
      const std::vector<std::uint8_t>& simplified_model,
      const std::vector<std::pair<Var, bool>>& overrides = {}) const;

  // Builder API (used by Preprocessor): push an entry, then attach the
  // clauses reconstruction needs via push_clause (they belong to the most
  // recently pushed entry).
  void push(Kind kind, Lit lit) {
    stack_.push_back(
        {kind, lit, static_cast<std::uint32_t>(spans_.size()), 0});
  }
  void push_clause(const Lit* lits, std::size_t n) {
    spans_.push_back({static_cast<std::uint32_t>(pool_.size()),
                      static_cast<std::uint32_t>(n)});
    pool_.insert(pool_.end(), lits, lits + n);
    ++stack_.back().clause_count;
  }
  void set_map(std::vector<std::uint32_t> map, std::size_t simplified_vars) {
    map_ = std::move(map);
    simplified_vars_ = simplified_vars;
    inverse_.assign(simplified_vars_, 0);
    for (Var v = 0; v < map_.size(); ++v) {
      if (map_[v] != kUnmapped) inverse_[map_[v]] = v;
    }
  }
  void set_var_info(std::vector<VarDisposition> dispositions,
                    std::vector<std::uint8_t> fixed_values,
                    std::vector<std::uint8_t> frozen) {
    dispositions_ = std::move(dispositions);
    fixed_value_ = std::move(fixed_values);
    frozen_ = std::move(frozen);
  }
  [[nodiscard]] std::size_t stack_size() const noexcept { return stack_.size(); }

 private:
  struct Entry {
    Kind kind = Kind::kUnit;
    Lit lit;
    std::uint32_t clause_begin = 0;  ///< first span index in spans_
    std::uint32_t clause_count = 0;
  };
  struct Span {
    std::uint32_t begin = 0;  ///< offset into pool_
    std::uint32_t len = 0;
  };

  std::size_t original_vars_ = 0;
  std::size_t simplified_vars_ = 0;
  std::vector<std::uint32_t> map_;  // original var -> simplified var / kUnmapped
  std::vector<std::uint32_t> inverse_;       // simplified var -> original var
  std::vector<VarDisposition> dispositions_; // per original var
  std::vector<std::uint8_t> fixed_value_;    // value for kFixed* vars
  std::vector<std::uint8_t> frozen_;         // PreprocessOptions::frozen bitmap
  std::vector<Entry> stack_;        // chronological; replayed in reverse
  std::vector<Span> spans_;         // per stored clause: slice of pool_
  std::vector<Lit> pool_;           // flat literal storage for entry clauses
};

struct PreprocessResult {
  /// Simplified formula over compacted variables: garbage-free arena plus
  /// the refs of its clauses in canonical (load) order. The solver adopts
  /// these wholesale; standalone users can materialize a Cnf via cnf().
  ClauseArena arena;
  std::vector<ClauseRef> clauses;
  std::size_t num_vars = 0;
  Remapper remapper;  ///< model reconstruction back to the original space
  PreprocessStats stats;
  bool unsat = false;  ///< preprocessing alone proved UNSAT

  /// Materialize the simplified formula as a Cnf (copies every clause; meant
  /// for tests and tools, not the solver fast path).
  [[nodiscard]] Cnf cnf() const;
};

/// Occurrence-list CNF simplifier. Single-use: construct, run() once.
class Preprocessor {
 public:
  explicit Preprocessor(const Cnf& cnf, PreprocessOptions options = {});

  [[nodiscard]] PreprocessResult run();

 private:
  /// POD side record per clause; the literals live in the arena. Occurrence
  /// lists hold indices into clauses_ (not refs) so signatures stay hot.
  struct PClause {
    ClauseRef ref = kNullClauseRef;
    std::uint64_t sig = 0;  // OR of 1 << (lit.index() % 64)
  };

  enum class Fixed : std::uint8_t { kUndef, kTrue, kFalse };

  void load(const Cnf& cnf);
  std::uint32_t add_clause_internal(const Clause& lits);
  void remove_clause(std::uint32_t ci);
  void strengthen_clause(std::uint32_t ci, Lit l);
  void enqueue_unit(Lit l);
  bool propagate_units();
  bool eliminate_pure_literals();
  bool subsumption_pass();
  bool blocked_clause_pass();
  bool variable_elimination_pass();
  bool try_eliminate_var(Var v);
  [[nodiscard]] bool resolvent(const PClause& a, const PClause& b, Lit pivot,
                               Clause& out) const;
  void compact(PreprocessResult& result);

  [[nodiscard]] bool dead(std::uint32_t ci) const noexcept {
    return arena_.deleted(clauses_[ci].ref);
  }
  [[nodiscard]] const Lit* clause_lits(std::uint32_t ci) const noexcept {
    return arena_.lits(clauses_[ci].ref);
  }
  [[nodiscard]] Lit* clause_lits(std::uint32_t ci) noexcept {
    return arena_.lits(clauses_[ci].ref);
  }
  [[nodiscard]] std::size_t clause_size(std::uint32_t ci) const noexcept {
    return arena_.size(clauses_[ci].ref);
  }

  [[nodiscard]] static std::uint64_t signature(const Lit* lits,
                                               std::size_t n) noexcept;
  [[nodiscard]] std::size_t live_occurrences(Lit l) const noexcept {
    return occ_count_[l.index()];
  }

  PreprocessOptions options_;
  std::size_t num_vars_ = 0;
  ClauseArena arena_;                            // working clause storage
  std::vector<PClause> clauses_;                 // POD side table
  std::vector<std::vector<std::uint32_t>> occ_;  // per literal, lazily cleaned
  std::vector<std::uint32_t> occ_count_;         // exact live count per literal
  std::vector<std::uint8_t> removed_;            // var left the formula
  std::vector<Fixed> fixed_;                     // value for unit/pure vars
  std::vector<std::uint8_t> frozen_;             // assumption-safe vars (bitmap)
  std::vector<std::uint8_t> choice_fixed_;       // fixed by pure (not implied)
  std::vector<Lit> unit_queue_;
  Clause scratch_;                               // reused normalization buffer
  std::size_t live_clauses_ = 0;
  bool unsat_ = false;
  bool ran_ = false;
  Remapper remapper_;
  PreprocessStats stats_;
};

/// Convenience wrapper: preprocess a formula with the given options.
[[nodiscard]] PreprocessResult preprocess(const Cnf& cnf,
                                          PreprocessOptions options = {});

}  // namespace msropm::sat
