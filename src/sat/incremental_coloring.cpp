#include "msropm/sat/incremental_coloring.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "msropm/obs/obs.hpp"

namespace msropm::sat {

namespace {

/// Greedy coloring in degree order: a cheap, always-valid upper bound on the
/// chromatic number (never worse than max_degree + 1). chromatic_search uses
/// it to cap the sweep palette, so the incremental encoding never carries
/// colors no query could need.
unsigned greedy_coloring_bound(const graph::Graph& g) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return 0;
  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&g](graph::NodeId a, graph::NodeId b) {
              return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b)
                                                : a < b;
            });
  constexpr std::uint32_t kUncolored = ~std::uint32_t{0};
  std::vector<std::uint32_t> color(n, kUncolored);
  std::vector<std::uint8_t> used;
  unsigned bound = 0;
  for (const graph::NodeId v : order) {
    used.assign(bound + 2, 0);
    for (const graph::NodeId u : g.neighbors(v)) {
      if (color[u] != kUncolored) used[color[u]] = 1;
    }
    std::uint32_t c = 0;
    while (used[c]) ++c;
    color[v] = c;
    bound = std::max(bound, static_cast<unsigned>(c) + 1);
  }
  return bound;
}

void accumulate_stats(SolverStats& into, const SolverStats& from) {
  into.decisions += from.decisions;
  into.propagations += from.propagations;
  into.conflicts += from.conflicts;
  into.restarts += from.restarts;
  into.learnt_clauses += from.learnt_clauses;
  into.removed_learnts += from.removed_learnts;
  into.blocker_skips += from.blocker_skips;
  into.binary_propagations += from.binary_propagations;
  into.heap_decisions += from.heap_decisions;
  into.gc_runs += from.gc_runs;
  into.gc_freed_words += from.gc_freed_words;
  into.arena_alloc_words += from.arena_alloc_words;
  into.arena_peak_words = std::max(into.arena_peak_words, from.arena_peak_words);
  if (from.limit_reason != util::LimitReason::kNone) {
    into.limit_reason = from.limit_reason;
  }
}

}  // namespace

IncrementalColoringSolver::IncrementalColoringSolver(
    const graph::Graph& g, unsigned max_colors,
    IncrementalColoringOptions options)
    : g_(&g), max_colors_(max_colors), min_colors_(1) {
  if (max_colors_ == 0 || max_colors_ > 255) {
    // graph::Color is uint8_t; a palette past 255 cannot even be decoded.
    throw std::invalid_argument(
        "IncrementalColoringSolver: max_colors must be in [1, 255]");
  }
  min_colors_ = std::min(std::max(options.min_colors, 1u), max_colors_);
  enc_ = encode_coloring(g, max_colors_,
                         {.symmetry_breaking = options.symmetry_breaking});
  // Selector variables and activation clauses x_{v,c} -> s_c for every
  // switchable color. Appending them after the node/color block keeps
  // ColoringEncoding::var_of (and decode) valid unchanged.
  selectors_.reserve(max_colors_ - min_colors_);
  for (unsigned c = min_colors_; c < max_colors_; ++c) {
    const Var s = enc_.cnf.new_var();
    selectors_.push_back(s);
    for (graph::NodeId v = 0; v < enc_.num_nodes; ++v) {
      enc_.cnf.add_binary(neg(enc_.var_of(v, c)), pos(s));
    }
  }
  SolverOptions solver_options = options.solver;
  if (solver_options.presimplify) {
    // Assumptions only ever mention selectors; freezing them is what makes
    // presimplify + assumptions compose (see Solver::solve contract).
    auto& frozen = solver_options.preprocess.frozen;
    frozen.insert(frozen.end(), selectors_.begin(), selectors_.end());
  }
  solver_.emplace(enc_.cnf, solver_options);
}

SolveResult IncrementalColoringSolver::solve_k(unsigned k) {
  if (k < min_colors_ || k > max_colors_) {
    throw std::invalid_argument(
        "IncrementalColoringSolver::solve_k: k = " + std::to_string(k) +
        " outside [" + std::to_string(min_colors_) + ", " +
        std::to_string(max_colors_) + "]");
  }
  // Pin every selector: s_c for enabled colors (keeps the search out of the
  // selector variables entirely), ~s_c for disabled ones (propagates every
  // x_{v,c} of a disabled color to false through the activation clauses).
  assumptions_.clear();
  assumptions_.reserve(selectors_.size());
  for (std::size_t i = 0; i < selectors_.size(); ++i) {
    const unsigned c = min_colors_ + static_cast<unsigned>(i);
    assumptions_.push_back(c < k ? pos(selectors_[i]) : neg(selectors_[i]));
  }
  // One span per incremental round: the nested sat.solve span carries the
  // search detail, this one pins which k the round queried.
  static const obs::MetricId t_solve_k = obs::timer("chromatic.solve_k");
  static const obs::MetricId c_rounds = obs::counter("chromatic.rounds");
  obs::Span span("chromatic.solve_k", t_solve_k);
  span.arg("k", k);
  const std::uint64_t conflicts_before = solver_->stats().conflicts;
  const SolveResult result = solver_->solve(assumptions_);
  span.arg("conflicts", solver_->stats().conflicts - conflicts_before);
  span.arg("result", static_cast<std::uint64_t>(result));
  if (obs::metrics_enabled()) obs::add(c_rounds, 1);
  ++solve_calls_;
  if (result == SolveResult::kSat) {
    coloring_ = enc_.decode(solver_->model());
    // Tripwire, not a hot path: one O(V + E) scan per SAT verdict catches a
    // broken activation encoding or model reconstruction before any caller
    // trusts the coloring.
    if (!graph::is_proper_coloring(*g_, coloring_, k)) {
      throw std::logic_error(
          "IncrementalColoringSolver::solve_k: decoded coloring is not a "
          "proper " +
          std::to_string(k) + "-coloring");
    }
  }
  return result;
}

const SolverStats& IncrementalColoringSolver::stats() const noexcept {
  return solver_->stats();
}

const std::optional<PreprocessStats>&
IncrementalColoringSolver::preprocess_stats() const noexcept {
  return solver_->preprocess_stats();
}

bool IncrementalColoringSolver::cancelled() const noexcept {
  return solver_->cancelled();
}

bool IncrementalColoringSolver::formula_unsat() const noexcept {
  return solver_->formula_unsat();
}

const std::vector<Lit>& IncrementalColoringSolver::failed_assumptions()
    const noexcept {
  return solver_->failed_assumptions();
}

ChromaticSearchOutcome chromatic_search(const graph::Graph& g, unsigned max_k,
                                        ChromaticSearchOptions options) {
  ChromaticSearchOutcome out;
  if (g.num_nodes() == 0) {
    out.chromatic = 0;  // the empty graph is 0-colorable under any bound
    return out;
  }
  if (g.num_edges() == 0) {
    out.lower_bound = 1;
    out.upper_bound = 1;
    // Edgeless needs exactly one color — which still has to fit the bound
    // (max_k == 0 means "no colors allowed" and must stay nullopt).
    if (max_k >= 1) {
      out.chromatic = 1;
      out.coloring.assign(g.num_nodes(), 0);
    }
    return out;
  }
  const auto clique = greedy_clique(g);
  const unsigned lb =
      std::max<unsigned>(2, static_cast<unsigned>(clique.size()));
  out.lower_bound = lb;
  // The clique members are pairwise adjacent, so chromatic >= lb is a
  // certificate: every K below the seed would be a wasted UNSAT solve (on
  // King's graphs, omega = 4 kills the K in {2, 3} rounds outright).
  if (lb > max_k) return out;
  if (lb > 255) {
    // graph::Color is uint8_t, so the palette cannot even be represented.
    // This is a search limitation, NOT a proof that chromatic > max_k.
    out.incomplete = true;
    return out;
  }
  const unsigned uncapped_ub = std::min(max_k, greedy_coloring_bound(g));
  const unsigned ub = std::min(uncapped_ub, 255u);
  out.upper_bound = ub;

  SolverOptions profile =
      options.presimplify ? exact_coloring_solver_options() : SolverOptions{};
  profile.presimplify = options.presimplify;
  profile.conflict_limit = options.conflict_limit;
  profile.budget = options.budget;
  profile.stop = options.stop;

  if (options.incremental) {
    // Phase 1: probe the clique seed on a MINIMAL palette (max_colors = lb,
    // so no selectors and no activation clauses at all). When the seed is
    // already chromatic — every clique-tight instance, including the paper's
    // King's grids — this is byte-for-byte the same encoding and solve the
    // from-scratch baseline performs, so the incremental mode costs nothing.
    {
      IncrementalColoringOptions probe_options;
      probe_options.min_colors = lb;
      probe_options.symmetry_breaking = options.symmetry_breaking;
      probe_options.solver = profile;
      IncrementalColoringSolver probe(g, lb, probe_options);
      const SolveResult result = probe.solve_k(lb);
      ++out.solve_calls;
      out.stats = probe.stats();
      if (result == SolveResult::kSat) {
        out.chromatic = lb;
        out.coloring = probe.coloring();
        return out;
      }
      if (result == SolveResult::kUnknown) {
        out.incomplete = true;
        out.cancelled = probe.cancelled();
        out.limit = probe.stats().limit_reason;
        return out;
      }
    }
    if (lb >= ub) return out;  // the probe exhausted the palette budget
    // Phase 2: sweep the remaining K range in palette CHUNKS of two colors.
    // Within a chunk one multi-shot solver shares its encoding, preprocessor
    // run and learnt clauses (the UNSAT round primes the SAT round); the
    // chunk bound keeps the encoded palette within one color of the round
    // being decided, so the formula never grows far past what the
    // from-scratch baseline would encode — an oversized palette measurably
    // derails the SAT round's search trajectory.
    unsigned k = lb + 1;
    while (k <= ub && !out.chromatic) {
      const unsigned chunk_max = std::min(ub, k + 1);
      IncrementalColoringOptions inc_options;
      inc_options.min_colors = k;
      inc_options.symmetry_breaking = options.symmetry_breaking;
      inc_options.solver = profile;
      IncrementalColoringSolver inc(g, chunk_max, inc_options);
      for (; k <= chunk_max; ++k) {
        const SolveResult result = inc.solve_k(k);
        ++out.solve_calls;
        if (result == SolveResult::kSat) {
          out.chromatic = k;
          out.coloring = inc.coloring();
          break;
        }
        if (result == SolveResult::kUnknown) {
          out.incomplete = true;
          out.cancelled = inc.cancelled();
          out.limit = inc.stats().limit_reason;
          break;
        }
        if (inc.formula_unsat()) {
          // Not even chunk_max-colorable: skip straight past the chunk.
          k = chunk_max + 1;
          break;
        }
      }
      accumulate_stats(out.stats, inc.stats());
      if (out.incomplete) break;
    }
  } else {
    ColoringEncodeOptions encode_options;
    encode_options.symmetry_breaking = options.symmetry_breaking;
    for (unsigned k = lb; k <= ub; ++k) {
      auto outcome =
          solve_exact_coloring_detailed(g, k, encode_options, profile);
      ++out.solve_calls;
      accumulate_stats(out.stats, outcome.solver_stats);
      if (outcome.result == SolveResult::kSat) {
        out.chromatic = k;
        out.coloring = std::move(*outcome.coloring);
        break;
      }
      if (outcome.result == SolveResult::kUnknown) {
        // kUnknown is either the stop token or the per-K conflict budget.
        out.incomplete = true;
        out.cancelled = options.stop.stop_requested();
        out.limit = outcome.solver_stats.limit_reason;
        break;
      }
    }
  }
  // When the uint8_t representability cap (not max_k or the greedy bound)
  // truncated the sweep, an exhausted search proves nothing about max_k.
  if (!out.chromatic && ub < uncapped_ub) out.incomplete = true;
  return out;
}

std::optional<unsigned> chromatic_number(const graph::Graph& g,
                                         unsigned max_k) {
  return chromatic_search(g, max_k).chromatic;
}

}  // namespace msropm::sat
