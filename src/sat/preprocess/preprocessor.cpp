#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "msropm/sat/preprocess.hpp"

namespace msropm::sat {

namespace {

constexpr std::uint32_t kNoClause = ~std::uint32_t{0};

/// Compact an occurrence list in place, dropping deleted clauses.
template <typename Pred>
void filter_list(std::vector<std::uint32_t>& list, Pred live) {
  list.erase(std::remove_if(list.begin(), list.end(),
                            [&](std::uint32_t ci) { return !live(ci); }),
             list.end());
}

}  // namespace

Preprocessor::Preprocessor(const Cnf& cnf, PreprocessOptions options)
    : options_(options), num_vars_(cnf.num_vars()) {
  occ_.resize(2 * num_vars_);
  occ_count_.assign(2 * num_vars_, 0);
  removed_.assign(num_vars_, 0);
  fixed_.assign(num_vars_, Fixed::kUndef);
  remapper_ = Remapper(num_vars_);
  stats_.original_vars = num_vars_;
  stats_.original_clauses = cnf.num_clauses();
  for (const Clause& c : cnf.clauses()) stats_.original_literals += c.size();
  load(cnf);
}

std::uint64_t Preprocessor::signature(const Clause& lits) noexcept {
  std::uint64_t sig = 0;
  for (Lit l : lits) sig |= std::uint64_t{1} << (l.index() % 64);
  return sig;
}

void Preprocessor::load(const Cnf& cnf) {
  // Exact duplicate detection via a flat open-addressing table keyed on an
  // FNV-1a hash of the literal sequence: one allocation for the whole load
  // instead of a node or bucket per clause.
  std::size_t table_bits = 4;
  while ((std::size_t{1} << table_bits) < 2 * (cnf.num_clauses() + 1)) {
    ++table_bits;
  }
  const std::size_t table_mask = (std::size_t{1} << table_bits) - 1;
  std::vector<std::uint32_t> table(table_mask + 1, kNoClause);
  clauses_.reserve(cnf.num_clauses());
  // Pre-size the occurrence lists so the 2V vectors grow once, not log-times.
  for (const Clause& raw : cnf.clauses()) {
    for (Lit l : raw) ++occ_count_[l.index()];
  }
  for (std::size_t i = 0; i < occ_.size(); ++i) occ_[i].reserve(occ_count_[i]);
  occ_count_.assign(occ_count_.size(), 0);
  for (const Clause& raw : cnf.clauses()) {
    Clause lits = raw;
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    bool tautology = false;
    for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
      if (lits[i].var() == lits[i + 1].var()) {
        tautology = true;
        break;
      }
    }
    if (tautology) {
      ++stats_.tautologies;
      continue;
    }
    if (lits.empty()) {
      unsat_ = true;
      return;
    }
    std::uint64_t hash = 1469598103934665603ull;
    for (Lit l : lits) {
      hash ^= l.index();
      hash *= 1099511628211ull;
    }
    std::size_t slot = static_cast<std::size_t>(hash) & table_mask;
    bool duplicate = false;
    while (table[slot] != kNoClause) {
      if (clauses_[table[slot]].lits == lits) {
        duplicate = true;
        break;
      }
      slot = (slot + 1) & table_mask;
    }
    if (duplicate) {
      ++stats_.duplicate_clauses;
      continue;
    }
    if (lits.size() == 1) enqueue_unit(lits[0]);
    table[slot] = add_clause_internal(std::move(lits));
  }
}

std::uint32_t Preprocessor::add_clause_internal(Clause lits) {
  const auto ci = static_cast<std::uint32_t>(clauses_.size());
  PClause pc;
  pc.sig = signature(lits);
  pc.lits = std::move(lits);
  for (Lit l : pc.lits) {
    occ_[l.index()].push_back(ci);
    ++occ_count_[l.index()];
  }
  clauses_.push_back(std::move(pc));
  ++live_clauses_;
  return ci;
}

void Preprocessor::remove_clause(std::uint32_t ci) {
  PClause& c = clauses_[ci];
  if (c.deleted) return;
  c.deleted = true;
  for (Lit l : c.lits) --occ_count_[l.index()];
  --live_clauses_;
}

void Preprocessor::strengthen_clause(std::uint32_t ci, Lit l) {
  PClause& c = clauses_[ci];
  auto it = std::find(c.lits.begin(), c.lits.end(), l);
  if (it == c.lits.end()) return;
  c.lits.erase(it);
  --occ_count_[l.index()];
  // Keep the occurrence vector exact: BVE and BCE read membership from it,
  // so a stale entry would let them resolve or block on an absent literal.
  auto& list = occ_[l.index()];
  const auto pos_it = std::find(list.begin(), list.end(), ci);
  if (pos_it != list.end()) list.erase(pos_it);
  c.sig = signature(c.lits);
  if (c.lits.empty()) {
    unsat_ = true;
    return;
  }
  if (c.lits.size() == 1) enqueue_unit(c.lits[0]);
}

void Preprocessor::enqueue_unit(Lit l) { unit_queue_.push_back(l); }

bool Preprocessor::propagate_units() {
  bool changed = false;
  while (!unit_queue_.empty() && !unsat_) {
    const Lit l = unit_queue_.back();
    unit_queue_.pop_back();
    const Var v = l.var();
    if (fixed_[v] != Fixed::kUndef) {
      const bool want_true = !l.negated();
      if ((fixed_[v] == Fixed::kTrue) != want_true) unsat_ = true;
      continue;
    }
    if (removed_[v]) continue;  // eliminated vars cannot re-enter the formula
    fixed_[v] = l.negated() ? Fixed::kFalse : Fixed::kTrue;
    removed_[v] = 1;
    remapper_.push({Remapper::Entry::Kind::kUnit, l, {}});
    ++stats_.unit_fixed;
    changed = true;
    // Clauses containing l are satisfied; clauses containing ~l shrink.
    // Detach both lists first: strengthen_clause edits occ_[(~l).index()].
    const std::vector<std::uint32_t> sat_list = std::move(occ_[l.index()]);
    const std::vector<std::uint32_t> str_list = std::move(occ_[(~l).index()]);
    occ_[l.index()].clear();
    occ_[(~l).index()].clear();
    for (std::uint32_t ci : sat_list) {
      if (!clauses_[ci].deleted) remove_clause(ci);
    }
    for (std::uint32_t ci : str_list) {
      if (!clauses_[ci].deleted) strengthen_clause(ci, ~l);
      if (unsat_) break;
    }
  }
  return changed;
}

bool Preprocessor::eliminate_pure_literals() {
  bool changed = false;
  bool again = true;
  while (again && !unsat_) {
    again = false;
    for (Var v = 0; v < num_vars_; ++v) {
      if (removed_[v]) continue;
      const Lit p = pos(v);
      const Lit n = neg(v);
      Lit pure;
      if (occ_count_[p.index()] > 0 && occ_count_[n.index()] == 0) {
        pure = p;
      } else if (occ_count_[n.index()] > 0 && occ_count_[p.index()] == 0) {
        pure = n;
      } else {
        continue;
      }
      removed_[v] = 1;
      fixed_[v] = pure.negated() ? Fixed::kFalse : Fixed::kTrue;
      remapper_.push({Remapper::Entry::Kind::kPure, pure, {}});
      ++stats_.pure_fixed;
      for (std::uint32_t ci : occ_[pure.index()]) {
        if (!clauses_[ci].deleted) remove_clause(ci);
      }
      occ_[pure.index()].clear();
      occ_[(~pure).index()].clear();
      changed = true;
      again = true;  // removals may expose new pure literals
    }
  }
  return changed;
}

bool Preprocessor::subsumption_pass() {
  bool changed = false;
  for (std::uint32_t ci = 0; ci < clauses_.size() && !unsat_; ++ci) {
    if (clauses_[ci].deleted) continue;
    // Forward subsumption: does ci subsume anything reachable through its
    // least-occurring literal? (Every superset of ci contains that literal.)
    if (options_.subsumption) {
      const Clause& base = clauses_[ci].lits;
      Lit pivot = base[0];
      for (Lit l : base) {
        if (occ_count_[l.index()] < occ_count_[pivot.index()]) pivot = l;
      }
      auto& list = occ_[pivot.index()];
      filter_list(list, [&](std::uint32_t k) { return !clauses_[k].deleted; });
      if (list.size() <= options_.occurrence_scan_limit) {
        const std::uint64_t sig = clauses_[ci].sig;
        for (std::uint32_t cj : list) {
          if (cj == ci) continue;
          PClause& other = clauses_[cj];
          if (other.deleted || other.lits.size() < base.size()) continue;
          if ((sig & ~other.sig) != 0) continue;
          if (std::includes(other.lits.begin(), other.lits.end(), base.begin(),
                            base.end())) {
            remove_clause(cj);
            ++stats_.subsumed;
            changed = true;
          }
        }
      }
    }
    // Self-subsuming resolution: if ci with one literal flipped subsumes
    // another clause, that clause can drop the flipped literal.
    if (options_.self_subsumption) {
      const Clause base = clauses_[ci].lits;  // copy: strengthening may move
      for (Lit l : base) {
        if (clauses_[ci].deleted) break;
        const Lit flipped = ~l;
        filter_list(occ_[flipped.index()],
                    [&](std::uint32_t k) { return !clauses_[k].deleted; });
        if (occ_[flipped.index()].size() > options_.occurrence_scan_limit) {
          continue;
        }
        std::uint64_t sig = 0;
        for (Lit b : base) {
          sig |= std::uint64_t{1} << ((b == l ? flipped : b).index() % 64);
        }
        // Copy: strengthening a candidate erases it from this very list.
        const std::vector<std::uint32_t> candidates = occ_[flipped.index()];
        for (std::uint32_t cj : candidates) {
          if (cj == ci) continue;
          PClause& other = clauses_[cj];
          if (other.deleted || other.lits.size() < base.size()) continue;
          if ((sig & ~other.sig) != 0) continue;
          // Check (base \ {l}) ∪ {~l} ⊆ other via a merge walk.
          bool subset = true;
          auto it = other.lits.begin();
          for (Lit b : base) {
            const Lit want = b == l ? flipped : b;
            while (it != other.lits.end() && *it < want) ++it;
            if (it == other.lits.end() || *it != want) {
              subset = false;
              break;
            }
          }
          if (!subset) continue;
          strengthen_clause(cj, flipped);
          ++stats_.strengthened;
          changed = true;
          if (unsat_) return changed;
        }
      }
    }
  }
  return changed;
}

bool Preprocessor::blocked_clause_pass() {
  bool changed = false;
  std::vector<std::uint8_t> marked(2 * num_vars_, 0);
  for (Var v = 0; v < num_vars_; ++v) {
    if (removed_[v]) continue;
    for (const Lit l : {pos(v), neg(v)}) {
      auto& mirror = occ_[(~l).index()];
      filter_list(mirror, [&](std::uint32_t k) { return !clauses_[k].deleted; });
      if (mirror.size() > options_.occurrence_scan_limit) continue;
      auto& list = occ_[l.index()];
      filter_list(list, [&](std::uint32_t k) { return !clauses_[k].deleted; });
      for (std::uint32_t ci : list) {
        PClause& c = clauses_[ci];
        if (c.deleted || c.lits.size() < 2) continue;
        for (Lit p : c.lits) marked[p.index()] = 1;
        bool blocked = true;
        for (std::uint32_t cj : mirror) {
          const PClause& d = clauses_[cj];
          if (d.deleted) continue;
          // Resolvent of c and d on l is tautological iff d contains the
          // negation of some other literal of c.
          bool tautological = false;
          for (Lit q : d.lits) {
            if (q != ~l && marked[(~q).index()]) {
              tautological = true;
              break;
            }
          }
          if (!tautological) {
            blocked = false;
            break;
          }
        }
        for (Lit p : c.lits) marked[p.index()] = 0;
        if (blocked) {
          remove_clause(ci);  // updates occurrence counts from c.lits first
          remapper_.push(
              {Remapper::Entry::Kind::kBlocked, l, {std::move(c.lits)}});
          ++stats_.blocked;
          changed = true;
        }
      }
    }
  }
  return changed;
}

bool Preprocessor::resolvent(const PClause& a, const PClause& b, Lit pivot,
                             Clause& out) const {
  // Merge a \ {pivot} with b \ {~pivot}; false when tautological.
  out.clear();
  for (Lit l : a.lits) {
    if (l != pivot) out.push_back(l);
  }
  for (Lit l : b.lits) {
    if (l != ~pivot) out.push_back(l);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (out[i].var() == out[i + 1].var()) return false;
  }
  return true;
}

bool Preprocessor::try_eliminate_var(Var v) {
  const Lit p = pos(v);
  const Lit n = neg(v);
  const std::size_t np = occ_count_[p.index()];
  const std::size_t nn = occ_count_[n.index()];
  // Single-polarity variables are the pure-literal pass's job; resolving
  // them away here would just duplicate that machinery.
  if (np == 0 || nn == 0) return false;
  if (np + nn > options_.bve_max_occurrences) return false;

  auto& pos_list = occ_[p.index()];
  auto& neg_list = occ_[n.index()];
  filter_list(pos_list, [&](std::uint32_t k) { return !clauses_[k].deleted; });
  filter_list(neg_list, [&](std::uint32_t k) { return !clauses_[k].deleted; });

  std::size_t original_literals = 0;
  for (std::uint32_t ci : pos_list) original_literals += clauses_[ci].lits.size();
  for (std::uint32_t ci : neg_list) original_literals += clauses_[ci].lits.size();

  // Gate on both clause growth and literal growth: eliminations that shrink
  // the clause count but inflate total literals slow propagation down.
  std::vector<Clause> resolvents;
  std::size_t resolvent_literals = 0;
  const std::size_t clause_budget = np + nn + options_.bve_clause_growth;
  Clause merged;
  for (std::uint32_t ai : pos_list) {
    for (std::uint32_t bi : neg_list) {
      if (!resolvent(clauses_[ai], clauses_[bi], p, merged)) continue;
      resolvent_literals += merged.size();
      if (resolvents.size() + 1 > clause_budget ||
          resolvent_literals > original_literals) {
        return false;
      }
      resolvents.push_back(merged);
    }
  }

  // Commit: store the positive side for model reconstruction, drop every
  // clause mentioning v, then add the resolvents.
  Remapper::Entry entry{Remapper::Entry::Kind::kEliminated, p, {}};
  entry.clauses.reserve(pos_list.size());
  for (std::uint32_t ci : pos_list) {
    remove_clause(ci);  // updates occurrence counts before the lits move out
    entry.clauses.push_back(std::move(clauses_[ci].lits));
  }
  remapper_.push(std::move(entry));
  for (std::uint32_t ci : neg_list) remove_clause(ci);
  occ_[p.index()].clear();
  occ_[n.index()].clear();
  removed_[v] = 1;
  ++stats_.eliminated_vars;

  for (Clause& r : resolvents) {
    if (r.empty()) {
      unsat_ = true;
      return true;
    }
    if (r.size() == 1) enqueue_unit(r[0]);
    add_clause_internal(std::move(r));
  }
  return true;
}

bool Preprocessor::variable_elimination_pass() {
  // Cheapest variables first: fewer occurrences mean fewer resolvents.
  std::vector<Var> order;
  order.reserve(num_vars_);
  for (Var v = 0; v < num_vars_; ++v) {
    if (!removed_[v]) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [this](Var a, Var b) {
    const std::size_t oa = occ_count_[pos(a).index()] + occ_count_[neg(a).index()];
    const std::size_t ob = occ_count_[pos(b).index()] + occ_count_[neg(b).index()];
    return oa != ob ? oa < ob : a < b;
  });
  bool changed = false;
  for (Var v : order) {
    if (unsat_) break;
    if (removed_[v]) continue;
    if (try_eliminate_var(v)) {
      changed = true;
      // Land resolvent units before the next elimination decision — but only
      // when unit propagation is part of the selected techniques; unit
      // resolvents are ordinary clauses otherwise.
      if (options_.unit_propagation) propagate_units();
    }
  }
  return changed;
}

void Preprocessor::compact(PreprocessResult& result) {
  std::vector<std::uint32_t> map(num_vars_, Remapper::kUnmapped);
  Var next = 0;
  for (Var v = 0; v < num_vars_; ++v) {
    if (removed_[v]) continue;
    if (occ_count_[pos(v).index()] + occ_count_[neg(v).index()] == 0) continue;
    map[v] = next++;
  }
  Cnf out(next);
  for (PClause& c : clauses_) {
    if (c.deleted) continue;
    // Rewrite in place and move: the map is monotone in the variable index,
    // so remapped clauses stay sorted and the solver's normalized fast path
    // can ingest them without another sort or copy.
    for (Lit& l : c.lits) l = Lit(map[l.var()], l.negated());
    stats_.simplified_literals += c.lits.size();
    out.add_clause(std::move(c.lits));
  }
  stats_.simplified_vars = next;
  stats_.simplified_clauses = out.num_clauses();
  remapper_.set_map(std::move(map), next);
  result.cnf = std::move(out);
}

PreprocessResult Preprocessor::run() {
  if (ran_) {
    throw std::logic_error("Preprocessor::run: single-use; construct anew");
  }
  ran_ = true;
  const auto t0 = std::chrono::steady_clock::now();
  PreprocessResult result;

  // Cancellation is polled between passes: every pass leaves the formula
  // equisatisfiable with a consistent Remapper stack, so stopping here is
  // always sound — the caller just gets a less simplified formula.
  const auto stopped = [this]() { return options_.stop.stop_requested(); };
  while (!unsat_ && stats_.rounds < options_.max_rounds && !stopped()) {
    ++stats_.rounds;
    bool changed = false;
    if (options_.unit_propagation) changed |= propagate_units();
    if (!unsat_ && options_.pure_literals && !stopped()) {
      changed |= eliminate_pure_literals();
    }
    // BCE first: on structured encodings it removes whole clause families
    // (e.g. at-most-one ladders), which shrinks every occurrence list the
    // quadratic subsumption and BVE scans walk afterwards.
    if (!unsat_ && options_.blocked_clauses && !stopped()) {
      changed |= blocked_clause_pass();
    }
    if (!unsat_ && (options_.subsumption || options_.self_subsumption) &&
        !stopped()) {
      changed |= subsumption_pass();
      if (options_.unit_propagation) changed |= propagate_units();
    }
    if (!unsat_ && options_.variable_elimination && !stopped()) {
      changed |= variable_elimination_pass();
      if (options_.unit_propagation) changed |= propagate_units();
    }
    if (!changed) break;
  }

  if (unsat_) {
    result.unsat = true;
    remapper_.set_map(std::vector<std::uint32_t>(num_vars_, Remapper::kUnmapped),
                      0);
    stats_.simplified_vars = 0;
    stats_.simplified_clauses = 0;
  } else {
    compact(result);
  }
  result.remapper = std::move(remapper_);
  stats_.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.stats = stats_;
  return result;
}

PreprocessResult preprocess(const Cnf& cnf, PreprocessOptions options) {
  Preprocessor pre(cnf, options);
  return pre.run();
}

}  // namespace msropm::sat
