#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "msropm/obs/obs.hpp"
#include "msropm/sat/preprocess.hpp"
#include "msropm/util/fault_injector.hpp"

namespace msropm::sat {

namespace {

constexpr std::uint32_t kNoClause = ~std::uint32_t{0};

// Phase timers and clauses-removed counters for the preprocessing passes,
// interned once. Counters mirror the PreprocessStats fields published at the
// end of run().
struct PreprocessMetrics {
  obs::MetricId t_run = obs::timer("sat.presimplify");
  obs::MetricId t_unit = obs::timer("pre.unit");
  obs::MetricId t_pure = obs::timer("pre.pure");
  obs::MetricId t_bce = obs::timer("pre.bce");
  obs::MetricId t_subsume = obs::timer("pre.subsume");
  obs::MetricId t_bve = obs::timer("pre.bve");
  obs::MetricId c_unit_fixed = obs::counter("pre.unit_fixed");
  obs::MetricId c_pure_fixed = obs::counter("pre.pure_fixed");
  obs::MetricId c_subsumed = obs::counter("pre.subsumed");
  obs::MetricId c_strengthened = obs::counter("pre.strengthened");
  obs::MetricId c_blocked = obs::counter("pre.blocked");
  obs::MetricId c_eliminated_vars = obs::counter("pre.eliminated_vars");
  obs::MetricId c_rounds = obs::counter("pre.rounds");
};

const PreprocessMetrics& pmx() {
  static const PreprocessMetrics m;
  return m;
}

/// Compact an occurrence list in place, dropping deleted clauses.
template <typename Pred>
void filter_list(std::vector<std::uint32_t>& list, Pred live) {
  list.erase(std::remove_if(list.begin(), list.end(),
                            [&](std::uint32_t ci) { return !live(ci); }),
             list.end());
}

}  // namespace

Cnf PreprocessResult::cnf() const {
  Cnf out(num_vars);
  Clause scratch;
  for (ClauseRef cr : clauses) {
    const Lit* lits = arena.lits(cr);
    scratch.assign(lits, lits + arena.size(cr));
    out.add_clause(scratch);
  }
  return out;
}

Preprocessor::Preprocessor(const Cnf& cnf, PreprocessOptions options)
    : options_(options), num_vars_(cnf.num_vars()) {
  occ_.resize(2 * num_vars_);
  occ_count_.assign(2 * num_vars_, 0);
  removed_.assign(num_vars_, 0);
  fixed_.assign(num_vars_, Fixed::kUndef);
  frozen_.assign(num_vars_, 0);
  for (const Var v : options_.frozen) {
    if (v < num_vars_) frozen_[v] = 1;
  }
  choice_fixed_.assign(num_vars_, 0);
  remapper_ = Remapper(num_vars_);
  stats_.original_vars = num_vars_;
  stats_.original_clauses = cnf.num_clauses();
  for (const Clause& c : cnf.clauses()) stats_.original_literals += c.size();
  load(cnf);
}

std::uint64_t Preprocessor::signature(const Lit* lits, std::size_t n) noexcept {
  std::uint64_t sig = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sig |= std::uint64_t{1} << (lits[i].index() % 64);
  }
  return sig;
}

void Preprocessor::load(const Cnf& cnf) {
  // Exact duplicate detection via a flat open-addressing table keyed on an
  // FNV-1a hash of the literal sequence: one allocation for the whole load
  // instead of a node or bucket per clause.
  std::size_t table_bits = 4;
  while ((std::size_t{1} << table_bits) < 2 * (cnf.num_clauses() + 1)) {
    ++table_bits;
  }
  const std::size_t table_mask = (std::size_t{1} << table_bits) - 1;
  std::vector<std::uint32_t> table(table_mask + 1, kNoClause);
  clauses_.reserve(cnf.num_clauses());
  std::size_t total_literals = 0;
  // Pre-size the occurrence lists so the 2V vectors grow once, not log-times.
  for (const Clause& raw : cnf.clauses()) {
    for (Lit l : raw) ++occ_count_[l.index()];
    total_literals += raw.size();
  }
  for (std::size_t i = 0; i < occ_.size(); ++i) occ_[i].reserve(occ_count_[i]);
  occ_count_.assign(occ_count_.size(), 0);
  arena_ = ClauseArena(total_literals + cnf.num_clauses());
  Clause& lits = scratch_;  // reused across clauses: zero per-clause vectors
  for (const Clause& raw : cnf.clauses()) {
    lits.assign(raw.begin(), raw.end());
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    bool tautology = false;
    for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
      if (lits[i].var() == lits[i + 1].var()) {
        tautology = true;
        break;
      }
    }
    if (tautology) {
      ++stats_.tautologies;
      continue;
    }
    if (lits.empty()) {
      unsat_ = true;
      return;
    }
    std::uint64_t hash = 1469598103934665603ull;
    for (Lit l : lits) {
      hash ^= l.index();
      hash *= 1099511628211ull;
    }
    std::size_t slot = static_cast<std::size_t>(hash) & table_mask;
    bool duplicate = false;
    while (table[slot] != kNoClause) {
      const std::uint32_t other = table[slot];
      if (clause_size(other) == lits.size() &&
          std::equal(lits.begin(), lits.end(), clause_lits(other))) {
        duplicate = true;
        break;
      }
      slot = (slot + 1) & table_mask;
    }
    if (duplicate) {
      ++stats_.duplicate_clauses;
      continue;
    }
    if (lits.size() == 1) enqueue_unit(lits[0]);
    table[slot] = add_clause_internal(lits);
  }
}

std::uint32_t Preprocessor::add_clause_internal(const Clause& lits) {
  const auto ci = static_cast<std::uint32_t>(clauses_.size());
  PClause pc;
  pc.ref = arena_.alloc(lits, /*learnt=*/false);
  pc.sig = signature(lits.data(), lits.size());
  for (Lit l : lits) {
    occ_[l.index()].push_back(ci);
    ++occ_count_[l.index()];
  }
  clauses_.push_back(pc);
  ++live_clauses_;
  return ci;
}

void Preprocessor::remove_clause(std::uint32_t ci) {
  if (dead(ci)) return;
  const Lit* lits = clause_lits(ci);
  const std::size_t n = clause_size(ci);
  for (std::size_t i = 0; i < n; ++i) --occ_count_[lits[i].index()];
  arena_.free_clause(clauses_[ci].ref);
  --live_clauses_;
}

void Preprocessor::strengthen_clause(std::uint32_t ci, Lit l) {
  const Lit* lits = clause_lits(ci);
  const std::size_t n = clause_size(ci);
  if (std::find(lits, lits + n, l) == lits + n) return;
  arena_.remove_lit(clauses_[ci].ref, l);
  --occ_count_[l.index()];
  // Keep the occurrence vector exact: BVE and BCE read membership from it,
  // so a stale entry would let them resolve or block on an absent literal.
  auto& list = occ_[l.index()];
  const auto pos_it = std::find(list.begin(), list.end(), ci);
  if (pos_it != list.end()) list.erase(pos_it);
  const std::size_t new_n = clause_size(ci);
  clauses_[ci].sig = signature(clause_lits(ci), new_n);
  if (new_n == 0) {
    unsat_ = true;
    return;
  }
  if (new_n == 1) enqueue_unit(clause_lits(ci)[0]);
}

void Preprocessor::enqueue_unit(Lit l) { unit_queue_.push_back(l); }

bool Preprocessor::propagate_units() {
  bool changed = false;
  while (!unit_queue_.empty() && !unsat_) {
    const Lit l = unit_queue_.back();
    unit_queue_.pop_back();
    const Var v = l.var();
    if (fixed_[v] != Fixed::kUndef) {
      const bool want_true = !l.negated();
      if ((fixed_[v] == Fixed::kTrue) != want_true) unsat_ = true;
      continue;
    }
    if (removed_[v]) continue;  // eliminated vars cannot re-enter the formula
    fixed_[v] = l.negated() ? Fixed::kFalse : Fixed::kTrue;
    removed_[v] = 1;
    remapper_.push(Remapper::Kind::kUnit, l);
    ++stats_.unit_fixed;
    changed = true;
    // Clauses containing l are satisfied; clauses containing ~l shrink.
    // Detach both lists first: strengthen_clause edits occ_[(~l).index()].
    const std::vector<std::uint32_t> sat_list = std::move(occ_[l.index()]);
    const std::vector<std::uint32_t> str_list = std::move(occ_[(~l).index()]);
    occ_[l.index()].clear();
    occ_[(~l).index()].clear();
    for (std::uint32_t ci : sat_list) {
      if (!dead(ci)) remove_clause(ci);
    }
    for (std::uint32_t ci : str_list) {
      if (!dead(ci)) strengthen_clause(ci, ~l);
      if (unsat_) break;
    }
  }
  return changed;
}

bool Preprocessor::eliminate_pure_literals() {
  bool changed = false;
  bool again = true;
  while (again && !unsat_) {
    again = false;
    for (Var v = 0; v < num_vars_; ++v) {
      if (removed_[v]) continue;
      // Pure-literal fixing is a CHOICE (satisfiability-preserving, not
      // implied), so it must never touch an assumption-safe variable: with
      // ~x assumed, "x is pure positive" does not make x settable to true.
      if (frozen_[v]) continue;
      const Lit p = pos(v);
      const Lit n = neg(v);
      Lit pure;
      if (occ_count_[p.index()] > 0 && occ_count_[n.index()] == 0) {
        pure = p;
      } else if (occ_count_[n.index()] > 0 && occ_count_[p.index()] == 0) {
        pure = n;
      } else {
        continue;
      }
      removed_[v] = 1;
      fixed_[v] = pure.negated() ? Fixed::kFalse : Fixed::kTrue;
      choice_fixed_[v] = 1;
      remapper_.push(Remapper::Kind::kPure, pure);
      ++stats_.pure_fixed;
      for (std::uint32_t ci : occ_[pure.index()]) {
        if (!dead(ci)) remove_clause(ci);
      }
      occ_[pure.index()].clear();
      occ_[(~pure).index()].clear();
      changed = true;
      again = true;  // removals may expose new pure literals
    }
  }
  return changed;
}

bool Preprocessor::subsumption_pass() {
  bool changed = false;
  Clause base;  // self-subsumption snapshot: strengthening edits in place
  for (std::uint32_t ci = 0; ci < clauses_.size() && !unsat_; ++ci) {
    if (dead(ci)) continue;
    // Forward subsumption: does ci subsume anything reachable through its
    // least-occurring literal? (Every superset of ci contains that literal.)
    if (options_.subsumption) {
      const Lit* base_lits = clause_lits(ci);
      const std::size_t base_n = clause_size(ci);
      Lit pivot = base_lits[0];
      for (std::size_t i = 0; i < base_n; ++i) {
        if (occ_count_[base_lits[i].index()] < occ_count_[pivot.index()]) {
          pivot = base_lits[i];
        }
      }
      auto& list = occ_[pivot.index()];
      filter_list(list, [&](std::uint32_t k) { return !dead(k); });
      if (list.size() <= options_.occurrence_scan_limit) {
        const std::uint64_t sig = clauses_[ci].sig;
        for (std::uint32_t cj : list) {
          if (cj == ci) continue;
          if (dead(cj) || clause_size(cj) < base_n) continue;
          if ((sig & ~clauses_[cj].sig) != 0) continue;
          const Lit* other = clause_lits(cj);
          if (std::includes(other, other + clause_size(cj), base_lits,
                            base_lits + base_n)) {
            remove_clause(cj);
            ++stats_.subsumed;
            changed = true;
          }
        }
      }
    }
    // Self-subsuming resolution: if ci with one literal flipped subsumes
    // another clause, that clause can drop the flipped literal.
    if (options_.self_subsumption) {
      base.assign(clause_lits(ci), clause_lits(ci) + clause_size(ci));
      for (Lit l : base) {
        if (dead(ci)) break;
        const Lit flipped = ~l;
        filter_list(occ_[flipped.index()],
                    [&](std::uint32_t k) { return !dead(k); });
        if (occ_[flipped.index()].size() > options_.occurrence_scan_limit) {
          continue;
        }
        std::uint64_t sig = 0;
        for (Lit b : base) {
          sig |= std::uint64_t{1} << ((b == l ? flipped : b).index() % 64);
        }
        // Copy: strengthening a candidate erases it from this very list.
        const std::vector<std::uint32_t> candidates = occ_[flipped.index()];
        for (std::uint32_t cj : candidates) {
          if (cj == ci) continue;
          if (dead(cj) || clause_size(cj) < base.size()) continue;
          if ((sig & ~clauses_[cj].sig) != 0) continue;
          // Check (base \ {l}) ∪ {~l} ⊆ other via a merge walk.
          bool subset = true;
          const Lit* other = clause_lits(cj);
          const Lit* other_end = other + clause_size(cj);
          const Lit* it = other;
          for (Lit b : base) {
            const Lit want = b == l ? flipped : b;
            while (it != other_end && *it < want) ++it;
            if (it == other_end || *it != want) {
              subset = false;
              break;
            }
          }
          if (!subset) continue;
          strengthen_clause(cj, flipped);
          ++stats_.strengthened;
          changed = true;
          if (unsat_) return changed;
        }
      }
    }
  }
  return changed;
}

bool Preprocessor::blocked_clause_pass() {
  bool changed = false;
  std::vector<std::uint8_t> marked(2 * num_vars_, 0);
  for (Var v = 0; v < num_vars_; ++v) {
    if (removed_[v]) continue;
    // Reconstruction of a blocked clause may flip its blocking literal, so a
    // frozen variable must never be one: the flip would override the
    // solver's (assumed) value after the fact.
    if (frozen_[v]) continue;
    for (const Lit l : {pos(v), neg(v)}) {
      auto& mirror = occ_[(~l).index()];
      filter_list(mirror, [&](std::uint32_t k) { return !dead(k); });
      if (mirror.size() > options_.occurrence_scan_limit) continue;
      auto& list = occ_[l.index()];
      filter_list(list, [&](std::uint32_t k) { return !dead(k); });
      for (std::uint32_t ci : list) {
        if (dead(ci) || clause_size(ci) < 2) continue;
        const Lit* c_lits = clause_lits(ci);
        const std::size_t c_n = clause_size(ci);
        for (std::size_t i = 0; i < c_n; ++i) marked[c_lits[i].index()] = 1;
        bool blocked = true;
        for (std::uint32_t cj : mirror) {
          if (dead(cj)) continue;
          // Resolvent of c and d on l is tautological iff d contains the
          // negation of some other literal of c.
          bool tautological = false;
          const Lit* d_lits = clause_lits(cj);
          const std::size_t d_n = clause_size(cj);
          for (std::size_t k = 0; k < d_n; ++k) {
            const Lit q = d_lits[k];
            if (q != ~l && marked[(~q).index()]) {
              tautological = true;
              break;
            }
          }
          if (!tautological) {
            blocked = false;
            break;
          }
        }
        for (std::size_t i = 0; i < c_n; ++i) marked[c_lits[i].index()] = 0;
        if (blocked) {
          remove_clause(ci);  // updates occurrence counts; lits stay readable
          remapper_.push(Remapper::Kind::kBlocked, l);
          remapper_.push_clause(c_lits, c_n);
          ++stats_.blocked;
          changed = true;
        }
      }
    }
  }
  return changed;
}

bool Preprocessor::resolvent(const PClause& a, const PClause& b, Lit pivot,
                             Clause& out) const {
  // Merge a \ {pivot} with b \ {~pivot}; false when tautological.
  out.clear();
  {
    const Lit* lits = arena_.lits(a.ref);
    const std::size_t n = arena_.size(a.ref);
    for (std::size_t i = 0; i < n; ++i) {
      if (lits[i] != pivot) out.push_back(lits[i]);
    }
  }
  {
    const Lit* lits = arena_.lits(b.ref);
    const std::size_t n = arena_.size(b.ref);
    for (std::size_t i = 0; i < n; ++i) {
      if (lits[i] != ~pivot) out.push_back(lits[i]);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (out[i].var() == out[i + 1].var()) return false;
  }
  return true;
}

bool Preprocessor::try_eliminate_var(Var v) {
  const Lit p = pos(v);
  const Lit n = neg(v);
  const std::size_t np = occ_count_[p.index()];
  const std::size_t nn = occ_count_[n.index()];
  // Single-polarity variables are the pure-literal pass's job; resolving
  // them away here would just duplicate that machinery.
  if (np == 0 || nn == 0) return false;
  // Frozen (assumption-safe) variables stay in the formula: BVE hands their
  // value to model reconstruction, which cannot honor assumptions.
  if (frozen_[v]) return false;
  if (np + nn > options_.bve_max_occurrences) return false;

  auto& pos_list = occ_[p.index()];
  auto& neg_list = occ_[n.index()];
  filter_list(pos_list, [&](std::uint32_t k) { return !dead(k); });
  filter_list(neg_list, [&](std::uint32_t k) { return !dead(k); });

  std::size_t original_literals = 0;
  for (std::uint32_t ci : pos_list) original_literals += clause_size(ci);
  for (std::uint32_t ci : neg_list) original_literals += clause_size(ci);

  // Gate on both clause growth and literal growth: eliminations that shrink
  // the clause count but inflate total literals slow propagation down.
  std::vector<Clause> resolvents;
  std::size_t resolvent_literals = 0;
  const std::size_t clause_budget = np + nn + options_.bve_clause_growth;
  Clause merged;
  for (std::uint32_t ai : pos_list) {
    for (std::uint32_t bi : neg_list) {
      if (!resolvent(clauses_[ai], clauses_[bi], p, merged)) continue;
      resolvent_literals += merged.size();
      if (resolvents.size() + 1 > clause_budget ||
          resolvent_literals > original_literals) {
        return false;
      }
      resolvents.push_back(merged);
    }
  }

  // Commit: store the positive side for model reconstruction, drop every
  // clause mentioning v, then add the resolvents.
  remapper_.push(Remapper::Kind::kEliminated, p);
  for (std::uint32_t ci : pos_list) {
    remove_clause(ci);  // updates occurrence counts; lits stay readable
    remapper_.push_clause(clause_lits(ci), clause_size(ci));
  }
  for (std::uint32_t ci : neg_list) remove_clause(ci);
  occ_[p.index()].clear();
  occ_[n.index()].clear();
  removed_[v] = 1;
  ++stats_.eliminated_vars;

  for (Clause& r : resolvents) {
    if (r.empty()) {
      unsat_ = true;
      return true;
    }
    if (r.size() == 1) enqueue_unit(r[0]);
    add_clause_internal(r);
  }
  return true;
}

bool Preprocessor::variable_elimination_pass() {
  // Cheapest variables first: fewer occurrences mean fewer resolvents.
  std::vector<Var> order;
  order.reserve(num_vars_);
  for (Var v = 0; v < num_vars_; ++v) {
    if (!removed_[v]) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [this](Var a, Var b) {
    const std::size_t oa = occ_count_[pos(a).index()] + occ_count_[neg(a).index()];
    const std::size_t ob = occ_count_[pos(b).index()] + occ_count_[neg(b).index()];
    return oa != ob ? oa < ob : a < b;
  });
  bool changed = false;
  for (Var v : order) {
    if (unsat_) break;
    if (removed_[v]) continue;
    if (try_eliminate_var(v)) {
      changed = true;
      // Land resolvent units before the next elimination decision — but only
      // when unit propagation is part of the selected techniques; unit
      // resolvents are ordinary clauses otherwise.
      if (options_.unit_propagation) propagate_units();
    }
  }
  return changed;
}

void Preprocessor::compact(PreprocessResult& result) {
  std::vector<std::uint32_t> map(num_vars_, Remapper::kUnmapped);
  Var next = 0;
  for (Var v = 0; v < num_vars_; ++v) {
    if (removed_[v]) continue;
    if (occ_count_[pos(v).index()] + occ_count_[neg(v).index()] == 0) continue;
    map[v] = next++;
  }
  // Rewrite live clauses into a fresh, garbage-free arena — this is the
  // post-presimplify GC: everything the techniques deleted or shrank away is
  // dropped here, and the solver adopts the compacted buffer as-is. The map
  // is monotone in the variable index, so remapped clauses stay sorted and
  // the solver can watch lits[0]/lits[1] without another sort.
  const std::size_t live_words =
      arena_.used_words() - arena_.wasted_words();
  ClauseArena out(live_words);
  result.clauses.reserve(live_clauses_);
  for (std::uint32_t ci = 0; ci < clauses_.size(); ++ci) {
    if (dead(ci)) continue;
    Lit* lits = clause_lits(ci);
    const std::size_t n = clause_size(ci);
    for (std::size_t i = 0; i < n; ++i) {
      lits[i] = Lit(map[lits[i].var()], lits[i].negated());
    }
    stats_.simplified_literals += n;
    result.clauses.push_back(out.alloc(lits, n, /*learnt=*/false));
  }
  stats_.simplified_vars = next;
  stats_.simplified_clauses = result.clauses.size();
  // Per-variable disposition: what the solver needs to judge assumptions.
  std::vector<Remapper::VarDisposition> dispositions(num_vars_);
  std::vector<std::uint8_t> fixed_values(num_vars_, 0);
  for (Var v = 0; v < num_vars_; ++v) {
    if (map[v] != Remapper::kUnmapped) {
      dispositions[v] = Remapper::VarDisposition::kMapped;
    } else if (fixed_[v] != Fixed::kUndef) {
      dispositions[v] = choice_fixed_[v]
                            ? Remapper::VarDisposition::kFixedChoice
                            : Remapper::VarDisposition::kFixedImplied;
      fixed_values[v] = fixed_[v] == Fixed::kTrue ? 1 : 0;
    } else if (removed_[v]) {
      dispositions[v] = Remapper::VarDisposition::kEliminated;
    } else {
      dispositions[v] = Remapper::VarDisposition::kUnconstrained;
    }
  }
  remapper_.set_var_info(std::move(dispositions), std::move(fixed_values),
                         frozen_);
  remapper_.set_map(std::move(map), next);
  result.arena = std::move(out);
  result.num_vars = next;
}

PreprocessResult Preprocessor::run() {
  if (ran_) {
    throw std::logic_error("Preprocessor::run: single-use; construct anew");
  }
  ran_ = true;
  const auto t0 = std::chrono::steady_clock::now();
  PreprocessResult result;
  obs::Span run_span("sat.presimplify", pmx().t_run);

  // Cancellation, the memory budget, and the `pre` fault site are all polled
  // between passes: every pass leaves the formula equisatisfiable with a
  // consistent Remapper stack, so stopping here is always sound — the caller
  // just gets a less simplified formula, with the cause in stats_.limit.
  const auto stopped = [this]() {
    if (stats_.limit != util::LimitReason::kNone) return true;
    if (options_.stop.stop_requested()) {
      stats_.limit = options_.stop.deadline_expired()
                         ? util::LimitReason::kDeadline
                         : util::LimitReason::kNone;
      return true;
    }
    if (options_.budget.max_memory_bytes != 0 &&
        static_cast<std::uint64_t>(arena_.used_words()) * 4 >
            options_.budget.max_memory_bytes) {
      stats_.limit = util::LimitReason::kMemory;
      return true;
    }
    if (util::fault::fire(util::FaultSite::kPreprocessPass)) {
      stats_.limit = util::LimitReason::kInjected;
      return true;
    }
    return false;
  };
  while (!unsat_ && stats_.rounds < options_.max_rounds && !stopped()) {
    ++stats_.rounds;
    bool changed = false;
    if (options_.unit_propagation) {
      obs::Span span("pre.unit", pmx().t_unit);
      const std::size_t before = stats_.unit_fixed;
      changed |= propagate_units();
      span.arg("fixed", stats_.unit_fixed - before);
    }
    if (!unsat_ && options_.pure_literals && !stopped()) {
      obs::Span span("pre.pure", pmx().t_pure);
      const std::size_t before = stats_.pure_fixed;
      changed |= eliminate_pure_literals();
      span.arg("fixed", stats_.pure_fixed - before);
    }
    // BCE first: on structured encodings it removes whole clause families
    // (e.g. at-most-one ladders), which shrinks every occurrence list the
    // quadratic subsumption and BVE scans walk afterwards.
    if (!unsat_ && options_.blocked_clauses && !stopped()) {
      obs::Span span("pre.bce", pmx().t_bce);
      const std::size_t before = stats_.blocked;
      changed |= blocked_clause_pass();
      span.arg("blocked", stats_.blocked - before);
    }
    if (!unsat_ && (options_.subsumption || options_.self_subsumption) &&
        !stopped()) {
      obs::Span span("pre.subsume", pmx().t_subsume);
      const std::size_t before_sub = stats_.subsumed;
      const std::size_t before_str = stats_.strengthened;
      changed |= subsumption_pass();
      if (options_.unit_propagation) changed |= propagate_units();
      span.arg("subsumed", stats_.subsumed - before_sub);
      span.arg("strengthened", stats_.strengthened - before_str);
    }
    if (!unsat_ && options_.variable_elimination && !stopped()) {
      obs::Span span("pre.bve", pmx().t_bve);
      const std::size_t before = stats_.eliminated_vars;
      changed |= variable_elimination_pass();
      if (options_.unit_propagation) changed |= propagate_units();
      span.arg("eliminated", stats_.eliminated_vars - before);
    }
    if (!changed) break;
  }
  run_span.arg("rounds", stats_.rounds);

  if (unsat_) {
    result.unsat = true;
    remapper_.set_map(std::vector<std::uint32_t>(num_vars_, Remapper::kUnmapped),
                      0);
    stats_.simplified_vars = 0;
    stats_.simplified_clauses = 0;
  } else {
    compact(result);
  }
  result.remapper = std::move(remapper_);
  stats_.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.stats = stats_;
  if (obs::metrics_enabled()) {
    const PreprocessMetrics& m = pmx();
    obs::add(m.c_unit_fixed, stats_.unit_fixed);
    obs::add(m.c_pure_fixed, stats_.pure_fixed);
    obs::add(m.c_subsumed, stats_.subsumed);
    obs::add(m.c_strengthened, stats_.strengthened);
    obs::add(m.c_blocked, stats_.blocked);
    obs::add(m.c_eliminated_vars, stats_.eliminated_vars);
    obs::add(m.c_rounds, stats_.rounds);
  }
  return result;
}

PreprocessResult preprocess(const Cnf& cnf, PreprocessOptions options) {
  Preprocessor pre(cnf, options);
  return pre.run();
}

}  // namespace msropm::sat
