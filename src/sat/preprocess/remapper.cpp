#include <stdexcept>

#include "msropm/sat/preprocess.hpp"

namespace msropm::sat {

namespace {

[[nodiscard]] bool lit_true(const std::vector<std::uint8_t>& model, Lit l) {
  return (model[l.var()] != 0) != l.negated();
}

[[nodiscard]] bool clause_satisfied(const std::vector<std::uint8_t>& model,
                                    const Lit* lits, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (lit_true(model, lits[i])) return true;
  }
  return false;
}

/// True when some literal other than `skip` satisfies the clause.
[[nodiscard]] bool satisfied_without(const std::vector<std::uint8_t>& model,
                                     const Lit* lits, std::size_t n, Lit skip) {
  for (std::size_t i = 0; i < n; ++i) {
    if (lits[i] != skip && lit_true(model, lits[i])) return true;
  }
  return false;
}

}  // namespace

std::optional<Var> Remapper::map(Var original) const {
  if (original >= map_.size()) return std::nullopt;
  const std::uint32_t m = map_[original];
  if (m == kUnmapped) return std::nullopt;
  return static_cast<Var>(m);
}

std::vector<std::uint8_t> Remapper::reconstruct(
    const std::vector<std::uint8_t>& simplified_model,
    const std::vector<std::pair<Var, bool>>& overrides) const {
  if (simplified_model.size() != simplified_vars_) {
    throw std::invalid_argument(
        "Remapper::reconstruct: model size does not match simplified formula");
  }
  std::vector<std::uint8_t> full(original_vars_, 0);
  for (Var v = 0; v < map_.size(); ++v) {
    if (map_[v] != kUnmapped) full[v] = simplified_model[map_[v]];
  }
  // Overrides pin assumption values of variables the simplified formula no
  // longer mentions (unconstrained frozen vars). They must land before the
  // stack replay so blocked/eliminated-clause repairs read the final values.
  for (const auto& [v, value] : overrides) {
    if (v < full.size()) full[v] = value ? 1 : 0;
  }
  // Replay eliminations newest-first. Each entry's clauses only mention
  // variables that were still in the formula when the entry was pushed, and
  // those all received their final values either from the solver model or
  // from a later (already replayed) entry. Entry clauses are (begin, len)
  // spans over the shared literal pool.
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    const Entry& e = *it;
    switch (e.kind) {
      case Kind::kUnit:
      case Kind::kPure:
        full[e.lit.var()] = e.lit.negated() ? 0 : 1;
        break;
      case Kind::kBlocked: {
        // Blocked clause: all resolvents on e.lit were tautological, so
        // making e.lit true cannot unsatisfy any clause that was still alive.
        const Span& s = spans_[e.clause_begin];
        if (!clause_satisfied(full, pool_.data() + s.begin, s.len)) {
          full[e.lit.var()] = e.lit.negated() ? 0 : 1;
        }
        break;
      }
      case Kind::kEliminated: {
        // BVE: clauses on the e.lit side were stored. Default the variable
        // to falsify e.lit (satisfying the other side); if that leaves one
        // of the stored clauses unsatisfied, flip it — resolvent
        // satisfaction guarantees the other side then holds on its own.
        full[e.lit.var()] = e.lit.negated() ? 1 : 0;
        for (std::uint32_t k = 0; k < e.clause_count; ++k) {
          const Span& s = spans_[e.clause_begin + k];
          if (!satisfied_without(full, pool_.data() + s.begin, s.len, e.lit)) {
            full[e.lit.var()] = e.lit.negated() ? 0 : 1;
            break;
          }
        }
        break;
      }
    }
  }
  return full;
}

}  // namespace msropm::sat
