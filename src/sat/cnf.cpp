#include "msropm/sat/cnf.hpp"

#include <sstream>
#include <stdexcept>

#include "msropm/util/strings.hpp"

namespace msropm::sat {

void Cnf::add_clause(const Clause& clause) { add_clause(Clause(clause)); }

void Cnf::add_clause(Clause&& clause) {
  for (Lit l : clause) {
    if (l.var() >= num_vars_) {
      throw std::invalid_argument("Cnf::add_clause: literal var out of range");
    }
  }
  clauses_.push_back(std::move(clause));
}

bool Cnf::satisfied_by(const std::vector<std::uint8_t>& assignment) const {
  if (assignment.size() != num_vars_) {
    throw std::invalid_argument("Cnf::satisfied_by: assignment size mismatch");
  }
  for (const Clause& c : clauses_) {
    bool sat = false;
    for (Lit l : c) {
      const bool value = assignment[l.var()] != 0;
      if (value != l.negated()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

Cnf read_dimacs_cnf(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  bool have_header = false;
  bool eof_marker = false;
  std::size_t declared_vars = 0;
  std::size_t declared_clauses = 0;
  Cnf cnf;
  Clause current;
  while (!eof_marker && std::getline(in, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == 'c') continue;
    const auto tokens = util::split_ws(trimmed);
    if (tokens[0] == "p") {
      if (have_header || tokens.size() != 4 || tokens[1] != "cnf") {
        throw std::runtime_error("DIMACS CNF: bad problem line at line " +
                                 std::to_string(line_no));
      }
      const auto v = util::parse_int(tokens[2]);
      const auto c = util::parse_int(tokens[3]);
      if (!v || !c || *v < 0 || *c < 0) {
        throw std::runtime_error("DIMACS CNF: bad counts at line " +
                                 std::to_string(line_no));
      }
      declared_vars = static_cast<std::size_t>(*v);
      declared_clauses = static_cast<std::size_t>(*c);
      cnf = Cnf(declared_vars);
      have_header = true;
      continue;
    }
    if (!have_header) {
      throw std::runtime_error("DIMACS CNF: clause before header at line " +
                               std::to_string(line_no));
    }
    for (const auto& tok : tokens) {
      if (tok == "%") {
        // Conventional SATLIB end-of-file marker: stop parsing and ignore
        // whatever follows (typically a stray "0" line).
        eof_marker = true;
        break;
      }
      const auto value = util::parse_int(tok);
      if (!value) {
        throw std::runtime_error("DIMACS CNF: bad literal at line " +
                                 std::to_string(line_no));
      }
      if (*value == 0) {
        cnf.add_clause(std::move(current));
        current.clear();
      } else {
        const auto v = static_cast<std::size_t>(std::llabs(*value)) - 1;
        if (v >= declared_vars) {
          throw std::runtime_error("DIMACS CNF: variable out of range at line " +
                                   std::to_string(line_no));
        }
        current.push_back(Lit(static_cast<Var>(v), *value < 0));
      }
    }
  }
  if (!have_header) throw std::runtime_error("DIMACS CNF: missing header");
  if (!current.empty()) {
    throw std::runtime_error("DIMACS CNF: unterminated final clause");
  }
  if (cnf.num_clauses() != declared_clauses) {
    throw std::runtime_error(
        "DIMACS CNF: header declares " + std::to_string(declared_clauses) +
        " clauses but " + std::to_string(cnf.num_clauses()) + " were read");
  }
  return cnf;
}

Cnf read_dimacs_cnf_string(const std::string& content) {
  std::istringstream in(content);
  return read_dimacs_cnf(in);
}

void write_dimacs_cnf(std::ostream& out, const Cnf& cnf) {
  out << "p cnf " << cnf.num_vars() << " " << cnf.num_clauses() << "\n";
  for (const Clause& c : cnf.clauses()) {
    for (Lit l : c) out << l.to_dimacs() << " ";
    out << "0\n";
  }
}

std::string write_dimacs_cnf_string(const Cnf& cnf) {
  std::ostringstream out;
  write_dimacs_cnf(out, cnf);
  return out.str();
}

}  // namespace msropm::sat
