#include "msropm/sat/coloring_encoder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

namespace msropm::sat {

graph::Coloring ColoringEncoding::decode(
    const std::vector<std::uint8_t>& model) const {
  graph::Coloring colors(num_nodes, 0);
  for (graph::NodeId v = 0; v < num_nodes; ++v) {
    bool found = false;
    for (unsigned c = 0; c < num_colors; ++c) {
      if (model.at(var_of(v, c))) {
        colors[v] = static_cast<graph::Color>(c);
        found = true;
        break;
      }
    }
    // Every model of the encoding satisfies the node's at-least-one clause,
    // so a node with no true color variable means the model is not a model
    // of this encoding (solver or plumbing bug). Assigning color 0 here, as
    // this used to do, would mask that as a plausible-looking coloring.
    if (!found) {
      throw std::logic_error(
          "ColoringEncoding::decode: no color variable true for node " +
          std::to_string(v) + " — model does not satisfy the encoding");
    }
  }
  return colors;
}

std::vector<graph::NodeId> greedy_clique(const graph::Graph& g) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return {};
  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&g](graph::NodeId a, graph::NodeId b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b) : a < b;
  });
  std::vector<graph::NodeId> clique;
  for (graph::NodeId v : order) {
    const bool compatible = std::all_of(
        clique.begin(), clique.end(),
        [&](graph::NodeId u) { return g.has_edge(u, v); });
    if (compatible) clique.push_back(v);
  }
  std::sort(clique.begin(), clique.end());
  return clique;
}

ColoringEncoding encode_coloring(const graph::Graph& g, unsigned num_colors,
                                 ColoringEncodeOptions options) {
  ColoringEncoding enc;
  enc.num_nodes = g.num_nodes();
  enc.num_colors = num_colors;
  enc.cnf = Cnf(g.num_nodes() * num_colors);

  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    Clause at_least_one;
    at_least_one.reserve(num_colors);
    for (unsigned c = 0; c < num_colors; ++c) {
      at_least_one.push_back(pos(enc.var_of(v, c)));
    }
    enc.cnf.add_clause(std::move(at_least_one));
    for (unsigned c1 = 0; c1 < num_colors; ++c1) {
      for (unsigned c2 = c1 + 1; c2 < num_colors; ++c2) {
        enc.cnf.add_binary(neg(enc.var_of(v, c1)), neg(enc.var_of(v, c2)));
      }
    }
  }
  for (const graph::Edge& e : g.edges()) {
    for (unsigned c = 0; c < num_colors; ++c) {
      enc.cnf.add_binary(neg(enc.var_of(e.u, c)), neg(enc.var_of(e.v, c)));
    }
  }
  if (options.symmetry_breaking) {
    const auto clique = greedy_clique(g);
    const auto fixable = std::min<std::size_t>(clique.size(), num_colors);
    for (std::size_t i = 0; i < fixable; ++i) {
      enc.cnf.add_unit(pos(enc.var_of(clique[i], static_cast<unsigned>(i))));
    }
  }
  return enc;
}

SolverOptions exact_coloring_solver_options() {
  SolverOptions options;
  options.presimplify = true;
  // Profile tuned for direct coloring encodings: unit propagation absorbs the
  // symmetry-breaking clique, and BCE strips the at-most-one ladders (>25% of
  // the clauses). Subsumption and BVE find almost nothing on these instances
  // but cost several formula passes, so they stay off in this profile.
  options.preprocess.subsumption = false;
  options.preprocess.self_subsumption = false;
  options.preprocess.variable_elimination = false;
  options.preprocess.max_rounds = 2;
  return options;
}

std::optional<graph::Coloring> solve_exact_coloring(
    const graph::Graph& g, unsigned num_colors,
    ColoringEncodeOptions encode_options, SolverOptions solver_options) {
  auto outcome = solve_exact_coloring_detailed(g, num_colors, encode_options,
                                               solver_options);
  return std::move(outcome.coloring);
}

ExactColoringOutcome solve_exact_coloring_detailed(
    const graph::Graph& g, unsigned num_colors,
    ColoringEncodeOptions encode_options, SolverOptions solver_options) {
  const ColoringEncoding enc = encode_coloring(g, num_colors, encode_options);
  Solver solver(enc.cnf, solver_options);
  ExactColoringOutcome outcome;
  outcome.result = solver.solve();
  outcome.solver_stats = solver.stats();
  outcome.preprocess_stats = solver.preprocess_stats();
  if (outcome.result == SolveResult::kSat) {
    // model() is already reconstructed into the original encoding space.
    outcome.coloring = enc.decode(solver.model());
  }
  return outcome;
}

// chromatic_number lives in incremental_coloring.cpp: it is implemented on
// top of the incremental assumption-based sweep (see chromatic_search).

}  // namespace msropm::sat
