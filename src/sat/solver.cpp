#include "msropm/sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "msropm/obs/obs.hpp"
#include "msropm/util/fault_injector.hpp"

namespace msropm::sat {

using util::FaultSite;
using util::LimitReason;

namespace {

// The stale-reference invariant is verified after every reduce_learnts()/GC
// in debug builds and in sanitizer builds (MSROPM_SAT_CHECK_INVARIANTS is
// defined by the MSROPM_SANITIZE CMake presets, which otherwise compile with
// NDEBUG): a violation here is exactly the use-after-free class ASan/TSan
// hunt for, so it must not be compiled out of those builds.
#if !defined(NDEBUG) || defined(MSROPM_SAT_CHECK_INVARIANTS)
constexpr bool kCheckInvariants = true;
#else
constexpr bool kCheckInvariants = false;
#endif

// Metric ids for the solver's phase timers and SolverStats counters,
// interned once per process. The counters mirror the SolverStats struct
// field-for-field: solve_obs() publishes per-call deltas, so registry totals
// and the struct façade always agree.
struct SolverMetrics {
  obs::MetricId t_ingest = obs::timer("sat.ingest");
  obs::MetricId t_solve = obs::timer("sat.solve");
  obs::MetricId t_propagate = obs::timer("sat.propagate");
  obs::MetricId t_analyze = obs::timer("sat.analyze");
  obs::MetricId t_reduce = obs::timer("sat.reduce_gc");
  obs::MetricId c_decisions = obs::counter("sat.decisions");
  obs::MetricId c_propagations = obs::counter("sat.propagations");
  obs::MetricId c_conflicts = obs::counter("sat.conflicts");
  obs::MetricId c_restarts = obs::counter("sat.restarts");
  obs::MetricId c_learnt = obs::counter("sat.learnt_clauses");
  obs::MetricId c_removed = obs::counter("sat.removed_learnts");
  obs::MetricId c_blocker_skips = obs::counter("sat.blocker_skips");
  obs::MetricId c_binary_props = obs::counter("sat.binary_propagations");
  obs::MetricId c_heap_decisions = obs::counter("sat.heap_decisions");
  obs::MetricId c_gc_runs = obs::counter("sat.gc_runs");
  obs::MetricId c_gc_freed = obs::counter("sat.gc_freed_words");
  obs::MetricId g_arena_alloc = obs::gauge("sat.arena_alloc_words");
  obs::MetricId g_arena_peak = obs::gauge("sat.arena_peak_words");
  // Search-quality histograms (log-bucketed; feed the clause-tier tuning).
  obs::MetricId h_lbd = obs::histogram("sat.lbd");
  obs::MetricId h_learnt_len = obs::histogram("sat.learnt_len");
  obs::MetricId h_trail_depth = obs::histogram("sat.trail_depth_at_conflict");
  // Heartbeat gauges: latest progress sample (also emitted as trace counter
  // tracks so Perfetto graphs them per worker lane).
  obs::MetricId g_hb_cps = obs::gauge("sat.hb.conflicts_per_sec");
  obs::MetricId g_hb_dps = obs::gauge("sat.hb.decisions_per_sec");
  obs::MetricId g_hb_ppc = obs::gauge("sat.hb.props_per_conflict");
  obs::MetricId g_hb_learnt_live = obs::gauge("sat.hb.learnt_live");
  obs::MetricId g_hb_arena_words = obs::gauge("sat.hb.arena_words");
  obs::MetricId g_hb_restart = obs::gauge("sat.hb.restart_interval");
  obs::MetricId g_hb_avg_lbd = obs::gauge("sat.hb.avg_recent_lbd");
};

// Heartbeat wall clock. Deliberately NOT the obs trace epoch: that helper
// only exists in obs-enabled builds, and the heartbeat is only ever taken
// when the gate is open, so absolute origin does not matter — only deltas.
std::int64_t hb_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const SolverMetrics& sm() {
  static const SolverMetrics m;
  return m;
}

}  // namespace

Solver::Solver(const Cnf& cnf, SolverOptions options) : options_(options) {
  obs::Span ingest_span("sat.ingest", sm().t_ingest);
  ingest_span.arg("vars", cnf.num_vars());
  ingest_span.arg("clauses", cnf.num_clauses());
  learnt_cap_ = options_.learnt_cap;
  if (options_.presimplify) {
    if (!options_.preprocess.stop.stop_possible()) {
      options_.preprocess.stop = options_.stop;
    }
    if (options_.preprocess.budget.max_memory_bytes == 0) {
      options_.preprocess.budget.max_memory_bytes =
          options_.budget.max_memory_bytes;
    }
    PreprocessResult pre = preprocess(cnf, options_.preprocess);
    preprocess_stats_ = pre.stats;
    remapper_ = std::move(pre.remapper);
    if (pre.unsat) {
      setup_arrays(0);
      ok_ = false;
      return;
    }
    if (options_.stop.stop_requested()) {
      // Cancelled during preprocessing: skip ingestion entirely. A partial
      // simplification is equisatisfiable, but solve() will report kUnknown
      // anyway, so building the watch lists would be wasted work.
      setup_arrays(0);
      cancelled_ = true;
      db_incomplete_ = true;
      db_limit_ = options_.stop.deadline_expired() ? LimitReason::kDeadline
                                                   : LimitReason::kNone;
      return;
    }
    // A preprocessor interrupted by its budget or a fault leaves a partial
    // but equisatisfiable simplification, so the solver CONTINUES with it
    // (graceful degradation); the interruption stays visible in
    // preprocess_stats(). Only a stop-token trip above aborts construction.
    // Preprocessor output already lives in an arena; adopt it wholesale.
    adopt_arena(pre.num_vars, std::move(pre.arena), std::move(pre.clauses));
  } else {
    init_from(cnf);
  }
  // A clause DB truncated by cancellation can never prove SAT; remember the
  // condition across solve() calls (cancelled_ itself is per-call state).
  db_incomplete_ = cancelled_;
  if (!cancelled_ && ok_ && options_.budget.max_memory_bytes != 0 &&
      memory_model_bytes() > options_.budget.max_memory_bytes) {
    // The ingested formula alone exceeds the memory budget: no solve() call
    // can ever fit, so every call reports kUnknown / kMemory.
    cancelled_ = true;
    db_incomplete_ = true;
    db_limit_ = LimitReason::kMemory;
  }
}

void Solver::setup_arrays(std::size_t num_vars) {
  num_vars_ = num_vars;
  watches_.assign(2 * num_vars, {});
  assigns_.assign(num_vars, LBool::kUndef);
  polarity_.assign(num_vars, options_.default_polarity ? 1 : 0);
  level_.assign(num_vars, 0);
  reason_.assign(num_vars, Reason::none());
  activity_.assign(num_vars, 0.0);
  seen_.assign(num_vars, 0);
  // Conflict-analysis scratch is var-bounded: every entry is pushed under a
  // fresh seen_ mark. Reserving here keeps analyze()/lit_redundant()
  // allocation-free from the first conflict on.
  analyze_cleanup_.reserve(num_vars);
  minimize_stack_.reserve(num_vars);
  minimize_clear_.reserve(num_vars);
}

void Solver::ingest_clause(Clause&& lits, std::vector<ClauseRef>& stored,
                           std::vector<BinaryClause>& binaries) {
  if (!ok_) return;
  // Normalize: drop duplicate literals; detect tautologies.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
    if (lits[i].var() == lits[i + 1].var()) return;  // tautology
  }
  if (lits.empty()) {
    ok_ = false;
    return;
  }
  if (lits.size() == 1) {
    if (value(lits[0]) == LBool::kFalse) {
      ok_ = false;
      return;
    }
    if (value(lits[0]) == LBool::kUndef) enqueue(lits[0], Reason::none());
    return;
  }
  for (Lit l : lits) activity_[l.var()] += 1.0;
  if (lits.size() == 2) {
    // Binary clauses live implicitly in the watch lists: no arena record now
    // or ever, so they cost nothing during GC and propagate inline.
    binaries.emplace_back(lits[0], lits[1]);
    return;
  }
  stored.push_back(arena_.alloc(lits, /*learnt=*/false));
}

void Solver::build_watches(const std::vector<ClauseRef>& refs,
                           const std::vector<BinaryClause>& binaries) {
  // Exact-reserve watch construction: the old design paid the first-grow
  // allocation of every watch list plus log-many regrows as ingestion
  // appended clause by clause. Counting first makes it one allocation per
  // non-empty literal list — O(vars), independent of the clause count — and
  // no watch list ever reallocates mid-ingest.
  std::vector<std::uint32_t> counts(2 * num_vars_, 0);
  for (const auto& [a, b] : binaries) {
    ++counts[(~a).index()];
    ++counts[(~b).index()];
  }
  for (ClauseRef cr : refs) {
    const Lit* lits = arena_.lits(cr);
    ++counts[(~lits[0]).index()];
    ++counts[(~lits[1]).index()];
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) watches_[i].reserve(counts[i]);
  }
  // Attach binaries first: every list then leads with its cheapest entries
  // (no arena dereference, near-perfect branch prediction on the binary
  // tag), and the order is deterministic.
  for (const auto& [a, b] : binaries) attach_binary(a, b);
  for (ClauseRef cr : refs) attach_clause(cr);
}

void Solver::init_from(const Cnf& cnf) {
  setup_arrays(cnf.num_vars());
  std::vector<ClauseRef> stored;
  std::vector<BinaryClause> binaries;
  stored.reserve(cnf.num_clauses());
  std::size_t ingested = 0;
  const std::uint64_t mem_cap = options_.budget.max_memory_bytes;
  for (const Clause& c : cnf.clauses()) {
    if ((ingested++ & 2047) == 0) {
      if (options_.stop.stop_requested()) {
        // Partial clause DB: any UNSAT already derived (ok_ == false) is
        // sound for the full formula, but SAT is not — solve() returns
        // kUnknown.
        cancelled_ = true;
        db_limit_ = options_.stop.deadline_expired() ? LimitReason::kDeadline
                                                     : LimitReason::kNone;
        break;
      }
      if (mem_cap != 0 && memory_model_bytes() > mem_cap) {
        cancelled_ = true;
        db_limit_ = LimitReason::kMemory;
        break;
      }
      if (util::fault::fire(FaultSite::kArenaAlloc)) {
        cancelled_ = true;
        db_limit_ = LimitReason::kInjected;
        break;
      }
    }
    // Copy into the reused scratch buffer: ingestion allocates literal
    // storage only in the arena, never one vector per clause.
    ingest_scratch_.assign(c.begin(), c.end());
    ingest_clause(std::move(ingest_scratch_), stored, binaries);
    if (!ok_) break;
  }
  // On early exit (top-level conflict or cancellation) solve() returns
  // before propagating, so attaching the partial DB is harmless — and it
  // keeps the clause_refs_clean invariant trivially true.
  build_watches(stored, binaries);
}

void Solver::adopt_arena(std::size_t num_vars, ClauseArena&& arena,
                         std::vector<ClauseRef>&& refs) {
  setup_arrays(num_vars);
  arena_ = std::move(arena);
  std::vector<BinaryClause> binaries;
  std::size_t ingested = 0;
  std::size_t kept = 0;
  for (ClauseRef cr : refs) {
    if ((ingested++ & 2047) == 0) {
      if (options_.stop.stop_requested()) {
        cancelled_ = true;
        db_limit_ = options_.stop.deadline_expired() ? LimitReason::kDeadline
                                                     : LimitReason::kNone;
        break;
      }
      if (util::fault::fire(FaultSite::kArenaAlloc)) {
        cancelled_ = true;
        db_limit_ = LimitReason::kInjected;
        break;
      }
    }
    const std::size_t n = arena_.size(cr);
    const Lit* lits = arena_.lits(cr);
    if (n == 0) {
      ok_ = false;
      break;
    }
    if (n == 1) {
      const Lit unit = lits[0];
      // Unit clauses become trail entries, not stored clauses; their record
      // is garbage the next GC reclaims.
      arena_.free_clause(cr);
      if (value(unit) == LBool::kFalse) {
        ok_ = false;
        break;
      }
      if (value(unit) == LBool::kUndef) enqueue(unit, Reason::none());
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) activity_[lits[i].var()] += 1.0;
    if (n == 2) {
      // The preprocessor stores binaries as ordinary records; the solver
      // keeps them only as implicit watchers and frees the record.
      binaries.emplace_back(lits[0], lits[1]);
      arena_.free_clause(cr);
      continue;
    }
    refs[kept++] = cr;
  }
  refs.resize(kept);
  build_watches(refs, binaries);
  // Coloring encodings are ~90% binary clauses, so after the implicit-binary
  // conversion most of the adopted buffer is tombstones. Compact now instead
  // of dragging the dead words through the whole search.
  if (arena_.wasted_words() * 5 > arena_.used_words()) garbage_collect();
  note_arena_peak();
}

void Solver::attach_clause(ClauseRef cr) {
  const Lit* lits = arena_.lits(cr);
  // Each watcher blocks on the other watched literal (MiniSat convention):
  // when that literal is true the clause is satisfied and the visit skips
  // the arena dereference entirely.
  watches_[(~lits[0]).index()].push_back(Watcher::clause(cr, lits[1]));
  watches_[(~lits[1]).index()].push_back(Watcher::clause(cr, lits[0]));
  attached_watchers_ += 2;
}

void Solver::attach_binary(Lit a, Lit b) {
  watches_[(~a).index()].push_back(Watcher::binary(b));
  watches_[(~b).index()].push_back(Watcher::binary(a));
  attached_watchers_ += 2;
}

void Solver::enqueue(Lit l, Reason reason) {
  assigns_[l.var()] = l.negated() ? LBool::kFalse : LBool::kTrue;
  level_[l.var()] = static_cast<std::uint32_t>(trail_lim_.size());
  reason_[l.var()] = reason;
  trail_.push_back(l);
}

Reason Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    const Lit false_lit = ~p;
    auto& watch_list = watches_[p.index()];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const Watcher w = watch_list[i];
      if (w.is_binary()) {
        // Whole clause (~p \/ blocker) is inline: no arena access at all.
        // Binaries lead every list, so this branch is near-perfectly
        // predicted; on coloring encodings it carries ~90% of the traffic.
        watch_list[keep++] = w;
        const LBool bval = value(w.blocker);
        if (bval == LBool::kTrue) continue;
        if (bval == LBool::kFalse) {
          bin_conflict_[0] = false_lit;
          bin_conflict_[1] = w.blocker;
          for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
            watch_list[keep++] = watch_list[j];
          }
          watch_list.resize(keep);
          qhead_ = trail_.size();
          return Reason::binary(w.blocker);
        }
        ++stats_.binary_propagations;
        enqueue(w.blocker, Reason::binary(false_lit));
        continue;
      }
      // Long clause: a satisfied blocker proves the clause satisfied without
      // touching its record — the common case on coloring encodings.
      if (value(w.blocker) == LBool::kTrue) {
        watch_list[keep++] = w;
        ++stats_.blocker_skips;
        continue;
      }
      const ClauseRef ci = w.cref;
      // Deleted clauses never linger in watch lists: reduce_learnts purges
      // them eagerly before returning (clause_refs_clean invariant). The
      // check must survive into sanitizer builds — a deleted record still
      // lives inside the arena vector, so ASan cannot catch this itself.
      if constexpr (kCheckInvariants) {
        if (arena_.deleted(ci)) {
          std::fprintf(stderr, "FATAL: deleted clause in watch list\n");
          std::abort();
        }
      }
      Lit* lits = arena_.lits(ci);
      const std::size_t n = arena_.size(ci);
      // Ensure the falsified literal (~p) sits at position 1.
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      const Lit first = lits[0];
      const Watcher updated = Watcher::clause(ci, first);
      // If first watch is already true, clause is satisfied; refresh the
      // blocker so the next visit can skip the dereference too.
      if (first != w.blocker && value(first) == LBool::kTrue) {
        watch_list[keep++] = updated;
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < n; ++k) {
        if (value(lits[k]) != LBool::kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[(~lits[1]).index()].push_back(updated);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict.
      watch_list[keep++] = updated;
      if (value(first) == LBool::kFalse) {
        // Conflict: restore remaining watches and report.
        for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return Reason::clause(ci);
      }
      enqueue(first, Reason::clause(ci));
    }
    watch_list.resize(keep);
  }
  return Reason::none();
}

bool Solver::lit_redundant(Lit l, std::uint32_t abstract_levels) {
  // Recursive minimization (iterative with an explicit stack; both stacks
  // are member scratch buffers, so this allocates nothing per conflict).
  auto& stack = minimize_stack_;
  auto& to_clear = minimize_clear_;
  stack.clear();
  to_clear.clear();
  stack.push_back(l);
  while (!stack.empty()) {
    const Lit cur = stack.back();
    stack.pop_back();
    const Reason r = reason_[cur.var()];
    if (r.is_none()) {
      for (Var v : to_clear) seen_[v] = 0;
      return false;
    }
    // Walk the antecedent literals of cur's reason; binary reasons carry
    // their single antecedent inline.
    Lit bin_buf[1];
    const Lit* lits;
    std::size_t n;
    if (r.is_binary()) {
      bin_buf[0] = r.other();
      lits = bin_buf;
      n = 1;
    } else {
      lits = arena_.lits(r.cref());
      n = arena_.size(r.cref());
    }
    for (std::size_t i = 0; i < n; ++i) {
      const Lit q = lits[i];
      if (q.var() == cur.var() || seen_[q.var()] || level_[q.var()] == 0) continue;
      const std::uint32_t lvl_mask = 1u << (level_[q.var()] & 31u);
      if (reason_[q.var()].is_none() || (lvl_mask & abstract_levels) == 0) {
        for (Var v : to_clear) seen_[v] = 0;
        return false;
      }
      seen_[q.var()] = 1;
      to_clear.push_back(q.var());
      stack.push_back(q);
    }
  }
  // Clear the temporary marks; only vars not already marked by analyze()
  // were added to to_clear, so this cannot unmark learnt-clause literals.
  for (Var v : to_clear) seen_[v] = 0;
  return true;
}

void Solver::analyze(Reason conflict, std::vector<Lit>& learnt_out,
                     std::uint32_t& backtrack_level) {
  learnt_out.clear();
  learnt_out.push_back(Lit{});  // slot for the asserting literal
  const auto current_level = static_cast<std::uint32_t>(trail_lim_.size());
  int counter = 0;
  Lit p{};
  bool have_p = false;
  Reason reason = conflict;
  std::size_t trail_index = trail_.size();
  auto& cleanup = analyze_cleanup_;
  cleanup.clear();

  for (;;) {
    // Resolve the current reason into its literal span. The conflict itself
    // may be a binary clause (both lits in bin_conflict_); a binary *reason*
    // contributes only its antecedent (p is skipped below anyway).
    Lit bin_buf[2];
    const Lit* lits;
    std::size_t n;
    if (reason.is_binary()) {
      if (!have_p) {
        lits = bin_conflict_.data();
        n = 2;
      } else {
        bin_buf[0] = reason.other();
        lits = bin_buf;
        n = 1;
      }
    } else {
      const ClauseRef cr = reason.cref();
      if (arena_.learnt(cr)) bump_clause(cr);
      lits = arena_.lits(cr);
      n = arena_.size(cr);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const Lit q = lits[i];
      if (have_p && q.var() == p.var()) continue;
      if (!seen_[q.var()] && level_[q.var()] > 0) {
        seen_[q.var()] = 1;
        cleanup.push_back(q.var());
        bump_var(q.var());
        if (level_[q.var()] >= current_level) {
          ++counter;
        } else {
          learnt_out.push_back(q);
        }
      }
    }
    // Walk the trail back to the next marked literal.
    do {
      --trail_index;
    } while (!seen_[trail_[trail_index].var()]);
    p = trail_[trail_index];
    have_p = true;
    seen_[p.var()] = 0;
    --counter;
    if (counter == 0) break;
    reason = reason_[p.var()];
  }
  learnt_out[0] = ~p;

  // Clause minimization: drop literals implied by the rest of the clause.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt_out.size(); ++i) {
    abstract_levels |= 1u << (level_[learnt_out[i].var()] & 31u);
  }
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learnt_out.size(); ++i) {
    const Lit l = learnt_out[i];
    if (reason_[l.var()].is_none() || !lit_redundant(l, abstract_levels)) {
      learnt_out[kept++] = l;
    }
  }
  learnt_out.resize(kept);

  // Compute the backtrack level: highest level below the current one.
  if (learnt_out.size() == 1) {
    backtrack_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt_out.size(); ++i) {
      if (level_[learnt_out[i].var()] > level_[learnt_out[max_i].var()]) max_i = i;
    }
    std::swap(learnt_out[1], learnt_out[max_i]);
    backtrack_level = level_[learnt_out[1].var()];
  }

  for (Var v : cleanup) seen_[v] = 0;
}

void Solver::backtrack(std::uint32_t target_level) {
  if (trail_lim_.size() <= target_level) return;
  const std::size_t bound = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    const Var v = trail_[i - 1].var();
    polarity_[v] = assigns_[v] == LBool::kTrue ? 1 : 0;
    assigns_[v] = LBool::kUndef;
    reason_[v] = Reason::none();
    // Lazy re-insertion: vars leave the heap only when popped as decisions,
    // and rejoin it the moment backtracking unassigns them. Before the
    // first conflict the heap is not engaged (see pick_branch_lit) and
    // insert() would be wasted work on a structure build() will overwrite.
    // msropm-lint: allow(hot-path-alloc) heap_ capacity stays num_vars from build(); pops only shrink size, so insert() never reallocates
    if (heap_active_) order_heap_.insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = bound;
}

void Solver::activate_heap() {
  // First conflict: bump_var is about to make the activity order dynamic,
  // so heapify the full variable set once. Every var enters the heap
  // (assigned ones are skipped lazily at pop time), and from here on
  // backtrack() re-inserts what it unassigns.
  order_heap_.build(num_vars_);
  heap_active_ = true;
}

std::optional<Lit> Solver::pick_branch_lit() {
  if (!heap_active_) {
    // Pre-conflict: VSIDS never bumped yet, so activities are the static
    // ingest occurrence counts and a vectorizable linear scan picks the
    // exact variable the heap would — without paying O(V log V) heap churn
    // on the paper's zero-conflict King's instances, where the whole search
    // is a handful of decisions over a static order.
    Var best = 0;
    double best_activity = -1.0;
    bool found = false;
    for (Var v = 0; v < num_vars_; ++v) {
      if (assigns_[v] == LBool::kUndef && activity_[v] > best_activity) {
        best = v;
        best_activity = activity_[v];
        found = true;
      }
    }
    if (!found) return std::nullopt;
    return Lit(best, polarity_[best] == 0);
  }
  // Pop until an unassigned variable surfaces (assigned ones were enqueued
  // by propagation after their heap insert; they are discarded lazily here).
  while (!order_heap_.empty()) {
    const Var v = order_heap_.pop();
    if (assigns_[v] == LBool::kUndef) {
      ++stats_.heap_decisions;
      return Lit(v, polarity_[v] == 0);
    }
  }
  return std::nullopt;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    // Rescale is order-preserving, so the heap stays valid as-is.
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_heap_.update(v);
}

void Solver::bump_clause(ClauseRef cr) {
  const double bumped = arena_.activity(cr) + clause_inc_;
  arena_.set_activity(cr, bumped);
  if (bumped > 1e20) {
    for (ClauseRef lr : learnt_refs_) {
      arena_.set_activity(lr, arena_.activity(lr) * 1e-20);
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::decay_activities() {
  var_inc_ /= options_.activity_decay;
  clause_inc_ /= 0.999;
}

void Solver::reduce_learnts() {
  // Remove the lower-activity half of the learnt clauses that are not
  // currently reasons. learnt_refs_ only ever holds long clauses (binary
  // learnts are implicit watchers and are kept forever, like MiniSat).
  obs::Span reduce_span("sat.reduce_gc", sm().t_reduce);
  auto& candidates = reduce_candidates_;
  candidates.clear();
  candidates.reserve(learnt_refs_.size());
  for (ClauseRef cr : learnt_refs_) candidates.push_back(cr);
  std::sort(candidates.begin(), candidates.end(),
            [this](ClauseRef a, ClauseRef b) {
              return arena_.activity(a) < arena_.activity(b);
            });
  // Reason-lock via the arena's scratch mark bit: every var with a clause
  // reason is on the trail, so this covers exactly the locked clauses.
  for (Lit l : trail_) {
    const Reason r = reason_[l.var()];
    if (r.is_clause()) arena_.set_mark(r.cref(), true);
  }
  std::size_t removed = 0;
  for (std::size_t i = 0; i < candidates.size() / 2; ++i) {
    const ClauseRef cr = candidates[i];
    if (arena_.marked(cr)) continue;
    arena_.free_clause(cr);
    ++removed;
  }
  for (Lit l : trail_) {
    const Reason r = reason_[l.var()];
    if (r.is_clause()) arena_.set_mark(r.cref(), false);
  }
  stats_.removed_learnts += removed;
  reduce_span.arg("removed", removed);
  learnt_refs_.erase(
      std::remove_if(learnt_refs_.begin(), learnt_refs_.end(),
                     [this](ClauseRef cr) { return arena_.deleted(cr); }),
      learnt_refs_.end());
  if (removed > 0) purge_watches();
  if (kCheckInvariants && !clause_refs_clean()) {
    std::fprintf(stderr,
                 "FATAL: stale clause reference after reduce_learnts\n");
    std::abort();
  }
  note_arena_peak();
  // Compact once a fifth of the buffer is tombstones — the proper fix for
  // the old monotone-growth bug, not just a watch-list purge.
  if (arena_.wasted_words() * 5 > arena_.used_words()) garbage_collect();
  // A reduction is exactly when learnt-DB occupancy jumps; sample it.
  if (obs::gate() != 0) publish_heartbeat();
}

void Solver::purge_watches() {
  std::uint64_t purged = 0;
  for (auto& watch_list : watches_) {
    const auto keep_end =
        std::remove_if(watch_list.begin(), watch_list.end(),
                       [this](Watcher w) {
                         return !w.is_binary() && arena_.deleted(w.cref);
                       });
    purged += static_cast<std::uint64_t>(watch_list.end() - keep_end);
    watch_list.erase(keep_end, watch_list.end());
  }
  attached_watchers_ -= purged;
}

void Solver::garbage_collect() {
  obs::Span gc_span("sat.gc");
  gc_span.arg("wasted_words", arena_.wasted_words());
  ClauseArena to(arena_.used_words() - arena_.wasted_words());
  // Every live long clause sits in exactly two watch lists, so relocating
  // the watches covers the whole database; reasons and the learnt list then
  // resolve through the forwarding refs. Binary watchers hold no refs and
  // pass through untouched.
  for (auto& watch_list : watches_) {
    for (Watcher& w : watch_list) {
      if (!w.is_binary()) w.cref = arena_.reloc(w.cref, to);
    }
  }
  for (Var v = 0; v < num_vars_; ++v) {
    if (reason_[v].is_clause()) {
      reason_[v].set_cref(arena_.reloc(reason_[v].cref(), to));
    }
  }
  for (ClauseRef& cr : learnt_refs_) cr = arena_.reloc(cr, to);
  to.carry_alloc_stats_from(arena_);
  stats_.gc_freed_words += arena_.used_words() - to.used_words();
  ++stats_.gc_runs;
  arena_ = std::move(to);
  if (kCheckInvariants && !clause_refs_clean()) {
    std::fprintf(stderr, "FATAL: stale clause reference after arena GC\n");
    std::abort();
  }
}

void Solver::note_arena_peak() noexcept {
  if (arena_.used_words() > stats_.arena_peak_words) {
    stats_.arena_peak_words = arena_.used_words();
  }
  stats_.arena_alloc_words = arena_.alloc_words();
}

util::LimitReason Solver::budget_breach() const noexcept {
  if (options_.budget.max_memory_bytes != 0 &&
      memory_model_bytes() > options_.budget.max_memory_bytes) {
    return LimitReason::kMemory;
  }
  if (prop_budget_ != 0 && stats_.propagations >= prop_budget_) {
    return LimitReason::kPropagations;
  }
  return LimitReason::kNone;
}

std::uint64_t Solver::luby(std::uint64_t i) noexcept {
  // Luby sequence 1,1,2,1,1,2,4,... (0-indexed). Find the smallest complete
  // subsequence of length 2^seq - 1 containing i, then reduce i into the
  // tail recursively via modulo until it lands on a subsequence end.
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return std::uint64_t{1} << seq;
}

SolveResult Solver::solve() { return solve({}); }

namespace {

[[noreturn]] void throw_not_frozen(Var v) {
  throw std::invalid_argument(
      "Solver::solve: assumption on variable " + std::to_string(v) +
      " which presimplify was allowed to transform; list every assumed "
      "variable in SolverOptions::preprocess.frozen");
}

}  // namespace

Lit Solver::origin_of_assumption(Lit internal) const {
  for (std::size_t i = 0; i < assumptions_.size(); ++i) {
    if (assumptions_[i] == internal) return assumption_origins_[i];
  }
  // Fallback (unreachable through the solve loop, which only hands this
  // function assumption literals): translate through the inverse var map.
  if (remapper_) {
    return Lit(remapper_->original_of(internal.var()), internal.negated());
  }
  return internal;
}

bool Solver::map_assumptions(const std::vector<Lit>& assumptions) {
  assumptions_.clear();
  assumption_origins_.clear();
  model_overrides_.clear();
  const std::size_t original_vars =
      remapper_ ? remapper_->original_num_vars() : num_vars_;
  for (const Lit a : assumptions) {
    const Var v = a.var();
    if (v >= original_vars) {
      throw std::invalid_argument(
          "Solver::solve: assumption variable " + std::to_string(v) +
          " is out of range");
    }
    if (!remapper_) {
      assumptions_.push_back(a);
      assumption_origins_.push_back(a);
      continue;
    }
    const bool want = !a.negated();
    switch (remapper_->disposition(v)) {
      case Remapper::VarDisposition::kMapped:
        if (!remapper_->frozen(v)) throw_not_frozen(v);
        assumptions_.push_back(Lit(*remapper_->map(v), a.negated()));
        assumption_origins_.push_back(a);
        break;
      case Remapper::VarDisposition::kFixedImplied:
        // The value is implied by the formula (top-level unit propagation),
        // so a matching assumption is vacuous and a contradicting one is an
        // UNSAT whose core is the assumption alone.
        if (!remapper_->frozen(v)) throw_not_frozen(v);
        if (remapper_->fixed_value(v) != want) {
          failed_assumptions_.assign(1, a);
          return false;
        }
        break;
      case Remapper::VarDisposition::kUnconstrained:
        // The simplified formula no longer mentions the variable, so any
        // value extends any model: honor the assumption by pinning the
        // reconstructed model (and catch self-contradictory assumption
        // pairs here, since no search conflict would ever surface them).
        if (!remapper_->frozen(v)) throw_not_frozen(v);
        for (const auto& [prev_var, prev_value] : model_overrides_) {
          if (prev_var == v && prev_value != want) {
            failed_assumptions_.assign(1, Lit(v, !prev_value));
            failed_assumptions_.push_back(a);
            return false;
          }
        }
        model_overrides_.emplace_back(v, want);
        break;
      case Remapper::VarDisposition::kFixedChoice:
      case Remapper::VarDisposition::kEliminated:
        // Frozen vars are never pure-fixed or eliminated; reaching here
        // means the caller assumed a variable it did not freeze.
        throw_not_frozen(v);
    }
  }
  return true;
}

void Solver::analyze_final(Lit p) {
  // MiniSat analyzeFinal: p is a falsified assumption. Seed the core with p
  // and walk the trail top-down; every marked decision is an assumption
  // (only assumption levels exist when this runs), every marked propagated
  // literal expands to the rest of its reason clause.
  failed_assumptions_.clear();
  failed_assumptions_.push_back(origin_of_assumption(p));
  if (trail_lim_.empty()) return;  // falsified at root: the formula alone
                                   // implies ~p, so {p} is the core
  seen_[p.var()] = 1;
  for (std::size_t i = trail_.size(); i > trail_lim_[0]; --i) {
    const Var x = trail_[i - 1].var();
    if (!seen_[x]) continue;
    const Reason r = reason_[x];
    if (r.is_none()) {
      failed_assumptions_.push_back(origin_of_assumption(trail_[i - 1]));
    } else if (r.is_binary()) {
      const Var other = r.other().var();
      if (level_[other] > 0) seen_[other] = 1;
    } else {
      const Lit* lits = arena_.lits(r.cref());
      const std::size_t n = arena_.size(r.cref());
      // lits[0] is the literal x was assigned to; the rest are antecedents.
      for (std::size_t j = 1; j < n; ++j) {
        if (level_[lits[j].var()] > 0) seen_[lits[j].var()] = 1;
      }
    }
    seen_[x] = 0;
  }
  seen_[p.var()] = 0;
}

SolveResult Solver::solve(const std::vector<Lit>& assumptions) {
  if (obs::gate() == 0) return solve_internal(assumptions);
  return solve_obs(assumptions);
}

SolveResult Solver::solve_obs(const std::vector<Lit>& assumptions) {
  const SolverStats before = stats_;
  // Fresh heartbeat window per instrumented call; the final publish below
  // guarantees at least one sample even on sub-interval solves.
  hb_last_ns_ = hb_now_ns();
  hb_last_conflicts_ = stats_.conflicts;
  hb_last_decisions_ = stats_.decisions;
  hb_last_propagations_ = stats_.propagations;
  hb_lbd_sum_ = 0;
  hb_lbd_count_ = 0;
  hb_conflicts_since_ = 0;
  SolveResult result;
  {
    obs::Span span("sat.solve", sm().t_solve);
    result = solve_internal(assumptions);
    span.arg("conflicts", stats_.conflicts - before.conflicts);
    span.arg("restarts", stats_.restarts - before.restarts);
    span.arg("decisions", stats_.decisions - before.decisions);
    span.arg("result", static_cast<std::uint64_t>(result));
  }
  if (obs::metrics_enabled()) {
    const SolverMetrics& m = sm();
    obs::add(m.c_decisions, stats_.decisions - before.decisions);
    obs::add(m.c_propagations, stats_.propagations - before.propagations);
    obs::add(m.c_conflicts, stats_.conflicts - before.conflicts);
    obs::add(m.c_restarts, stats_.restarts - before.restarts);
    obs::add(m.c_learnt, stats_.learnt_clauses - before.learnt_clauses);
    obs::add(m.c_removed, stats_.removed_learnts - before.removed_learnts);
    obs::add(m.c_blocker_skips, stats_.blocker_skips - before.blocker_skips);
    obs::add(m.c_binary_props,
             stats_.binary_propagations - before.binary_propagations);
    obs::add(m.c_heap_decisions, stats_.heap_decisions - before.heap_decisions);
    obs::add(m.c_gc_runs, stats_.gc_runs - before.gc_runs);
    obs::add(m.c_gc_freed, stats_.gc_freed_words - before.gc_freed_words);
    obs::set_gauge(m.g_arena_alloc, static_cast<double>(stats_.arena_alloc_words));
    obs::set_gauge(m.g_arena_peak, static_cast<double>(stats_.arena_peak_words));
  }
  if (obs::gate() != 0) publish_heartbeat();
  return result;
}

void Solver::note_conflict_obs(const std::vector<Lit>& learnt,
                               std::size_t trail_depth) {
  const SolverMetrics& m = sm();
  // LBD = distinct decision levels among the learnt literals. Every literal
  // is assigned here (learnt[0] was just enqueued at the backtrack level).
  lbd_scratch_.clear();
  for (const Lit l : learnt) lbd_scratch_.push_back(level_[l.var()]);
  std::sort(lbd_scratch_.begin(), lbd_scratch_.end());
  const auto lbd = static_cast<std::uint64_t>(
      std::unique(lbd_scratch_.begin(), lbd_scratch_.end()) -
      lbd_scratch_.begin());
  obs::observe(m.h_lbd, lbd);
  obs::observe(m.h_learnt_len, learnt.size());
  obs::observe(m.h_trail_depth, trail_depth);
  hb_lbd_sum_ += lbd;
  ++hb_lbd_count_;
  if (options_.heartbeat_interval != 0 &&
      ++hb_conflicts_since_ >= options_.heartbeat_interval) {
    publish_heartbeat();
  }
}

void Solver::publish_heartbeat() {
  const SolverMetrics& m = sm();
  const std::int64_t now = hb_now_ns();
  double cps = 0.0;
  double dps = 0.0;
  if (hb_last_ns_ != 0 && now > hb_last_ns_) {
    const double secs = static_cast<double>(now - hb_last_ns_) / 1e9;
    cps = static_cast<double>(stats_.conflicts - hb_last_conflicts_) / secs;
    dps = static_cast<double>(stats_.decisions - hb_last_decisions_) / secs;
  }
  const std::uint64_t window_conflicts = stats_.conflicts - hb_last_conflicts_;
  const double ppc =
      window_conflicts == 0
          ? 0.0
          : static_cast<double>(stats_.propagations - hb_last_propagations_) /
                static_cast<double>(window_conflicts);
  const double learnt_live =
      static_cast<double>(learnt_refs_.size() + learnt_binaries_);
  const double arena_words = static_cast<double>(arena_.used_words());
  const double avg_lbd =
      hb_lbd_count_ == 0
          ? 0.0
          : static_cast<double>(hb_lbd_sum_) / static_cast<double>(hb_lbd_count_);
  const double restart_interval = static_cast<double>(hb_restart_interval_);

  obs::set_gauge(m.g_hb_cps, cps);
  obs::set_gauge(m.g_hb_dps, dps);
  obs::set_gauge(m.g_hb_ppc, ppc);
  obs::set_gauge(m.g_hb_learnt_live, learnt_live);
  obs::set_gauge(m.g_hb_arena_words, arena_words);
  obs::set_gauge(m.g_hb_restart, restart_interval);
  obs::set_gauge(m.g_hb_avg_lbd, avg_lbd);
  obs::trace_counter("sat.hb.conflicts_per_sec", cps);
  obs::trace_counter("sat.hb.decisions_per_sec", dps);
  obs::trace_counter("sat.hb.props_per_conflict", ppc);
  obs::trace_counter("sat.hb.learnt_live", learnt_live);
  obs::trace_counter("sat.hb.arena_words", arena_words);
  obs::trace_counter("sat.hb.restart_interval", restart_interval);
  obs::trace_counter("sat.hb.avg_recent_lbd", avg_lbd);

  hb_last_ns_ = now;
  hb_last_conflicts_ = stats_.conflicts;
  hb_last_decisions_ = stats_.decisions;
  hb_last_propagations_ = stats_.propagations;
  hb_lbd_sum_ = 0;
  hb_lbd_count_ = 0;
  hb_conflicts_since_ = 0;
}

SolveResult Solver::solve_internal(const std::vector<Lit>& assumptions) {
  // Multi-shot entry: unwind whatever the previous call left behind. Doing
  // the root reset lazily HERE (not on the previous call's SAT return path)
  // keeps a final zero-conflict solve from paying an O(V log V) heap unwind
  // it never benefits from.
  backtrack(0);
  model_.clear();
  failed_assumptions_.clear();
  stats_.limit_reason = LimitReason::kNone;
  // An empty clause derived from any prefix of the formula refutes the whole
  // formula, so a top-level conflict outranks cancellation.
  if (!ok_) return SolveResult::kUnsat;
  cancelled_ = db_incomplete_;
  if (cancelled_) {
    stats_.limit_reason = db_limit_;
    return SolveResult::kUnknown;
  }
  if (options_.stop.stop_requested()) {
    cancelled_ = true;
    stats_.limit_reason = options_.stop.deadline_expired()
                              ? LimitReason::kDeadline
                              : LimitReason::kNone;
    return SolveResult::kUnknown;
  }
  // Per-call budget baselines, hoisted once so the unbudgeted search pays a
  // single predictable branch per conflict / decision-poll.
  budget_active_ = options_.budget.limited();
  prop_budget_ = options_.budget.max_propagations == 0
                     ? 0
                     : stats_.propagations + options_.budget.max_propagations;
  if (!map_assumptions(assumptions)) return SolveResult::kUnsat;
  if (!propagate().is_none()) {
    ok_ = false;
    return SolveResult::kUnsat;
  }

  std::vector<Lit> learnt;
  // The conflict budget is per call; stats_.conflicts is cumulative. The
  // legacy conflict_limit and budget.max_conflicts share the cap: the
  // smaller nonzero one binds, and a trip reports LimitReason::kConflicts.
  std::uint64_t call_conflict_cap = options_.conflict_limit;
  if (options_.budget.max_conflicts != 0 &&
      (call_conflict_cap == 0 ||
       options_.budget.max_conflicts < call_conflict_cap)) {
    call_conflict_cap = options_.budget.max_conflicts;
  }
  const std::uint64_t conflict_budget =
      call_conflict_cap == 0 ? 0 : stats_.conflicts + call_conflict_cap;
  // The Luby restart sequence restarts per CALL (MiniSat does the same):
  // continuing the cumulative index would leave later incremental queries
  // with the tail's huge intervals and no early restarts, which measurably
  // wrecks hard SAT rounds after conflict-heavy UNSAT rounds.
  std::uint64_t restarts_this_call = 0;
  std::uint64_t conflicts_until_restart =
      options_.restart_base * luby(restarts_this_call);
  hb_restart_interval_ = conflicts_until_restart;

  for (;;) {
    if (util::fault::armed() &&
        util::fault::should_fire(FaultSite::kPropagate)) {
      cancelled_ = true;
      stats_.limit_reason = LimitReason::kInjected;
      note_arena_peak();
      return SolveResult::kUnknown;
    }
    Reason conflict = Reason::none();
    {
      obs::Span prop_span("sat.propagate", sm().t_propagate);
      conflict = propagate();
    }
    if (!conflict.is_none()) {
      ++stats_.conflicts;
      if (trail_lim_.empty()) {
        ok_ = false;
        note_arena_peak();
        return SolveResult::kUnsat;
      }
      if (!heap_active_) activate_heap();
      if (util::fault::armed() &&
          util::fault::should_fire(FaultSite::kAnalyze)) {
        // Unwind before analysis: the trail still holds the conflicting
        // assignment, which the next call's root backtrack discards.
        cancelled_ = true;
        stats_.limit_reason = LimitReason::kInjected;
        note_arena_peak();
        return SolveResult::kUnknown;
      }
      const std::size_t trail_at_conflict = trail_.size();
      std::uint32_t bt_level = 0;
      {
        obs::Span analyze_span("sat.analyze", sm().t_analyze);
        analyze(conflict, learnt, bt_level);
      }
      backtrack(bt_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], Reason::none());
      } else if (learnt.size() == 2) {
        // Learnt binaries are implicit too: attached inline, never reduced,
        // never GC'd — and the reason they assert is carried as a literal.
        attach_binary(learnt[0], learnt[1]);
        ++learnt_binaries_;
        ++stats_.learnt_clauses;
        enqueue(learnt[0], Reason::binary(learnt[1]));
      } else {
        if (util::fault::armed() &&
            util::fault::should_fire(FaultSite::kArenaAlloc)) {
          // Injected allocation failure for the learnt record: drop the
          // clause (learning is optional for soundness) and unwind. The
          // asserting literal was not enqueued, so the next call re-derives
          // the conflict from scratch.
          cancelled_ = true;
          stats_.limit_reason = LimitReason::kInjected;
          note_arena_peak();
          return SolveResult::kUnknown;
        }
        const ClauseRef cr = arena_.alloc(learnt, /*learnt=*/true);
        arena_.set_activity(cr, clause_inc_);
        attach_clause(cr);
        learnt_refs_.push_back(cr);
        ++stats_.learnt_clauses;
        enqueue(learnt[0], Reason::clause(cr));
      }
      decay_activities();
      if (obs::gate() != 0) note_conflict_obs(learnt, trail_at_conflict);
      if (conflict_budget != 0 && stats_.conflicts >= conflict_budget) {
        stats_.limit_reason = LimitReason::kConflicts;
        note_arena_peak();
        return SolveResult::kUnknown;
      }
      if (budget_active_) {
        const LimitReason breach = budget_breach();
        if (breach != LimitReason::kNone) {
          stats_.limit_reason = breach;
          note_arena_peak();
          return SolveResult::kUnknown;
        }
      }
      if ((stats_.conflicts & 255) == 0 && options_.stop.stop_requested()) {
        cancelled_ = true;
        stats_.limit_reason = options_.stop.deadline_expired()
                                  ? LimitReason::kDeadline
                                  : LimitReason::kNone;
        note_arena_peak();
        return SolveResult::kUnknown;
      }
      if (conflicts_until_restart > 0) --conflicts_until_restart;
    } else {
      if ((stats_.decisions & 127) == 0) {
        if (options_.stop.stop_requested()) {
          cancelled_ = true;
          stats_.limit_reason = options_.stop.deadline_expired()
                                    ? LimitReason::kDeadline
                                    : LimitReason::kNone;
          note_arena_peak();
          return SolveResult::kUnknown;
        }
        if (budget_active_) {
          const LimitReason breach = budget_breach();
          if (breach != LimitReason::kNone) {
            stats_.limit_reason = breach;
            note_arena_peak();
            return SolveResult::kUnknown;
          }
        }
      }
      if (conflicts_until_restart == 0) {
        ++stats_.restarts;
        ++restarts_this_call;
        backtrack(0);
        conflicts_until_restart =
            options_.restart_base * luby(restarts_this_call);
        hb_restart_interval_ = conflicts_until_restart;
        if (obs::gate() != 0) publish_heartbeat();
      }
      // Binary learnts are kept forever, but they still count toward the
      // reduction trigger so the database-size cadence matches the learning
      // rate (they occupied learnt-list slots in the pre-watcher design too).
      if (learnt_refs_.size() + learnt_binaries_ >= learnt_cap_) {
        if (util::fault::armed() && util::fault::should_fire(FaultSite::kGc)) {
          cancelled_ = true;
          stats_.limit_reason = LimitReason::kInjected;
          note_arena_peak();
          return SolveResult::kUnknown;
        }
        reduce_learnts();
        learnt_cap_ += learnt_cap_ / 2;
        // A reduction + compacting GC is the longest uninterruptible stretch
        // of the search; re-check the deadline right after it so a timer
        // that expired mid-GC surfaces now, not half a restart later.
        if (options_.stop.stop_requested()) {
          cancelled_ = true;
          stats_.limit_reason = options_.stop.deadline_expired()
                                    ? LimitReason::kDeadline
                                    : LimitReason::kNone;
          note_arena_peak();
          return SolveResult::kUnknown;
        }
      }
      // Assert pending assumptions as decisions, one level each. Level i+1
      // always belongs to assumption i: already-satisfied assumptions get an
      // empty (dummy) level, a falsified one yields the failed core, and
      // restarts/backtracks simply re-enter this loop at the right index.
      std::optional<Lit> next;
      while (trail_lim_.size() < assumptions_.size()) {
        const Lit a = assumptions_[trail_lim_.size()];
        const LBool av = value(a);
        if (av == LBool::kTrue) {
          trail_lim_.push_back(trail_.size());  // dummy level
        } else if (av == LBool::kFalse) {
          analyze_final(a);
          note_arena_peak();
          return SolveResult::kUnsat;
        } else {
          next = a;
          break;
        }
      }
      if (!next) next = pick_branch_lit();
      if (!next) {
        // Full assignment: SAT.
        model_.assign(num_vars_, 0);
        for (Var v = 0; v < num_vars_; ++v) {
          model_[v] = assigns_[v] == LBool::kTrue ? 1 : 0;
        }
        if (remapper_) model_ = remapper_->reconstruct(model_, model_overrides_);
        // No final backtrack(0): the model is already extracted and the next
        // solve() call performs the root reset lazily — on the paper's
        // zero-conflict King's instances the eager unwind was a third of
        // solve().
        note_arena_peak();
        return SolveResult::kSat;
      }
      ++stats_.decisions;
      trail_lim_.push_back(trail_.size());
      enqueue(*next, Reason::none());
    }
  }
}

bool Solver::clause_refs_clean() const noexcept {
  const auto valid = [this](ClauseRef cr) {
    return cr < arena_.used_words() && !arena_.deleted(cr);
  };
  for (const auto& watch_list : watches_) {
    for (const Watcher& w : watch_list) {
      if (w.is_binary()) {
        // No arena record to validate; the inline literal must be in range
        // (and, being ref-free, a binary watcher trivially survives GC).
        if (w.blocker.var() >= num_vars_) return false;
        continue;
      }
      if (!valid(w.cref)) return false;
      // The blocker must be a literal of its clause, or a stale blocker
      // could "satisfy" a clause it is not part of.
      const Lit* lits = arena_.lits(w.cref);
      const std::size_t n = arena_.size(w.cref);
      bool found = false;
      for (std::size_t i = 0; i < n && !found; ++i) found = lits[i] == w.blocker;
      if (!found) return false;
    }
  }
  for (Var v = 0; v < num_vars_; ++v) {
    const Reason r = reason_[v];
    if (r.is_clause() && !valid(r.cref())) return false;
    if (r.is_binary() && r.other().var() >= num_vars_) return false;
  }
  for (ClauseRef cr : learnt_refs_) {
    if (!valid(cr)) return false;
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> solve_cnf(const Cnf& cnf,
                                                   SolverOptions options) {
  Solver solver(cnf, options);
  if (solver.solve() == SolveResult::kSat) return solver.model();
  return std::nullopt;
}

}  // namespace msropm::sat
