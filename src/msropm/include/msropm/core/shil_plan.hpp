#pragma once
// Phase-shifted SHIL planning for the multi-stage divide-and-color flow
// (paper Sec. 3.1-3.2, Fig. 2).
//
// A 2^m-coloring runs in m stages. Entering stage k every oscillator carries
// the bits b_1..b_{k-1} read out in earlier stages (stored in the SHIL_SEL
// registers). During stage-k discretization the oscillator receives an
// order-2 SHIL whose phase offset is
//
//   psi_k(b_1..b_{k-1}) = pi * sum_{j=1}^{k-1} b_j / 2^j
//
// which locks it at psi or psi + pi; the chosen lobe is bit b_k. For m = 2
// this is exactly the paper's SHIL 1 (psi = 0, locks {0, 180} deg) and
// SHIL 2 (psi = pi/2, locks {90, 270} deg), and after m stages the 2^m
// distinct final phases are equally spaced -- the vector Potts spins.

#include <cstdint>
#include <vector>

namespace msropm::core {

/// Accumulated readout bits of one oscillator, b_1 first.
using StageBits = std::vector<std::uint8_t>;

/// Number of stages needed for K colors; K must be a power of two >= 2.
[[nodiscard]] unsigned stages_for_colors(unsigned num_colors);

/// True when K is a representable color count (power of two >= 2).
[[nodiscard]] bool valid_color_count(unsigned num_colors) noexcept;

/// SHIL phase offset for the stage following the given bits (see above).
/// bits.size() == k-1 when entering stage k.
[[nodiscard]] double shil_phase_for_bits(const StageBits& bits);

/// Group index of an oscillator entering stage k: the integer with binary
/// digits b_1..b_{k-1} (b_1 = LSB). Oscillators in the same group share a
/// SHIL and stay coupled; edges between groups are P_EN-disabled.
[[nodiscard]] std::uint32_t group_from_bits(const StageBits& bits) noexcept;

/// Ideal final phase after all m stages given all m bits:
/// theta = psi_m(b_1..b_{m-1}) + pi * b_m.
[[nodiscard]] double final_phase_from_bits(const StageBits& bits);

/// Final color: the final phase quantized to 2*pi/2^m slots. Bijective over
/// the 2^m bit patterns.
[[nodiscard]] std::uint8_t color_from_bits(const StageBits& bits);

/// Inverse of color_from_bits (for tests and for seeding a machine from a
/// known coloring).
[[nodiscard]] StageBits bits_from_color(std::uint8_t color, unsigned num_stages);

}  // namespace msropm::core
