#pragma once
// MSROPM executed on the waveform-level circuit engine (RoscFabric).
//
// This backend runs the same 60 ns control sequence as the phase-domain
// machine but at transistor-behavioural fidelity: real ring-oscillator
// waveforms, B2B coupling currents, gated 2f square-wave SHIL injection and
// DFF/REF phase readout. It is restricted to 4 colors / 2 stages (the
// configuration the paper simulates) and is used for:
//   - the Fig. 3 waveform reproduction (bench_fig3_waveforms),
//   - cross-validating the phase-domain engine on small graphs.

#include <cstdint>
#include <functional>
#include <vector>

#include "msropm/circuit/fabric.hpp"
#include "msropm/circuit/readout.hpp"
#include "msropm/core/schedule.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"
#include "msropm/util/rng.hpp"

namespace msropm::core {

struct CircuitMsropmConfig {
  circuit::FabricParams fabric = circuit::FabricParams::paper_defaults();
  StageSchedule schedule{};
  /// Extra settling before each readout as a fraction of the lock window.
  double readout_point = 0.9;
  /// Defect injection: oscillators held off for the whole run (dead cells
  /// on a fabricated array). Their couplings are gated, they produce no
  /// readout edges, and they are reported in dead_oscillators with color 0.
  std::vector<std::size_t> disabled_oscillators{};
};

struct CircuitMsropmResult {
  graph::Coloring colors;                  ///< 4-coloring from final readout
  std::vector<std::uint8_t> stage1_bits;   ///< 0 = locked near 0deg, 1 = 180deg
  std::size_t stage1_cut = 0;
  std::vector<double> final_phases;        ///< measured phases [rad]
  /// Oscillators that never produced a readout edge (disabled or defective);
  /// they carry bit 0 / color 0 and should be excluded from accuracy over
  /// their incident edges.
  std::vector<std::size_t> dead_oscillators{};
};

/// Observer called at each control transition: (label, fabric).
using CircuitStageObserver =
    std::function<void(const char*, const circuit::RoscFabric&)>;

class CircuitMsropm {
 public:
  CircuitMsropm(const graph::Graph& g, CircuitMsropmConfig config);

  [[nodiscard]] const CircuitMsropmConfig& config() const noexcept {
    return config_;
  }

  /// One full two-stage run on the circuit fabric. The observer fires at
  /// every control-signal transition (the Fig. 3 annotations); pass a
  /// WaveformRecorder via on_step to capture waveforms continuously.
  [[nodiscard]] CircuitMsropmResult solve(
      util::Rng& rng, const CircuitStageObserver& observer = {},
      const std::function<void(const circuit::RoscFabric&)>& on_step = {}) const;

 private:
  const graph::Graph* graph_;
  CircuitMsropmConfig config_;
};

}  // namespace msropm::core
