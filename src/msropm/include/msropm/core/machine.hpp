#pragma once
// The Multi-Stage ROSC Potts Machine (MSROPM) -- the paper's contribution --
// running on the phase-domain engine.
//
// One solve() executes the full divide-and-color flow of Sec. 3.2/Fig. 3:
//
//   init       : random oscillator phases (random startup instants + jitter)
//   stage k:
//     anneal   : couplings on within each current group (P_EN masks edges
//                across groups), SHIL off -> the fabric self-anneals toward
//                the max-cut ground state of every group in parallel
//     lock     : per-group phase-shifted order-2 SHIL ramps in and binarizes
//                each group's phases at {psi_g, psi_g + pi}
//     readout  : the lock lobe of each oscillator is latched as bit b_k
//                (hardware: DFF bank; here: nearest_lock_index). P_EN and
//                SHIL_SEL registers are updated from the readout
//     reinit   : SHIL and couplings released; phases re-randomize (5 ns of
//                free running; group memory lives in the digital registers,
//                NOT in the phases -- the compute-in-memory property)
//   final      : after m = log2(K) stages the accumulated bits identify one
//                of K equally spaced phases = the Potts spin / color
//
// Stage-1 with all couplings active is exactly a max-cut solve of the whole
// graph; its cut is reported for the Fig. 5(b) correlation study.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "msropm/core/schedule.hpp"
#include "msropm/core/shil_plan.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"
#include "msropm/model/maxcut.hpp"
#include "msropm/phase/network.hpp"
#include "msropm/util/rng.hpp"

namespace msropm::core {

struct MsropmConfig {
  unsigned num_colors = 4;                  ///< power of two in [2, 128]
  phase::NetworkParams network{};           ///< oscillator/coupling physics
  StageSchedule schedule{};                 ///< paper 60 ns timing
  phase::GainRamp shil_ramp{0.0, 0.4};      ///< SHIL ramp within lock window
  /// Short SHIL-assisted settling also anneals couplings; keep couplings on
  /// during the lock window (matches Fig. 3 where couplings stay on).
  bool couplings_during_lock = true;

  [[nodiscard]] unsigned num_stages() const { return stages_for_colors(num_colors); }
  [[nodiscard]] double total_time_s() const {
    return schedule.total_time_s(num_stages());
  }
};

/// Per-stage observable outcome.
struct StageOutcome {
  std::vector<std::uint8_t> bits;   ///< readout bit per oscillator
  std::size_t active_edges = 0;     ///< couplings enabled during the anneal
  std::size_t cut_edges = 0;        ///< of those, cut by this stage's readout
  double max_lock_residual = 0.0;   ///< worst distance to a lock point [rad]
};

/// Result of one complete MSROPM run.
struct MsropmResult {
  graph::Coloring colors;               ///< final color per node
  std::vector<StageOutcome> stages;     ///< one per stage
  double total_time_s = 0.0;            ///< schedule time (fixed, 60 ns for K=4)

  /// Stage-1 bipartition (the max-cut solution of the full graph).
  [[nodiscard]] model::CutAssignment stage1_cut() const;
};

/// Called at stage boundaries (for tracing/visualization):
/// (stage index starting at 1, phase label, network state).
using StageObserver =
    std::function<void(unsigned, const char*, const phase::PhaseNetwork&)>;

/// Batched counterpart of StageObserver: the whole replica batch is handed
/// out at every stage boundary (per-replica phases via batch.phases(r)).
using BatchStageObserver =
    std::function<void(unsigned, const char*, const phase::PhaseBatch&)>;

class MultiStagePottsMachine {
 public:
  MultiStagePottsMachine(const graph::Graph& g, MsropmConfig config);

  [[nodiscard]] const MsropmConfig& config() const noexcept { return config_; }
  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }

  /// One full multi-stage run with the given RNG (initial phases + jitter).
  [[nodiscard]] MsropmResult solve(util::Rng& rng,
                                   const StageObserver& observer = {}) const;

  /// Drive rngs.size() independent Monte-Carlo replicas through the full
  /// anneal/lock/readout/reinit stage schedule SIMULTANEOUSLY on one
  /// phase::PhaseBatch: readouts and the P_EN/SHIL_SEL register updates are
  /// applied per replica between the shared integration windows. Replica r
  /// consumes rngs[r] in exactly the order a serial solve(rngs[r]) would, so
  /// its trajectory, per-stage bits, and final coloring are bit-identical to
  /// that serial run at any batch width (hard-gated by
  /// tests/core_batch_equivalence_test.cpp). Returns one result per replica.
  [[nodiscard]] std::vector<MsropmResult> solve_batch(
      std::span<util::Rng> rngs, const BatchStageObserver& observer = {}) const;

 private:
  const graph::Graph* graph_;
  MsropmConfig config_;
};

}  // namespace msropm::core
