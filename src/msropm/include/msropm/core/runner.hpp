#pragma once
// Best-of-N iteration harness (paper Sec. 4: "an Ising/Potts solver is
// typically run multiple times, with the best solution among the iterations
// being selected as the final solution"; all experiments use 40 iterations).
//
// Iterations are embarrassingly parallel: each gets an independent RNG
// stream derived from the base seed and runs on a worker thread. Determinism
// holds for a fixed (seed, iteration) pair regardless of thread count.

#include <cstddef>
#include <vector>

#include "msropm/core/machine.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"

namespace msropm::core {

struct IterationOutcome {
  MsropmResult result;
  double coloring_accuracy = 0.0;  ///< satisfied edges / total edges
  std::size_t stage1_cut = 0;      ///< stage-1 max-cut value
};

struct RunSummary {
  std::vector<IterationOutcome> iterations;
  std::size_t best_index = 0;
  double best_accuracy = 0.0;
  double mean_accuracy = 0.0;
  double worst_accuracy = 0.0;
  std::size_t exact_solutions = 0;  ///< iterations with accuracy == 1.0

  [[nodiscard]] const graph::Coloring& best_coloring() const {
    return iterations.at(best_index).result.colors;
  }
  /// Accuracy series in iteration order (Fig. 5a traces).
  [[nodiscard]] std::vector<double> accuracy_series() const;
  /// Stage-1 cut series in iteration order (Fig. 5b traces).
  [[nodiscard]] std::vector<double> stage1_cut_series() const;
};

struct RunnerOptions {
  std::size_t iterations = 40;    ///< the paper's iteration count
  std::uint64_t seed = 1;
  std::size_t num_threads = 0;    ///< 0 = hardware concurrency
};

/// Run the machine `options.iterations` times and summarize.
[[nodiscard]] RunSummary run_iterations(const MultiStagePottsMachine& machine,
                                        const RunnerOptions& options);

}  // namespace msropm::core
