#pragma once
// Best-of-N iteration harness (paper Sec. 4: "an Ising/Potts solver is
// typically run multiple times, with the best solution among the iterations
// being selected as the final solution"; all experiments use 40 iterations).
//
// Iterations are embarrassingly parallel: each gets an independent RNG
// stream derived from the base seed. Workers claim contiguous index ranges of
// up to `batch_size` iterations and drive each range through ONE
// MultiStagePottsMachine::solve_batch call, so the fabric is integrated as a
// replica batch instead of once per trajectory. Because solve_batch is
// bit-identical to serial solves at any width, determinism holds for a fixed
// (seed, iteration) pair regardless of thread count AND batch size.

#include <cstddef>
#include <vector>

#include "msropm/core/machine.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"
#include "msropm/util/stop_token.hpp"

namespace msropm::core {

struct IterationOutcome {
  MsropmResult result;
  double coloring_accuracy = 0.0;  ///< satisfied edges / total edges
  std::size_t stage1_cut = 0;      ///< stage-1 max-cut value
};

struct RunSummary {
  std::vector<IterationOutcome> iterations;
  std::size_t best_index = 0;
  double best_accuracy = 0.0;
  double mean_accuracy = 0.0;
  double worst_accuracy = 0.0;
  std::size_t exact_solutions = 0;  ///< iterations with accuracy == 1.0
  /// Iterations that actually ran (== options.iterations unless cancelled;
  /// always a prefix of the iteration index space, so `iterations` holds
  /// exactly the completed prefix).
  std::size_t completed = 0;
  bool cancelled = false;  ///< the stop token fired before all iterations ran

  [[nodiscard]] const graph::Coloring& best_coloring() const {
    return iterations.at(best_index).result.colors;
  }
  /// Accuracy series in iteration order (Fig. 5a traces).
  [[nodiscard]] std::vector<double> accuracy_series() const;
  /// Stage-1 cut series in iteration order (Fig. 5b traces).
  [[nodiscard]] std::vector<double> stage1_cut_series() const;
};

struct RunnerOptions {
  std::size_t iterations = 40;    ///< the paper's iteration count
  std::uint64_t seed = 1;
  std::size_t num_threads = 0;    ///< 0 = hardware concurrency
  /// Replicas per solve_batch call (clamped to >= 1). Results are invariant
  /// to this knob; it only trades scheduling granularity against the batch
  /// engine's shared-traversal throughput.
  std::size_t batch_size = 8;
  /// Cooperative cancellation, polled between batches (a started batch runs
  /// to completion). Default token is inert.
  util::StopToken stop{};
};

/// Run the machine `options.iterations` times and summarize.
[[nodiscard]] RunSummary run_iterations(const MultiStagePottsMachine& machine,
                                        const RunnerOptions& options);

}  // namespace msropm::core
