#pragma once
// The MSROPM computation-cycle schedule (paper Sec. 4.1):
//
//   "The random initialization of the ROSC phases at startup and between two
//    stages is empirically set to last 5 ns ... The first (max-cut solving)
//    and second (4-coloring solving) coupled annealing stage free of SHIL
//    injection both last 20 ns ... 5 ns is allocated for stabilization and
//    phase-readout. A complete run of the MSROPM lasts 60 ns."
//
// Durations are fixed regardless of problem size -- the constant-time claim
// the paper inherits from OIM scaling arguments [6].

namespace msropm::core {

struct StageSchedule {
  double init_s = 5e-9;        ///< random initialization window
  double anneal_s = 20e-9;     ///< coupled self-annealing, SHIL off
  double discretize_s = 5e-9;  ///< SHIL injection, stabilization + readout
  double reinit_s = 5e-9;      ///< re-randomization between stages

  /// The paper's 60 ns two-stage schedule.
  [[nodiscard]] static StageSchedule paper_default() noexcept { return {}; }

  /// Total wall time of a run with the given number of stages:
  /// init + stages*(anneal + discretize) + (stages-1)*reinit.
  [[nodiscard]] double total_time_s(unsigned num_stages) const noexcept;

  /// Validity: all durations strictly positive.
  [[nodiscard]] bool valid() const noexcept;
};

}  // namespace msropm::core
