#pragma once
// Problem-to-fabric mapping (paper Sec. 3.3).
//
// A fabricated MSROPM is a fixed rows x cols array of ROSCs wired in the
// King's-graph topology. Problems are mapped onto it with the *local* enable
// signals: "Local signals toggle ROSCs and B2Bs individually and are used to
// map problems to the circuit." An oscillator outside the mapped problem is
// held off (L_EN = 0) and every coupling not present in the guest problem is
// gated off.
//
// This module models that flow at the architectural level:
//
//   PhysicalFabric fabric(46, 46);                  // the taped-out array
//   auto m = map_window(fabric, 7, 7);              // a 49-node instance
//   auto m2 = embed_guest(fabric, guest_graph);     // general small guests
//   MultiStagePottsMachine machine(m.active_graph(), config);
//   auto lifted = m.lift(result.colors);            // colors per fabric cell
//
// embed_guest() places an arbitrary guest graph onto fabric cells such that
// every guest edge lands on a physical B2B coupling (subgraph embedding by
// backtracking; exponential worst case, intended for guests of up to a few
// hundred nodes with King's-graph-compatible structure). Guests that need a
// coupling the fabric does not have (e.g. a K5 clique -- the King's graph's
// max clique is 4) are rejected with std::nullopt.

#include <cstdint>
#include <optional>
#include <vector>

#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"

namespace msropm::core {

/// The fixed physical oscillator array: rows x cols cells, King's wiring.
class PhysicalFabric {
 public:
  PhysicalFabric(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t num_cells() const noexcept { return rows_ * cols_; }
  /// Full physical coupling network (every B2B present in the array).
  [[nodiscard]] const graph::Graph& topology() const noexcept { return topo_; }

  [[nodiscard]] graph::NodeId cell(std::size_t r, std::size_t c) const;
  [[nodiscard]] std::pair<std::size_t, std::size_t> position(graph::NodeId id) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  graph::Graph topo_;
};

/// A problem mapped onto the fabric: which cells and couplings are enabled
/// (the L_EN register images) and how guest node ids relate to cells.
class FabricMapping {
 public:
  FabricMapping(const PhysicalFabric& fabric,
                std::vector<graph::NodeId> guest_to_cell,
                std::vector<std::uint8_t> edge_enable);

  /// L_EN per physical cell (1 = oscillator participates).
  [[nodiscard]] const std::vector<std::uint8_t>& cell_enable() const noexcept {
    return cell_enable_;
  }
  /// L_EN per physical coupling, aligned with topology().edges().
  [[nodiscard]] const std::vector<std::uint8_t>& edge_enable() const noexcept {
    return edge_enable_;
  }
  /// Physical cell hosting guest node i.
  [[nodiscard]] const std::vector<graph::NodeId>& guest_to_cell() const noexcept {
    return guest_to_cell_;
  }
  /// The graph the enabled sub-fabric realizes, in guest node ids. The
  /// machine runs on exactly this graph.
  [[nodiscard]] const graph::Graph& active_graph() const noexcept {
    return active_;
  }
  [[nodiscard]] std::size_t num_guest_nodes() const noexcept {
    return guest_to_cell_.size();
  }
  /// Fraction of physical cells used (utilization reporting).
  [[nodiscard]] double utilization() const noexcept;

  /// Lift a guest-indexed coloring to fabric cells; unused cells get
  /// `unused` (defaults to 0xFF).
  [[nodiscard]] std::vector<graph::Color> lift(
      const graph::Coloring& guest_colors,
      graph::Color unused = 0xFF) const;

 private:
  const PhysicalFabric* fabric_;
  std::vector<graph::NodeId> guest_to_cell_;
  std::vector<std::uint8_t> cell_enable_;
  std::vector<std::uint8_t> edge_enable_;
  graph::Graph active_;
};

/// Map a rows x cols King's-graph instance onto the top-left window of the
/// fabric (the paper's own benchmark mapping). Throws if it does not fit.
[[nodiscard]] FabricMapping map_window(const PhysicalFabric& fabric,
                                       std::size_t rows, std::size_t cols);

/// Map the induced sub-fabric of an arbitrary cell subset: guest node i is
/// the i-th enabled cell; every physical coupling between enabled cells is
/// kept. Throws on out-of-range or duplicate cells.
[[nodiscard]] FabricMapping map_cells(const PhysicalFabric& fabric,
                                      const std::vector<graph::NodeId>& cells);

/// Embed an arbitrary guest graph: find cells such that every guest edge is
/// a physical coupling (couplings between mapped cells that are NOT guest
/// edges are gated off -- that is what per-coupling L_EN is for). Returns
/// std::nullopt when no embedding exists within the node-placement budget.
[[nodiscard]] std::optional<FabricMapping> embed_guest(
    const PhysicalFabric& fabric, const graph::Graph& guest,
    std::size_t backtrack_budget = 200000);

}  // namespace msropm::core
