#include "msropm/core/machine.hpp"

#include <algorithm>
#include <stdexcept>

#include "msropm/phase/lock.hpp"

namespace msropm::core {

model::CutAssignment MsropmResult::stage1_cut() const {
  if (stages.empty()) return {};
  return {stages.front().bits.begin(), stages.front().bits.end()};
}

MultiStagePottsMachine::MultiStagePottsMachine(const graph::Graph& g,
                                               MsropmConfig config)
    : graph_(&g), config_(config) {
  if (!valid_color_count(config_.num_colors)) {
    throw std::invalid_argument("MultiStagePottsMachine: colors must be 2^m");
  }
  if (!config_.schedule.valid()) {
    throw std::invalid_argument("MultiStagePottsMachine: invalid schedule");
  }
}

MsropmResult MultiStagePottsMachine::solve(util::Rng& rng,
                                           const StageObserver& observer) const {
  const graph::Graph& g = *graph_;
  const unsigned num_stages = config_.num_stages();
  const std::size_t n = g.num_nodes();

  phase::PhaseNetwork net(g, config_.network);
  net.set_uniform_coupling(-1.0);  // B2B inverters: anti-ferromagnetic
  net.set_couplings_active(false);
  net.set_shil_active(false);
  if (config_.network.frequency_mismatch_stddev_hz > 0.0) {
    // Process variation: each ROSC free-runs slightly off nominal; the SHIL
    // must overcome this residual detune to capture the oscillator.
    std::vector<double> detune(n);
    const double two_pi = 2.0 * 3.14159265358979323846;
    for (double& d : detune) {
      d = two_pi * config_.network.frequency_mismatch_stddev_hz * rng.normal();
    }
    net.set_detune(std::move(detune));
  }

  // --- init: random startup phases ------------------------------------
  net.randomize_phases(rng);
  net.run(config_.schedule.init_s, rng);
  if (observer) observer(0, "init", net);

  // Accumulated per-oscillator readout bits (the SHIL_SEL register file).
  std::vector<StageBits> bits(n);
  // P_EN register file: edge enabled while endpoints share every bit so far.
  std::vector<std::uint8_t> edge_mask(g.num_edges(), 1);

  MsropmResult result;
  result.total_time_s = config_.total_time_s();

  for (unsigned stage = 1; stage <= num_stages; ++stage) {
    // SHIL phases for the current grouping.
    std::vector<double> psi(n);
    for (std::size_t i = 0; i < n; ++i) psi[i] = shil_phase_for_bits(bits[i]);
    net.set_shil_phases(psi);

    // --- anneal: couplings on within groups, SHIL off -------------------
    net.set_edge_mask(edge_mask);
    net.set_couplings_active(true);
    net.set_shil_active(false);
    net.run(config_.schedule.anneal_s, rng);
    if (observer) observer(stage, "anneal", net);

    // --- lock: ramped SHIL binarizes each group ----------------------
    net.set_couplings_active(config_.couplings_during_lock);
    net.set_shil_active(true);
    net.set_shil_level(1.0);
    net.run(config_.schedule.discretize_s, rng, &config_.shil_ramp);
    if (observer) observer(stage, "lock", net);

    // --- readout: latch the lock lobe as bit b_stage ----------------------
    StageOutcome outcome;
    outcome.bits.resize(n);
    const auto& theta = net.phases();
    for (std::size_t i = 0; i < n; ++i) {
      outcome.bits[i] = static_cast<std::uint8_t>(
          phase::nearest_lock_index(theta[i], psi[i], 2));
      bits[i].push_back(outcome.bits[i]);
    }
    outcome.max_lock_residual = phase::max_lock_residual(theta, psi, 2);

    // Update P_EN: cut couplings whose endpoints read out different bits.
    const auto edges = g.edges();
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (!edge_mask[e]) continue;
      ++outcome.active_edges;
      if (outcome.bits[edges[e].u] != outcome.bits[edges[e].v]) {
        ++outcome.cut_edges;
        edge_mask[e] = 0;
      }
    }
    result.stages.push_back(std::move(outcome));

    // --- reinit between stages -------------------------------------------
    if (stage < num_stages) {
      net.set_shil_active(false);
      net.set_couplings_active(false);
      // Free-running drift (jitter + mismatch) decorrelates the phases; the
      // stage memory lives in the bits/edge_mask registers.
      net.randomize_phases(rng);
      net.run(config_.schedule.reinit_s, rng);
      if (observer) observer(stage, "reinit", net);
    }
  }

  result.colors.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.colors[i] = static_cast<graph::Color>(color_from_bits(bits[i]));
  }
  return result;
}

std::vector<MsropmResult> MultiStagePottsMachine::solve_batch(
    std::span<util::Rng> rngs, const BatchStageObserver& observer) const {
  const graph::Graph& g = *graph_;
  const unsigned num_stages = config_.num_stages();
  const std::size_t n = g.num_nodes();
  const std::size_t replicas = rngs.size();
  if (replicas == 0) return {};

  phase::PhaseBatch net(g, config_.network, replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    net.set_uniform_coupling(r, -1.0);  // B2B inverters: anti-ferromagnetic
    net.set_couplings_active(r, false);
    net.set_shil_active(r, false);
  }
  if (config_.network.frequency_mismatch_stddev_hz > 0.0) {
    // Process variation, drawn per replica from ITS stream in the same order
    // as the serial path (detune before initial phases).
    std::vector<double> detune(n);
    const double two_pi = 2.0 * 3.14159265358979323846;
    for (std::size_t r = 0; r < replicas; ++r) {
      for (double& d : detune) {
        d = two_pi * config_.network.frequency_mismatch_stddev_hz *
            rngs[r].normal();
      }
      net.set_detune(r, detune);
    }
  }

  // --- init: random startup phases ------------------------------------
  for (std::size_t r = 0; r < replicas; ++r) net.randomize_phases(r, rngs[r]);
  net.run(config_.schedule.init_s, rngs);
  if (observer) observer(0, "init", net);

  // Per-replica register files: accumulated readout bits (SHIL_SEL) and the
  // P_EN edge masks. Replicas diverge here after the first readout.
  std::vector<std::vector<StageBits>> bits(replicas,
                                           std::vector<StageBits>(n));
  std::vector<std::vector<std::uint8_t>> edge_mask(
      replicas, std::vector<std::uint8_t>(g.num_edges(), 1));

  std::vector<MsropmResult> results(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    results[r].total_time_s = config_.total_time_s();
  }

  std::vector<double> psi(n);
  for (unsigned stage = 1; stage <= num_stages; ++stage) {
    // SHIL phases + P_EN masks for each replica's current grouping.
    for (std::size_t r = 0; r < replicas; ++r) {
      for (std::size_t i = 0; i < n; ++i) psi[i] = shil_phase_for_bits(bits[r][i]);
      net.set_shil_phases(r, psi);
      net.set_edge_mask(r, edge_mask[r]);
      net.set_couplings_active(r, true);
      net.set_shil_active(r, false);
    }

    // --- anneal: couplings on within groups, SHIL off -------------------
    net.run(config_.schedule.anneal_s, rngs);
    if (observer) observer(stage, "anneal", net);

    // --- lock: ramped SHIL binarizes each group ----------------------
    for (std::size_t r = 0; r < replicas; ++r) {
      net.set_couplings_active(r, config_.couplings_during_lock);
      net.set_shil_active(r, true);
      net.set_shil_level(r, 1.0);
    }
    net.run(config_.schedule.discretize_s, rngs, &config_.shil_ramp);
    if (observer) observer(stage, "lock", net);

    // --- readout + register update, per replica --------------------------
    const auto edges = g.edges();
    for (std::size_t r = 0; r < replicas; ++r) {
      StageOutcome outcome;
      outcome.bits.resize(n);
      const std::span<const double> theta = net.phases(r);
      const std::span<const double> psi_r = net.shil_phases(r);
      double max_residual = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        outcome.bits[i] = static_cast<std::uint8_t>(
            phase::nearest_lock_index(theta[i], psi_r[i], 2));
        bits[r][i].push_back(outcome.bits[i]);
        max_residual =
            std::max(max_residual, phase::lock_residual(theta[i], psi_r[i], 2));
      }
      outcome.max_lock_residual = max_residual;

      // Update P_EN: cut couplings whose endpoints read out different bits.
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if (!edge_mask[r][e]) continue;
        ++outcome.active_edges;
        if (outcome.bits[edges[e].u] != outcome.bits[edges[e].v]) {
          ++outcome.cut_edges;
          edge_mask[r][e] = 0;
        }
      }
      results[r].stages.push_back(std::move(outcome));
    }

    // --- reinit between stages -------------------------------------------
    if (stage < num_stages) {
      for (std::size_t r = 0; r < replicas; ++r) {
        net.set_shil_active(r, false);
        net.set_couplings_active(r, false);
        net.randomize_phases(r, rngs[r]);
      }
      net.run(config_.schedule.reinit_s, rngs);
      if (observer) observer(stage, "reinit", net);
    }
  }

  for (std::size_t r = 0; r < replicas; ++r) {
    results[r].colors.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      results[r].colors[i] =
          static_cast<graph::Color>(color_from_bits(bits[r][i]));
    }
  }
  return results;
}

}  // namespace msropm::core
