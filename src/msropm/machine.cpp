#include "msropm/core/machine.hpp"

#include <stdexcept>

#include "msropm/phase/lock.hpp"

namespace msropm::core {

model::CutAssignment MsropmResult::stage1_cut() const {
  if (stages.empty()) return {};
  return {stages.front().bits.begin(), stages.front().bits.end()};
}

MultiStagePottsMachine::MultiStagePottsMachine(const graph::Graph& g,
                                               MsropmConfig config)
    : graph_(&g), config_(config) {
  if (!valid_color_count(config_.num_colors)) {
    throw std::invalid_argument("MultiStagePottsMachine: colors must be 2^m");
  }
  if (!config_.schedule.valid()) {
    throw std::invalid_argument("MultiStagePottsMachine: invalid schedule");
  }
}

MsropmResult MultiStagePottsMachine::solve(util::Rng& rng,
                                           const StageObserver& observer) const {
  const graph::Graph& g = *graph_;
  const unsigned num_stages = config_.num_stages();
  const std::size_t n = g.num_nodes();

  phase::PhaseNetwork net(g, config_.network);
  net.set_uniform_coupling(-1.0);  // B2B inverters: anti-ferromagnetic
  net.set_couplings_active(false);
  net.set_shil_active(false);
  if (config_.network.frequency_mismatch_stddev_hz > 0.0) {
    // Process variation: each ROSC free-runs slightly off nominal; the SHIL
    // must overcome this residual detune to capture the oscillator.
    std::vector<double> detune(n);
    const double two_pi = 2.0 * 3.14159265358979323846;
    for (double& d : detune) {
      d = two_pi * config_.network.frequency_mismatch_stddev_hz * rng.normal();
    }
    net.set_detune(std::move(detune));
  }

  // --- init: random startup phases ------------------------------------
  net.randomize_phases(rng);
  net.run(config_.schedule.init_s, rng);
  if (observer) observer(0, "init", net);

  // Accumulated per-oscillator readout bits (the SHIL_SEL register file).
  std::vector<StageBits> bits(n);
  // P_EN register file: edge enabled while endpoints share every bit so far.
  std::vector<std::uint8_t> edge_mask(g.num_edges(), 1);

  MsropmResult result;
  result.total_time_s = config_.total_time_s();

  for (unsigned stage = 1; stage <= num_stages; ++stage) {
    // SHIL phases for the current grouping.
    std::vector<double> psi(n);
    for (std::size_t i = 0; i < n; ++i) psi[i] = shil_phase_for_bits(bits[i]);
    net.set_shil_phases(psi);

    // --- anneal: couplings on within groups, SHIL off -------------------
    net.set_edge_mask(edge_mask);
    net.set_couplings_active(true);
    net.set_shil_active(false);
    net.run(config_.schedule.anneal_s, rng);
    if (observer) observer(stage, "anneal", net);

    // --- lock: ramped SHIL binarizes each group ----------------------
    net.set_couplings_active(config_.couplings_during_lock);
    net.set_shil_active(true);
    net.set_shil_level(1.0);
    net.run(config_.schedule.discretize_s, rng, &config_.shil_ramp);
    if (observer) observer(stage, "lock", net);

    // --- readout: latch the lock lobe as bit b_stage ----------------------
    StageOutcome outcome;
    outcome.bits.resize(n);
    const auto& theta = net.phases();
    for (std::size_t i = 0; i < n; ++i) {
      outcome.bits[i] = static_cast<std::uint8_t>(
          phase::nearest_lock_index(theta[i], psi[i], 2));
      bits[i].push_back(outcome.bits[i]);
    }
    outcome.max_lock_residual = phase::max_lock_residual(theta, psi, 2);

    // Update P_EN: cut couplings whose endpoints read out different bits.
    const auto edges = g.edges();
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (!edge_mask[e]) continue;
      ++outcome.active_edges;
      if (outcome.bits[edges[e].u] != outcome.bits[edges[e].v]) {
        ++outcome.cut_edges;
        edge_mask[e] = 0;
      }
    }
    result.stages.push_back(std::move(outcome));

    // --- reinit between stages -------------------------------------------
    if (stage < num_stages) {
      net.set_shil_active(false);
      net.set_couplings_active(false);
      // Free-running drift (jitter + mismatch) decorrelates the phases; the
      // stage memory lives in the bits/edge_mask registers.
      net.randomize_phases(rng);
      net.run(config_.schedule.reinit_s, rng);
      if (observer) observer(stage, "reinit", net);
    }
  }

  result.colors.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.colors[i] = static_cast<graph::Color>(color_from_bits(bits[i]));
  }
  return result;
}

}  // namespace msropm::core
