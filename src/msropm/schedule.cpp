#include "msropm/core/schedule.hpp"

namespace msropm::core {

double StageSchedule::total_time_s(unsigned num_stages) const noexcept {
  if (num_stages == 0) return 0.0;
  return init_s +
         static_cast<double>(num_stages) * (anneal_s + discretize_s) +
         static_cast<double>(num_stages - 1) * reinit_s;
}

bool StageSchedule::valid() const noexcept {
  return init_s > 0.0 && anneal_s > 0.0 && discretize_s > 0.0 && reinit_s > 0.0;
}

}  // namespace msropm::core
