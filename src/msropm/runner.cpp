#include "msropm/core/runner.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

namespace msropm::core {

std::vector<double> RunSummary::accuracy_series() const {
  std::vector<double> s;
  s.reserve(iterations.size());
  for (const auto& it : iterations) s.push_back(it.coloring_accuracy);
  return s;
}

std::vector<double> RunSummary::stage1_cut_series() const {
  std::vector<double> s;
  s.reserve(iterations.size());
  for (const auto& it : iterations) s.push_back(static_cast<double>(it.stage1_cut));
  return s;
}

RunSummary run_iterations(const MultiStagePottsMachine& machine,
                          const RunnerOptions& options) {
  const std::size_t iters = options.iterations;
  const std::size_t batch = std::max<std::size_t>(1, options.batch_size);
  RunSummary summary;
  summary.iterations.resize(iters);

  std::size_t workers = options.num_threads != 0
                            ? options.num_threads
                            : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, std::max<std::size_t>(1, (iters + batch - 1) / batch));

  // Workers claim contiguous [i, i+batch) windows; every claimed window runs
  // to completion even if the stop token fires mid-batch, so the completed
  // iterations always form the prefix [0, next) of the index space.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  auto work = [&]() {
    std::vector<util::Rng> rngs;
    for (;;) {
      if (options.stop.stop_requested()) {
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
      const std::size_t begin = next.fetch_add(batch);
      if (begin >= iters) return;
      const std::size_t count = std::min(batch, iters - begin);
      // Independent, deterministic stream per iteration: the same derivation
      // a serial run uses, so results are invariant to batch/thread counts.
      rngs.clear();
      for (std::size_t k = 0; k < count; ++k) {
        const std::size_t i = begin + k;
        rngs.emplace_back(options.seed * 0x9e3779b97f4a7c15ull +
                          i * 0xbf58476d1ce4e5b9ull + 1);
      }
      std::vector<MsropmResult> results = machine.solve_batch(rngs);
      for (std::size_t k = 0; k < count; ++k) {
        IterationOutcome out;
        out.result = std::move(results[k]);
        out.coloring_accuracy =
            graph::coloring_accuracy(machine.graph(), out.result.colors);
        out.stage1_cut =
            out.result.stages.empty() ? 0 : out.result.stages.front().cut_edges;
        summary.iterations[begin + k] = std::move(out);
      }
    }
  };

  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
    for (auto& t : pool) t.join();
  }

  summary.completed = std::min(next.load(std::memory_order_relaxed), iters);
  summary.cancelled =
      cancelled.load(std::memory_order_relaxed) && summary.completed < iters;
  summary.iterations.resize(summary.completed);

  const std::size_t done = summary.completed;
  summary.best_accuracy = 0.0;
  summary.worst_accuracy = 1.0;
  double total = 0.0;
  for (std::size_t i = 0; i < done; ++i) {
    const double acc = summary.iterations[i].coloring_accuracy;
    total += acc;
    if (acc > summary.best_accuracy) {
      summary.best_accuracy = acc;
      summary.best_index = i;
    }
    summary.worst_accuracy = std::min(summary.worst_accuracy, acc);
    if (acc >= 1.0) ++summary.exact_solutions;
  }
  summary.mean_accuracy = done ? total / static_cast<double>(done) : 0.0;
  if (done == 0) summary.worst_accuracy = 0.0;
  return summary;
}

}  // namespace msropm::core
