#include "msropm/core/runner.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

namespace msropm::core {

std::vector<double> RunSummary::accuracy_series() const {
  std::vector<double> s;
  s.reserve(iterations.size());
  for (const auto& it : iterations) s.push_back(it.coloring_accuracy);
  return s;
}

std::vector<double> RunSummary::stage1_cut_series() const {
  std::vector<double> s;
  s.reserve(iterations.size());
  for (const auto& it : iterations) s.push_back(static_cast<double>(it.stage1_cut));
  return s;
}

RunSummary run_iterations(const MultiStagePottsMachine& machine,
                          const RunnerOptions& options) {
  const std::size_t iters = options.iterations;
  RunSummary summary;
  summary.iterations.resize(iters);

  std::size_t workers = options.num_threads != 0
                            ? options.num_threads
                            : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, std::max<std::size_t>(1, iters));

  std::atomic<std::size_t> next{0};
  auto work = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= iters) return;
      // Independent, deterministic stream per iteration.
      util::Rng rng(options.seed * 0x9e3779b97f4a7c15ull + i * 0xbf58476d1ce4e5b9ull + 1);
      IterationOutcome out;
      out.result = machine.solve(rng);
      out.coloring_accuracy =
          graph::coloring_accuracy(machine.graph(), out.result.colors);
      out.stage1_cut =
          out.result.stages.empty() ? 0 : out.result.stages.front().cut_edges;
      summary.iterations[i] = std::move(out);
    }
  };

  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
    for (auto& t : pool) t.join();
  }

  summary.best_accuracy = 0.0;
  summary.worst_accuracy = 1.0;
  double total = 0.0;
  for (std::size_t i = 0; i < iters; ++i) {
    const double acc = summary.iterations[i].coloring_accuracy;
    total += acc;
    if (acc > summary.best_accuracy) {
      summary.best_accuracy = acc;
      summary.best_index = i;
    }
    summary.worst_accuracy = std::min(summary.worst_accuracy, acc);
    if (acc >= 1.0) ++summary.exact_solutions;
  }
  summary.mean_accuracy = iters ? total / static_cast<double>(iters) : 0.0;
  if (iters == 0) summary.worst_accuracy = 0.0;
  return summary;
}

}  // namespace msropm::core
