#include "msropm/core/shil_plan.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace msropm::core {

bool valid_color_count(unsigned num_colors) noexcept {
  return num_colors >= 2 && (num_colors & (num_colors - 1)) == 0 &&
         num_colors <= 128;
}

unsigned stages_for_colors(unsigned num_colors) {
  if (!valid_color_count(num_colors)) {
    throw std::invalid_argument(
        "stages_for_colors: colors must be a power of two in [2, 128]");
  }
  unsigned stages = 0;
  while ((1u << stages) < num_colors) ++stages;
  return stages;
}

double shil_phase_for_bits(const StageBits& bits) {
  double psi = 0.0;
  double weight = 0.5;
  for (std::uint8_t b : bits) {
    if (b > 1) throw std::invalid_argument("shil_phase_for_bits: bit > 1");
    psi += static_cast<double>(b) * weight;
    weight *= 0.5;
  }
  return std::numbers::pi * psi;
}

std::uint32_t group_from_bits(const StageBits& bits) noexcept {
  std::uint32_t g = 0;
  for (std::size_t j = 0; j < bits.size(); ++j) {
    g |= static_cast<std::uint32_t>(bits[j] & 1u) << j;
  }
  return g;
}

double final_phase_from_bits(const StageBits& bits) {
  if (bits.empty()) throw std::invalid_argument("final_phase_from_bits: no bits");
  StageBits prefix(bits.begin(), bits.end() - 1);
  return shil_phase_for_bits(prefix) +
         std::numbers::pi * static_cast<double>(bits.back());
}

std::uint8_t color_from_bits(const StageBits& bits) {
  const auto m = static_cast<unsigned>(bits.size());
  if (m == 0 || m > 7) throw std::invalid_argument("color_from_bits: 1..7 stages");
  const unsigned k = 1u << m;
  const double slot = 2.0 * std::numbers::pi / static_cast<double>(k);
  const double theta = final_phase_from_bits(bits);
  auto idx = static_cast<long>(std::lround(theta / slot));
  idx %= static_cast<long>(k);
  if (idx < 0) idx += static_cast<long>(k);
  return static_cast<std::uint8_t>(idx);
}

StageBits bits_from_color(std::uint8_t color, unsigned num_stages) {
  if (num_stages == 0 || num_stages > 7) {
    throw std::invalid_argument("bits_from_color: 1..7 stages");
  }
  const unsigned k = 1u << num_stages;
  if (color >= k) throw std::invalid_argument("bits_from_color: color out of range");
  // Invert by enumeration: the forward map is a bijection over 2^m patterns.
  for (std::uint32_t pattern = 0; pattern < k; ++pattern) {
    StageBits bits(num_stages);
    for (unsigned j = 0; j < num_stages; ++j) {
      bits[j] = static_cast<std::uint8_t>((pattern >> j) & 1u);
    }
    if (color_from_bits(bits) == color) return bits;
  }
  throw std::logic_error("bits_from_color: bijection violated");
}

}  // namespace msropm::core
