#include "msropm/core/fabric_map.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "msropm/graph/builders.hpp"

namespace msropm::core {

PhysicalFabric::PhysicalFabric(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), topo_(graph::kings_graph(rows, cols)) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("PhysicalFabric: empty array");
  }
}

graph::NodeId PhysicalFabric::cell(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("PhysicalFabric::cell");
  return static_cast<graph::NodeId>(r * cols_ + c);
}

std::pair<std::size_t, std::size_t> PhysicalFabric::position(
    graph::NodeId id) const {
  if (id >= num_cells()) throw std::out_of_range("PhysicalFabric::position");
  return {id / cols_, id % cols_};
}

FabricMapping::FabricMapping(const PhysicalFabric& fabric,
                             std::vector<graph::NodeId> guest_to_cell,
                             std::vector<std::uint8_t> edge_enable)
    : fabric_(&fabric),
      guest_to_cell_(std::move(guest_to_cell)),
      cell_enable_(fabric.num_cells(), 0),
      edge_enable_(std::move(edge_enable)) {
  if (edge_enable_.size() != fabric.topology().num_edges()) {
    throw std::invalid_argument("FabricMapping: edge_enable size mismatch");
  }
  // Inverse map and L_EN image.
  std::vector<std::uint32_t> cell_to_guest(fabric.num_cells(), UINT32_MAX);
  for (std::size_t i = 0; i < guest_to_cell_.size(); ++i) {
    const auto cell = guest_to_cell_[i];
    if (cell >= fabric.num_cells()) {
      throw std::invalid_argument("FabricMapping: cell out of range");
    }
    if (cell_to_guest[cell] != UINT32_MAX) {
      throw std::invalid_argument("FabricMapping: duplicate cell");
    }
    cell_to_guest[cell] = static_cast<std::uint32_t>(i);
    cell_enable_[cell] = 1;
  }
  // The active graph: enabled couplings between mapped cells, in guest ids.
  graph::GraphBuilder builder(guest_to_cell_.size());
  const auto edges = fabric.topology().edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (!edge_enable_[e]) continue;
    const auto gu = cell_to_guest[edges[e].u];
    const auto gv = cell_to_guest[edges[e].v];
    if (gu == UINT32_MAX || gv == UINT32_MAX) {
      throw std::invalid_argument(
          "FabricMapping: enabled coupling touches a disabled cell");
    }
    builder.add_edge(gu, gv);
  }
  active_ = builder.build();
}

double FabricMapping::utilization() const noexcept {
  return static_cast<double>(guest_to_cell_.size()) /
         static_cast<double>(fabric_->num_cells());
}

std::vector<graph::Color> FabricMapping::lift(
    const graph::Coloring& guest_colors, graph::Color unused) const {
  if (guest_colors.size() != guest_to_cell_.size()) {
    throw std::invalid_argument("FabricMapping::lift: size mismatch");
  }
  std::vector<graph::Color> out(fabric_->num_cells(), unused);
  for (std::size_t i = 0; i < guest_colors.size(); ++i) {
    out[guest_to_cell_[i]] = guest_colors[i];
  }
  return out;
}

FabricMapping map_window(const PhysicalFabric& fabric, std::size_t rows,
                         std::size_t cols) {
  if (rows > fabric.rows() || cols > fabric.cols()) {
    throw std::invalid_argument("map_window: window exceeds fabric");
  }
  std::vector<graph::NodeId> cells;
  cells.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) cells.push_back(fabric.cell(r, c));
  }
  return map_cells(fabric, cells);
}

FabricMapping map_cells(const PhysicalFabric& fabric,
                        const std::vector<graph::NodeId>& cells) {
  std::vector<std::uint8_t> in_set(fabric.num_cells(), 0);
  for (const auto cell : cells) {
    if (cell >= fabric.num_cells()) {
      throw std::invalid_argument("map_cells: cell out of range");
    }
    in_set[cell] = 1;
  }
  const auto edges = fabric.topology().edges();
  std::vector<std::uint8_t> edge_enable(edges.size(), 0);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    edge_enable[e] = in_set[edges[e].u] && in_set[edges[e].v];
  }
  return FabricMapping(fabric, cells, std::move(edge_enable));
}

namespace {

/// Backtracking subgraph embedder: place guest nodes (highest degree first)
/// onto fabric cells so that every guest edge to an already-placed neighbor
/// is a physical coupling. Bounded by a placement-attempt budget.
class Embedder {
 public:
  Embedder(const PhysicalFabric& fabric, const graph::Graph& guest,
           std::size_t budget)
      : fabric_(fabric), guest_(guest), budget_(budget) {
    order_.resize(guest.num_nodes());
    std::iota(order_.begin(), order_.end(), graph::NodeId{0});
    // High-degree guests first: fail fast on the constrained nodes.
    std::stable_sort(order_.begin(), order_.end(),
                     [&guest](graph::NodeId a, graph::NodeId b) {
                       return guest.degree(a) > guest.degree(b);
                     });
    placement_.assign(guest.num_nodes(), UINT32_MAX);
    cell_used_.assign(fabric.num_cells(), 0);
  }

  [[nodiscard]] bool run() { return place(0); }

  [[nodiscard]] const std::vector<std::uint32_t>& placement() const noexcept {
    return placement_;
  }

 private:
  [[nodiscard]] bool consistent(graph::NodeId guest_node,
                                graph::NodeId cell) const {
    for (const auto nb : guest_.neighbors(guest_node)) {
      const auto placed = placement_[nb];
      if (placed == UINT32_MAX) continue;
      if (!fabric_.topology().has_edge(cell, static_cast<graph::NodeId>(placed))) {
        return false;
      }
    }
    return true;
  }

  /// Candidate cells for the next node: all cells for the first node would
  /// be wasteful on a large fabric; anchor the first node near the origin
  /// (translation symmetry of the array) and try neighbors-of-placed first.
  [[nodiscard]] std::vector<graph::NodeId> candidates(std::size_t idx) const {
    const auto guest_node = order_[idx];
    std::vector<graph::NodeId> cand;
    bool anchored = false;
    for (const auto nb : guest_.neighbors(guest_node)) {
      const auto placed = placement_[nb];
      if (placed == UINT32_MAX) continue;
      anchored = true;
      for (const auto cell :
           fabric_.topology().neighbors(static_cast<graph::NodeId>(placed))) {
        if (!cell_used_[cell]) cand.push_back(cell);
      }
    }
    if (!anchored) {
      // Unanchored component: any unused cell (first node: symmetry-reduce
      // to one quadrant corner region for speed).
      const std::size_t rmax = idx == 0 ? (fabric_.rows() + 1) / 2 : fabric_.rows();
      const std::size_t cmax = idx == 0 ? (fabric_.cols() + 1) / 2 : fabric_.cols();
      for (std::size_t r = 0; r < rmax; ++r) {
        for (std::size_t c = 0; c < cmax; ++c) {
          const auto cell = fabric_.cell(r, c);
          if (!cell_used_[cell]) cand.push_back(cell);
        }
      }
    }
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
    return cand;
  }

  [[nodiscard]] bool place(std::size_t idx) {
    if (idx == order_.size()) return true;
    const auto guest_node = order_[idx];
    for (const auto cell : candidates(idx)) {
      if (budget_ == 0) return false;
      --budget_;
      if (!consistent(guest_node, cell)) continue;
      placement_[guest_node] = cell;
      cell_used_[cell] = 1;
      if (place(idx + 1)) return true;
      placement_[guest_node] = UINT32_MAX;
      cell_used_[cell] = 0;
    }
    return false;
  }

  const PhysicalFabric& fabric_;
  const graph::Graph& guest_;
  std::size_t budget_;
  std::vector<graph::NodeId> order_;
  std::vector<std::uint32_t> placement_;
  std::vector<std::uint8_t> cell_used_;
};

}  // namespace

std::optional<FabricMapping> embed_guest(const PhysicalFabric& fabric,
                                         const graph::Graph& guest,
                                         std::size_t backtrack_budget) {
  if (guest.num_nodes() > fabric.num_cells()) return std::nullopt;
  Embedder embedder(fabric, guest, backtrack_budget);
  if (!embedder.run()) return std::nullopt;

  std::vector<graph::NodeId> guest_to_cell(guest.num_nodes());
  std::vector<std::uint32_t> cell_to_guest(fabric.num_cells(), UINT32_MAX);
  for (std::size_t i = 0; i < guest.num_nodes(); ++i) {
    guest_to_cell[i] = static_cast<graph::NodeId>(embedder.placement()[i]);
    cell_to_guest[guest_to_cell[i]] = static_cast<std::uint32_t>(i);
  }
  // Enable exactly the couplings corresponding to guest edges; physical
  // couplings between mapped cells that are not guest edges stay gated.
  const auto edges = fabric.topology().edges();
  std::vector<std::uint8_t> edge_enable(edges.size(), 0);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto gu = cell_to_guest[edges[e].u];
    const auto gv = cell_to_guest[edges[e].v];
    if (gu == UINT32_MAX || gv == UINT32_MAX) continue;
    edge_enable[e] = guest.has_edge(static_cast<graph::NodeId>(gu),
                                    static_cast<graph::NodeId>(gv));
  }
  return FabricMapping(fabric, std::move(guest_to_cell), std::move(edge_enable));
}

}  // namespace msropm::core
