#include "msropm/core/circuit_machine.hpp"

#include "msropm/core/shil_plan.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace msropm::core {

CircuitMsropm::CircuitMsropm(const graph::Graph& g, CircuitMsropmConfig config)
    : graph_(&g), config_(config) {
  if (!config_.schedule.valid()) {
    throw std::invalid_argument("CircuitMsropm: invalid schedule");
  }
}

CircuitMsropmResult CircuitMsropm::solve(
    util::Rng& rng, const CircuitStageObserver& observer,
    const std::function<void(const circuit::RoscFabric&)>& on_step) const {
  const graph::Graph& g = *graph_;
  const std::size_t n = g.num_nodes();
  circuit::RoscFabric fabric(g, config_.fabric);
  // Defect handling: dead cells are held off and every coupling incident to
  // one is gated for the whole run (its parked output must not statically
  // bias live neighbors).
  std::vector<std::uint8_t> alive(n, 1);
  for (const std::size_t dead : config_.disabled_oscillators) {
    fabric.set_oscillator_enable(dead, false);
    alive.at(dead) = 0;
  }
  std::vector<std::uint8_t> base_mask(g.num_edges(), 1);
  {
    const auto all_edges = g.edges();
    for (std::size_t e = 0; e < all_edges.size(); ++e) {
      base_mask[e] = alive[all_edges[e].u] && alive[all_edges[e].v];
    }
  }

  const auto notify = [&](const char* label) {
    if (observer) observer(label, fabric);
  };

  // --- init: random startup instants, couplings and SHIL off -------------
  fabric.set_couplings_enabled(false);
  fabric.set_shil_enabled(false);
  fabric.stagger_startup(rng, 0.6 * config_.schedule.init_s);
  notify("init");
  fabric.run(config_.schedule.init_s, on_step);

  // --- stage 1 anneal: all (live) couplings on (Fig. 3a) -------------------
  fabric.set_edge_enable(base_mask);
  fabric.set_couplings_enabled(true);
  notify("stage1_anneal");
  fabric.run(config_.schedule.anneal_s, on_step);

  // --- stage 1 lock: SHIL 1 on every oscillator (Fig. 3b) ----------------
  fabric.set_shil_select_uniform(0);
  fabric.set_shil_enabled(true);
  notify("stage1_shil");
  fabric.run(config_.schedule.discretize_s * config_.readout_point, on_step);

  // Stage-1 readout with binary resolution: bit = locked lobe (0deg vs
  // 180deg). Buckets 0..3 of a 4-ary readout fold to bits via bucket/2
  // tolerance: locked phases sit at buckets 0 and 2.
  circuit::PhaseReadout readout1(n, 2, config_.fabric.reference_period_s,
                                 config_.fabric.reference_offset_fraction());
  readout1.capture_all(fabric);
  CircuitMsropmResult result;
  result.stage1_bits.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!readout1.captured(i)) {
      // Dead cell: no edge ever reached the DFFs. Latch bit 0 and record.
      result.stage1_bits[i] = 0;
      result.dead_oscillators.push_back(i);
      continue;
    }
    result.stage1_bits[i] = static_cast<std::uint8_t>(readout1.bucket(i));
  }
  fabric.run(config_.schedule.discretize_s * (1.0 - config_.readout_point),
             on_step);

  // --- partition (P_EN) + SHIL_SEL from the readout ------------------------
  std::vector<std::uint8_t> mask = base_mask;
  const auto edges = g.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const bool same =
        result.stage1_bits[edges[e].u] == result.stage1_bits[edges[e].v];
    if (!same) {
      mask[e] = 0;
      ++result.stage1_cut;
    }
  }
  fabric.set_edge_enable(mask);
  fabric.set_shil_select(result.stage1_bits);

  // --- reinit: SHIL and couplings released (Fig. 3c) ---------------------
  fabric.set_shil_enabled(false);
  fabric.set_couplings_enabled(false);
  fabric.stagger_startup(rng, 0.6 * config_.schedule.reinit_s);
  notify("reinit");
  fabric.run(config_.schedule.reinit_s, on_step);

  // --- stage 2 anneal: couplings of the two partitions on (Fig. 3d) -------
  fabric.set_couplings_enabled(true);
  notify("stage2_anneal");
  fabric.run(config_.schedule.anneal_s, on_step);

  // --- stage 2 lock: SHIL 1 / SHIL 2 per partition (Fig. 3e) -------------
  fabric.set_shil_enabled(true);
  notify("stage2_shil");
  fabric.run(config_.schedule.discretize_s * config_.readout_point, on_step);

  // Final readout: each oscillator's DFF pair samples against the lobe
  // references of its *own* SHIL (group A: REF_1/REF_3 at 0/180 deg; group
  // B: REF_2/REF_4 at 90/270 deg), yielding the stage-2 bit b2. The color
  // combines the SHIL_SEL register b1 with b2 (divide-and-color: the color
  // sets {0,2} and {1,3} are disjoint by construction, Fig. 2e).
  const double skew = config_.fabric.reference_offset_fraction();
  circuit::PhaseReadout readout2a(n, 2, config_.fabric.reference_period_s, skew);
  circuit::PhaseReadout readout2b(n, 2, config_.fabric.reference_period_s,
                                  skew + 0.25);
  readout2a.capture_all(fabric);
  readout2b.capture_all(fabric);
  result.colors.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t b1 = result.stage1_bits[i];
    const circuit::PhaseReadout& ro = b1 ? readout2b : readout2a;
    if (!ro.captured(i)) {
      result.colors[i] = 0;
      continue;
    }
    const auto b2 = static_cast<std::uint8_t>(ro.bucket(i));
    result.colors[i] =
        static_cast<graph::Color>(color_from_bits(StageBits{b1, b2}));
  }
  result.final_phases = fabric.phases();
  fabric.run(config_.schedule.discretize_s * (1.0 - config_.readout_point),
             on_step);
  notify("done");
  return result;
}

}  // namespace msropm::core
