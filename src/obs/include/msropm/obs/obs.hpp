#pragma once
// msropm::obs — cross-cutting observability for the solver stack.
//
// Two facilities share one dynamic gate word:
//
//  * Metrics registry: named monotonic counters, gauges, and timers. Counters
//    accumulate into lock-free thread-local cells (relaxed atomics); timers
//    feed util::RunningStats plus a capped util::SampleSet per thread (for
//    p50/p90/p99). snapshot_metrics() merges live cells with the totals of
//    already-exited threads into one consistent view.
//
//  * Span tracer: scoped RAII spans recorded into per-lane ring buffers and
//    exported as Chrome trace-event JSON (write_chrome_trace(); the file
//    loads in Perfetto / chrome://tracing). Lanes are keyed by name, so a
//    portfolio worker slot keeps one lane across waves; threads that never
//    call set_thread_lane() get an auto lane. Rings drop the oldest events
//    when full, so tracing a long run costs bounded memory.
//
// Overhead contract (enforced by BM_ObsSpanOverhead in bench_micro_perf and
// the CHECK_OBS=1 gate in scripts/check.sh):
//
//  * Compile time: configuring with -DMSROPM_OBS=OFF defines
//    MSROPM_OBS_DISABLED and every entry point below becomes an inline no-op;
//    spans vanish from the binary entirely.
//  * Run time: both facilities are DISABLED by default. A span, counter add,
//    or instant marker in a disabled run costs one relaxed atomic load and a
//    predicted branch (single-digit ns). Enabling metrics adds two steady-
//    clock reads per span; enabling tracing adds a bounded ring append under
//    the lane's mutex (uncontended — one lane per thread).
//
// Thread safety: everything here may be called from any thread at any time,
// including concurrently with snapshot_metrics()/snapshot_trace()/
// write_chrome_trace(). Snapshots taken while writers are active are a
// monotonic point-in-time view; join writers first for exact totals.

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "msropm/util/stats.hpp"

namespace msropm::obs {

/// Index into one of the registry's three id spaces (counter/gauge/timer).
using MetricId = std::uint32_t;

/// Sentinel for "span has no timer metric attached".
inline constexpr MetricId kNoMetric = 0xFFFFFFFFu;

/// Gate bits (see gate()).
inline constexpr std::uint32_t kMetricsBit = 1u;
inline constexpr std::uint32_t kTracingBit = 2u;

/// Per-kind registry capacity; counter()/gauge()/timer() beyond this return
/// kNoMetric and the metric is silently dropped.
inline constexpr std::size_t kMaxMetricsPerKind = 256;

/// Histogram registry capacity (smaller: each histogram costs 65 buckets of
/// thread-local storage per thread).
inline constexpr std::size_t kMaxHistograms = 64;

/// Log-bucket count: bucket 0 holds the value 0, bucket b (1..64) holds
/// [2^(b-1), 2^b - 1] — i.e. bucket index == std::bit_width(value).
inline constexpr std::size_t kHistogramBuckets = 65;

/// Events retained per lane before the ring drops the oldest.
inline constexpr std::size_t kTraceLaneCapacity = 1u << 15;

/// One merged timer in a metrics snapshot. `samples` holds up to
/// kMaxMetricsPerKind * a few thousand retained durations (ns) for
/// percentile queries; `stats` always covers every recorded duration.
struct TimerSnapshot {
  std::string name;
  util::RunningStats stats;  // durations in ns
  util::SampleSet samples;   // retained durations in ns (capped)
};

/// One merged log-bucketed histogram. Buckets are exact (cross-thread merge
/// sums per-thread cells, including threads that have exited); percentiles
/// interpolate linearly within the winning bucket, so they are accurate to
/// within one power of two.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Lowest value landing in bucket b.
  [[nodiscard]] static constexpr std::uint64_t bucket_lo(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  /// Highest value landing in bucket b (UINT64_MAX for the top bucket).
  [[nodiscard]] static constexpr std::uint64_t bucket_hi(std::size_t b) noexcept {
    if (b == 0) return 0;
    if (b >= kHistogramBuckets - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }
  /// Bucket index a value lands in (== bit_width).
  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
  }

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Percentile in [0, 100], linearly interpolated inside the target bucket.
  [[nodiscard]] double percentile(double p) const noexcept {
    if (count == 0) return 0.0;
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    const double rank = p / 100.0 * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (buckets[b] == 0) continue;
      const std::uint64_t next = seen + buckets[b];
      if (static_cast<double>(next) >= rank) {
        const double lo = static_cast<double>(bucket_lo(b));
        const double hi = static_cast<double>(bucket_hi(b));
        const double within =
            (rank - static_cast<double>(seen)) / static_cast<double>(buckets[b]);
        return lo + (hi - lo) * (within < 0.0 ? 0.0 : within);
      }
      seen = next;
    }
    return static_cast<double>(bucket_hi(kHistogramBuckets - 1));
  }
};

/// Point-in-time merged view of every registered metric.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;           // name-sorted
  std::vector<TimerSnapshot> timers;                            // name-sorted
  std::vector<HistogramSnapshot> histograms;                    // name-sorted

  /// Value of a counter by name; 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const noexcept;
  /// Timer by name; nullptr when absent.
  [[nodiscard]] const TimerSnapshot* find_timer(std::string_view name) const noexcept;
  /// Histogram by name; nullptr when absent.
  [[nodiscard]] const HistogramSnapshot* find_histogram(std::string_view name) const noexcept;
  /// Gauge by name; 0.0 when absent.
  [[nodiscard]] double gauge_value(std::string_view name) const noexcept;
};

inline std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const noexcept {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

inline const TimerSnapshot* MetricsSnapshot::find_timer(std::string_view name) const noexcept {
  for (const auto& t : timers) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

inline const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

inline double MetricsSnapshot::gauge_value(std::string_view name) const noexcept {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

/// One recorded trace event, as exposed by snapshot_trace() for tests.
/// dur_ns < 0 marks an instant event ("i" phase in the Chrome export);
/// is_counter != 0 marks a counter-track sample ("C" phase) whose double
/// value is bit-cast into arg_vals[0].
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = -1;
  std::uint8_t num_args = 0;
  std::uint8_t is_counter = 0;
  const char* arg_keys[4] = {nullptr, nullptr, nullptr, nullptr};
  std::uint64_t arg_vals[4] = {0, 0, 0, 0};

  /// Counter-sample value (only meaningful when is_counter != 0).
  [[nodiscard]] double counter_value() const noexcept {
    return std::bit_cast<double>(arg_vals[0]);
  }
};

/// One lane (Chrome "thread") of the trace, in chronological record order.
struct LaneSnapshot {
  std::string name;
  std::uint32_t tid = 0;
  std::uint64_t dropped = 0;  // events overwritten by ring wrap
  std::vector<TraceEvent> events;
};

#if defined(MSROPM_OBS_DISABLED)

// ---------------------------------------------------------------------------
// Compiled-out variant: every call is an inline no-op the optimizer deletes.
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t gate() noexcept { return 0; }
inline constexpr bool metrics_enabled() noexcept { return false; }
inline constexpr bool tracing_enabled() noexcept { return false; }
inline void set_metrics_enabled(bool) noexcept {}
inline void set_tracing_enabled(bool) noexcept {}

inline MetricId counter(std::string_view) noexcept { return kNoMetric; }
inline MetricId gauge(std::string_view) noexcept { return kNoMetric; }
inline MetricId timer(std::string_view) noexcept { return kNoMetric; }
inline MetricId histogram(std::string_view) noexcept { return kNoMetric; }
inline void add(MetricId, std::uint64_t) noexcept {}
inline void set_gauge(MetricId, double) noexcept {}
inline void record_time(MetricId, std::int64_t) noexcept {}
inline void observe(MetricId, std::uint64_t) noexcept {}

inline MetricsSnapshot snapshot_metrics() { return {}; }
inline std::string render_metrics_report(const MetricsSnapshot&) { return {}; }
inline std::string export_metrics_json(const MetricsSnapshot&) { return "{}\n"; }
inline std::string export_metrics_prometheus(const MetricsSnapshot&) { return {}; }

inline void set_thread_lane(std::string_view) {}
inline const char* intern(std::string_view) { return ""; }
inline void trace_instant(const char*) noexcept {}
inline void trace_instant(const char*, const char*, std::uint64_t) noexcept {}
inline void trace_counter(const char*, double) noexcept {}
inline std::vector<LaneSnapshot> snapshot_trace() { return {}; }
inline bool write_chrome_trace(const std::string&) { return false; }
inline void reset() {}

class Span {
 public:
  explicit Span(const char*, MetricId = kNoMetric) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void arg(const char*, std::uint64_t) noexcept {}
};

#else  // observability compiled in

namespace detail {
// The gate word lives out-of-line so every translation unit shares it; the
// load itself stays inline (one relaxed read on the disabled fast path).
[[nodiscard]] std::uint32_t load_gate() noexcept;
[[nodiscard]] std::int64_t now_ns() noexcept;
void span_finish(const char* name, std::int64_t t0, MetricId timer_id,
                 std::uint32_t flags, std::uint8_t num_args,
                 const char* const* keys, const std::uint64_t* vals) noexcept;
}  // namespace detail

/// Current gate bits: 0 when fully disabled, else OR of kMetricsBit /
/// kTracingBit. One relaxed load — safe on any hot path.
[[nodiscard]] inline std::uint32_t gate() noexcept { return detail::load_gate(); }
[[nodiscard]] inline bool metrics_enabled() noexcept { return (gate() & kMetricsBit) != 0; }
[[nodiscard]] inline bool tracing_enabled() noexcept { return (gate() & kTracingBit) != 0; }
void set_metrics_enabled(bool on) noexcept;
void set_tracing_enabled(bool on) noexcept;

/// Intern a metric by name; the same name always yields the same id.
/// Call once per site (e.g. a function-local static) — interning takes a lock.
[[nodiscard]] MetricId counter(std::string_view name);
[[nodiscard]] MetricId gauge(std::string_view name);
[[nodiscard]] MetricId timer(std::string_view name);
/// Intern a log-bucketed histogram (capacity kMaxHistograms).
[[nodiscard]] MetricId histogram(std::string_view name);

/// Bump a monotonic counter. No-op unless metrics are enabled.
void add(MetricId counter_id, std::uint64_t delta) noexcept;
/// Set a gauge (last write wins across threads). No-op unless enabled.
void set_gauge(MetricId gauge_id, double value) noexcept;
/// Record one duration (ns) into a timer. No-op unless metrics are enabled.
void record_time(MetricId timer_id, std::int64_t ns) noexcept;
/// Record one value into a histogram: a relaxed fetch_add on two thread-local
/// atomics (lock-free, wait-free). No-op unless metrics are enabled.
void observe(MetricId histogram_id, std::uint64_t value) noexcept;

[[nodiscard]] MetricsSnapshot snapshot_metrics();
/// Render the snapshot as a util::TextTable report (counters, gauges,
/// per-timer count/total/mean/p50/p90/p99 in ms, per-histogram percentiles
/// plus a non-empty-bucket dump).
[[nodiscard]] std::string render_metrics_report(const MetricsSnapshot& snap);
/// Serialize the snapshot as a single JSON document (counters/gauges/timers/
/// histograms). Snapshot-consistent with render_metrics_report when fed the
/// same snapshot.
[[nodiscard]] std::string export_metrics_json(const MetricsSnapshot& snap);
/// Serialize the snapshot in Prometheus text exposition format (counters,
/// gauges, timers as summaries with quantiles, histograms with cumulative
/// `le` buckets). Names are sanitized to [a-zA-Z0-9_] and prefixed msropm_.
[[nodiscard]] std::string export_metrics_prometheus(const MetricsSnapshot& snap);

/// Attach the calling thread to the lane named `name`, creating it on first
/// use. Lanes are keyed by name: a later thread passing the same name appends
/// to the same lane (how portfolio worker slots keep one lane across waves).
void set_thread_lane(std::string_view name);
/// Copy a dynamic string into process-lifetime storage, for span/event names
/// that are not string literals. Dedups; takes a lock — not for hot paths.
[[nodiscard]] const char* intern(std::string_view s);
/// Record an instant marker in the current thread's lane (tracing only).
void trace_instant(const char* name) noexcept;
void trace_instant(const char* name, const char* key, std::uint64_t value) noexcept;
/// Record one counter-track sample ("C" phase) in the current thread's lane.
/// The exporter prefixes the name with the lane name, so Perfetto renders one
/// counter track per lane. Tracing only; `name` must outlive the tracer.
void trace_counter(const char* name, double value) noexcept;

[[nodiscard]] std::vector<LaneSnapshot> snapshot_trace();
/// Write the whole trace as Chrome trace-event JSON. Returns false on I/O
/// failure (and always in MSROPM_OBS=OFF builds).
[[nodiscard]] bool write_chrome_trace(const std::string& path);

/// Zero every metric value and clear every lane's events. Registered metric
/// names, ids, and lane identities survive (thread-local handles stay valid).
void reset();

/// Scoped span: captures the gate at construction; on destruction records a
/// trace event into the current lane (tracing bit) and/or the elapsed ns into
/// `timer_id` (metrics bit). When the gate is 0 the whole object is inert —
/// one load and one branch. `name` and arg keys must outlive the tracer
/// (string literals, or obs::intern() for dynamic names).
class Span {
 public:
  explicit Span(const char* name, MetricId timer_id = kNoMetric) noexcept
      : name_(name), timer_(timer_id), flags_(gate()) {
    if (flags_ != 0) t0_ = detail::now_ns();
  }
  ~Span() {
    if (flags_ != 0) {
      detail::span_finish(name_, t0_, timer_, flags_, num_args_, arg_keys_, arg_vals_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach up to 4 integer args shown in the trace viewer. Dropped when the
  /// span is inert or full.
  void arg(const char* key, std::uint64_t value) noexcept {
    if (flags_ != 0 && num_args_ < 4) {
      arg_keys_[num_args_] = key;
      arg_vals_[num_args_] = value;
      ++num_args_;
    }
  }

 private:
  const char* name_;
  std::int64_t t0_ = 0;
  MetricId timer_;
  std::uint32_t flags_;
  std::uint8_t num_args_ = 0;
  const char* arg_keys_[4] = {nullptr, nullptr, nullptr, nullptr};
  std::uint64_t arg_vals_[4] = {0, 0, 0, 0};
};

#endif  // MSROPM_OBS_DISABLED

}  // namespace msropm::obs
