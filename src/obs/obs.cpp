#include "msropm/obs/obs.hpp"

#ifndef MSROPM_OBS_DISABLED

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>

#include "msropm/util/table.hpp"

namespace msropm::obs {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kMaxSamplesPerTimer = 8192;

std::atomic<std::uint32_t> g_gate{0};

/// One thread's metric storage. Counters are relaxed atomics (lock-free adds;
/// snapshot reads them live). Timers are guarded by `mu`, which a writer only
/// contends when a snapshot or thread-exit merge is in flight.
struct ThreadCells {
  std::mutex mu;
  std::array<std::atomic<std::uint64_t>, kMaxMetricsPerKind> counters{};
  std::vector<TimerSnapshot> timers;  // name left empty; index == MetricId
  // Histogram cells: 65 buckets + a sum per histogram, relaxed atomics so
  // observe() is wait-free. Snapshot reads them live; exact totals come from
  // the merge being a plain sum.
  std::array<std::atomic<std::uint64_t>, kMaxHistograms * kHistogramBuckets> hist_buckets{};
  std::array<std::atomic<std::uint64_t>, kMaxHistograms> hist_sums{};

  ThreadCells();
  ~ThreadCells();
};

/// One trace lane: a drop-oldest ring of events plus its Chrome tid.
struct Lane {
  std::mutex mu;
  std::string name;
  std::uint32_t tid = 0;
  std::vector<TraceEvent> ring;  // grows to kTraceLaneCapacity, then wraps
  std::size_t head = 0;          // next overwrite index once full
  std::uint64_t dropped = 0;

  void push(const TraceEvent& ev) {
    std::lock_guard<std::mutex> lock(mu);
    if (ring.size() < kTraceLaneCapacity) {
      ring.push_back(ev);
    } else {
      ring[head] = ev;
      head = (head + 1) % kTraceLaneCapacity;
      ++dropped;
    }
  }
};

/// Process-wide registry + tracer state. A function-local singleton so any
/// thread_local that registers with it (ThreadCells, lane handles) is
/// guaranteed to be constructed after — and thus destroyed before — it.
struct Global {
  std::mutex mu;  // guards everything below

  // Metric name tables; index in the vector is the MetricId.
  std::vector<std::string> counter_names, gauge_names, timer_names, hist_names;
  std::map<std::string, MetricId, std::less<>> counter_ids, gauge_ids, timer_ids,
      hist_ids;

  // Gauges are process-global (last write wins), not per-thread.
  std::array<std::atomic<double>, kMaxMetricsPerKind> gauges{};

  std::vector<ThreadCells*> live_cells;
  std::array<std::uint64_t, kMaxMetricsPerKind> retired_counters{};
  std::vector<TimerSnapshot> retired_timers = std::vector<TimerSnapshot>(kMaxMetricsPerKind);
  std::vector<std::uint64_t> retired_hist_buckets =
      std::vector<std::uint64_t>(kMaxHistograms * kHistogramBuckets, 0);
  std::array<std::uint64_t, kMaxHistograms> retired_hist_sums{};

  std::deque<Lane> lanes;  // deque: lane addresses must stay stable
  std::map<std::string, Lane*, std::less<>> lanes_by_name;
  std::map<std::string, const char*, std::less<>> interned;
  std::deque<std::string> interned_storage;

  static Global& instance() {
    static Global g;
    return g;
  }

  MetricId intern_metric(std::string_view name, std::vector<std::string>& names,
                         std::map<std::string, MetricId, std::less<>>& ids,
                         std::size_t cap = kMaxMetricsPerKind) {
    std::lock_guard<std::mutex> lock(mu);
    if (auto it = ids.find(name); it != ids.end()) return it->second;
    if (names.size() >= cap) return kNoMetric;
    const MetricId id = static_cast<MetricId>(names.size());
    names.emplace_back(name);
    ids.emplace(std::string(name), id);
    return id;
  }

  // Requires mu held.
  Lane* lane_by_name_locked(std::string_view name) {
    if (auto it = lanes_by_name.find(name); it != lanes_by_name.end()) return it->second;
    Lane& lane = lanes.emplace_back();
    lane.name = std::string(name);
    lane.tid = static_cast<std::uint32_t>(lanes.size() - 1);
    lane.ring.reserve(256);
    lanes_by_name.emplace(lane.name, &lane);
    return &lane;
  }
};

void merge_timer(TimerSnapshot& into, const TimerSnapshot& from) {
  into.stats.merge(from.stats);
  for (double v : from.samples.values()) {
    if (into.samples.size() >= kMaxSamplesPerTimer) break;
    into.samples.add(v);
  }
}

ThreadCells::ThreadCells() : timers(kMaxMetricsPerKind) {
  Global& g = Global::instance();
  std::lock_guard<std::mutex> lock(g.mu);
  g.live_cells.push_back(this);
}

ThreadCells::~ThreadCells() {
  // Thread exit: fold this thread's totals into the retired accumulators so
  // they survive the thread (portfolio pools are created per batch).
  Global& g = Global::instance();
  std::lock_guard<std::mutex> lock(g.mu);
  for (std::size_t i = 0; i < kMaxMetricsPerKind; ++i) {
    g.retired_counters[i] += counters[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < timers.size(); ++i) {
    merge_timer(g.retired_timers[i], timers[i]);
  }
  for (std::size_t i = 0; i < hist_buckets.size(); ++i) {
    g.retired_hist_buckets[i] += hist_buckets[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kMaxHistograms; ++i) {
    g.retired_hist_sums[i] += hist_sums[i].load(std::memory_order_relaxed);
  }
  g.live_cells.erase(std::find(g.live_cells.begin(), g.live_cells.end(), this));
}

ThreadCells& cells() {
  thread_local ThreadCells tc;
  return tc;
}

Lane*& lane_slot() {
  thread_local Lane* lane = nullptr;
  return lane;
}

Lane& current_lane() {
  Lane*& slot = lane_slot();
  if (slot == nullptr) {
    Global& g = Global::instance();
    std::lock_guard<std::mutex> lock(g.mu);
    slot = g.lane_by_name_locked("thread-" + std::to_string(g.lanes.size()));
  }
  return *slot;
}

void json_escape(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Format a double for JSON: finite, no trailing-zero noise, never NaN/Inf
/// (which are not valid JSON).
void append_json_number(std::string& out, double v) {
  if (!(v == v) || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
    out += '0';
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_event_json(std::string& out, const TraceEvent& ev, std::uint32_t tid,
                       std::string_view lane_name) {
  char buf[96];
  if (ev.is_counter != 0) {
    // Counter track: name is prefixed with the lane so Perfetto renders one
    // track per lane ("C" counters are keyed by (pid, name) only, not tid).
    out += "{\"ph\":\"C\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"name\":\"";
    json_escape(out, lane_name);
    out += '/';
    json_escape(out, ev.name != nullptr ? ev.name : "?");
    out += "\",\"ts\":";
    std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ev.start_ns) / 1000.0);
    out += buf;
    out += ",\"args\":{\"value\":";
    append_json_number(out, ev.counter_value());
    out += "}}";
    return;
  }
  out += "{\"ph\":\"";
  out += ev.dur_ns < 0 ? 'i' : 'X';
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(tid);
  out += ",\"name\":\"";
  json_escape(out, ev.name != nullptr ? ev.name : "?");
  out += "\",\"ts\":";
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ev.start_ns) / 1000.0);
  out += buf;
  if (ev.dur_ns < 0) {
    out += ",\"s\":\"t\"";
  } else {
    out += ",\"dur\":";
    std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ev.dur_ns) / 1000.0);
    out += buf;
  }
  if (ev.num_args > 0) {
    out += ",\"args\":{";
    for (std::uint8_t a = 0; a < ev.num_args; ++a) {
      if (a > 0) out += ',';
      out += '"';
      json_escape(out, ev.arg_keys[a] != nullptr ? ev.arg_keys[a] : "?");
      out += "\":";
      out += std::to_string(ev.arg_vals[a]);
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

namespace detail {

std::uint32_t load_gate() noexcept { return g_gate.load(std::memory_order_relaxed); }

std::int64_t now_ns() noexcept {
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch).count();
}

void span_finish(const char* name, std::int64_t t0, MetricId timer_id,
                 std::uint32_t flags, std::uint8_t num_args,
                 const char* const* keys, const std::uint64_t* vals) noexcept {
  const std::int64_t t1 = now_ns();
  if ((flags & kMetricsBit) != 0 && timer_id < kMaxMetricsPerKind) {
    record_time(timer_id, t1 - t0);
  }
  if ((flags & kTracingBit) != 0) {
    TraceEvent ev;
    ev.name = name;
    ev.start_ns = t0;
    ev.dur_ns = t1 - t0;
    ev.num_args = num_args;
    for (std::uint8_t a = 0; a < num_args; ++a) {
      ev.arg_keys[a] = keys[a];
      ev.arg_vals[a] = vals[a];
    }
    current_lane().push(ev);
  }
}

}  // namespace detail

void set_metrics_enabled(bool on) noexcept {
  if (on) {
    g_gate.fetch_or(kMetricsBit, std::memory_order_relaxed);
  } else {
    g_gate.fetch_and(~kMetricsBit, std::memory_order_relaxed);
  }
}

void set_tracing_enabled(bool on) noexcept {
  if (on) {
    g_gate.fetch_or(kTracingBit, std::memory_order_relaxed);
  } else {
    g_gate.fetch_and(~kTracingBit, std::memory_order_relaxed);
  }
}

MetricId counter(std::string_view name) {
  Global& g = Global::instance();
  return g.intern_metric(name, g.counter_names, g.counter_ids);
}

MetricId gauge(std::string_view name) {
  Global& g = Global::instance();
  return g.intern_metric(name, g.gauge_names, g.gauge_ids);
}

MetricId timer(std::string_view name) {
  Global& g = Global::instance();
  return g.intern_metric(name, g.timer_names, g.timer_ids);
}

MetricId histogram(std::string_view name) {
  Global& g = Global::instance();
  return g.intern_metric(name, g.hist_names, g.hist_ids, kMaxHistograms);
}

void add(MetricId counter_id, std::uint64_t delta) noexcept {
  if (!metrics_enabled() || counter_id >= kMaxMetricsPerKind) return;
  cells().counters[counter_id].fetch_add(delta, std::memory_order_relaxed);
}

void set_gauge(MetricId gauge_id, double value) noexcept {
  if (!metrics_enabled() || gauge_id >= kMaxMetricsPerKind) return;
  Global::instance().gauges[gauge_id].store(value, std::memory_order_relaxed);
}

void record_time(MetricId timer_id, std::int64_t ns) noexcept {
  if (!metrics_enabled() || timer_id >= kMaxMetricsPerKind) return;
  ThreadCells& tc = cells();
  std::lock_guard<std::mutex> lock(tc.mu);
  TimerSnapshot& cell = tc.timers[timer_id];
  cell.stats.add(static_cast<double>(ns));
  if (cell.samples.size() < kMaxSamplesPerTimer) {
    cell.samples.add(static_cast<double>(ns));
  }
}

void observe(MetricId histogram_id, std::uint64_t value) noexcept {
  if (!metrics_enabled() || histogram_id >= kMaxHistograms) return;
  ThreadCells& tc = cells();
  const std::size_t bucket = HistogramSnapshot::bucket_of(value);
  tc.hist_buckets[histogram_id * kHistogramBuckets + bucket].fetch_add(
      1, std::memory_order_relaxed);
  tc.hist_sums[histogram_id].fetch_add(value, std::memory_order_relaxed);
}

MetricsSnapshot snapshot_metrics() {
  Global& g = Global::instance();
  std::lock_guard<std::mutex> lock(g.mu);
  MetricsSnapshot snap;

  std::array<std::uint64_t, kMaxMetricsPerKind> counter_totals = g.retired_counters;
  std::vector<TimerSnapshot> timer_totals = g.retired_timers;
  std::vector<std::uint64_t> hist_bucket_totals = g.retired_hist_buckets;
  std::array<std::uint64_t, kMaxHistograms> hist_sum_totals = g.retired_hist_sums;
  for (ThreadCells* tc : g.live_cells) {
    for (std::size_t i = 0; i < g.counter_names.size(); ++i) {
      counter_totals[i] += tc->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t h = 0; h < g.hist_names.size(); ++h) {
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        hist_bucket_totals[h * kHistogramBuckets + b] +=
            tc->hist_buckets[h * kHistogramBuckets + b].load(std::memory_order_relaxed);
      }
      hist_sum_totals[h] += tc->hist_sums[h].load(std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> cell_lock(tc->mu);
    for (std::size_t i = 0; i < g.timer_names.size(); ++i) {
      merge_timer(timer_totals[i], tc->timers[i]);
    }
  }

  for (const auto& [name, id] : g.counter_ids) {
    snap.counters.emplace_back(name, counter_totals[id]);
  }
  for (const auto& [name, id] : g.gauge_ids) {
    snap.gauges.emplace_back(name, g.gauges[id].load(std::memory_order_relaxed));
  }
  for (const auto& [name, id] : g.timer_ids) {
    TimerSnapshot t = std::move(timer_totals[id]);
    t.name = name;
    snap.timers.push_back(std::move(t));
  }
  for (const auto& [name, id] : g.hist_ids) {
    HistogramSnapshot h;
    h.name = name;
    h.sum = hist_sum_totals[id];
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      h.buckets[b] = hist_bucket_totals[id * kHistogramBuckets + b];
      h.count += h.buckets[b];
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

std::string render_metrics_report(const MetricsSnapshot& snap) {
  util::TextTable table({"metric", "type", "count", "value", "total_ms", "mean_ms",
                         "p50_ms", "p90_ms", "p99_ms"});
  const auto ms = [](double ns) { return util::format_double(ns / 1e6, 3); };
  for (const auto& t : snap.timers) {
    if (t.stats.count() == 0) continue;
    const double p50 = t.samples.empty() ? 0.0 : t.samples.percentile(50.0);
    const double p90 = t.samples.empty() ? 0.0 : t.samples.percentile(90.0);
    const double p99 = t.samples.empty() ? 0.0 : t.samples.percentile(99.0);
    table.add_row({t.name, "timer", std::to_string(t.stats.count()), "-",
                   ms(t.stats.sum()), ms(t.stats.mean()), ms(p50), ms(p90), ms(p99)});
  }
  for (const auto& [name, value] : snap.counters) {
    if (value == 0) continue;
    table.add_row({name, "counter", "-", std::to_string(value), "-", "-", "-", "-", "-"});
  }
  for (const auto& [name, value] : snap.gauges) {
    if (value == 0.0) continue;
    table.add_row({name, "gauge", "-", util::format_double(value, 0), "-", "-", "-", "-",
                   "-"});
  }
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    table.add_row({h.name, "histogram", std::to_string(h.count),
                   util::format_double(h.mean(), 2),
                   "-", "-", util::format_double(h.percentile(50.0), 2),
                   util::format_double(h.percentile(90.0), 2),
                   util::format_double(h.percentile(99.0), 2)});
  }
  std::string out = table.render();
  // Bucket dump: one line per non-empty histogram, raw-value units.
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    out += h.name;
    out += " buckets:";
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      out += " [";
      out += std::to_string(HistogramSnapshot::bucket_lo(b));
      out += "..";
      if (b == kHistogramBuckets - 1) {
        out += "max";
      } else {
        out += std::to_string(HistogramSnapshot::bucket_hi(b));
      }
      out += "]=";
      out += std::to_string(h.buckets[b]);
    }
    out += '\n';
  }
  return out;
}

std::string export_metrics_json(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(1 << 12);
  const auto pct = [](const util::SampleSet& s, double p) {
    return s.empty() ? 0.0 : s.percentile(p);
  };
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n    \"" : ",\n    \"";
    first = false;
    json_escape(out, name);
    out += "\": ";
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n    \"" : ",\n    \"";
    first = false;
    json_escape(out, name);
    out += "\": ";
    append_json_number(out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"timers\": {";
  first = true;
  for (const auto& t : snap.timers) {
    out += first ? "\n    \"" : ",\n    \"";
    first = false;
    json_escape(out, t.name);
    out += "\": {\"count\": ";
    out += std::to_string(t.stats.count());
    out += ", \"total_ns\": ";
    append_json_number(out, t.stats.sum());
    out += ", \"mean_ns\": ";
    append_json_number(out, t.stats.count() == 0 ? 0.0 : t.stats.mean());
    out += ", \"p50_ns\": ";
    append_json_number(out, pct(t.samples, 50.0));
    out += ", \"p90_ns\": ";
    append_json_number(out, pct(t.samples, 90.0));
    out += ", \"p99_ns\": ";
    append_json_number(out, pct(t.samples, 99.0));
    out += '}';
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : snap.histograms) {
    out += first ? "\n    \"" : ",\n    \"";
    first = false;
    json_escape(out, h.name);
    out += "\": {\"count\": ";
    out += std::to_string(h.count);
    out += ", \"sum\": ";
    out += std::to_string(h.sum);
    out += ", \"mean\": ";
    append_json_number(out, h.mean());
    out += ", \"p50\": ";
    append_json_number(out, h.percentile(50.0));
    out += ", \"p90\": ";
    append_json_number(out, h.percentile(90.0));
    out += ", \"p99\": ";
    append_json_number(out, h.percentile(99.0));
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += '[';
      out += std::to_string(HistogramSnapshot::bucket_lo(b));
      out += ", ";
      out += std::to_string(HistogramSnapshot::bucket_hi(b));
      out += ", ";
      out += std::to_string(h.buckets[b]);
      out += ']';
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

/// Prometheus metric name: [a-zA-Z_][a-zA-Z0-9_]*; we sanitize and prefix.
std::string prom_name(std::string_view name) {
  std::string out = "msropm_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void append_prom_number(std::string& out, double v) {
  if (!(v == v)) {
    out += "NaN";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string export_metrics_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(1 << 12);
  const auto pct = [](const util::SampleSet& s, double p) {
    return s.empty() ? 0.0 : s.percentile(p);
  };
  for (const auto& [name, value] : snap.counters) {
    const std::string n = prom_name(name) + "_total";
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " ";
    append_prom_number(out, value);
    out += '\n';
  }
  // Timers as summaries: quantiles over the retained samples, in ns.
  for (const auto& t : snap.timers) {
    const std::string n = prom_name(t.name) + "_ns";
    out += "# TYPE " + n + " summary\n";
    for (const auto& [q, p] : {std::pair{"0.5", 50.0}, {"0.9", 90.0}, {"0.99", 99.0}}) {
      out += n + "{quantile=\"" + q + "\"} ";
      append_prom_number(out, pct(t.samples, p));
      out += '\n';
    }
    out += n + "_sum ";
    append_prom_number(out, t.stats.sum());
    out += '\n';
    out += n + "_count " + std::to_string(t.stats.count()) + "\n";
  }
  // Histograms with cumulative le buckets; bucket upper bounds are the
  // log-bucket highs, plus the mandatory +Inf.
  for (const auto& h : snap.histograms) {
    const std::string n = prom_name(h.name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      out += n + "_bucket{le=\"" +
             std::to_string(HistogramSnapshot::bucket_hi(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + std::to_string(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

void set_thread_lane(std::string_view name) {
  Global& g = Global::instance();
  std::lock_guard<std::mutex> lock(g.mu);
  lane_slot() = g.lane_by_name_locked(name);
}

const char* intern(std::string_view s) {
  Global& g = Global::instance();
  std::lock_guard<std::mutex> lock(g.mu);
  if (auto it = g.interned.find(s); it != g.interned.end()) return it->second;
  const std::string& stored = g.interned_storage.emplace_back(s);
  g.interned.emplace(stored, stored.c_str());
  return stored.c_str();
}

void trace_instant(const char* name) noexcept {
  if (!tracing_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.start_ns = detail::now_ns();
  current_lane().push(ev);
}

void trace_instant(const char* name, const char* key, std::uint64_t value) noexcept {
  if (!tracing_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.start_ns = detail::now_ns();
  ev.num_args = 1;
  ev.arg_keys[0] = key;
  ev.arg_vals[0] = value;
  current_lane().push(ev);
}

void trace_counter(const char* name, double value) noexcept {
  if (!tracing_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.start_ns = detail::now_ns();
  ev.is_counter = 1;
  ev.num_args = 1;
  ev.arg_keys[0] = "value";
  ev.arg_vals[0] = std::bit_cast<std::uint64_t>(value);
  current_lane().push(ev);
}

std::vector<LaneSnapshot> snapshot_trace() {
  Global& g = Global::instance();
  std::lock_guard<std::mutex> lock(g.mu);
  std::vector<LaneSnapshot> out;
  out.reserve(g.lanes.size());
  for (Lane& lane : g.lanes) {
    std::lock_guard<std::mutex> lane_lock(lane.mu);
    LaneSnapshot snap;
    snap.name = lane.name;
    snap.tid = lane.tid;
    snap.dropped = lane.dropped;
    snap.events.reserve(lane.ring.size());
    // Oldest-first: once the ring has wrapped, `head` points at the oldest.
    for (std::size_t i = 0; i < lane.ring.size(); ++i) {
      snap.events.push_back(lane.ring[(lane.head + i) % lane.ring.size()]);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::vector<LaneSnapshot> lanes = snapshot_trace();
  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"msropm\"}}";
  for (const LaneSnapshot& lane : lanes) {
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(lane.tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape(out, lane.name);
    out += "\"}}";
  }
  for (const LaneSnapshot& lane : lanes) {
    for (const TraceEvent& ev : lane.events) {
      out += ",\n";
      append_event_json(out, ev, lane.tid, lane.name);
    }
  }
  out += "\n]}\n";

  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file << out;
  return static_cast<bool>(file.flush());
}

void reset() {
  Global& g = Global::instance();
  std::lock_guard<std::mutex> lock(g.mu);
  g.retired_counters.fill(0);
  for (auto& t : g.retired_timers) t = TimerSnapshot{};
  std::fill(g.retired_hist_buckets.begin(), g.retired_hist_buckets.end(), 0);
  g.retired_hist_sums.fill(0);
  for (auto& gv : g.gauges) gv.store(0.0, std::memory_order_relaxed);
  for (ThreadCells* tc : g.live_cells) {
    std::lock_guard<std::mutex> cell_lock(tc->mu);
    for (auto& c : tc->counters) c.store(0, std::memory_order_relaxed);
    for (auto& t : tc->timers) t = TimerSnapshot{};
    for (auto& b : tc->hist_buckets) b.store(0, std::memory_order_relaxed);
    for (auto& s : tc->hist_sums) s.store(0, std::memory_order_relaxed);
  }
  for (Lane& lane : g.lanes) {
    std::lock_guard<std::mutex> lane_lock(lane.mu);
    lane.ring.clear();
    lane.head = 0;
    lane.dropped = 0;
  }
}

}  // namespace msropm::obs

#endif  // MSROPM_OBS_DISABLED
