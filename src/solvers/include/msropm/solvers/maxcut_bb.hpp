#pragma once
// Exact max-cut by branch and bound.
//
// The Fig. 5(b) stage-1 accuracy metric needs a max-cut reference. The
// paper normalizes against heuristics for large instances; for small and
// mid-size instances this solver produces the *provable* optimum, which
// upgrades the reference from "best SA run" to ground truth (and bounds the
// SA error itself in tests).
//
// Algorithm: depth-first branch and bound over side assignments in a fixed
// high-degree-first vertex order. The admissible bound for a partial
// assignment counts (a) the cut edges already decided, (b) every edge
// between two unassigned vertices (each could still be cut), and (c) for
// each unassigned vertex the larger of its edge counts into the two
// assigned sides (the best side choice it could still make). The first
// vertex is pinned to side 0 (cut symmetry).
//
// Practical reach: dense ~30 nodes, sparse lattices ~60+ nodes in well
// under a second; beyond that use solve_maxcut_sa.

#include <cstdint>
#include <vector>

#include "msropm/graph/graph.hpp"
#include "msropm/model/maxcut.hpp"

namespace msropm::solvers {

struct MaxCutBbOptions {
  /// Abort knob: stop after this many search nodes (0 = unlimited). When
  /// the limit is hit the result is the best cut found but is no longer
  /// certified optimal.
  std::uint64_t node_limit = 0;
};

struct MaxCutBbResult {
  model::CutAssignment sides;
  std::size_t cut = 0;
  bool optimal = false;          ///< search ran to completion
  std::uint64_t nodes_explored = 0;
};

/// Exact max-cut (subject to options.node_limit).
[[nodiscard]] MaxCutBbResult solve_maxcut_bb(const graph::Graph& g,
                                             MaxCutBbOptions options = {});

}  // namespace msropm::solvers
