#pragma once
// Single-stage N-SHIL ROSC Potts machine -- the ICCAD'24 baseline [14] the
// paper compares against in Table 2 and Sec. 4.2.
//
// Instead of cascading order-2 SHIL stages, a single higher-order SHIL
// (order N) discretizes every oscillator directly into N phases in one
// anneal + lock pass. The paper argues this "N-SHIL method" reaches lower
// accuracy than the multi-stage flow; bench_ablation_multistage measures
// that claim on identical instances with identical physics parameters.

#include "msropm/core/schedule.hpp"
#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"
#include "msropm/phase/network.hpp"
#include "msropm/util/rng.hpp"

namespace msropm::solvers {

struct NShilRopmConfig {
  unsigned num_colors = 4;            ///< SHIL order N (any N >= 2)
  phase::NetworkParams network{};
  double init_s = 5e-9;
  double anneal_s = 20e-9;            ///< SHIL-free self-annealing
  double lock_s = 5e-9;               ///< N-SHIL discretization + readout
  phase::GainRamp shil_ramp{0.0, 0.4};

  [[nodiscard]] double total_time_s() const noexcept {
    return init_s + anneal_s + lock_s;
  }
};

struct NShilRopmResult {
  graph::Coloring colors;
  double max_lock_residual = 0.0;
};

class NShilRopm {
 public:
  NShilRopm(const graph::Graph& g, NShilRopmConfig config);

  [[nodiscard]] const NShilRopmConfig& config() const noexcept { return config_; }
  [[nodiscard]] NShilRopmResult solve(util::Rng& rng) const;

 private:
  const graph::Graph* graph_;
  NShilRopmConfig config_;
};

}  // namespace msropm::solvers
