#pragma once
// Digital divide-and-conquer coloring baseline (CPM-style, paper ref. [13]).
//
// Runs the same divide-and-color algorithm as the MSROPM but the way a
// conventional system must: each stage is solved by a software Ising
// (max-cut) kernel, and between stages the full system state is explicitly
// saved to and reloaded from "memory", with the graph remapped onto the next
// stage's sub-problems. The tracked transfer/remap volume quantifies the von
// Neumann bottleneck the MSROPM's compute-in-memory operation avoids
// (paper Sec. 3.2).

#include <cstdint>

#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"
#include "msropm/solvers/maxcut_sa.hpp"
#include "msropm/util/rng.hpp"

namespace msropm::solvers {

struct DigitalDivideOptions {
  unsigned num_colors = 4;           ///< power of two
  MaxCutSaOptions stage_solver{};    ///< per-stage max-cut kernel
};

struct DigitalDivideResult {
  graph::Coloring colors;
  std::size_t stages = 0;
  /// Bytes moved between solver and memory across stage boundaries
  /// (state save + reload; what SHIL latching eliminates).
  std::size_t bytes_transferred = 0;
  /// Sub-problems re-encoded and re-mapped onto the solver.
  std::size_t remap_operations = 0;
};

[[nodiscard]] DigitalDivideResult solve_digital_divide(
    const graph::Graph& g, const DigitalDivideOptions& options, util::Rng& rng);

}  // namespace msropm::solvers
