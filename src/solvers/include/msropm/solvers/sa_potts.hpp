#pragma once
// Simulated-annealing Potts (K-coloring) solver.
//
// Classic single-spin-flip Metropolis annealing over the Potts Hamiltonian
// (conflict count). Serves as the software baseline the hardware Ising/Potts
// machine literature compares against (Table 2 cites SA as the baseline of
// the RTWOIM row) and as the best-known-solution generator for max-cut
// references on instances too large for exact search.

#include <cstdint>

#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"
#include "msropm/util/rng.hpp"
#include "msropm/util/stop_token.hpp"

namespace msropm::solvers {

struct SaPottsOptions {
  unsigned num_colors = 4;
  double t_start = 2.0;        ///< initial temperature (conflict units)
  double t_end = 0.02;         ///< final temperature
  std::size_t sweeps = 400;    ///< full-lattice sweeps
  bool greedy_finish = true;   ///< zero-temperature polish pass at the end
  /// Cooperative cancellation, polled every 256 proposed moves; when it
  /// fires the anneal stops (the greedy polish is skipped) and the current
  /// assignment is returned with cancelled set.
  util::StopToken stop = {};
};

struct SaPottsResult {
  graph::Coloring colors;
  std::size_t conflicts = 0;
  std::size_t accepted_moves = 0;
  std::size_t proposed_moves = 0;
  bool cancelled = false;  ///< options.stop interrupted the anneal
};

/// Anneal from a random assignment.
[[nodiscard]] SaPottsResult solve_sa_potts(const graph::Graph& g,
                                           const SaPottsOptions& options,
                                           util::Rng& rng);

/// Anneal from a caller-provided initial assignment.
[[nodiscard]] SaPottsResult solve_sa_potts_from(const graph::Graph& g,
                                                graph::Coloring initial,
                                                const SaPottsOptions& options,
                                                util::Rng& rng);

}  // namespace msropm::solvers
