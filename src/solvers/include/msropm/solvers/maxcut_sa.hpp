#pragma once
// Simulated-annealing max-cut solver.
//
// Two uses in the reproduction:
//  - reference ("best-known") cut values that normalize the Fig. 5(b)
//    stage-1 max-cut accuracies on instances too large for exact search;
//  - a software Ising-machine stand-in for the digital divide-and-conquer
//    baseline (digital_divide.hpp).

#include <cstdint>

#include "msropm/graph/graph.hpp"
#include "msropm/model/maxcut.hpp"
#include "msropm/util/rng.hpp"

namespace msropm::solvers {

struct MaxCutSaOptions {
  double t_start = 3.0;
  double t_end = 0.01;
  std::size_t sweeps = 600;
  bool greedy_finish = true;
};

struct MaxCutResult {
  model::CutAssignment sides;
  std::size_t cut = 0;
};

[[nodiscard]] MaxCutResult solve_maxcut_sa(const graph::Graph& g,
                                           const MaxCutSaOptions& options,
                                           util::Rng& rng);

/// Best cut over `restarts` independent anneals (the reference generator).
[[nodiscard]] MaxCutResult best_known_maxcut(const graph::Graph& g,
                                             std::size_t restarts,
                                             util::Rng& rng,
                                             MaxCutSaOptions options = {});

}  // namespace msropm::solvers
