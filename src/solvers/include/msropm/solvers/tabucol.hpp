#pragma once
// Tabucol (Hertz & de Werra 1987): tabu search for K-coloring.
//
// The Table 2 comparison cites a tabu baseline for the ROIM row [8]; this is
// the classic coloring variant. Moves are (node-in-conflict, new color)
// pairs; a move is tabu for `tenure + alpha * conflicts` iterations unless
// it improves on the best solution seen (aspiration).

#include <cstdint>

#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"
#include "msropm/util/rng.hpp"
#include "msropm/util/stop_token.hpp"

namespace msropm::solvers {

struct TabucolOptions {
  unsigned num_colors = 4;
  std::size_t max_iterations = 20000;
  std::size_t base_tenure = 7;
  double tenure_slope = 0.6;   ///< dynamic tenure: base + slope * conflicts
  bool stop_at_proper = true;  ///< stop early once conflict-free
  /// Cooperative cancellation, polled every 64 iterations; when it fires the
  /// search returns the best coloring found so far with cancelled set.
  util::StopToken stop = {};
};

struct TabucolResult {
  graph::Coloring colors;
  std::size_t conflicts = 0;
  std::size_t iterations_used = 0;
  bool cancelled = false;  ///< options.stop interrupted the search
};

[[nodiscard]] TabucolResult solve_tabucol(const graph::Graph& g,
                                          const TabucolOptions& options,
                                          util::Rng& rng);

}  // namespace msropm::solvers
