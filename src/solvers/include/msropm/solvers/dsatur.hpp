#pragma once
// DSATUR greedy coloring (Brelaz 1979): color nodes in order of saturation
// degree. Deterministic, fast; used as the quick software reference and to
// sanity-check instance colorability in examples.

#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"

namespace msropm::solvers {

struct DsaturResult {
  graph::Coloring colors;
  unsigned colors_used = 0;
};

/// Unbounded palette: always returns a proper coloring.
[[nodiscard]] DsaturResult solve_dsatur(const graph::Graph& g);

/// Bounded palette: colors capped at num_colors; nodes that cannot be
/// properly colored get the least-conflicting color (quality measured by
/// the usual accuracy metric).
[[nodiscard]] DsaturResult solve_dsatur_bounded(const graph::Graph& g,
                                                unsigned num_colors);

}  // namespace msropm::solvers
