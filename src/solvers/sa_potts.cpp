#include "msropm/solvers/sa_potts.hpp"

#include <cmath>
#include <stdexcept>

namespace msropm::solvers {

namespace {

/// Conflicts node u would have with color c.
std::size_t node_conflicts(const graph::Graph& g, const graph::Coloring& colors,
                           graph::NodeId u, graph::Color c) {
  std::size_t count = 0;
  for (graph::NodeId v : g.neighbors(u)) {
    if (colors[v] == c) ++count;
  }
  return count;
}

}  // namespace

SaPottsResult solve_sa_potts(const graph::Graph& g, const SaPottsOptions& options,
                             util::Rng& rng) {
  graph::Coloring initial(g.num_nodes());
  for (auto& c : initial) {
    c = static_cast<graph::Color>(rng.uniform_index(options.num_colors));
  }
  return solve_sa_potts_from(g, std::move(initial), options, rng);
}

SaPottsResult solve_sa_potts_from(const graph::Graph& g, graph::Coloring colors,
                                  const SaPottsOptions& options, util::Rng& rng) {
  if (options.num_colors < 2) throw std::invalid_argument("sa_potts: K >= 2");
  if (colors.size() != g.num_nodes()) {
    throw std::invalid_argument("sa_potts: initial coloring size mismatch");
  }
  if (options.t_start <= 0.0 || options.t_end <= 0.0 ||
      options.t_end > options.t_start) {
    throw std::invalid_argument("sa_potts: need t_start >= t_end > 0");
  }

  SaPottsResult result;
  const std::size_t n = g.num_nodes();
  if (n == 0) {
    result.colors = colors;
    return result;
  }
  const double cooling =
      options.sweeps > 1
          ? std::pow(options.t_end / options.t_start,
                     1.0 / static_cast<double>(options.sweeps - 1))
          : 1.0;

  double temperature = options.t_start;
  for (std::size_t sweep = 0; sweep < options.sweeps && !result.cancelled;
       ++sweep) {
    for (std::size_t step = 0; step < n; ++step) {
      if ((step & 255) == 0 && options.stop.stop_requested()) {
        result.cancelled = true;
        break;
      }
      const auto u = static_cast<graph::NodeId>(rng.uniform_index(n));
      const auto old_color = colors[u];
      auto new_color = static_cast<graph::Color>(
          rng.uniform_index(options.num_colors - 1));
      if (new_color >= old_color) ++new_color;  // uniform among others
      const auto before = node_conflicts(g, colors, u, old_color);
      const auto after = node_conflicts(g, colors, u, new_color);
      const double delta =
          static_cast<double>(after) - static_cast<double>(before);
      ++result.proposed_moves;
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
        colors[u] = new_color;
        ++result.accepted_moves;
      }
    }
    temperature *= cooling;
  }

  if (options.greedy_finish && !result.cancelled) {
    // Zero-temperature polish: move each node to its least-conflicting color.
    bool improved = true;
    std::size_t rounds = 0;
    while (improved && rounds < 32) {
      improved = false;
      ++rounds;
      for (graph::NodeId u = 0; u < n; ++u) {
        const auto current = node_conflicts(g, colors, u, colors[u]);
        if (current == 0) continue;
        for (unsigned c = 0; c < options.num_colors; ++c) {
          if (c == colors[u]) continue;
          if (node_conflicts(g, colors, u, static_cast<graph::Color>(c)) <
              current) {
            colors[u] = static_cast<graph::Color>(c);
            improved = true;
            break;
          }
        }
      }
    }
  }

  result.conflicts = graph::count_conflicts(g, colors);
  result.colors = std::move(colors);
  return result;
}

}  // namespace msropm::solvers
