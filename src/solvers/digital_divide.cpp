#include "msropm/solvers/digital_divide.hpp"

#include <stdexcept>

#include "msropm/core/shil_plan.hpp"
#include "msropm/graph/partition.hpp"

namespace msropm::solvers {

DigitalDivideResult solve_digital_divide(const graph::Graph& g,
                                         const DigitalDivideOptions& options,
                                         util::Rng& rng) {
  if (!core::valid_color_count(options.num_colors)) {
    throw std::invalid_argument("digital_divide: colors must be 2^m");
  }
  const unsigned num_stages = core::stages_for_colors(options.num_colors);
  const std::size_t n = g.num_nodes();

  DigitalDivideResult result;
  result.stages = num_stages;

  // Current partition of original node ids; starts as one group.
  std::vector<graph::InducedSubgraph> groups;
  groups.emplace_back();
  {
    // Build the identity induced subgraph.
    graph::GraphBuilder b(n);
    for (const graph::Edge& e : g.edges()) b.add_edge(e.u, e.v);
    groups.front().graph = b.build();
    groups.front().to_original.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      groups.front().to_original[i] = static_cast<graph::NodeId>(i);
    }
  }

  std::vector<core::StageBits> bits(n);

  for (unsigned stage = 1; stage <= num_stages; ++stage) {
    std::vector<graph::InducedSubgraph> next_groups;
    for (const auto& group : groups) {
      // "Remap": encode the sub-problem for the solver (one operation per
      // sub-problem) and move its coupling matrix in.
      ++result.remap_operations;
      result.bytes_transferred +=
          group.graph.num_edges() * sizeof(graph::Edge) +  // couplings in
          group.to_original.size() * sizeof(graph::NodeId);

      MaxCutResult cut = solve_maxcut_sa(group.graph, options.stage_solver, rng);

      // "Save state": spins out of the solver into memory.
      result.bytes_transferred += cut.sides.size() * sizeof(std::uint8_t);

      for (std::size_t local = 0; local < cut.sides.size(); ++local) {
        bits[group.to_original[local]].push_back(cut.sides[local]);
      }
      if (stage < num_stages) {
        auto halves = graph::split_by_labels(group.graph, cut.sides, 2);
        for (auto& half : halves) {
          // Rebase the id map onto original ids.
          for (auto& id : half.to_original) id = group.to_original[id];
          next_groups.push_back(std::move(half));
        }
        // "Reload": partitioned state must be read back before next stage.
        result.bytes_transferred += cut.sides.size() * sizeof(std::uint8_t);
      }
    }
    groups = std::move(next_groups);
  }

  result.colors.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.colors[i] = static_cast<graph::Color>(core::color_from_bits(bits[i]));
  }
  return result;
}

}  // namespace msropm::solvers
