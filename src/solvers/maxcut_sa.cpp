#include "msropm/solvers/maxcut_sa.hpp"

#include <cmath>
#include <stdexcept>

namespace msropm::solvers {

MaxCutResult solve_maxcut_sa(const graph::Graph& g, const MaxCutSaOptions& options,
                             util::Rng& rng) {
  if (options.t_start <= 0.0 || options.t_end <= 0.0 ||
      options.t_end > options.t_start) {
    throw std::invalid_argument("maxcut_sa: need t_start >= t_end > 0");
  }
  const std::size_t n = g.num_nodes();
  MaxCutResult result;
  result.sides.resize(n);
  for (auto& s : result.sides) s = rng.bernoulli(0.5) ? 1 : 0;
  if (n == 0) return result;

  // Signed gain of flipping u: (neighbors on same side) - (on other side).
  auto flip_gain = [&](graph::NodeId u) {
    long gain = 0;
    for (graph::NodeId v : g.neighbors(u)) {
      gain += (result.sides[v] == result.sides[u]) ? 1 : -1;
    }
    return gain;
  };

  const double cooling =
      options.sweeps > 1
          ? std::pow(options.t_end / options.t_start,
                     1.0 / static_cast<double>(options.sweeps - 1))
          : 1.0;
  double temperature = options.t_start;
  for (std::size_t sweep = 0; sweep < options.sweeps; ++sweep) {
    for (std::size_t step = 0; step < n; ++step) {
      const auto u = static_cast<graph::NodeId>(rng.uniform_index(n));
      const long gain = flip_gain(u);
      if (gain >= 0 ||
          rng.uniform() < std::exp(static_cast<double>(gain) / temperature)) {
        result.sides[u] ^= 1u;
      }
    }
    temperature *= cooling;
  }

  if (options.greedy_finish) {
    bool improved = true;
    std::size_t rounds = 0;
    while (improved && rounds < 64) {
      improved = false;
      ++rounds;
      for (graph::NodeId u = 0; u < n; ++u) {
        if (flip_gain(u) > 0) {
          result.sides[u] ^= 1u;
          improved = true;
        }
      }
    }
  }

  result.cut = model::cut_value(g, result.sides);
  return result;
}

MaxCutResult best_known_maxcut(const graph::Graph& g, std::size_t restarts,
                               util::Rng& rng, MaxCutSaOptions options) {
  MaxCutResult best;
  for (std::size_t r = 0; r < restarts; ++r) {
    MaxCutResult candidate = solve_maxcut_sa(g, options, rng);
    if (r == 0 || candidate.cut > best.cut) best = std::move(candidate);
  }
  return best;
}

}  // namespace msropm::solvers
