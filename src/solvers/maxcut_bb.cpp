#include "msropm/solvers/maxcut_bb.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "msropm/solvers/maxcut_sa.hpp"
#include "msropm/util/rng.hpp"

namespace msropm::solvers {

namespace {

class BbSearch {
 public:
  BbSearch(const graph::Graph& g, const MaxCutBbOptions& options)
      : g_(g), options_(options), n_(g.num_nodes()) {
    order_.resize(n_);
    std::iota(order_.begin(), order_.end(), graph::NodeId{0});
    // High-degree-first tightens the bound early.
    std::stable_sort(order_.begin(), order_.end(),
                     [&g](graph::NodeId a, graph::NodeId b) {
                       return g.degree(a) > g.degree(b);
                     });
    side_.assign(n_, 2);  // 2 = unassigned
    links_.assign(n_, {0, 0});
    unassigned_edges_ = g.num_edges();

    // Warm start: seed the incumbent with a quick SA run so the first
    // descent prunes aggressively. If SA already found the optimum, the
    // search still certifies it (no bound can exceed it).
    util::Rng rng(12345);
    MaxCutSaOptions sa;
    sa.sweeps = 300;
    const auto warm = solve_maxcut_sa(g, sa, rng);
    best_cut_ = warm.cut;
    best_sides_ = warm.sides;
  }

  MaxCutBbResult run() {
    dfs(0, 0);
    MaxCutBbResult r;
    r.sides = best_sides_;
    r.cut = best_cut_;
    r.optimal = !aborted_;
    r.nodes_explored = nodes_;
    return r;
  }

 private:
  /// Admissible upper bound on the completed cut: decided cut edges, plus
  /// every unassigned-unassigned edge (each could still be cut), plus each
  /// unassigned vertex's better side choice against the assigned sides.
  [[nodiscard]] std::size_t bound(std::size_t cut_so_far,
                                  std::size_t next_index) const {
    std::size_t b = cut_so_far + unassigned_edges_;
    for (std::size_t i = next_index; i < n_; ++i) {
      const auto v = order_[i];
      b += std::max(links_[v][0], links_[v][1]);
    }
    return b;
  }

  void dfs(std::size_t index, std::size_t cut_so_far) {
    if (aborted_) return;
    ++nodes_;
    if (options_.node_limit != 0 && nodes_ > options_.node_limit) {
      aborted_ = true;
      return;
    }
    if (index == n_) {
      if (cut_so_far > best_cut_) {
        best_cut_ = cut_so_far;
        best_sides_.assign(side_.begin(), side_.end());
      }
      return;
    }
    const auto v = order_[index];
    // Assigning v to side s cuts its edges into the opposite assigned side.
    // Descend into the higher-gain side first; pin v0 to side 0 (symmetry).
    const std::uint8_t first =
        links_[v][1] >= links_[v][0] ? 0 : 1;
    const int branches = index == 0 ? 1 : 2;
    for (int attempt = 0; attempt < branches; ++attempt) {
      const std::uint8_t s =
          attempt == 0 ? first : static_cast<std::uint8_t>(1 - first);
      const std::size_t child_cut = cut_so_far + links_[v][1 - s];
      assign(v, s);
      if (bound(child_cut, index + 1) > best_cut_) {
        dfs(index + 1, child_cut);
      }
      unassign(v, s);
    }
  }

  void assign(graph::NodeId v, std::uint8_t s) {
    side_[v] = s;
    for (const auto nb : g_.neighbors(v)) {
      if (side_[nb] == 2) {
        ++links_[nb][s];
        --unassigned_edges_;
      }
    }
  }

  void unassign(graph::NodeId v, std::uint8_t s) {
    side_[v] = 2;
    for (const auto nb : g_.neighbors(v)) {
      if (side_[nb] == 2) {
        --links_[nb][s];
        ++unassigned_edges_;
      }
    }
  }

  const graph::Graph& g_;
  MaxCutBbOptions options_;
  std::size_t n_;
  std::vector<graph::NodeId> order_;
  std::vector<std::uint8_t> side_;
  /// links_[v][s]: edges from unassigned v into assigned side s.
  std::vector<std::array<std::size_t, 2>> links_;
  std::size_t unassigned_edges_ = 0;
  std::size_t best_cut_ = 0;
  model::CutAssignment best_sides_;
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

MaxCutBbResult solve_maxcut_bb(const graph::Graph& g, MaxCutBbOptions options) {
  if (g.num_nodes() == 0) {
    return MaxCutBbResult{{}, 0, true, 0};
  }
  BbSearch search(g, options);
  return search.run();
}

}  // namespace msropm::solvers
