#include "msropm/solvers/dsatur.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

namespace msropm::solvers {

namespace {

DsaturResult dsatur_impl(const graph::Graph& g, unsigned palette_cap) {
  const std::size_t n = g.num_nodes();
  DsaturResult result;
  result.colors.assign(n, 0);
  if (n == 0) return result;

  constexpr unsigned kUncolored = ~0u;
  std::vector<unsigned> assigned(n, kUncolored);
  // Saturation = set of distinct neighbor colors.
  std::vector<std::set<unsigned>> saturation(n);
  std::vector<std::uint8_t> done(n, 0);

  for (std::size_t round = 0; round < n; ++round) {
    // Pick max saturation, ties by degree, then by id.
    std::size_t pick = n;
    for (std::size_t u = 0; u < n; ++u) {
      if (done[u]) continue;
      if (pick == n) {
        pick = u;
        continue;
      }
      const auto su = saturation[u].size();
      const auto sp = saturation[pick].size();
      if (su > sp || (su == sp && g.degree(static_cast<graph::NodeId>(u)) >
                                      g.degree(static_cast<graph::NodeId>(pick)))) {
        pick = u;
      }
    }
    const auto u = static_cast<graph::NodeId>(pick);
    // Smallest color absent from the neighborhood.
    unsigned color = 0;
    while (saturation[pick].count(color) != 0) ++color;
    if (palette_cap != 0 && color >= palette_cap) {
      // Bounded: choose the least-conflicting color in the palette.
      unsigned best_color = 0;
      std::size_t best_conflicts = ~std::size_t{0};
      for (unsigned c = 0; c < palette_cap; ++c) {
        std::size_t conflicts = 0;
        for (graph::NodeId v : g.neighbors(u)) {
          if (assigned[v] == c) ++conflicts;
        }
        if (conflicts < best_conflicts) {
          best_conflicts = conflicts;
          best_color = c;
        }
      }
      color = best_color;
    }
    assigned[pick] = color;
    done[pick] = 1;
    result.colors_used = std::max(result.colors_used, color + 1);
    for (graph::NodeId v : g.neighbors(u)) {
      if (!done[v]) saturation[v].insert(color);
    }
  }

  if (result.colors_used > 255) {
    throw std::runtime_error("dsatur: more than 255 colors needed");
  }
  for (std::size_t u = 0; u < n; ++u) {
    result.colors[u] = static_cast<graph::Color>(assigned[u]);
  }
  return result;
}

}  // namespace

DsaturResult solve_dsatur(const graph::Graph& g) { return dsatur_impl(g, 0); }

DsaturResult solve_dsatur_bounded(const graph::Graph& g, unsigned num_colors) {
  if (num_colors == 0) throw std::invalid_argument("dsatur_bounded: K >= 1");
  return dsatur_impl(g, num_colors);
}

}  // namespace msropm::solvers
