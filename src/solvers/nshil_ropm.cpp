#include "msropm/solvers/nshil_ropm.hpp"

#include <stdexcept>

#include "msropm/model/potts.hpp"
#include "msropm/phase/lock.hpp"

namespace msropm::solvers {

NShilRopm::NShilRopm(const graph::Graph& g, NShilRopmConfig config)
    : graph_(&g), config_(config) {
  if (config_.num_colors < 2) throw std::invalid_argument("NShilRopm: N >= 2");
  config_.network.shil_order = config_.num_colors;
}

NShilRopmResult NShilRopm::solve(util::Rng& rng) const {
  phase::PhaseNetwork net(*graph_, config_.network);
  net.set_uniform_coupling(-1.0);
  net.set_uniform_shil_phase(0.0);

  // Init: free-running random phases.
  net.set_couplings_active(false);
  net.set_shil_active(false);
  net.randomize_phases(rng);
  net.run(config_.init_s, rng);

  // Anneal: couplings on, SHIL off.
  net.enable_all_edges();
  net.set_couplings_active(true);
  net.run(config_.anneal_s, rng);

  // Lock: order-N SHIL ramps in, pinning phases at the N Potts spots.
  net.set_shil_active(true);
  net.set_shil_level(1.0);
  net.run(config_.lock_s, rng, &config_.shil_ramp);

  NShilRopmResult result;
  const auto& theta = net.phases();
  const std::vector<double> zero_psi(theta.size(), 0.0);
  result.max_lock_residual =
      phase::max_lock_residual(theta, zero_psi, config_.num_colors);
  const auto spins = model::potts_from_phases(theta, config_.num_colors);
  result.colors = model::coloring_from_potts(spins);
  return result;
}

}  // namespace msropm::solvers
