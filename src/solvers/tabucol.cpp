#include "msropm/solvers/tabucol.hpp"

#include <limits>
#include <stdexcept>
#include <vector>

namespace msropm::solvers {

TabucolResult solve_tabucol(const graph::Graph& g, const TabucolOptions& options,
                            util::Rng& rng) {
  if (options.num_colors < 2) throw std::invalid_argument("tabucol: K >= 2");
  const std::size_t n = g.num_nodes();
  const unsigned k = options.num_colors;

  TabucolResult result;
  result.colors.resize(n);
  for (auto& c : result.colors) {
    c = static_cast<graph::Color>(rng.uniform_index(k));
  }
  if (n == 0) return result;

  // conflict_table[u*k + c] = number of neighbors of u colored c.
  std::vector<std::uint32_t> conflict_table(n * k, 0);
  for (const graph::Edge& e : g.edges()) {
    ++conflict_table[e.u * k + result.colors[e.v]];
    ++conflict_table[e.v * k + result.colors[e.u]];
  }
  auto total_conflicts = [&]() {
    std::size_t total = 0;
    for (const graph::Edge& e : g.edges()) {
      if (result.colors[e.u] == result.colors[e.v]) ++total;
    }
    return total;
  };

  std::size_t conflicts = total_conflicts();
  graph::Coloring best_colors = result.colors;
  std::size_t best_conflicts = conflicts;

  // tabu_until[u*k + c]: iteration until which assigning color c to u is tabu.
  std::vector<std::size_t> tabu_until(n * k, 0);

  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    if (best_conflicts == 0 && options.stop_at_proper) break;
    if (((iter - 1) & 63) == 0 && options.stop.stop_requested()) {
      result.cancelled = true;
      break;
    }
    // Collect conflicted nodes.
    long best_delta = std::numeric_limits<long>::max();
    graph::NodeId best_node = 0;
    graph::Color best_color = 0;
    std::size_t candidates = 0;
    for (graph::NodeId u = 0; u < n; ++u) {
      const graph::Color cu = result.colors[u];
      const auto own_conflicts = conflict_table[u * k + cu];
      if (own_conflicts == 0) continue;
      for (unsigned c = 0; c < k; ++c) {
        if (c == cu) continue;
        const long delta = static_cast<long>(conflict_table[u * k + c]) -
                           static_cast<long>(own_conflicts);
        const bool tabu = tabu_until[u * k + c] >= iter;
        const bool aspirates =
            static_cast<long>(conflicts) + delta <
            static_cast<long>(best_conflicts);
        if (tabu && !aspirates) continue;
        ++candidates;
        // Ties broken uniformly at random (reservoir of size 1).
        if (delta < best_delta ||
            (delta == best_delta && rng.uniform_index(candidates) == 0)) {
          best_delta = delta;
          best_node = u;
          best_color = static_cast<graph::Color>(c);
        }
      }
    }
    if (candidates == 0) {
      // Everything tabu: random perturbation to escape.
      const auto u = static_cast<graph::NodeId>(rng.uniform_index(n));
      best_node = u;
      best_color = static_cast<graph::Color>(rng.uniform_index(k));
      best_delta = static_cast<long>(conflict_table[u * k + best_color]) -
                   static_cast<long>(conflict_table[u * k + result.colors[u]]);
      if (best_color == result.colors[u]) continue;
    }

    // Apply the move.
    const graph::Color old_color = result.colors[best_node];
    result.colors[best_node] = best_color;
    for (graph::NodeId v : g.neighbors(best_node)) {
      --conflict_table[v * k + old_color];
      ++conflict_table[v * k + best_color];
    }
    conflicts = static_cast<std::size_t>(static_cast<long>(conflicts) + best_delta);
    const std::size_t tenure =
        options.base_tenure +
        static_cast<std::size_t>(options.tenure_slope *
                                 static_cast<double>(conflicts)) +
        rng.uniform_index(4);
    tabu_until[best_node * k + old_color] = iter + tenure;
    result.iterations_used = iter;

    if (conflicts < best_conflicts) {
      best_conflicts = conflicts;
      best_colors = result.colors;
    }
  }

  result.colors = std::move(best_colors);
  result.conflicts = best_conflicts;
  return result;
}

}  // namespace msropm::solvers
