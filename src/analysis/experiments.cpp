#include "msropm/analysis/experiments.hpp"

#include <stdexcept>

#include "msropm/graph/builders.hpp"

namespace msropm::analysis {

std::vector<PaperProblem> paper_problems() {
  return {
      PaperProblem{"49-node", 7, 49},
      PaperProblem{"400-node", 20, 400},
      PaperProblem{"1024-node", 32, 1024},
      PaperProblem{"2116-node", 46, 2116},
  };
}

graph::Graph build_paper_graph(const PaperProblem& p) {
  return graph::kings_graph_square(p.side);
}

core::MsropmConfig default_machine_config() {
  core::MsropmConfig config;
  config.num_colors = 4;
  config.schedule = core::StageSchedule::paper_default();

  // Physics design point (see DESIGN.md Sec. 5). Tuned once on the 49-node
  // instance: strong enough coupling to reach a contended ground state
  // within the 20 ns anneal, SHIL comfortably above the discretization
  // threshold, jitter level that anneals without washing out lock.
  config.network.natural_frequency_hz = 1.3e9;
  config.network.coupling_gain = 8.0e8;   // rad/s
  config.network.shil_gain = 1.6e9;       // rad/s
  config.network.shil_order = 2;
  config.network.noise_stddev = 2.0e3;    // rad/sqrt(s)
  config.network.dt = 2.0e-11;            // 1000 steps per 20 ns anneal

  config.shil_ramp = phase::GainRamp{0.0, 0.5};
  config.couplings_during_lock = true;
  return config;
}

core::MsropmConfig machine_config_for_colors(unsigned num_colors) {
  core::MsropmConfig config = default_machine_config();
  if (!core::valid_color_count(num_colors)) {
    throw std::invalid_argument("machine_config_for_colors: colors must be 2^m");
  }
  config.num_colors = num_colors;
  return config;
}

double maxcut_accuracy(std::size_t achieved_cut, std::size_t reference_cut) {
  if (reference_cut == 0) return 1.0;
  return static_cast<double>(achieved_cut) / static_cast<double>(reference_cut);
}

}  // namespace msropm::analysis
