#pragma once
// Shared experiment fixtures: the paper's benchmark instances and the tuned
// machine configuration every bench/test/example starts from. Keeping the
// physics tuning in one place makes the reproduction parameters auditable.

#include <cstddef>
#include <string>
#include <vector>

#include "msropm/core/machine.hpp"
#include "msropm/graph/graph.hpp"

namespace msropm::analysis {

/// One paper benchmark instance descriptor.
struct PaperProblem {
  std::string name;     // "49-node", ...
  std::size_t side;     // King's graph side length
  std::size_t nodes;    // side^2
};

/// The four Table-1 instances: 49 (7x7), 400 (20x20), 1024 (32x32),
/// 2116 (46x46) King's graphs with all edges active.
[[nodiscard]] std::vector<PaperProblem> paper_problems();

/// Build the King's-graph instance for a descriptor.
[[nodiscard]] graph::Graph build_paper_graph(const PaperProblem& p);

/// The tuned 4-coloring MSROPM configuration used throughout the
/// reproduction (60 ns paper schedule; coupling/SHIL/noise gains tuned once
/// on the 49-node instance and then frozen for all sizes, mirroring the
/// paper's fixed design point).
[[nodiscard]] core::MsropmConfig default_machine_config();

/// Same physics, generalized to K = 2^m colors.
[[nodiscard]] core::MsropmConfig machine_config_for_colors(unsigned num_colors);

/// Max-cut accuracy: achieved cut / reference cut (Fig. 5b normalization).
[[nodiscard]] double maxcut_accuracy(std::size_t achieved_cut,
                                     std::size_t reference_cut);

}  // namespace msropm::analysis
