#pragma once
// Hamming-distance analysis of solution sets (paper Fig. 5c): "Hamming
// distances between the solutions obtained by the MSROPM are presented in
// the histograms ... as an indication of how different the solutions are
// from each other."

#include <vector>

#include "msropm/graph/coloring.hpp"

namespace msropm::analysis {

/// Normalized Hamming distance: fraction of nodes whose colors differ.
[[nodiscard]] double hamming_distance(const graph::Coloring& a,
                                      const graph::Coloring& b);

/// Color-permutation-invariant Hamming distance: minimum over all
/// permutations of the color labels of b (proper colorings are equivalent
/// up to relabeling; 4 colors -> 24 permutations).
[[nodiscard]] double hamming_distance_invariant(const graph::Coloring& a,
                                                const graph::Coloring& b,
                                                unsigned num_colors);

/// All pairwise distances among a set of solutions (size k*(k-1)/2).
[[nodiscard]] std::vector<double> pairwise_hamming(
    const std::vector<graph::Coloring>& solutions);

/// All pairwise permutation-invariant distances.
[[nodiscard]] std::vector<double> pairwise_hamming_invariant(
    const std::vector<graph::Coloring>& solutions, unsigned num_colors);

}  // namespace msropm::analysis
