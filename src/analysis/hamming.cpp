#include "msropm/analysis/hamming.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace msropm::analysis {

double hamming_distance(const graph::Coloring& a, const graph::Coloring& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("hamming_distance: size mismatch");
  }
  if (a.empty()) return 0.0;
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++differing;
  }
  return static_cast<double>(differing) / static_cast<double>(a.size());
}

double hamming_distance_invariant(const graph::Coloring& a,
                                  const graph::Coloring& b,
                                  unsigned num_colors) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("hamming_distance_invariant: size mismatch");
  }
  if (num_colors == 0 || num_colors > 8) {
    throw std::invalid_argument("hamming_distance_invariant: 1 <= K <= 8");
  }
  if (a.empty()) return 0.0;
  std::vector<graph::Color> perm(num_colors);
  std::iota(perm.begin(), perm.end(), 0);
  std::size_t best = a.size();
  do {
    std::size_t differing = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const graph::Color mapped =
          b[i] < num_colors ? perm[b[i]] : b[i];  // out-of-range passes through
      if (a[i] != mapped) ++differing;
    }
    best = std::min(best, differing);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return static_cast<double>(best) / static_cast<double>(a.size());
}

std::vector<double> pairwise_hamming(const std::vector<graph::Coloring>& solutions) {
  std::vector<double> out;
  out.reserve(solutions.size() * (solutions.size() - 1) / 2);
  for (std::size_t i = 0; i < solutions.size(); ++i) {
    for (std::size_t j = i + 1; j < solutions.size(); ++j) {
      out.push_back(hamming_distance(solutions[i], solutions[j]));
    }
  }
  return out;
}

std::vector<double> pairwise_hamming_invariant(
    const std::vector<graph::Coloring>& solutions, unsigned num_colors) {
  std::vector<double> out;
  out.reserve(solutions.size() * (solutions.size() - 1) / 2);
  for (std::size_t i = 0; i < solutions.size(); ++i) {
    for (std::size_t j = i + 1; j < solutions.size(); ++j) {
      out.push_back(
          hamming_distance_invariant(solutions[i], solutions[j], num_colors));
    }
  }
  return out;
}

}  // namespace msropm::analysis
