#include "msropm/graph/coloring.hpp"

#include <algorithm>
#include <stdexcept>

namespace msropm::graph {

std::size_t count_conflicts(const Graph& g, const Coloring& colors) {
  if (colors.size() != g.num_nodes()) {
    throw std::invalid_argument("count_conflicts: coloring size mismatch");
  }
  std::size_t conflicts = 0;
  for (const Edge& e : g.edges()) {
    conflicts += (colors[e.u] == colors[e.v]) ? 1 : 0;
  }
  return conflicts;
}

std::size_t count_satisfied_edges(const Graph& g, const Coloring& colors) {
  return g.num_edges() - count_conflicts(g, colors);
}

double coloring_accuracy(const Graph& g, const Coloring& colors) {
  if (g.num_edges() == 0) return 1.0;
  return static_cast<double>(count_satisfied_edges(g, colors)) /
         static_cast<double>(g.num_edges());
}

bool is_proper_coloring(const Graph& g, const Coloring& colors,
                        std::size_t num_colors) {
  if (colors.size() != g.num_nodes()) return false;
  for (Color c : colors) {
    if (c >= num_colors) return false;
  }
  return count_conflicts(g, colors) == 0;
}

std::size_t colors_used(const Coloring& colors) {
  std::vector<std::uint8_t> seen(256, 0);
  std::size_t used = 0;
  for (Color c : colors) {
    if (!seen[c]) {
      seen[c] = 1;
      ++used;
    }
  }
  return used;
}

std::vector<EdgeId> conflicting_edges(const Graph& g, const Coloring& colors) {
  if (colors.size() != g.num_nodes()) {
    throw std::invalid_argument("conflicting_edges: coloring size mismatch");
  }
  std::vector<EdgeId> bad;
  const auto edges = g.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (colors[edges[e].u] == colors[edges[e].v]) {
      bad.push_back(static_cast<EdgeId>(e));
    }
  }
  return bad;
}

Coloring kings_graph_pattern_coloring(std::size_t rows, std::size_t cols) {
  Coloring colors(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      colors[r * cols + c] = static_cast<Color>(2 * (r % 2) + (c % 2));
    }
  }
  return colors;
}

}  // namespace msropm::graph
