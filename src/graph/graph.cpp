#include "msropm/graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace msropm::graph {

GraphBuilder::GraphBuilder(std::size_t num_nodes) : n_(num_nodes), adj_(num_nodes) {}

bool GraphBuilder::add_edge(NodeId u, NodeId v) {
  if (u >= n_ || v >= n_) throw std::invalid_argument("GraphBuilder: node id out of range");
  if (u == v) throw std::invalid_argument("GraphBuilder: self-loop rejected");
  if (u > v) std::swap(u, v);
  auto& nbrs = adj_[u];
  if (std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end()) return false;
  nbrs.push_back(v);
  adj_[v].push_back(u);
  edges_.push_back(Edge{u, v});
  return true;
}

Graph GraphBuilder::build() const {
  Graph g(n_);
  g.edges_ = edges_;
  std::sort(g.edges_.begin(), g.edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  g.offsets_.assign(n_ + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i <= n_; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.adjacency_.assign(2 * g.edges_.size(), 0);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : g.edges_) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;
  }
  for (std::size_t u = 0; u < n_; ++u) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[u]),
              g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[u + 1]));
  }
  return g;
}

Graph::Graph(std::size_t num_nodes) : offsets_(num_nodes + 1, 0) {}

std::span<const NodeId> Graph::neighbors(NodeId u) const {
  if (u >= num_nodes()) throw std::out_of_range("Graph::neighbors");
  return {adjacency_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
}

std::size_t Graph::degree(NodeId u) const {
  if (u >= num_nodes()) throw std::out_of_range("Graph::degree");
  return offsets_[u + 1] - offsets_[u];
}

std::size_t Graph::max_degree() const noexcept {
  std::size_t best = 0;
  for (std::size_t u = 0; u < num_nodes(); ++u) {
    best = std::max(best, offsets_[u + 1] - offsets_[u]);
  }
  return best;
}

double Graph::average_degree() const noexcept {
  const std::size_t n = num_nodes();
  if (n == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) / static_cast<double>(n);
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes() || u == v) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::pair<std::vector<std::uint32_t>, std::size_t> Graph::connected_components() const {
  const std::size_t n = num_nodes();
  constexpr std::uint32_t kUnvisited = ~std::uint32_t{0};
  std::vector<std::uint32_t> comp(n, kUnvisited);
  std::size_t count = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (comp[start] != kUnvisited) continue;
    const auto id = static_cast<std::uint32_t>(count++);
    comp[start] = id;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : neighbors(u)) {
        if (comp[v] == kUnvisited) {
          comp[v] = id;
          stack.push_back(v);
        }
      }
    }
  }
  return {std::move(comp), count};
}

bool Graph::is_bipartite() const {
  const std::size_t n = num_nodes();
  std::vector<int> side(n, -1);
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (side[start] != -1) continue;
    side[start] = 0;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : neighbors(u)) {
        if (side[v] == -1) {
          side[v] = 1 - side[u];
          stack.push_back(v);
        } else if (side[v] == side[u]) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace msropm::graph
