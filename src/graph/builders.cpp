#include "msropm/graph/builders.hpp"

#include <stdexcept>

namespace msropm::graph {

Graph kings_graph(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("kings_graph: empty grid");
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));                // E
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));                // S
      if (r + 1 < rows && c + 1 < cols) b.add_edge(id(r, c), id(r + 1, c + 1));  // SE
      if (r + 1 < rows && c > 0) b.add_edge(id(r, c), id(r + 1, c - 1));   // SW
    }
  }
  return b.build();
}

Graph kings_graph_square(std::size_t side) { return kings_graph(side, side); }

Graph grid_graph(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("grid_graph: empty grid");
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph hex_lattice(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("hex_lattice: empty lattice");
  }
  // Brick-wall embedding of the honeycomb: a rows x cols grid where every
  // node keeps its horizontal neighbors but vertical edges exist only when
  // (r + c) is even -- giving degree <= 3 everywhere.
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows && (r + c) % 2 == 0) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph cycle_graph(std::size_t n) {
  if (n < 3) throw std::invalid_argument("cycle_graph: n >= 3 required");
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  return b.build();
}

Graph path_graph(std::size_t n) {
  if (n == 0) throw std::invalid_argument("path_graph: n >= 1 required");
  GraphBuilder b(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  return b.build();
}

Graph complete_graph(std::size_t n) {
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return b.build();
}

Graph complete_bipartite_graph(std::size_t a, std::size_t b_count) {
  GraphBuilder b(a + b_count);
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < b_count; ++j) {
      b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(a + j));
    }
  }
  return b.build();
}

Graph erdos_renyi(std::size_t n, double p, util::Rng& rng) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("erdos_renyi: p in [0,1]");
  GraphBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(p)) b.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return b.build();
}

Graph triangulated_grid(std::size_t rows, std::size_t cols, util::Rng& rng) {
  if (rows < 2 || cols < 2) {
    throw std::invalid_argument("triangulated_grid: needs at least 2x2");
  }
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
      if (r + 1 < rows && c + 1 < cols) {
        // One diagonal per unit square keeps the embedding planar.
        if (rng.bernoulli(0.5)) {
          b.add_edge(id(r, c), id(r + 1, c + 1));
        } else {
          b.add_edge(id(r, c + 1), id(r + 1, c));
        }
      }
    }
  }
  return b.build();
}

Graph star_graph(std::size_t n) {
  if (n == 0) throw std::invalid_argument("star_graph: n >= 1 required");
  GraphBuilder b(n);
  for (std::size_t i = 1; i < n; ++i) b.add_edge(0, static_cast<NodeId>(i));
  return b.build();
}

Graph wheel_graph(std::size_t n) {
  if (n < 4) throw std::invalid_argument("wheel_graph: n >= 4 required");
  GraphBuilder b(n);
  const std::size_t outer = n - 1;
  for (std::size_t i = 0; i < outer; ++i) {
    const auto a = static_cast<NodeId>(1 + i);
    const auto c = static_cast<NodeId>(1 + (i + 1) % outer);
    b.add_edge(a, c);
    b.add_edge(0, a);
  }
  return b.build();
}

}  // namespace msropm::graph
