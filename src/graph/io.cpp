#include "msropm/graph/io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "msropm/util/strings.hpp"

namespace msropm::graph {

namespace {

// Untrusted-input ceilings: a header like "p edge 9999999999999 1" must be
// rejected as malformed, not honored with a multi-gigabyte allocation (or a
// silent NodeId truncation — node ids are uint32_t). The caps comfortably
// exceed every published DIMACS coloring instance.
constexpr long long kMaxDeclaredNodes = 1LL << 26;  // 67M nodes
constexpr long long kMaxDeclaredEdges = 1LL << 31;  // 2G edge records

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("DIMACS parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

}  // namespace

Graph read_dimacs(std::istream& in) {
  std::optional<GraphBuilder> builder;
  std::size_t declared_edges = 0;
  std::size_t edge_records = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == 'c') continue;
    const auto tokens = util::split_ws(trimmed);
    if (tokens[0] == "p") {
      if (builder) fail(line_no, "duplicate problem line");
      if (tokens.size() != 4 || (tokens[1] != "edge" && tokens[1] != "col")) {
        fail(line_no, "expected 'p edge <n> <m>'");
      }
      // parse_int rejects anything that overflows long long outright; the
      // explicit caps below reject in-range-but-absurd declarations.
      const auto n = util::parse_int(tokens[2]);
      const auto m = util::parse_int(tokens[3]);
      if (!n || !m || *n < 0 || *m < 0) fail(line_no, "bad node/edge counts");
      if (*n > kMaxDeclaredNodes) fail(line_no, "node count too large");
      if (*m > kMaxDeclaredEdges) fail(line_no, "edge count too large");
      builder.emplace(static_cast<std::size_t>(*n));
      declared_edges = static_cast<std::size_t>(*m);
    } else if (tokens[0] == "e") {
      if (!builder) fail(line_no, "edge before problem line");
      if (tokens.size() != 3) fail(line_no, "expected 'e <u> <v>'");
      const auto u = util::parse_int(tokens[1]);
      const auto v = util::parse_int(tokens[2]);
      if (!u || !v) fail(line_no, "bad edge endpoints");
      const auto n = static_cast<long long>(builder->num_nodes());
      if (*u < 1 || *u > n || *v < 1 || *v > n) fail(line_no, "endpoint out of range");
      if (*u == *v) fail(line_no, "self-loop");
      builder->add_edge(static_cast<NodeId>(*u - 1), static_cast<NodeId>(*v - 1));
      ++edge_records;
    } else {
      fail(line_no, "unknown record '" + tokens[0] + "'");
    }
  }
  // Distinguish EOF from an I/O error mid-file: a read that died partway
  // must not be handed back as a (silently smaller) valid graph.
  if (in.bad()) {
    throw std::runtime_error("DIMACS parse error: I/O error while reading");
  }
  if (!builder) throw std::runtime_error("DIMACS parse error: no problem line");
  // Some published instances list each edge twice; accept any count that
  // collapses to at most the declaration.
  if (builder->num_edges() > declared_edges && declared_edges != 0) {
    throw std::runtime_error("DIMACS parse error: more distinct edges than declared");
  }
  // Fewer edge RECORDS than declared means the file was cut off (records,
  // not distinct edges — duplicate listings keep records >= declaration).
  if (edge_records < declared_edges) {
    throw std::runtime_error(
        "DIMACS parse error: fewer edge records than declared "
        "(truncated input?)");
  }
  return builder->build();
}

Graph read_dimacs_string(const std::string& content) {
  std::istringstream in(content);
  return read_dimacs(in);
}

Graph read_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_dimacs(in);
}

void write_dimacs(std::ostream& out, const Graph& g, const std::string& comment) {
  if (!comment.empty()) out << "c " << comment << "\n";
  out << "p edge " << g.num_nodes() << " " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) {
    out << "e " << (e.u + 1) << " " << (e.v + 1) << "\n";
  }
}

std::string write_dimacs_string(const Graph& g, const std::string& comment) {
  std::ostringstream out;
  write_dimacs(out, g, comment);
  return out.str();
}

void write_dimacs_file(const std::string& path, const Graph& g,
                       const std::string& comment) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_dimacs(out, g, comment);
}

}  // namespace msropm::graph
