#pragma once
// Coloring assignments and the paper's quality metric.
//
// "The quality of results is assessed by counting the number of edges in the
//  graph that adhere to the coloring rule ... The normalized number of
//  correctly colored neighbors indicates how closely the generated solution
//  approximates the actual solution." (paper Sec. 4)

#include <cstdint>
#include <vector>

#include "msropm/graph/graph.hpp"

namespace msropm::graph {

using Color = std::uint8_t;
using Coloring = std::vector<Color>;

/// Number of edges whose endpoints share a color (violations).
[[nodiscard]] std::size_t count_conflicts(const Graph& g, const Coloring& colors);

/// Number of properly colored edges.
[[nodiscard]] std::size_t count_satisfied_edges(const Graph& g, const Coloring& colors);

/// The paper's accuracy metric: satisfied edges / total edges. Defined as
/// 1.0 for an edgeless graph.
[[nodiscard]] double coloring_accuracy(const Graph& g, const Coloring& colors);

/// True when no edge is monochromatic and every color is < num_colors.
[[nodiscard]] bool is_proper_coloring(const Graph& g, const Coloring& colors,
                                      std::size_t num_colors);

/// Number of distinct colors actually used.
[[nodiscard]] std::size_t colors_used(const Coloring& colors);

/// List of conflicting edge ids (for diagnostics / repair heuristics).
[[nodiscard]] std::vector<EdgeId> conflicting_edges(const Graph& g,
                                                    const Coloring& colors);

/// Reference proper 4-coloring of a rows x cols King's graph via the 2x2
/// block pattern color(r,c) = 2*(r%2) + (c%2). Used as a known-optimum
/// fixture in tests and to bound max-cut references.
[[nodiscard]] Coloring kings_graph_pattern_coloring(std::size_t rows, std::size_t cols);

}  // namespace msropm::graph
