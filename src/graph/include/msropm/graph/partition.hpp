#pragma once
// Graph partitioning support for the divide-and-color flow.
//
// After the stage-1 max-cut readout, the MSROPM disables couplings whose
// endpoints locked to different phases (the P_EN mechanism, paper Sec. 3.3).
// Architecturally the fabric then behaves as the disjoint union of the
// induced subgraphs. These helpers express that partition both ways:
//  - as a coupling mask over the original edge set (what the hardware does),
//  - as explicit induced subgraphs with id maps (what the analysis needs).

#include <cstdint>
#include <vector>

#include "msropm/graph/graph.hpp"

namespace msropm::graph {

/// An induced subgraph plus the mapping back to original node ids.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> to_original;  // local id -> original id
};

/// Per-edge mask: mask[e] is true when edge e's endpoints share a label
/// (coupling stays ON inside a partition, is cut across partitions).
[[nodiscard]] std::vector<std::uint8_t> intra_partition_edge_mask(
    const Graph& g, const std::vector<std::uint8_t>& labels);

/// Number of edges whose endpoints have different labels (the cut size).
[[nodiscard]] std::size_t cut_size(const Graph& g,
                                   const std::vector<std::uint8_t>& labels);

/// Induced subgraphs, one per distinct label value 0..max_label.
[[nodiscard]] std::vector<InducedSubgraph> split_by_labels(
    const Graph& g, const std::vector<std::uint8_t>& labels,
    std::size_t num_labels);

/// Lift a per-subgraph assignment back to original node ids.
/// `local_values[p][i]` is the value of subgraph p's local node i.
[[nodiscard]] std::vector<std::uint8_t> merge_labels(
    std::size_t num_nodes, const std::vector<InducedSubgraph>& parts,
    const std::vector<std::vector<std::uint8_t>>& local_values);

}  // namespace msropm::graph
