#pragma once
// DIMACS graph-coloring format ("p edge N M" / "e u v", 1-based) I/O so that
// instances can be exchanged with standard coloring tools, plus an edge-list
// text format for quick inspection.

#include <iosfwd>
#include <string>

#include "msropm/graph/graph.hpp"

namespace msropm::graph {

/// Parse DIMACS .col content from a stream. Throws std::runtime_error with a
/// line number on malformed input. Duplicate edges are tolerated (collapsed).
[[nodiscard]] Graph read_dimacs(std::istream& in);

/// Parse DIMACS .col from a string (convenience for tests).
[[nodiscard]] Graph read_dimacs_string(const std::string& content);

/// Load from a file path.
[[nodiscard]] Graph read_dimacs_file(const std::string& path);

/// Serialize in DIMACS .col format (1-based node ids).
void write_dimacs(std::ostream& out, const Graph& g,
                  const std::string& comment = "");
[[nodiscard]] std::string write_dimacs_string(const Graph& g,
                                              const std::string& comment = "");
void write_dimacs_file(const std::string& path, const Graph& g,
                       const std::string& comment = "");

}  // namespace msropm::graph
