#pragma once
// Immutable simple undirected graph in CSR (compressed sparse row) form.
//
// All problem instances in the paper (King's graphs of 49..2116 nodes) and all
// solver substrates (SAT encoder, phase engine coupling network, circuit
// netlist) consume this structure. Node ids are dense [0, n). Edges are
// stored once in the edge list (u < v) and twice in the CSR adjacency.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace msropm::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

/// Undirected edge with canonical ordering u < v.
struct Edge {
  NodeId u;
  NodeId v;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph;

/// Mutable accumulator for edges; finalizes into an immutable Graph.
/// Duplicate edges and self-loops are rejected (the Potts formulation assumes
/// a simple graph).
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_nodes);

  /// Add undirected edge {u, v}. Returns false (and ignores) duplicates;
  /// throws std::invalid_argument on self-loops or out-of-range ids.
  bool add_edge(NodeId u, NodeId v);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Build the immutable graph (sorts adjacency, computes CSR).
  [[nodiscard]] Graph build() const;

 private:
  std::size_t n_;
  std::vector<Edge> edges_;
  std::vector<std::vector<NodeId>> adj_;  // for duplicate detection
};

class Graph {
 public:
  /// Empty graph with n isolated nodes.
  explicit Graph(std::size_t num_nodes = 0);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Neighbors of node u, sorted ascending.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const;
  [[nodiscard]] std::size_t degree(NodeId u) const;
  [[nodiscard]] std::size_t max_degree() const noexcept;
  [[nodiscard]] double average_degree() const noexcept;

  /// Canonical (u < v) edge list.
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }
  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_.at(e); }

  /// True if {u, v} is an edge (binary search over sorted adjacency).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Connected components; returns component id per node and count.
  [[nodiscard]] std::pair<std::vector<std::uint32_t>, std::size_t>
  connected_components() const;

  /// True if the graph has no odd cycle (2-colorable).
  [[nodiscard]] bool is_bipartite() const;

  friend bool operator==(const Graph& a, const Graph& b) {
    return a.offsets_ == b.offsets_ && a.edges_ == b.edges_;
  }

 private:
  friend class GraphBuilder;
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;     // size 2m
  std::vector<Edge> edges_;           // size m, u < v, lexicographic
};

}  // namespace msropm::graph
