#pragma once
// Deterministic graph generators.
//
// The paper evaluates on custom King's-graph 4-coloring instances with
// "all edges active (8 edges per node)" of sizes 49 (7x7), 400 (20x20),
// 1024 (32x32) and 2116 (46x46). kings_graph() reconstructs those instances
// exactly. The remaining generators provide test fixtures and the planar
// instances used by the map-coloring example.

#include <cstddef>

#include "msropm/graph/graph.hpp"
#include "msropm/util/rng.hpp"

namespace msropm::graph {

/// rows x cols King's graph: nodes on a grid, edges to the 8 surrounding
/// cells (chess-king moves). Interior nodes have degree 8. Node id layout is
/// row-major: id = r * cols + c.
[[nodiscard]] Graph kings_graph(std::size_t rows, std::size_t cols);

/// Square King's graph of side k (the paper's instances are side
/// 7, 20, 32, 46).
[[nodiscard]] Graph kings_graph_square(std::size_t side);

/// rows x cols 4-neighbor grid graph.
[[nodiscard]] Graph grid_graph(std::size_t rows, std::size_t cols);

/// Cycle C_n (n >= 3).
[[nodiscard]] Graph cycle_graph(std::size_t n);

/// Path P_n.
[[nodiscard]] Graph path_graph(std::size_t n);

/// Complete graph K_n.
[[nodiscard]] Graph complete_graph(std::size_t n);

/// Complete bipartite graph K_{a,b}; nodes [0,a) on one side.
[[nodiscard]] Graph complete_bipartite_graph(std::size_t a, std::size_t b);

/// Erdos-Renyi G(n, p) with a seeded RNG.
[[nodiscard]] Graph erdos_renyi(std::size_t n, double p, util::Rng& rng);

/// Hexagonal (honeycomb) lattice of rows x cols "brick wall" cells: the
/// 3-regular nearest-neighbor topology of the hexagonal ROIM fabric [7]
/// cited in Sec. 2.3. Interior nodes have degree 3.
[[nodiscard]] Graph hex_lattice(std::size_t rows, std::size_t cols);

/// Random maximal-planar-style triangulated grid: a rows x cols grid where
/// every unit square gets one randomly-oriented diagonal. Planar, and
/// 4-colorable by the four-color theorem; used for the "planar 4-coloring"
/// framing of the paper and the map_coloring example.
[[nodiscard]] Graph triangulated_grid(std::size_t rows, std::size_t cols,
                                      util::Rng& rng);

/// Star graph: node 0 joined to nodes 1..n-1.
[[nodiscard]] Graph star_graph(std::size_t n);

/// Wheel graph: cycle of n-1 outer nodes (>=3) plus a hub (node 0) joined to
/// all of them. Chromatic number is 4 when the cycle is odd.
[[nodiscard]] Graph wheel_graph(std::size_t n);

}  // namespace msropm::graph
