#include "msropm/graph/partition.hpp"

#include <stdexcept>

namespace msropm::graph {

std::vector<std::uint8_t> intra_partition_edge_mask(
    const Graph& g, const std::vector<std::uint8_t>& labels) {
  if (labels.size() != g.num_nodes()) {
    throw std::invalid_argument("intra_partition_edge_mask: label size mismatch");
  }
  std::vector<std::uint8_t> mask(g.num_edges());
  const auto edges = g.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    mask[e] = static_cast<std::uint8_t>(labels[edges[e].u] == labels[edges[e].v]);
  }
  return mask;
}

std::size_t cut_size(const Graph& g, const std::vector<std::uint8_t>& labels) {
  if (labels.size() != g.num_nodes()) {
    throw std::invalid_argument("cut_size: label size mismatch");
  }
  std::size_t cut = 0;
  for (const Edge& e : g.edges()) {
    cut += (labels[e.u] != labels[e.v]) ? 1 : 0;
  }
  return cut;
}

std::vector<InducedSubgraph> split_by_labels(const Graph& g,
                                             const std::vector<std::uint8_t>& labels,
                                             std::size_t num_labels) {
  if (labels.size() != g.num_nodes()) {
    throw std::invalid_argument("split_by_labels: label size mismatch");
  }
  constexpr NodeId kAbsent = ~NodeId{0};
  std::vector<InducedSubgraph> parts(num_labels);
  std::vector<NodeId> local_id(g.num_nodes(), kAbsent);
  std::vector<std::size_t> sizes(num_labels, 0);
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    const std::uint8_t lab = labels[u];
    if (lab >= num_labels) throw std::invalid_argument("split_by_labels: label out of range");
    local_id[u] = static_cast<NodeId>(sizes[lab]++);
  }
  std::vector<GraphBuilder> builders;
  builders.reserve(num_labels);
  for (std::size_t p = 0; p < num_labels; ++p) {
    builders.emplace_back(sizes[p]);
    parts[p].to_original.resize(sizes[p]);
  }
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    parts[labels[u]].to_original[local_id[u]] = static_cast<NodeId>(u);
  }
  for (const Edge& e : g.edges()) {
    if (labels[e.u] == labels[e.v]) {
      builders[labels[e.u]].add_edge(local_id[e.u], local_id[e.v]);
    }
  }
  for (std::size_t p = 0; p < num_labels; ++p) {
    parts[p].graph = builders[p].build();
  }
  return parts;
}

std::vector<std::uint8_t> merge_labels(
    std::size_t num_nodes, const std::vector<InducedSubgraph>& parts,
    const std::vector<std::vector<std::uint8_t>>& local_values) {
  if (parts.size() != local_values.size()) {
    throw std::invalid_argument("merge_labels: parts/values size mismatch");
  }
  std::vector<std::uint8_t> merged(num_nodes, 0);
  std::vector<std::uint8_t> seen(num_nodes, 0);
  for (std::size_t p = 0; p < parts.size(); ++p) {
    const auto& map = parts[p].to_original;
    const auto& vals = local_values[p];
    if (map.size() != vals.size()) {
      throw std::invalid_argument("merge_labels: local value size mismatch");
    }
    for (std::size_t i = 0; i < map.size(); ++i) {
      if (map[i] >= num_nodes) throw std::invalid_argument("merge_labels: bad id map");
      merged[map[i]] = vals[i];
      seen[map[i]] = 1;
    }
  }
  for (std::size_t u = 0; u < num_nodes; ++u) {
    if (!seen[u]) throw std::invalid_argument("merge_labels: node not covered");
  }
  return merged;
}

}  // namespace msropm::graph
