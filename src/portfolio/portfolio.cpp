#include "msropm/portfolio/portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "msropm/core/runner.hpp"
#include "msropm/obs/obs.hpp"
#include "msropm/sat/coloring_encoder.hpp"
#include "msropm/sat/incremental_coloring.hpp"
#include "msropm/solvers/dsatur.hpp"
#include "msropm/solvers/sa_potts.hpp"
#include "msropm/solvers/tabucol.hpp"
#include "msropm/util/fault_injector.hpp"
#include "msropm/util/rng.hpp"
#include "msropm/util/stop_token.hpp"

namespace msropm::portfolio {

const char* to_string(StrategyKind kind) noexcept {
  switch (kind) {
    case StrategyKind::kDsatur:
      return "dsatur";
    case StrategyKind::kCdcl:
      return "cdcl";
    case StrategyKind::kCdclPresimplify:
      return "cdcl-pre";
    case StrategyKind::kCdclIncremental:
      return "cdcl-inc";
    case StrategyKind::kTabucol:
      return "tabucol";
    case StrategyKind::kSaPotts:
      return "sa";
    case StrategyKind::kMsropm:
      return "msropm";
  }
  return "?";
}

std::optional<StrategyKind> strategy_from_string(std::string_view name) noexcept {
  if (name == "dsatur") return StrategyKind::kDsatur;
  if (name == "cdcl") return StrategyKind::kCdcl;
  if (name == "cdcl-pre") return StrategyKind::kCdclPresimplify;
  if (name == "cdcl-inc") return StrategyKind::kCdclIncremental;
  if (name == "tabucol") return StrategyKind::kTabucol;
  if (name == "sa") return StrategyKind::kSaPotts;
  if (name == "msropm") return StrategyKind::kMsropm;
  return std::nullopt;
}

const char* to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kColored:
      return "colored";
    case Verdict::kUnsat:
      return "UNSAT";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "?";
}

std::vector<StrategyConfig> default_strategies() {
  std::vector<StrategyConfig> strategies(5);
  strategies[0].kind = StrategyKind::kDsatur;
  strategies[1].kind = StrategyKind::kCdcl;
  strategies[2].kind = StrategyKind::kCdclPresimplify;
  strategies[3].kind = StrategyKind::kTabucol;
  strategies[4].kind = StrategyKind::kSaPotts;
  return strategies;
}

namespace {

using Clock = std::chrono::steady_clock;

double millis_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Raw result of one strategy attempt, before the engine arbitrates.
struct StrategyRun {
  Verdict verdict = Verdict::kUnknown;
  graph::Coloring coloring;  ///< valid when verdict == kColored
  std::size_t conflicts = StrategyOutcome::kNoColoring;
  bool cancelled = false;
  std::string error;
  util::LimitReason limit = util::LimitReason::kNone;
};

/// Accept a heuristic/decoded coloring only after re-verifying it, so a
/// buggy or raced strategy can never publish a definitive verdict that is
/// wrong (part of the verdict-identity argument). One O(E) conflict scan
/// plus the O(V) palette-bound check.
void accept_if_proper(const graph::Graph& g, unsigned num_colors,
                      graph::Coloring&& colors, StrategyRun& run) {
  run.conflicts = graph::count_conflicts(g, colors);
  if (run.conflicts != 0) return;
  for (const graph::Color color : colors) {
    if (color >= num_colors) return;
  }
  run.verdict = Verdict::kColored;
  run.coloring = std::move(colors);
}

StrategyRun run_cdcl(const graph::Graph& g, unsigned num_colors,
                     const StrategyConfig& config, bool presimplify,
                     const util::StopToken& token,
                     const util::ResourceBudget& budget) {
  StrategyRun run;
  if (token.stop_requested()) {  // encoding is not cancellable; skip it whole
    run.cancelled = true;
    return run;
  }
  const auto encoding = sat::encode_coloring(g, num_colors);
  sat::SolverOptions options = sat::exact_coloring_solver_options();
  options.presimplify = presimplify;
  options.conflict_limit = config.conflict_limit;
  options.budget = budget;
  options.stop = token;
  sat::Solver solver(encoding.cnf, options);
  const sat::SolveResult result = solver.solve();
  run.cancelled = solver.cancelled();
  run.limit = solver.stats().limit_reason;
  if (result == sat::SolveResult::kSat) {
    accept_if_proper(g, num_colors, encoding.decode(solver.model()), run);
  } else if (result == sat::SolveResult::kUnsat) {
    run.verdict = Verdict::kUnsat;
  }
  return run;
}

StrategyRun run_cdcl_incremental(const graph::Graph& g, unsigned num_colors,
                                 const StrategyConfig& config,
                                 const util::StopToken& token,
                                 const util::ResourceBudget& budget) {
  // Incremental chromatic sweep: clique-seeded lower bound (K below the
  // clique size is UNSAT with zero solver calls), one multi-shot solver
  // across every K, colors disabled per query via activation-literal
  // assumptions. A SAT verdict therefore carries the MINIMAL proper
  // coloring; an exhausted sweep proves chromatic > num_colors, which is
  // exactly the portfolio's UNSAT verdict.
  StrategyRun run;
  if (token.stop_requested()) {
    run.cancelled = true;
    return run;
  }
  sat::ChromaticSearchOptions options;
  options.conflict_limit = config.conflict_limit;
  options.budget = budget;
  options.stop = token;
  auto outcome = sat::chromatic_search(g, num_colors, options);
  run.cancelled = outcome.cancelled;
  run.limit = outcome.limit;
  if (outcome.chromatic) {
    accept_if_proper(g, num_colors, std::move(outcome.coloring), run);
  } else if (!outcome.incomplete) {
    run.verdict = Verdict::kUnsat;
  }
  return run;
}

StrategyRun run_msropm(const graph::Graph& g, unsigned num_colors,
                       const StrategyConfig& config,
                       const util::StopToken& token, util::Rng& rng) {
  StrategyRun run;
  if (token.stop_requested()) {
    run.cancelled = true;
    return run;
  }
  // The machine encodes colors as log2(K) readout bits, so it natively
  // supports power-of-two palettes only; run it at the largest 2^m <= K and
  // grade the result against the caller's K (a proper 2^m-coloring is a
  // proper K-coloring).
  unsigned machine_colors = 2;
  while (machine_colors * 2 <= num_colors && machine_colors < 128) {
    machine_colors *= 2;
  }

  core::MsropmConfig machine_config;
  machine_config.num_colors = machine_colors;
  machine_config.schedule = core::StageSchedule::paper_default();
  // The tuned physics design point of the analysis experiments (strong
  // coupling within the 20 ns anneal, SHIL above the discretization
  // threshold, jitter that anneals without washing out lock).
  machine_config.network.natural_frequency_hz = 1.3e9;
  machine_config.network.coupling_gain = 8.0e8;   // rad/s
  machine_config.network.shil_gain = 1.6e9;       // rad/s
  machine_config.network.shil_order = 2;
  machine_config.network.noise_stddev = 2.0e3;    // rad/sqrt(s)
  machine_config.network.dt = 2.0e-11;            // 1000 steps / 20 ns anneal
  machine_config.shil_ramp = phase::GainRamp{0.0, 0.5};
  machine_config.couplings_during_lock = true;

  const core::MultiStagePottsMachine machine(g, machine_config);
  core::RunnerOptions runner_options;
  runner_options.iterations = std::max<std::size_t>(1, config.msropm_iterations);
  runner_options.seed = rng();  // task-stream seeded: slots auto-diversify
  runner_options.num_threads = 1;  // stay inside this portfolio worker
  runner_options.stop = token;
  const core::RunSummary summary = core::run_iterations(machine, runner_options);
  run.cancelled = summary.cancelled;
  if (summary.completed == 0) return run;  // cancelled before any iteration
  accept_if_proper(g, num_colors, graph::Coloring(summary.best_coloring()), run);
  return run;
}

StrategyRun run_strategy(const graph::Graph& g, unsigned num_colors,
                         const StrategyConfig& config,
                         const util::StopToken& token, util::Rng& rng,
                         const util::ResourceBudget& budget) {
  StrategyRun run;
  switch (config.kind) {
    case StrategyKind::kDsatur: {
      auto result = solvers::solve_dsatur_bounded(g, num_colors);
      accept_if_proper(g, num_colors, std::move(result.colors), run);
      return run;
    }
    case StrategyKind::kCdcl:
      return run_cdcl(g, num_colors, config, /*presimplify=*/false, token,
                      budget);
    case StrategyKind::kCdclPresimplify:
      return run_cdcl(g, num_colors, config, /*presimplify=*/true, token,
                      budget);
    case StrategyKind::kCdclIncremental:
      return run_cdcl_incremental(g, num_colors, config, token, budget);
    case StrategyKind::kTabucol: {
      solvers::TabucolOptions options;
      options.num_colors = num_colors;
      options.max_iterations = config.tabu_iterations;
      options.base_tenure = config.tabu_tenure;
      options.stop = token;
      auto result = solvers::solve_tabucol(g, options, rng);
      run.cancelled = result.cancelled;
      accept_if_proper(g, num_colors, std::move(result.colors), run);
      return run;
    }
    case StrategyKind::kSaPotts: {
      solvers::SaPottsOptions options;
      options.num_colors = num_colors;
      options.sweeps = config.sa_sweeps;
      options.t_start = config.sa_t_start;
      options.stop = token;
      auto result = solvers::solve_sa_potts(g, options, rng);
      run.cancelled = result.cancelled;
      accept_if_proper(g, num_colors, std::move(result.colors), run);
      return run;
    }
    case StrategyKind::kMsropm:
      return run_msropm(g, num_colors, config, token, rng);
  }
  return run;
}

/// Per-instance shared state: the result under construction, the decided
/// latch, and the StopSource whose tokens all of the instance's tasks carry.
struct InstanceState {
  std::mutex mu;
  util::StopSource stop;
  bool decided = false;
  PortfolioResult result;
};

// Attempt-lifecycle metrics: one timer for attempt duration, a log-bucketed
// histogram (µs) for the cancellation latency (StopToken trip -> worker exit
// from the strategy; a histogram rather than a timer so the p99 tail is
// exact-bucketed and exported via both exposition formats), counters for
// each way an attempt can end, and batch-level heartbeat gauges.
struct PortfolioMetrics {
  obs::MetricId t_attempt = obs::timer("portfolio.attempt");
  obs::MetricId h_cancel_latency = obs::histogram("portfolio.cancel_latency_us");
  obs::MetricId c_attempts = obs::counter("portfolio.attempts");
  obs::MetricId c_wins = obs::counter("portfolio.wins");
  obs::MetricId c_cancelled = obs::counter("portfolio.cancelled");
  obs::MetricId c_timeouts = obs::counter("portfolio.timeouts");
  obs::MetricId c_skipped = obs::counter("portfolio.skipped");
  // Resource-governance / fault-injection telemetry. limit.* counts attempts
  // ended by each LimitReason; the retry histogram records retries consumed
  // per slot that needed any; degraded counts ladder invocations.
  obs::MetricId c_limit_memory = obs::counter("limit.memory");
  obs::MetricId c_limit_conflicts = obs::counter("limit.conflicts");
  obs::MetricId c_limit_propagations = obs::counter("limit.propagations");
  obs::MetricId c_limit_deadline = obs::counter("limit.deadline");
  obs::MetricId c_fault_injected = obs::counter("fault.injected");
  obs::MetricId c_fault_stalls = obs::counter("fault.stalls");
  obs::MetricId c_retries = obs::counter("portfolio.retries");
  obs::MetricId h_retry_count = obs::histogram("portfolio.retry_count");
  obs::MetricId c_degraded = obs::counter("portfolio.degraded");
  obs::MetricId g_hb_queue = obs::gauge("portfolio.hb.queue_depth");
  obs::MetricId g_hb_in_flight = obs::gauge("portfolio.hb.in_flight");
  obs::MetricId g_hb_wins = obs::gauge("portfolio.hb.wins");
  obs::MetricId g_hb_timeouts = obs::gauge("portfolio.hb.timeouts");
};

const PortfolioMetrics& pm() {
  static const PortfolioMetrics m;
  return m;
}

void note_limit_obs(util::LimitReason reason) {
  switch (reason) {
    case util::LimitReason::kNone:
      return;
    case util::LimitReason::kMemory:
      obs::add(pm().c_limit_memory, 1);
      return;
    case util::LimitReason::kConflicts:
      obs::add(pm().c_limit_conflicts, 1);
      return;
    case util::LimitReason::kPropagations:
      obs::add(pm().c_limit_propagations, 1);
      return;
    case util::LimitReason::kDeadline:
      obs::add(pm().c_limit_deadline, 1);
      return;
    case util::LimitReason::kInjected:
      obs::add(pm().c_fault_injected, 1);
      return;
  }
}

// Static span/marker names per strategy so trace events never allocate.
const char* attempt_span_name(StrategyKind kind) noexcept {
  switch (kind) {
    case StrategyKind::kDsatur: return "attempt:dsatur";
    case StrategyKind::kCdcl: return "attempt:cdcl";
    case StrategyKind::kCdclPresimplify: return "attempt:cdcl-pre";
    case StrategyKind::kCdclIncremental: return "attempt:cdcl-inc";
    case StrategyKind::kTabucol: return "attempt:tabucol";
    case StrategyKind::kSaPotts: return "attempt:sa";
    case StrategyKind::kMsropm: return "attempt:msropm";
  }
  return "attempt:?";
}

const char* win_marker_name(StrategyKind kind) noexcept {
  switch (kind) {
    case StrategyKind::kDsatur: return "win:dsatur";
    case StrategyKind::kCdcl: return "win:cdcl";
    case StrategyKind::kCdclPresimplify: return "win:cdcl-pre";
    case StrategyKind::kCdclIncremental: return "win:cdcl-inc";
    case StrategyKind::kTabucol: return "win:tabucol";
    case StrategyKind::kSaPotts: return "win:sa";
    case StrategyKind::kMsropm: return "win:msropm";
  }
  return "win:?";
}

}  // namespace

std::vector<PortfolioResult> run_portfolio_batch(
    const std::vector<PortfolioJob>& jobs, const PortfolioOptions& options,
    Schedule schedule) {
  if (options.strategies.empty()) {
    throw std::invalid_argument("portfolio: strategy list is empty");
  }
  for (const PortfolioJob& job : jobs) {
    if (job.graph == nullptr) {
      throw std::invalid_argument("portfolio: null graph in job list");
    }
    if (job.num_colors < 2 || job.num_colors > 255) {
      throw std::invalid_argument("portfolio: num_colors must be in [2, 255]");
    }
  }

  const std::size_t num_strategies = options.strategies.size();
  std::vector<InstanceState> states(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    states[i].result.outcomes.resize(num_strategies);
    for (std::size_t s = 0; s < num_strategies; ++s) {
      states[i].result.outcomes[s].kind = options.strategies[s].kind;
    }
  }

  const Clock::time_point engine_start = Clock::now();
  const util::Rng master(options.master_seed);

  // Batch-level heartbeat state: sampled by each worker between attempts (and
  // when a win/timeout lands), published as gauges + per-lane counter tracks.
  // Pure observability — never read back by the scheduling logic.
  std::atomic<std::size_t> hb_in_flight{0};
  std::atomic<std::uint64_t> hb_wins{0};
  std::atomic<std::uint64_t> hb_timeouts{0};
  const auto publish_hb = [&](std::size_t queue_depth) {
    const auto in_flight = static_cast<double>(hb_in_flight.load(std::memory_order_relaxed));
    const auto wins = static_cast<double>(hb_wins.load(std::memory_order_relaxed));
    const auto timeouts = static_cast<double>(hb_timeouts.load(std::memory_order_relaxed));
    obs::set_gauge(pm().g_hb_queue, static_cast<double>(queue_depth));
    obs::set_gauge(pm().g_hb_in_flight, in_flight);
    obs::set_gauge(pm().g_hb_wins, wins);
    obs::set_gauge(pm().g_hb_timeouts, timeouts);
    obs::trace_counter("portfolio.hb.queue_depth", static_cast<double>(queue_depth));
    obs::trace_counter("portfolio.hb.in_flight", in_flight);
    obs::trace_counter("portfolio.hb.wins", wins);
    obs::trace_counter("portfolio.hb.timeouts", timeouts);
  };

  const auto run_task = [&](std::size_t i, std::size_t s) {
    InstanceState& state = states[i];
    const StrategyConfig& config = options.strategies[s];
    // One gate load per task; every per-event obs call below hangs off it so
    // the disabled path pays nothing beyond this (obs-gate contract).
    const std::uint32_t obs_gate = obs::gate();
    {
      std::lock_guard<std::mutex> lock(state.mu);
      if (state.decided) {
        if (obs_gate != 0) obs::add(pm().c_skipped, 1);
        return;  // outcome stays ran == false (skipped)
      }
    }
    // Attempt span: queued->running->done, one per (instance, strategy) pair
    // that actually runs, in the lane of the worker that popped it.
    obs::Span attempt_span(attempt_span_name(config.kind), pm().t_attempt);
    attempt_span.arg("instance", i);
    attempt_span.arg(
        "queued_us",
        static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                       Clock::now() - engine_start)
                                       .count()));
    // Cap the deadline arithmetic: steady_clock counts nanoseconds in an
    // int64, so an "effectively infinite" timeout_ms would overflow the
    // addition and wrap the deadline into the past. A year is indistinguishable
    // from forever for a solver attempt.
    constexpr std::uint64_t kMaxTimeoutMs = 365ull * 24 * 60 * 60 * 1000;
    util::StopToken token =
        options.timeout_ms > 0
            ? state.stop.token_with_deadline(
                  Clock::now() + std::chrono::milliseconds(std::min(
                                     options.timeout_ms, kMaxTimeoutMs)))
            : state.stop.token();
    // Stream id = task position in the instance-major grid: stable across
    // schedules and worker counts, so every task sees the same RNG stream.
    util::Rng rng = master.split(i * num_strategies + s);
    const Clock::time_point task_start = Clock::now();
    StrategyRun run;
    unsigned retries = 0;
    for (;;) {
      if (util::fault::fire(util::FaultSite::kWorkerStall)) {
        // The stall fault models a descheduled / wedged worker, not a dead
        // one: sleep, then run the attempt normally. Siblings keep racing.
        if (obs_gate != 0) obs::add(pm().c_fault_stalls, 1);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(util::fault::stall_ms()));
      }
      try {
        run = run_strategy(*jobs[i].graph, jobs[i].num_colors, config, token,
                           rng, options.budget);
      } catch (const std::exception& ex) {
        // Count as inconclusive, never kill the pool — but keep the reason so
        // a real defect or OOM is distinguishable from an ordinary exhausted
        // budget in the outcome record.
        run = StrategyRun{};
        run.error = ex.what();
      } catch (...) {
        run = StrategyRun{};
        run.error = "unknown exception";
      }
      if (run.limit == util::LimitReason::kNone && run.cancelled &&
          token.deadline_expired()) {
        run.limit = util::LimitReason::kDeadline;  // heuristics hit timeout_ms
      }
      // Watchdog: retry attempts an injected fault or an exception killed —
      // transient by definition. Resource/deadline breaches are NOT retried
      // (the same budget would breach identically), and a decided instance
      // (stop token without deadline) makes any retry pointless.
      const bool transient =
          !run.error.empty() || run.limit == util::LimitReason::kInjected;
      if (!transient || retries >= options.max_retries ||
          token.stop_requested()) {
        break;
      }
      ++retries;
      if (obs_gate != 0) obs::add(pm().c_retries, 1);
      if (options.retry_backoff_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<std::uint64_t>(options.retry_backoff_ms)
            << (retries - 1)));
      }
    }
    if (retries > 0 && obs_gate != 0) obs::observe(pm().h_retry_count, retries);
    note_limit_obs(run.limit);
    const double task_millis = millis_since(task_start);
    if (obs_gate != 0) obs::add(pm().c_attempts, 1);
    if (run.cancelled) {
      if (const auto trip = token.flag_trip_time()) {
        if (obs_gate != 0) {
          // Sibling cancellation: latency from the StopSource trip to this
          // worker actually exiting the strategy.
          const auto latency_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                      Clock::now() - *trip)
                                      .count();
          obs::add(pm().c_cancelled, 1);
          obs::observe(pm().h_cancel_latency,
                       static_cast<std::uint64_t>(latency_ns / 1000));
          obs::trace_instant("cancelled", "latency_us",
                             static_cast<std::uint64_t>(latency_ns / 1000));
        }
      } else if (token.deadline_expired()) {
        if (obs_gate != 0) {
          obs::add(pm().c_timeouts, 1);
          obs::trace_instant("timeout", "instance", i);
        }
        hb_timeouts.fetch_add(1, std::memory_order_relaxed);
      }
    }

    std::lock_guard<std::mutex> lock(state.mu);
    StrategyOutcome& outcome = state.result.outcomes[s];
    outcome.ran = true;
    outcome.verdict = run.verdict;
    outcome.cancelled = run.cancelled;
    outcome.limit = run.limit;
    outcome.retries = retries;
    outcome.conflicts = run.conflicts;
    if (run.conflicts != StrategyOutcome::kNoColoring) {
      const std::size_t edges = jobs[i].graph->num_edges();
      outcome.quality =
          edges == 0 ? 1.0
                     : static_cast<double>(edges - run.conflicts) /
                           static_cast<double>(edges);
    }
    outcome.millis = task_millis;
    outcome.error = std::move(run.error);
    if (!state.decided && run.verdict != Verdict::kUnknown) {
      state.decided = true;
      state.result.verdict = run.verdict;
      state.result.winner = static_cast<int>(s);
      state.result.millis = millis_since(engine_start);
      if (run.verdict == Verdict::kColored) {
        state.result.coloring = std::move(run.coloring);
      }
      state.stop.request_stop();  // cancel sibling strategies cooperatively
      if (obs_gate != 0) {
        obs::add(pm().c_wins, 1);
        obs::trace_instant(win_marker_name(config.kind), "instance", i);
      }
      hb_wins.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // Drain one fixed task list through an atomic cursor: the 1-worker run is
  // exactly the sequential execution of the list, and multi-worker runs pop
  // the same order.
  const auto drain = [&](const std::vector<std::pair<std::size_t, std::size_t>>&
                             tasks) {
    std::atomic<std::size_t> cursor{0};
    const auto worker = [&]() {
      for (;;) {
        const std::size_t t = cursor.fetch_add(1, std::memory_order_relaxed);
        if (t >= tasks.size()) return;
        if (obs::gate() != 0) {
          hb_in_flight.fetch_add(1, std::memory_order_relaxed);
          publish_hb(tasks.size() - std::min(t + 1, tasks.size()));
          run_task(tasks[t].first, tasks[t].second);
          hb_in_flight.fetch_sub(1, std::memory_order_relaxed);
          publish_hb(tasks.size() -
                     std::min(cursor.load(std::memory_order_relaxed), tasks.size()));
        } else {
          run_task(tasks[t].first, tasks[t].second);
        }
      }
    };
    if (options.num_workers <= 1) {
      worker();  // inline: no threads, bit-deterministic
    } else {
      std::vector<std::thread> pool;
      const std::size_t spawned = std::min(options.num_workers, tasks.size());
      pool.reserve(spawned);
      for (std::size_t w = 0; w < spawned; ++w) {
        pool.emplace_back([&worker, w]() {
          // Lanes are keyed by name, so worker slot w keeps ONE trace lane
          // across waves even though strategy-major re-spawns the pool.
          if (obs::tracing_enabled()) {
            obs::set_thread_lane("worker-" + std::to_string(w));
          }
          worker();
        });
      }
      for (std::thread& t : pool) t.join();
    }
  };

  std::vector<std::pair<std::size_t, std::size_t>> tasks;
  tasks.reserve(jobs.size());
  if (schedule == Schedule::kStrategyMajor) {
    // Screening pipeline: one wave per strategy slot, with a barrier between
    // waves. The barrier is what makes the cheap-probe-first lineup pay off:
    // a heavyweight slot never starts while an earlier, cheaper slot of the
    // same instance is still running, so an instance the probe decides costs
    // exactly one probe — later slots are skipped, not raced and cancelled.
    // (Without the barrier, workers spill into the next wave right when the
    // largest probes are finishing and burn doomed duplicate work on them.)
    for (std::size_t s = 0; s < num_strategies; ++s) {
      tasks.clear();
      for (std::size_t i = 0; i < jobs.size(); ++i) tasks.emplace_back(i, s);
      drain(tasks);
    }
  } else {
    // Racing: all strategies of an instance are in flight together and the
    // first definitive verdict cancels the rest mid-run via the stop token.
    tasks.reserve(jobs.size() * num_strategies);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      for (std::size_t s = 0; s < num_strategies; ++s) tasks.emplace_back(i, s);
    }
    drain(tasks);
  }

  // Terminal-status pass (after the drain, so no locks needed): annotate
  // every still-unknown instance with the limit that ended its attempts, and
  // — unless disabled — run the graceful-degradation ladder so the caller
  // gets a best-effort coloring instead of a bare unknown. The ladder never
  // touches the verdict: promoting a best-effort answer to a definitive one
  // is the exact strategies' job, not the fallback's.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    PortfolioResult& result = states[i].result;
    if (result.verdict != Verdict::kUnknown) continue;
    for (const StrategyOutcome& outcome : result.outcomes) {
      if (outcome.limit != util::LimitReason::kNone) {
        result.limit = outcome.limit;
        break;
      }
    }
    if (!options.degrade) continue;
    if (obs::metrics_enabled()) obs::add(pm().c_degraded, 1);
    const graph::Graph& g = *jobs[i].graph;
    const std::size_t edges = g.num_edges();
    const auto quality_of = [&](const graph::Coloring& colors) {
      const std::size_t conflicts = graph::count_conflicts(g, colors);
      return edges == 0 ? 1.0
                        : static_cast<double>(edges - conflicts) /
                              static_cast<double>(edges);
    };
    // Rung 1: bounded DSATUR — deterministic, microseconds, always yields a
    // full (possibly improper) coloring within the palette.
    auto dsatur = solvers::solve_dsatur_bounded(g, jobs[i].num_colors);
    graph::Coloring best = std::move(dsatur.colors);
    double best_quality = quality_of(best);
    // Rung 2: a short, deterministically seeded tabucol polish when DSATUR
    // left conflicts. The stream id sits past every task stream, so ladder
    // randomness never perturbs strategy attempts.
    if (best_quality < 1.0) {
      solvers::TabucolOptions tabu_options;
      tabu_options.num_colors = jobs[i].num_colors;
      tabu_options.max_iterations = 2000;
      util::Rng ladder_rng = master.split(jobs.size() * num_strategies + i);
      auto tabu = solvers::solve_tabucol(g, tabu_options, ladder_rng);
      const double tabu_quality = quality_of(tabu.colors);
      if (tabu_quality > best_quality) {
        best_quality = tabu_quality;
        best = std::move(tabu.colors);
      }
    }
    result.best_effort = std::move(best);
    result.best_effort_quality = best_quality;
  }

  std::vector<PortfolioResult> results;
  results.reserve(jobs.size());
  for (InstanceState& state : states) {
    results.push_back(std::move(state.result));
  }
  return results;
}

PortfolioResult solve_portfolio(const graph::Graph& g, unsigned num_colors,
                                const PortfolioOptions& options) {
  std::vector<PortfolioJob> jobs(1);
  jobs[0].graph = &g;
  jobs[0].num_colors = num_colors;
  auto results = run_portfolio_batch(jobs, options, Schedule::kInstanceMajor);
  return std::move(results[0]);
}

}  // namespace msropm::portfolio
