#pragma once
// Batch sweep engine on top of the solver portfolio: take a grid of coloring
// instances (King's-graph generator parameters or DIMACS .col files), run the
// portfolio for every instance across one shared worker pool, and emit a
// per-instance winner/verdict/time/quality report. First cut of the ROADMAP
// "scenario sweep service".

#include <cstddef>
#include <string>
#include <vector>

#include "msropm/graph/graph.hpp"
#include "msropm/portfolio/portfolio.hpp"
#include "msropm/util/table.hpp"

namespace msropm::portfolio {

/// One sweep instance: a named graph plus the palette size to decide.
struct InstanceSpec {
  std::string name;
  graph::Graph graph;
  unsigned num_colors = 4;
};

/// side x side King's graph instance (the paper's grid), named
/// "kings_<side>x<side>_K<num_colors>".
[[nodiscard]] InstanceSpec kings_instance(std::size_t side, unsigned num_colors);

/// Instance read from a DIMACS .col file; name is the path. Throws on
/// unreadable or malformed input (graph::read_dimacs_file semantics).
[[nodiscard]] InstanceSpec dimacs_instance(const std::string& path,
                                           unsigned num_colors);

struct SweepOptions {
  PortfolioOptions portfolio = {};
  Schedule schedule = Schedule::kStrategyMajor;
};

struct SweepResult {
  std::vector<PortfolioResult> instances;  ///< parallel to the spec list
  double wall_ms = 0.0;                    ///< whole-sweep wall clock

  /// Number of instances with a definitive verdict (colored or UNSAT).
  [[nodiscard]] std::size_t decided() const noexcept;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {}) : options_(std::move(options)) {}

  [[nodiscard]] const SweepOptions& options() const noexcept { return options_; }

  /// Run the portfolio over every instance on one shared pool.
  [[nodiscard]] SweepResult run(const std::vector<InstanceSpec>& instances) const;

  /// Per-instance report: winner strategy, time-to-verdict, and quality (the
  /// paper's accuracy metric of the best coloring seen; 1.0 means proper).
  [[nodiscard]] util::TextTable report(
      const std::vector<InstanceSpec>& instances, const SweepResult& result) const;

  /// Per-strategy summary across the whole sweep: attempts, wins, mean
  /// quality of the colorings each strategy produced, and mean attempt time.
  /// This is the machine-vs-SAT comparison row set — an `msropm` slot next
  /// to the SAT-side strategies shows solution quality against time on the
  /// same instances.
  [[nodiscard]] util::TextTable strategy_summary(const SweepResult& result) const;

 private:
  SweepOptions options_;
};

}  // namespace msropm::portfolio
