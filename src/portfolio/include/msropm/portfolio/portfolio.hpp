#pragma once
// Parallel solver portfolio for K-coloring instances.
//
// A portfolio runs several diversified strategies — bounded DSATUR, CDCL
// with/without presimplify, Tabucol, SA-Potts — against the same instance
// over a fixed-size worker pool. The first strategy to reach a DEFINITIVE
// verdict (a verified proper coloring, or a CDCL UNSAT proof) wins and
// cancels its siblings through the cooperative util::StopToken that is
// threaded into every solver's inner loop. Strategies that merely exhaust
// their budget without a proper coloring are inconclusive and do NOT cancel
// anyone.
//
// Determinism contract (see src/portfolio/README.md for the argument):
//   - With num_workers == 1 and timeout_ms == 0, results are bit-identical
//     across runs: task order, per-task RNG streams (Rng::split of the master
//     seed) and budgets are all fixed.
//   - At any worker count (still timeout_ms == 0), VERDICTS are identical to
//     the serial run. Winner identity and timings may differ — racing is the
//     point — but a definitive verdict can never flip, because all verdicts
//     are sound (colorings are re-verified, UNSAT comes only from the
//     complete solver) and cancellation is only triggered by definitive
//     verdicts.
//   - timeout_ms > 0 introduces wall-clock deadlines and therefore genuine
//     nondeterminism; use it in services, not in reproducibility tests.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "msropm/graph/coloring.hpp"
#include "msropm/graph/graph.hpp"
#include "msropm/util/resource_budget.hpp"

namespace msropm::portfolio {

enum class StrategyKind : std::uint8_t {
  kDsatur,          ///< bounded DSATUR greedy (deterministic, microseconds)
  kCdcl,            ///< CDCL on the direct encoding (complete)
  kCdclPresimplify, ///< CDCL behind the clause-database preprocessor
  kCdclIncremental, ///< incremental chromatic sweep (sat::chromatic_search):
                    ///< one multi-shot solver, per-color activation-literal
                    ///< assumptions, clique-seeded. Complete, and its SAT
                    ///< witness uses the MINIMAL palette (often < K colors).
                    ///< Not in default_strategies(); opt in explicitly.
  kTabucol,         ///< tabu search (seeded, budgeted)
  kSaPotts,         ///< simulated annealing (seeded, budgeted)
  kMsropm,          ///< the paper's machine: best-of-N MSROPM Monte-Carlo
                    ///< iterations on the batched phase engine. Runs at the
                    ///< largest power-of-two palette <= num_colors (hardware
                    ///< stages encode log2(K) bits). Not in
                    ///< default_strategies(); opt in explicitly.
};

[[nodiscard]] const char* to_string(StrategyKind kind) noexcept;
/// Parse "dsatur", "cdcl", "cdcl-pre", "cdcl-inc", "tabucol", "sa",
/// "msropm"; nullopt otherwise.
[[nodiscard]] std::optional<StrategyKind> strategy_from_string(
    std::string_view name) noexcept;

/// One strategy slot of a portfolio. The same kind may appear several times
/// with different knobs; every slot draws an independent RNG stream from the
/// master seed, so duplicated slots are automatically seed-diversified.
struct StrategyConfig {
  StrategyKind kind = StrategyKind::kDsatur;
  /// CDCL: give up after this many conflicts (0 = run to completion). For
  /// cdcl-inc this bounds each K-round of the sweep, so the whole attempt
  /// may spend up to (sweep rounds) x conflict_limit conflicts.
  std::uint64_t conflict_limit = 0;
  /// Tabucol: iteration budget.
  std::size_t tabu_iterations = 50000;
  /// Tabucol: base tabu tenure.
  std::size_t tabu_tenure = 7;
  /// SA-Potts: sweep budget and starting temperature.
  std::size_t sa_sweeps = 400;
  double sa_t_start = 2.0;
  /// MSROPM: Monte-Carlo iteration budget (the paper's best-of-40), driven
  /// through core::run_iterations' batched solve path in one worker thread.
  std::size_t msropm_iterations = 40;
};

/// The default lineup: one slot per strategy kind, cheapest first. The order
/// doubles as the queue order of the strategy-major sweep schedule, so the
/// near-free DSATUR probe screens every instance before the heavyweights run.
[[nodiscard]] std::vector<StrategyConfig> default_strategies();

enum class Verdict : std::uint8_t {
  kColored,  ///< verified proper num_colors-coloring found
  kUnsat,    ///< CDCL proved no such coloring exists
  kUnknown,  ///< every strategy exhausted its budget or was cancelled
};

[[nodiscard]] const char* to_string(Verdict verdict) noexcept;

/// What one strategy slot did on one instance.
struct StrategyOutcome {
  /// Sentinel for conflicts: the strategy produced no coloring to grade
  /// (CDCL without a model, skipped, or cancelled before it started).
  static constexpr std::size_t kNoColoring = ~std::size_t{0};

  StrategyKind kind = StrategyKind::kDsatur;
  Verdict verdict = Verdict::kUnknown;
  bool ran = false;        ///< false = skipped (instance already decided)
  bool cancelled = false;  ///< stop token fired mid-run
  std::size_t conflicts = kNoColoring;  ///< conflicts of the returned coloring
  /// Solution quality of the returned coloring: satisfied edges / total
  /// edges, in [0, 1] (1.0 = proper). Negative when the strategy produced no
  /// coloring to grade. Inconclusive heuristics still report the quality of
  /// their best attempt, which is what the sweep report's quality column
  /// compares across strategies.
  double quality = -1.0;
  double millis = 0.0;                  ///< wall time of this strategy run
  std::string error;  ///< non-empty when the strategy threw (counts unknown)
  /// Why the attempt stopped short (kNone for definitive or plain-cancelled
  /// runs): a ResourceBudget breach, an expired deadline, or an injected
  /// fault. Reflects the FINAL attempt when retries happened.
  util::LimitReason limit = util::LimitReason::kNone;
  /// Retries consumed by the watchdog (attempts beyond the first; bounded by
  /// PortfolioOptions::max_retries). Only injected-fault and thrown attempts
  /// are retried.
  unsigned retries = 0;
};

/// Portfolio result for one instance. The engine guarantees a TERMINAL
/// status for every job: a definitive verdict, a best-effort coloring from
/// the degradation ladder, or an unknown annotated with the limit that ended
/// the attempts — never a silently lost row.
struct PortfolioResult {
  Verdict verdict = Verdict::kUnknown;
  std::optional<graph::Coloring> coloring;  ///< set when verdict == kColored
  int winner = -1;      ///< index into PortfolioOptions::strategies, -1 = none
  double millis = 0.0;  ///< wall time from engine start to this verdict
  std::vector<StrategyOutcome> outcomes;  ///< one per strategy slot
  /// First non-kNone limit among the outcomes when the verdict stayed
  /// unknown: why the exact attempts fell short.
  util::LimitReason limit = util::LimitReason::kNone;
  /// Degradation ladder output (verdict == kUnknown and degrade enabled):
  /// the best coloring bounded DSATUR + a short deterministic tabucol could
  /// produce. NOT a verdict — it may be improper (see best_effort_quality) —
  /// but every instance gets an answer. Never set for definitive verdicts.
  std::optional<graph::Coloring> best_effort;
  /// Satisfied-edge fraction of best_effort in [0, 1]; -1 when unset.
  double best_effort_quality = -1.0;
  /// True when the instance reached a terminal status (see struct comment).
  [[nodiscard]] bool terminal() const noexcept {
    return verdict != Verdict::kUnknown || best_effort.has_value() ||
           limit != util::LimitReason::kNone;
  }
};

/// Order in which a batch of instances x strategies is fed to the pool.
enum class Schedule : std::uint8_t {
  /// Screening pipeline: one wave per strategy slot (all instances), with a
  /// barrier between waves. With the default cheapest-first lineup the cheap
  /// probes decide most instances before any heavyweight starts, so later
  /// tasks are skipped, not raced-and-cancelled. This is the fast choice for
  /// sweeps.
  kStrategyMajor,
  /// All strategies of instance 0 first, then instance 1, ... Maximizes
  /// intra-instance racing (and therefore cancellation); what
  /// solve_portfolio uses, and what the cancellation stress test hammers.
  kInstanceMajor,
};

struct PortfolioOptions {
  std::vector<StrategyConfig> strategies = default_strategies();
  /// Worker threads draining the task queue. 1 = run inline on the calling
  /// thread (fully deterministic, no threads spawned).
  std::size_t num_workers = 1;
  /// Master seed; per-task RNGs are Rng(master).split(task_stream_id).
  std::uint64_t master_seed = 1;
  /// Wall-clock cap per strategy attempt, 0 = none. Nondeterministic by
  /// nature (see determinism contract above).
  std::uint64_t timeout_ms = 0;
  /// Per-attempt resource budget forwarded to every CDCL-family strategy
  /// (memory / conflicts / propagations; wall time is timeout_ms). A breach
  /// ends that attempt with its LimitReason — it never cancels siblings.
  util::ResourceBudget budget = {};
  /// Watchdog retry cap for attempts killed by an injected fault or an
  /// exception: up to this many re-runs per (instance, strategy) slot, with
  /// exponential backoff. Resource/deadline breaches are NOT retried (the
  /// same budget would just breach again).
  unsigned max_retries = 2;
  /// Base backoff before the first retry; doubles per retry. 0 disables the
  /// sleep (retries stay immediate and deterministic-ish for tests).
  unsigned retry_backoff_ms = 1;
  /// Graceful-degradation ladder: when every strategy left an instance
  /// unknown, run bounded DSATUR + a short deterministic tabucol post-drain
  /// and publish the best coloring as PortfolioResult::best_effort. Never
  /// changes the verdict.
  bool degrade = true;
};

/// One instance of a batch: a graph plus the palette size to decide.
struct PortfolioJob {
  const graph::Graph* graph = nullptr;
  unsigned num_colors = 4;
};

/// Run the portfolio over a batch of instances on one shared worker pool.
/// Returns one PortfolioResult per job, in job order. Throws
/// std::invalid_argument on an empty strategy list, a null graph, or
/// num_colors outside [2, 255].
[[nodiscard]] std::vector<PortfolioResult> run_portfolio_batch(
    const std::vector<PortfolioJob>& jobs, const PortfolioOptions& options,
    Schedule schedule = Schedule::kStrategyMajor);

/// Single-instance convenience wrapper: all strategies race (instance-major).
[[nodiscard]] PortfolioResult solve_portfolio(const graph::Graph& g,
                                              unsigned num_colors,
                                              const PortfolioOptions& options = {});

}  // namespace msropm::portfolio
