#include "msropm/portfolio/sweep.hpp"

#include <algorithm>
#include <chrono>

#include "msropm/graph/builders.hpp"
#include "msropm/graph/io.hpp"

namespace msropm::portfolio {

InstanceSpec kings_instance(std::size_t side, unsigned num_colors) {
  InstanceSpec spec;
  spec.name = "kings_" + std::to_string(side) + "x" + std::to_string(side) +
              "_K" + std::to_string(num_colors);
  spec.graph = graph::kings_graph_square(side);
  spec.num_colors = num_colors;
  return spec;
}

InstanceSpec dimacs_instance(const std::string& path, unsigned num_colors) {
  InstanceSpec spec;
  spec.name = path;
  spec.graph = graph::read_dimacs_file(path);
  spec.num_colors = num_colors;
  return spec;
}

std::size_t SweepResult::decided() const noexcept {
  std::size_t count = 0;
  for (const PortfolioResult& r : instances) {
    if (r.verdict != Verdict::kUnknown) ++count;
  }
  return count;
}

SweepResult SweepRunner::run(const std::vector<InstanceSpec>& instances) const {
  std::vector<PortfolioJob> jobs(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    jobs[i].graph = &instances[i].graph;
    jobs[i].num_colors = instances[i].num_colors;
  }
  const auto t0 = std::chrono::steady_clock::now();
  SweepResult result;
  result.instances =
      run_portfolio_batch(jobs, options_.portfolio, options_.schedule);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

util::TextTable SweepRunner::report(const std::vector<InstanceSpec>& instances,
                                    const SweepResult& result) const {
  util::TextTable table({"instance", "nodes", "edges", "K", "verdict", "winner",
                         "t_verdict_ms", "quality", "limit"});
  for (std::size_t i = 0; i < result.instances.size(); ++i) {
    const PortfolioResult& r = result.instances[i];
    const InstanceSpec& spec = instances[i];
    std::string winner = "-";
    if (r.winner >= 0) {
      winner = to_string(
          options_.portfolio.strategies[static_cast<std::size_t>(r.winner)].kind);
    }
    // Quality = the paper's accuracy metric of the best coloring any strategy
    // produced (satisfied edges / edges, graded per outcome in run_task). A
    // decided-colorable instance is 1.0 by construction; UNSAT instances have
    // no coloring to grade. Heuristic and machine attempts that fell short
    // still report their best coloring's grade, never a blank.
    std::string quality = "-";
    if (r.verdict == Verdict::kColored) {
      quality = util::format_double(1.0, 4);
    } else if (r.verdict == Verdict::kUnknown) {
      double best_quality = r.best_effort_quality;  // degradation ladder, if run
      for (const StrategyOutcome& o : r.outcomes) {
        // Only grade outcomes that actually produced a coloring; a CDCL
        // attempt that timed out has no coloring, not a perfect one.
        if (o.ran) best_quality = std::max(best_quality, o.quality);
      }
      if (best_quality >= 0.0) {
        quality = util::format_double(best_quality, 4);
      }
    }
    // Why the exact attempts fell short (unknown rows only): budget breach,
    // deadline, or injected fault. "-" for decided rows or plain exhaustion.
    const std::string limit =
        r.limit == util::LimitReason::kNone ? "-" : util::to_string(r.limit);
    table.add_row({spec.name, std::to_string(spec.graph.num_nodes()),
                   std::to_string(spec.graph.num_edges()),
                   std::to_string(spec.num_colors), to_string(r.verdict), winner,
                   util::format_double(r.millis, 2), quality, limit});
  }
  return table;
}

util::TextTable SweepRunner::strategy_summary(const SweepResult& result) const {
  const std::vector<StrategyConfig>& strategies = options_.portfolio.strategies;
  util::TextTable table({"strategy", "ran", "wins", "cancelled", "mean_quality",
                         "mean_ms"});
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    std::size_t ran = 0, wins = 0, cancelled = 0, graded = 0;
    double quality_sum = 0.0, millis_sum = 0.0;
    for (const PortfolioResult& r : result.instances) {
      if (s >= r.outcomes.size()) continue;
      const StrategyOutcome& o = r.outcomes[s];
      if (!o.ran) continue;
      ++ran;
      millis_sum += o.millis;
      if (o.cancelled) ++cancelled;
      if (r.winner == static_cast<int>(s)) ++wins;
      if (o.quality >= 0.0) {
        ++graded;
        quality_sum += o.quality;
      }
    }
    table.add_row(
        {to_string(strategies[s].kind), std::to_string(ran),
         std::to_string(wins), std::to_string(cancelled),
         graded ? util::format_double(quality_sum / static_cast<double>(graded), 4)
                : std::string("-"),
         ran ? util::format_double(millis_sum / static_cast<double>(ran), 2)
             : std::string("-")});
  }
  return table;
}

}  // namespace msropm::portfolio
