#pragma once
// Activity-based power model of the MSROPM (65 nm GP class, VDD = 1 V).
//
// The paper reports average power from SPICE simulations (Table 1):
// 9.4 / 60.3 / 146.1 / 283.4 mW for 49 / 400 / 1024 / 2116 nodes -- linear
// scaling with a small fixed overhead. Without the PDK we substitute an
// activity (CV^2 f) model:
//
//   P = n * (P_rosc + P_readout + P_shil_inj)
//     + m_eff * P_b2b
//     + P_fixed
//
//   P_rosc    = stages * C_stage * VDD^2 * f0        (ring switching)
//   P_readout = K * C_dff * VDD^2 * f0               (DFF bank + REF load)
//   P_b2b     = 2 * C_b2b * VDD^2 * f0               (per active coupling)
//   m_eff     = edges weighted by schedule duty and partition activity
//   P_fixed   = SHIL/REF generation + global control
//
// Capacitance constants are calibrated once against the paper's 49-node and
// 2116-node rows; the 400- and 1024-node rows are then *predictions* (they
// land within ~8%, see EXPERIMENTS.md). The claim the model reproduces is
// the linear scaling trend, not SPICE-exact numbers.

#include <cstddef>

namespace msropm::power {

/// 65 nm-class technology constants.
struct TechnologyParams {
  double vdd = 1.0;            ///< [V]
  double f0_hz = 1.3e9;        ///< oscillator frequency
  double c_stage_f = 7.93e-15; ///< effective switched cap per inverter stage
  double c_b2b_f = 0.5e-15;    ///< effective switched cap per B2B inverter
  double c_dff_f = 3.0e-15;    ///< per readout DFF incl. REF load share
  double c_shil_inj_f = 1.2e-15;  ///< SHIL PMOS injector (runs at 2*f0)
  double p_fixed_w = 2.93e-3;  ///< SHIL/REF generators + global control
};

/// Fraction of each 60 ns run during which the blocks toggle.
struct ActivityProfile {
  double osc_duty = 1.0;          ///< ROSCs run the whole schedule
  double coupling_duty = 50.0 / 60.0;  ///< couplings on during anneal+SHIL
  double shil_duty = 10.0 / 60.0;      ///< two 5 ns discretization windows
  /// Fraction of couplings still enabled during the stage-2 window (intra-
  /// partition edges only); 1.0 during stage 1.
  double stage2_active_edge_fraction = 0.45;
  /// Stage-1 share of the coupling-on time (25 ns of 50 ns).
  double stage1_coupling_share = 0.5;

  /// Effective edge activity: duty * (share1 * 1 + share2 * fraction).
  [[nodiscard]] double effective_edge_activity() const noexcept;
};

class PowerModel {
 public:
  explicit PowerModel(TechnologyParams tech = {}, unsigned rosc_stages = 11,
                      unsigned readout_buckets = 4);

  [[nodiscard]] const TechnologyParams& tech() const noexcept { return tech_; }

  /// Per-block powers at full activity [W].
  [[nodiscard]] double rosc_power_w() const noexcept;
  [[nodiscard]] double b2b_power_w() const noexcept;
  [[nodiscard]] double readout_power_w() const noexcept;
  [[nodiscard]] double shil_injector_power_w() const noexcept;

  /// Schedule-averaged total power for a problem of n nodes / m edges [W].
  [[nodiscard]] double average_power_w(std::size_t num_nodes,
                                       std::size_t num_edges,
                                       const ActivityProfile& activity = {}) const noexcept;

  /// Energy of one 60 ns solution attempt [J].
  [[nodiscard]] double energy_per_run_j(std::size_t num_nodes,
                                        std::size_t num_edges,
                                        double run_time_s,
                                        const ActivityProfile& activity = {}) const noexcept;

 private:
  TechnologyParams tech_;
  unsigned stages_;
  unsigned buckets_;
};

}  // namespace msropm::power
