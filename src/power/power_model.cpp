#include "msropm/power/power_model.hpp"

namespace msropm::power {

double ActivityProfile::effective_edge_activity() const noexcept {
  const double share2 = 1.0 - stage1_coupling_share;
  return coupling_duty *
         (stage1_coupling_share + share2 * stage2_active_edge_fraction);
}

PowerModel::PowerModel(TechnologyParams tech, unsigned rosc_stages,
                       unsigned readout_buckets)
    : tech_(tech), stages_(rosc_stages), buckets_(readout_buckets) {}

double PowerModel::rosc_power_w() const noexcept {
  return static_cast<double>(stages_) * tech_.c_stage_f * tech_.vdd * tech_.vdd *
         tech_.f0_hz;
}

double PowerModel::b2b_power_w() const noexcept {
  return 2.0 * tech_.c_b2b_f * tech_.vdd * tech_.vdd * tech_.f0_hz;
}

double PowerModel::readout_power_w() const noexcept {
  return static_cast<double>(buckets_) * tech_.c_dff_f * tech_.vdd * tech_.vdd *
         tech_.f0_hz;
}

double PowerModel::shil_injector_power_w() const noexcept {
  // Injector gate toggles at the sub-harmonic drive frequency 2*f0.
  return tech_.c_shil_inj_f * tech_.vdd * tech_.vdd * (2.0 * tech_.f0_hz);
}

double PowerModel::average_power_w(std::size_t num_nodes, std::size_t num_edges,
                                   const ActivityProfile& activity) const noexcept {
  const double n = static_cast<double>(num_nodes);
  const double m = static_cast<double>(num_edges);
  const double per_node = activity.osc_duty * rosc_power_w() +
                          activity.osc_duty * readout_power_w() +
                          activity.shil_duty * shil_injector_power_w();
  const double per_edge = activity.effective_edge_activity() * b2b_power_w();
  return n * per_node + m * per_edge + tech_.p_fixed_w;
}

double PowerModel::energy_per_run_j(std::size_t num_nodes, std::size_t num_edges,
                                    double run_time_s,
                                    const ActivityProfile& activity) const noexcept {
  return average_power_w(num_nodes, num_edges, activity) * run_time_s;
}

}  // namespace msropm::power
