#include "msropm/phase/network.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace msropm::phase {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

double wrap_angle(double theta) noexcept {
  double w = std::fmod(theta, kTwoPi);
  if (w < 0.0) w += kTwoPi;
  return w;
}

double angular_distance(double a, double b) noexcept {
  double d = std::fabs(wrap_angle(a) - wrap_angle(b));
  return d > std::numbers::pi ? kTwoPi - d : d;
}

double GainRamp::value(double t_fraction) const noexcept {
  if (t_fraction <= start_fraction) return 0.0;
  if (t_fraction >= end_fraction) return 1.0;
  if (end_fraction <= start_fraction) return 1.0;
  return (t_fraction - start_fraction) / (end_fraction - start_fraction);
}

PhaseNetwork::PhaseNetwork(const graph::Graph& g, NetworkParams params)
    : graph_(&g),
      params_(params),
      theta_(g.num_nodes(), 0.0),
      j_(g.num_edges(), -1.0),  // B2B inverters: anti-ferromagnetic
      edge_mask_(g.num_edges(), 1),
      shil_enable_(g.num_nodes(), 1),
      shil_phase_(g.num_nodes(), 0.0),
      detune_(g.num_nodes(), 0.0),
      sin_(g.num_nodes(), 0.0),
      cos_(g.num_nodes(), 0.0) {
  if (params_.dt <= 0.0) throw std::invalid_argument("PhaseNetwork: dt > 0");
  if (params_.shil_order < 1) throw std::invalid_argument("PhaseNetwork: order >= 1");
}

void PhaseNetwork::set_phases(std::vector<double> phases) {
  if (phases.size() != theta_.size()) {
    throw std::invalid_argument("PhaseNetwork::set_phases: size mismatch");
  }
  theta_ = std::move(phases);
}

void PhaseNetwork::randomize_phases(util::Rng& rng) {
  for (double& t : theta_) t = rng.uniform_phase();
}

void PhaseNetwork::perturb_phases(util::Rng& rng, double stddev_rad) {
  for (double& t : theta_) t += rng.normal(0.0, stddev_rad);
}

void PhaseNetwork::set_uniform_coupling(double j) {
  std::fill(j_.begin(), j_.end(), j);
}

void PhaseNetwork::set_edge_couplings(std::vector<double> per_edge_j) {
  if (per_edge_j.size() != j_.size()) {
    throw std::invalid_argument("PhaseNetwork::set_edge_couplings: size mismatch");
  }
  j_ = std::move(per_edge_j);
}

void PhaseNetwork::set_edge_mask(std::vector<std::uint8_t> mask) {
  if (mask.size() != edge_mask_.size()) {
    throw std::invalid_argument("PhaseNetwork::set_edge_mask: size mismatch");
  }
  edge_mask_ = std::move(mask);
}

void PhaseNetwork::enable_all_edges() {
  std::fill(edge_mask_.begin(), edge_mask_.end(), std::uint8_t{1});
}

void PhaseNetwork::disable_all_edges() {
  std::fill(edge_mask_.begin(), edge_mask_.end(), std::uint8_t{0});
}

void PhaseNetwork::set_shil_enable(std::vector<std::uint8_t> per_osc_enable) {
  if (per_osc_enable.size() != shil_enable_.size()) {
    throw std::invalid_argument("PhaseNetwork::set_shil_enable: size mismatch");
  }
  shil_enable_ = std::move(per_osc_enable);
}

void PhaseNetwork::enable_all_shil() {
  std::fill(shil_enable_.begin(), shil_enable_.end(), std::uint8_t{1});
}

void PhaseNetwork::set_shil_phases(std::vector<double> psi) {
  if (psi.size() != shil_phase_.size()) {
    throw std::invalid_argument("PhaseNetwork::set_shil_phases: size mismatch");
  }
  shil_phase_ = std::move(psi);
}

void PhaseNetwork::set_uniform_shil_phase(double psi) {
  std::fill(shil_phase_.begin(), shil_phase_.end(), psi);
}

void PhaseNetwork::set_shil_level(double level) noexcept {
  shil_level_ = std::clamp(level, 0.0, 1.0);
}

void PhaseNetwork::set_detune(std::vector<double> detune_rad_per_s) {
  if (detune_rad_per_s.size() != detune_.size()) {
    throw std::invalid_argument("PhaseNetwork::set_detune: size mismatch");
  }
  detune_ = std::move(detune_rad_per_s);
}

void PhaseNetwork::clear_detune() {
  std::fill(detune_.begin(), detune_.end(), 0.0);
}

void PhaseNetwork::refresh_trig(const std::vector<double>& theta) const {
  const std::size_t n = theta.size();
  for (std::size_t i = 0; i < n; ++i) {
    sin_[i] = std::sin(theta[i]);
    cos_[i] = std::cos(theta[i]);
  }
}

void PhaseNetwork::derivative(const std::vector<double>& theta,
                              std::vector<double>& dtheta) const {
  const std::size_t n = theta.size();
  dtheta.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) dtheta[i] = detune_[i];

  if (couplings_active_) {
    refresh_trig(theta);
    const auto edges = graph_->edges();
    const double kc = params_.coupling_gain;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (!edge_mask_[e]) continue;
      const auto u = edges[e].u;
      const auto v = edges[e].v;
      // sin(theta_u - theta_v) via precomputed per-node sin/cos.
      const double s = sin_[u] * cos_[v] - cos_[u] * sin_[v];
      const double w = kc * j_[e] * s;
      // dtheta_u += -Kc*J*sin(u - v); dtheta_v += -Kc*J*sin(v - u) = +...
      dtheta[u] -= w;
      dtheta[v] += w;
    }
  }

  if (shil_active_ && shil_level_ > 0.0) {
    const double ks = params_.shil_gain * shil_level_;
    const double order = static_cast<double>(params_.shil_order);
    for (std::size_t i = 0; i < n; ++i) {
      if (!shil_enable_[i]) continue;
      dtheta[i] -= ks * std::sin(order * (theta[i] - shil_phase_[i]));
    }
  }
}

void PhaseNetwork::step(util::Rng& rng) {
  const double dt = params_.dt;
  derivative(theta_, k1_);
  const double noise_scale = params_.noise_stddev * std::sqrt(dt);
  for (std::size_t i = 0; i < theta_.size(); ++i) {
    theta_[i] += k1_[i] * dt;
    if (noise_scale > 0.0) theta_[i] += noise_scale * rng.normal();
  }
}

void PhaseNetwork::step_rk4() {
  const double dt = params_.dt;
  const std::size_t n = theta_.size();
  derivative(theta_, k1_);
  tmp_.resize(n);
  for (std::size_t i = 0; i < n; ++i) tmp_[i] = theta_[i] + 0.5 * dt * k1_[i];
  derivative(tmp_, k2_);
  for (std::size_t i = 0; i < n; ++i) tmp_[i] = theta_[i] + 0.5 * dt * k2_[i];
  derivative(tmp_, k3_);
  for (std::size_t i = 0; i < n; ++i) tmp_[i] = theta_[i] + dt * k3_[i];
  derivative(tmp_, k4_);
  for (std::size_t i = 0; i < n; ++i) {
    theta_[i] += dt / 6.0 * (k1_[i] + 2.0 * k2_[i] + 2.0 * k3_[i] + k4_[i]);
  }
}

void PhaseNetwork::run(double duration, util::Rng& rng, const GainRamp* shil_ramp,
                       const std::function<void(double, const PhaseNetwork&)>& observer) {
  if (duration <= 0.0) return;
  const double dt = params_.dt;
  // ceil with a relative guard so that duration = k*dt yields exactly k steps
  // despite the quotient landing epsilon above the integer.
  auto steps = static_cast<std::size_t>(std::ceil(duration / dt - 1e-9));
  if (steps == 0) steps = 1;
  const double saved_level = shil_level_;
  for (std::size_t s = 0; s < steps; ++s) {
    if (shil_ramp != nullptr) {
      const double frac = static_cast<double>(s) / static_cast<double>(steps);
      set_shil_level(saved_level * shil_ramp->value(frac));
    }
    step(rng);
    if (observer) observer(static_cast<double>(s + 1) * dt, *this);
  }
  shil_level_ = saved_level;
}

double PhaseNetwork::coupling_energy() const {
  double e = 0.0;
  const auto edges = graph_->edges();
  for (std::size_t k = 0; k < edges.size(); ++k) {
    if (!edge_mask_[k]) continue;
    e -= j_[k] * std::cos(theta_[edges[k].u] - theta_[edges[k].v]);
  }
  return e;
}

double PhaseNetwork::shil_energy() const {
  if (!shil_active_) return 0.0;
  const double ks = params_.shil_gain * shil_level_;
  const double order = static_cast<double>(params_.shil_order);
  double e = 0.0;
  for (std::size_t i = 0; i < theta_.size(); ++i) {
    if (!shil_enable_[i]) continue;
    e -= ks / order * std::cos(order * (theta_[i] - shil_phase_[i]));
  }
  return e;
}

std::vector<double> PhaseNetwork::wrapped_phases() const {
  std::vector<double> w(theta_.size());
  for (std::size_t i = 0; i < theta_.size(); ++i) w[i] = wrap_angle(theta_[i]);
  return w;
}

}  // namespace msropm::phase
