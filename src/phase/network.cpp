#include "msropm/phase/network.hpp"

namespace msropm::phase {

PhaseNetwork::PhaseNetwork(const graph::Graph& g, NetworkParams params)
    : batch_(g, params, /*num_replicas=*/1) {}

void PhaseNetwork::set_phases(std::vector<double> phases) {
  batch_.set_phases(0, phases);
}

void PhaseNetwork::randomize_phases(util::Rng& rng) {
  batch_.randomize_phases(0, rng);
}

void PhaseNetwork::perturb_phases(util::Rng& rng, double stddev_rad) {
  batch_.perturb_phases(0, rng, stddev_rad);
}

void PhaseNetwork::set_uniform_coupling(double j) {
  batch_.set_uniform_coupling(0, j);
}

void PhaseNetwork::set_edge_couplings(std::vector<double> per_edge_j) {
  batch_.set_edge_couplings(0, per_edge_j);
}

void PhaseNetwork::set_edge_mask(std::vector<std::uint8_t> mask) {
  batch_.set_edge_mask(0, mask);
}

void PhaseNetwork::enable_all_edges() { batch_.enable_all_edges(0); }

void PhaseNetwork::disable_all_edges() { batch_.disable_all_edges(0); }

void PhaseNetwork::set_shil_enable(std::vector<std::uint8_t> per_osc_enable) {
  batch_.set_shil_enable(0, per_osc_enable);
}

void PhaseNetwork::enable_all_shil() { batch_.enable_all_shil(0); }

void PhaseNetwork::set_shil_phases(std::vector<double> psi) {
  batch_.set_shil_phases(0, psi);
}

void PhaseNetwork::set_uniform_shil_phase(double psi) {
  batch_.set_uniform_shil_phase(0, psi);
}

void PhaseNetwork::set_detune(std::vector<double> detune_rad_per_s) {
  batch_.set_detune(0, detune_rad_per_s);
}

void PhaseNetwork::clear_detune() { batch_.clear_detune(0); }

void PhaseNetwork::derivative(const std::vector<double>& theta,
                              std::vector<double>& dtheta) const {
  dtheta.resize(batch_.size());
  batch_.derivative(0, theta, dtheta);
}

void PhaseNetwork::step(util::Rng& rng) { batch_.step({&rng, 1}); }

void PhaseNetwork::step_rk4() { batch_.step_rk4(); }

void PhaseNetwork::run(double duration, util::Rng& rng, const GainRamp* shil_ramp,
                       const std::function<void(double, const PhaseNetwork&)>& observer) {
  if (!observer) {
    batch_.run(duration, {&rng, 1}, shil_ramp);
    return;
  }
  batch_.run(duration, {&rng, 1}, shil_ramp,
             [this, &observer](double t, const PhaseBatch&) { observer(t, *this); });
}

}  // namespace msropm::phase
